// Dev probe: print Table 1/2-style stats for generated meshes.
#include <cstdio>
#include <cstdlib>
#include "mesh/generators.hpp"
#include "mesh/ordinates.hpp"
#include "mesh/sweep_graph.hpp"
#include "core/tarjan.hpp"
#include "graph/scc_stats.hpp"

using namespace ecl;

static void probe(const mesh::Mesh& m, unsigned nord) {
  auto ords = mesh::fibonacci_ordinates(nord);
  std::vector<graph::SccStats> all;
  for (auto& o : ords) {
    auto g = mesh::build_sweep_graph(m, o);
    auto r = scc::tarjan(g);
    all.push_back(graph::compute_scc_stats(g, r.labels));
  }
  auto a = graph::aggregate_stats(all);
  std::printf("%-14s V=%8u E=%9llu deg=%.2f din=%llu dout=%llu SCCs=[%u,%u] s1=[%u,%u] s2=[%u,%u] largest=[%u,%u] depth=[%u,%u]\n",
    m.name.c_str(), a.num_vertices, (unsigned long long)a.num_edges, a.avg_degree,
    (unsigned long long)a.max_in_degree, (unsigned long long)a.max_out_degree,
    a.min_sccs, a.max_sccs, a.min_size1, a.max_size1, a.min_size2, a.max_size2,
    a.min_largest, a.max_largest, a.min_depth, a.max_depth);
}

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6000;
  unsigned nord = argc > 2 ? (unsigned)std::atoi(argv[2]) : 8;
  probe(mesh::beam_hex(n), nord);
  probe(mesh::star(n), nord);
  probe(mesh::torch_hex(n), nord);
  probe(mesh::torch_tet(2*n), nord);
  probe(mesh::toroid_hex(n), nord);
  probe(mesh::toroid_wedge(n), nord);
  probe(mesh::klein_bottle(n), nord);
  probe(mesh::mobius_strip(n), nord);
  probe(mesh::twist_hex(n, 3), nord);
  probe(mesh::twist_hex(n, 8), nord);
  return 0;
}
