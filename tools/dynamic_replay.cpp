// Dev tool: replay an edge-update stream ("+u v" / "-u v" lines) against a
// graph file through the dynamic SCC engine, printing component counts and
// update statistics. Cross-checks the final state against Tarjan.
//
//   dynamic_replay <graph-file> <stream-file> [--algo <name>] [--verify-every N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/registry.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "dynamic/dynamic_scc.hpp"
#include "graph/io.hpp"
#include "support/timer.hpp"

using namespace ecl;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <graph-file> <stream-file> [--algo <name>] [--verify-every N]\n",
                 argv[0]);
    return 2;
  }
  std::string algo = "ecl-a100";
  std::size_t verify_every = 0;
  for (int i = 3; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--algo") && i + 1 < argc) {
      algo = argv[++i];
    } else if (!std::strcmp(argv[i], "--verify-every") && i + 1 < argc) {
      verify_every = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  const graph::Digraph base = graph::read_graph_file(argv[1]);
  const graph::UpdateStream stream = graph::read_update_stream_file(argv[2]);
  std::printf("graph: %u vertices, %llu edges; stream: %zu updates; algo: %s\n",
              base.num_vertices(), static_cast<unsigned long long>(base.num_edges()),
              stream.size(), algo.c_str());

  dynamic::DynamicOptions options;
  options.full_algorithm = algo;
  dynamic::DynamicScc dyn(base, options);
  std::printf("initial components: %u\n", static_cast<unsigned>(dyn.num_components()));

  Timer timer;
  std::size_t applied = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (dyn.apply(stream[i])) ++applied;
    if (verify_every && (i + 1) % verify_every == 0) {
      const auto oracle = scc::tarjan(dyn.graph());
      if (!scc::same_partition(dyn.snapshot()->labels, oracle.labels)) {
        std::fprintf(stderr, "DIVERGED from Tarjan after update %zu\n", i);
        return 1;
      }
      std::printf("  [%zu] components=%u (verified)\n", i + 1,
                  static_cast<unsigned>(dyn.num_components()));
    }
  }
  const double seconds = timer.seconds();

  const auto stats = dyn.stats();
  std::printf(
      "applied %zu/%zu updates in %.3f ms (%.2f us/update)\n"
      "final components: %u\n"
      "stats: merges=%llu (components_merged=%llu) splits=%llu "
      "(components_created=%llu)\n"
      "       intra_inserts=%llu delete_fast_checks=%llu local_recomputes=%llu "
      "full_rebuilds=%llu\n",
      applied, stream.size(), seconds * 1e3,
      stream.empty() ? 0.0 : seconds * 1e6 / double(stream.size()),
      static_cast<unsigned>(dyn.num_components()),
      static_cast<unsigned long long>(stats.merges),
      static_cast<unsigned long long>(stats.components_merged),
      static_cast<unsigned long long>(stats.splits),
      static_cast<unsigned long long>(stats.components_created),
      static_cast<unsigned long long>(stats.intra_component_inserts),
      static_cast<unsigned long long>(stats.delete_fast_checks),
      static_cast<unsigned long long>(stats.local_recomputes),
      static_cast<unsigned long long>(stats.full_rebuilds));

  const auto oracle = scc::tarjan(dyn.graph());
  if (!scc::same_partition(dyn.snapshot()->labels, oracle.labels)) {
    std::fprintf(stderr, "DIVERGED from Tarjan at end of stream\n");
    return 1;
  }
  std::printf("final state verified against Tarjan\n");
  return 0;
}
