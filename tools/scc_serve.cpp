// Dev tool: stand up an SccService on a graph file (or a generated
// workload) and drive it with an open-loop mixed request stream, printing
// per-status counts, tier breakdown, latency percentiles, and final breaker
// states. The interactive cousin of bench/bench_service_soak for poking at
// the pipeline's knobs.
//
//   scc_serve [<graph-file>] [--requests N] [--rate RPS] [--deadline-ms D]
//             [--staleness N] [--workers N] [--queue N] [--backends a,b,c]
//             [--devices N] [--shards K] [--chaos SEED] [--no-breakers]
//             [--no-degradation] [--seed S] [--stats]
//
// --chaos SEED installs the seeded composite FaultPlan (FaultPlan::
// from_seed) on every worker's device, so the live backends misbehave the
// same reproducible way the chaos test suite exercises — and the breaker /
// certifier / quarantine machinery can be watched doing its job.
//
// --devices N runs the service in fleet mode (DESIGN.md §13): N pooled
// devices shared by all workers behind the GraphRouter, with per-device
// health/quarantine. --shards K (with --devices) routes fresh label
// computes through the sharded cross-device fixpoint instead of
// whole-graph placement. Under --chaos each pool device draws its own
// plan from a per-device seed (golden-ratio stride off the run seed;
// device 0 matches the single-device plan), so faults land asymmetrically
// and exercise the §14 failover path.
//
// --stats additionally prints the aggregated per-worker device launch
// statistics after shutdown (launch counts, the work-weighted block
// imbalance metric, a per-block edge-work histogram, DESIGN.md §11) plus
// the self-healing counters: checkpoints, resumes, certifier activity, and
// per-backend health/quarantine state (DESIGN.md §12). In fleet mode it
// also prints one row per pool device (launches, blocks, imbalance) and
// the pool's per-device health, so placement skew and quarantines are
// visible.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "device/fault.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "service/scc_service.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"

using namespace ecl;
using service::Request;
using service::RequestKind;
using service::Response;
using service::SccService;
using service::ServiceConfig;

namespace {

std::vector<std::string> split_names(const char* csv) {
  std::vector<std::string> names;
  std::string current;
  for (const char* p = csv;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!current.empty()) names.push_back(current);
      current.clear();
      if (*p == '\0') break;
    } else {
      current.push_back(*p);
    }
  }
  return names;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  return sorted[static_cast<std::size_t>(p * double(sorted.size() - 1))];
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_file;
  std::size_t num_requests = 200;
  double rate = 500.0;
  double deadline_ms = 100.0;
  std::uint64_t staleness = 1u << 20;
  std::uint64_t seed = 42;
  ServiceConfig cfg;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  bool show_device_stats = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--requests")) {
      num_requests = std::strtoull(next("--requests"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--rate")) {
      rate = std::strtod(next("--rate"), nullptr);
    } else if (!std::strcmp(argv[i], "--deadline-ms")) {
      deadline_ms = std::strtod(next("--deadline-ms"), nullptr);
    } else if (!std::strcmp(argv[i], "--staleness")) {
      staleness = std::strtoull(next("--staleness"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--workers")) {
      cfg.workers = static_cast<unsigned>(std::strtoul(next("--workers"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--queue")) {
      cfg.queue_capacity = std::strtoull(next("--queue"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--backends")) {
      cfg.backends = split_names(next("--backends"));
    } else if (!std::strcmp(argv[i], "--devices")) {
      cfg.pool_devices = static_cast<unsigned>(std::strtoul(next("--devices"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--shards")) {
      cfg.shards = static_cast<unsigned>(std::strtoul(next("--shards"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--chaos")) {
      chaos = true;
      chaos_seed = std::strtoull(next("--chaos"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--no-breakers")) {
      cfg.enable_breakers = false;
    } else if (!std::strcmp(argv[i], "--no-degradation")) {
      cfg.enable_degradation = false;
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--stats")) {
      show_device_stats = true;
    } else if (argv[i][0] != '-' && graph_file.empty()) {
      graph_file = argv[i];
    } else {
      std::fprintf(
          stderr,
          "usage: %s [<graph-file>] [--requests N] [--rate RPS] [--deadline-ms D]\n"
          "          [--staleness N] [--workers N] [--queue N] [--backends a,b,c]\n"
          "          [--devices N] [--shards K] [--chaos SEED] [--no-breakers]\n"
          "          [--no-degradation] [--seed S] [--stats]\n",
          argv[0]);
      return 2;
    }
  }

  cfg.seed = seed;
  std::string chaos_banner;
  if (chaos) {
    // The same seeded composite plans the chaos test suite draws from: the
    // seed picks which fault axes are armed and how hard.
    cfg.device_profile.fault_plan = device::FaultPlan::from_seed(chaos_seed);
    chaos_banner = ", chaos [" + cfg.device_profile.fault_plan.describe() + "]";
    if (cfg.pool_devices > 0) {
      // Fleet mode: every pool device draws its OWN plan, derived from the
      // run seed by golden-ratio stride so faults land asymmetrically (the
      // interesting failover case) yet reproducibly. Device 0's plan equals
      // the single-device plan for the same seed.
      cfg.pool_fault_plans.clear();
      for (unsigned i = 0; i < cfg.pool_devices; ++i)
        cfg.pool_fault_plans.push_back(
            device::FaultPlan::from_seed(chaos_seed + 0x9e3779b97f4a7c15ull * i));
    }
  }

  Rng rng(seed);
  graph::Digraph g = [&] {
    if (!graph_file.empty()) return graph::read_graph_file(graph_file);
    graph::SccProfile profile;
    profile.num_vertices = 512;
    profile.avg_degree = 4.0;
    profile.mid_sccs = 8;
    return graph::scc_profile_graph(profile, rng);
  }();
  std::string fleet_banner;
  if (cfg.pool_devices > 0)
    fleet_banner = ", fleet [" + std::to_string(cfg.pool_devices) + " devices, " +
                   std::to_string(std::max(1u, cfg.shards)) + " shards]";
  std::printf("serving %u vertices / %llu edges; %zu requests at %.0f rps, "
              "deadline %.0fms%s%s\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              num_requests, rate, deadline_ms, chaos_banner.c_str(), fleet_banner.c_str());

  SccService svc(g, cfg);
  struct InFlight {
    std::future<Response> future;
    service::ServiceClock::time_point submitted_at;
  };
  std::vector<InFlight> inflight;
  inflight.reserve(num_requests);
  const auto interarrival = std::chrono::duration_cast<service::ServiceClock::duration>(
      std::chrono::duration<double>(rate > 0 ? 1.0 / rate : 0.0));

  for (std::size_t i = 0; i < num_requests; ++i) {
    Request req;
    req.deadline = Request::deadline_in(deadline_ms / 1e3);
    req.staleness_budget = staleness;
    const auto draw = rng.bounded(10);
    if (draw < 6) {
      req.kind = RequestKind::kSccLabels;
    } else if (draw < 8) {
      req.kind = RequestKind::kReachabilityQuery;
      req.u = static_cast<graph::vid>(rng.bounded(g.num_vertices()));
      req.v = static_cast<graph::vid>(rng.bounded(g.num_vertices()));
    } else if (draw < 9) {
      req.kind = RequestKind::kCondensation;
    } else {
      req.kind = RequestKind::kUpdateBatch;
      req.updates = {{graph::EdgeUpdate::Kind::kInsert,
                      static_cast<graph::vid>(rng.bounded(g.num_vertices())),
                      static_cast<graph::vid>(rng.bounded(g.num_vertices()))}};
    }
    inflight.push_back({svc.submit(req), service::ServiceClock::now()});
    if (interarrival.count() > 0) std::this_thread::sleep_for(interarrival);
  }

  std::vector<double> latencies_ms;
  std::vector<std::uint64_t> by_status(6, 0);
  std::uint64_t degraded = 0;
  for (auto& f : inflight) {
    const Response r = f.future.get();
    by_status[static_cast<std::size_t>(r.status)]++;
    if (r.ok() && r.degraded()) ++degraded;
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(r.completed_at - f.submitted_at).count());
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());

  TextTable table({"status", "count"});
  for (std::size_t s = 0; s < by_status.size(); ++s) {
    if (by_status[s] == 0) continue;
    table.add_row({service::service_status_name(static_cast<service::ServiceStatus>(s)),
                   std::to_string(by_status[s])});
  }
  std::printf("\n%s\n", table.render().c_str());

  const auto stats = svc.stats();
  std::printf("degraded serves: %llu (stale %llu, serial %llu); fresh attempts %llu, "
              "backend failures %llu, breaker skips %llu, overload sheds %llu\n",
              static_cast<unsigned long long>(degraded),
              static_cast<unsigned long long>(stats.served_stale),
              static_cast<unsigned long long>(stats.served_serial),
              static_cast<unsigned long long>(stats.fresh_attempts),
              static_cast<unsigned long long>(stats.backend_failures),
              static_cast<unsigned long long>(stats.breaker_skips),
              static_cast<unsigned long long>(stats.overload_sheds));
  std::printf("latency ms: p50 %.2f  p99 %.2f  p999 %.2f  max %.2f\n",
              percentile(latencies_ms, 0.50), percentile(latencies_ms, 0.99),
              percentile(latencies_ms, 0.999),
              latencies_ms.empty() ? 0.0 : latencies_ms.back());
  for (const auto& h : svc.backend_health())
    std::printf("health[%s] = %s (score %.2f/%zu; stall %llu, overflow %llu, cert %llu, "
                "deadline %llu; quarantined %llu, readmitted %llu)\n",
                h.name.c_str(), service::backend_health_name(h.health), h.score, h.samples,
                static_cast<unsigned long long>(
                    h.faults[static_cast<std::size_t>(service::FaultKind::kStall)]),
                static_cast<unsigned long long>(
                    h.faults[static_cast<std::size_t>(service::FaultKind::kOverflow)]),
                static_cast<unsigned long long>(
                    h.faults[static_cast<std::size_t>(service::FaultKind::kCertification)]),
                static_cast<unsigned long long>(
                    h.faults[static_cast<std::size_t>(service::FaultKind::kDeadline)]),
                static_cast<unsigned long long>(h.quarantines),
                static_cast<unsigned long long>(h.readmissions));
  const service::RecoveryStats rec = svc.recovery_stats();
  std::printf("recovery: %llu checkpoints, %llu resumes, %llu rounds replayed; "
              "certifier %llu runs / %llu rejections / %.3fs; "
              "quarantines %llu, probations %llu, readmissions %llu\n",
              static_cast<unsigned long long>(rec.checkpoints_taken),
              static_cast<unsigned long long>(rec.resumes),
              static_cast<unsigned long long>(rec.rounds_replayed),
              static_cast<unsigned long long>(rec.certifications),
              static_cast<unsigned long long>(rec.certification_failures), rec.certify_seconds,
              static_cast<unsigned long long>(rec.quarantines),
              static_cast<unsigned long long>(rec.probations),
              static_cast<unsigned long long>(rec.readmissions));
  std::printf("high-diameter: %llu chains collapsed (%llu steps, longest %llu); "
              "%llu hash-bag sparse rounds\n",
              static_cast<unsigned long long>(rec.chains_collapsed),
              static_cast<unsigned long long>(rec.chain_steps),
              static_cast<unsigned long long>(rec.max_chain_len),
              static_cast<unsigned long long>(rec.hashbag_rounds));
  if (show_device_stats)
    std::printf("fleet recovery: %llu failovers, %llu shards re-homed; "
                "stragglers %llu flagged, %llu migrated\n",
                static_cast<unsigned long long>(rec.failovers),
                static_cast<unsigned long long>(rec.shards_rehomed),
                static_cast<unsigned long long>(rec.stragglers_flagged),
                static_cast<unsigned long long>(rec.straggler_migrations));
  svc.shutdown();

  if (show_device_stats) {
    // Workers fold their device stats in as they exit, so this is complete
    // only after shutdown().
    const device::LaunchStats ds = svc.device_stats();
    std::printf("\ndevice: %llu launches, %llu blocks, %llu replays; "
                "block imbalance (max/mean, work-weighted) %.3f\n",
                static_cast<unsigned long long>(ds.kernel_launches),
                static_cast<unsigned long long>(ds.blocks_executed),
                static_cast<unsigned long long>(ds.spurious_replays), ds.block_imbalance());
    if (!ds.block_edge_work.empty()) {
      const std::uint64_t top =
          *std::max_element(ds.block_edge_work.begin(), ds.block_edge_work.end());
      TextTable hist({"block", "edge work", ""});
      // Print the first 32 blocks (the interesting skew is at low IDs, where
      // block-cyclic remainders land); the scale bar is relative to the max.
      const std::size_t shown = std::min<std::size_t>(ds.block_edge_work.size(), 32);
      for (std::size_t b = 0; b < shown; ++b) {
        const std::uint64_t w = ds.block_edge_work[b];
        const std::size_t bars =
            top > 0 ? static_cast<std::size_t>((w * 40 + top - 1) / top) : 0;
        hist.add_row({std::to_string(b), std::to_string(w), std::string(bars, '#')});
      }
      std::printf("%s\n", hist.render().c_str());
      if (ds.block_edge_work.size() > shown)
        std::printf("(%zu more blocks)\n", ds.block_edge_work.size() - shown);
    }
    if (svc.pool_mode()) {
      // Fleet mode: one row per pool device, so placement skew (router) and
      // per-shard load (sharded runs) are visible, plus each device's
      // health/quarantine standing.
      TextTable devices({"device", "launches", "blocks", "replays", "imbalance"});
      for (const auto& [name, s] : svc.pool_device_stats()) {
        char imbalance[32];
        std::snprintf(imbalance, sizeof imbalance, "%.3f", s.block_imbalance());
        devices.add_row({name, std::to_string(s.kernel_launches),
                         std::to_string(s.blocks_executed),
                         std::to_string(s.spurious_replays), imbalance});
      }
      std::printf("\n%s\n", devices.render().c_str());
      for (const auto& h : svc.device_pool()->health().snapshot())
        std::printf("pool health[%s] = %s (score %.2f/%zu; quarantined %llu, "
                    "readmitted %llu)\n",
                    h.name.c_str(), service::backend_health_name(h.health), h.score,
                    h.samples, static_cast<unsigned long long>(h.quarantines),
                    static_cast<unsigned long long>(h.readmissions));
    }
  }
  return 0;
}
