#include "stats_common.hpp"

#include <cstdio>

#include "core/tarjan.hpp"
#include "graph/scc_stats.hpp"
#include "support/env.hpp"
#include "support/format.hpp"

namespace ecl::bench {
namespace {

std::vector<graph::SccStats> stats_of(const Workload& wl) {
  std::vector<graph::SccStats> all;
  all.reserve(wl.graphs.size());
  for (const auto& g : wl.graphs) {
    all.push_back(graph::compute_scc_stats(g, scc::tarjan(g).labels));
  }
  return all;
}

}  // namespace

void print_mesh_stats_table(const std::string& title, const std::vector<Workload>& workloads,
                            const std::vector<unsigned>& ordinate_counts) {
  TextTable table({"Graph", "N_om", "Vertices", "Edges", "Avg deg", "Max din", "Max dout",
                   "Min SCCs", "Max SCCs", "Min s1", "Max s1", "Min s2", "Max s2",
                   "Min lrg", "Max lrg", "Min dep", "Max dep"});
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto stats = stats_of(workloads[i]);
    const auto r = graph::aggregate_stats(stats);
    table.add_row({workloads[i].name, std::to_string(ordinate_counts[i]),
                   with_commas(r.num_vertices), with_commas(r.num_edges), fixed(r.avg_degree, 2),
                   std::to_string(r.max_in_degree), std::to_string(r.max_out_degree),
                   with_commas(r.min_sccs), with_commas(r.max_sccs), with_commas(r.min_size1),
                   with_commas(r.max_size1), with_commas(r.min_size2), with_commas(r.max_size2),
                   with_commas(r.min_largest), with_commas(r.max_largest),
                   with_commas(r.min_depth), with_commas(r.max_depth)});
  }
  std::printf("\n== %s ==\n%s", title.c_str(), table.render().c_str());
  std::printf("(scaled to ECL_SCALE=%.4g of the paper's element counts; N_om capped by "
              "ECL_MAX_ORDINATES)\n",
              scale_factor());
}

void print_graph_stats_table(const std::string& title, const std::vector<Workload>& workloads) {
  TextTable table({"Graph", "Vertices", "Edges", "Avg deg", "Max din", "Max dout", "No. SCCs",
                   "Size-1", "Size-2", "Largest", "DAG depth"});
  for (const auto& wl : workloads) {
    const auto stats = stats_of(wl);
    const auto& s = stats.front();
    table.add_row({wl.name, with_commas(s.num_vertices), with_commas(s.num_edges),
                   fixed(s.avg_degree, 2), std::to_string(s.max_in_degree),
                   std::to_string(s.max_out_degree), with_commas(s.num_sccs),
                   with_commas(s.size1_sccs), with_commas(s.size2_sccs),
                   with_commas(s.largest_scc), with_commas(s.dag_depth)});
  }
  std::printf("\n== %s ==\n%s", title.c_str(), table.render().c_str());
  std::printf("(scaled to ECL_SCALE=%.4g of the paper's vertex counts)\n", scale_factor());
}

}  // namespace ecl::bench
