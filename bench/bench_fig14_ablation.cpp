// Regenerates Figure 14: the optimization ablation on the A100 profile.
//
// For each workload class (small meshes, large meshes, power-law graphs)
// this measures the geomean throughput of ECL-SCC with all optimizations
// on, with each of the four optimizations disabled individually, and with
// all four disabled.
//
// Paper expectations (shape, §5.2): async and path compression help on all
// three input classes; removing completed-SCC edges helps marginally on
// meshes but substantially on power-law graphs; persistent threads help on
// power-law graphs and HURT on meshes (~10%); disabling all four more than
// halves throughput everywhere.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.hpp"
#include "core/ecl_scc.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

namespace {

using namespace ecl;
using namespace ecl::bench;

struct Variant {
  std::string name;
  scc::EclOptions opts;
};

std::vector<Variant> variants() {
  const scc::EclOptions all_on;
  scc::EclOptions no_async = all_on;
  no_async.async_phase2 = false;
  scc::EclOptions no_remove = all_on;
  no_remove.remove_scc_edges = false;
  scc::EclOptions no_pc = all_on;
  no_pc.path_compression = false;
  scc::EclOptions no_pt = all_on;
  no_pt.persistent_threads = false;
  return {{"all-on", all_on},
          {"no-async", no_async},
          {"no-scc-edge-removal", no_remove},
          {"no-path-compression", no_pc},
          {"no-persistent-threads", no_pt},
          {"all-off", scc::ecl_all_optimizations_off()}};
}

// class -> variant -> geomean throughput (Mverts/s)
std::map<std::string, std::map<std::string, double>> g_throughput;

void register_class(const std::string& class_name, const std::vector<Workload>& workloads) {
  auto shared = std::make_shared<std::vector<Workload>>(workloads);
  for (const auto& variant : variants()) {
    const std::string bench_name = "Fig14/" + class_name + "/" + variant.name;
    const auto opts = variant.opts;
    const std::string vname = variant.name;
    benchmark::RegisterBenchmark(bench_name.c_str(), [shared, opts, class_name, vname](
                                                         benchmark::State& state) {
      device::Device dev(device::a100_profile());
      std::vector<double> best(shared->size(), -1.0);
      for (auto _ : state) {
        for (std::size_t w = 0; w < shared->size(); ++w) {
          Timer timer;
          for (const auto& g : (*shared)[w].graphs) {
            auto result = scc::ecl_scc(g, dev, opts);
            benchmark::DoNotOptimize(result.num_components);
          }
          const double t = timer.seconds();
          if (best[w] < 0 || t < best[w]) best[w] = t;
        }
      }
      std::vector<double> throughputs;
      std::int64_t items = 0;
      for (std::size_t w = 0; w < shared->size(); ++w) {
        const auto& wl = (*shared)[w];
        items += static_cast<std::int64_t>(wl.total_vertices());
        if (best[w] > 0)
          throughputs.push_back(static_cast<double>(wl.total_vertices()) / best[w] / 1e6);
      }
      state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * items);
      g_throughput[class_name][vname] = geomean(throughputs);
    })
        ->Iterations(static_cast<std::int64_t>(bench_runs()))
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  register_class("small-meshes", small_mesh_workloads());
  register_class("large-meshes", large_mesh_workloads());
  register_class("power-law", power_law_workloads());

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  TextTable table({"Input class", "all-on", "no-async", "no-scc-edge-removal",
                   "no-path-compression", "no-persistent-threads", "all-off"});
  for (const auto& [cls, per_variant] : g_throughput) {
    std::vector<std::string> row{cls};
    for (const char* v : {"all-on", "no-async", "no-scc-edge-removal", "no-path-compression",
                          "no-persistent-threads", "all-off"}) {
      auto it = per_variant.find(v);
      row.push_back(it == per_variant.end() ? "-" : fixed(it->second, 2));
    }
    table.add_row(std::move(row));
  }
  std::printf("\n== Figure 14: ECL-SCC optimization ablation on the A100 profile "
              "(geomean throughput, Mverts/s) ==\n%s",
              table.render().c_str());
  std::printf("(paper shape: async & path compression help everywhere; SCC-edge removal "
              "helps mainly on power-law; persistent threads help power-law, hurt meshes; "
              "all-off is < half of all-on)\n");
  std::printf("(scale factor ECL_SCALE=%.4g, runs ECL_RUNS=%zu)\n", scale_factor(),
              bench_runs());
  return 0;
}
