#ifndef ECL_BENCH_COMMON_HPP
#define ECL_BENCH_COMMON_HPP

// Glue between the bench_support harness and google-benchmark: one
// registered benchmark per (workload, column), fixed iteration counts
// (ECL_RUNS, matching the paper's median-of-N methodology), verification
// against Tarjan outside the timed region, and a shared reporting main.

#include <string>
#include <utility>
#include <vector>

#include "bench_support/harness.hpp"
#include "bench_support/workloads.hpp"

namespace ecl::bench {

/// Registers `prefix/<workload>/<column>` benchmarks for every column.
void register_workload_benchmarks(const std::string& prefix, const Workload& workload,
                                  const std::vector<Column>& columns);

/// Named pair of columns whose geomean throughput ratio is a headline
/// number of the paper (e.g. ECL-SCC A100 over GPU-SCC A100 for Fig. 6).
struct Headline {
  std::string description;  ///< e.g. "Fig 6: ECL-SCC vs GPU-SCC on A100"
  std::string numerator;
  std::string denominator;
  double paper_factor;  ///< the factor the paper reports
};

/// Runs the registered benchmarks and prints the runtime table (Tables
/// 5-7 shape), the throughput figure (Figures 5-13 shape), and the
/// headline speedups with their paper values. Returns the process exit
/// code.
int run_and_report(int argc, char** argv, const std::string& table_title,
                   const std::string& figure_title, const std::vector<Headline>& headlines);

}  // namespace ecl::bench

#endif  // ECL_BENCH_COMMON_HPP
