#include "bench_common.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/tarjan.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

namespace ecl::bench {
namespace {

/// Workload plus lazily computed Tarjan oracles, shared by all columns.
struct SharedWorkload {
  Workload workload;
  std::vector<std::vector<graph::vid>> oracles;  // lazily filled
  bool verified_columns_logged = false;

  const std::vector<graph::vid>& oracle(std::size_t i) {
    if (oracles.empty()) oracles.resize(workload.graphs.size());
    if (oracles[i].empty() && workload.graphs[i].num_vertices() > 0) {
      oracles[i] = scc::tarjan(workload.graphs[i]).labels;
    }
    return oracles[i];
  }
};

}  // namespace

void register_workload_benchmarks(const std::string& prefix, const Workload& workload,
                                  const std::vector<Column>& columns) {
  auto shared = std::make_shared<SharedWorkload>();
  shared->workload = workload;

  for (const Column& column : columns) {
    const std::string name = prefix + "/" + workload.name + "/" + column.name;
    auto run = column.run;
    const std::string column_name = column.name;
    benchmark::RegisterBenchmark(name.c_str(), [shared, run, column_name](
                                                   benchmark::State& state) {
      const auto& graphs = shared->workload.graphs;

      // Verify once per process (outside the timed region), as in §4.
      for (std::size_t i = 0; i < graphs.size(); ++i) {
        const auto result = run(graphs[i]);
        if (!scc::same_partition(result.labels, shared->oracle(i))) {
          state.SkipWithError(("verification failed on " + shared->workload.name).c_str());
          return;
        }
      }

      double best = -1.0;
      for (auto _ : state) {
        Timer timer;
        for (const auto& g : graphs) {
          auto result = run(g);
          benchmark::DoNotOptimize(result.num_components);
        }
        const double elapsed = timer.seconds();
        if (best < 0 || elapsed < best) best = elapsed;
      }
      state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                              static_cast<std::int64_t>(shared->workload.total_vertices()));
      if (best > 0 && !graphs.empty()) {
        results().record(shared->workload.name, column_name,
                         best / static_cast<double>(graphs.size()),
                         shared->workload.total_vertices() / graphs.size());
      }
    })
        ->Iterations(static_cast<std::int64_t>(bench_runs()))
        ->Unit(benchmark::kMillisecond);
  }
}

int run_and_report(int argc, char** argv, const std::string& table_title,
                   const std::string& figure_title, const std::vector<Headline>& headlines) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("%s", results().render_runtime_table(table_title).c_str());
  std::printf("%s", results().render_throughput_figure(figure_title).c_str());
  if (!headlines.empty()) {
    std::printf("\n== Headline geomean speedups (measured vs paper) ==\n");
    for (const auto& h : headlines) {
      const double measured = results().geomean_speedup(h.numerator, h.denominator);
      if (h.paper_factor > 0) {
        std::printf("  %-52s measured %6.2fx   paper %6.2fx\n", h.description.c_str(), measured,
                    h.paper_factor);
      } else {
        std::printf("  %-52s measured %6.2fx   (extension: no paper value)\n",
                    h.description.c_str(), measured);
      }
    }
  }
  std::printf("\n(scale factor ECL_SCALE=%.4g, runs ECL_RUNS=%zu)\n", scale_factor(),
              bench_runs());
  return 0;
}

}  // namespace ecl::bench
