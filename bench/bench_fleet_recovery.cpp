// Fleet self-healing contracts (DESIGN.md §14), enforced by exit code:
//
//  1. failover identity — seeded chaos permanently stalls pool device 1
//     (p = 1.0 delayed visibility: no store ever lands) under a K = 4
//     sharded run. The coordinator must survive via LIVE shard failover —
//     eject the device at the sweep-budget trip, re-home its shard, restore
//     the exchange-barrier checkpoint — and the stitched labels must come
//     back certified and bit-identical to a single-device run on EVERY
//     differential family, without the recovery ladder's rungs.
//  2. recovery latency — a transient stall burst confined to a LATE launch
//     window on device 1 trips a mostly-converged run. Failover recovery
//     (SccMetrics::recovery_seconds: first trip -> converged labels, riding
//     on the last coordinated checkpoint) must be <= 0.6x the discard path
//     (a full fresh sharded rerun on a clean pool — the ladder's rung 2) on
//     >= 2 timing families. Both sides must hand back a labeling that
//     passes certify_scc and matches the Tarjan oracle; the certificate is
//     charged to NEITHER side (same additive gate either way).
//  3. containment — 0 uncertified results served across the whole chaos
//     sweep: every certify-on run must come back certified, and no labeling
//     on either side may disagree with the oracle.
//
// Emits machine-readable BENCH_fleet_recovery.json (path overridable via
// ECL_BENCH_JSON). `--smoke` runs reduced sizes/repetitions and reports the
// contracts without enforcing them.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ecl_scc.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "device/device.hpp"
#include "device/fault.hpp"
#include "fleet/device_pool.hpp"
#include "fleet/sharded_scc.hpp"
#include "graph/generators.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace ecl;
using device::FaultPlan;
using graph::Digraph;
using graph::vid;

constexpr double kRecoveryRatio = 0.6;  // failover mean <= ratio * discard mean
constexpr std::size_t kFamiliesRequired = 2;
constexpr unsigned kDevices = 4;
constexpr unsigned kShards = 4;
constexpr unsigned kThreadBudget = 4;
constexpr std::size_t kFaultyDevice = 1;

struct Family {
  std::string name;
  Digraph graph;
};

/// The four differential families the lever suites use (same shapes/seeds),
/// so "every differential family" means the same thing across PRs.
std::vector<Family> identity_families() {
  std::vector<Family> fs;
  fs.push_back({"cycle_chain_12x6", graph::cycle_chain(12, 6)});
  fs.push_back({"grid_dag_10x10", graph::grid_dag(10, 10)});
  {
    Rng rng(0x40710'01);
    fs.push_back({"er_n150_m450", graph::random_digraph(150, 450, rng)});
  }
  {
    Rng rng(0x40710'02);
    graph::SccProfile profile;
    profile.num_vertices = 200;
    profile.giant_fraction = 0.4;
    profile.size2_sccs = 10;
    profile.mid_sccs = 3;
    profile.dag_depth = 6;
    fs.push_back({"powerlaw_giant", graph::scc_profile_graph(profile, rng)});
  }
  return fs;
}

/// Bigger families for the latency contract: multi-iteration runs whose
/// late checkpoints carry real labeled/pruned progress, so failover has
/// something genuine to preserve. Absolute sizes (not ECL_SCALE) for the
/// same reason as bench_chaos_recovery; the tiny-scale CI lanes use --smoke.
std::vector<Family> timing_families(bool smoke) {
  std::vector<Family> fams;
  const vid chains = smoke ? 16 : 64;
  const vid len = smoke ? 32 : 64;
  fams.push_back({"cycle_chain_" + std::to_string(chains) + "x" + std::to_string(len),
                  graph::cycle_chain(chains, len)});
  const vid ern = smoke ? 2000 : 12000;
  Rng er_rng(0xf1ee7'01);
  fams.push_back({"er_n" + std::to_string(ern), graph::random_digraph(ern, 4 * ern, er_rng)});
  const unsigned rmat_scale = smoke ? 11 : 13;
  Rng rmat_rng(0xf1ee7'02);
  fams.push_back({"rmat_s" + std::to_string(rmat_scale), graph::rmat(rmat_scale, 5.0, rmat_rng)});
  return fams;
}

/// Persistent stall: every monotonic store on the device is deferred,
/// forever. The afflicted shard reports movement it never lands, so the
/// sweep-budget trip isolates and blames exactly this device.
FaultPlan stall_plan() {
  FaultPlan p;
  p.seed = 0xf1ee7;
  p.delayed_visibility = true;
  p.store_defer_probability = 1.0;
  return p;
}

/// The same stall confined to a launch window on the device (device launch
/// IDs): a transient late-run fault, the latency contract's scenario.
FaultPlan burst_plan(std::uint64_t start_launch, std::uint64_t window) {
  FaultPlan p = stall_plan();
  p.window_start_launch = start_launch;
  p.window_launches = window;
  return p;
}

/// Fresh pool per measurement: device launch counters persist across runs
/// within a pool, and the burst window is counted in launch IDs.
fleet::DevicePool make_pool(const FaultPlan* faulty_plan) {
  fleet::DevicePoolConfig cfg;
  cfg.devices = kDevices;
  cfg.profile = device::tiny_profile();
  cfg.thread_budget = kThreadBudget;
  if (faulty_plan != nullptr) {
    cfg.fault_plans.resize(kFaultyDevice + 1);
    cfg.fault_plans[kFaultyDevice] = *faulty_plan;
  }
  return fleet::DevicePool(cfg);
}

fleet::ShardedOptions failover_options(std::uint64_t budget) {
  fleet::ShardedOptions o;
  o.shards = kShards;
  o.certify = true;
  o.checkpoint.sweep_interval = 1;  // snapshot every moving exchange: minimal replay
  o.ecl.watchdog.max_phase2_rounds = budget;
  return o;
}

/// The discard path (the ladder's fresh-rerun rung, pre-§14): no
/// coordinator checkpoints, no certification inside the timed region.
fleet::ShardedOptions discard_options(std::uint64_t budget) {
  fleet::ShardedOptions o;
  o.shards = kShards;
  o.certify = false;
  o.checkpoint.enabled = false;
  o.ecl.watchdog.max_phase2_rounds = budget;
  return o;
}

/// Containment ledger across the whole sweep (contract 3).
struct Containment {
  std::uint64_t runs = 0;
  std::uint64_t served_uncertified = 0;  ///< certify-on runs that came back uncertified
  std::uint64_t corrupt = 0;             ///< labelings disagreeing with the Tarjan oracle
};

// ---- Contract 1: failover identity -----------------------------------------

struct IdentityRow {
  std::string name;
  std::uint64_t budget = 0;
  std::uint64_t failovers = 0;
  std::uint64_t shards_rehomed = 0;
  std::uint64_t checkpoints = 0;
  bool identical = false;
  bool certified = false;
  bool in_run = false;  ///< recovered by failover, not the ladder
  bool pass = false;
};

/// Smallest Phase-2 sweep budget that never trips fault-free: it converts
/// the persistent stall into a prompt, deterministic trip without ever
/// tripping a healthy run.
std::uint64_t discover_budget(const Family& fam) {
  for (const std::uint64_t budget : {6ull, 9ull, 12ull, 18ull, 24ull, 36ull, 48ull, 64ull}) {
    fleet::DevicePool pool = make_pool(nullptr);
    const scc::SccResult r = fleet::sharded_scc(fam.graph, pool, discard_options(budget));
    if (r.ok() && r.metrics.watchdog_trips == 0) return budget;
  }
  return 0;
}

IdentityRow run_identity_family(const Family& fam, Containment& c) {
  IdentityRow row;
  row.name = fam.name;
  row.budget = discover_budget(fam);
  if (row.budget == 0) return row;

  device::Device reference_dev(device::tiny_profile(), /*workers=*/2);
  const scc::SccResult reference = scc::ecl_scc(fam.graph, reference_dev);
  if (!reference.ok())
    throw std::runtime_error("fleet_recovery: reference run failed on " + fam.name);
  const scc::SccResult oracle = scc::tarjan(fam.graph);

  const FaultPlan plan = stall_plan();
  fleet::DevicePool pool = make_pool(&plan);
  const scc::SccResult r = fleet::sharded_scc(fam.graph, pool, failover_options(row.budget));
  ++c.runs;
  if (!r.metrics.certified) ++c.served_uncertified;
  if (!scc::same_partition(r.labels, oracle.labels)) ++c.corrupt;

  row.failovers = r.metrics.failovers;
  row.shards_rehomed = r.metrics.shards_rehomed;
  row.checkpoints = r.metrics.checkpoints_taken;
  row.identical = r.labels == reference.labels;
  row.certified = r.metrics.certified;
  row.in_run = r.ok() && !r.metrics.serial_fallback && r.metrics.fresh_reruns == 0;
  row.pass = row.identical && row.certified && row.in_run && row.failovers >= 1 &&
             row.shards_rehomed >= 1;
  return row;
}

// ---- Contract 2: failover vs discard recovery latency ----------------------

struct RecoveryRow {
  std::string name;
  std::uint64_t launches = 0;      ///< device-1 fault-free launch count (window placement)
  std::uint64_t budget = 0;
  std::uint64_t window_start = 0;  ///< device-1 launch id where the burst begins
  double failover_mean = 0.0;
  double discard_mean = 0.0;
  double ratio = 0.0;
  bool valid = false;
  bool pass = false;
};

/// One failover-side measurement. Returns recovery_seconds (first trip ->
/// converged labels), or -1 when the run did not land as designed or fails
/// the validity gates (certificate + oracle — not charged time).
double measure_failover(const Family& fam, const scc::SccResult& oracle, const FaultPlan& plan,
                        std::uint64_t budget, Containment& c) {
  fleet::DevicePool pool = make_pool(&plan);
  const scc::SccResult r = fleet::sharded_scc(fam.graph, pool, failover_options(budget));
  ++c.runs;
  if (!r.metrics.certified) ++c.served_uncertified;
  if (r.labels.size() == fam.graph.num_vertices() &&
      !scc::same_partition(r.labels, oracle.labels))
    ++c.corrupt;
  const bool landed = r.ok() && r.metrics.certified && !r.metrics.serial_fallback &&
                      r.metrics.fresh_reruns == 0 && r.metrics.failovers >= 1 &&
                      r.metrics.recovery_seconds > 0 &&
                      scc::same_partition(r.labels, oracle.labels);
  return landed ? r.metrics.recovery_seconds : -1.0;
}

/// One discard-side measurement: a full fresh sharded rerun on a CLEAN pool
/// — what the ladder's rung 2 costs after a trip discards the run. The
/// certificate + oracle match are validity gates outside the timed region.
double measure_discard(const Family& fam, const scc::SccResult& oracle, std::uint64_t budget,
                       Containment& c) {
  fleet::DevicePool pool = make_pool(nullptr);
  Timer timer;
  const scc::SccResult r = fleet::sharded_scc(fam.graph, pool, discard_options(budget));
  const double seconds = timer.seconds();
  ++c.runs;
  if (!r.ok()) return -1.0;
  if (!scc::same_partition(r.labels, oracle.labels)) {
    ++c.corrupt;
    return -1.0;
  }
  if (!scc::certify_scc(fam.graph, r.labels).ok) return -1.0;
  return seconds;
}

RecoveryRow run_recovery_family(const Family& fam, std::size_t runs, Containment& c) {
  RecoveryRow row;
  row.name = fam.name;
  const scc::SccResult oracle = scc::tarjan(fam.graph);

  // Device-1 fault-free launch count, for window placement.
  {
    fleet::DevicePool pool = make_pool(nullptr);
    const scc::SccResult dry =
        fleet::sharded_scc(fam.graph, pool, discard_options(/*budget=*/0));
    if (!dry.ok())
      throw std::runtime_error("fleet_recovery: dry run failed on " + fam.name);
    row.launches = pool.at(kFaultyDevice).stats().kernel_launches;
  }

  row.budget = discover_budget(fam);
  if (row.budget == 0) return row;
  // Just longer than one budget of spinning: the trip lands inside the
  // window, so the blame pass sees the stalled shard still "moving".
  const std::uint64_t window = row.budget + 2;

  // Place the burst as late as possible while still tripping a live
  // Phase-2 fixpoint (probing from the back): the later the trip, the more
  // labeled/pruned progress the restored checkpoint preserves — the §14
  // claim under test.
  for (const double frac : {0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.55, 0.4, 0.25}) {
    const std::uint64_t start =
        static_cast<std::uint64_t>(frac * static_cast<double>(row.launches));
    Containment probe;  // probing runs don't count against containment
    if (measure_failover(fam, oracle, burst_plan(start, window), row.budget, probe) >= 0) {
      row.window_start = start;
      row.valid = true;
      break;
    }
  }
  if (!row.valid) return row;

  const FaultPlan plan = burst_plan(row.window_start, window);
  double failover_total = 0.0, discard_total = 0.0;
  std::size_t failover_valid = 0, discard_valid = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    const double fs = measure_failover(fam, oracle, plan, row.budget, c);
    if (fs >= 0) {
      failover_total += fs;
      ++failover_valid;
    }
    const double ds = measure_discard(fam, oracle, row.budget, c);
    if (ds >= 0) {
      discard_total += ds;
      ++discard_valid;
    }
  }
  // Benign pool races can wobble the sweep count run-to-run; demand a
  // majority of runs landed as designed before trusting the means.
  if (failover_valid * 2 <= runs || discard_valid * 2 <= runs) {
    row.valid = false;
    return row;
  }
  row.failover_mean = failover_total / static_cast<double>(failover_valid);
  row.discard_mean = discard_total / static_cast<double>(discard_valid);
  row.ratio = row.discard_mean > 0 ? row.failover_mean / row.discard_mean : 0.0;
  row.pass = row.ratio <= kRecoveryRatio;
  return row;
}

// ---- Reporting -------------------------------------------------------------

void write_json(const std::string& path, bool smoke, std::size_t runs,
                const std::vector<IdentityRow>& identity, bool identity_pass,
                const std::vector<RecoveryRow>& recovery, std::size_t families_passing,
                bool recovery_pass, const Containment& c, bool containment_pass, bool pass) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n";
  out << "  \"bench\": \"fleet_recovery\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"scale\": " << scale_factor() << ",\n";
  out << "  \"runs\": " << runs << ",\n";
  out << "  \"devices\": " << kDevices << ",\n";
  out << "  \"shards\": " << kShards << ",\n";
  out << "  \"identity\": {\"families\": [\n";
  for (std::size_t i = 0; i < identity.size(); ++i) {
    const auto& r = identity[i];
    out << "    {\"name\": \"" << r.name << "\", \"budget\": " << r.budget
        << ", \"failovers\": " << r.failovers << ", \"shards_rehomed\": " << r.shards_rehomed
        << ", \"checkpoints\": " << r.checkpoints
        << ", \"identical\": " << (r.identical ? "true" : "false")
        << ", \"certified\": " << (r.certified ? "true" : "false")
        << ", \"in_run\": " << (r.in_run ? "true" : "false")
        << ", \"pass\": " << (r.pass ? "true" : "false") << "}"
        << (i + 1 < identity.size() ? "," : "") << "\n";
  }
  out << "  ], \"pass\": " << (identity_pass ? "true" : "false") << "},\n";
  out << "  \"recovery\": {\"ratio_threshold\": " << kRecoveryRatio
      << ", \"families_required\": " << kFamiliesRequired << ", \"families\": [\n";
  for (std::size_t i = 0; i < recovery.size(); ++i) {
    const auto& r = recovery[i];
    out << "    {\"name\": \"" << r.name << "\", \"launches\": " << r.launches
        << ", \"budget\": " << r.budget << ", \"window_start\": " << r.window_start
        << ", \"failover_mean_s\": " << r.failover_mean
        << ", \"discard_mean_s\": " << r.discard_mean << ", \"ratio\": " << r.ratio
        << ", \"valid\": " << (r.valid ? "true" : "false")
        << ", \"pass\": " << (r.pass ? "true" : "false") << "}"
        << (i + 1 < recovery.size() ? "," : "") << "\n";
  }
  out << "  ], \"families_passing\": " << families_passing
      << ", \"pass\": " << (recovery_pass ? "true" : "false") << "},\n";
  out << "  \"containment\": {\"runs\": " << c.runs
      << ", \"served_uncertified\": " << c.served_uncertified << ", \"corrupt\": " << c.corrupt
      << ", \"pass\": " << (containment_pass ? "true" : "false") << "},\n";
  out << "  \"contract\": {\"pass\": " << (pass ? "true" : "false")
      << ", \"enforced\": " << (smoke ? "false" : "true") << "}\n";
  out << "}\n";
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  const std::size_t runs = smoke ? 1 : bench_runs();
  Containment c;

  // Contract 1: failover identity on every differential family.
  std::vector<IdentityRow> identity;
  for (const auto& fam : identity_families()) identity.push_back(run_identity_family(fam, c));
  bool identity_pass = !identity.empty();
  for (const auto& r : identity) identity_pass = identity_pass && r.pass;
  TextTable itable(
      {"family", "budget", "failovers", "rehomed", "checkpoints", "identical", "recovered"});
  for (const auto& r : identity)
    itable.add_row({r.name, std::to_string(r.budget), std::to_string(r.failovers),
                    std::to_string(r.shards_rehomed), std::to_string(r.checkpoints),
                    r.identical ? "yes" : "NO",
                    r.in_run ? (r.pass ? "in-run" : "partial") : "LADDER"});
  std::printf("\n== Failover identity under a persistently stalled device (K=%u, N=%u) ==\n%s",
              kShards, kDevices, itable.render().c_str());

  // Contract 2: failover vs discard recovery latency.
  std::vector<RecoveryRow> recovery;
  for (const auto& fam : timing_families(smoke))
    recovery.push_back(run_recovery_family(fam, runs, c));
  std::size_t families_passing = 0;
  for (const auto& r : recovery)
    if (r.pass) ++families_passing;
  const bool recovery_pass = families_passing >= kFamiliesRequired;
  TextTable rtable({"Family", "launches", "budget", "burst@", "failover [s]", "discard [s]",
                    "ratio", "pass"});
  for (const auto& r : recovery)
    rtable.add_row({r.name, std::to_string(r.launches), std::to_string(r.budget),
                    std::to_string(r.window_start), fixed(r.failover_mean, 5),
                    fixed(r.discard_mean, 5), fixed(r.ratio, 3),
                    r.valid ? (r.pass ? "yes" : "no") : "skipped"});
  std::printf("\n== Recovery latency: shard failover vs discard + fresh rerun (mean of %zu) "
              "==\n%s",
              runs, rtable.render().c_str());

  // Contract 3: containment across the whole sweep.
  const bool containment_pass = c.served_uncertified == 0 && c.corrupt == 0 && c.runs > 0;

  const bool pass = identity_pass && recovery_pass && containment_pass;
  const std::string json_path = env_string("ECL_BENCH_JSON", "BENCH_fleet_recovery.json");
  write_json(json_path, smoke, runs, identity, identity_pass, recovery, families_passing,
             recovery_pass, c, containment_pass, pass);
  std::printf("\ncontract: failover identity on every family: %s, "
              "failover <= %.1fx discard on >= %zu families: %zu pass -> %s, "
              "containment (0 uncertified, 0 corrupt of %llu): %s => %s%s\n(json: %s)\n",
              identity_pass ? "PASS" : "FAIL", kRecoveryRatio, kFamiliesRequired,
              families_passing, recovery_pass ? "PASS" : "FAIL",
              static_cast<unsigned long long>(c.runs), containment_pass ? "PASS" : "FAIL",
              pass ? "PASS" : "FAIL", smoke ? " [smoke: not enforced]" : "", json_path.c_str());

  if (!smoke && !pass) return 1;
  return 0;
}
