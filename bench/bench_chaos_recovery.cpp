// Self-healing recovery bench (DESIGN.md §12): drives the checkpointed
// resume + online certification + recovery ladder machinery under seeded
// chaos and enforces the PR's three robustness contracts:
//
//  1. containment — under lost-update corruption and p=1.0 delayed-
//     visibility stalls, ZERO uncertified results are served by the
//     run_resilient ladder, every served labeling matches the Tarjan
//     oracle, and the certifier actually fired at least once (the sweep is
//     not vacuous);
//  2. recovery latency — on >= 2 graph families, the mean recovery time via
//     checkpointed resume (SccMetrics::recovery_seconds: first fault
//     detection -> converged labels) is <= 0.5x the discard-everything
//     serial-Tarjan fallback path (the failed run's recovery_seconds plus a
//     full Tarjan recompute + canonicalization). Both sides must produce a
//     labeling that passes certify_scc and matches the oracle for the
//     measurement to count, but the certificate's cost is charged to
//     NEITHER side — it is the same additive gate on every served result
//     and is bounded separately by contract 3. The trip is forced
//     deterministically by shrinking the watchdog's Phase-2 sweep budget
//     below the family's measured fault-free sweep count;
//  3. certifier overhead — on the fault-free hot path, certify_scc costs
//     <= 5% of the solver run on at least one family (big-graph runs are
//     the hot path; tiny graphs are launch-overhead-dominated). Measured in
//     the steady-state serving configuration: the reverse adjacency is
//     labeling-independent, cached per graph epoch by SccService and shared
//     across ladder rungs by run_resilient, so it is prebuilt once per
//     family and passed as CertifyOptions::reverse_hint.
//
// Besides the human-readable tables the bench emits machine-readable
// BENCH_chaos_recovery.json (path overridable via ECL_BENCH_JSON).
// `--smoke` runs reduced sizes/repetitions and checks only that the
// contract machinery is wired (no exit-code enforcement).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ecl_scc.hpp"
#include "core/registry.hpp"
#include "core/result.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "device/device.hpp"
#include "device/fault.hpp"
#include "graph/generators.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace ecl;
using device::FaultPlan;
using graph::Digraph;
using graph::vid;

constexpr double kRecoveryRatio = 0.5;   // resume mean <= ratio * fallback mean
constexpr std::size_t kFamiliesRequired = 2;
constexpr double kOverheadLimit = 0.05;  // certifier <= 5% of the solver run

struct Family {
  std::string name;
  Digraph graph;
};

/// Big families for the timing contracts (2 and 3). Deliberately sized in
/// absolute terms rather than via ECL_SCALE: the recovery-latency and
/// overhead ratios are only meaningful in the regime where solver work
/// dominates launch overhead, and the CI lanes that run at tiny scale use
/// `--smoke` (not enforced) anyway.
std::vector<Family> timing_families(bool smoke) {
  std::vector<Family> fams;
  const vid cyc = smoke ? 4096 : 65536;
  fams.push_back({"cycle_" + std::to_string(cyc), graph::cycle_graph(cyc)});
  const vid ern = smoke ? 4000 : 40000;
  Rng er_rng(0xc4a07);
  fams.push_back({"er_n" + std::to_string(ern), graph::random_digraph(ern, 4 * ern, er_rng)});
  const unsigned rmat_scale = smoke ? 11 : 15;
  Rng rmat_rng(0xc4a08);
  fams.push_back({"rmat_s" + std::to_string(rmat_scale),
                  graph::rmat(rmat_scale, 5.0, rmat_rng)});
  const vid chains = smoke ? 32 : 128;
  fams.push_back({"cycle_chain_" + std::to_string(chains) + "x128",
                  graph::cycle_chain(chains, 128)});
  return fams;
}

/// Small families for the containment sweep (contract 1). Deliberately
/// modest: the p=1.0 stall axis burns the full Phase-2 sweep budget
/// (4n + 64 sweeps) per trip before the ladder recovers, so correctness
/// counting must not ride on big graphs.
std::vector<Family> containment_families() {
  std::vector<Family> fams;
  fams.push_back({"cycle_64", graph::cycle_graph(64)});
  fams.push_back({"cycle_chain_12x6", graph::cycle_chain(12, 6)});
  Rng rng(0xc4a05);
  fams.push_back({"er_n150_m600", graph::random_digraph(150, 600, rng)});
  fams.push_back({"clique_24", graph::bidirectional_clique(24)});
  return fams;
}

device::DeviceProfile profile_with(FaultPlan plan) {
  device::DeviceProfile profile = device::tiny_profile();
  profile.fault_plan = plan;
  return profile;
}

FaultPlan lost_update_plan(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.lost_update = true;
  p.store_lose_probability = 0.75;
  return p;
}

FaultPlan stall_plan(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.delayed_visibility = true;
  p.store_defer_probability = 1.0;  // adversarial limit: no store ever lands
  return p;
}

// ---- Contract 1: containment under chaos -----------------------------------

struct Containment {
  std::uint64_t runs = 0;
  std::uint64_t served_uncertified = 0;   ///< served results without a passed certificate
  std::uint64_t corrupt_served = 0;       ///< served results not matching the oracle
  std::uint64_t corruption_detections = 0;  ///< ladder outcomes flagged kCertificationFailed
  std::uint64_t stall_detections = 0;       ///< ladder outcomes flagged kStalled
  std::uint64_t resumes = 0;
  std::uint64_t fresh_reruns = 0;
  bool pass = false;
};

Containment run_containment(bool smoke) {
  Containment c;
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{0x51} : std::vector<std::uint64_t>{0x51, 0x52, 0x53};
  for (const auto& fam : containment_families()) {
    const scc::SccResult oracle = scc::tarjan(fam.graph);
    for (const std::uint64_t seed : seeds) {
      for (const bool stall_axis : {false, true}) {
        const FaultPlan plan = stall_axis ? stall_plan(seed) : lost_update_plan(seed);
        device::Device dev(profile_with(plan));
        const scc::SccResult r = scc::run_resilient_on("ecl-a100", fam.graph, dev);
        ++c.runs;
        if (!r.metrics.certified) ++c.served_uncertified;
        if (r.labels.size() != fam.graph.num_vertices() ||
            !scc::same_partition(r.labels, oracle.labels))
          ++c.corrupt_served;
        if (r.error.code == scc::SccStatus::kCertificationFailed) ++c.corruption_detections;
        if (r.error.code == scc::SccStatus::kStalled) ++c.stall_detections;
        c.resumes += r.metrics.resumes;
        c.fresh_reruns += r.metrics.fresh_reruns;
      }
    }
  }
  c.pass = c.served_uncertified == 0 && c.corrupt_served == 0 &&
           c.corruption_detections >= 1 && c.stall_detections >= 1;
  return c;
}

// ---- Contract 2: checkpointed-resume recovery latency ----------------------

// The scenario: a transient delayed-visibility burst (p = 1.0, confined to
// a LATE launch window) hits a run that is mostly converged. The watchdog's
// Phase-2 budget trips during the burst. Each side's cost is its RECOVERY
// time — from the first fault detection back to converged labels:
//
//  * resume   — restore the last checkpoint, wait out the burst with
//    bounded replays, finish the tail of the run (small pruned worklist).
//    SccMetrics::recovery_seconds measures exactly this span.
//  * fallback — the pre-§12 escalation run_resilient used: the trip
//    discards the run (StallPolicy::kReturnError; its recovery_seconds
//    covers the abort) and a full serial Tarjan recomputes from scratch,
//    plus the canonicalization every index-named labeling needs before it
//    can be served (core/registry.cpp).
//
// Both sides must still hand back a labeling that passes certify_scc and
// matches the Tarjan oracle — a recovery that produced garbage does not
// count — but the certificate's runtime is charged to NEITHER side: it is
// the same additive gate on every served result regardless of which rung
// produced it, and its cost is governed by contract 3's overhead bound.
// Charging it here as well would double-count it against this ratio.
//
// Sync Phase 2 (async_phase2 = false) keeps the budget/launch accounting
// clean: one launch per global sweep, so the burst window and the sweep
// budget compose deterministically. Both sides share the configuration, so
// the comparison isolates the recovery strategy.
struct RecoveryRow {
  std::string name;
  std::uint64_t launches = 0;     ///< fault-free launch count (window placement)
  std::uint64_t budget = 0;       ///< Phase-2 sweep budget that converts burst to trip
  std::uint64_t window_start = 0; ///< launch id where the burst begins
  double resume_mean = 0.0;       ///< mean recovery seconds via checkpoint resume
  double fallback_mean = 0.0;     ///< mean recovery seconds via discard + serial Tarjan
  double ratio = 0.0;
  bool valid = false;             ///< trip + resume landed as designed
  bool pass = false;
};

scc::EclOptions recovery_base_options() {
  scc::EclOptions o;
  o.async_phase2 = false;  // one launch per sweep: deterministic windows
  return o;
}

scc::EclOptions resume_options(std::uint64_t budget) {
  scc::EclOptions o = recovery_base_options();
  o.watchdog.max_phase2_rounds = budget;
  o.checkpoint.enabled = true;
  o.checkpoint.sweep_interval = 1;  // snapshot every quiescent sweep: minimal replay
  o.checkpoint.max_resumes = 6;     // enough replays to outlast the burst window
  return o;
}

scc::EclOptions fallback_options(std::uint64_t budget) {
  scc::EclOptions o = recovery_base_options();
  o.watchdog.max_phase2_rounds = budget;
  o.checkpoint.enabled = false;  // pre-§12: the trip discards the run
  o.stall_policy = scc::StallPolicy::kReturnError;
  return o;
}

FaultPlan burst_plan(std::uint64_t start_launch, std::uint64_t window) {
  FaultPlan p;
  p.seed = 0xb0757;
  p.delayed_visibility = true;
  p.store_defer_probability = 1.0;
  p.window_start_launch = start_launch;
  p.window_launches = window;
  return p;
}

bool resume_run_valid(const scc::SccResult& r, const scc::SccResult& oracle) {
  return r.ok() && !r.metrics.serial_fallback && r.metrics.watchdog_trips >= 1 &&
         r.metrics.resumes >= 1 && r.metrics.recovery_seconds > 0 &&
         scc::same_partition(r.labels, oracle.labels);
}

/// One resume-side measurement on a fresh device (launch ids must align
/// with the window). Returns the recovery time (first trip -> converged
/// labels), or -1 when the run did not land as designed or the recovered
/// labeling fails the certificate — a validity gate, not charged time (see
/// the scenario comment above).
double measure_resume(const Family& fam, const scc::SccResult& oracle, const FaultPlan& plan,
                      std::uint64_t budget) {
  device::Device dev(profile_with(plan));
  const scc::SccResult r = scc::ecl_scc(fam.graph, dev, resume_options(budget));
  if (!resume_run_valid(r, oracle)) return -1.0;
  if (!scc::certify_scc(fam.graph, r.labels).ok) return -1.0;
  return r.metrics.recovery_seconds;
}

/// One fallback-side measurement: same burst, pre-§12 escalation. The trip
/// discards the run; the charged time is the abort drain plus the serial
/// Tarjan recompute + canonicalization. The certificate + oracle match are
/// validity gates outside the timed region.
double measure_fallback(const Family& fam, const scc::SccResult& oracle, const FaultPlan& plan,
                        std::uint64_t budget) {
  device::Device dev(profile_with(plan));
  const scc::SccResult r = scc::ecl_scc(fam.graph, dev, fallback_options(budget));
  if (r.ok() || r.metrics.watchdog_trips < 1) return -1.0;  // burst missed the run
  Timer recompute_timer;
  scc::SccResult serial = scc::tarjan(fam.graph);
  scc::canonicalize_labels(serial.labels);
  const double recompute = recompute_timer.seconds();
  if (!scc::certify_scc(fam.graph, serial.labels).ok ||
      !scc::same_partition(serial.labels, oracle.labels))
    return -1.0;
  return r.metrics.recovery_seconds + recompute;
}

RecoveryRow run_recovery_family(const Family& fam, std::size_t runs) {
  RecoveryRow row;
  row.name = fam.name;
  const scc::SccResult oracle = scc::tarjan(fam.graph);
  const scc::EclOptions base = recovery_base_options();

  // Fault-free launch count (for window placement) on a clean device.
  std::uint64_t max_budget = 0;
  {
    device::Device dev(device::tiny_profile());
    const scc::SccResult dry = scc::ecl_scc(fam.graph, dev, base);
    if (!dry.ok()) throw std::runtime_error("chaos_recovery: dry run failed on " + fam.name);
    row.launches = dry.metrics.kernel_launches;
  }

  // Smallest Phase-2 budget that never trips fault-free (it must exceed the
  // longest single fixpoint's sweep count, which metrics only bound).
  for (const std::uint64_t budget : {4ull, 5ull, 6ull, 9ull, 12ull, 18ull, 24ull, 36ull, 48ull}) {
    device::Device dev(device::tiny_profile());
    scc::EclOptions o = base;
    o.watchdog.max_phase2_rounds = budget;
    const scc::SccResult r = scc::ecl_scc(fam.graph, dev, o);
    if (r.ok() && r.metrics.watchdog_trips == 0) {
      max_budget = budget;
      break;
    }
  }
  if (max_budget == 0) return row;
  row.budget = max_budget;
  // Keep the burst just longer than one budget of spinning: the first trip
  // lands inside the window, the first (or second) resume lands after it
  // closes. A longer window only adds identical spin rounds to BOTH sides'
  // first trip while inflating the resume side's replay count.
  const std::uint64_t window = max_budget + 2;

  // Place the burst as late as possible while still overlapping a live
  // Phase-2 fixpoint (a window over only detect/remove launches never
  // spins, so nothing trips): probe from the back.
  for (const double frac : {0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.55, 0.4, 0.25}) {
    const std::uint64_t start = static_cast<std::uint64_t>(frac * static_cast<double>(row.launches));
    if (measure_resume(fam, oracle, burst_plan(start, window), max_budget) >= 0) {
      row.window_start = start;
      row.valid = true;
      break;
    }
  }
  if (!row.valid) return row;

  const FaultPlan plan = burst_plan(row.window_start, window);
  double resume_total = 0.0, fallback_total = 0.0;
  std::size_t resume_valid = 0, fallback_valid = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    const double rs = measure_resume(fam, oracle, plan, max_budget);
    if (rs >= 0) {
      resume_total += rs;
      ++resume_valid;
    }
    const double fs = measure_fallback(fam, oracle, plan, max_budget);
    if (fs >= 0) {
      fallback_total += fs;
      ++fallback_valid;
    }
  }
  // Benign pool races can wobble the sweep count run-to-run; demand a
  // majority of runs landed as designed before trusting the means.
  if (resume_valid * 2 <= runs || fallback_valid * 2 <= runs) {
    row.valid = false;
    return row;
  }
  row.resume_mean = resume_total / static_cast<double>(resume_valid);
  row.fallback_mean = fallback_total / static_cast<double>(fallback_valid);
  row.ratio = row.fallback_mean > 0 ? row.resume_mean / row.fallback_mean : 0.0;
  row.pass = row.ratio <= kRecoveryRatio;
  return row;
}

// ---- Contract 3: fault-free certifier overhead -----------------------------

struct OverheadRow {
  std::string name;
  double run_seconds = 0.0;
  double certify_seconds = 0.0;
  double overhead = 0.0;  ///< certify / run
};

OverheadRow run_overhead_family(const Family& fam, std::size_t runs) {
  OverheadRow row;
  row.name = fam.name;
  device::Device dev(device::tiny_profile());
  row.run_seconds = median_seconds(runs, [&] {
    const auto r = scc::ecl_scc(fam.graph, dev);
    if (!r.ok()) throw std::runtime_error("chaos_recovery: clean run failed on " + fam.name);
  });
  const scc::SccResult r = scc::ecl_scc(fam.graph, dev);
  // Steady-state per-result certification cost: the reverse adjacency is
  // shared (SccService's epoch cache; run_resilient's per-call build), so
  // certify_scc receives it as a hint rather than rebuilding it each time.
  const Digraph reverse = fam.graph.reverse();
  scc::CertifyOptions copts;
  copts.reverse_hint = &reverse;
  row.certify_seconds = median_seconds(runs, [&] {
    const auto cert = scc::certify_scc(fam.graph, r.labels, copts);
    if (!cert.ok)
      throw std::runtime_error("chaos_recovery: certifier rejected a clean labeling on " +
                               fam.name + ": " + cert.message);
  });
  row.overhead = row.run_seconds > 0 ? row.certify_seconds / row.run_seconds : 0.0;
  return row;
}

// ---- Reporting -------------------------------------------------------------

std::string json_name(const std::string& s) {
  // Family names are generated identifiers (letters, digits, -, _, x);
  // nothing to escape, but keep the seam explicit.
  return s;
}

void write_json(const std::string& path, bool smoke, std::size_t runs, const Containment& c,
                const std::vector<RecoveryRow>& recovery, std::size_t families_passing,
                const std::vector<OverheadRow>& overhead, double best_overhead,
                bool recovery_pass, bool overhead_pass, bool pass) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n";
  out << "  \"bench\": \"chaos_recovery\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"scale\": " << scale_factor() << ",\n";
  out << "  \"runs\": " << runs << ",\n";
  out << "  \"containment\": {\"runs\": " << c.runs
      << ", \"served_uncertified\": " << c.served_uncertified
      << ", \"corrupt_served\": " << c.corrupt_served
      << ", \"corruption_detections\": " << c.corruption_detections
      << ", \"stall_detections\": " << c.stall_detections << ", \"resumes\": " << c.resumes
      << ", \"fresh_reruns\": " << c.fresh_reruns
      << ", \"pass\": " << (c.pass ? "true" : "false") << "},\n";
  out << "  \"recovery\": {\"ratio_threshold\": " << kRecoveryRatio
      << ", \"families_required\": " << kFamiliesRequired << ", \"families\": [\n";
  for (std::size_t i = 0; i < recovery.size(); ++i) {
    const auto& r = recovery[i];
    out << "    {\"name\": \"" << json_name(r.name) << "\", \"launches\": " << r.launches
        << ", \"budget\": " << r.budget << ", \"window_start\": " << r.window_start
        << ", \"resume_mean_s\": " << r.resume_mean
        << ", \"fallback_mean_s\": " << r.fallback_mean << ", \"ratio\": " << r.ratio
        << ", \"valid\": " << (r.valid ? "true" : "false")
        << ", \"pass\": " << (r.pass ? "true" : "false") << "}"
        << (i + 1 < recovery.size() ? "," : "") << "\n";
  }
  out << "  ], \"families_passing\": " << families_passing
      << ", \"pass\": " << (recovery_pass ? "true" : "false") << "},\n";
  out << "  \"certifier\": {\"overhead_limit\": " << kOverheadLimit << ", \"families\": [\n";
  for (std::size_t i = 0; i < overhead.size(); ++i) {
    const auto& o = overhead[i];
    out << "    {\"name\": \"" << json_name(o.name) << "\", \"run_s\": " << o.run_seconds
        << ", \"certify_s\": " << o.certify_seconds << ", \"overhead\": " << o.overhead << "}"
        << (i + 1 < overhead.size() ? "," : "") << "\n";
  }
  out << "  ], \"best_overhead\": " << best_overhead
      << ", \"pass\": " << (overhead_pass ? "true" : "false") << "},\n";
  out << "  \"contract\": {\"pass\": " << (pass ? "true" : "false")
      << ", \"enforced\": " << (smoke ? "false" : "true") << "}\n";
  out << "}\n";
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t runs = smoke ? 1 : bench_runs();

  // Contract 1: containment.
  const Containment c = run_containment(smoke);
  std::printf("\n== Containment under chaos (lost-update + p=1.0 stall, %llu ladder runs) ==\n",
              static_cast<unsigned long long>(c.runs));
  TextTable ctable({"metric", "value"});
  ctable.add_row({"served uncertified", std::to_string(c.served_uncertified)});
  ctable.add_row({"served corrupt", std::to_string(c.corrupt_served)});
  ctable.add_row({"corruption detections", std::to_string(c.corruption_detections)});
  ctable.add_row({"stall detections", std::to_string(c.stall_detections)});
  ctable.add_row({"checkpoint resumes", std::to_string(c.resumes)});
  ctable.add_row({"fresh reruns", std::to_string(c.fresh_reruns)});
  std::printf("%s", ctable.render().c_str());

  // Contract 2: recovery latency, resume vs discard-everything.
  std::vector<RecoveryRow> recovery;
  for (const auto& fam : timing_families(smoke)) recovery.push_back(run_recovery_family(fam, runs));
  std::size_t families_passing = 0;
  for (const auto& r : recovery)
    if (r.pass) ++families_passing;
  const bool recovery_pass = families_passing >= kFamiliesRequired;
  TextTable rtable({"Family", "launches", "budget", "burst@", "resume [s]", "fallback [s]",
                    "ratio", "pass"});
  for (const auto& r : recovery) {
    rtable.add_row({r.name, std::to_string(r.launches), std::to_string(r.budget),
                    std::to_string(r.window_start), fixed(r.resume_mean, 5),
                    fixed(r.fallback_mean, 5), fixed(r.ratio, 3),
                    r.valid ? (r.pass ? "yes" : "no") : "skipped"});
  }
  std::printf("\n== Recovery latency: checkpointed resume vs discard + full serial Tarjan "
              "(mean of %zu) ==\n%s",
              runs, rtable.render().c_str());

  // Contract 3: fault-free certifier overhead.
  std::vector<OverheadRow> overhead;
  for (const auto& fam : timing_families(smoke)) overhead.push_back(run_overhead_family(fam, runs));
  double best_overhead = 1e9;
  for (const auto& o : overhead) best_overhead = std::min(best_overhead, o.overhead);
  const bool overhead_pass = best_overhead <= kOverheadLimit;
  TextTable otable({"Family", "run [s]", "certify [s]", "overhead"});
  for (const auto& o : overhead)
    otable.add_row({o.name, fixed(o.run_seconds, 5), fixed(o.certify_seconds, 5),
                    fixed(o.overhead * 100.0, 2) + "%"});
  std::printf("\n== Fault-free certifier overhead (median of %zu) ==\n%s", runs,
              otable.render().c_str());

  const bool pass = c.pass && recovery_pass && overhead_pass;
  const std::string json_path = env_string("ECL_BENCH_JSON", "BENCH_chaos_recovery.json");
  write_json(json_path, smoke, runs, c, recovery, families_passing, overhead, best_overhead,
             recovery_pass, overhead_pass, pass);
  std::printf("\ncontract: containment %s (0 uncertified, 0 corrupt of %llu), "
              "resume <= %.1fx fallback on >= %zu families: %zu pass -> %s, "
              "certifier <= %.0f%%: best %.2f%% -> %s => %s%s\n(json: %s)\n",
              c.pass ? "PASS" : "FAIL", static_cast<unsigned long long>(c.runs), kRecoveryRatio,
              kFamiliesRequired, families_passing, recovery_pass ? "PASS" : "FAIL",
              kOverheadLimit * 100.0, best_overhead * 100.0, overhead_pass ? "PASS" : "FAIL",
              pass ? "PASS" : "FAIL", smoke ? " [smoke: not enforced]" : "", json_path.c_str());

  if (!smoke && !pass) return 1;
  return 0;
}
