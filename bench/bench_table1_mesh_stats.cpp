// Regenerates Table 1: structural statistics of the small mesh graphs
// (beam-hex, star, torch-hex, torch-tet, toroid-hex, toroid-wedge) across
// their ordinates — SCC counts, size-1/size-2 counts, largest SCC, and the
// SCC-DAG depth, reported as min/max ranges like the paper.

#include <vector>

#include "bench_support/workloads.hpp"
#include "mesh/suite.hpp"
#include "stats_common.hpp"

int main() {
  using namespace ecl::bench;
  std::vector<unsigned> ordinates;
  for (const auto& group : ecl::mesh::small_mesh_suite())
    ordinates.push_back(effective_ordinates(group));
  print_mesh_stats_table("Table 1: small mesh graphs", small_mesh_workloads(), ordinates);
  return 0;
}
