// Regenerates Table 5 and Figures 5, 6, and 7: SCC-detection runtime and
// throughput on the small mesh graphs for ECL-SCC and GPU-SCC (FB-Trim) on
// both simulated GPUs and iSpan with both CPU configurations.
//
// Paper expectations (shape, §5.1.1): ECL-SCC beats GPU-SCC on every group
// except beam-hex (~parity), with geomean factors of 6.2x (Titan V) and
// 6.5x (A100); ECL-SCC outruns iSpan by more than three orders of
// magnitude on these meshes.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ecl::bench;
  const auto columns = paper_columns();
  for (const auto& workload : small_mesh_workloads())
    register_workload_benchmarks("Table5", workload, columns);

  return run_and_report(
      argc, argv, "Table 5: small mesh graphs", "Figures 5/6/7: small mesh graphs",
      {
          {"Fig 5: ECL-SCC vs GPU-SCC (Titan V)", "ECL-SCC Titan V", "GPU-SCC Titan V", 6.2},
          {"Fig 6: ECL-SCC vs GPU-SCC (A100)", "ECL-SCC A100", "GPU-SCC A100", 6.5},
          {"Fig 7: ECL-SCC A100 vs iSpan Ryzen", "ECL-SCC A100", "iSpan Ryzen", 4400.0},
          {"Fig 7: ECL-SCC A100 vs iSpan Xeon", "ECL-SCC A100", "iSpan Xeon", 4400.0},
      });
}
