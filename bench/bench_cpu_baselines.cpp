// Extension study (beyond the paper's figures): CPU-side comparison of the
// three parallel CPU codes in this repository — iSpan (Ji et al., the
// paper's CPU baseline), Hong's method (the algorithm iSpan improves on),
// and the OpenMP port of ECL-SCC — on meshes and power-law graphs.
//
// Expected shape: Hong and iSpan are close on power-law graphs (their home
// turf, with iSpan's trims giving it an edge), while ECL-SCC-OMP dominates
// on the deep-DAG mesh graphs for the same reason the GPU version does:
// its trim-free, all-vertices-as-pivots structure avoids the
// one-sweep-per-DAG-level serialization.

#include "bench_common.hpp"
#include "core/ecl_omp.hpp"
#include "core/hong.hpp"
#include "core/ispan.hpp"

namespace {

using namespace ecl;
using namespace ecl::bench;

std::vector<Column> cpu_baseline_columns() {
  return {
      {"iSpan", "ispan", "cpu", [](const graph::Digraph& g) { return scc::ispan(g); }},
      {"Hong", "hong", "cpu", [](const graph::Digraph& g) { return scc::hong(g); }},
      {"ECL-SCC-OMP", "ecl-omp", "cpu",
       [](const graph::Digraph& g) { return scc::ecl_omp(g); }},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const auto columns = cpu_baseline_columns();
  for (const auto& workload : small_mesh_workloads())
    register_workload_benchmarks("CpuBaselines", workload, columns);
  for (const auto& workload : power_law_workloads())
    register_workload_benchmarks("CpuBaselines", workload, columns);

  return run_and_report(
      argc, argv, "Extension: parallel CPU codes head to head",
      "Extension: parallel CPU codes head to head",
      {
          {"ECL-SCC-OMP vs iSpan (all inputs)", "ECL-SCC-OMP", "iSpan", 0.0},
          {"ECL-SCC-OMP vs Hong (all inputs)", "ECL-SCC-OMP", "Hong", 0.0},
          {"iSpan vs Hong (all inputs)", "iSpan", "Hong", 0.0},
      });
}
