// Chaos-injection overhead: the fault hooks in Device::launch and the
// signature-store path must cost ~nothing when the fault plan is disabled
// (one branch per launch and a null-pointer check per store). This bench
// times ECL-SCC on the Table-7 power-law workloads with the plan disabled
// versus a no-fault-device baseline, and — for context — under each fault
// class, verifying every run against Tarjan.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>

#include "bench_common.hpp"
#include "core/ecl_scc.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "device/fault.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

namespace {

using namespace ecl;
using namespace ecl::bench;

struct Variant {
  std::string name;
  device::FaultPlan plan;
};

std::vector<Variant> variants() {
  std::vector<Variant> vs;
  // "baseline" and "disabled" configure identical devices (a default
  // FaultPlan is the absence of faults); measuring both shows the disabled
  // hook's cost is indistinguishable from run-to-run noise (~1.000x).
  vs.push_back({"baseline", device::FaultPlan{}});
  vs.push_back({"disabled", device::FaultPlan{}});
  {
    device::FaultPlan p;
    p.seed = 301;
    p.permute_blocks = true;
    vs.push_back({"permute", p});
  }
  {
    device::FaultPlan p;
    p.seed = 302;
    p.scheduling_jitter = true;
    p.max_jitter_us = 5.0;
    vs.push_back({"jitter", p});
  }
  {
    device::FaultPlan p;
    p.seed = 303;
    p.spurious_reexecution = true;
    p.max_replays = 2;
    vs.push_back({"reexec", p});
  }
  {
    device::FaultPlan p;
    p.seed = 304;
    p.delayed_visibility = true;
    p.store_defer_probability = 0.25;
    vs.push_back({"defer", p});
  }
  {
    device::FaultPlan p;
    p.seed = 305;
    p.permute_blocks = true;
    p.scheduling_jitter = true;
    p.max_jitter_us = 5.0;
    p.spurious_reexecution = true;
    p.delayed_visibility = true;
    vs.push_back({"all-four", p});
  }
  return vs;
}

std::map<std::string, double> g_throughput;  // variant -> geomean Mverts/s

void register_variant(const Variant& variant,
                      std::shared_ptr<std::vector<Workload>> workloads) {
  const std::string name = "ChaosOverhead/power-law/" + variant.name;
  benchmark::RegisterBenchmark(
      name.c_str(),
      [variant, workloads](benchmark::State& state) {
        device::DeviceProfile profile = device::a100_profile();
        profile.fault_plan = variant.plan;
        device::Device dev(profile);

        // Verify once, outside the timed region: every variant must still
        // produce Tarjan's partition (the stall limit is not in this set).
        for (const auto& workload : *workloads) {
          for (const auto& g : workload.graphs) {
            const auto r = scc::ecl_scc(g, dev);
            if (!r.ok() || !scc::same_partition(r.labels, scc::tarjan(g).labels))
              throw std::runtime_error("chaos variant '" + variant.name +
                                       "' failed verification on " + workload.name);
          }
        }

        std::vector<double> best(workloads->size(), -1.0);
        for (auto _ : state) {
          for (std::size_t w = 0; w < workloads->size(); ++w) {
            Timer timer;
            for (const auto& g : (*workloads)[w].graphs) {
              const auto r = scc::ecl_scc(g, dev);
              benchmark::DoNotOptimize(r.num_components);
            }
            const double t = timer.seconds();
            if (best[w] < 0 || t < best[w]) best[w] = t;
          }
        }
        std::vector<double> tps;
        for (std::size_t w = 0; w < workloads->size(); ++w) {
          if (best[w] > 0)
            tps.push_back(double((*workloads)[w].total_vertices()) / best[w] / 1e6);
        }
        g_throughput[variant.name] = geomean(tps);
      })
      ->Iterations(static_cast<std::int64_t>(bench_runs()))
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  auto workloads = std::make_shared<std::vector<Workload>>(power_law_workloads());
  for (const auto& variant : variants()) register_variant(variant, workloads);

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const double baseline = g_throughput.count("baseline") ? g_throughput.at("baseline") : 0.0;
  TextTable table({"Fault variant", "Mverts/s", "vs baseline"});
  for (const auto& variant : variants()) {
    if (!g_throughput.count(variant.name)) continue;
    const double tp = g_throughput.at(variant.name);
    const double rel = baseline > 0 ? tp / baseline : 0.0;
    table.add_row({variant.name + "  " + variant.plan.describe(), fixed(tp, 2),
                   fixed(rel, 3) + "x"});
  }
  std::printf("\n== Chaos-injection overhead (Table-7 power-law workloads) ==\n%s",
              table.render().c_str());
  std::printf("(contract: a disabled plan costs one branch per launch and one null check "
              "per signature store, so the disabled row must sit within noise of the "
              "baseline — the <= 2%% budget; fault rows show the injected slowdown, "
              "which is deliberate, not overhead)\n");
  return 0;
}
