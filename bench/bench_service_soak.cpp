// Service soak: mixed open-loop workload against SccService under a seeded
// chaos FaultPlan that guarantees every device-backed fresh compute stalls.
//
// Two modes run back to back on identical workloads:
//  * resilient — breakers + tiered degradation enabled (the PR's pipeline);
//  * naive     — both disabled: every labeling request burns its deadline
//                in doomed fresh attempts, the queue backs up, and load is
//                shed or expires while queued.
//
// The table reports availability and latency percentiles per mode; the
// process then enforces the robustness SLOs and exits non-zero when any is
// violated:
//  1. resilient mode sheds < 1% of requests (>= 99% non-rejected);
//  2. no successful response, in either mode, completed after its deadline;
//  3. naive mode's availability is measurably below resilient mode's —
//     the degradation ladder must be what buys the nines, not the workload
//     being easy.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "service/scc_service.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"

namespace {

using namespace ecl;
using service::Request;
using service::RequestKind;
using service::Response;
using service::SccService;
using service::ServiceConfig;

struct SoakResult {
  std::string mode;
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t served_stale = 0;
  std::uint64_t served_serial = 0;
  std::uint64_t late_ok = 0;  ///< kOk responses delivered past their deadline
  std::vector<double> latencies_ms;

  double availability() const {
    return submitted ? double(ok) / double(submitted) : 0.0;
  }
  double non_rejected() const {
    return submitted ? 1.0 - double(rejected) / double(submitted) : 0.0;
  }
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * double(sorted.size() - 1));
  return sorted[idx];
}

ServiceConfig soak_config(bool resilient, std::uint64_t seed) {
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.device_workers = 2;
  cfg.queue_capacity = 128;
  cfg.backends = {"ecl-a100"};
  cfg.max_attempts = 2;
  cfg.backoff.initial_seconds = 0.0005;
  cfg.backoff.max_seconds = 0.002;
  cfg.enable_breakers = resilient;
  cfg.enable_degradation = resilient;
  cfg.seed = seed;
  // Guaranteed stall: every deferred signature store (p = 1.0) means the
  // propagation fixpoint never advances, so each fresh attempt runs until
  // its deadline slice (or the stall watchdog) cancels it.
  cfg.device_profile.fault_plan.seed = seed;
  cfg.device_profile.fault_plan.delayed_visibility = true;
  cfg.device_profile.fault_plan.store_defer_probability = 1.0;
  return cfg;
}

SoakResult run_soak(const graph::Digraph& g, bool resilient, std::uint64_t seed,
                    std::size_t num_requests, double deadline_s, double interarrival_s) {
  SoakResult out;
  out.mode = resilient ? "resilient" : "naive";
  SccService svc(g, soak_config(resilient, seed));
  Rng rng(seed ^ 0xab5eed);

  struct InFlight {
    std::future<Response> future;
    service::ServiceClock::time_point submitted_at;
    service::ServiceClock::time_point deadline;
  };
  std::vector<InFlight> inflight;
  inflight.reserve(num_requests);

  const auto interarrival = std::chrono::duration_cast<service::ServiceClock::duration>(
      std::chrono::duration<double>(interarrival_s));
  for (std::size_t i = 0; i < num_requests; ++i) {
    Request req;
    req.deadline = Request::deadline_in(deadline_s);
    req.staleness_budget = 1u << 20;
    const auto draw = rng.bounded(10);
    if (draw < 6) {
      req.kind = RequestKind::kSccLabels;
    } else if (draw < 8) {
      req.kind = RequestKind::kReachabilityQuery;
      req.u = static_cast<graph::vid>(rng.bounded(g.num_vertices()));
      req.v = static_cast<graph::vid>(rng.bounded(g.num_vertices()));
    } else if (draw < 9) {
      req.kind = RequestKind::kCondensation;
    } else {
      req.kind = RequestKind::kUpdateBatch;
      const auto u = static_cast<graph::vid>(rng.bounded(g.num_vertices()));
      const auto v = static_cast<graph::vid>(rng.bounded(g.num_vertices()));
      req.updates = {{graph::EdgeUpdate::Kind::kInsert, u, v}};
    }
    const auto now = service::ServiceClock::now();
    inflight.push_back({svc.submit(req), now, req.deadline});
    std::this_thread::sleep_for(interarrival);
  }

  for (auto& f : inflight) {
    const Response r = f.future.get();
    ++out.submitted;
    out.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(r.completed_at - f.submitted_at).count());
    if (r.ok()) {
      ++out.ok;
      if (r.completed_at > f.deadline) ++out.late_ok;
      if (r.served_by.tier == service::Tier::kStaleSnapshot) ++out.served_stale;
      if (r.served_by.tier == service::Tier::kSerialFallback) ++out.served_serial;
    } else if (r.rejected()) {
      ++out.rejected;
    } else if (r.status == service::ServiceStatus::kDeadlineExceeded) {
      ++out.deadline_exceeded;
    } else {
      ++out.unavailable;
    }
  }
  svc.shutdown();
  std::sort(out.latencies_ms.begin(), out.latencies_ms.end());
  return out;
}

}  // namespace

int main() {
  const std::uint64_t seed = static_cast<std::uint64_t>(env_int("ECL_SOAK_SEED", 1789));
  const auto num_requests = static_cast<std::size_t>(env_int("ECL_SOAK_REQUESTS", 250));
  const double deadline_s = 0.05;
  const double interarrival_s = 0.001;

  graph::SccProfile profile;
  profile.num_vertices = 400;
  profile.avg_degree = 4.0;
  profile.mid_sccs = 8;
  profile.size2_sccs = 16;
  Rng rng(seed);
  const auto g = graph::scc_profile_graph(profile, rng);

  std::printf("service soak: %zu requests/mode, %.0fms deadlines, %.1fms inter-arrival, "
              "chaos defer p=1.0 (seed %llu)\n",
              num_requests, deadline_s * 1e3, interarrival_s * 1e3,
              static_cast<unsigned long long>(seed));

  const SoakResult resilient = run_soak(g, true, seed, num_requests, deadline_s, interarrival_s);
  const SoakResult naive = run_soak(g, false, seed, num_requests, deadline_s, interarrival_s);

  TextTable table({"mode", "ok", "rejected", "deadline", "unavail", "stale", "serial",
                   "avail", "p50 ms", "p99 ms", "p999 ms"});
  for (const SoakResult* r : {&resilient, &naive}) {
    table.add_row({r->mode, std::to_string(r->ok), std::to_string(r->rejected),
                   std::to_string(r->deadline_exceeded), std::to_string(r->unavailable),
                   std::to_string(r->served_stale), std::to_string(r->served_serial),
                   fixed(100.0 * r->availability(), 1) + "%",
                   fixed(percentile(r->latencies_ms, 0.50), 2),
                   fixed(percentile(r->latencies_ms, 0.99), 2),
                   fixed(percentile(r->latencies_ms, 0.999), 2)});
  }
  std::printf("\n== Service soak under guaranteed-stall chaos ==\n%s\n",
              table.render().c_str());

  int failures = 0;
  if (resilient.non_rejected() < 0.99) {
    std::printf("FAIL: resilient mode shed %.2f%% of requests (SLO: < 1%%)\n",
                100.0 * (1.0 - resilient.non_rejected()));
    ++failures;
  }
  if (resilient.late_ok + naive.late_ok != 0) {
    std::printf("FAIL: %llu successful responses completed after their deadline\n",
                static_cast<unsigned long long>(resilient.late_ok + naive.late_ok));
    ++failures;
  }
  if (naive.availability() > resilient.availability() - 0.10) {
    std::printf("FAIL: naive availability %.1f%% is not measurably below resilient %.1f%%\n",
                100.0 * naive.availability(), 100.0 * resilient.availability());
    ++failures;
  }
  if (failures == 0) {
    std::printf("PASS: availability %.1f%% resilient vs %.1f%% naive, %.2f%% shed, "
                "0 deadline-violating successes\n",
                100.0 * resilient.availability(), 100.0 * naive.availability(),
                100.0 * (1.0 - resilient.non_rejected()));
  }
  return failures == 0 ? 0 : 1;
}
