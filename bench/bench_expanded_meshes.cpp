// Regenerates §5.1.4 (expanded meshes): the first ordinate of twist-hex
// and large toroid-hex replicated 10x (chained copies, exactly 10|V| - 9
// vertices as in the paper), comparing ECL-SCC on the A100 profile with
// GPU-SCC and iSpan.
//
// Paper expectations: on expanded twist-hex (one giant SCC) ECL-SCC is
// ~1.4x faster than iSpan (GPU-SCC crashed at this size); on expanded
// toroid-hex (15.6M tiny SCCs) ECL-SCC is 78.5x faster than GPU-SCC and
// iSpan times out (> 3 hours).

#include "bench_common.hpp"
#include "mesh/ordinates.hpp"
#include "mesh/replicate.hpp"
#include "mesh/suite.hpp"
#include "mesh/sweep_graph.hpp"

namespace {

using namespace ecl;
using namespace ecl::bench;

Workload expanded_workload(const char* group_name) {
  const auto suite = mesh::large_mesh_suite();
  const auto* group = mesh::find_group(suite, group_name);
  const auto m = group->generate_scaled();
  const auto omega = mesh::fibonacci_ordinates(group->num_ordinates).front();
  Workload wl;
  wl.name = std::string("expanded-") + group_name;
  wl.graphs.push_back(mesh::replicate_chain(mesh::build_sweep_graph(m, omega), 10));
  return wl;
}

}  // namespace

int main(int argc, char** argv) {
  const auto columns = paper_columns();
  register_workload_benchmarks("Expanded", expanded_workload("twist-hex"), columns);
  register_workload_benchmarks("Expanded", expanded_workload("toroid-hex"), columns);

  return run_and_report(
      argc, argv, "Sec 5.1.4: expanded (10x) meshes", "Sec 5.1.4: expanded meshes",
      {
          {"expanded toroid-hex: ECL-SCC vs GPU-SCC (A100)", "ECL-SCC A100", "GPU-SCC A100",
           78.5},
          {"expanded twist-hex: ECL-SCC A100 vs iSpan Xeon", "ECL-SCC A100", "iSpan Xeon", 1.4},
      });
}
