// High-diameter lever ablation (DESIGN.md §15): chain chasing, the hash-bag
// sparse frontier, and (informationally) FB-Trim's multi-pivot + trim-chase
// analogues, measured against the PR-5 all-on baseline (the
// `ecl-loadbalance` registry configuration: §10 + §11 levers on, §15 levers
// off) on the Table-2 large meshes and the Table-7 power-law stand-ins.
//
// Every run is verified against Tarjan outside the timed region. Timing is
// best-of-N with run-major config interleaving (see config_seconds) — on a
// single shared core, contention is additive noise and the interleaved
// minimum is the stable estimator. Besides
// the human-readable tables, the bench emits machine-readable
// BENCH_highdiameter.json (path overridable via ECL_BENCH_JSON) and
// enforces the PR's performance contract:
//
//  * with all §15 levers on, at least TWO mesh families must run >= 1.3x
//    faster than the loadbalance baseline, at least one of them
//    mobius-strip or torch-hex (the deep, chain-heavy sweeps the levers
//    target), AND
//  * no power-law workload may regress below 1.0x (within measurement
//    tolerance) — the levers must be free where they cannot help.
//
// `--smoke` runs a reduced workload set and checks only that the contract
// machinery is wired (CI smoke lanes run at tiny ECL_SCALE, where launch
// overhead dominates and the ratio is meaningless).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_support/workloads.hpp"
#include "core/ecl_scc.hpp"
#include "core/fb_trim.hpp"
#include "core/tarjan.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

namespace {

using namespace ecl;
using namespace ecl::bench;

constexpr double kContractSpeedup = 1.3;
/// "Not below 1.0x" with an allowance for timing noise at bench scale.
constexpr double kRegressionFloor = 0.95;

struct LeverConfig {
  std::string name;
  scc::EclOptions opts;
};

std::vector<LeverConfig> configs() {
  std::vector<LeverConfig> cs;
  cs.push_back({"loadbalance", scc::ecl_highdiameter_levers_off()});
  {
    auto o = scc::ecl_highdiameter_levers_off();
    o.chain_chasing = true;
    cs.push_back({"chain-only", o});
  }
  {
    auto o = scc::ecl_highdiameter_levers_off();
    o.hashbag_frontier = true;
    cs.push_back({"hashbag-only", o});
  }
  cs.push_back({"all-on", scc::EclOptions{}});
  return cs;
}

struct WorkloadRow {
  std::string family;  ///< "mesh" or "powerlaw"
  Workload workload;
  std::vector<double> seconds;  ///< one entry per config
  // §15 observability for the all-on run (summed over the workload).
  std::uint64_t chains_collapsed = 0;
  std::uint64_t max_chain_len = 0;
  std::uint64_t hashbag_rounds = 0;
};

/// Times every config on one workload with run-major interleaving: each of
/// the bench_runs() passes times every config once (A,B,C,D | A,B,C,D | ...)
/// and every cell keeps its MINIMUM across passes. The bench host is one
/// shared core, so scheduling contention is strictly additive noise: the
/// interleaved minimum estimates each config's uncontended runtime under
/// like machine conditions, where a config-major median folds slow host
/// phases into whichever config block they happen to land on (observed as
/// ±25% drift on configs whose code path is byte-identical).
std::vector<double> config_seconds(const Workload& workload, const std::vector<LeverConfig>& cs,
                                   device::Device& dev) {
  std::vector<double> best(cs.size(), 1e300);
  for (std::size_t run = 0; run < bench_runs(); ++run) {
    for (std::size_t c = 0; c < cs.size(); ++c) {
      Timer timer;
      for (const auto& g : workload.graphs) {
        const auto r = scc::ecl_scc(g, dev, cs[c].opts);
        if (!r.ok()) throw std::runtime_error("highdiameter: run failed on " + workload.name);
      }
      best[c] = std::min(best[c], timer.seconds());
    }
  }
  return best;
}

/// One untimed verified pass; also harvests the §15 counters for the row.
void verify_config(WorkloadRow& row, const scc::EclOptions& opts, device::Device& dev,
                   const std::string& config, bool harvest) {
  for (const auto& g : row.workload.graphs) {
    const auto r = scc::ecl_scc(g, dev, opts);
    if (!r.ok() || !scc::same_partition(r.labels, scc::tarjan(g).labels))
      throw std::runtime_error("highdiameter config '" + config +
                               "' failed verification on " + row.workload.name);
    if (harvest) {
      row.chains_collapsed += r.metrics.chains_collapsed;
      row.max_chain_len = std::max(row.max_chain_len, r.metrics.max_chain_len);
      row.hashbag_rounds += r.metrics.hashbag_rounds;
    }
  }
}

std::string json_escape_free_name(const std::string& s) {
  // Workload/config names are generated identifiers (letters, digits, -, _);
  // nothing to escape, but keep the seam explicit.
  return s;
}

void write_json(const std::string& path, const std::vector<LeverConfig>& cs,
                const std::vector<WorkloadRow>& rows, bool smoke,
                const std::vector<std::string>& fast_meshes, bool target_hit,
                double worst_powerlaw, const std::string& worst_workload, bool mesh_pass,
                bool powerlaw_pass) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n";
  out << "  \"bench\": \"highdiameter\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"scale\": " << scale_factor() << ",\n";
  out << "  \"runs\": " << bench_runs() << ",\n";
  out << "  \"configs\": [";
  for (std::size_t i = 0; i < cs.size(); ++i)
    out << (i ? ", " : "") << '"' << json_escape_free_name(cs[i].name) << '"';
  out << "],\n";
  out << "  \"workloads\": [\n";
  for (std::size_t w = 0; w < rows.size(); ++w) {
    const auto& row = rows[w];
    out << "    {\"name\": \"" << json_escape_free_name(row.workload.name)
        << "\", \"family\": \"" << row.family
        << "\", \"vertices\": " << row.workload.total_vertices()
        << ", \"edges\": " << row.workload.total_edges() << ",\n";
    out << "     \"seconds\": {";
    for (std::size_t c = 0; c < cs.size(); ++c)
      out << (c ? ", " : "") << '"' << cs[c].name << "\": " << row.seconds[c];
    out << "},\n     \"speedup_vs_loadbalance\": {";
    for (std::size_t c = 0; c < cs.size(); ++c) {
      const double speedup = row.seconds[c] > 0 ? row.seconds[0] / row.seconds[c] : 0.0;
      out << (c ? ", " : "") << '"' << cs[c].name << "\": " << speedup;
    }
    out << "},\n     \"chains_collapsed\": " << row.chains_collapsed
        << ", \"max_chain_len\": " << row.max_chain_len
        << ", \"hashbag_rounds\": " << row.hashbag_rounds << "}"
        << (w + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"contract\": {\"threshold\": " << kContractSpeedup
      << ", \"regression_floor\": " << kRegressionFloor << ", \"config\": \"all-on\""
      << ", \"fast_meshes\": [";
  for (std::size_t i = 0; i < fast_meshes.size(); ++i)
    out << (i ? ", " : "") << '"' << json_escape_free_name(fast_meshes[i]) << '"';
  out << "], \"target_family_hit\": " << (target_hit ? "true" : "false")
      << ", \"worst_powerlaw\": " << worst_powerlaw << ", \"worst_powerlaw_workload\": \""
      << json_escape_free_name(worst_workload)
      << "\", \"mesh_pass\": " << (mesh_pass ? "true" : "false")
      << ", \"powerlaw_pass\": " << (powerlaw_pass ? "true" : "false")
      << ", \"pass\": " << (mesh_pass && powerlaw_pass ? "true" : "false")
      << ", \"enforced\": " << (smoke ? "false" : "true") << "}\n";
  out << "}\n";
  if (!out) throw std::runtime_error("write failed: " + path);
}

/// Informational FB-Trim section: the §15 FbOptions analogues (multi-pivot
/// sets + trim chasing) against the classic single-pivot FB-Trim. Not part
/// of the exit-code contract — FB-Trim is the comparison baseline family,
/// not the paper configuration — but recorded so the levers' effect on the
/// second algorithm family stays visible.
void fb_section(const std::vector<WorkloadRow>& rows, device::Device& dev) {
  scc::FbOptions classic;
  classic.multi_pivot = false;
  classic.trim_chase = false;
  const scc::FbOptions all_on;  // defaults: both levers on
  TextTable table({"Workload", "family", "classic [s]", "multi-pivot [s]", "x",
                   "pivots/round", "trim chains"});
  for (const auto& row : rows) {
    double base = 0.0, on = 0.0;
    double pivots_per_round = 0.0;
    std::uint64_t trim_chains = 0;
    for (const auto& g : row.workload.graphs) {
      {
        Timer t;
        const auto r = scc::fb_trim(g, dev, classic);
        base += t.seconds();
        if (!r.ok() || !scc::same_partition(r.labels, scc::tarjan(g).labels))
          throw std::runtime_error("fb classic failed verification on " + row.workload.name);
      }
      {
        Timer t;
        const auto r = scc::fb_trim(g, dev, all_on);
        on += t.seconds();
        if (!r.ok() || !scc::same_partition(r.labels, scc::tarjan(g).labels))
          throw std::runtime_error("fb multi-pivot failed verification on " +
                                   row.workload.name);
        pivots_per_round = std::max(pivots_per_round, r.metrics.pivots_per_round);
        trim_chains += r.metrics.chains_collapsed;
      }
    }
    table.add_row({row.workload.name, row.family, fixed(base, 4), fixed(on, 4),
                   fixed(on > 0 ? base / on : 0.0, 2), fixed(pivots_per_round, 2),
                   std::to_string(trim_chains)});
  }
  std::printf("\n== FB-Trim §15 analogues (informational; single timed pass) ==\n%s",
              table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto cs = configs();
  std::vector<WorkloadRow> rows;
  for (auto& w : large_mesh_workloads()) rows.push_back({"mesh", std::move(w), {}});
  for (auto& w : power_law_workloads()) rows.push_back({"powerlaw", std::move(w), {}});
  if (smoke) {
    // Keep the two contract-target mesh families and three power-law
    // stand-ins: enough to exercise every lever and the JSON/contract
    // plumbing without a long CI lane.
    std::vector<WorkloadRow> reduced;
    std::size_t pl_kept = 0;
    for (auto& row : rows) {
      if (row.family == "mesh" &&
          (row.workload.name == "mobius-strip" || row.workload.name == "torch-hex")) {
        reduced.push_back(std::move(row));
      } else if (row.family == "powerlaw" && pl_kept < 3) {
        reduced.push_back(std::move(row));
        ++pl_kept;
      }
    }
    rows = std::move(reduced);
  }

  device::Device dev(device::a100_profile());
  for (auto& row : rows) {
    for (std::size_t c = 0; c < cs.size(); ++c)
      verify_config(row, cs[c].opts, dev, cs[c].name, /*harvest=*/c == cs.size() - 1);
    row.seconds = config_seconds(row.workload, cs, dev);
  }

  // Runtime table + per-lever speedups over the loadbalance baseline.
  std::vector<std::string> headers = {"Workload", "family"};
  for (const auto& c : cs) headers.push_back(c.name + " [s]");
  for (std::size_t c = 1; c < cs.size(); ++c) headers.push_back(cs[c].name + " x");
  headers.push_back("chains");
  headers.push_back("longest");
  headers.push_back("bag rounds");
  TextTable table(headers);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.workload.name, row.family};
    for (double s : row.seconds) cells.push_back(fixed(s, 4));
    for (std::size_t c = 1; c < cs.size(); ++c)
      cells.push_back(fixed(row.seconds[c] > 0 ? row.seconds[0] / row.seconds[c] : 0.0, 2));
    cells.push_back(std::to_string(row.chains_collapsed));
    cells.push_back(std::to_string(row.max_chain_len));
    cells.push_back(std::to_string(row.hashbag_rounds));
    table.add_row(cells);
  }
  std::printf("\n== High-diameter lever ablation (best of %zu interleaved; "
              "speedups vs loadbalance) ==\n%s",
              bench_runs(), table.render().c_str());

  if (!smoke) fb_section(rows, dev);

  // Contract evaluation.
  const std::size_t all_on = cs.size() - 1;
  std::vector<std::string> fast_meshes;
  bool target_hit = false;
  double worst_powerlaw = 1e9;
  std::string worst_workload = "none";
  for (const auto& row : rows) {
    const double speedup = row.seconds[all_on] > 0 ? row.seconds[0] / row.seconds[all_on] : 0.0;
    if (row.family == "mesh") {
      if (speedup >= kContractSpeedup) {
        fast_meshes.push_back(row.workload.name);
        if (row.workload.name == "mobius-strip" || row.workload.name == "torch-hex")
          target_hit = true;
      }
    } else if (speedup < worst_powerlaw) {
      worst_powerlaw = speedup;
      worst_workload = row.workload.name;
    }
  }
  const bool mesh_pass = fast_meshes.size() >= 2 && target_hit;
  const bool powerlaw_pass = worst_powerlaw >= kRegressionFloor;

  const std::string json_path = env_string("ECL_BENCH_JSON", "BENCH_highdiameter.json");
  write_json(json_path, cs, rows, smoke, fast_meshes, target_hit, worst_powerlaw,
             worst_workload, mesh_pass, powerlaw_pass);
  std::printf("\ncontract: all-on >= %.1fx over loadbalance on >= 2 mesh families "
              "(incl. mobius-strip or torch-hex): %zu fast, target family %s -> %s\n"
              "contract: no power-law workload below %.2fx: worst %.2fx on %s -> %s%s\n"
              "(json: %s)\n",
              kContractSpeedup, fast_meshes.size(), target_hit ? "hit" : "missed",
              mesh_pass ? "PASS" : "FAIL", kRegressionFloor, worst_powerlaw,
              worst_workload.c_str(), powerlaw_pass ? "PASS" : "FAIL",
              smoke ? " [smoke: not enforced]" : "", json_path.c_str());

  if (!smoke && !(mesh_pass && powerlaw_pass)) return 1;
  return 0;
}
