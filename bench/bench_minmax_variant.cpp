// Extension study (beyond the paper's figures): the 4-signature min/max
// variant of §3.3. The paper describes computing 2 minimum signatures next
// to the 2 maximums — detecting at least TWO SCCs per cluster per outer
// iteration — but rejects it because it doubles signature memory. This
// bench quantifies that trade-off: outer iterations saved vs. runtime paid
// for the extra propagation work.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.hpp"
#include "core/ecl_scc.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

namespace {

using namespace ecl;
using namespace ecl::bench;

struct Observation {
  double seconds = 0.0;
  std::uint64_t outer_iterations = 0;
  std::uint64_t vertices = 0;
};

std::map<std::string, std::map<std::string, Observation>> g_obs;  // workload -> variant

void register_variant(const Workload& workload, const std::string& variant, bool min_max) {
  auto shared = std::make_shared<Workload>(workload);
  const std::string name = "MinMax/" + workload.name + "/" + variant;
  benchmark::RegisterBenchmark(name.c_str(), [shared, variant, min_max](
                                                 benchmark::State& state) {
    device::Device dev(device::a100_profile());
    scc::EclOptions opts;
    opts.min_max_signatures = min_max;
    Observation obs;
    obs.vertices = shared->total_vertices() / shared->graphs.size();
    double best = -1.0;
    for (auto _ : state) {
      Timer timer;
      std::uint64_t outer = 0;
      for (const auto& g : shared->graphs) {
        const auto r = scc::ecl_scc(g, dev, opts);
        outer += r.metrics.outer_iterations;
        benchmark::DoNotOptimize(r.num_components);
      }
      const double t = timer.seconds();
      if (best < 0 || t < best) best = t;
      obs.outer_iterations = outer / shared->graphs.size();
    }
    obs.seconds = best / static_cast<double>(shared->graphs.size());
    g_obs[shared->name][variant] = obs;
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(shared->total_vertices()));
  })
      ->Iterations(static_cast<std::int64_t>(bench_runs()))
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  std::vector<Workload> workloads = small_mesh_workloads();
  for (auto& wl : power_law_workloads()) workloads.push_back(std::move(wl));
  for (const auto& wl : workloads) {
    register_variant(wl, "2-signatures", false);
    register_variant(wl, "4-signatures", true);
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  TextTable table({"Input", "2-sig time (ms)", "4-sig time (ms)", "2-sig outer iters",
                   "4-sig outer iters", "iter savings"});
  for (const auto& [wl, variants] : g_obs) {
    const auto& two = variants.at("2-signatures");
    const auto& four = variants.at("4-signatures");
    const double savings = two.outer_iterations == 0
                               ? 0.0
                               : 100.0 * (1.0 - double(four.outer_iterations) /
                                                    double(two.outer_iterations));
    table.add_row({wl, fixed(two.seconds * 1e3, 3), fixed(four.seconds * 1e3, 3),
                   std::to_string(two.outer_iterations), std::to_string(four.outer_iterations),
                   fixed(savings, 1) + "%"});
  }
  std::printf("\n== Extension: 4-signature min/max variant vs shipped 2-signature ECL-SCC "
              "(A100 profile) ==\n%s",
              table.render().c_str());
  std::printf("(the paper rejected the 4-signature design for doubling signature memory; "
              "this table shows the outer-iteration savings it would buy, §3.3)\n");
  return 0;
}
