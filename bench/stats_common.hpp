#ifndef ECL_BENCH_STATS_COMMON_HPP
#define ECL_BENCH_STATS_COMMON_HPP

// Shared renderer for the structural tables (Tables 1-3): computes SCC
// statistics of every graph in a workload with Tarjan and prints the
// paper's min/max columns.

#include <string>
#include <vector>

#include "bench_support/harness.hpp"

namespace ecl::bench {

/// Prints a Table 1/2-shaped row set (min/max over each workload's graphs).
void print_mesh_stats_table(const std::string& title, const std::vector<Workload>& workloads,
                            const std::vector<unsigned>& ordinate_counts);

/// Prints a Table 3-shaped row set (one graph per workload).
void print_graph_stats_table(const std::string& title, const std::vector<Workload>& workloads);

}  // namespace ecl::bench

#endif  // ECL_BENCH_STATS_COMMON_HPP
