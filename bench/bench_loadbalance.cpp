// Load-balance lever ablation (DESIGN.md §11): work-stealing persistent
// workers, merge-path edge partitioning, and the hub-clustering reorder,
// each measured independently and together against the PR-4 hot path (the
// `ecl-hotpath` registry configuration: §10 levers on, §11 levers off) on
// the Table-6 large meshes and the Table-7 power-law stand-ins.
//
// Every run is verified against Tarjan outside the timed region. Besides
// the human-readable tables, the bench emits machine-readable
// BENCH_loadbalance.json (path overridable via ECL_BENCH_JSON) and
// enforces the PR's performance contract:
//
//  * with all §11 levers on, at least one power-law workload must run
//    >= 1.3x faster than the hotpath baseline, AND
//  * the measured per-block imbalance (work-weighted max/mean over
//    per-sweep ASSIGNED edges, see LaunchStats::block_imbalance) must not
//    be worse than the baseline's on ANY power-law workload, and must be
//    strictly better wherever the baseline shows real skew, AND
//  * on every workload where the degree-skew pre-scan ADMITS the hub
//    permutation (SccMetrics::hub_reorder_applied), all-on must not run
//    below 1.0x (within timing tolerance; median of paired per-pass
//    ratios) versus the same configuration with hub_reorder forced off
//    ("no-reorder") — the gate must never admit the permutation on a
//    workload where it loses. Where the gate declines, the two configs are
//    identical by construction and timing them against each other would
//    only measure host noise. (A best-of-all-static-configs floor is NOT
//    enforced:
//    edge_balanced wins big on a few workloads and costs 5-15% on others,
//    and choosing it per graph is the per-graph policy-engine item on the
//    roadmap, not this lever's predictor.)
//
// `--smoke` runs a reduced workload set and checks only that the contract
// machinery is wired (CI smoke lanes run at tiny ECL_SCALE, where launch
// overhead dominates and the ratio is meaningless).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_support/workloads.hpp"
#include "core/ecl_scc.hpp"
#include "core/tarjan.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

namespace {

using namespace ecl;
using namespace ecl::bench;

constexpr double kContractSpeedup = 1.3;
/// "Not below 1.0x" with an allowance for timing noise at bench scale.
constexpr double kRegressionFloor = 0.95;

struct LeverConfig {
  std::string name;
  scc::EclOptions opts;
};

std::vector<LeverConfig> configs() {
  std::vector<LeverConfig> cs;
  cs.push_back({"hotpath", scc::ecl_loadbalance_levers_off()});
  {
    auto o = scc::ecl_loadbalance_levers_off();
    o.work_stealing = true;
    cs.push_back({"steal-only", o});
  }
  {
    auto o = scc::ecl_loadbalance_levers_off();
    o.edge_balanced = true;
    cs.push_back({"edgebal-only", o});
  }
  {
    auto o = scc::ecl_loadbalance_levers_off();
    o.hub_reorder = true;
    cs.push_back({"reorder-only", o});
  }
  // All §11 levers on except the reorder permutation: the control arm for
  // the hub_reorder predictor contract (same config as all-on, reorder
  // forced off, so the ratio isolates the one gated decision).
  {
    auto o = scc::ecl_highdiameter_levers_off();
    o.hub_reorder = false;
    cs.push_back({"no-reorder", o});
  }
  // All §11 levers on, §15 high-diameter levers still off: this bench stays
  // a pure load-balance ablation (bench_highdiameter owns the §15 levers).
  cs.push_back({"all-on", scc::ecl_highdiameter_levers_off()});
  return cs;
}

struct WorkloadRow {
  std::string family;  ///< "mesh" or "powerlaw"
  Workload workload;
  std::vector<double> seconds;    ///< one entry per config (min across passes)
  std::vector<std::vector<double>> passes;  ///< raw [pass][config] times
  std::vector<double> imbalance;  ///< work-weighted max/mean, one per config
  bool reorder_fired = false;     ///< gate admitted the permutation under all-on
};

/// Times every config on one workload with run-major interleaving (each
/// pass times every config once, each cell keeps its minimum across
/// passes). The bench host is one shared core, so contention is strictly
/// additive noise: the interleaved minimum estimates each config's
/// uncontended runtime under like machine conditions, where a config-major
/// median folds slow host phases into whole config blocks.
std::vector<std::vector<double>> config_seconds(const Workload& workload,
                                                const std::vector<LeverConfig>& cs,
                                                device::Device& dev) {
  std::vector<std::vector<double>> passes;
  for (std::size_t run = 0; run < bench_runs(); ++run) {
    std::vector<double> pass(cs.size());
    for (std::size_t c = 0; c < cs.size(); ++c) {
      Timer timer;
      for (const auto& g : workload.graphs) {
        const auto r = scc::ecl_scc(g, dev, cs[c].opts);
        if (!r.ok()) throw std::runtime_error("loadbalance: run failed on " + workload.name);
      }
      pass[c] = timer.seconds();
    }
    passes.push_back(std::move(pass));
  }
  return passes;
}

std::vector<double> min_per_config(const std::vector<std::vector<double>>& passes,
                                   std::size_t configs) {
  std::vector<double> best(configs, 1e300);
  for (const auto& pass : passes)
    for (std::size_t c = 0; c < configs; ++c) best[c] = std::min(best[c], pass[c]);
  return best;
}

/// One untimed pass with freshly reset stats: the device's work-weighted
/// imbalance metric over exactly this workload/config pair.
double measured_imbalance(const Workload& workload, const scc::EclOptions& opts,
                          device::Device& dev) {
  dev.stats().reset();
  for (const auto& g : workload.graphs) {
    const auto r = scc::ecl_scc(g, dev, opts);
    if (!r.ok()) throw std::runtime_error("loadbalance: run failed on " + workload.name);
  }
  const double imbalance = dev.stats().block_imbalance();
  dev.stats().reset();
  return imbalance;
}

/// Verifies every graph against Tarjan; returns whether the degree-skew
/// gate admitted the hub permutation on any of them (meaningful only for
/// configs with hub_reorder enabled).
bool verify_config(const Workload& workload, const scc::EclOptions& opts,
                   device::Device& dev, const std::string& config) {
  bool reorder_fired = false;
  for (const auto& g : workload.graphs) {
    const auto r = scc::ecl_scc(g, dev, opts);
    if (!r.ok() || !scc::same_partition(r.labels, scc::tarjan(g).labels))
      throw std::runtime_error("loadbalance config '" + config +
                               "' failed verification on " + workload.name);
    reorder_fired |= r.metrics.hub_reorder_applied;
  }
  return reorder_fired;
}

std::string json_escape_free_name(const std::string& s) {
  // Workload/config names are generated identifiers (letters, digits, -, _);
  // nothing to escape, but keep the seam explicit.
  return s;
}

void write_json(const std::string& path, const std::vector<LeverConfig>& cs,
                const std::vector<WorkloadRow>& rows, bool smoke, double best,
                const std::string& best_workload, bool speedup_pass, bool imbalance_pass,
                double worst_vs_no_reorder, const std::string& worst_workload,
                std::size_t fired_count, bool no_regression_pass) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n";
  out << "  \"bench\": \"loadbalance\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"scale\": " << scale_factor() << ",\n";
  out << "  \"runs\": " << bench_runs() << ",\n";
  out << "  \"configs\": [";
  for (std::size_t i = 0; i < cs.size(); ++i)
    out << (i ? ", " : "") << '"' << json_escape_free_name(cs[i].name) << '"';
  out << "],\n";
  out << "  \"workloads\": [\n";
  for (std::size_t w = 0; w < rows.size(); ++w) {
    const auto& row = rows[w];
    out << "    {\"name\": \"" << json_escape_free_name(row.workload.name)
        << "\", \"family\": \"" << row.family
        << "\", \"vertices\": " << row.workload.total_vertices()
        << ", \"edges\": " << row.workload.total_edges() << ",\n";
    out << "     \"seconds\": {";
    for (std::size_t c = 0; c < cs.size(); ++c)
      out << (c ? ", " : "") << '"' << cs[c].name << "\": " << row.seconds[c];
    out << "},\n     \"speedup_vs_hotpath\": {";
    for (std::size_t c = 0; c < cs.size(); ++c) {
      const double speedup = row.seconds[c] > 0 ? row.seconds[0] / row.seconds[c] : 0.0;
      out << (c ? ", " : "") << '"' << cs[c].name << "\": " << speedup;
    }
    out << "},\n     \"block_imbalance\": {";
    for (std::size_t c = 0; c < cs.size(); ++c)
      out << (c ? ", " : "") << '"' << cs[c].name << "\": " << row.imbalance[c];
    out << "},\n     \"reorder_fired\": " << (row.reorder_fired ? "true" : "false") << "}"
        << (w + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"contract\": {\"threshold\": " << kContractSpeedup
      << ", \"family\": \"powerlaw\", \"config\": \"all-on\", \"best\": " << best
      << ", \"best_workload\": \"" << json_escape_free_name(best_workload)
      << "\", \"speedup_pass\": " << (speedup_pass ? "true" : "false")
      << ", \"imbalance_pass\": " << (imbalance_pass ? "true" : "false")
      << ", \"regression_floor\": " << kRegressionFloor
      << ", \"gate_fired_count\": " << fired_count
      << ", \"worst_vs_no_reorder\": " << worst_vs_no_reorder
      << ", \"worst_vs_no_reorder_workload\": \"" << json_escape_free_name(worst_workload)
      << "\", \"no_regression_pass\": " << (no_regression_pass ? "true" : "false")
      << ", \"pass\": "
      << (speedup_pass && imbalance_pass && no_regression_pass ? "true" : "false")
      << ", \"enforced\": " << (smoke ? "false" : "true") << "}\n";
  out << "}\n";
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto cs = configs();
  std::vector<WorkloadRow> rows;
  for (auto& w : large_mesh_workloads()) rows.push_back({"mesh", std::move(w), {}, {}});
  for (auto& w : power_law_workloads()) rows.push_back({"powerlaw", std::move(w), {}, {}});
  if (smoke) {
    // Keep one mesh group and three power-law stand-ins: enough to exercise
    // every lever and the JSON/contract plumbing without a long CI lane.
    std::vector<WorkloadRow> reduced;
    std::size_t mesh_kept = 0;
    std::size_t pl_kept = 0;
    for (auto& row : rows) {
      if (row.family == "mesh" && mesh_kept < 1) {
        reduced.push_back(std::move(row));
        ++mesh_kept;
      } else if (row.family == "powerlaw" && pl_kept < 3) {
        reduced.push_back(std::move(row));
        ++pl_kept;
      }
    }
    rows = std::move(reduced);
  }

  device::Device dev(device::a100_profile());
  for (auto& row : rows) {
    for (const auto& config : cs) {
      const bool fired = verify_config(row.workload, config.opts, dev, config.name);
      if (config.name == "all-on") row.reorder_fired = fired;
      row.imbalance.push_back(measured_imbalance(row.workload, config.opts, dev));
    }
    row.passes = config_seconds(row.workload, cs, dev);
    row.seconds = min_per_config(row.passes, cs.size());
  }

  // Runtime table + per-lever speedups over the hotpath baseline.
  std::vector<std::string> headers = {"Workload", "family"};
  for (const auto& c : cs) headers.push_back(c.name + " [s]");
  for (std::size_t c = 1; c < cs.size(); ++c) headers.push_back(cs[c].name + " x");
  TextTable table(headers);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.workload.name, row.family};
    for (double s : row.seconds) cells.push_back(fixed(s, 4));
    for (std::size_t c = 1; c < cs.size(); ++c)
      cells.push_back(fixed(row.seconds[c] > 0 ? row.seconds[0] / row.seconds[c] : 0.0, 2));
    table.add_row(cells);
  }
  std::printf("\n== Load-balance lever ablation (best of %zu interleaved; "
              "speedups vs hotpath) ==\n%s",
              bench_runs(), table.render().c_str());

  // Imbalance table: max/mean per-block edge work, work-weighted.
  std::vector<std::string> iheaders = {"Workload", "family"};
  for (const auto& c : cs) iheaders.push_back(c.name);
  TextTable itable(iheaders);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.workload.name, row.family};
    for (double im : row.imbalance) cells.push_back(fixed(im, 3));
    itable.add_row(cells);
  }
  std::printf("\n== Per-block imbalance (work-weighted max/mean; 1.0 = balanced) ==\n%s",
              itable.render().c_str());

  double best = 0.0;
  std::string best_workload = "none";
  const std::size_t all_on = cs.size() - 1;
  bool imbalance_pass = true;
  for (const auto& row : rows) {
    if (row.family != "powerlaw") continue;
    if (row.seconds[all_on] > 0) {
      const double speedup = row.seconds[0] / row.seconds[all_on];
      if (speedup > best) {
        best = speedup;
        best_workload = row.workload.name;
      }
    }
    // Not worse than the baseline on ANY power-law workload (and strictly
    // better whenever the baseline shows real skew).
    const double base = row.imbalance[0];
    const double on = row.imbalance[all_on];
    if (on > base + 1e-9 || (base > 1.05 && on >= base)) imbalance_pass = false;
  }
  const bool speedup_pass = best >= kContractSpeedup;

  // No-regression term (the hub_reorder predictor's contract): on EVERY
  // workload, all-on must be at least as fast as the identical configuration
  // with hub_reorder forced off, within timing tolerance. The predictor is
  // free to leave speed on the table (rejecting a would-be winner costs
  // nothing here) but must never admit the permutation where it loses.
  //
  // Statistic: median across passes of the PAIRED per-pass ratio (the two
  // cells sit back-to-back inside each interleaved pass, so additive host
  // contention hits both and largely cancels in the ratio), enforced ONLY
  // on workloads where the gate actually admitted the permutation. Where it
  // declined, all-on and no-reorder are the same configuration by
  // construction — timing them against each other just measures host noise.
  const std::size_t no_reorder = all_on - 1;
  double worst_vs_no_reorder = 1e9;
  std::string worst_vs_no_reorder_workload = "none";
  std::size_t fired_count = 0;
  for (const auto& row : rows) {
    if (!row.reorder_fired) continue;
    ++fired_count;
    std::vector<double> ratios;
    for (const auto& pass : row.passes)
      if (pass[all_on] > 0) ratios.push_back(pass[no_reorder] / pass[all_on]);
    if (ratios.empty()) continue;
    std::sort(ratios.begin(), ratios.end());
    const double median = ratios[ratios.size() / 2];
    if (median < worst_vs_no_reorder) {
      worst_vs_no_reorder = median;
      worst_vs_no_reorder_workload = row.workload.name;
    }
  }
  if (fired_count == 0) worst_vs_no_reorder = 1.0;  // gate never fired: nothing to lose
  const bool no_regression_pass = worst_vs_no_reorder >= kRegressionFloor;

  const std::string json_path = env_string("ECL_BENCH_JSON", "BENCH_loadbalance.json");
  write_json(json_path, cs, rows, smoke, best, best_workload, speedup_pass, imbalance_pass,
             worst_vs_no_reorder, worst_vs_no_reorder_workload, fired_count,
             no_regression_pass);
  std::printf("\ncontract: all-on >= %.1fx over hotpath on >= 1 power-law workload: "
              "best %.2fx on %s -> %s\n"
              "contract: all-on imbalance <= hotpath on EVERY power-law workload -> %s\n"
              "contract: all-on >= %.2fx of no-reorder wherever the reorder gate fired "
              "(%zu workloads; paired median): worst %.2fx on %s -> %s%s\n"
              "(json: %s)\n",
              kContractSpeedup, best, best_workload.c_str(),
              speedup_pass ? "PASS" : "FAIL", imbalance_pass ? "PASS" : "FAIL",
              kRegressionFloor, fired_count, worst_vs_no_reorder,
              worst_vs_no_reorder_workload.c_str(),
              no_regression_pass ? "PASS" : "FAIL", smoke ? " [smoke: not enforced]" : "",
              json_path.c_str());

  if (!smoke && !(speedup_pass && imbalance_pass && no_regression_pass)) return 1;
  return 0;
}
