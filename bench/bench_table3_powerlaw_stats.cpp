// Regenerates Table 3: structural statistics of the ten power-law graphs
// (synthetic SuiteSparse stand-ins; see DESIGN.md for the substitution).
// Each row reports vertex/edge counts, degree extremes, SCC counts,
// size-1/size-2 counts, largest SCC, and DAG depth.

#include "bench_support/workloads.hpp"
#include "stats_common.hpp"

int main() {
  using namespace ecl::bench;
  print_graph_stats_table("Table 3: power-law graphs", power_law_workloads());
  return 0;
}
