// Ablation for the §3.4 design choice: the paper's atomic-free monotonic
// signature stores (benign races, lost updates retried) versus CAS
// atomic-max. The paper argues the atomic-free version "may increase the
// number of iterations needed [but] often speeds up the code because no
// explicit synchronization is performed"; this bench reports both the
// runtime and the propagation-round cost on all three workload classes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.hpp"
#include "core/ecl_scc.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

namespace {

using namespace ecl;
using namespace ecl::bench;

struct Observation {
  double geomean_throughput = 0.0;  // Mverts/s
  std::uint64_t propagation_rounds = 0;
};

std::map<std::string, std::map<std::string, Observation>> g_obs;

void register_class(const std::string& class_name, const std::vector<Workload>& workloads) {
  auto shared = std::make_shared<std::vector<Workload>>(workloads);
  for (const bool atomic_mode : {false, true}) {
    const std::string variant = atomic_mode ? "atomic-max" : "racy-store";
    const std::string name = "Atomics/" + class_name + "/" + variant;
    benchmark::RegisterBenchmark(name.c_str(), [shared, class_name, variant, atomic_mode](
                                                   benchmark::State& state) {
      device::Device dev(device::a100_profile());
      scc::EclOptions opts;
      opts.use_atomic_max = atomic_mode;
      Observation obs;
      std::vector<double> best(shared->size(), -1.0);
      for (auto _ : state) {
        std::uint64_t rounds = 0;
        for (std::size_t w = 0; w < shared->size(); ++w) {
          Timer timer;
          for (const auto& g : (*shared)[w].graphs) {
            const auto r = scc::ecl_scc(g, dev, opts);
            rounds += r.metrics.propagation_rounds;
            benchmark::DoNotOptimize(r.num_components);
          }
          const double t = timer.seconds();
          if (best[w] < 0 || t < best[w]) best[w] = t;
        }
        obs.propagation_rounds = rounds;
      }
      std::vector<double> tps;
      for (std::size_t w = 0; w < shared->size(); ++w) {
        if (best[w] > 0)
          tps.push_back(double((*shared)[w].total_vertices()) / best[w] / 1e6);
      }
      obs.geomean_throughput = geomean(tps);
      g_obs[class_name][variant] = obs;
    })
        ->Iterations(static_cast<std::int64_t>(bench_runs()))
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  register_class("small-meshes", small_mesh_workloads());
  register_class("power-law", power_law_workloads());

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  TextTable table({"Input class", "racy Mverts/s", "atomic Mverts/s", "racy rounds",
                   "atomic rounds"});
  for (const auto& [cls, variants] : g_obs) {
    const auto& racy = variants.at("racy-store");
    const auto& atomic = variants.at("atomic-max");
    table.add_row({cls, fixed(racy.geomean_throughput, 2), fixed(atomic.geomean_throughput, 2),
                   std::to_string(racy.propagation_rounds),
                   std::to_string(atomic.propagation_rounds)});
  }
  std::printf("\n== Ablation (§3.4): atomic-free monotonic stores vs CAS atomic-max ==\n%s",
              table.render().c_str());
  std::printf("(the paper ships the atomic-free version: lost updates may add rounds but "
              "avoid synchronization on every signature write)\n");
  return 0;
}
