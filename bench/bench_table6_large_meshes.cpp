// Regenerates Table 6 and Figures 8, 9, and 10: SCC-detection runtime and
// throughput on the large mesh graphs.
//
// Paper expectations (shape, §5.1.2): ECL-SCC beats GPU-SCC on every group
// except twist-hex on the Titan V (~parity there), with geomean factors of
// 6.0x (Titan V) and 8.4x (A100); against iSpan the geomean gap is three
// orders of magnitude (1264x Ryzen / 596x Xeon on Titan V, 2422x / 1142x
// on A100), with klein-bottle and twist-hex the CPU-friendly outliers.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ecl::bench;
  const auto columns = paper_columns();
  for (const auto& workload : large_mesh_workloads())
    register_workload_benchmarks("Table6", workload, columns);

  return run_and_report(
      argc, argv, "Table 6: large mesh graphs", "Figures 8/9/10: large mesh graphs",
      {
          {"Fig 8: ECL-SCC vs GPU-SCC (Titan V)", "ECL-SCC Titan V", "GPU-SCC Titan V", 6.0},
          {"Fig 9: ECL-SCC vs GPU-SCC (A100)", "ECL-SCC A100", "GPU-SCC A100", 8.4},
          {"Fig 10: ECL-SCC A100 vs iSpan Ryzen", "ECL-SCC A100", "iSpan Ryzen", 2422.0},
          {"Fig 10: ECL-SCC A100 vs iSpan Xeon", "ECL-SCC A100", "iSpan Xeon", 1142.0},
      });
}
