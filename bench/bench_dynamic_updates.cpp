// Incremental-vs-from-scratch speedup of the dynamic SCC engine: for mesh
// sweep graphs and the Table-3 power-law stand-ins, apply a seeded stream
// of single-edge updates through DynamicScc and compare the median
// per-update latency against rerunning the full ECL-SCC kernel after every
// update (the from-scratch strategy the engine replaces). The headline is
// the median speedup across the power-law rows; the acceptance contract is
// >= 5x there (see EXPERIMENTS.md).

#include <algorithm>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_support/workloads.hpp"
#include "core/ecl_scc.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "device/device.hpp"
#include "dynamic/dynamic_scc.hpp"
#include "graph/update_stream.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace ecl;
using namespace ecl::bench;

struct Row {
  std::string name;
  bool power_law = false;
  graph::Digraph base;
};

std::vector<Row> rows() {
  std::vector<Row> out;
  // Two mesh sweep graphs (first ordinate of the first Table-1 groups).
  const auto meshes = small_mesh_workloads();
  for (std::size_t i = 0; i < meshes.size() && i < 2; ++i) {
    if (meshes[i].graphs.empty()) continue;
    out.push_back({meshes[i].name + "/omega0", false, meshes[i].graphs.front()});
  }
  // Power-law stand-ins spanning the structural range of Table 3: a giant
  // SCC (soc-LiveJournal1), a mid-split graph (web-Google), and an
  // SCC-free deep DAG (com-Youtube).
  for (const auto& spec : power_law_specs()) {
    if (spec.name == "soc-LiveJournal1" || spec.name == "web-Google" ||
        spec.name == "com-Youtube") {
      out.push_back({spec.name, true, power_law_graph(spec)});
    }
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t num_updates =
      static_cast<std::size_t>(env_int("ECL_UPDATES", 200));

  device::Device dev(device::a100_profile());
  TextTable table({"Workload", "|V|", "|E|", "updates", "incr us/upd (med)",
                   "full ECL-SCC ms (med)", "speedup"});
  std::vector<double> power_law_speedups;

  for (const auto& row : rows()) {
    const graph::Digraph& g = row.base;

    // From-scratch baseline: one full ECL-SCC run is what every single-edge
    // update would cost without the incremental engine.
    const double full_seconds =
        median_seconds(bench_runs(), [&] { (void)scc::ecl_scc(g, dev); });

    // Incremental: time each update individually; the per-update median is
    // robust against the occasional merge/split/escalation spike.
    Rng rng(0xd15c0u ^ std::hash<std::string>{}(row.name));
    graph::UpdateStreamOptions stream_opts;
    stream_opts.num_updates = num_updates;
    stream_opts.insert_fraction = 0.5;  // keeps |E| roughly stable
    const auto stream = graph::generate_update_stream(g, stream_opts, rng);

    dynamic::DynamicScc dyn(g, dynamic::DynamicOptions{});
    std::vector<double> per_update;
    per_update.reserve(stream.size());
    for (const auto& update : stream) {
      Timer timer;
      dyn.apply(update);
      per_update.push_back(timer.seconds());
    }

    // Verify outside the timed region: the maintained partition must match
    // Tarjan on the final graph or the speedup is meaningless.
    const auto oracle = scc::tarjan(dyn.graph());
    if (dyn.num_components() != oracle.num_components ||
        !scc::same_partition(dyn.snapshot()->labels, oracle.labels))
      throw std::runtime_error("dynamic engine diverged on " + row.name);

    const double incr_seconds = median(per_update);
    const double speedup = incr_seconds > 0 ? full_seconds / incr_seconds : 0.0;
    if (row.power_law) power_law_speedups.push_back(speedup);
    table.add_row({row.name, std::to_string(g.num_vertices()),
                   std::to_string(g.num_edges()), std::to_string(stream.size()),
                   fixed(incr_seconds * 1e6, 2), fixed(full_seconds * 1e3, 3),
                   fixed(speedup, 1) + "x"});
  }

  std::printf("\n== Dynamic updates: incremental vs from-scratch ECL-SCC ==\n%s",
              table.render().c_str());
  const double headline = median(power_law_speedups);
  std::printf("power-law median speedup: %sx (contract: >= 5x for single-edge "
              "updates; from-scratch = full ECL-SCC per update)\n",
              fixed(headline, 1).c_str());
  return headline >= 5.0 ? 0 : 1;
}
