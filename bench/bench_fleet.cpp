// Fleet contracts (DESIGN.md §13): ordinate-throughput scaling of the
// DevicePool + GraphRouter, and bit-identity of the sharded cross-device
// fixpoint, both enforced by exit code.
//
//  * Throughput: the mesh ordinate suite (one sweep graph per ordinate —
//    the paper's embarrassingly-parallel fleet workload) is placed through
//    the GraphRouter onto an N = 4 pool and onto an N = 1 pool with the
//    SAME aggregate thread budget, and the fleet must complete the set
//    >= 2.5x faster. Completion time is the fleet MAKESPAN — the maximum
//    per-device busy time under the router's placement — which equals
//    wall-clock on a host with >= N cores; devices here are virtual and
//    this harness's single-core CI host cannot physically overlap their
//    spins, so each device's stream is executed sequentially and timed per
//    device. The contract therefore fails exactly when the fleet layer
//    fails: a router that skews placement (or a pool whose devices are not
//    independent) drives the makespan toward the single-device total.
//  * Identity: sharded_scc labels at K in {2, 3, 8} must be bit-identical
//    to a single-device ecl_scc run on every differential family, per
//    element — the DESIGN.md §13 exchange-correctness argument, checked.
//
// Emits machine-readable BENCH_fleet.json (path overridable via
// ECL_BENCH_JSON). `--smoke` runs a reduced workload set and reports the
// contracts without enforcing them.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_support/workloads.hpp"
#include "core/ecl_scc.hpp"
#include "core/tarjan.hpp"
#include "fleet/device_pool.hpp"
#include "fleet/graph_router.hpp"
#include "fleet/sharded_scc.hpp"
#include "graph/generators.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace ecl;
using namespace ecl::bench;

constexpr double kThroughputContract = 2.5;
constexpr unsigned kFleetDevices = 4;
/// Aggregate host-thread budget, identical for both pool sizes: the N = 1
/// pool gets all of it on one device, the N = 4 pool divides it (floor 1).
constexpr unsigned kThreadBudget = 8;

struct Task {
  const graph::Digraph* graph;
  std::uint64_t group;  ///< mesh-group index: the router's affinity key
  std::uint64_t cost = 1;  ///< router work estimate (profiled, microseconds)
};

/// Places every task through the router (leases stay alive so load
/// accumulates and least-loaded + affinity genuinely decide), then runs
/// each device's assigned stream sequentially, timing per device. Returns
/// the per-device busy seconds; makespan = max, total = sum.
std::vector<double> run_fleet(fleet::DevicePool& pool, const std::vector<Task>& tasks) {
  // Tight affinity slack: grouping same-mesh ordinates is worth little here
  // (the graphs are already resident), so let least-loaded dominate the
  // moment a sticky device falls behind.
  fleet::GraphRouter router(pool, /*affinity_slack=*/1.15);
  // Longest-processing-time order: placing heavy ordinates first lets the
  // router's greedy least-loaded rule approximate the optimal makespan.
  std::vector<const Task*> ordered;
  ordered.reserve(tasks.size());
  for (const Task& task : tasks) ordered.push_back(&task);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Task* a, const Task* b) { return a->cost > b->cost; });
  std::vector<fleet::GraphRouter::Lease> leases;
  leases.reserve(tasks.size());
  std::vector<std::vector<const graph::Digraph*>> assigned(pool.size());
  for (const Task* task : ordered) {
    leases.push_back(router.place(task->cost, task->group));
    assigned[leases.back().device_index()].push_back(task->graph);
  }
  std::vector<double> busy(pool.size(), 0.0);
  for (std::size_t d = 0; d < pool.size(); ++d) {
    Timer timer;
    for (const graph::Digraph* g : assigned[d]) {
      const auto r = scc::ecl_scc(*g, pool.at(d));
      if (!r.ok()) throw std::runtime_error("fleet: ordinate run failed");
    }
    busy[d] = timer.seconds();
  }
  return busy;
}

double makespan(const std::vector<double>& busy) {
  return *std::max_element(busy.begin(), busy.end());
}

/// The four differential families the lever suites use (same shapes/seeds),
/// so "every differential family" means the same thing across PRs.
struct Family {
  std::string name;
  graph::Digraph graph;
};

std::vector<Family> families() {
  std::vector<Family> fs;
  fs.push_back({"cycle_chain_12x6", graph::cycle_chain(12, 6)});
  fs.push_back({"grid_dag_10x10", graph::grid_dag(10, 10)});
  {
    Rng rng(0x40710'01);
    fs.push_back({"er_n150_m450", graph::random_digraph(150, 450, rng)});
  }
  {
    Rng rng(0x40710'02);
    graph::SccProfile profile;
    profile.num_vertices = 200;
    profile.giant_fraction = 0.4;
    profile.size2_sccs = 10;
    profile.mid_sccs = 3;
    profile.dag_depth = 6;
    fs.push_back({"powerlaw_giant", graph::scc_profile_graph(profile, rng)});
  }
  return fs;
}

struct IdentityRow {
  std::string family;
  unsigned shards;
  bool identical;
  std::uint64_t boundary;
  std::uint64_t exchange_rounds;
};

void write_json(const std::string& path, bool smoke, std::size_t num_tasks,
                double single_seconds, double fleet_seconds, double speedup,
                const std::vector<double>& fleet_busy,
                const std::vector<std::uint64_t>& fleet_launches,
                const std::vector<IdentityRow>& identity, bool throughput_pass,
                bool identity_pass) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n";
  out << "  \"bench\": \"fleet\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"scale\": " << scale_factor() << ",\n";
  out << "  \"runs\": " << bench_runs() << ",\n";
  out << "  \"devices\": " << kFleetDevices << ",\n";
  out << "  \"thread_budget\": " << kThreadBudget << ",\n";
  out << "  \"throughput\": {\"graphs\": " << num_tasks
      << ", \"single_seconds\": " << single_seconds
      << ", \"fleet_makespan_seconds\": " << fleet_seconds << ", \"speedup\": " << speedup
      << ",\n    \"fleet_busy_seconds\": [";
  for (std::size_t d = 0; d < fleet_busy.size(); ++d)
    out << (d ? ", " : "") << fleet_busy[d];
  out << "],\n    \"fleet_device_launches\": [";
  for (std::size_t d = 0; d < fleet_launches.size(); ++d)
    out << (d ? ", " : "") << fleet_launches[d];
  out << "]},\n";
  out << "  \"identity\": [\n";
  for (std::size_t i = 0; i < identity.size(); ++i) {
    const auto& row = identity[i];
    out << "    {\"family\": \"" << row.family << "\", \"shards\": " << row.shards
        << ", \"identical\": " << (row.identical ? "true" : "false")
        << ", \"boundary_vertices\": " << row.boundary
        << ", \"exchange_rounds\": " << row.exchange_rounds << "}"
        << (i + 1 < identity.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"contract\": {\"throughput_threshold\": " << kThroughputContract
      << ", \"throughput_pass\": " << (throughput_pass ? "true" : "false")
      << ", \"identity_pass\": " << (identity_pass ? "true" : "false")
      << ", \"pass\": " << (throughput_pass && identity_pass ? "true" : "false")
      << ", \"enforced\": " << (smoke ? "false" : "true") << "}\n";
  out << "}\n";
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  // ---- Contract 1: ordinate-fleet throughput -------------------------------
  std::vector<Workload> workloads = small_mesh_workloads();
  if (!smoke)
    for (auto& w : large_mesh_workloads()) workloads.push_back(std::move(w));
  if (smoke && workloads.size() > 2) workloads.resize(2);
  std::vector<Task> tasks;
  for (std::size_t w = 0; w < workloads.size(); ++w)
    for (const auto& g : workloads[w].graphs) tasks.push_back({&g, w});

  // Verification outside the timed region: every ordinate graph's labeling
  // against Tarjan, once. The same pass profiles each graph's solve time on
  // a fleet-shaped device (the divided worker share) — the router's work
  // estimate, exactly what a production placer would learn from history.
  {
    device::Device scratch(device::a100_profile(),
                           std::max(1u, kThreadBudget / kFleetDevices));
    for (Task& task : tasks) {
      Timer timer;
      const auto r = scc::ecl_scc(*task.graph, scratch);
      task.cost = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(timer.seconds() * 1e6));
      if (!r.ok() || !scc::same_partition(r.labels, scc::tarjan(*task.graph).labels))
        throw std::runtime_error("fleet: ordinate verification failed");
    }
  }

  fleet::DevicePoolConfig single_config;
  single_config.devices = 1;
  single_config.thread_budget = kThreadBudget;
  fleet::DevicePool single_pool(single_config);

  fleet::DevicePoolConfig fleet_config;
  fleet_config.devices = kFleetDevices;
  fleet_config.thread_budget = kThreadBudget;
  fleet::DevicePool fleet_pool(fleet_config);

  std::vector<double> single_samples;
  std::vector<double> fleet_samples;
  std::vector<double> fleet_busy_last;
  for (std::size_t run = 0; run < bench_runs(); ++run) {
    single_samples.push_back(makespan(run_fleet(single_pool, tasks)));
    fleet_busy_last = run_fleet(fleet_pool, tasks);
    fleet_samples.push_back(makespan(fleet_busy_last));
  }
  // Best-of-N on both sides: the noise on a shared single-core host only
  // ever inflates a sample, so the minimum is the cleanest estimate of each
  // configuration's true completion time.
  const double single_seconds =
      *std::min_element(single_samples.begin(), single_samples.end());
  const double fleet_seconds = *std::min_element(fleet_samples.begin(), fleet_samples.end());
  const double speedup = fleet_seconds > 0 ? single_seconds / fleet_seconds : 0.0;

  std::vector<std::uint64_t> fleet_launches;
  for (std::size_t d = 0; d < fleet_pool.size(); ++d)
    fleet_launches.push_back(fleet_pool.at(d).stats().kernel_launches);

  TextTable throughput({"pool", "devices", "workers/dev", "makespan [s]", "speedup"});
  throughput.add_row({"single", "1", std::to_string(single_pool.workers_per_device()),
                      fixed(single_seconds, 4), "1.00"});
  throughput.add_row({"fleet", std::to_string(kFleetDevices),
                      std::to_string(fleet_pool.workers_per_device()),
                      fixed(fleet_seconds, 4), fixed(speedup, 2)});
  std::printf("\n== Ordinate-fleet throughput (%zu sweep graphs, budget %u threads, "
              "best of %zu) ==\n%s",
              tasks.size(), kThreadBudget, bench_runs(), throughput.render().c_str());
  TextTable per_device({"device", "busy [s]", "launches"});
  for (std::size_t d = 0; d < fleet_busy_last.size(); ++d)
    per_device.add_row({"device-" + std::to_string(d), fixed(fleet_busy_last[d], 4),
                        std::to_string(fleet_launches[d])});
  std::printf("\n%s", per_device.render().c_str());

  // ---- Contract 2: sharded bit-identity ------------------------------------
  const auto fams = families();
  std::vector<IdentityRow> identity;
  bool identity_pass = true;
  {
    device::Device reference_dev(device::a100_profile());
    fleet::DevicePoolConfig shard_config;
    shard_config.devices = kFleetDevices;
    shard_config.thread_budget = kThreadBudget;
    fleet::DevicePool shard_pool(shard_config);
    for (const auto& family : fams) {
      const auto reference = scc::ecl_scc(family.graph, reference_dev);
      if (!reference.ok()) throw std::runtime_error("fleet: reference run failed");
      for (unsigned shards : {2u, 3u, 8u}) {
        fleet::ShardedOptions opts;
        opts.shards = shards;
        const auto sharded = fleet::sharded_scc(family.graph, shard_pool, opts);
        const bool identical = sharded.labels == reference.labels;
        identity.push_back({family.name, shards, identical,
                            sharded.metrics.boundary_vertices,
                            sharded.metrics.exchange_rounds});
        identity_pass = identity_pass && identical;
      }
    }
  }
  TextTable itable({"family", "K", "identical", "boundary", "exchanges"});
  for (const auto& row : identity)
    itable.add_row({row.family, std::to_string(row.shards), row.identical ? "yes" : "NO",
                    std::to_string(row.boundary), std::to_string(row.exchange_rounds)});
  std::printf("\n== Sharded label identity vs single device ==\n%s",
              itable.render().c_str());

  const bool throughput_pass = speedup >= kThroughputContract;
  const std::string json_path = env_string("ECL_BENCH_JSON", "BENCH_fleet.json");
  write_json(json_path, smoke, tasks.size(), single_seconds, fleet_seconds, speedup,
             fleet_busy_last, fleet_launches, identity, throughput_pass, identity_pass);
  std::printf("\ncontract: fleet makespan >= %.1fx faster at N=%u: %.2fx -> %s\n"
              "contract: sharded labels bit-identical on every family x K: %s%s\n"
              "(json: %s)\n",
              kThroughputContract, kFleetDevices, speedup,
              throughput_pass ? "PASS" : "FAIL", identity_pass ? "PASS" : "FAIL",
              smoke ? " [smoke: not enforced]" : "", json_path.c_str());

  if (!smoke && !(throughput_pass && identity_pass)) return 1;
  return 0;
}
