// Regenerates Table 2: structural statistics of the large mesh graphs
// (klein-bottle, mobius-strip, torch-hex, torch-tet, toroid-hex,
// toroid-wedge, twist-hex) across their ordinates.

#include <vector>

#include "bench_support/workloads.hpp"
#include "mesh/suite.hpp"
#include "stats_common.hpp"

int main() {
  using namespace ecl::bench;
  std::vector<unsigned> ordinates;
  for (const auto& group : ecl::mesh::large_mesh_suite())
    ordinates.push_back(effective_ordinates(group));
  print_mesh_stats_table("Table 2: large mesh graphs", large_mesh_workloads(), ordinates);
  return 0;
}
