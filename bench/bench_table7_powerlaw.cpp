// Regenerates Table 7 and Figures 11, 12, and 13: SCC-detection runtime
// and throughput on the ten power-law graphs.
//
// Paper expectations (shape, §5.1.3): near-parity — ECL-SCC's geomean is
// 1.18x GPU-SCC on the Titan V and 2.07x on the A100; against iSpan it is
// 1.86x/1.12x (Titan V vs Ryzen/Xeon) and 3.45x/2.07x (A100). Baselines
// win on several individual inputs (the paper loses on wikipedia and
// soc-LiveJournal, for instance): these graphs are the baselines' home
// turf.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ecl::bench;
  const auto columns = paper_columns();
  for (const auto& workload : power_law_workloads())
    register_workload_benchmarks("Table7", workload, columns);

  return run_and_report(
      argc, argv, "Table 7: power-law graphs", "Figures 11/12/13: power-law graphs",
      {
          {"Fig 11: ECL-SCC vs GPU-SCC (Titan V)", "ECL-SCC Titan V", "GPU-SCC Titan V", 1.18},
          {"Fig 12: ECL-SCC vs GPU-SCC (A100)", "ECL-SCC A100", "GPU-SCC A100", 2.07},
          {"Fig 13: ECL-SCC A100 vs iSpan Ryzen", "ECL-SCC A100", "iSpan Ryzen", 3.45},
          {"Fig 13: ECL-SCC A100 vs iSpan Xeon", "ECL-SCC A100", "iSpan Xeon", 2.07},
      });
}
