// HashBag (DESIGN.md §15): concurrent insert-only frontier bag with
// CAS dedup, O(1) round invalidation, and sticky saturation.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "device/hash_bag.hpp"

namespace ecl::test {
namespace {

using device::HashBag;
using graph::vid;

std::vector<vid> sorted_items(const HashBag& bag) {
  const auto span = bag.items();
  std::vector<vid> v(span.begin(), span.end());
  std::sort(v.begin(), v.end());
  return v;
}

TEST(HashBag, InsertDedupsWithinARound) {
  HashBag bag(64);
  bag.begin_round(1);
  EXPECT_TRUE(bag.insert(7));
  EXPECT_FALSE(bag.insert(7));  // duplicate: not committed again
  EXPECT_TRUE(bag.insert(9));
  EXPECT_FALSE(bag.insert(7));
  EXPECT_EQ(bag.size(), 2u);
  EXPECT_EQ(sorted_items(bag), (std::vector<vid>{7, 9}));
  EXPECT_FALSE(bag.saturated());
}

TEST(HashBag, BeginRoundInvalidatesPriorEntriesInO1) {
  HashBag bag(64);
  bag.begin_round(1);
  for (vid v = 0; v < 10; ++v) bag.insert(v);
  ASSERT_EQ(bag.size(), 10u);
  bag.begin_round(2);
  EXPECT_EQ(bag.size(), 0u);
  // The same vertices insert fresh: the round tag, not a table wipe, does
  // the clearing.
  for (vid v = 0; v < 10; ++v) EXPECT_TRUE(bag.insert(v));
  EXPECT_EQ(bag.size(), 10u);
}

TEST(HashBag, ConcurrentInsertsCommitEachVertexOnce) {
  constexpr vid kVertices = 512;
  constexpr unsigned kThreads = 8;
  HashBag bag(kVertices);
  bag.begin_round(3);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&bag, t] {
      // Every thread inserts the full vertex range, in a different order.
      for (vid i = 0; i < kVertices; ++i)
        bag.insert((i * 37 + t * 101) % kVertices);
    });
  for (auto& th : threads) th.join();
  ASSERT_FALSE(bag.saturated());
  const auto items = bag.items();
  // CAS arbitration admits exactly one commit per (vertex, round) while
  // probes stay in-window; a probe-exhausted duplicate is allowed but every
  // vertex must be present at least once and the list must not blow up.
  std::set<vid> seen(items.begin(), items.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kVertices));
  EXPECT_GE(items.size(), static_cast<std::size_t>(kVertices));
}

TEST(HashBag, DrainOrderIndependence) {
  // Two bags filled with the same vertex set in different insertion orders
  // hold the same SET — callers must never depend on append order.
  HashBag a(128), b(128);
  a.begin_round(1);
  b.begin_round(1);
  for (vid v = 0; v < 100; ++v) a.insert(v);
  for (vid v = 100; v-- > 0;) b.insert(v);
  EXPECT_EQ(sorted_items(a), sorted_items(b));
}

TEST(HashBag, SaturationIsStickyAndCounted) {
  HashBag bag(4);  // allocate() floors the list at 16 entries
  const std::size_t cap = bag.capacity();
  bag.begin_round(1);
  for (vid v = 0; v < static_cast<vid>(cap); ++v) ASSERT_TRUE(bag.insert(v));
  EXPECT_FALSE(bag.saturated());
  EXPECT_FALSE(bag.insert(static_cast<vid>(cap)));  // over capacity: dropped
  EXPECT_TRUE(bag.saturated());
  EXPECT_EQ(bag.dropped(), 1u);
  EXPECT_EQ(bag.size(), cap);  // size clamps at capacity
  // Sticky for the round, cleared by the next begin_round.
  bag.insert(1);  // duplicate — no effect on saturation either way
  EXPECT_TRUE(bag.saturated());
  bag.begin_round(2);
  EXPECT_FALSE(bag.saturated());
  EXPECT_EQ(bag.dropped(), 1u);  // lifetime counter survives the round bump
}

TEST(HashBag, GrowRaisesCapacityAndDiscardsContents) {
  HashBag bag(16);
  bag.begin_round(1);
  for (vid v = 0; v < 16; ++v) bag.insert(v);
  const std::size_t before = bag.capacity();
  bag.grow(4 * before);
  EXPECT_GE(bag.capacity(), 4 * before);
  EXPECT_EQ(bag.size(), 0u);  // contents discarded, caller re-collects
  bag.begin_round(2);
  for (vid v = 0; v < static_cast<vid>(2 * before); ++v) EXPECT_TRUE(bag.insert(v));
  EXPECT_FALSE(bag.saturated());
  // grow() to a smaller capacity is a no-op.
  bag.grow(1);
  EXPECT_GE(bag.capacity(), 4 * before);
}

TEST(HashBag, DedupIsPerRoundAcrossManyRounds) {
  // The 32-bit round clock in the tag must keep rounds distinct: the same
  // vertex commits exactly once per round over a long round sequence.
  HashBag bag(32);
  for (std::uint32_t r = 1; r <= 100; ++r) {
    bag.begin_round(r);
    EXPECT_TRUE(bag.insert(5)) << "round " << r;
    EXPECT_FALSE(bag.insert(5)) << "round " << r;
    EXPECT_EQ(bag.size(), 1u) << "round " << r;
  }
}

}  // namespace
}  // namespace ecl::test
