#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "device/device.hpp"

namespace ecl::test {
namespace {

using device::BlockContext;
using device::Device;

TEST(DeviceProfile, PaperProfiles) {
  const auto titan = device::titan_v_profile();
  EXPECT_EQ(titan.num_sms, 80u);
  EXPECT_EQ(titan.threads_per_block, 512u);
  EXPECT_EQ(titan.resident_blocks(), 80u * 4);

  const auto a100 = device::a100_profile();
  EXPECT_EQ(a100.num_sms, 108u);
  EXPECT_EQ(a100.resident_blocks(), 108u * 4);
}

TEST(Device, LaunchCoversAllBlocks) {
  Device dev(device::tiny_profile());
  std::atomic<unsigned> blocks{0};
  dev.launch(7, [&](const BlockContext& ctx) {
    EXPECT_EQ(ctx.num_blocks, 7u);
    EXPECT_LT(ctx.block_id, 7u);
    blocks.fetch_add(1);
  });
  EXPECT_EQ(blocks.load(), 7u);
}

TEST(Device, LaunchStatsAccumulate) {
  Device dev(device::tiny_profile());
  dev.launch(3, [](const BlockContext&) {});
  dev.launch(2, [](const BlockContext&) {});
  EXPECT_EQ(dev.stats().kernel_launches, 2u);
  EXPECT_EQ(dev.stats().blocks_executed, 5u);
  dev.stats().reset();
  EXPECT_EQ(dev.stats().kernel_launches, 0u);
}

TEST(Device, BlocksForRoundsUp) {
  Device dev(device::a100_profile());  // 512 threads/block
  EXPECT_EQ(dev.blocks_for(0), 0u);  // zero work maps to a zero grid (no-op launch)
  EXPECT_EQ(dev.blocks_for(1), 1u);
  EXPECT_EQ(dev.blocks_for(512), 1u);
  EXPECT_EQ(dev.blocks_for(513), 2u);
  EXPECT_EQ(dev.blocks_for(5120), 10u);
}

TEST(Device, ZeroBlockLaunchIsANoOp) {
  // A zero-grid launch (blocks_for(0)) must execute nothing and charge
  // nothing: a fixpoint loop that has converged skips the kernel entirely.
  Device dev(device::tiny_profile());
  std::atomic<unsigned> calls{0};
  dev.launch(0, [&](const BlockContext&) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
  EXPECT_EQ(dev.stats().kernel_launches, 0u);
  EXPECT_EQ(dev.stats().blocks_executed, 0u);
}

TEST(Device, WorkStealingLaunchCoversAllBlocksOnce) {
  Device dev(device::tiny_profile(), 4);
  std::vector<std::atomic<int>> hits(129);
  dev.launch(
      129,
      [&](const BlockContext& ctx) {
        ASSERT_LT(ctx.block_id, 129u);
        hits[ctx.block_id].fetch_add(1);
      },
      {.work_stealing = true});
  for (std::size_t b = 0; b < hits.size(); ++b)
    ASSERT_EQ(hits[b].load(), 1) << "block " << b;
  EXPECT_EQ(dev.stats().blocks_executed, 129u);
}

TEST(Device, RecordBlockWorkFeedsImbalanceStats) {
  Device dev(device::tiny_profile());
  // Launch 4 blocks where block 0 does 70 units and the rest 10 each:
  // max/mean = 70 / 25 = 2.8.
  dev.launch(4, [&](const BlockContext& ctx) {
    dev.record_block_work(ctx.block_id, ctx.block_id == 0 ? 70 : 10);
  });
  ASSERT_EQ(dev.stats().block_edge_work.size(), 4u);
  EXPECT_EQ(dev.stats().block_edge_work[0], 70u);
  EXPECT_EQ(dev.stats().block_edge_work[1], 10u);
  EXPECT_DOUBLE_EQ(dev.stats().block_imbalance(), 2.8);

  // A perfectly balanced launch pulls the weighted mean toward 1.0.
  dev.launch(4, [&](const BlockContext& ctx) { dev.record_block_work(ctx.block_id, 25); });
  EXPECT_EQ(dev.stats().block_edge_work[0], 95u);
  EXPECT_GT(dev.stats().block_imbalance(), 1.0);
  EXPECT_LT(dev.stats().block_imbalance(), 2.8);

  dev.stats().reset();
  EXPECT_TRUE(dev.stats().block_edge_work.empty());
  EXPECT_DOUBLE_EQ(dev.stats().block_imbalance(), 1.0);  // nothing recorded
}

TEST(Device, ChunkDistributionCoversAllItemsOnce) {
  // Grid-stride chunking: every item in [0, total) must be visited exactly
  // once across all blocks, for awkward sizes too.
  Device dev(device::tiny_profile());  // 32-thread blocks
  for (std::uint64_t total : {0ull, 1ull, 31ull, 32ull, 33ull, 100ull, 1000ull}) {
    std::vector<std::atomic<int>> hits(total);
    dev.launch(3, [&](const BlockContext& ctx) {
      ctx.for_each_chunk(total, [&](std::uint64_t lo, std::uint64_t hi) {
        EXPECT_LE(hi, total);
        EXPECT_LT(lo, hi);
        for (std::uint64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      });
    });
    for (std::uint64_t i = 0; i < total; ++i) ASSERT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(Device, PersistentLaunchUsesResidentGrid) {
  Device dev(device::tiny_profile());
  std::atomic<unsigned> blocks{0};
  dev.launch_persistent([&](const BlockContext& ctx) {
    EXPECT_EQ(ctx.num_blocks, dev.profile().resident_blocks());
    blocks.fetch_add(1);
  });
  EXPECT_EQ(blocks.load(), dev.profile().resident_blocks());
}

}  // namespace
}  // namespace ecl::test

namespace ecl::test {
namespace {

TEST(Device, LaunchOverheadIsCharged) {
  device::DeviceProfile profile = device::tiny_profile();
  profile.launch_overhead_us = 200.0;
  device::Device slow(profile);
  device::Device fast(device::tiny_profile());  // zero overhead

  auto time_launches = [](device::Device& dev, int launches) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < launches; ++i) dev.launch(1, [](const device::BlockContext&) {});
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };
  const double slow_time = time_launches(slow, 50);
  const double fast_time = time_launches(fast, 50);
  EXPECT_GE(slow_time, 50 * 200e-6 * 0.9);
  EXPECT_LT(fast_time, slow_time);
}

TEST(Device, PaperProfilesHaveLaunchLatency) {
  EXPECT_GT(device::titan_v_profile().launch_overhead_us, 0.0);
  EXPECT_GT(device::a100_profile().launch_overhead_us, 0.0);
  // The newer GPU is less latency-bound.
  EXPECT_LT(device::a100_profile().launch_overhead_us,
            device::titan_v_profile().launch_overhead_us);
  EXPECT_DOUBLE_EQ(device::tiny_profile().launch_overhead_us, 0.0);
}

}  // namespace
}  // namespace ecl::test

namespace ecl::test {
namespace {

TEST(Device, ReverseBlockOrderStillCoversAllBlocks) {
  device::DeviceProfile profile = device::tiny_profile();
  profile.reverse_block_order = true;
  device::Device dev(profile);
  std::vector<std::atomic<int>> hits(9);
  dev.launch(9, [&](const device::BlockContext& ctx) {
    EXPECT_LT(ctx.block_id, 9u);
    hits[ctx.block_id].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace ecl::test
