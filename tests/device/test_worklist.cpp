#include <gtest/gtest.h>

#include "device/device.hpp"
#include "device/worklist.hpp"
#include "graph/generators.hpp"

namespace ecl::test {
namespace {

using device::EdgeWorklist;
using graph::Edge;

TEST(Worklist, InitFromGraphHoldsAllEdges) {
  const auto g = graph::cycle_graph(16);
  EdgeWorklist wl(g);
  EXPECT_EQ(wl.size(), 16u);
  for (const Edge& e : wl.edges()) EXPECT_TRUE(g.has_edge(e.src, e.dst));
}

TEST(Worklist, PushAndSwap) {
  const std::vector<Edge> init{{0, 1}, {1, 2}, {2, 0}};
  EdgeWorklist wl{std::span<const Edge>(init)};
  wl.push_next({0, 1});
  wl.push_next({2, 0});
  EXPECT_EQ(wl.size(), 3u);       // current buffer unchanged
  EXPECT_EQ(wl.next_size(), 2u);  // survivors staged
  wl.swap_buffers();
  EXPECT_EQ(wl.size(), 2u);
  EXPECT_EQ(wl.next_size(), 0u);
}

TEST(Worklist, RepeatedShrinkage) {
  const auto g = graph::cycle_graph(64);
  EdgeWorklist wl(g);
  // Keep every other edge each round: size halves until empty.
  std::size_t expected = 64;
  while (expected > 0) {
    const auto edges = wl.edges();
    for (std::size_t i = 0; i < edges.size(); i += 2) wl.push_next(edges[i]);
    wl.swap_buffers();
    expected = (expected + 1) / 2;
    if (expected == 1) {
      EXPECT_EQ(wl.size(), 1u);
      wl.swap_buffers();  // keep nothing
      break;
    }
    EXPECT_EQ(wl.size(), expected);
  }
  EXPECT_TRUE(wl.empty());
}

TEST(Worklist, ConcurrentPushesFromDeviceBlocks) {
  const std::size_t m = 10'000;
  std::vector<Edge> init(m);
  for (std::size_t i = 0; i < m; ++i)
    init[i] = {static_cast<graph::vid>(i), static_cast<graph::vid>(i + 1)};
  EdgeWorklist wl{std::span<const Edge>(init)};

  device::Device dev(device::tiny_profile(), 4);
  const auto edges = wl.edges();
  dev.launch(8, [&](const device::BlockContext& ctx) {
    ctx.for_each_chunk(m, [&](std::uint64_t lo, std::uint64_t hi) {
      for (std::uint64_t i = lo; i < hi; ++i) wl.push_next(edges[i]);
    });
  });
  wl.swap_buffers();
  ASSERT_EQ(wl.size(), m);

  // Every edge must appear exactly once (in some order).
  std::vector<std::uint8_t> seen(m, 0);
  for (const Edge& e : wl.edges()) {
    ASSERT_LT(e.src, m);
    ASSERT_EQ(seen[e.src], 0);
    seen[e.src] = 1;
  }
}

TEST(Worklist, OverflowAssertsInDebugBuilds) {
  const std::vector<Edge> init{{0, 1}, {1, 2}};
  auto overflow = [&] {
    EdgeWorklist wl{std::span<const Edge>(init)};
    wl.push_next({0, 1});
    wl.push_next({1, 2});
    wl.push_next({2, 0});  // past capacity
  };
  EXPECT_DEBUG_DEATH(overflow(), "push_next");
}

#ifdef NDEBUG
TEST(Worklist, OverflowRaisesStickyFlagAndDropsEdge) {
  const std::vector<Edge> init{{0, 1}, {1, 2}};
  EdgeWorklist wl{std::span<const Edge>(init)};
  EXPECT_FALSE(wl.overflowed());
  wl.push_next({0, 1});
  wl.push_next({1, 2});
  EXPECT_FALSE(wl.overflowed());
  wl.push_next({2, 0});  // past capacity: dropped, flag raised
  EXPECT_TRUE(wl.overflowed());
  EXPECT_EQ(wl.next_size(), 3u) << "the cursor records the attempted append";
  wl.swap_buffers();
  EXPECT_EQ(wl.size(), 2u) << "swap clamps to the edges actually stored";
  EXPECT_TRUE(wl.overflowed()) << "the flag is sticky across swaps";
  wl.clear_overflow();
  EXPECT_FALSE(wl.overflowed());
}
#endif

TEST(Worklist, BulkPushStoresWholeSpanWithOneReservation) {
  const std::vector<Edge> init{{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  EdgeWorklist wl{std::span<const Edge>(init)};
  const std::vector<Edge> batch{{0, 1}, {2, 3}, {3, 0}};
  wl.push_next_bulk(batch);
  wl.push_next_bulk({});  // empty span: no-op, no cursor movement
  EXPECT_EQ(wl.next_size(), 3u);
  EXPECT_FALSE(wl.overflowed());
  wl.swap_buffers();
  ASSERT_EQ(wl.size(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(wl.edges()[i].src, batch[i].src);
    EXPECT_EQ(wl.edges()[i].dst, batch[i].dst);
  }
}

TEST(Worklist, BulkOverflowAssertsInDebugBuilds) {
  const std::vector<Edge> init{{0, 1}, {1, 2}};
  auto overflow = [&] {
    EdgeWorklist wl{std::span<const Edge>(init)};
    const std::vector<Edge> batch{{0, 1}, {1, 2}, {2, 0}};
    wl.push_next_bulk(batch);  // 3 edges into capacity 2
  };
  EXPECT_DEBUG_DEATH(overflow(), "push_next_bulk");
}

#ifdef NDEBUG
TEST(Worklist, BulkOverflowStoresPrefixAndCountsDroppedEdges) {
  const std::vector<Edge> init{{0, 1}, {1, 2}, {2, 0}};
  EdgeWorklist wl{std::span<const Edge>(init)};
  const std::vector<Edge> batch{{0, 1}, {1, 2}, {2, 0}, {0, 2}, {1, 0}};
  wl.push_next_bulk(batch);  // 5 edges into capacity 3
  EXPECT_TRUE(wl.overflowed());
  EXPECT_EQ(wl.dropped_edges(), 2u);
  EXPECT_EQ(wl.next_size(), 5u) << "the cursor records the attempted append";
  wl.push_next_bulk(batch);  // cursor already past capacity: all dropped
  EXPECT_EQ(wl.dropped_edges(), 7u);
  wl.swap_buffers();
  EXPECT_EQ(wl.size(), 3u) << "swap clamps to the edges actually stored";
  EXPECT_EQ(wl.edges()[0].dst, 1u) << "the fitting prefix is intact";
  EXPECT_EQ(wl.dropped_edges(), 7u) << "the drop count is sticky across swaps";
  wl.clear_overflow();
  EXPECT_FALSE(wl.overflowed());
  EXPECT_EQ(wl.dropped_edges(), 0u);
}

TEST(Worklist, SinglePushOverflowCountsDroppedEdges) {
  const std::vector<Edge> init{{0, 1}};
  EdgeWorklist wl{std::span<const Edge>(init)};
  wl.push_next({0, 1});
  EXPECT_EQ(wl.dropped_edges(), 0u);
  wl.push_next({1, 0});
  wl.push_next({0, 1});
  EXPECT_EQ(wl.dropped_edges(), 2u);
}
#endif

TEST(Worklist, ChunkAppenderFlushesStagedEdgesAndPartialTail) {
  const std::size_t m = 100;
  std::vector<Edge> init(m);
  for (std::size_t i = 0; i < m; ++i)
    init[i] = {static_cast<graph::vid>(i), static_cast<graph::vid>(i + 1)};
  EdgeWorklist wl{std::span<const Edge>(init)};
  {
    EdgeWorklist::ChunkAppender chunk(wl, 32);  // 3 full chunks + tail of 4
    for (const Edge& e : init) chunk.push(e);
    EXPECT_GE(wl.next_size(), 96u) << "full chunks flush eagerly";
    // Destructor flushes the partial last chunk.
  }
  EXPECT_EQ(wl.next_size(), m);
  EXPECT_FALSE(wl.overflowed());
  wl.swap_buffers();
  std::vector<std::uint8_t> seen(m, 0);
  for (const Edge& e : wl.edges()) {
    ASSERT_LT(e.src, m);
    ASSERT_EQ(seen[e.src], 0);
    seen[e.src] = 1;
  }
}

TEST(Worklist, ConcurrentChunkAppendersFromDeviceBlocks) {
  const std::size_t m = 10'000;
  std::vector<Edge> init(m);
  for (std::size_t i = 0; i < m; ++i)
    init[i] = {static_cast<graph::vid>(i), static_cast<graph::vid>(i + 1)};
  EdgeWorklist wl{std::span<const Edge>(init)};

  device::Device dev(device::tiny_profile(), 4);
  const auto edges = wl.edges();
  dev.launch(8, [&](const device::BlockContext& ctx) {
    // Small chunk so every block commits several chunks plus a partial tail.
    EdgeWorklist::ChunkAppender chunk(wl, 64);
    ctx.for_each_chunk(m, [&](std::uint64_t lo, std::uint64_t hi) {
      for (std::uint64_t i = lo; i < hi; ++i) chunk.push(edges[i]);
    });
  });
  wl.swap_buffers();
  ASSERT_EQ(wl.size(), m);

  std::vector<std::uint8_t> seen(m, 0);
  for (const Edge& e : wl.edges()) {
    ASSERT_LT(e.src, m);
    ASSERT_EQ(seen[e.src], 0);
    seen[e.src] = 1;
  }
}

TEST(Worklist, CapacityIsFixedAtConstruction) {
  const auto g = graph::cycle_graph(16);
  EdgeWorklist wl(g);
  EXPECT_EQ(wl.capacity(), 16u);
  wl.push_next({0, 1});
  wl.swap_buffers();
  EXPECT_EQ(wl.capacity(), 16u) << "shrinking contents must not shrink capacity";
}

}  // namespace
}  // namespace ecl::test
