#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "device/thread_pool.hpp"

namespace ecl::test {
namespace {

using device::ThreadPool;

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.parallel_for(20, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, ExceptionInTaskPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, WritesAreVisibleAfterBarrier) {
  // parallel_for must establish happens-before: plain (non-atomic) writes
  // to distinct slots are readable by the caller afterwards.
  ThreadPool pool(4);
  std::vector<int> data(5000, 0);
  pool.parallel_for(5000, [&](std::size_t i) { data[i] = static_cast<int>(i) * 3; });
  for (std::size_t i = 0; i < data.size(); ++i) ASSERT_EQ(data[i], static_cast<int>(i) * 3);
}

TEST(ThreadPool, DefaultWorkerCountIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_workers(), 1u);
}

TEST(ThreadPool, StealingModeRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);  // awkward size: uneven ranges
  pool.parallel_for(1003, [&](std::size_t i) { hits[i].fetch_add(1); }, true);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, StealingCountersAccountForEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  const std::size_t total = 5000;
  // Skew the work so range 0 is heavy and stealing actually happens often
  // enough to be observable across repetitions.
  for (int rep = 0; rep < 20; ++rep) {
    pool.parallel_for(
        total,
        [&](std::size_t i) {
          if (i < total / 4) {
            volatile int sink = 0;
            for (int k = 0; k < 2000; ++k) sink = sink + k;
          }
          ran.fetch_add(1, std::memory_order_relaxed);
        },
        true);
  }
  EXPECT_EQ(ran.load(), static_cast<int>(total) * 20);
  // Every executed task was claimed exactly once (owned or stolen).
  EXPECT_EQ(pool.claimed_tasks() + pool.stolen_tasks(), total * 20);
}

TEST(ThreadPool, SingleWorkerNeverSteals) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); }, true);
  EXPECT_EQ(sum.load(), 4950);
  EXPECT_EQ(pool.claimed_tasks(), 100u);
  EXPECT_EQ(pool.stolen_tasks(), 0u);
}

TEST(ThreadPool, StealingModeZeroTasksIsNoop) {
  ThreadPool pool(3);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; }, true);
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionPropagatesInStealingMode) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   64,
                   [&](std::size_t i) {
                     if (i == 63) throw std::runtime_error("boom");
                   },
                   true),
               std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::atomic<int> ok{0};
  pool.parallel_for(16, [&](std::size_t) { ok.fetch_add(1); }, true);
  EXPECT_EQ(ok.load(), 16);
}

}  // namespace
}  // namespace ecl::test
