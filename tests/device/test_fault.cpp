#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "device/device.hpp"
#include "device/fault.hpp"

namespace ecl::test {
namespace {

using device::BlockContext;
using device::Device;
using device::FaultInjector;
using device::FaultPlan;

TEST(Fault, DefaultPlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.active());
  EXPECT_TRUE(injector.block_permutation(1, 8).empty());
  EXPECT_EQ(injector.replay_count(1, 8), 0u);
  EXPECT_FALSE(injector.defer_store());
  EXPECT_EQ(injector.deferred_stores(), 0u);
}

TEST(Fault, FromSeedIsReproducible) {
  for (std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
    const FaultPlan a = FaultPlan::from_seed(seed);
    const FaultPlan b = FaultPlan::from_seed(seed);
    EXPECT_EQ(a.permute_blocks, b.permute_blocks);
    EXPECT_EQ(a.scheduling_jitter, b.scheduling_jitter);
    EXPECT_EQ(a.spurious_reexecution, b.spurious_reexecution);
    EXPECT_EQ(a.delayed_visibility, b.delayed_visibility);
    EXPECT_DOUBLE_EQ(a.max_jitter_us, b.max_jitter_us);
    EXPECT_EQ(a.max_replays, b.max_replays);
    EXPECT_DOUBLE_EQ(a.store_defer_probability, b.store_defer_probability);
    EXPECT_TRUE(a.any()) << "from_seed must never produce a vacuous plan";
  }
}

TEST(Fault, PermutationIsAValidReproduciblePermutation) {
  FaultPlan plan;
  plan.seed = 7;
  plan.permute_blocks = true;
  FaultInjector injector(plan);
  FaultInjector twin(plan);
  for (unsigned n : {1u, 2u, 9u, 64u}) {
    const auto perm = injector.block_permutation(3, n);
    ASSERT_EQ(perm.size(), n);
    std::set<unsigned> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), n) << "not a permutation of [0, " << n << ")";
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), n - 1);
    EXPECT_EQ(perm, twin.block_permutation(3, n)) << "same seed+launch must agree";
  }
  // Different launches draw different permutations (overwhelmingly likely
  // for 64 blocks).
  EXPECT_NE(injector.block_permutation(3, 64), injector.block_permutation(4, 64));
}

TEST(Fault, PermutedLaunchStillCoversAllBlocks) {
  device::DeviceProfile profile = device::tiny_profile();
  profile.fault_plan.seed = 11;
  profile.fault_plan.permute_blocks = true;
  Device dev(profile);
  ASSERT_TRUE(dev.fault_active());
  std::vector<std::atomic<int>> hits(13);
  dev.launch(13, [&](const BlockContext& ctx) {
    ASSERT_LT(ctx.block_id, 13u);
    hits[ctx.block_id].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Fault, ReplaysOnlyIdempotentLaunches) {
  device::DeviceProfile profile = device::tiny_profile();
  profile.fault_plan.seed = 5;
  profile.fault_plan.spurious_reexecution = true;
  profile.fault_plan.max_replays = 3;
  Device dev(profile);

  std::atomic<unsigned> executions{0};
  auto count_kernel = [&](const BlockContext&) { executions.fetch_add(1); };

  for (int i = 0; i < 20; ++i) dev.launch(4, count_kernel);
  EXPECT_EQ(executions.load(), 20u * 4u) << "non-idempotent launches must never replay";
  EXPECT_EQ(dev.stats().spurious_replays, 0u);

  executions.store(0);
  for (int i = 0; i < 20; ++i) dev.launch(4, count_kernel, {.idempotent = true});
  const std::uint64_t replays = dev.stats().spurious_replays;
  EXPECT_EQ(executions.load(), 20u * 4u + replays);
  EXPECT_GT(replays, 0u) << "20 idempotent launches with max_replays=3 should replay";
  EXPECT_LE(replays, 20u * 3u);
}

TEST(Fault, ReplayCountIsBoundedAndReproducible) {
  FaultPlan plan;
  plan.seed = 21;
  plan.spurious_reexecution = true;
  plan.max_replays = 2;
  FaultInjector injector(plan);
  FaultInjector twin(plan);
  for (std::uint64_t launch = 1; launch <= 100; ++launch) {
    const unsigned count = injector.replay_count(launch, 8);
    EXPECT_LE(count, 2u);
    EXPECT_EQ(count, twin.replay_count(launch, 8));
    for (unsigned r = 0; r < count; ++r) EXPECT_LT(injector.replay_block(launch, r, 8), 8u);
  }
  EXPECT_EQ(injector.replay_count(1, 0), 0u) << "empty grid: nothing to replay";
}

TEST(Fault, DeferStoreTracksProbability) {
  FaultPlan plan;
  plan.seed = 99;
  plan.delayed_visibility = true;
  plan.store_defer_probability = 0.25;
  FaultInjector injector(plan);
  const int draws = 10000;
  int deferred = 0;
  for (int i = 0; i < draws; ++i) deferred += injector.defer_store() ? 1 : 0;
  EXPECT_EQ(injector.deferred_stores(), static_cast<std::uint64_t>(deferred));
  EXPECT_GT(deferred, draws / 8);      // ~2500 expected; loose two-sided band
  EXPECT_LT(deferred, draws * 3 / 8);
}

TEST(Fault, DeferProbabilityOneSuppressesEveryStore) {
  FaultPlan plan;
  plan.delayed_visibility = true;
  plan.store_defer_probability = 1.0;
  FaultInjector injector(plan);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(injector.defer_store());
  EXPECT_EQ(injector.deferred_stores(), 100u);
}

TEST(Fault, DescribeNamesActiveAxes) {
  FaultPlan plan;
  plan.seed = 3;
  plan.permute_blocks = true;
  plan.delayed_visibility = true;
  const std::string text = plan.describe();
  EXPECT_NE(text.find("seed=3"), std::string::npos) << text;
  EXPECT_NE(text.find("permute"), std::string::npos) << text;
  EXPECT_NE(text.find("defer"), std::string::npos) << text;
  EXPECT_EQ(text.find("jitter"), std::string::npos) << text;
  EXPECT_NE(FaultPlan{}.describe().find("disabled"), std::string::npos);
}

TEST(Fault, ChaosSuiteCoversAllFourClasses) {
  const auto plans = device::chaos_suite();
  EXPECT_GE(plans.size(), 8u);
  unsigned permute = 0, jitter = 0, reexec = 0, defer = 0;
  std::set<std::uint64_t> seeds;
  for (const auto& plan : plans) {
    EXPECT_TRUE(plan.any()) << plan.describe();
    seeds.insert(plan.seed);
    permute += plan.permute_blocks;
    jitter += plan.scheduling_jitter;
    reexec += plan.spurious_reexecution;
    defer += plan.delayed_visibility;
  }
  EXPECT_EQ(seeds.size(), plans.size()) << "every plan needs a distinct seed";
  EXPECT_GT(permute, 0u);
  EXPECT_GT(jitter, 0u);
  EXPECT_GT(reexec, 0u);
  EXPECT_GT(defer, 0u);
}

TEST(Fault, JitteredLaunchProducesCorrectResults) {
  device::DeviceProfile profile = device::tiny_profile();
  profile.fault_plan.seed = 17;
  profile.fault_plan.scheduling_jitter = true;
  profile.fault_plan.max_jitter_us = 5.0;
  Device dev(profile);
  const std::uint64_t total = 1000;
  std::vector<std::atomic<int>> hits(total);
  dev.launch(5, [&](const BlockContext& ctx) {
    ctx.for_each_chunk(total, [&](std::uint64_t lo, std::uint64_t hi) {
      for (std::uint64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
  });
  for (std::uint64_t i = 0; i < total; ++i) ASSERT_EQ(hits[i].load(), 1) << "item " << i;
}

}  // namespace
}  // namespace ecl::test
