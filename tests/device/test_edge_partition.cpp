#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>
#include <span>
#include <vector>

#include "device/edge_partition.hpp"

namespace ecl::test {
namespace {

using device::EdgeSpan;
using device::equal_edge_span;
using device::for_each_item_span;
using device::owner_of;

TEST(EdgePartition, EqualSpansCoverTotalInOrder) {
  for (std::uint64_t total : {0ull, 1ull, 7ull, 8ull, 100ull, 12345ull}) {
    for (unsigned blocks : {1u, 2u, 3u, 8u, 17u}) {
      std::uint64_t expect_begin = 0;
      for (unsigned b = 0; b < blocks; ++b) {
        const EdgeSpan span = equal_edge_span(b, blocks, total);
        EXPECT_EQ(span.begin, expect_begin) << total << "/" << blocks << " block " << b;
        EXPECT_LE(span.begin, span.end);
        expect_begin = span.end;
      }
      EXPECT_EQ(expect_begin, total) << total << "/" << blocks;
    }
  }
}

TEST(EdgePartition, EqualSpansDifferByAtMostOne) {
  const std::uint64_t total = 1000;
  const unsigned blocks = 7;
  std::uint64_t lo = total, hi = 0;
  for (unsigned b = 0; b < blocks; ++b) {
    const EdgeSpan span = equal_edge_span(b, blocks, total);
    lo = std::min(lo, span.size());
    hi = std::max(hi, span.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(EdgePartition, MoreBlocksThanWorkLeavesTailEmpty) {
  const EdgeSpan busy = equal_edge_span(2, 8, 3);
  EXPECT_EQ(busy.size(), 1u);
  const EdgeSpan idle = equal_edge_span(7, 8, 3);
  EXPECT_TRUE(idle.empty());
  EXPECT_TRUE(equal_edge_span(0, 4, 0).empty());
}

TEST(EdgePartition, OwnerOfFindsContainingItem) {
  // CSR-style offsets for degrees {2, 0, 3, 1}.
  const std::vector<std::uint64_t> offsets = {0, 2, 2, 5, 6};
  const std::span<const std::uint64_t> view(offsets);
  EXPECT_EQ(owner_of(view, 0), 0u);
  EXPECT_EQ(owner_of(view, 1), 0u);
  EXPECT_EQ(owner_of(view, 2), 2u);  // vertex 1 has degree 0 and owns nothing
  EXPECT_EQ(owner_of(view, 4), 2u);
  EXPECT_EQ(owner_of(view, 5), 3u);
}

TEST(EdgePartition, EmptyGraphVisitsNothing) {
  const std::vector<std::uint64_t> offsets = {0};  // zero vertices, zero edges
  unsigned calls = 0;
  for_each_item_span(std::span<const std::uint64_t>(offsets), equal_edge_span(0, 4, 0),
                     [&](std::size_t, std::uint64_t, std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(EdgePartition, AllIsolatedVerticesVisitNothing) {
  const std::vector<std::uint64_t> offsets = {0, 0, 0, 0};  // 3 vertices, no edges
  unsigned calls = 0;
  for_each_item_span(std::span<const std::uint64_t>(offsets), equal_edge_span(0, 2, 0),
                     [&](std::size_t, std::uint64_t, std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(EdgePartition, SingleHubSplitsAcrossBlocks) {
  // One vertex owning all 100 edges: every block must get a slice of the
  // SAME item — the scenario where vertex partitioning degenerates.
  const std::vector<std::uint64_t> offsets = {0, 100, 100};
  const unsigned blocks = 4;
  std::vector<int> hit(100, 0);
  for (unsigned b = 0; b < blocks; ++b) {
    for_each_item_span(std::span<const std::uint64_t>(offsets),
                       equal_edge_span(b, blocks, 100),
                       [&](std::size_t item, std::uint64_t lo, std::uint64_t hi) {
                         EXPECT_EQ(item, 0u);  // always the hub
                         EXPECT_EQ(hi - lo, 25u);
                         for (std::uint64_t k = lo; k < hi; ++k) ++hit[k];
                       });
  }
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(EdgePartition, RandomCsrCoveredExactlyOnce) {
  std::mt19937 rng(0x5cc);
  std::uniform_int_distribution<int> deg(0, 9);
  std::vector<std::uint64_t> offsets = {0};
  for (int v = 0; v < 200; ++v) offsets.push_back(offsets.back() + deg(rng));
  const std::uint64_t total = offsets.back();
  ASSERT_GT(total, 0u);

  std::vector<int> hit(total, 0);
  const unsigned blocks = 13;
  for (unsigned b = 0; b < blocks; ++b) {
    for_each_item_span(std::span<const std::uint64_t>(offsets),
                       equal_edge_span(b, blocks, total),
                       [&](std::size_t item, std::uint64_t lo, std::uint64_t hi) {
                         ASSERT_LT(item, 200u);
                         ASSERT_LE(offsets[item], lo);
                         ASSERT_LT(lo, hi);
                         ASSERT_LE(hi, offsets[item + 1]);
                         for (std::uint64_t k = lo; k < hi; ++k) ++hit[k];
                       });
  }
  for (std::uint64_t k = 0; k < total; ++k) ASSERT_EQ(hit[k], 1) << "edge " << k;
}

}  // namespace
}  // namespace ecl::test
