#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "device/atomics.hpp"

namespace ecl::test {
namespace {

using device::AtomicU32;

TEST(Atomics, FetchMaxRaisesValue) {
  AtomicU32 slot{5};
  EXPECT_TRUE(device::atomic_fetch_max(slot, 9));
  EXPECT_EQ(slot.load(), 9u);
}

TEST(Atomics, FetchMaxIgnoresSmaller) {
  AtomicU32 slot{5};
  EXPECT_FALSE(device::atomic_fetch_max(slot, 3));
  EXPECT_FALSE(device::atomic_fetch_max(slot, 5));
  EXPECT_EQ(slot.load(), 5u);
}

TEST(Atomics, RacyStoreMaxRaisesValue) {
  AtomicU32 slot{5};
  EXPECT_TRUE(device::racy_store_max(slot, 9));
  EXPECT_EQ(slot.load(), 9u);
  EXPECT_FALSE(device::racy_store_max(slot, 2));
  EXPECT_EQ(slot.load(), 9u);
}

TEST(Atomics, ConcurrentFetchMaxConvergesToMaximum) {
  // atomic_fetch_max is exact under contention: the maximum always wins.
  AtomicU32 slot{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 8; ++t) {
    threads.emplace_back([&slot, t] {
      for (std::uint32_t i = 0; i < 10'000; ++i)
        device::atomic_fetch_max(slot, t * 10'000 + i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(slot.load(), 7u * 10'000 + 9'999);
}

TEST(Atomics, RacyStoreMaxIsMonotonePerRoundWithRetry) {
  // Model of the paper's benign race (§3.4): racing writers may lose an
  // update, but retrying until no writer succeeds always ends at the true
  // maximum — exactly how Phase 2 uses it.
  AtomicU32 slot{0};
  const std::vector<std::uint32_t> values{3, 17, 42, 8, 99, 56, 23, 77};
  bool changed = true;
  int rounds = 0;
  while (changed) {
    ++rounds;
    changed = false;
    std::vector<std::thread> threads;
    std::atomic<bool> any{false};
    for (std::uint32_t v : values) {
      threads.emplace_back([&slot, &any, v] {
        if (device::racy_store_max(slot, v)) any.store(true);
      });
    }
    for (auto& th : threads) th.join();
    changed = any.load();
    ASSERT_LT(rounds, 100);
  }
  EXPECT_EQ(slot.load(), 99u);
}

}  // namespace
}  // namespace ecl::test

namespace ecl::test {
namespace {

TEST(Atomics, FetchMinLowersValue) {
  device::AtomicU32 slot{10};
  EXPECT_TRUE(device::atomic_fetch_min(slot, 3));
  EXPECT_EQ(slot.load(), 3u);
  EXPECT_FALSE(device::atomic_fetch_min(slot, 7));
  EXPECT_EQ(slot.load(), 3u);
}

TEST(Atomics, RacyStoreMinLowersValue) {
  device::AtomicU32 slot{10};
  EXPECT_TRUE(device::racy_store_min(slot, 4));
  EXPECT_FALSE(device::racy_store_min(slot, 9));
  EXPECT_EQ(slot.load(), 4u);
}

}  // namespace
}  // namespace ecl::test
