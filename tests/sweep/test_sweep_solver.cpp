#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/test_graphs.hpp"
#include "core/ecl_scc.hpp"
#include "core/tarjan.hpp"
#include "mesh/generators.hpp"
#include "mesh/ordinates.hpp"
#include "mesh/sweep_graph.hpp"
#include "sweep/sweep_solver.hpp"

namespace ecl::test {
namespace {

using graph::Digraph;
using graph::vid;

std::vector<double> unit_source(vid n) { return std::vector<double>(n, 1.0); }

TEST(SweepSolver, AcyclicChainSweepsInOnePassPerVertex) {
  const auto g = graph::path_graph(5);
  const auto labels = scc::tarjan(g).labels;
  const auto r = sweep::sweep(g, labels, unit_source(5));
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.wavefronts, 5u);
  EXPECT_EQ(r.nontrivial_sccs, 0u);
  EXPECT_EQ(r.scc_iterations, 0u);
  // Closed form with absorption 1.5: I[0] = 1; I[k] = (1 + I[k-1]) / 2.5.
  double expected = 1.0;
  EXPECT_NEAR(r.intensity[0], expected, 1e-12);
  for (vid v = 1; v < 5; ++v) {
    expected = (1.0 + expected) / 2.5;
    EXPECT_NEAR(r.intensity[v], expected, 1e-12);
  }
}

TEST(SweepSolver, UpwindOrderIsRespected) {
  // On a DAG, every vertex's intensity only depends on its ancestors; the
  // sources (in-degree 0) must have intensity == source value.
  const auto g = graph::grid_dag(6, 6);
  const auto labels = scc::tarjan(g).labels;
  const auto r = sweep::sweep(g, labels, unit_source(36));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.intensity[0], 1.0, 1e-12);  // the corner source
  // With absorption 1.5 the interior dims toward (1 + 2I)/4 < I for I > 1;
  // the sink corner must still see strictly more than an isolated vertex
  // with the same in-degree and zero inflow would: 1/(1 + 1.5*2) = 0.25.
  EXPECT_GT(r.intensity[35], 0.25);
}

TEST(SweepSolver, CycleConvergesViaSourceIteration) {
  const auto g = graph::cycle_graph(8);
  const auto labels = scc::tarjan(g).labels;
  const auto r = sweep::sweep(g, labels, unit_source(8));
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.nontrivial_sccs, 1u);
  EXPECT_GT(r.scc_iterations, 1u);
  // Symmetric fixed point: I = (1 + I) / 2.5 => I = 2/3.
  for (vid v = 0; v < 8; ++v) EXPECT_NEAR(r.intensity[v], 2.0 / 3.0, 1e-8);
}

TEST(SweepSolver, MixedGraphMatchesFixedPointEquations) {
  // fig3: chains of SCCs; verify the result satisfies the relaxation
  // equation at every vertex.
  const auto g = fig3_graph();
  const auto labels = scc::tarjan(g).labels;
  std::vector<double> source(12);
  std::iota(source.begin(), source.end(), 1.0);  // distinct sources
  const auto r = sweep::sweep(g, labels, source);
  ASSERT_TRUE(r.converged);
  const auto rev = g.reverse();
  for (vid v = 0; v < 12; ++v) {
    double incoming = 0.0;
    double deg = 0.0;
    for (vid u : rev.out_neighbors(v)) {
      incoming += r.intensity[u];
      deg += 1.0;
    }
    EXPECT_NEAR(r.intensity[v], (source[v] + incoming) / (1.0 + 1.5 * deg), 1e-7) << v;
  }
}

TEST(SweepSolver, LabelsFromEclSccWorkUnmodified) {
  const auto g = fig3_graph();
  const auto labels = scc::ecl_scc(g).labels;  // max-ID labels, not dense
  const auto r = sweep::sweep(g, labels, unit_source(12));
  EXPECT_TRUE(r.converged);
}

TEST(SweepSolver, WouldLivelockDetection) {
  const auto dag = graph::grid_dag(3, 3);
  EXPECT_FALSE(sweep::would_livelock(dag, scc::tarjan(dag).labels));
  const auto cyc = graph::cycle_graph(3);
  EXPECT_TRUE(sweep::would_livelock(cyc, scc::tarjan(cyc).labels));
  graph::EdgeList e;
  e.add(0, 0);
  const graph::Digraph self(1, e);
  EXPECT_TRUE(sweep::would_livelock(self, scc::tarjan(self).labels));
}

TEST(SweepSolver, InvalidArgumentsThrow) {
  const auto g = graph::path_graph(3);
  const auto labels = scc::tarjan(g).labels;
  std::vector<double> short_source(2, 1.0);
  EXPECT_THROW((void)sweep::sweep(g, labels, short_source), std::invalid_argument);
  sweep::SweepOptions opts;
  opts.absorption = 0.5;  // below the contraction threshold
  EXPECT_THROW((void)sweep::sweep(g, labels, unit_source(3), opts), std::invalid_argument);
}

TEST(SweepSolver, RealMeshOrdinateEndToEnd) {
  // The paper's full pipeline on a real mesh: build sweep graph, detect
  // SCCs with ECL-SCC, sweep without livelock.
  const auto m = mesh::toroid_hex(1200);
  const auto ords = mesh::fibonacci_ordinates(4);
  for (const auto& omega : ords) {
    const auto g = mesh::build_sweep_graph(m, omega);
    const auto labels = scc::ecl_scc(g).labels;
    const auto r = sweep::sweep(g, labels, unit_source(g.num_vertices()));
    EXPECT_TRUE(r.converged);
    for (double i : r.intensity) {
      EXPECT_GT(i, 0.0);
      EXPECT_TRUE(std::isfinite(i));
    }
  }
}

TEST(SweepSolver, EmptyGraph) {
  const graph::Digraph g(0, graph::EdgeList{});
  const auto r = sweep::sweep(g, {}, {});
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.intensity.empty());
}

}  // namespace
}  // namespace ecl::test

// ---- SweepPlan reuse & multi-group sweeps ----------------------------------

namespace ecl::test {
namespace {

TEST(SweepPlan, ReuseAcrossSourcesMatchesOneShot) {
  const auto g = fig3_graph();
  const auto labels = scc::tarjan(g).labels;
  const sweep::SweepPlan plan(g, labels);
  EXPECT_EQ(plan.num_vertices(), 12u);
  EXPECT_EQ(plan.num_components(), 7u);
  EXPECT_TRUE(plan.has_cycles());

  std::vector<double> s1(12, 1.0);
  std::vector<double> s2(12, 2.0);
  const auto a = plan.run(s1);
  const auto b = plan.run(s2);
  const auto one_shot = sweep::sweep(g, labels, s2);
  for (graph::vid v = 0; v < 12; ++v) {
    EXPECT_NEAR(b.intensity[v], one_shot.intensity[v], 1e-12);
    // The model is linear in the source: doubling it doubles intensities.
    EXPECT_NEAR(b.intensity[v], 2.0 * a.intensity[v], 1e-8);
  }
}

TEST(SweepPlan, MultiGroupSweepsAreIndependent) {
  const auto g = graph::cycle_chain(6, 4);
  const auto labels = scc::tarjan(g).labels;
  const sweep::SweepPlan plan(g, labels);

  constexpr unsigned kGroups = 3;
  const graph::vid n = g.num_vertices();
  std::vector<double> sources(static_cast<std::size_t>(n) * kGroups);
  for (unsigned grp = 0; grp < kGroups; ++grp)
    for (graph::vid v = 0; v < n; ++v) sources[std::size_t(grp) * n + v] = grp + 1.0;

  const auto results = plan.run_groups(sources, kGroups);
  ASSERT_EQ(results.size(), kGroups);
  for (unsigned grp = 0; grp < kGroups; ++grp) {
    ASSERT_TRUE(results[grp].converged);
    // Each group equals a standalone sweep with its own source.
    const std::vector<double> alone(n, grp + 1.0);
    const auto expected = plan.run(alone);
    for (graph::vid v = 0; v < n; ++v)
      EXPECT_NEAR(results[grp].intensity[v], expected.intensity[v], 1e-12);
  }
}

TEST(SweepPlan, RunGroupsValidatesSourceSize) {
  const auto g = graph::path_graph(4);
  const sweep::SweepPlan plan(g, scc::tarjan(g).labels);
  const std::vector<double> bad(7, 1.0);
  EXPECT_THROW((void)plan.run_groups(bad, 2), std::invalid_argument);
}

TEST(SweepPlan, RejectsInvalidLabelingViaCondensationCycle) {
  // Labeling that splits a cycle is not an SCC partition: the condensation
  // has a cycle and the plan must refuse it.
  const auto g = graph::cycle_graph(4);
  const std::vector<graph::vid> bogus{0, 1, 0, 1};
  EXPECT_THROW(sweep::SweepPlan(g, bogus), std::invalid_argument);
}

TEST(SweepPlan, AcyclicPlanReportsNoCycles) {
  const auto g = graph::grid_dag(4, 4);
  const sweep::SweepPlan plan(g, scc::tarjan(g).labels);
  EXPECT_FALSE(plan.has_cycles());
}

}  // namespace
}  // namespace ecl::test
