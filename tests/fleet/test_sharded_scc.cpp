// Sharded-SCC differential suite (ctest label: fleet).
//
// The §13 contract: the sharded engine's labels are BIT-IDENTICAL to a
// single-device ecl_scc run — not merely the same partition — on every
// graph family, for every shard count, because max-ID labels are a
// function of the graph alone and the boundary exchange's max-reduce
// commutes with every in-kernel store. The suite checks K in {2, 3, 8}
// across the four differential families, fault-free AND with seeded chaos
// aimed at exactly one shard's device, plus the shard_cuts partition
// properties and the engine's edge cases (K = 1, K > pool size,
// certification off, caller-supplied reverse).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/test_graphs.hpp"
#include "core/ecl_scc.hpp"
#include "core/tarjan.hpp"
#include "device/device.hpp"
#include "device/fault.hpp"
#include "fleet/device_pool.hpp"
#include "fleet/sharded_scc.hpp"
#include "service/health_registry.hpp"

namespace ecl::test {
namespace {

using device::FaultPlan;
using fleet::DevicePool;
using fleet::DevicePoolConfig;
using fleet::ShardedOptions;
using scc::SccResult;

struct Family {
  std::string name;
  Digraph graph;
};

std::vector<Family> families() {
  std::vector<Family> fs;
  fs.push_back({"cycle_chain_12x6", graph::cycle_chain(12, 6)});
  fs.push_back({"grid_dag_10x10", graph::grid_dag(10, 10)});
  {
    Rng rng(0x40710'01);
    fs.push_back({"er_n150_m450", graph::random_digraph(150, 450, rng)});
  }
  {
    Rng rng(0x40710'02);
    graph::SccProfile profile;
    profile.num_vertices = 200;
    profile.giant_fraction = 0.4;
    profile.size2_sccs = 10;
    profile.mid_sccs = 3;
    profile.dag_depth = 6;
    fs.push_back({"powerlaw_giant", graph::scc_profile_graph(profile, rng)});
  }
  return fs;
}

DevicePoolConfig fleet_config(unsigned devices = 4) {
  DevicePoolConfig cfg;
  cfg.devices = devices;
  cfg.profile = device::tiny_profile();  // zero launch overhead
  cfg.thread_budget = devices;
  return cfg;
}

SccResult single_device_reference(const Digraph& g) {
  device::Device dev(device::tiny_profile(), /*workers=*/2);
  return scc::ecl_scc(g, dev);
}

TEST(ShardedScc, LabelsBitIdenticalToSingleDeviceAcrossShardCounts) {
  DevicePool pool(fleet_config());
  for (const auto& family : families()) {
    const SccResult reference = single_device_reference(family.graph);
    ASSERT_TRUE(reference.ok()) << family.name;
    const SccResult oracle = scc::tarjan(family.graph);
    ASSERT_TRUE(scc::same_partition(reference.labels, oracle.labels)) << family.name;

    for (unsigned k : {2u, 3u, 8u}) {
      ShardedOptions opts;
      opts.shards = k;
      const SccResult sharded = fleet::sharded_scc(family.graph, pool, opts);
      ASSERT_TRUE(sharded.ok()) << family.name << " K=" << k << ": "
                                << sharded.error.message;
      EXPECT_EQ(sharded.labels, reference.labels)
          << family.name << ": K=" << k << " diverged from single-device labels";
      EXPECT_EQ(sharded.num_components, reference.num_components) << family.name;
      EXPECT_EQ(sharded.metrics.shards, k) << family.name;
      EXPECT_TRUE(sharded.metrics.certified) << family.name << " K=" << k;
    }
  }
}

TEST(ShardedScc, BitIdenticalWithSeededChaosOnOneShardsDevice) {
  // The chaos satellite: a recoverable fault plan (delayed visibility,
  // spurious replays, ...) aimed at device 1 only. Shards are assigned
  // round-robin, so with K >= 2 at least one shard lands on the faulty
  // device while its peers stay clean — and the stitched labels must STILL
  // be bit-identical, because every injected fault is either absorbed by
  // the monotone store-max retry or caught by the certifier's ladder.
  for (std::uint64_t seed : {0x51u, 0x52u, 0x53u}) {
    DevicePoolConfig cfg = fleet_config();
    cfg.fault_plans.resize(2);
    cfg.fault_plans[1] = FaultPlan::from_seed(seed);
    DevicePool pool(cfg);

    for (const auto& family : families()) {
      const SccResult reference = single_device_reference(family.graph);
      for (unsigned k : {2u, 8u}) {
        ShardedOptions opts;
        opts.shards = k;
        const SccResult sharded = fleet::sharded_scc(family.graph, pool, opts);
        EXPECT_EQ(sharded.labels, reference.labels)
            << family.name << ": K=" << k << " seed=" << seed
            << " diverged under chaos on device-1";
      }
    }
  }
}

TEST(ShardedScc, ShardCountMayExceedPoolSize) {
  DevicePool pool(fleet_config(/*devices=*/2));
  const Digraph g = graph::cycle_chain(12, 6);
  const SccResult reference = single_device_reference(g);

  ShardedOptions opts;
  opts.shards = 8;  // 4 shards per device, sequential within each step
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded.labels, reference.labels);
  EXPECT_EQ(sharded.metrics.shards, 8u);
}

TEST(ShardedScc, SingleShardRunsWholeGraphOnOneDevice) {
  DevicePool pool(fleet_config());
  const Digraph g = graph::grid_dag(10, 10);
  const SccResult reference = single_device_reference(g);

  ShardedOptions opts;
  opts.shards = 1;
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded.labels, reference.labels);
  EXPECT_EQ(sharded.metrics.shards, 1u);
  EXPECT_EQ(sharded.metrics.boundary_vertices, 0u);
}

TEST(ShardedScc, FleetMetricsReportBoundaryAndExchangeWork) {
  DevicePool pool(fleet_config());
  Rng rng(0x40710'01);
  const Digraph g = graph::random_digraph(150, 450, rng);

  ShardedOptions opts;
  opts.shards = 3;
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(sharded.ok());
  // A dense random digraph cut three ways must have cross-shard edges and
  // must have taken at least one exchange round to reach quiescence.
  EXPECT_GT(sharded.metrics.boundary_vertices, 0u);
  EXPECT_GT(sharded.metrics.exchange_rounds, 0u);
  EXPECT_GT(sharded.metrics.edges_processed, 0u);
}

TEST(ShardedScc, CertificationOffStillMatchesReference) {
  DevicePool pool(fleet_config());
  const Digraph g = fig3_graph();
  const SccResult reference = single_device_reference(g);

  ShardedOptions opts;
  opts.shards = 2;
  opts.certify = false;
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded.labels, reference.labels);
  EXPECT_FALSE(sharded.metrics.certified);
}

TEST(ShardedScc, CallerSuppliedReverseHintIsAccepted) {
  DevicePool pool(fleet_config());
  Rng rng(0x40710'01);
  const Digraph g = graph::random_digraph(150, 450, rng);
  const Digraph reverse = g.reverse();
  const SccResult reference = single_device_reference(g);

  ShardedOptions opts;
  opts.shards = 3;
  opts.reverse_hint = &reverse;
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded.labels, reference.labels);
  EXPECT_TRUE(sharded.metrics.certified);
}

TEST(ShardedScc, EmptyGraph) {
  DevicePool pool(fleet_config());
  Digraph g(0, graph::EdgeList{});
  ShardedOptions opts;
  opts.shards = 4;
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);
  EXPECT_TRUE(sharded.ok());
  EXPECT_EQ(sharded.num_components, 0u);
}

// ---- Self-healing (DESIGN.md §14) -----------------------------------------

// A plan that stalls the fixpoint outright: every monotonic store deferred,
// forever. The afflicted shard keeps reporting movement while its healthy
// peers quiesce, so the sweep-budget trip blames exactly that device.
FaultPlan stall_plan() {
  FaultPlan p;
  p.seed = 0xFA170;
  p.delayed_visibility = true;
  p.store_defer_probability = 1.0;
  return p;
}

TEST(ShardedScc, FailoverRecoversFromPersistentlyFaultyDevice) {
  for (const auto& family : families()) {
    const SccResult reference = single_device_reference(family.graph);

    DevicePoolConfig cfg = fleet_config();
    cfg.fault_plans.resize(2);
    cfg.fault_plans[1] = stall_plan();
    DevicePool pool(cfg);

    ShardedOptions opts;
    opts.shards = 4;
    opts.checkpoint.sweep_interval = 2;
    opts.ecl.watchdog.max_phase2_rounds = 64;  // trip fast; fault-free needs far fewer
    const SccResult sharded = fleet::sharded_scc(family.graph, pool, opts);

    ASSERT_TRUE(sharded.ok()) << family.name << ": " << sharded.error.message;
    EXPECT_EQ(sharded.labels, reference.labels)
        << family.name << ": labels diverged through failover";
    EXPECT_TRUE(sharded.metrics.certified) << family.name;
    EXPECT_GE(sharded.metrics.failovers, 1u) << family.name;
    EXPECT_GE(sharded.metrics.shards_rehomed, 1u) << family.name;
    EXPECT_GE(sharded.metrics.checkpoints_taken, 1u) << family.name;
    EXPECT_FALSE(sharded.metrics.serial_fallback)
        << family.name << ": failover should recover in-run, not via the ladder";
    EXPECT_GT(sharded.metrics.recovery_seconds, 0.0) << family.name;
  }
}

TEST(ShardedScc, FailoverExhaustionEscalatesToLadder) {
  // max_failovers = 0: the budget trip cannot be survived in-run, so the
  // run escalates to the certification ladder — and the ladder must still
  // deliver the reference labels (a fresh rerun draws a different launch
  // phase on the injector, but the plan here stalls EVERY launch, so the
  // ladder lands on serial Tarjan renamed to max-member IDs).
  DevicePoolConfig cfg = fleet_config();
  cfg.fault_plans.resize(2);
  cfg.fault_plans[1] = stall_plan();
  DevicePool pool(cfg);

  const Digraph g = graph::cycle_chain(12, 6);
  const SccResult reference = single_device_reference(g);

  ShardedOptions opts;
  opts.shards = 4;
  opts.max_failovers = 0;
  opts.ecl.watchdog.max_phase2_rounds = 64;
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);

  EXPECT_EQ(sharded.metrics.failovers, 0u);
  EXPECT_EQ(sharded.labels, reference.labels)
      << "the ladder must still deliver reference labels when failover is off";
}

TEST(ShardedScc, StragglerIsFlaggedAndMigrated) {
  // Device 1 only suffers scheduling jitter: correct results, pathological
  // sweep latency. The straggler monitor must flag it against the healthy
  // median and migrate its shard preemptively — no checkpoint restore, no
  // failover, same labels.
  DevicePoolConfig cfg = fleet_config();
  cfg.fault_plans.resize(2);
  cfg.fault_plans[1].seed = 0x51099;
  cfg.fault_plans[1].scheduling_jitter = true;
  cfg.fault_plans[1].max_jitter_us = 3000.0;
  DevicePool pool(cfg);

  Rng rng(0x40710'01);
  const Digraph g = graph::random_digraph(150, 450, rng);
  const SccResult reference = single_device_reference(g);

  ShardedOptions opts;
  opts.shards = 4;
  opts.straggler.min_seconds = 1e-6;  // the families are tiny; drop the noise floor
  opts.straggler.median_multiple = 3.0;
  opts.straggler.patience = 1;
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);

  ASSERT_TRUE(sharded.ok()) << sharded.error.message;
  EXPECT_EQ(sharded.labels, reference.labels);
  EXPECT_GE(sharded.metrics.stragglers_flagged, 1u);
  EXPECT_GE(sharded.metrics.straggler_migrations, 1u);
  EXPECT_EQ(sharded.metrics.failovers, 0u) << "migration is graceful, not a failover";
}

TEST(ShardedScc, CheckpointCadenceFollowsConfig) {
  DevicePool pool(fleet_config());
  Rng rng(0x40710'01);
  const Digraph g = graph::random_digraph(150, 450, rng);

  // Every Phase-1 join checkpoints; sweep_interval = 1 adds one per moving
  // exchange on top.
  ShardedOptions opts;
  opts.shards = 3;
  opts.checkpoint.sweep_interval = 1;
  const SccResult frequent = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(frequent.ok());
  EXPECT_GE(frequent.metrics.checkpoints_taken,
            frequent.metrics.outer_iterations);

  opts.checkpoint.enabled = false;
  const SccResult off = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.metrics.checkpoints_taken, 0u);
  EXPECT_EQ(off.labels, frequent.labels);
}

TEST(ShardedScc, NoAdmittedDeviceServesAnywayAndSaysSo) {
  // Satellite regression: with every pool device quarantined, the K <= 1
  // path serves on device 0 by DECISION, not by fall-through — the result
  // is still certified and the metrics carry the last-resort flag.
  DevicePoolConfig cfg = fleet_config(2);
  cfg.health.breaker.window = 4;
  cfg.health.breaker.min_samples = 2;
  cfg.health.breaker.cooldown_seconds = 60.0;
  DevicePool pool(cfg);
  for (int i = 0; i < 4; ++i) {
    pool.record(0, service::FaultKind::kCertification);
    pool.record(1, service::FaultKind::kCertification);
  }
  ASSERT_FALSE(pool.allow(0));
  ASSERT_FALSE(pool.allow(1));

  const Digraph g = graph::grid_dag(10, 10);
  const SccResult reference = single_device_reference(g);

  ShardedOptions opts;
  opts.shards = 1;
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(sharded.ok()) << sharded.error.message;
  EXPECT_EQ(sharded.labels, reference.labels);
  EXPECT_TRUE(sharded.metrics.pool_last_resort);

  // The multi-shard coordinator applies the same rule.
  opts.shards = 2;
  const SccResult multi = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(multi.ok()) << multi.error.message;
  EXPECT_EQ(multi.labels, reference.labels);
  EXPECT_TRUE(multi.metrics.pool_last_resort);
}

TEST(ShardedScc, AdmittedPoolDoesNotFlagLastResort) {
  DevicePool pool(fleet_config());
  const Digraph g = graph::grid_dag(10, 10);
  for (unsigned k : {1u, 2u}) {
    ShardedOptions opts;
    opts.shards = k;
    const SccResult sharded = fleet::sharded_scc(g, pool, opts);
    ASSERT_TRUE(sharded.ok());
    EXPECT_FALSE(sharded.metrics.pool_last_resort) << "K=" << k;
  }
}

// ---- shard_cuts partition properties --------------------------------------

TEST(ShardCuts, CutsAreMonotoneCompleteAndSized) {
  for (const auto& family : families()) {
    for (unsigned k : {1u, 2u, 3u, 8u}) {
      const auto cuts = fleet::shard_cuts(family.graph, k);
      ASSERT_EQ(cuts.size(), k + 1) << family.name;
      EXPECT_EQ(cuts.front(), 0u) << family.name;
      EXPECT_EQ(cuts.back(), family.graph.num_vertices()) << family.name;
      for (std::size_t i = 1; i < cuts.size(); ++i)
        EXPECT_LE(cuts[i - 1], cuts[i]) << family.name << " K=" << k;
    }
  }
}

TEST(ShardCuts, BalancesEdgesNotVertices) {
  // A lopsided graph: vertex 0 carries almost all edges. Edge-balanced
  // cuts must isolate the hub into a small vertex range rather than
  // splitting vertices evenly.
  graph::EdgeList e;
  const unsigned n = 100;
  for (unsigned v = 1; v < n; ++v) e.add(0, v);
  e.add(1, 2);
  e.add(2, 3);
  Digraph g(n, e);

  const auto cuts = fleet::shard_cuts(g, 2);
  ASSERT_EQ(cuts.size(), 3u);
  // Shard 0 owns the hub; an equal-vertex split would put the cut at 50,
  // but nearly all edges sit below vertex 1, so the cut lands far left.
  EXPECT_LT(cuts[1], n / 2);
}

TEST(ShardCuts, EdgelessGraphSplitsVerticesEvenly) {
  Digraph g(10, graph::EdgeList{});
  const auto cuts = fleet::shard_cuts(g, 2);
  ASSERT_EQ(cuts.size(), 3u);
  EXPECT_EQ(cuts[1], 5u);
  EXPECT_EQ(cuts[2], 10u);
}

TEST(ShardCuts, MoreShardsThanVerticesYieldsEmptyTailShards) {
  // K > n: valid non-decreasing cuts, the surplus shards own empty ranges,
  // and the engine still matches the reference on them.
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  Digraph g(3, e);
  const auto cuts = fleet::shard_cuts(g, 8);
  ASSERT_EQ(cuts.size(), 9u);
  EXPECT_EQ(cuts.front(), 0u);
  EXPECT_EQ(cuts.back(), 3u);
  for (std::size_t i = 1; i < cuts.size(); ++i) EXPECT_LE(cuts[i - 1], cuts[i]);

  DevicePool pool(fleet_config());
  ShardedOptions opts;
  opts.shards = 8;
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(sharded.ok()) << sharded.error.message;
  EXPECT_EQ(sharded.labels, single_device_reference(g).labels);
  EXPECT_EQ(sharded.num_components, 1u);
}

TEST(ShardCuts, MoreShardsThanVerticesOnEdgelessGraph) {
  Digraph g(3, graph::EdgeList{});
  const auto cuts = fleet::shard_cuts(g, 8);
  ASSERT_EQ(cuts.size(), 9u);
  EXPECT_EQ(cuts.front(), 0u);
  EXPECT_EQ(cuts.back(), 3u);
  for (std::size_t i = 1; i < cuts.size(); ++i) EXPECT_LE(cuts[i - 1], cuts[i]);

  DevicePool pool(fleet_config());
  ShardedOptions opts;
  opts.shards = 8;
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(sharded.ok()) << sharded.error.message;
  EXPECT_EQ(sharded.num_components, 3u);
}

TEST(ShardCuts, SingleVertexShardsMatchReference) {
  // K = n: every shard owns exactly one vertex, every edge is a boundary
  // edge, and the fixpoint is pure exchange traffic — the hardest stitching
  // case, still bit-identical.
  const Digraph g = fig3_graph();
  const unsigned n = g.num_vertices();
  const auto cuts = fleet::shard_cuts(g, n);
  ASSERT_EQ(cuts.size(), static_cast<std::size_t>(n) + 1);
  EXPECT_EQ(cuts.back(), n);

  DevicePool pool(fleet_config());
  ShardedOptions opts;
  opts.shards = n;
  const SccResult sharded = fleet::sharded_scc(g, pool, opts);
  ASSERT_TRUE(sharded.ok()) << sharded.error.message;
  EXPECT_EQ(sharded.labels, single_device_reference(g).labels);
}

TEST(ShardedScc, HighdiameterLeversPreserveLabelsAcrossShardCounts) {
  // §15 levers in the fleet: chain chasing runs per shard (chases stop at
  // shard boundaries), the hash-bag frontier is forced off internally —
  // passing it on must be harmless. Either way the stitched labels stay
  // bit-identical to the single-device reference.
  DevicePool pool(fleet_config());
  for (const auto& family : families()) {
    const SccResult reference = single_device_reference(family.graph);
    ASSERT_TRUE(reference.ok()) << family.name;
    for (const bool chasing : {false, true}) {
      for (unsigned k : {2u, 3u, 8u}) {
        ShardedOptions opts;
        opts.shards = k;
        opts.ecl.chain_chasing = chasing;
        opts.ecl.hashbag_frontier = true;  // coordinator must force this off
        const SccResult sharded = fleet::sharded_scc(family.graph, pool, opts);
        ASSERT_TRUE(sharded.ok())
            << family.name << " K=" << k << " chasing=" << chasing;
        EXPECT_EQ(sharded.labels, reference.labels)
            << family.name << ": K=" << k << " chasing=" << chasing
            << " diverged from single-device labels";
        if (!chasing) EXPECT_EQ(sharded.metrics.chains_collapsed, 0u) << family.name;
      }
    }
  }
}

TEST(ShardedScc, ChainChasingBitIdenticalUnderSeededChaos) {
  // The §15 lever joins the chaos differential: a recoverable fault plan on
  // device 1 with chasing on must still stitch to the reference labels
  // (chases re-apply the same monotone rule; faulted stores retry or are
  // caught by the certifier ladder).
  for (std::uint64_t seed : {0x51u, 0x52u, 0x53u, 0x54u}) {
    DevicePoolConfig cfg = fleet_config();
    cfg.fault_plans.resize(2);
    cfg.fault_plans[1] = FaultPlan::from_seed(seed);
    DevicePool pool(cfg);

    for (const auto& family : families()) {
      const SccResult reference = single_device_reference(family.graph);
      for (unsigned k : {2u, 8u}) {
        ShardedOptions opts;
        opts.shards = k;
        opts.ecl.chain_chasing = true;
        const SccResult sharded = fleet::sharded_scc(family.graph, pool, opts);
        EXPECT_EQ(sharded.labels, reference.labels)
            << family.name << ": K=" << k << " seed=" << seed
            << " diverged under chaos with chain chasing on";
      }
    }
  }
}

}  // namespace
}  // namespace ecl::test
