// GraphRouter unit tests (ctest label: fleet): least-loaded placement,
// affinity stickiness and its slack-bounded override, quarantine routing,
// and the RAII load accounting of Lease.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "device/device.hpp"
#include "fleet/device_pool.hpp"
#include "fleet/graph_router.hpp"
#include "service/health_registry.hpp"

namespace ecl::test {
namespace {

using fleet::DevicePool;
using fleet::DevicePoolConfig;
using fleet::GraphRouter;
using service::FaultKind;

DevicePool make_pool(unsigned devices) {
  DevicePoolConfig cfg;
  cfg.devices = devices;
  cfg.profile = device::tiny_profile();
  cfg.thread_budget = devices;
  return DevicePool(cfg);
}

TEST(GraphRouter, PlacesOnLeastLoadedDevice) {
  DevicePoolConfig cfg;
  cfg.devices = 3;
  cfg.profile = device::tiny_profile();
  cfg.thread_budget = 3;
  DevicePool pool(cfg);
  GraphRouter router(pool);

  // Three graphs with no affinity spread across the three idle devices.
  auto a = router.place(100);
  auto b = router.place(100);
  auto c = router.place(100);
  std::vector<bool> used(3, false);
  used[a.device_index()] = used[b.device_index()] = used[c.device_index()] = true;
  EXPECT_TRUE(used[0] && used[1] && used[2]);

  // The fourth goes wherever load is lowest once one lease releases.
  b.release();
  auto d = router.place(50);
  EXPECT_EQ(d.device_index(), b.device_index());
}

TEST(GraphRouter, LeaseReleaseReturnsLoad) {
  auto pool = make_pool(2);
  GraphRouter router(pool);
  {
    auto lease = router.place(500);
    const auto load = router.load_snapshot();
    EXPECT_EQ(load[lease.device_index()], 500u);
  }
  // Destructor released the lease.
  const auto load = router.load_snapshot();
  EXPECT_EQ(load[0] + load[1], 0u);
}

TEST(GraphRouter, LeaseReleaseIsIdempotentAndMoveSafe) {
  auto pool = make_pool(2);
  GraphRouter router(pool);
  auto lease = router.place(100);
  GraphRouter::Lease moved = std::move(lease);
  EXPECT_FALSE(lease.valid());
  EXPECT_TRUE(moved.valid());
  moved.release();
  moved.release();  // idempotent
  const auto load = router.load_snapshot();
  EXPECT_EQ(load[0] + load[1], 0u);
}

TEST(GraphRouter, AffinityKeepsRepeatTrafficOnOneDevice) {
  auto pool = make_pool(4);
  GraphRouter router(pool);

  constexpr std::uint64_t kTenant = 42;
  auto first = router.place(10, kTenant);
  const std::size_t home = first.device_index();
  first.release();

  // On an idle fleet every repeat placement honors the affinity.
  for (int i = 0; i < 8; ++i) {
    auto lease = router.place(10, kTenant);
    EXPECT_EQ(lease.device_index(), home);
  }
}

TEST(GraphRouter, AffinityYieldsWhenHomeDeviceFallsBehind) {
  auto pool = make_pool(2);
  GraphRouter router(pool, /*affinity_slack=*/1.5);

  auto first = router.place(10, /*affinity_key=*/7);
  const std::size_t home = first.device_index();
  first.release();

  // Pile work far past the slack bound onto the home device (the affinity
  // key steers the pile there while the fleet is otherwise idle) and HOLD
  // the lease so the load stays in flight.
  auto pile = router.place(10'000, /*affinity_key=*/7);
  ASSERT_EQ(pile.device_index(), home);

  auto lease = router.place(10, /*affinity_key=*/7);
  EXPECT_NE(lease.device_index(), home)
      << "affinity must yield once the sticky device exceeds the slack bound";
}

TEST(GraphRouter, SkipsQuarantinedDevices) {
  DevicePoolConfig cfg;
  cfg.devices = 2;
  cfg.profile = device::tiny_profile();
  cfg.thread_budget = 2;
  cfg.health.breaker.window = 4;
  cfg.health.breaker.min_samples = 2;
  cfg.health.breaker.cooldown_seconds = 60.0;
  DevicePool pool(cfg);
  GraphRouter router(pool);

  for (int i = 0; i < 4; ++i) pool.record(0, FaultKind::kCertification);
  ASSERT_FALSE(pool.allow(0));

  for (int i = 0; i < 6; ++i) {
    auto lease = router.place(100);
    EXPECT_EQ(lease.device_index(), 1u) << "placement must route around quarantine";
  }
}

TEST(GraphRouter, ServesLeastLoadedWhenEveryDeviceIsQuarantined) {
  DevicePoolConfig cfg;
  cfg.devices = 2;
  cfg.profile = device::tiny_profile();
  cfg.thread_budget = 2;
  cfg.health.breaker.window = 4;
  cfg.health.breaker.min_samples = 2;
  cfg.health.breaker.cooldown_seconds = 60.0;
  DevicePool pool(cfg);
  GraphRouter router(pool);

  for (int i = 0; i < 4; ++i) {
    pool.record(0, FaultKind::kStall);
    pool.record(1, FaultKind::kStall);
  }
  ASSERT_FALSE(pool.allow(0));
  ASSERT_FALSE(pool.allow(1));

  // Serving somewhere beats serving nowhere: the lease is still valid.
  auto lease = router.place(100);
  EXPECT_TRUE(lease.valid());
}

TEST(GraphRouter, LeaseReleasedWhenSolveThrows) {
  // The RAII contract under exceptions: a lease held across a throwing
  // solve must return its load on unwind, and the affinity entry written at
  // placement must survive — repeat traffic still lands on the home device.
  auto pool = make_pool(2);
  GraphRouter router(pool);

  constexpr std::uint64_t kTenant = 7;
  std::size_t home = 0;
  try {
    auto lease = router.place(100, kTenant);
    home = lease.device_index();
    throw std::runtime_error("solver exploded mid-lease");
  } catch (const std::runtime_error&) {
  }

  const auto load = router.load_snapshot();
  EXPECT_EQ(load[0] + load[1], 0u) << "unwind must release the in-flight load";
  auto again = router.place(10, kTenant);
  EXPECT_EQ(again.device_index(), home) << "affinity must survive the unwind";
}

TEST(GraphRouter, AdoptRegistersExistingPlacementLoad) {
  auto pool = make_pool(2);
  GraphRouter router(pool);

  // The sharded coordinator assigned device 0 itself; adopt() makes the
  // router's least-loaded view agree, so the next placement avoids it.
  auto adopted = router.adopt(0, 1'000);
  EXPECT_EQ(router.load_snapshot()[0], 1'000u);
  auto lease = router.place(10);
  EXPECT_EQ(lease.device_index(), 1u);

  adopted.release();
  EXPECT_EQ(router.load_snapshot()[0], 0u);
}

TEST(GraphRouter, PlaceExcludingIsHardEvenUnderTotalQuarantine) {
  DevicePoolConfig cfg;
  cfg.devices = 3;
  cfg.profile = device::tiny_profile();
  cfg.thread_budget = 3;
  cfg.health.breaker.window = 4;
  cfg.health.breaker.min_samples = 2;
  cfg.health.breaker.cooldown_seconds = 60.0;
  DevicePool pool(cfg);
  GraphRouter router(pool);

  // Ejected devices are never chosen, even when every surviving device is
  // quarantined (unlike place()'s advisory last-resort rule).
  for (int i = 0; i < 4; ++i) pool.record(1, FaultKind::kStall);
  ASSERT_FALSE(pool.allow(1));

  std::vector<char> ejected = {1, 0, 0};
  for (int i = 0; i < 4; ++i) {
    auto lease = router.place_excluding(100, ejected);
    ASSERT_TRUE(lease.valid());
    EXPECT_NE(lease.device_index(), 0u);
  }

  // All devices excluded: the lease is invalid, not a silent fallback.
  std::vector<char> all = {1, 1, 1};
  auto none = router.place_excluding(100, all);
  EXPECT_FALSE(none.valid());
}

}  // namespace
}  // namespace ecl::test
