// DevicePool unit tests (ctest label: fleet): global thread-budget
// division, per-device fault plans, per-device health quarantine, the
// launch-stats fold, and the per-device exclusive-use guards.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "device/device.hpp"
#include "device/fault.hpp"
#include "fleet/device_pool.hpp"
#include "service/health_registry.hpp"

namespace ecl::test {
namespace {

using fleet::DevicePool;
using fleet::DevicePoolConfig;
using service::BackendHealth;
using service::FaultKind;

DevicePoolConfig pool_config(unsigned devices, unsigned budget) {
  DevicePoolConfig cfg;
  cfg.devices = devices;
  cfg.profile = device::tiny_profile();
  cfg.thread_budget = budget;
  return cfg;
}

TEST(DevicePool, DividesThreadBudgetEvenlyAcrossDevices) {
  DevicePool pool(pool_config(/*devices=*/4, /*budget=*/8));
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.workers_per_device(), 2u);
}

TEST(DevicePool, ThreadBudgetFloorsAtOneWorkerPerDevice) {
  // Budget 1 across 4 devices must not starve any device: every device
  // still gets one worker (the aggregate exceeds the budget, which is the
  // documented floor behavior — a device with zero workers cannot launch).
  DevicePool pool(pool_config(/*devices=*/4, /*budget=*/1));
  EXPECT_EQ(pool.workers_per_device(), 1u);

  DevicePool uneven(pool_config(/*devices=*/3, /*budget=*/7));
  EXPECT_EQ(uneven.workers_per_device(), 2u);  // floor(7 / 3)
}

TEST(DevicePool, DeviceCountFloorsAtOne) {
  DevicePool pool(pool_config(/*devices=*/0, /*budget=*/2));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(DevicePool, NamesAreIndexAligned) {
  DevicePool pool(pool_config(3, 3));
  ASSERT_EQ(pool.names().size(), 3u);
  EXPECT_EQ(pool.names()[0], "device-0");
  EXPECT_EQ(pool.names()[1], "device-1");
  EXPECT_EQ(pool.names()[2], "device-2");
  EXPECT_EQ(pool.health().size(), 3u);
}

TEST(DevicePool, PerDeviceFaultPlansLandOnTheRightDevice) {
  DevicePoolConfig cfg = pool_config(3, 3);
  cfg.fault_plans.resize(2);
  cfg.fault_plans[1] = device::FaultPlan::from_seed(0x715);
  DevicePool pool(cfg);

  // Device 1 carries the seeded plan; devices 0 and 2 (beyond the vector)
  // inherit the profile's clean plan.
  EXPECT_FALSE(pool.at(0).profile().fault_plan.any());
  EXPECT_TRUE(pool.at(1).profile().fault_plan.any());
  EXPECT_FALSE(pool.at(2).profile().fault_plan.any());
}

TEST(DevicePool, RepeatedFaultsQuarantineOnlyTheOffendingDevice) {
  DevicePoolConfig cfg = pool_config(2, 2);
  cfg.health.breaker.window = 4;
  cfg.health.breaker.min_samples = 2;
  cfg.health.breaker.failure_threshold = 0.5;
  cfg.health.breaker.cooldown_seconds = 60.0;  // stays quarantined for the test
  DevicePool pool(cfg);

  EXPECT_TRUE(pool.allow(0));
  EXPECT_TRUE(pool.allow(1));
  for (int i = 0; i < 4; ++i) pool.record(0, FaultKind::kStall);
  EXPECT_FALSE(pool.allow(0));  // quarantined
  EXPECT_TRUE(pool.allow(1));   // peer untouched

  const auto snap = pool.health().snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].health, BackendHealth::kQuarantined);
  EXPECT_EQ(snap[1].health, BackendHealth::kHealthy);
}

TEST(DevicePool, AggregateStatsFoldsEveryDevice) {
  DevicePool pool(pool_config(2, 2));
  pool.at(0).stats().kernel_launches = 3;
  pool.at(0).stats().blocks_executed = 30;
  pool.at(1).stats().kernel_launches = 5;
  pool.at(1).stats().block_iterations = 7;

  const device::LaunchStats total = pool.aggregate_stats();
  EXPECT_EQ(total.kernel_launches, 8u);
  EXPECT_EQ(total.blocks_executed, 30u);
  EXPECT_EQ(total.block_iterations, 7u);
}

TEST(DevicePool, MergeLaunchStatsWidensBlockHistogram) {
  device::LaunchStats into;
  into.block_edge_work = {1, 2};
  device::LaunchStats from;
  from.block_edge_work = {10, 10, 10};
  from.kernel_launches = 1;
  fleet::merge_launch_stats(into, from);
  ASSERT_EQ(into.block_edge_work.size(), 3u);
  EXPECT_EQ(into.block_edge_work[0], 11u);
  EXPECT_EQ(into.block_edge_work[1], 12u);
  EXPECT_EQ(into.block_edge_work[2], 10u);
  EXPECT_EQ(into.kernel_launches, 1u);
}

TEST(DevicePool, AcquireGuardsAreExclusivePerDevice) {
  DevicePool pool(pool_config(2, 2));
  auto guard0 = pool.acquire(0);
  ASSERT_TRUE(guard0.owns_lock());

  // Device 1's guard is independent: acquirable while device 0 is held.
  auto guard1 = pool.acquire(1);
  EXPECT_TRUE(guard1.owns_lock());
  guard1.unlock();

  // A second user of device 0 blocks until the first releases.
  std::atomic<bool> acquired{false};
  std::thread contender([&] {
    auto g = pool.acquire(0);
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  guard0.unlock();
  contender.join();
  EXPECT_TRUE(acquired.load());
}

TEST(DevicePool, AcquireAllLocksEveryDevice) {
  DevicePool pool(pool_config(3, 3));
  auto guards = pool.acquire_all();
  ASSERT_EQ(guards.size(), 3u);
  for (const auto& g : guards) EXPECT_TRUE(g.owns_lock());
}

}  // namespace
}  // namespace ecl::test
