// Dirty-region escalation under chaos: every split escalates to the full
// ECL-SCC rebuild, routed through a device carrying a seeded FaultPlan, and
// the differential invariant must survive — run_resilient_on absorbs any
// injected failure (including a guaranteed stall) with the serial fallback.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/test_graphs.hpp"
#include "core/tarjan.hpp"
#include "device/device.hpp"
#include "device/fault.hpp"
#include "dynamic/dynamic_scc.hpp"

namespace ecl::test {
namespace {

using device::FaultPlan;
using dynamic::DynamicOptions;
using dynamic::DynamicScc;
using graph::EdgeUpdate;

device::DeviceProfile chaos_profile(FaultPlan plan) {
  device::DeviceProfile profile = device::tiny_profile();
  profile.fault_plan = plan;
  return profile;
}

/// Escalate on every split so each deletion-induced split exercises the
/// device-backed heavy kernel.
DynamicOptions escalate_always(device::Device* dev) {
  DynamicOptions opts;
  opts.full_algorithm = "ecl-a100";
  opts.escalate_fraction = 0.0;
  opts.escalate_min_vertices = 1;
  opts.device = dev;
  return opts;
}

void run_chaos_stream(const Digraph& base, device::Device& dev, std::uint64_t stream_seed,
                      const std::string& context) {
  Rng rng(stream_seed);
  graph::UpdateStreamOptions stream_opts;
  stream_opts.num_updates = 120;
  stream_opts.insert_fraction = 0.45;  // deletion-heavy: drive the escalation path
  const auto stream = graph::generate_update_stream(base, stream_opts, rng);

  DynamicScc dyn(base, escalate_always(&dev));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    dyn.apply(stream[i]);
    const Digraph scratch = dyn.graph();
    const auto oracle = scc::tarjan(scratch);
    const auto snap = dyn.snapshot();
    ASSERT_EQ(snap->num_components, oracle.num_components) << context << " update " << i;
    ASSERT_TRUE(scc::same_partition(snap->labels, oracle.labels)) << context << " update " << i;
  }
  EXPECT_GT(dyn.stats().full_rebuilds, 0u)
      << context << ": the sweep never escalated, so it proved nothing";
  EXPECT_EQ(dyn.stats().local_recomputes, 0u)
      << context << ": escalate-always must bypass local recomputes";
}

class DynamicChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicChaos, EscalatedRebuildsSurviveSeededFaultPlans) {
  const FaultPlan plan = FaultPlan::from_seed(GetParam());
  ASSERT_TRUE(plan.any());
  device::Device dev(chaos_profile(plan));
  run_chaos_stream(graph::cycle_chain(8, 8), dev, 0xc4a0 + GetParam(),
                   "cycle_chain under " + plan.describe());

  Rng rng(0x9e0 + GetParam());
  graph::SccProfile profile;
  profile.num_vertices = 150;
  profile.giant_fraction = 0.5;
  profile.size2_sccs = 8;
  profile.dag_depth = 5;
  device::Device dev2(chaos_profile(plan));
  run_chaos_stream(graph::scc_profile_graph(profile, rng), dev2,
                   0xc4a1 + GetParam(), "powerlaw under " + plan.describe());
}

// Two distinct seeded plans satisfy the ">= 2 seeded chaos FaultPlans"
// contract; more seeds just widen the net.
INSTANTIATE_TEST_SUITE_P(SeededPlans, DynamicChaos, ::testing::Values(7u, 99u, 1234u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(DynamicChaos, EscalatedRebuildSurvivesGuaranteedStall) {
  // store_defer_probability = 1.0 stalls every ECL-SCC run; the watchdog
  // trips and the serial fallback inside run_resilient_on completes the
  // rebuild. The engine must stay correct without ever noticing.
  FaultPlan stall;
  stall.seed = 5;
  stall.delayed_visibility = true;
  stall.store_defer_probability = 1.0;
  device::Device dev(chaos_profile(stall));

  DynamicScc dyn(graph::cycle_graph(40), escalate_always(&dev));
  EXPECT_EQ(dyn.num_components(), 1u);
  dyn.erase_edge(39, 0);  // split -> escalated rebuild under the stall plan
  EXPECT_EQ(dyn.num_components(), 40u);
  EXPECT_GE(dyn.stats().full_rebuilds, 1u);
  const auto oracle = scc::tarjan(dyn.graph());
  EXPECT_TRUE(scc::same_partition(dyn.snapshot()->labels, oracle.labels));
}

TEST(DynamicChaos, ThresholdSeparatesLocalFromEscalatedRecomputes) {
  // Same deletion, two thresholds: below -> local recompute, above -> full
  // rebuild. Pins the escalation decision itself, not just its outcome.
  const Digraph base = graph::cycle_graph(30);
  {
    DynamicOptions local;
    local.full_algorithm = "tarjan";
    local.escalate_fraction = 1.0;
    local.escalate_min_vertices = 31;  // dirty region of 30 stays local
    DynamicScc dyn(base, local);
    dyn.erase_edge(29, 0);
    EXPECT_EQ(dyn.stats().local_recomputes, 1u);
    EXPECT_EQ(dyn.stats().full_rebuilds, 0u);
    EXPECT_EQ(dyn.num_components(), 30u);
  }
  {
    DynamicOptions full;
    full.full_algorithm = "tarjan";
    full.escalate_fraction = 0.5;  // threshold 15 < 30 dirty vertices
    full.escalate_min_vertices = 1;
    DynamicScc dyn(base, full);
    dyn.erase_edge(29, 0);
    EXPECT_EQ(dyn.stats().local_recomputes, 0u);
    EXPECT_EQ(dyn.stats().full_rebuilds, 1u);
    EXPECT_EQ(dyn.num_components(), 30u);
  }
}

}  // namespace
}  // namespace ecl::test
