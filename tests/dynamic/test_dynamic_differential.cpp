// Randomized differential sweep: after EVERY update of a seeded mixed
// insert/delete stream, the incremental engine's partition must equal
// Tarjan run from scratch on an independently maintained edge-set mirror.
// Four graph families x 300 updates = 1200 checked states (the acceptance
// bar is >= 1000 across >= 3 families).

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "common/test_graphs.hpp"
#include "core/tarjan.hpp"
#include "dynamic/dynamic_scc.hpp"
#include "graph/condensation.hpp"

namespace ecl::test {
namespace {

using dynamic::DynamicOptions;
using dynamic::DynamicScc;
using graph::EdgeUpdate;

struct DifferentialCase {
  std::string name;
  Digraph base;
  std::uint64_t seed;
  DynamicOptions options;
};

/// Independent edge-set mirror (the engine's own graph() is not trusted as
/// the oracle input).
class EdgeMirror {
 public:
  explicit EdgeMirror(const Digraph& g) : n_(g.num_vertices()) {
    for (const auto& e : g.edges()) present_.insert(key(e.src, e.dst));
  }

  void apply(const EdgeUpdate& u) {
    if (u.kind == EdgeUpdate::Kind::kInsert)
      present_.insert(key(u.src, u.dst));
    else
      present_.erase(key(u.src, u.dst));
  }

  Digraph materialize() const {
    graph::EdgeList edges;
    edges.reserve(present_.size());
    for (std::uint64_t k : present_)
      edges.add(static_cast<graph::vid>(k >> 32), static_cast<graph::vid>(k & 0xffffffffu));
    return Digraph(n_, edges);
  }

 private:
  static std::uint64_t key(graph::vid u, graph::vid v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
  graph::vid n_;
  std::unordered_set<std::uint64_t> present_;
};

std::vector<DifferentialCase> differential_cases() {
  std::vector<DifferentialCase> cases;
  DynamicOptions fast;
  fast.full_algorithm = "tarjan";

  cases.push_back({"cycle_chain_12x6", graph::cycle_chain(12, 6), 0xd1f'01, fast});
  cases.push_back({"grid_dag_10x10", graph::grid_dag(10, 10), 0xd1f'02, fast});
  {
    Rng rng(0xd1f'03);
    cases.push_back({"er_n150_m450", graph::random_digraph(150, 450, rng), 0xd1f'04, fast});
  }
  {
    // Power-law profile with a giant SCC, driven through the real heavy
    // kernel, with a low escalation threshold so full rebuilds interleave
    // with local recomputes inside the sweep.
    Rng rng(0xd1f'05);
    graph::SccProfile profile;
    profile.num_vertices = 200;
    profile.giant_fraction = 0.4;
    profile.size2_sccs = 10;
    profile.mid_sccs = 3;
    profile.dag_depth = 6;
    DynamicOptions escalating;
    escalating.full_algorithm = "ecl-a100";
    escalating.escalate_fraction = 0.15;
    escalating.escalate_min_vertices = 16;
    cases.push_back(
        {"powerlaw_giant_escalating", graph::scc_profile_graph(profile, rng), 0xd1f'06, escalating});
  }
  return cases;
}

class DynamicDifferential : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DynamicDifferential, EveryPostUpdateStateMatchesTarjan) {
  const DifferentialCase test_case = differential_cases()[GetParam()];
  Rng rng(test_case.seed);
  graph::UpdateStreamOptions stream_opts;
  stream_opts.num_updates = 300;
  stream_opts.insert_fraction = 0.5;
  const auto stream = graph::generate_update_stream(test_case.base, stream_opts, rng);
  ASSERT_EQ(stream.size(), 300u);

  DynamicScc dyn(test_case.base, test_case.options);
  EdgeMirror mirror(test_case.base);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    dyn.apply(stream[i]);
    mirror.apply(stream[i]);
    const Digraph scratch = mirror.materialize();
    const auto oracle = scc::tarjan(scratch);
    const auto snap = dyn.snapshot();
    ASSERT_EQ(snap->labels.size(), scratch.num_vertices());
    ASSERT_EQ(snap->num_components, oracle.num_components)
        << test_case.name << " after update " << i;
    ASSERT_TRUE(scc::same_partition(snap->labels, oracle.labels))
        << test_case.name << " after update " << i;
    if (i % 50 == 49) {
      ASSERT_TRUE(graph::is_dag(dyn.condensation_graph())) << test_case.name;
    }
  }

  // The sweep must actually exercise the interesting paths.
  const auto stats = dyn.stats();
  EXPECT_GT(stats.merges + stats.splits + stats.full_rebuilds, 0u) << test_case.name;
  EXPECT_EQ(stats.inserts + stats.erases, 300u) << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DynamicDifferential,
                         ::testing::Range<std::size_t>(0, differential_cases().size()),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return differential_cases()[info.param].name;
                         });

}  // namespace
}  // namespace ecl::test
