// DynamicScc unit tests: single-update semantics (merge on insert, split on
// delete), epoch/snapshot versioning, the maintained condensation, and
// concurrent readers during a writer stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/test_graphs.hpp"
#include "core/tarjan.hpp"
#include "dynamic/dynamic_scc.hpp"
#include "graph/condensation.hpp"

namespace ecl::test {
namespace {

using dynamic::DynamicOptions;
using dynamic::DynamicScc;
using graph::EdgeUpdate;

/// Local options: Tarjan everywhere so unit tests stay fast and
/// deterministic; the heavy-kernel path is covered by the chaos suite.
DynamicOptions fast_options() {
  DynamicOptions opts;
  opts.full_algorithm = "tarjan";
  return opts;
}

void expect_matches_scratch(const DynamicScc& dyn, const std::string& context) {
  const Digraph g = dyn.graph();
  const auto oracle = scc::tarjan(g);
  const auto snap = dyn.snapshot();
  EXPECT_EQ(snap->num_components, oracle.num_components) << context;
  EXPECT_TRUE(scc::same_partition(snap->labels, oracle.labels)) << context;
}

TEST(DynamicScc, InitialDecompositionMatchesTarjan) {
  for (const auto& [name, g] : structured_graphs()) {
    DynamicScc dyn(g, fast_options());
    EXPECT_EQ(dyn.num_vertices(), g.num_vertices()) << name;
    EXPECT_EQ(dyn.num_edges(), g.num_edges()) << name;
    expect_matches_scratch(dyn, name);
  }
}

TEST(DynamicScc, InsertClosingEdgeMergesPathOfComponents) {
  // 0 -> 1 -> 2 -> 3 path; adding 3 -> 0 rolls all four into one SCC.
  DynamicScc dyn(graph::path_graph(4), fast_options());
  EXPECT_EQ(dyn.num_components(), 4u);
  EXPECT_TRUE(dyn.insert_edge(3, 0));
  EXPECT_EQ(dyn.num_components(), 1u);
  EXPECT_TRUE(dyn.same_scc(0, 3));
  EXPECT_EQ(dyn.component_size(1), 4u);
  const auto stats = dyn.stats();
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(stats.components_merged, 3u);
  EXPECT_EQ(stats.full_rebuilds, 0u);
  expect_matches_scratch(dyn, "path closed into a cycle");
}

TEST(DynamicScc, InsertWithoutCycleOnlyAddsCondensationEdge) {
  DynamicScc dyn(graph::path_graph(4), fast_options());
  EXPECT_TRUE(dyn.insert_edge(0, 3));  // forward edge: no cycle
  EXPECT_EQ(dyn.num_components(), 4u);
  EXPECT_EQ(dyn.stats().merges, 0u);
  expect_matches_scratch(dyn, "forward shortcut");
}

TEST(DynamicScc, IntraComponentInsertIsCheap) {
  DynamicScc dyn(graph::cycle_graph(8), fast_options());
  EXPECT_TRUE(dyn.insert_edge(0, 4));
  EXPECT_EQ(dyn.num_components(), 1u);
  EXPECT_EQ(dyn.stats().intra_component_inserts, 1u);
  EXPECT_EQ(dyn.stats().condensation_bfs_nodes, 0u);
}

TEST(DynamicScc, DuplicateInsertAndMissingEraseAreNoOps) {
  DynamicScc dyn(graph::cycle_graph(4), fast_options());
  const auto epoch = dyn.epoch();
  EXPECT_FALSE(dyn.insert_edge(0, 1));  // already present
  EXPECT_FALSE(dyn.erase_edge(2, 0));   // absent
  EXPECT_EQ(dyn.epoch(), epoch) << "no-ops must not advance the epoch";
}

TEST(DynamicScc, EraseBreakingCycleSplitsComponent) {
  DynamicScc dyn(graph::cycle_graph(5), fast_options());
  EXPECT_EQ(dyn.num_components(), 1u);
  EXPECT_TRUE(dyn.erase_edge(4, 0));  // cycle -> path
  EXPECT_EQ(dyn.num_components(), 5u);
  const auto stats = dyn.stats();
  EXPECT_EQ(stats.splits, 1u);
  EXPECT_EQ(stats.components_created, 4u);
  EXPECT_EQ(stats.local_recomputes, 1u);
  expect_matches_scratch(dyn, "cycle broken into a path");
}

TEST(DynamicScc, EraseWithAlternatePathKeepsComponent) {
  // Two parallel cycles over the same vertices: deleting one edge of one
  // cycle leaves the SCC intact, and the fast reachability check proves it.
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  e.add(0, 2);
  e.add(2, 1);
  e.add(1, 0);
  DynamicScc dyn(Digraph(3, e), fast_options());
  EXPECT_EQ(dyn.num_components(), 1u);
  EXPECT_TRUE(dyn.erase_edge(0, 1));
  EXPECT_EQ(dyn.num_components(), 1u);
  EXPECT_EQ(dyn.stats().delete_fast_checks, 1u);
  EXPECT_EQ(dyn.stats().local_recomputes, 0u);
  expect_matches_scratch(dyn, "redundant edge removed");
}

TEST(DynamicScc, InterComponentEraseNeverRecomputes) {
  DynamicScc dyn(graph::cycle_chain(3, 4), fast_options());  // 3 SCCs, 2 bridges
  EXPECT_EQ(dyn.num_components(), 3u);
  EXPECT_TRUE(dyn.erase_edge(0, 4));  // a bridge: condensation edge only
  EXPECT_EQ(dyn.num_components(), 3u);
  EXPECT_EQ(dyn.stats().local_recomputes, 0u);
  EXPECT_EQ(dyn.stats().splits, 0u);
  expect_matches_scratch(dyn, "bridge removed");
}

TEST(DynamicScc, SelfLoopInsertAndEraseAreNeutral) {
  DynamicScc dyn(graph::path_graph(3), fast_options());
  EXPECT_TRUE(dyn.insert_edge(1, 1));
  EXPECT_EQ(dyn.num_components(), 3u);
  EXPECT_TRUE(dyn.erase_edge(1, 1));
  EXPECT_EQ(dyn.num_components(), 3u);
  expect_matches_scratch(dyn, "self loop added and removed");
}

TEST(DynamicScc, OutOfRangeVertexThrows) {
  DynamicScc dyn(graph::path_graph(3), fast_options());
  EXPECT_THROW((void)dyn.insert_edge(0, 3), std::out_of_range);
  EXPECT_THROW((void)dyn.erase_edge(7, 0), std::out_of_range);
  EXPECT_THROW((void)dyn.component_of(3), std::out_of_range);
}

TEST(DynamicScc, EpochAdvancesPerAppliedUpdate) {
  DynamicScc dyn(graph::path_graph(4), fast_options());
  EXPECT_EQ(dyn.epoch(), 0u);
  dyn.insert_edge(3, 0);
  EXPECT_EQ(dyn.epoch(), 1u);
  const std::vector<EdgeUpdate> batch{
      {EdgeUpdate::Kind::kErase, 0, 1},
      {EdgeUpdate::Kind::kErase, 0, 1},  // duplicate: no-op
      {EdgeUpdate::Kind::kInsert, 1, 3},
  };
  EXPECT_EQ(dyn.apply_batch(batch), 2u);
  EXPECT_EQ(dyn.epoch(), 3u);
}

TEST(DynamicScc, SnapshotsAreImmutableAndCachedPerEpoch) {
  DynamicScc dyn(graph::cycle_graph(6), fast_options());
  const auto before = dyn.snapshot();
  EXPECT_EQ(before, dyn.snapshot()) << "same epoch must share one snapshot";
  EXPECT_EQ(before->num_components, 1u);

  dyn.erase_edge(5, 0);
  const auto after = dyn.snapshot();
  EXPECT_NE(before, after);
  EXPECT_GT(after->epoch, before->epoch);
  // The old snapshot still reflects its epoch.
  EXPECT_EQ(before->num_components, 1u);
  EXPECT_TRUE(before->same_scc(0, 5));
  EXPECT_EQ(after->num_components, 6u);
  EXPECT_FALSE(after->same_scc(0, 5));
}

TEST(DynamicScc, MaintainedCondensationMatchesFromScratch) {
  Rng rng(0xd15c);
  DynamicScc dyn(graph::cycle_chain(8, 4), fast_options());
  graph::UpdateStreamOptions opts;
  opts.num_updates = 300;
  const auto stream = graph::generate_update_stream(dyn.graph(), opts, rng);
  for (const auto& update : stream) {
    dyn.apply(update);
    ASSERT_TRUE(graph::is_dag(dyn.condensation_graph()));
  }
  // Full structural check at the end: condensation equals the from-scratch
  // condensation under normalized Tarjan labels, vertex for vertex.
  const Digraph g = dyn.graph();
  auto labels = scc::tarjan(g).labels;
  const auto k = graph::normalize_labels(labels);
  const Digraph expected = graph::condensation(g, labels, k);
  const Digraph maintained = dyn.condensation_graph();
  ASSERT_EQ(maintained.num_vertices(), expected.num_vertices());
  EXPECT_EQ(maintained.num_edges(), expected.num_edges());
  for (graph::vid c = 0; c < expected.num_vertices(); ++c) {
    const auto a = maintained.out_neighbors(c);
    const auto b = expected.out_neighbors(c);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << "component " << c;
  }
  EXPECT_EQ(graph::dag_depth(maintained), graph::dag_depth(expected));
}

TEST(DynamicScc, EmptyGraphIsServedWithoutWork) {
  DynamicScc dyn(Digraph(0, graph::EdgeList{}), fast_options());
  EXPECT_EQ(dyn.num_vertices(), 0u);
  EXPECT_EQ(dyn.num_components(), 0u);
  EXPECT_EQ(dyn.snapshot()->labels.size(), 0u);
  EXPECT_EQ(dyn.condensation_graph().num_vertices(), 0u);
}

// ---- Concurrency: readers during a writer stream (TSan-covered in CI) ----

TEST(DynamicConcurrency, ReadersSeeConsistentSnapshotsDuringUpdates) {
  Rng rng(0xbeef);
  const auto base = graph::cycle_chain(10, 6);
  DynamicScc dyn(base, fast_options());
  graph::UpdateStreamOptions opts;
  opts.num_updates = 400;
  const auto stream = graph::generate_update_stream(base, opts, rng);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  auto reader = [&] {
    std::uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = dyn.snapshot();
      // Epochs only move forward, and a snapshot is internally consistent:
      // its label vector always covers every vertex.
      if (snap->epoch < last_epoch || snap->labels.size() != base.num_vertices()) {
        failures.fetch_add(1);
        return;
      }
      last_epoch = snap->epoch;
      (void)dyn.same_scc(0, base.num_vertices() - 1);
      (void)dyn.num_components();
    }
  };
  std::thread r1(reader);
  std::thread r2(reader);
  for (const auto& update : stream) dyn.apply(update);
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_EQ(failures.load(), 0);
  expect_matches_scratch(dyn, "after concurrent reader stream");
}

}  // namespace
}  // namespace ecl::test
