#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "core/result.hpp"
#include "graph/generators.hpp"
#include "service/scc_service.hpp"

namespace ecl::test {
namespace {

using service::Request;
using service::RequestKind;
using service::Response;
using service::SccService;
using service::ServiceConfig;
using service::ServiceStatus;
using service::Tier;

ServiceConfig healthy_config() {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.device_workers = 2;
  cfg.backends = {"ecl-a100", "ecl-omp", "tarjan"};
  return cfg;
}

/// Every device-backed fresh attempt stalls (guaranteed by the
/// delayed-visibility fault at p=1) and fails fast via the stall watchdog.
ServiceConfig chaos_config() {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.device_workers = 2;
  cfg.backends = {"ecl-a100"};
  cfg.max_attempts = 2;
  cfg.backoff.initial_seconds = 0.0005;
  cfg.backoff.max_seconds = 0.002;
  cfg.device_profile.fault_plan.seed = 7;
  cfg.device_profile.fault_plan.delayed_visibility = true;
  cfg.device_profile.fault_plan.store_defer_probability = 1.0;
  return cfg;
}

TEST(SccService, FreshLabelsMatchTarjan) {
  const auto g = graph::cycle_chain(4, 5);
  SccService svc(g, healthy_config());
  Request req;
  req.kind = RequestKind::kSccLabels;
  req.deadline = Request::deadline_in(10.0);
  const Response r = svc.call(req);
  ASSERT_EQ(r.status, ServiceStatus::kOk);
  EXPECT_EQ(r.served_by.tier, Tier::kFresh);
  EXPECT_FALSE(r.served_by.backend.empty());
  EXPECT_GE(r.served_by.attempts, 1u);
  ASSERT_NE(r.labels, nullptr);
  const auto oracle = scc::run_algorithm("tarjan", g);
  EXPECT_TRUE(scc::same_partition(r.labels->labels, oracle.labels));
  EXPECT_EQ(r.num_components, oracle.num_components);
}

TEST(SccService, CondensationAndReachability) {
  const auto g = graph::cycle_chain(3, 4);  // 3 cycles chained: 3 SCCs
  SccService svc(g, healthy_config());

  Request cond;
  cond.kind = RequestKind::kCondensation;
  const Response rc = svc.call(cond);
  ASSERT_EQ(rc.status, ServiceStatus::kOk);
  EXPECT_EQ(rc.condensation.num_vertices(), 3u);

  Request reach;
  reach.kind = RequestKind::kReachabilityQuery;
  reach.u = 0;
  reach.v = 3;  // wraps within the first cycle
  EXPECT_TRUE(svc.call(reach).reachable);
  reach.v = 4;  // second cycle: different SCC
  EXPECT_FALSE(svc.call(reach).reachable);
}

TEST(SccService, ReachabilityRejectsBadVertex) {
  SccService svc(graph::cycle_graph(8), healthy_config());
  Request req;
  req.kind = RequestKind::kReachabilityQuery;
  req.u = 0;
  req.v = 1000;
  const Response r = svc.call(req);
  EXPECT_EQ(r.status, ServiceStatus::kInvalidRequest);
}

TEST(SccService, UpdateBatchAdvancesEpochAndLabels) {
  // Two disjoint cycles; inserting bridge edges merges them.
  const auto g = graph::cycle_chain(2, 4);
  SccService svc(g, healthy_config());

  Request update;
  update.kind = RequestKind::kUpdateBatch;
  update.updates = {{graph::EdgeUpdate::Kind::kInsert, 4, 0}};
  const Response ru = svc.call(update);
  ASSERT_EQ(ru.status, ServiceStatus::kOk);
  EXPECT_EQ(ru.updates_applied, 1u);
  EXPECT_GE(ru.served_by.epoch, 1u);

  Request labels;
  labels.kind = RequestKind::kSccLabels;
  labels.deadline = Request::deadline_in(10.0);
  const Response rl = svc.call(labels);
  ASSERT_EQ(rl.status, ServiceStatus::kOk);
  EXPECT_EQ(rl.num_components, 1u) << "bridge edge merges the chain into one SCC";
}

TEST(SccService, ShutdownRejectsNewWork) {
  SccService svc(graph::cycle_graph(8), healthy_config());
  svc.shutdown();
  const Response r = svc.call(Request{});
  EXPECT_EQ(r.status, ServiceStatus::kRejectedShuttingDown);
  EXPECT_TRUE(r.rejected());
}

TEST(SccService, ExpiredDeadlineIsReportedNotServed) {
  SccService svc(graph::cycle_graph(8), healthy_config());
  Request req;
  req.kind = RequestKind::kSccLabels;
  req.deadline = service::ServiceClock::now() - std::chrono::milliseconds(5);
  const Response r = svc.call(req);
  EXPECT_EQ(r.status, ServiceStatus::kDeadlineExceeded);
}

TEST(SccService, QueueFullProducesStructuredRejection) {
  ServiceConfig cfg = chaos_config();
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.enable_degradation = false;
  cfg.enable_breakers = false;
  cfg.max_attempts = 4;
  cfg.backoff.initial_seconds = 0.05;  // keep the lone worker busy
  cfg.backoff.jitter = 0.0;
  SccService svc(graph::cycle_graph(64), cfg);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) {
    Request req;
    req.kind = RequestKind::kSccLabels;
    req.deadline = Request::deadline_in(2.0);
    futures.push_back(svc.submit(req));
  }
  std::size_t rejected = 0;
  for (auto& f : futures) {
    const Response r = f.get();
    if (r.status == ServiceStatus::kRejectedQueueFull) {
      ++rejected;
      EXPECT_TRUE(r.rejected());
      EXPECT_FALSE(r.message.empty());
    }
  }
  EXPECT_GT(rejected, 0u) << "an 8-deep burst into a 1-slot queue must shed";
  EXPECT_EQ(svc.stats().rejected_queue_full, rejected);
}

TEST(SccService, ChaosDegradesToLabeledStaleSnapshot) {
  const auto g = graph::cycle_chain(4, 5);
  SccService svc(g, chaos_config());
  Request req;
  req.kind = RequestKind::kSccLabels;
  req.deadline = Request::deadline_in(5.0);
  req.staleness_budget = 100;
  const Response r = svc.call(req);
  ASSERT_EQ(r.status, ServiceStatus::kOk);
  EXPECT_EQ(r.served_by.tier, Tier::kStaleSnapshot);
  EXPECT_TRUE(r.degraded()) << "degraded answers must be labeled in ServedBy";
  EXPECT_EQ(r.served_by.backend, "snapshot");
  ASSERT_NE(r.labels, nullptr);
  const auto oracle = scc::run_algorithm("tarjan", g);
  EXPECT_TRUE(scc::same_partition(r.labels->labels, oracle.labels));
}

TEST(SccService, ChaosOpensBreakerAndStopsRoutingToBackend) {
  SccService svc(graph::cycle_graph(64), chaos_config());
  Request req;
  req.kind = RequestKind::kSccLabels;
  req.deadline = Request::deadline_in(5.0);
  req.staleness_budget = 100;
  // Enough failures to cross the breaker's min_samples threshold.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(svc.call(req).ok());

  const auto states = svc.breaker_states();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].first, "ecl-a100");
  EXPECT_EQ(states[0].second, service::BreakerState::kOpen);

  const Response shielded = svc.call(req);
  ASSERT_TRUE(shielded.ok());
  EXPECT_EQ(shielded.served_by.attempts, 0u) << "open breaker short-circuits the fresh tier";
  EXPECT_GT(shielded.served_by.breaker_skips, 0u);
  EXPECT_GT(svc.stats().breaker_skips, 0u);
}

TEST(SccService, ZeroStalenessBudgetForcesExactSerialFallback) {
  const auto g = graph::cycle_chain(2, 4);
  SccService svc(g, chaos_config());

  Request update;
  update.kind = RequestKind::kUpdateBatch;
  update.updates = {{graph::EdgeUpdate::Kind::kInsert, 4, 0}};
  ASSERT_TRUE(svc.call(update).ok());

  Request req;
  req.kind = RequestKind::kSccLabels;
  req.deadline = Request::deadline_in(5.0);
  req.staleness_budget = 0;  // the epoch-0 cached snapshot is now too stale
  const Response r = svc.call(req);
  ASSERT_EQ(r.status, ServiceStatus::kOk);
  EXPECT_EQ(r.served_by.tier, Tier::kSerialFallback);
  EXPECT_EQ(r.served_by.backend, "tarjan");
  EXPECT_EQ(r.served_by.staleness_epochs, 0u) << "serial tier answers are epoch-exact";
  EXPECT_EQ(r.num_components, 1u);
}

TEST(SccService, DegradationDisabledSurfacesFailure) {
  ServiceConfig cfg = chaos_config();
  cfg.enable_degradation = false;
  SccService svc(graph::cycle_graph(64), cfg);
  Request req;
  req.kind = RequestKind::kSccLabels;
  req.deadline = Request::deadline_in(0.5);
  req.staleness_budget = 100;
  const Response r = svc.call(req);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status == ServiceStatus::kUnavailable ||
              r.status == ServiceStatus::kDeadlineExceeded)
      << service::service_status_name(r.status);
}

TEST(SccService, OkResponsesNeverOutliveTheirDeadline) {
  SccService svc(graph::cycle_chain(4, 5), chaos_config());
  for (int i = 0; i < 12; ++i) {
    Request req;
    req.kind = i % 3 == 0 ? RequestKind::kReachabilityQuery : RequestKind::kSccLabels;
    req.u = 0;
    req.v = 1;
    req.deadline = Request::deadline_in(0.2);
    req.staleness_budget = 100;
    const Response r = svc.call(req);
    if (r.ok()) {
      EXPECT_LE(r.completed_at.time_since_epoch().count(),
                req.deadline.time_since_epoch().count());
    }
  }
}

TEST(SccService, ConcurrentMixedWorkloadIsConsistent) {
  const auto g = graph::cycle_chain(4, 8);
  ServiceConfig cfg = healthy_config();
  cfg.workers = 4;
  cfg.queue_capacity = 256;
  SccService svc(g, cfg);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 64; ++i) {
    Request req;
    req.deadline = Request::deadline_in(30.0);
    req.staleness_budget = 1000;
    switch (i % 4) {
      case 0: req.kind = RequestKind::kSccLabels; break;
      case 1: req.kind = RequestKind::kReachabilityQuery; req.u = 0; req.v = 1; break;
      case 2: req.kind = RequestKind::kCondensation; break;
      default:
        req.kind = RequestKind::kUpdateBatch;
        req.updates = {{graph::EdgeUpdate::Kind::kInsert, static_cast<graph::vid>(i % 32),
                        static_cast<graph::vid>((i * 7 + 3) % 32)}};
        break;
    }
    futures.push_back(svc.submit(req));
  }
  for (auto& f : futures) {
    const Response r = f.get();
    EXPECT_TRUE(r.ok()) << service::service_status_name(r.status) << ": " << r.message;
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 64u);
}

}  // namespace
}  // namespace ecl::test
