#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "core/registry.hpp"
#include "core/result.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "service/scc_service.hpp"
#include "support/rng.hpp"

namespace ecl::test {
namespace {

using service::Request;
using service::RequestKind;
using service::Response;
using service::SccService;
using service::ServiceConfig;
using service::ServiceStatus;
using service::Tier;

// Differential check of the degradation ladder: every degraded response must
// be either epoch-exact or within the request's staleness budget, and its
// labels must match a from-scratch Tarjan recompute of the graph *at the
// epoch the response claims to reflect*. The oracle records the canonical
// partition after every phase of updates, keyed by engine epoch.
TEST(ServiceDifferential, DegradedResponsesAreEpochHonest) {
  graph::SccProfile profile;
  profile.num_vertices = 150;
  profile.avg_degree = 4.0;
  profile.mid_sccs = 4;
  profile.size2_sccs = 6;
  Rng rng(2024);
  const auto base = graph::scc_profile_graph(profile, rng);

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.device_workers = 2;
  cfg.backends = {"ecl-a100"};
  cfg.max_attempts = 1;
  cfg.backoff.initial_seconds = 0.0005;
  cfg.backoff.max_seconds = 0.002;
  // Guaranteed-stall chaos: the fresh tier always fails, so every labeling
  // answer comes from the degradation ladder.
  cfg.device_profile.fault_plan.seed = 99;
  cfg.device_profile.fault_plan.delayed_visibility = true;
  cfg.device_profile.fault_plan.store_defer_probability = 1.0;
  SccService svc(base, cfg);

  // Oracle partition per epoch, from an independent Tarjan recompute.
  std::map<std::uint64_t, std::vector<graph::vid>> oracle;
  auto record_oracle = [&] {
    auto [g, epoch] = svc.engine().graph_with_epoch();
    oracle[epoch] = scc::run_algorithm("tarjan", g).labels;
  };
  record_oracle();  // epoch 0

  graph::UpdateStreamOptions stream_opts;
  stream_opts.num_updates = 120;
  auto stream = graph::generate_update_stream(base, stream_opts, rng);

  constexpr std::size_t kPhases = 4;
  const std::size_t per_phase = stream.size() / kPhases;
  for (std::size_t phase = 0; phase < kPhases; ++phase) {
    Request update;
    update.kind = RequestKind::kUpdateBatch;
    update.updates.assign(stream.begin() + static_cast<std::ptrdiff_t>(phase * per_phase),
                          stream.begin() + static_cast<std::ptrdiff_t>((phase + 1) * per_phase));
    const Response ru = svc.call(update);
    ASSERT_EQ(ru.status, ServiceStatus::kOk);
    record_oracle();

    // Generous budget: the ladder may serve any recorded epoch.
    Request stale_ok;
    stale_ok.kind = RequestKind::kSccLabels;
    stale_ok.deadline = Request::deadline_in(0.6);
    stale_ok.staleness_budget = 100000;
    const Response rs = svc.call(stale_ok);
    ASSERT_EQ(rs.status, ServiceStatus::kOk);
    EXPECT_TRUE(rs.degraded()) << "chaos guarantees the fresh tier cannot answer";
    EXPECT_LE(rs.served_by.staleness_epochs, stale_ok.staleness_budget);
    ASSERT_NE(rs.labels, nullptr);
    EXPECT_EQ(rs.labels->epoch, rs.served_by.epoch) << "trace epoch must match the payload";
    ASSERT_TRUE(oracle.count(rs.served_by.epoch))
        << "served epoch " << rs.served_by.epoch << " was never a phase boundary";
    EXPECT_TRUE(scc::same_partition(rs.labels->labels, oracle[rs.served_by.epoch]))
        << "degraded labels must equal a Tarjan recompute at their stamped epoch";

    // Zero budget: only an epoch-exact answer is acceptable.
    Request exact;
    exact.kind = RequestKind::kSccLabels;
    exact.deadline = Request::deadline_in(0.6);
    exact.staleness_budget = 0;
    const Response re = svc.call(exact);
    ASSERT_EQ(re.status, ServiceStatus::kOk);
    EXPECT_EQ(re.served_by.staleness_epochs, 0u);
    ASSERT_NE(re.labels, nullptr);
    ASSERT_TRUE(oracle.count(re.served_by.epoch));
    EXPECT_TRUE(scc::same_partition(re.labels->labels, oracle[re.served_by.epoch]));
  }
}

// The engine's incrementally maintained view itself stays exact across the
// same phases (reachability answered fresh must agree with the oracle).
TEST(ServiceDifferential, FreshReachabilityAgreesWithOracle) {
  const auto base = graph::cycle_chain(5, 6);
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.backends = {"tarjan"};
  SccService svc(base, cfg);

  Rng rng(7);
  graph::UpdateStreamOptions stream_opts;
  stream_opts.num_updates = 40;
  auto stream = graph::generate_update_stream(base, stream_opts, rng);
  Request update;
  update.kind = RequestKind::kUpdateBatch;
  update.updates = stream;
  ASSERT_TRUE(svc.call(update).ok());

  auto [g, epoch] = svc.engine().graph_with_epoch();
  const auto oracle = scc::run_algorithm("tarjan", g);
  for (int i = 0; i < 50; ++i) {
    Request req;
    req.kind = RequestKind::kReachabilityQuery;
    req.u = static_cast<graph::vid>(rng.bounded(g.num_vertices()));
    req.v = static_cast<graph::vid>(rng.bounded(g.num_vertices()));
    const Response r = svc.call(req);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.reachable, oracle.labels[req.u] == oracle.labels[req.v]);
  }
}

}  // namespace
}  // namespace ecl::test
