#include <gtest/gtest.h>

#include <chrono>

#include "service/circuit_breaker.hpp"

namespace ecl::test {
namespace {

using service::BreakerState;
using service::CircuitBreaker;
using service::CircuitBreakerConfig;
using Clock = CircuitBreaker::Clock;

CircuitBreakerConfig small_config() {
  CircuitBreakerConfig cfg;
  cfg.window = 8;
  cfg.min_samples = 4;
  cfg.failure_threshold = 0.5;
  cfg.cooldown_seconds = 1.0;
  cfg.half_open_probes = 1;
  return cfg;
}

Clock::duration seconds(double s) {
  return std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(s));
}

TEST(CircuitBreaker, StartsClosedAndAllows) {
  CircuitBreaker cb(small_config());
  const auto t0 = Clock::now();
  EXPECT_EQ(cb.state(t0), BreakerState::kClosed);
  EXPECT_TRUE(cb.allow(t0));
}

TEST(CircuitBreaker, OpensWhenFailureRateCrossesThreshold) {
  CircuitBreaker cb(small_config());
  const auto t0 = Clock::now();
  // Three failures is below min_samples; the fourth trips (4/4 >= 0.5).
  cb.record_failure(t0);
  cb.record_failure(t0);
  cb.record_failure(t0);
  EXPECT_EQ(cb.state(t0), BreakerState::kClosed);
  cb.record_failure(t0);
  EXPECT_EQ(cb.state(t0), BreakerState::kOpen);
  EXPECT_FALSE(cb.allow(t0));
  EXPECT_EQ(cb.opens(), 1u);
}

TEST(CircuitBreaker, MixedOutcomesBelowThresholdStayClosed) {
  CircuitBreaker cb(small_config());
  const auto t0 = Clock::now();
  for (int i = 0; i < 16; ++i) {
    cb.record_success(t0);
    cb.record_success(t0);
    cb.record_failure(t0);  // 1/3 failure rate < 0.5
  }
  EXPECT_EQ(cb.state(t0), BreakerState::kClosed);
  EXPECT_EQ(cb.opens(), 0u);
}

TEST(CircuitBreaker, HalfOpenAfterCooldownAdmitsOneProbe) {
  CircuitBreaker cb(small_config());
  const auto t0 = Clock::now();
  for (int i = 0; i < 4; ++i) cb.record_failure(t0);
  ASSERT_EQ(cb.state(t0), BreakerState::kOpen);

  const auto before = t0 + seconds(0.5);
  EXPECT_FALSE(cb.allow(before)) << "still cooling down";

  const auto after = t0 + seconds(1.5);
  EXPECT_TRUE(cb.allow(after)) << "cooldown elapsed: one probe admitted";
  EXPECT_EQ(cb.state(after), BreakerState::kHalfOpen);
  EXPECT_FALSE(cb.allow(after)) << "only half_open_probes callers pass";
}

TEST(CircuitBreaker, ProbeSuccessCloses) {
  CircuitBreaker cb(small_config());
  const auto t0 = Clock::now();
  for (int i = 0; i < 4; ++i) cb.record_failure(t0);
  const auto after = t0 + seconds(1.5);
  ASSERT_TRUE(cb.allow(after));
  cb.record_success(after);
  EXPECT_EQ(cb.state(after), BreakerState::kClosed);
  EXPECT_TRUE(cb.allow(after));
  // The window was cleared: one new failure does not immediately re-trip.
  cb.record_failure(after);
  EXPECT_EQ(cb.state(after), BreakerState::kClosed);
}

TEST(CircuitBreaker, ProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker cb(small_config());
  const auto t0 = Clock::now();
  for (int i = 0; i < 4; ++i) cb.record_failure(t0);
  const auto probe_time = t0 + seconds(1.5);
  ASSERT_TRUE(cb.allow(probe_time));
  cb.record_failure(probe_time);
  EXPECT_EQ(cb.state(probe_time), BreakerState::kOpen);
  EXPECT_EQ(cb.opens(), 2u);
  EXPECT_FALSE(cb.allow(probe_time + seconds(0.5))) << "cooldown restarted at reopen";
  EXPECT_TRUE(cb.allow(probe_time + seconds(1.5)));
}

TEST(CircuitBreaker, SlidingWindowForgetsOldFailures) {
  auto cfg = small_config();
  cfg.window = 4;
  cfg.min_samples = 4;
  CircuitBreaker cb(cfg);
  const auto t0 = Clock::now();
  // Two failures, then enough successes to push them out of the window.
  cb.record_failure(t0);
  cb.record_failure(t0);
  for (int i = 0; i < 4; ++i) cb.record_success(t0);
  // Window now holds 4 successes; one more failure is 1/4 < 0.5.
  cb.record_failure(t0);
  EXPECT_EQ(cb.state(t0), BreakerState::kClosed);
}

TEST(CircuitBreaker, StateNamesAreStable) {
  EXPECT_STREQ(service::breaker_state_name(BreakerState::kClosed), "closed");
  EXPECT_STREQ(service::breaker_state_name(BreakerState::kOpen), "open");
  EXPECT_STREQ(service::breaker_state_name(BreakerState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace ecl::test
