#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "service/admission_queue.hpp"

namespace ecl::test {
namespace {

using service::AdmissionQueue;
using service::AdmitResult;

TEST(AdmissionQueue, AcceptsUpToCapacityThenSheds) {
  AdmissionQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), AdmitResult::kAccepted);
  EXPECT_EQ(q.try_push(2), AdmitResult::kAccepted);
  EXPECT_EQ(q.try_push(3), AdmitResult::kQueueFull);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.accepted(), 2u);
  EXPECT_EQ(q.rejected_full(), 1u);
}

TEST(AdmissionQueue, PopFreesCapacity) {
  AdmissionQueue<int> q(1);
  EXPECT_EQ(q.try_push(7), AdmitResult::kAccepted);
  EXPECT_EQ(q.try_push(8), AdmitResult::kQueueFull);
  auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 7);
  EXPECT_EQ(q.try_push(8), AdmitResult::kAccepted);
}

TEST(AdmissionQueue, RejectedItemIsNotConsumed) {
  // try_push takes T&& but must only move on accept: a shed producer still
  // owns the item (the service resolves the promise inside it).
  AdmissionQueue<std::unique_ptr<int>> q(1);
  auto first = std::make_unique<int>(1);
  EXPECT_EQ(q.try_push(std::move(first)), AdmitResult::kAccepted);
  auto second = std::make_unique<int>(2);
  EXPECT_EQ(q.try_push(std::move(second)), AdmitResult::kQueueFull);
  ASSERT_NE(second, nullptr) << "a rejected item must remain owned by the caller";
  EXPECT_EQ(*second, 2);
}

TEST(AdmissionQueue, ShutdownRejectsNewWorkButDrainsQueued) {
  AdmissionQueue<int> q(4);
  EXPECT_EQ(q.try_push(1), AdmitResult::kAccepted);
  EXPECT_EQ(q.try_push(2), AdmitResult::kAccepted);
  q.shutdown();
  EXPECT_TRUE(q.shutting_down());
  EXPECT_EQ(q.try_push(3), AdmitResult::kShuttingDown);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value()) << "drained + shut down = end-of-stream";
}

TEST(AdmissionQueue, ShutdownWakesBlockedConsumer) {
  AdmissionQueue<int> q(1);
  std::atomic<bool> finished{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop().has_value());
    finished.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(finished.load());
  q.shutdown();
  consumer.join();
  EXPECT_TRUE(finished.load());
}

TEST(AdmissionQueue, ConcurrentProducersConsumersConserveItems) {
  AdmissionQueue<int> q(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::atomic<int> accepted{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c)
    consumers.emplace_back([&] {
      while (q.pop().has_value()) popped.fetch_add(1);
    });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = i;
        if (q.try_push(std::move(item)) == AdmitResult::kAccepted)
          accepted.fetch_add(1);
        else
          std::this_thread::yield();
      }
    });
  for (auto& t : producers) t.join();
  q.shutdown();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_EQ(q.accepted(), static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace ecl::test
