#include <gtest/gtest.h>

#include "service/backoff.hpp"
#include "support/rng.hpp"

namespace ecl::test {
namespace {

using service::BackoffPolicy;

TEST(Backoff, GrowsExponentiallyUpToCap) {
  BackoffPolicy policy;
  policy.initial_seconds = 0.001;
  policy.multiplier = 2.0;
  policy.max_seconds = 0.004;
  policy.jitter = 0.0;  // deterministic midpoint
  Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(0, rng), 0.001);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(1, rng), 0.002);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(2, rng), 0.004);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(3, rng), 0.004) << "capped at max_seconds";
  EXPECT_DOUBLE_EQ(policy.delay_seconds(50, rng), 0.004);
}

TEST(Backoff, JitterStaysWithinBand) {
  BackoffPolicy policy;
  policy.initial_seconds = 0.010;
  policy.multiplier = 1.0;
  policy.max_seconds = 0.010;
  policy.jitter = 0.5;
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double d = policy.delay_seconds(0, rng);
    EXPECT_GE(d, 0.005);
    EXPECT_LE(d, 0.015);
  }
}

TEST(Backoff, SameSeedSameSchedule) {
  BackoffPolicy policy;
  Rng a(123), b(123);
  for (std::size_t attempt = 0; attempt < 8; ++attempt)
    EXPECT_DOUBLE_EQ(policy.delay_seconds(attempt, a), policy.delay_seconds(attempt, b));
}

TEST(Backoff, DistinctSeedsDecorrelate) {
  BackoffPolicy policy;
  Rng a(1), b(2);
  int differing = 0;
  for (std::size_t attempt = 0; attempt < 8; ++attempt)
    if (policy.delay_seconds(attempt, a) != policy.delay_seconds(attempt, b)) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(Backoff, NeverNegative) {
  BackoffPolicy policy;
  policy.jitter = 1.0;  // band touches zero
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(policy.delay_seconds(3, rng), 0.0);
}

}  // namespace
}  // namespace ecl::test
