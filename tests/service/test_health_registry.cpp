#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "service/health_registry.hpp"

// Health-scored backend quarantine (DESIGN.md §12). All transitions are
// driven through explicit time points, so the quarantine lifecycle —
// healthy -> quarantined -> probation -> (healthy | re-quarantined with
// escalated cool-down) — is tested deterministically.

namespace ecl::test {
namespace {

using service::BackendHealth;
using service::BackendHealthRegistry;
using service::BreakerState;
using service::FaultKind;
using service::HealthConfig;

using Clock = BackendHealthRegistry::Clock;
using Sec = std::chrono::duration<double>;

HealthConfig small_config() {
  HealthConfig cfg;
  cfg.breaker.window = 8;
  cfg.breaker.min_samples = 4;
  cfg.breaker.failure_threshold = 0.5;
  cfg.breaker.cooldown_seconds = 1.0;
  cfg.breaker.half_open_probes = 1;
  cfg.quarantine_backoff = 2.0;
  cfg.max_cooldown_seconds = 8.0;
  return cfg;
}

Clock::time_point t0() { return Clock::time_point{} + std::chrono::hours(1); }

TEST(HealthRegistry, StartsHealthyAndAllows) {
  BackendHealthRegistry reg({"ecl", "omp", "tarjan"}, small_config());
  ASSERT_EQ(reg.size(), 3u);
  for (std::size_t b = 0; b < reg.size(); ++b) {
    EXPECT_TRUE(reg.allow(b, t0()));
    EXPECT_EQ(reg.health(b, t0()), BackendHealth::kHealthy);
    EXPECT_EQ(reg.breaker_state(b, t0()), BreakerState::kClosed);
  }
}

TEST(HealthRegistry, UnitWeightsDegenerateToFailureRateRule) {
  // 2 stalls in 4 samples = rate 0.5 = threshold: trips, exactly like the
  // legacy breaker.
  BackendHealthRegistry reg({"ecl"}, small_config());
  const auto now = t0();
  reg.record(0, FaultKind::kStall, now);
  reg.record(0, FaultKind::kNone, now);
  reg.record(0, FaultKind::kNone, now);
  EXPECT_EQ(reg.health(0, now), BackendHealth::kHealthy) << "below min_samples";
  reg.record(0, FaultKind::kStall, now);
  EXPECT_EQ(reg.health(0, now), BackendHealth::kQuarantined);
  EXPECT_FALSE(reg.allow(0, now));
  EXPECT_EQ(reg.quarantines(), 1u);
}

TEST(HealthRegistry, CertificationFaultsWeighHeavier) {
  // weight(kCertification) = 2.0: ONE silent corruption among 4 samples
  // scores 2/4 = threshold and quarantines, where one stall (1/4) would
  // not — wrong answers outweigh loud failures.
  BackendHealthRegistry reg({"cert", "stall"}, small_config());
  const auto now = t0();
  for (int i = 0; i < 3; ++i) {
    reg.record(0, FaultKind::kNone, now);
    reg.record(1, FaultKind::kNone, now);
  }
  reg.record(0, FaultKind::kCertification, now);
  reg.record(1, FaultKind::kStall, now);
  EXPECT_EQ(reg.health(0, now), BackendHealth::kQuarantined);
  EXPECT_EQ(reg.health(1, now), BackendHealth::kHealthy);
}

TEST(HealthRegistry, SlidingWindowForgetsOldFaults) {
  // window = 8: old faults age out as successes displace them, so a
  // recovered backend's history stops counting against it.
  BackendHealthRegistry reg({"ecl"}, small_config());
  const auto now = t0();
  reg.record(0, FaultKind::kStall, now);
  reg.record(0, FaultKind::kStall, now);
  reg.record(0, FaultKind::kDeadline, now);
  // 3 faults so far; 3/3 would trip at min_samples — keep feeding successes.
  for (int i = 0; i < 8; ++i) reg.record(0, FaultKind::kNone, now);
  const auto snap = reg.snapshot(now);
  EXPECT_EQ(snap[0].score, 0.0) << "the full window is now successes";
  EXPECT_EQ(snap[0].health, BackendHealth::kHealthy);
  EXPECT_EQ(snap[0].faults[static_cast<std::size_t>(FaultKind::kStall)], 2u)
      << "lifetime taxonomy counts are not windowed";
}

BackendHealthRegistry quarantined_registry(Clock::time_point now) {
  BackendHealthRegistry reg({"ecl"}, small_config());
  for (int i = 0; i < 4; ++i) reg.record(0, FaultKind::kOverflow, now);
  return reg;
}

TEST(HealthRegistry, CooldownLeadsToProbationWithBoundedProbes) {
  const auto now = t0();
  auto reg = quarantined_registry(now);
  ASSERT_EQ(reg.health(0, now), BackendHealth::kQuarantined);
  // Before the cool-down elapses: still quarantined, no traffic.
  const auto early = now + std::chrono::duration_cast<Clock::duration>(Sec(0.5));
  EXPECT_FALSE(reg.allow(0, early));
  // After: probation, exactly half_open_probes (=1) probe admitted.
  const auto later = now + std::chrono::duration_cast<Clock::duration>(Sec(1.5));
  EXPECT_EQ(reg.health(0, later), BackendHealth::kProbation);
  EXPECT_EQ(reg.breaker_state(0, later), BreakerState::kHalfOpen);
  EXPECT_TRUE(reg.allow(0, later));
  EXPECT_FALSE(reg.allow(0, later)) << "probe budget is bounded";
  EXPECT_EQ(reg.probations(), 1u);
}

TEST(HealthRegistry, CertifiedProbeSuccessReadmitsAndClearsWindow) {
  const auto now = t0();
  auto reg = quarantined_registry(now);
  const auto later = now + std::chrono::duration_cast<Clock::duration>(Sec(1.5));
  ASSERT_TRUE(reg.allow(0, later));
  reg.record(0, FaultKind::kNone, later);
  EXPECT_EQ(reg.health(0, later), BackendHealth::kHealthy);
  EXPECT_EQ(reg.readmissions(), 1u);
  const auto snap = reg.snapshot(later);
  EXPECT_EQ(snap[0].samples, 0u) << "re-admission forgets the old window";
  // One new fault must not immediately re-trip (fresh window, min_samples).
  reg.record(0, FaultKind::kStall, later);
  EXPECT_EQ(reg.health(0, later), BackendHealth::kHealthy);
}

TEST(HealthRegistry, FaultedProbeRequarantinesWithEscalatedCooldown) {
  const auto now = t0();
  auto reg = quarantined_registry(now);
  const auto probe1 = now + std::chrono::duration_cast<Clock::duration>(Sec(1.5));
  ASSERT_TRUE(reg.allow(0, probe1));
  reg.record(0, FaultKind::kStall, probe1);
  EXPECT_EQ(reg.health(0, probe1), BackendHealth::kQuarantined);
  EXPECT_EQ(reg.quarantines(), 2u);
  // Escalation: the second quarantine's cool-down is 2x (backoff = 2.0), so
  // the base cool-down (1s) is no longer enough...
  const auto after_base = probe1 + std::chrono::duration_cast<Clock::duration>(Sec(1.5));
  EXPECT_EQ(reg.health(0, after_base), BackendHealth::kQuarantined);
  // ...but the doubled one is.
  const auto after_double = probe1 + std::chrono::duration_cast<Clock::duration>(Sec(2.5));
  EXPECT_EQ(reg.health(0, after_double), BackendHealth::kProbation);
}

TEST(HealthRegistry, EscalationIsCappedAndResetByReadmission) {
  HealthConfig cfg = small_config();
  cfg.max_cooldown_seconds = 3.0;  // cap below 1 * 2^2
  BackendHealthRegistry reg({"ecl"}, cfg);
  auto now = t0();
  for (int i = 0; i < 4; ++i) reg.record(0, FaultKind::kStall, now);
  // Fail three consecutive probes: cool-down would be 8s unbounded, but is
  // capped at 3s.
  for (int round = 0; round < 3; ++round) {
    now += std::chrono::duration_cast<Clock::duration>(Sec(3.5));  // > cap: probation
    ASSERT_TRUE(reg.allow(0, now)) << "round " << round;
    reg.record(0, FaultKind::kException, now);
  }
  const auto capped = now + std::chrono::duration_cast<Clock::duration>(Sec(3.2));
  EXPECT_EQ(reg.health(0, capped), BackendHealth::kProbation) << "cool-down capped";
  // A certified success resets the escalation level: next quarantine uses
  // the base cool-down again.
  ASSERT_TRUE(reg.allow(0, capped));
  reg.record(0, FaultKind::kNone, capped);
  ASSERT_EQ(reg.health(0, capped), BackendHealth::kHealthy);
  auto t = capped;
  for (int i = 0; i < 4; ++i) reg.record(0, FaultKind::kDeadline, t);
  ASSERT_EQ(reg.health(0, t), BackendHealth::kQuarantined);
  const auto base_again = t + std::chrono::duration_cast<Clock::duration>(Sec(1.5));
  EXPECT_EQ(reg.health(0, base_again), BackendHealth::kProbation)
      << "re-admission must reset consecutive_quarantines";
}

TEST(HealthRegistry, StrayFeedbackWhileQuarantinedIsIgnored) {
  // An in-flight request can report after its backend was quarantined; the
  // late outcome must not mutate the (cleared) window or the lifecycle.
  const auto now = t0();
  auto reg = quarantined_registry(now);
  reg.record(0, FaultKind::kStall, now);
  reg.record(0, FaultKind::kNone, now);
  EXPECT_EQ(reg.health(0, now), BackendHealth::kQuarantined);
  EXPECT_EQ(reg.quarantines(), 1u);
  EXPECT_EQ(reg.snapshot(now)[0].samples, 0u);
}

TEST(HealthRegistry, BackendsAreIndependent) {
  BackendHealthRegistry reg({"a", "b"}, small_config());
  const auto now = t0();
  for (int i = 0; i < 4; ++i) reg.record(0, FaultKind::kStall, now);
  EXPECT_EQ(reg.health(0, now), BackendHealth::kQuarantined);
  EXPECT_EQ(reg.health(1, now), BackendHealth::kHealthy);
  EXPECT_TRUE(reg.allow(1, now));
}

TEST(HealthRegistry, FaultKindMappingCoversTheTaxonomy) {
  using scc::SccStatus;
  EXPECT_EQ(service::fault_kind_from_status(SccStatus::kOk), FaultKind::kNone);
  EXPECT_EQ(service::fault_kind_from_status(SccStatus::kStalled), FaultKind::kStall);
  EXPECT_EQ(service::fault_kind_from_status(SccStatus::kWorklistOverflow), FaultKind::kOverflow);
  EXPECT_EQ(service::fault_kind_from_status(SccStatus::kCertificationFailed),
            FaultKind::kCertification);
  EXPECT_EQ(service::fault_kind_from_status(SccStatus::kDeadlineExceeded), FaultKind::kDeadline);
  EXPECT_EQ(service::fault_kind_from_status(SccStatus::kException), FaultKind::kException);
  EXPECT_EQ(service::fault_kind_from_status(SccStatus::kVerifyFailed), FaultKind::kOther);
  EXPECT_STREQ(service::fault_kind_name(FaultKind::kCertification), "certification");
  EXPECT_STREQ(service::backend_health_name(BackendHealth::kProbation), "probation");
}

}  // namespace
}  // namespace ecl::test
