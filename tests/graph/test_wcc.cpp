#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "graph/wcc.hpp"

namespace ecl::test {
namespace {

using graph::vid;

TEST(Wcc, SingleComponentCycle) {
  const auto r = graph::weakly_connected_components(graph::cycle_graph(12));
  EXPECT_EQ(r.num_components, 1u);
}

TEST(Wcc, DirectionIsIgnored) {
  // A path is weakly connected even though it is not strongly connected.
  const auto r = graph::weakly_connected_components(graph::path_graph(10));
  EXPECT_EQ(r.num_components, 1u);
}

TEST(Wcc, Fig3HasTwoClusters) {
  const auto r = graph::weakly_connected_components(fig3_graph());
  EXPECT_EQ(r.num_components, 2u);
  // Vertices of cluster 1 share a label distinct from cluster 2.
  EXPECT_EQ(r.labels[0], r.labels[9]);
  EXPECT_EQ(r.labels[3], r.labels[11]);
  EXPECT_NE(r.labels[0], r.labels[3]);
}

TEST(Wcc, IsolatedVerticesAreOwnComponents) {
  const graph::Digraph g(5, graph::EdgeList{});
  const auto r = graph::weakly_connected_components(g);
  EXPECT_EQ(r.num_components, 5u);
}

TEST(Wcc, ActiveMaskRestrictsTraversal) {
  // Deactivating the middle of a path splits it in two.
  const auto g = graph::path_graph(7);
  const auto rev = g.reverse();
  std::vector<std::uint8_t> active(7, 1);
  active[3] = 0;
  const auto r = graph::weakly_connected_components(g, rev, active);
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_EQ(r.labels[3], graph::kInvalidVid);
  EXPECT_EQ(r.labels[0], r.labels[2]);
  EXPECT_EQ(r.labels[4], r.labels[6]);
  EXPECT_NE(r.labels[0], r.labels[4]);
}

TEST(Wcc, LabelsAreDense) {
  Rng rng(3);
  const auto g = graph::random_digraph(200, 150, rng);  // sparse: many pieces
  const auto r = graph::weakly_connected_components(g);
  for (vid v = 0; v < 200; ++v) EXPECT_LT(r.labels[v], r.num_components);
}

}  // namespace
}  // namespace ecl::test
