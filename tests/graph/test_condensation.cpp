#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "core/tarjan.hpp"
#include "graph/condensation.hpp"

namespace ecl::test {
namespace {

using graph::vid;

TEST(Condensation, NormalizeLabels) {
  std::vector<vid> labels{5, 5, 2, 5, 2, 0};
  const vid k = graph::normalize_labels(labels);
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(labels, (std::vector<vid>{0, 0, 1, 0, 1, 2}));
}

TEST(Condensation, NormalizeRejectsOutOfRange) {
  std::vector<vid> labels{0, 9};
  EXPECT_THROW((void)graph::normalize_labels(labels), std::invalid_argument);
}

TEST(Condensation, CondensationOfCycleChain) {
  const auto g = graph::cycle_chain(6, 4);
  auto labels = scc::tarjan(g).labels;
  const vid k = graph::normalize_labels(labels);
  ASSERT_EQ(k, 6u);
  const auto cond = graph::condensation(g, labels, k);
  EXPECT_EQ(cond.num_vertices(), 6u);
  EXPECT_EQ(cond.num_edges(), 5u);  // the bridges
  EXPECT_TRUE(graph::is_dag(cond));
  EXPECT_EQ(graph::dag_depth(cond), 6u);
}

TEST(Condensation, CondensationIsAlwaysADag) {
  Rng rng(21);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = graph::random_digraph(100, 300, rng);
    auto labels = scc::tarjan(g).labels;
    const vid k = graph::normalize_labels(labels);
    EXPECT_TRUE(graph::is_dag(graph::condensation(g, labels, k)));
  }
}

TEST(Condensation, TopologicalOrderRespectsEdges) {
  const auto g = graph::grid_dag(5, 5);
  const auto order = graph::topological_order(g);
  std::vector<vid> position(25);
  for (vid i = 0; i < 25; ++i) position[order[i]] = i;
  for (vid u = 0; u < 25; ++u)
    for (vid v : g.out_neighbors(u)) EXPECT_LT(position[u], position[v]);
}

TEST(Condensation, TopologicalOrderThrowsOnCycle) {
  EXPECT_THROW((void)graph::topological_order(graph::cycle_graph(4)), std::invalid_argument);
}

TEST(Condensation, DagDepthOfPath) { EXPECT_EQ(graph::dag_depth(graph::path_graph(17)), 17u); }

TEST(Condensation, DagDepthOfGrid) {
  EXPECT_EQ(graph::dag_depth(graph::grid_dag(3, 7)), 9u);  // rows + cols - 1
}

TEST(Condensation, DagDepthOfEdgelessGraph) {
  EXPECT_EQ(graph::dag_depth(graph::Digraph(5, graph::EdgeList{})), 1u);
  EXPECT_EQ(graph::dag_depth(graph::Digraph(0, graph::EdgeList{})), 0u);
}

TEST(Condensation, NormalizeEmptyLabelSpan) {
  std::vector<vid> labels;
  EXPECT_EQ(graph::normalize_labels(labels), 0u);
  EXPECT_TRUE(labels.empty());
}

TEST(Condensation, CondensationOfEmptyGraph) {
  const graph::Digraph empty(0, graph::EdgeList{});
  const auto cond = graph::condensation(empty, std::vector<vid>{}, 0);
  EXPECT_EQ(cond.num_vertices(), 0u);
  EXPECT_EQ(cond.num_edges(), 0u);
  EXPECT_EQ(graph::dag_depth(cond), 0u);
  EXPECT_TRUE(graph::topological_order(cond).empty());
}

TEST(Condensation, CondensationRejectsLabelSizeMismatch) {
  const auto g = graph::path_graph(4);
  std::vector<vid> labels{0, 1, 2};  // one short
  EXPECT_THROW((void)graph::condensation(g, labels, 3), std::invalid_argument);
}

TEST(Condensation, CondensationRejectsZeroComponentsForNonEmptyGraph) {
  const auto g = graph::path_graph(3);
  const std::vector<vid> labels{0, 1, 2};
  EXPECT_THROW((void)graph::condensation(g, labels, 0), std::invalid_argument);
}

TEST(Condensation, CondensationRejectsOutOfRangeLabel) {
  const auto g = graph::path_graph(3);
  const std::vector<vid> labels{0, 1, 5};
  EXPECT_THROW((void)graph::condensation(g, labels, 3), std::invalid_argument);
}

TEST(Condensation, IsDagDetectsSelfLoop) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 1);
  EXPECT_FALSE(graph::is_dag(graph::Digraph(2, e)));
  EXPECT_TRUE(graph::is_dag(graph::path_graph(4)));
}

TEST(Condensation, Fig3CondensationShape) {
  const auto g = fig3_graph();
  auto labels = scc::tarjan(g).labels;
  const vid k = graph::normalize_labels(labels);
  const auto cond = graph::condensation(g, labels, k);
  EXPECT_EQ(cond.num_vertices(), 7u);
  // Cluster 1 chain has 4 SCCs, cluster 2 has 3: depth is max(4, 3).
  EXPECT_EQ(graph::dag_depth(cond), 4u);
}

}  // namespace
}  // namespace ecl::test
