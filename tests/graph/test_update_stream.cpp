#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "common/test_graphs.hpp"
#include "graph/io.hpp"
#include "graph/update_stream.hpp"

namespace ecl::test {
namespace {

using graph::EdgeUpdate;
using graph::UpdateStream;
using graph::UpdateStreamOptions;
using graph::vid;

std::uint64_t key(vid u, vid v) { return (static_cast<std::uint64_t>(u) << 32) | v; }

TEST(UpdateStream, GeneratorProducesValidReplay) {
  Rng rng(42);
  const auto base = graph::cycle_chain(10, 5);
  UpdateStreamOptions opts;
  opts.num_updates = 500;
  opts.insert_fraction = 0.5;
  const UpdateStream stream = graph::generate_update_stream(base, opts, rng);
  ASSERT_EQ(stream.size(), 500u);

  // Replay: every deletion must target a present edge, every insertion an
  // absent one (the generator's validity contract).
  std::unordered_set<std::uint64_t> present;
  for (const auto& e : base.edges()) present.insert(key(e.src, e.dst));
  std::size_t inserts = 0;
  for (const EdgeUpdate& u : stream) {
    ASSERT_LT(u.src, base.num_vertices());
    ASSERT_LT(u.dst, base.num_vertices());
    if (u.kind == EdgeUpdate::Kind::kInsert) {
      EXPECT_TRUE(present.insert(key(u.src, u.dst)).second) << "insert of present edge";
      ++inserts;
    } else {
      EXPECT_EQ(present.erase(key(u.src, u.dst)), 1u) << "erase of absent edge";
    }
  }
  // Roughly balanced mix (loose bounds; the draw is seeded and stable).
  EXPECT_GT(inserts, 150u);
  EXPECT_LT(inserts, 350u);
}

TEST(UpdateStream, GeneratorIsDeterministic) {
  const auto base = graph::cycle_graph(32);
  UpdateStreamOptions opts;
  opts.num_updates = 100;
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(graph::generate_update_stream(base, opts, a),
            graph::generate_update_stream(base, opts, b));
}

TEST(UpdateStream, GeneratorOnEmptyGraph) {
  Rng rng(1);
  const graph::Digraph empty(0, graph::EdgeList{});
  EXPECT_TRUE(graph::generate_update_stream(empty, {}, rng).empty());
}

TEST(UpdateStream, GeneratorOnEdgelessGraphStartsWithInserts) {
  Rng rng(3);
  const graph::Digraph g(8, graph::EdgeList{});
  UpdateStreamOptions opts;
  opts.num_updates = 20;
  opts.insert_fraction = 0.0;  // deletion draws must fall back to insertion
  const auto stream = graph::generate_update_stream(g, opts, rng);
  ASSERT_FALSE(stream.empty());
  EXPECT_EQ(stream.front().kind, EdgeUpdate::Kind::kInsert);
}

TEST(UpdateStream, ApplyUpdatesMatchesReplay) {
  Rng rng(11);
  const auto base = graph::grid_dag(5, 5);
  UpdateStreamOptions opts;
  opts.num_updates = 200;
  const auto stream = graph::generate_update_stream(base, opts, rng);
  const auto result = graph::apply_updates(base, stream);
  EXPECT_EQ(result.num_vertices(), base.num_vertices());

  std::unordered_set<std::uint64_t> expected;
  for (const auto& e : base.edges()) expected.insert(key(e.src, e.dst));
  for (const EdgeUpdate& u : stream) {
    if (u.kind == EdgeUpdate::Kind::kInsert)
      expected.insert(key(u.src, u.dst));
    else
      expected.erase(key(u.src, u.dst));
  }
  EXPECT_EQ(result.num_edges(), expected.size());
  for (std::uint64_t k : expected)
    EXPECT_TRUE(result.has_edge(static_cast<vid>(k >> 32), static_cast<vid>(k & 0xffffffffu)));
}

TEST(UpdateStreamIo, RoundTripThroughText) {
  Rng rng(5);
  const auto base = graph::cycle_chain(6, 4);
  UpdateStreamOptions opts;
  opts.num_updates = 64;
  const auto stream = graph::generate_update_stream(base, opts, rng);

  std::stringstream buffer;
  graph::write_update_stream(buffer, stream);
  const auto reread = graph::read_update_stream(buffer);
  EXPECT_EQ(stream, reread);
}

TEST(UpdateStreamIo, ParsesSignedLinesAndComments) {
  std::istringstream in("# a comment\n+3 5\n% another\n-5 3\n\n+0 1\n");
  const auto stream = graph::read_update_stream(in);
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_EQ(stream[0], (EdgeUpdate{EdgeUpdate::Kind::kInsert, 3, 5}));
  EXPECT_EQ(stream[1], (EdgeUpdate{EdgeUpdate::Kind::kErase, 5, 3}));
  EXPECT_EQ(stream[2], (EdgeUpdate{EdgeUpdate::Kind::kInsert, 0, 1}));
}

TEST(UpdateStreamIo, RejectsMalformedLines) {
  std::istringstream missing_sign("3 5\n");
  EXPECT_THROW((void)graph::read_update_stream(missing_sign), std::runtime_error);
  std::istringstream missing_target("+3\n");
  EXPECT_THROW((void)graph::read_update_stream(missing_target), std::runtime_error);
}

TEST(UpdateStreamIo, FileRoundTrip) {
  Rng rng(9);
  const auto base = graph::cycle_graph(16);
  UpdateStreamOptions opts;
  opts.num_updates = 32;
  const auto stream = graph::generate_update_stream(base, opts, rng);
  const std::string path = ::testing::TempDir() + "ecl_update_stream_roundtrip.txt";
  graph::write_update_stream_file(path, stream);
  EXPECT_EQ(graph::read_update_stream_file(path), stream);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ecl::test
