#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "core/tarjan.hpp"
#include "graph/scc_stats.hpp"

namespace ecl::test {
namespace {

using graph::SccStats;
using graph::vid;

TEST(SccStats, Fig3Columns) {
  const auto g = fig3_graph();
  const auto s = graph::compute_scc_stats(g, scc::tarjan(g).labels);
  EXPECT_EQ(s.num_vertices, 12u);
  EXPECT_EQ(s.num_edges, 15u);
  EXPECT_NEAR(s.avg_degree, 15.0 / 12.0, 1e-9);
  EXPECT_EQ(s.num_sccs, 7u);
  EXPECT_EQ(s.size1_sccs, 3u);   // {0}, {5}, {10}
  EXPECT_EQ(s.size2_sccs, 3u);   // {2,7}, {3,6}, {8,11}
  EXPECT_EQ(s.largest_scc, 3u);  // {1,4,9}
  EXPECT_EQ(s.dag_depth, 4u);
}

TEST(SccStats, MaxDegrees) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(0, 2);
  e.add(0, 3);
  e.add(1, 3);
  e.add(2, 3);
  const graph::Digraph g(4, e);
  const auto s = graph::compute_scc_stats(g, scc::tarjan(g).labels);
  EXPECT_EQ(s.max_out_degree, 3u);
  EXPECT_EQ(s.max_in_degree, 3u);
}

TEST(SccStats, ComponentSizes) {
  std::vector<vid> labels{3, 3, 1, 1, 1, 5};
  const auto sizes = graph::component_sizes(labels);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 2u);  // label 3 appears first
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(sizes[2], 1u);  // label 5
}

TEST(SccStats, MismatchedLabelCountThrows) {
  const auto g = graph::path_graph(4);
  std::vector<vid> labels(2, 0);
  EXPECT_THROW((void)graph::compute_scc_stats(g, labels), std::invalid_argument);
}

TEST(SccStats, AggregateRanges) {
  SccStats a;
  a.num_vertices = 100;
  a.num_edges = 300;
  a.avg_degree = 3.0;
  a.num_sccs = 10;
  a.size1_sccs = 5;
  a.largest_scc = 50;
  a.dag_depth = 4;
  SccStats b = a;
  b.num_sccs = 30;
  b.size1_sccs = 25;
  b.largest_scc = 20;
  b.dag_depth = 9;
  const SccStats stats[] = {a, b};
  const auto r = graph::aggregate_stats(stats);
  EXPECT_EQ(r.min_sccs, 10u);
  EXPECT_EQ(r.max_sccs, 30u);
  EXPECT_EQ(r.min_size1, 5u);
  EXPECT_EQ(r.max_size1, 25u);
  EXPECT_EQ(r.min_largest, 20u);
  EXPECT_EQ(r.max_largest, 50u);
  EXPECT_EQ(r.min_depth, 4u);
  EXPECT_EQ(r.max_depth, 9u);
  EXPECT_NEAR(r.avg_degree, 3.0, 1e-9);
}

TEST(SccStats, AggregateEmptyIsZero) {
  const auto r = graph::aggregate_stats({});
  EXPECT_EQ(r.max_sccs, 0u);
  EXPECT_EQ(r.num_vertices, 0u);
}

}  // namespace
}  // namespace ecl::test
