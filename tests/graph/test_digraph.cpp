#include <gtest/gtest.h>

#include "graph/digraph.hpp"

namespace ecl::test {
namespace {

using graph::Digraph;
using graph::EdgeList;
using graph::vid;

TEST(Digraph, EmptyGraph) {
  const Digraph g(0, EdgeList{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Digraph, VerticesWithoutEdges) {
  const Digraph g(5, EdgeList{});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (vid v = 0; v < 5; ++v) EXPECT_TRUE(g.out_neighbors(v).empty());
}

TEST(Digraph, BasicAdjacency) {
  EdgeList e;
  e.add(0, 1);
  e.add(0, 2);
  e.add(2, 1);
  const Digraph g(3, e);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(Digraph, AdjacencyRowsAreSorted) {
  EdgeList e;
  e.add(0, 3);
  e.add(0, 1);
  e.add(0, 2);
  const Digraph g(4, e);
  const auto row = g.out_neighbors(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 1u);
  EXPECT_EQ(row[1], 2u);
  EXPECT_EQ(row[2], 3u);
}

TEST(Digraph, ParallelEdgesCollapse) {
  EdgeList e;
  e.add(0, 1);
  e.add(0, 1);
  e.add(0, 1);
  const Digraph g(2, e);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Digraph, SelfLoopsAreKept) {
  EdgeList e;
  e.add(1, 1);
  const Digraph g(2, e);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(1, 1));
}

TEST(Digraph, ConstructionOrderIndependent) {
  EdgeList a;
  a.add(0, 1);
  a.add(2, 0);
  a.add(1, 2);
  EdgeList b;
  b.add(1, 2);
  b.add(0, 1);
  b.add(2, 0);
  const Digraph ga(3, a);
  const Digraph gb(3, b);
  EXPECT_EQ(std::vector<graph::eid>(ga.offsets().begin(), ga.offsets().end()),
            std::vector<graph::eid>(gb.offsets().begin(), gb.offsets().end()));
  EXPECT_EQ(std::vector<vid>(ga.targets().begin(), ga.targets().end()),
            std::vector<vid>(gb.targets().begin(), gb.targets().end()));
}

TEST(Digraph, EndpointOutOfRangeThrows) {
  EdgeList e;
  e.add(0, 5);
  EXPECT_THROW(Digraph(3, e), std::out_of_range);
}

TEST(Digraph, ReverseSwapsAllEdges) {
  EdgeList e;
  e.add(0, 1);
  e.add(0, 2);
  e.add(2, 1);
  const Digraph g(3, e);
  const Digraph rev = g.reverse();
  EXPECT_EQ(rev.num_edges(), 3u);
  EXPECT_TRUE(rev.has_edge(1, 0));
  EXPECT_TRUE(rev.has_edge(2, 0));
  EXPECT_TRUE(rev.has_edge(1, 2));
  EXPECT_FALSE(rev.has_edge(0, 1));
}

TEST(Digraph, DoubleReverseIsIdentity) {
  EdgeList e;
  e.add(0, 1);
  e.add(3, 2);
  e.add(2, 2);
  e.add(1, 3);
  const Digraph g(4, e);
  const Digraph rr = g.reverse().reverse();
  for (vid v = 0; v < 4; ++v) {
    const auto a = g.out_neighbors(v);
    const auto b = rr.out_neighbors(v);
    ASSERT_EQ(std::vector<vid>(a.begin(), a.end()), std::vector<vid>(b.begin(), b.end()));
  }
}

TEST(Digraph, InDegrees) {
  EdgeList e;
  e.add(0, 2);
  e.add(1, 2);
  e.add(2, 0);
  const Digraph g(3, e);
  const auto deg = g.in_degrees();
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[1], 0u);
  EXPECT_EQ(deg[2], 2u);
}

TEST(Digraph, EdgesRoundTrip) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  const Digraph g(3, e);
  const Digraph g2(3, g.edges());
  EXPECT_EQ(g2.num_edges(), 3u);
  EXPECT_TRUE(g2.has_edge(2, 0));
}

TEST(Digraph, CsrConstructorValidates) {
  EXPECT_THROW(Digraph({0, 2}, {1}), std::invalid_argument);
  const Digraph g({0, 1, 1}, {1});
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

}  // namespace
}  // namespace ecl::test
