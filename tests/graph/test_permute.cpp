#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "graph/permute.hpp"

namespace ecl::test {
namespace {

using graph::vid;

TEST(Permute, RandomPermutationIsAPermutation) {
  Rng rng(1);
  const auto perm = graph::random_permutation(100, rng);
  std::vector<vid> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (vid i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Permute, ApplyPreservesEdges) {
  Rng rng(2);
  const auto g = graph::cycle_graph(20);
  const auto perm = graph::random_permutation(20, rng);
  const auto h = graph::apply_permutation(g, perm);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (vid u = 0; u < 20; ++u)
    for (vid v : g.out_neighbors(u)) EXPECT_TRUE(h.has_edge(perm[u], perm[v]));
}

TEST(Permute, IdentityPermutationIsNoop) {
  const auto g = graph::grid_dag(4, 4);
  std::vector<vid> identity(16);
  std::iota(identity.begin(), identity.end(), 0);
  const auto h = graph::apply_permutation(g, identity);
  EXPECT_EQ(std::vector<vid>(h.targets().begin(), h.targets().end()),
            std::vector<vid>(g.targets().begin(), g.targets().end()));
}

TEST(Permute, SizeMismatchThrows) {
  const auto g = graph::path_graph(5);
  std::vector<vid> bad(3, 0);
  EXPECT_THROW((void)graph::apply_permutation(g, bad), std::invalid_argument);
}

TEST(Permute, RandomlyPermuteReturnsConsistentPair) {
  Rng rng(3);
  const auto g = graph::path_graph(30);
  const auto [h, perm] = graph::randomly_permute(g, rng);
  for (vid v = 0; v + 1 < 30; ++v) EXPECT_TRUE(h.has_edge(perm[v], perm[v + 1]));
}

TEST(Permute, InvertPermutationRoundTrips) {
  Rng rng(4);
  const auto perm = graph::random_permutation(64, rng);
  const auto inv = graph::invert_permutation(perm);
  for (vid v = 0; v < 64; ++v) {
    EXPECT_EQ(inv[perm[v]], v);
    EXPECT_EQ(perm[inv[v]], v);
  }
}

TEST(Permute, HubClusteringIsIdentityOnUniformGraphs) {
  // Every vertex of a cycle has total degree 2: no hubs, nothing to move,
  // and the function signals "identity" with an empty vector so callers can
  // skip the graph rebuild entirely.
  EXPECT_TRUE(graph::hub_clustering_permutation(graph::cycle_graph(50)).empty());
  EXPECT_TRUE(graph::hub_clustering_permutation(graph::Digraph(10, {})).empty());
}

TEST(Permute, HubClusteringMovesHubsToTopIds) {
  // A star: vertex 0 points at 1..40 and each points back. Vertex 0's total
  // degree (80) is far above the mean, so it must receive the TOP vertex ID.
  const vid n = 41;
  graph::EdgeList edges;
  for (vid v = 1; v < n; ++v) {
    edges.add(0, v);
    edges.add(v, 0);
  }
  const auto g = graph::Digraph(n, edges);
  const auto perm = graph::hub_clustering_permutation(g);
  ASSERT_EQ(perm.size(), n);
  EXPECT_EQ(perm[0], n - 1);

  // And it is a valid permutation: non-hubs keep their relative order.
  std::vector<vid> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (vid i = 0; i < n; ++i) ASSERT_EQ(sorted[i], i);
  for (vid v = 1; v + 1 < n; ++v) EXPECT_LT(perm[v], perm[v + 1]);
}

TEST(Permute, HubClusteringOrdersHubsByDegreeDescending) {
  // Two hubs of different fan-out on a sea of low-degree vertices: the
  // bigger hub must land on the bigger ID, clustering the hottest signature
  // slots at the very top of the ID range.
  const vid n = 60;
  graph::EdgeList edges;
  for (vid v = 10; v < n; ++v) edges.add(3, v);  // fan-out 50
  for (vid v = 20; v < n; ++v) edges.add(7, v);  // fan-out 40
  const auto g = graph::Digraph(n, edges);
  const auto perm = graph::hub_clustering_permutation(g);
  ASSERT_EQ(perm.size(), n);
  EXPECT_EQ(perm[3], n - 1);
  EXPECT_EQ(perm[7], n - 2);
}

}  // namespace
}  // namespace ecl::test
