#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "graph/permute.hpp"

namespace ecl::test {
namespace {

using graph::vid;

TEST(Permute, RandomPermutationIsAPermutation) {
  Rng rng(1);
  const auto perm = graph::random_permutation(100, rng);
  std::vector<vid> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (vid i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Permute, ApplyPreservesEdges) {
  Rng rng(2);
  const auto g = graph::cycle_graph(20);
  const auto perm = graph::random_permutation(20, rng);
  const auto h = graph::apply_permutation(g, perm);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (vid u = 0; u < 20; ++u)
    for (vid v : g.out_neighbors(u)) EXPECT_TRUE(h.has_edge(perm[u], perm[v]));
}

TEST(Permute, IdentityPermutationIsNoop) {
  const auto g = graph::grid_dag(4, 4);
  std::vector<vid> identity(16);
  std::iota(identity.begin(), identity.end(), 0);
  const auto h = graph::apply_permutation(g, identity);
  EXPECT_EQ(std::vector<vid>(h.targets().begin(), h.targets().end()),
            std::vector<vid>(g.targets().begin(), g.targets().end()));
}

TEST(Permute, SizeMismatchThrows) {
  const auto g = graph::path_graph(5);
  std::vector<vid> bad(3, 0);
  EXPECT_THROW((void)graph::apply_permutation(g, bad), std::invalid_argument);
}

TEST(Permute, RandomlyPermuteReturnsConsistentPair) {
  Rng rng(3);
  const auto g = graph::path_graph(30);
  const auto [h, perm] = graph::randomly_permute(g, rng);
  for (vid v = 0; v + 1 < 30; ++v) EXPECT_TRUE(h.has_edge(perm[v], perm[v + 1]));
}

}  // namespace
}  // namespace ecl::test
