#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "graph/reach.hpp"

namespace ecl::test {
namespace {

using graph::vid;

TEST(Reach, ReachableSetOnPath) {
  const auto g = graph::path_graph(10);
  const auto visited = graph::reachable_from(g, 4);
  for (vid v = 0; v < 10; ++v) EXPECT_EQ(visited[v] != 0, v >= 4) << v;
}

TEST(Reach, ReachableSetOnCycleIsEverything) {
  const auto g = graph::cycle_graph(8);
  const auto visited = graph::reachable_from(g, 3);
  for (vid v = 0; v < 8; ++v) EXPECT_TRUE(visited[v]);
}

TEST(Reach, MultiSource) {
  const auto g = graph::path_graph(10);
  const vid sources[] = {0, 7};
  const auto visited = graph::reachable_from(g, std::span<const vid>(sources));
  for (vid v = 0; v < 10; ++v) EXPECT_TRUE(visited[v]);
}

TEST(Reach, BfsLevels) {
  const auto g = graph::path_graph(6);
  const auto level = graph::bfs_levels(g, 2);
  EXPECT_EQ(level[2], 0u);
  EXPECT_EQ(level[5], 3u);
  EXPECT_EQ(level[0], graph::kInvalidVid);
}

TEST(Reach, BfsLevelsOnGrid) {
  const auto g = graph::grid_dag(4, 4);
  const auto level = graph::bfs_levels(g, 0);
  // Manhattan distance on the DAG grid.
  EXPECT_EQ(level[5], 2u);   // (1,1)
  EXPECT_EQ(level[15], 6u);  // (3,3)
}

TEST(Reach, IsReachable) {
  const auto g = fig3_graph();
  EXPECT_TRUE(graph::is_reachable(g, 0, 9));   // 0 -> 2 -> 5 -> 9
  EXPECT_FALSE(graph::is_reachable(g, 9, 0));  // no back path
  EXPECT_FALSE(graph::is_reachable(g, 0, 11));  // different cluster
  EXPECT_TRUE(graph::is_reachable(g, 4, 4));   // self
}

}  // namespace
}  // namespace ecl::test
