#include <gtest/gtest.h>

#include "core/tarjan.hpp"
#include "graph/generators.hpp"
#include "graph/scc_stats.hpp"

namespace ecl::test {
namespace {

using graph::vid;

TEST(Generators, PathGraph) {
  const auto g = graph::path_graph(10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(4, 3));
}

TEST(Generators, CycleGraph) {
  const auto g = graph::cycle_graph(10);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_TRUE(g.has_edge(9, 0));
}

TEST(Generators, CliqueHasAllPairs) {
  const auto g = graph::bidirectional_clique(5);
  EXPECT_EQ(g.num_edges(), 20u);
  for (vid u = 0; u < 5; ++u) {
    for (vid v = 0; v < 5; ++v) {
      if (u != v) {
        EXPECT_TRUE(g.has_edge(u, v));
      }
    }
  }
}

TEST(Generators, GridDagEdgeCount) {
  const auto g = graph::grid_dag(4, 6);
  // (rows-1)*cols vertical + rows*(cols-1) horizontal
  EXPECT_EQ(g.num_edges(), 3u * 6 + 4 * 5);
}

TEST(Generators, CycleChainStructure) {
  const auto g = graph::cycle_chain(5, 4);
  EXPECT_EQ(g.num_vertices(), 20u);
  const auto r = scc::tarjan(g);
  EXPECT_EQ(r.num_components, 5u);
}

TEST(Generators, CycleChainDegenerateLength1) {
  // cycle_len 1 yields a pure path of bridges.
  const auto g = graph::cycle_chain(8, 1);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_EQ(scc::tarjan(g).num_components, 8u);
}

TEST(Generators, RandomDigraphRespectsBounds) {
  Rng rng(1);
  const auto g = graph::random_digraph(50, 200, rng);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_LE(g.num_edges(), 200u);  // dedup/self-loop removal may shrink
  for (vid u = 0; u < 50; ++u) EXPECT_FALSE(g.has_edge(u, u));
}

TEST(Generators, RandomDigraphIsDeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  const auto ga = graph::random_digraph(30, 90, a);
  const auto gb = graph::random_digraph(30, 90, b);
  EXPECT_EQ(std::vector<vid>(ga.targets().begin(), ga.targets().end()),
            std::vector<vid>(gb.targets().begin(), gb.targets().end()));
}

TEST(Generators, RmatProducesSkewedDegrees) {
  Rng rng(3);
  const auto g = graph::rmat(12, 8.0, rng);
  EXPECT_EQ(g.num_vertices(), 4096u);
  graph::eid max_deg = 0;
  for (vid v = 0; v < g.num_vertices(); ++v) max_deg = std::max(max_deg, g.out_degree(v));
  const double avg = static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(static_cast<double>(max_deg), 8.0 * avg)
      << "R-MAT should produce hub vertices far above the average degree";
}

TEST(Generators, SccProfilePlantsGiantComponent) {
  Rng rng(4);
  graph::SccProfile p;
  p.num_vertices = 1000;
  p.giant_fraction = 0.7;
  p.dag_depth = 4;
  const auto g = graph::scc_profile_graph(p, rng);
  const auto stats = graph::compute_scc_stats(g, scc::tarjan(g).labels);
  EXPECT_GE(stats.largest_scc, 700u);
}

TEST(Generators, SccProfilePlantsSize2Components) {
  Rng rng(5);
  graph::SccProfile p;
  p.num_vertices = 500;
  p.size2_sccs = 40;
  p.dag_depth = 10;
  p.avg_degree = 2.5;
  const auto g = graph::scc_profile_graph(p, rng);
  const auto stats = graph::compute_scc_stats(g, scc::tarjan(g).labels);
  EXPECT_EQ(stats.size2_sccs, 40u);
  EXPECT_EQ(stats.largest_scc, 2u);
}

TEST(Generators, SccProfileReachesRequestedDagDepth) {
  Rng rng(6);
  graph::SccProfile p;
  p.num_vertices = 400;
  p.dag_depth = 50;
  p.avg_degree = 2.0;
  const auto g = graph::scc_profile_graph(p, rng);
  const auto stats = graph::compute_scc_stats(g, scc::tarjan(g).labels);
  EXPECT_GE(stats.dag_depth, 50u);
}

TEST(Generators, SccProfileFillerNeverMergesPlantedComponents) {
  // The giant fraction is exactly respected: filler edges flow downhill.
  Rng rng(7);
  graph::SccProfile p;
  p.num_vertices = 800;
  p.giant_fraction = 0.5;
  p.mid_sccs = 10;
  p.dag_depth = 6;
  p.avg_degree = 6.0;
  const auto g = graph::scc_profile_graph(p, rng);
  const auto stats = graph::compute_scc_stats(g, scc::tarjan(g).labels);
  EXPECT_EQ(stats.largest_scc, 400u) << "filler edges must not grow the giant SCC";
}

TEST(Generators, SccProfileTrivialEdgeCases) {
  Rng rng(8);
  graph::SccProfile p;
  p.num_vertices = 0;
  EXPECT_EQ(graph::scc_profile_graph(p, rng).num_vertices(), 0u);
  p.num_vertices = 1;
  EXPECT_EQ(graph::scc_profile_graph(p, rng).num_vertices(), 1u);
}

}  // namespace
}  // namespace ecl::test
