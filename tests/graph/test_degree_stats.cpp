#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace ecl::test {
namespace {

TEST(DegreeStats, RegularCycle) {
  const auto s = graph::compute_degree_stats(graph::cycle_graph(100));
  EXPECT_EQ(s.min_out, 1u);
  EXPECT_EQ(s.max_out, 1u);
  EXPECT_EQ(s.max_in, 1u);
  EXPECT_DOUBLE_EQ(s.avg, 1.0);
  EXPECT_DOUBLE_EQ(s.stddev_out, 0.0);
  EXPECT_DOUBLE_EQ(s.hub_ratio, 1.0);
  EXPECT_FALSE(graph::looks_power_law(s));
}

TEST(DegreeStats, EmptyGraph) {
  const auto s = graph::compute_degree_stats(graph::Digraph(0, graph::EdgeList{}));
  EXPECT_DOUBLE_EQ(s.avg, 0.0);
  EXPECT_TRUE(s.log2_histogram.empty());
}

TEST(DegreeStats, HistogramBuckets) {
  // Star: one center with out-degree 8, eight leaves with 0.
  graph::EdgeList e;
  for (graph::vid v = 1; v <= 8; ++v) e.add(0, v);
  const auto s = graph::compute_degree_stats(graph::Digraph(9, e));
  ASSERT_GE(s.log2_histogram.size(), 4u);
  EXPECT_EQ(s.log2_histogram[0], 8u);  // the degree-0 leaves
  EXPECT_EQ(s.log2_histogram[3], 1u);  // degree 8 -> bucket 3
  EXPECT_EQ(s.max_in, 1u);
}

TEST(DegreeStats, RmatLooksPowerLawMeshDoesNot) {
  Rng rng(5);
  const auto rmat = graph::compute_degree_stats(graph::rmat(12, 8.0, rng));
  EXPECT_TRUE(graph::looks_power_law(rmat));
  const auto grid = graph::compute_degree_stats(graph::grid_dag(40, 40));
  EXPECT_FALSE(graph::looks_power_law(grid));
}

}  // namespace
}  // namespace ecl::test
