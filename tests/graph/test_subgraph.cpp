#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "graph/subgraph.hpp"

namespace ecl::test {
namespace {

using graph::vid;

TEST(Subgraph, InducedKeepsInternalEdgesOnly) {
  const auto g = fig3_graph();
  const vid members[] = {2, 7, 5};  // {2,7} SCC plus its successor {5}
  const auto sub = graph::induced_subgraph(g, members);
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  // Internal edges: 2->7, 7->2, 7->5, 2->5 (local ids 0,1,2).
  EXPECT_EQ(sub.graph.num_edges(), 4u);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_TRUE(sub.graph.has_edge(1, 0));
  EXPECT_TRUE(sub.graph.has_edge(1, 2));
  EXPECT_TRUE(sub.graph.has_edge(0, 2));
  EXPECT_EQ(sub.to_parent[0], 2u);
  EXPECT_EQ(sub.to_parent[2], 5u);
}

TEST(Subgraph, EmptyMemberList) {
  const auto sub = graph::induced_subgraph(fig3_graph(), std::vector<vid>{});
  EXPECT_EQ(sub.graph.num_vertices(), 0u);
}

TEST(Subgraph, FullMemberListIsIsomorphic) {
  const auto g = graph::cycle_chain(5, 3);
  std::vector<vid> all(g.num_vertices());
  for (vid v = 0; v < g.num_vertices(); ++v) all[v] = v;
  const auto sub = graph::induced_subgraph(g, all);
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
}

TEST(Subgraph, ActiveMaskOverload) {
  const auto g = graph::path_graph(6);
  std::vector<std::uint8_t> active{1, 1, 0, 0, 1, 1};
  const auto sub = graph::induced_subgraph(g, active);
  EXPECT_EQ(sub.graph.num_vertices(), 4u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // 0->1 and 4->5 survive
  EXPECT_EQ(sub.to_parent[2], 4u);
}

TEST(Subgraph, RejectsBadMembers) {
  const auto g = graph::path_graph(4);
  EXPECT_THROW((void)graph::induced_subgraph(g, std::vector<vid>{9}), std::out_of_range);
  EXPECT_THROW((void)graph::induced_subgraph(g, std::vector<vid>{1, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecl::test
