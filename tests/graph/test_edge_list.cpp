#include <gtest/gtest.h>

#include "graph/edge_list.hpp"

namespace ecl::test {
namespace {

using graph::EdgeList;

TEST(EdgeList, AddAndSize) {
  EdgeList e;
  EXPECT_TRUE(e.empty());
  e.add(0, 1);
  e.add(1, 2);
  EXPECT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0].src, 0u);
  EXPECT_EQ(e[1].dst, 2u);
}

TEST(EdgeList, SortAndDedup) {
  EdgeList e;
  e.add(1, 2);
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 1);
  e.sort_and_dedup();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0], (graph::Edge{0, 1}));
  EXPECT_EQ(e[1], (graph::Edge{1, 2}));
}

TEST(EdgeList, RemoveSelfLoops) {
  EdgeList e;
  e.add(0, 0);
  e.add(0, 1);
  e.add(1, 1);
  e.remove_self_loops();
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0], (graph::Edge{0, 1}));
}

TEST(EdgeList, MinNumVertices) {
  EdgeList e;
  EXPECT_EQ(e.min_num_vertices(), 0u);
  e.add(3, 7);
  e.add(1, 2);
  EXPECT_EQ(e.min_num_vertices(), 8u);
}

TEST(EdgeList, RangeIteration) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 0);
  std::size_t count = 0;
  for (const auto& edge : e) {
    EXPECT_LT(edge.src, 2u);
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace ecl::test
