#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace ecl::test {
namespace {

using graph::Digraph;

TEST(GraphIo, EdgeListRoundTrip) {
  const auto g = graph::cycle_graph(10);
  std::stringstream buffer;
  graph::write_edge_list(buffer, g);
  const Digraph h = graph::read_edge_list(buffer);
  EXPECT_EQ(h.num_vertices(), 10u);
  EXPECT_EQ(h.num_edges(), 10u);
  EXPECT_TRUE(h.has_edge(9, 0));
}

TEST(GraphIo, EdgeListSkipsCommentsAndBlanks) {
  std::stringstream in("# header\n\n% more\n0 1\n1 2\n");
  const Digraph g = graph::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, EdgeListMalformedThrows) {
  std::stringstream in("0 banana\n");
  EXPECT_THROW((void)graph::read_edge_list(in), std::runtime_error);
}

TEST(GraphIo, DimacsRoundTrip) {
  const auto g = graph::grid_dag(3, 3);
  std::stringstream buffer;
  graph::write_dimacs(buffer, g);
  const Digraph h = graph::read_dimacs(buffer);
  EXPECT_EQ(h.num_vertices(), 9u);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_TRUE(h.has_edge(0, 1));
}

TEST(GraphIo, DimacsRequiresHeader) {
  std::stringstream in("a 1 2\n");
  EXPECT_THROW((void)graph::read_dimacs(in), std::runtime_error);
}

TEST(GraphIo, DimacsIsOneBased) {
  std::stringstream in("p sp 2 1\na 0 1\n");
  EXPECT_THROW((void)graph::read_dimacs(in), std::runtime_error);
}

TEST(GraphIo, MatrixMarketRoundTrip) {
  const auto g = graph::cycle_chain(3, 3);
  std::stringstream buffer;
  graph::write_matrix_market(buffer, g);
  const Digraph h = graph::read_matrix_market(buffer);
  EXPECT_EQ(h.num_vertices(), 9u);
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(GraphIo, MatrixMarketIgnoresWeights) {
  std::stringstream in("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 0.5\n2 3 1.5\n");
  const Digraph g = graph::read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW((void)graph::read_graph_file("/nonexistent/path.mtx"), std::runtime_error);
}

TEST(GraphIo, EdgeListHonorsDeclaredVertexCount) {
  // The declared count governs even when the edges touch fewer vertices
  // (trailing isolated vertices survive a round trip).
  std::stringstream in("# vertices 6 edges 2\n0 1\n1 2\n");
  const Digraph g = graph::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, EdgeListRejectsVertexBeyondDeclaredCount) {
  std::stringstream in("# vertices 3 edges 2\n0 1\n1 7\n");
  try {
    (void)graph::read_edge_list(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("1 7"), std::string::npos)
        << "error should name the offending line, got: " << e.what();
  }
}

TEST(GraphIo, EdgeListWithoutHeaderStillInfersVertexCount) {
  std::stringstream in("0 1\n1 99\n");
  const Digraph g = graph::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 100u);
}

TEST(GraphIo, DimacsRejectsVertexBeyondDeclaredCount) {
  std::stringstream in("p sp 3 2\na 1 2\na 2 9\n");
  try {
    (void)graph::read_dimacs(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("a 2 9"), std::string::npos)
        << "error should name the offending line, got: " << e.what();
  }
}

TEST(GraphIo, DimacsRejectsArcBeforeHeader) {
  std::stringstream in("a 1 2\np sp 3 2\na 2 3\n");
  EXPECT_THROW((void)graph::read_dimacs(in), std::runtime_error);
}

TEST(GraphIo, MatrixMarketRejectsIndexBeyondDeclaredSize) {
  std::stringstream in("%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n4 1\n");
  try {
    (void)graph::read_matrix_market(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("4 1"), std::string::npos)
        << "error should name the offending line, got: " << e.what();
  }
}

TEST(GraphIo, MatrixMarketRectangularUsesPerAxisBounds) {
  // A 2x5 size line admits column index 5 but rejects row index 3.
  std::stringstream ok("2 5 1\n2 5\n");
  EXPECT_EQ(graph::read_matrix_market(ok).num_vertices(), 5u);
  std::stringstream bad("2 5 1\n3 1\n");
  EXPECT_THROW((void)graph::read_matrix_market(bad), std::runtime_error);
}

}  // namespace
}  // namespace ecl::test

namespace ecl::test {
namespace {

TEST(GraphIo, BinaryRoundTrip) {
  Rng rng(77);
  const auto g = graph::random_digraph(500, 2000, rng);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  graph::write_binary(buffer, g);
  const auto h = graph::read_binary(buffer);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(std::vector<graph::vid>(h.targets().begin(), h.targets().end()),
            std::vector<graph::vid>(g.targets().begin(), g.targets().end()));
}

TEST(GraphIo, BinaryRejectsBadMagic) {
  std::stringstream buffer("NOPE and some garbage");
  EXPECT_THROW((void)graph::read_binary(buffer), std::runtime_error);
}

TEST(GraphIo, BinaryRejectsTruncation) {
  const auto g = graph::cycle_graph(50);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  graph::write_binary(buffer, g);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW((void)graph::read_binary(cut), std::runtime_error);
}

TEST(GraphIo, FileDispatchByExtension) {
  const auto g = graph::cycle_chain(4, 3);
  for (const char* name : {"/tmp/ecl_io_test.eclg", "/tmp/ecl_io_test.mtx",
                           "/tmp/ecl_io_test.gr", "/tmp/ecl_io_test.txt"}) {
    graph::write_graph_file(name, g);
    const auto h = graph::read_graph_file(name);
    EXPECT_EQ(h.num_vertices(), g.num_vertices()) << name;
    EXPECT_EQ(h.num_edges(), g.num_edges()) << name;
    std::remove(name);
  }
}

}  // namespace
}  // namespace ecl::test
