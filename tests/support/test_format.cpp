#include <gtest/gtest.h>

#include "support/format.hpp"

namespace ecl::test {
namespace {

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1505785), "1,505,785");
  EXPECT_EQ(with_commas(68993773), "68,993,773");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(0.00456, 4), "0.0046");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(7.0, 0), "7");
}

TEST(Format, TextTableAlignsColumns) {
  TextTable t({"Graph", "Vertices", "Edges"});
  t.add_row({"beam-hex", "262,144", "769k"});
  t.add_row({"star", "327,680", "654k"});
  const std::string out = t.render();
  EXPECT_NE(out.find("beam-hex"), std::string::npos);
  EXPECT_NE(out.find("Vertices"), std::string::npos);
  // Each line has the same width.
  std::size_t line_end = out.find('\n');
  const std::size_t first_len = line_end;
  std::size_t pos = line_end + 1;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Format, TextTablePadsShortRows) {
  TextTable t({"A", "B", "C"});
  t.add_row({"x"});
  const std::string out = t.render();
  EXPECT_NE(out.find('x'), std::string::npos);
}

}  // namespace
}  // namespace ecl::test
