#include <gtest/gtest.h>

#include <set>

#include "support/rng.hpp"

namespace ecl::test {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all values in [-3,3] should appear in 1000 draws";
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, UniformCustomRange) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0;
  double sq = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t state = 0;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ecl::test
