#include <gtest/gtest.h>

#include <thread>

#include "support/timer.hpp"

namespace ecl::test {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.milliseconds(), 15.0);
  t.reset();
  EXPECT_LT(t.milliseconds(), 15.0);
}

TEST(Stats, MedianOddCount) { EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0); }

TEST(Stats, MedianEvenCount) { EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5); }

TEST(Stats, MedianSingleAndEmpty) {
  EXPECT_DOUBLE_EQ(median({7}), 7.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, MedianIsRobustToOutliers) {
  EXPECT_DOUBLE_EQ(median({1, 1, 1, 1, 1000}), 1.0);
}

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Geomean) {
  EXPECT_NEAR(geomean({1, 100}), 10.0, 1e-9);
  EXPECT_NEAR(geomean({2, 8}), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, MedianSecondsRunsRequestedTimes) {
  int runs = 0;
  const double t = median_seconds(5, [&] { ++runs; });
  EXPECT_EQ(runs, 5);
  EXPECT_GE(t, 0.0);
}

}  // namespace
}  // namespace ecl::test
