#include <gtest/gtest.h>

#include <cstdlib>

#include "support/env.hpp"

namespace ecl::test {
namespace {

TEST(Env, DoubleFallbackWhenUnset) {
  unsetenv("ECL_TEST_VAR");
  EXPECT_DOUBLE_EQ(env_double("ECL_TEST_VAR", 1.5), 1.5);
}

TEST(Env, DoubleParsesValue) {
  setenv("ECL_TEST_VAR", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("ECL_TEST_VAR", 1.5), 0.25);
  unsetenv("ECL_TEST_VAR");
}

TEST(Env, DoubleFallbackOnGarbage) {
  setenv("ECL_TEST_VAR", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(env_double("ECL_TEST_VAR", 2.0), 2.0);
  unsetenv("ECL_TEST_VAR");
}

TEST(Env, IntParsesAndFallsBack) {
  setenv("ECL_TEST_VAR", "42", 1);
  EXPECT_EQ(env_int("ECL_TEST_VAR", 7), 42);
  setenv("ECL_TEST_VAR", "", 1);
  EXPECT_EQ(env_int("ECL_TEST_VAR", 7), 7);
  unsetenv("ECL_TEST_VAR");
}

TEST(Env, StringFallback) {
  unsetenv("ECL_TEST_VAR");
  EXPECT_EQ(env_string("ECL_TEST_VAR", "dflt"), "dflt");
  setenv("ECL_TEST_VAR", "abc", 1);
  EXPECT_EQ(env_string("ECL_TEST_VAR", "dflt"), "abc");
  unsetenv("ECL_TEST_VAR");
}

TEST(Env, ScaledAppliesFloor) {
  // scale_factor() is cached, so only test the floor logic generically.
  EXPECT_GE(scaled(1'000'000), 64u);
  EXPECT_GE(scaled(10, 64), 64u);
  EXPECT_LE(scaled(1'000, 1), 1'000u);
}

TEST(Env, BenchRunsPositive) { EXPECT_GE(bench_runs(), 1u); }

TEST(Env, ScaleFactorInRange) {
  EXPECT_GT(scale_factor(), 0.0);
  EXPECT_LE(scale_factor(), 1.0);
}

}  // namespace
}  // namespace ecl::test
