#include <gtest/gtest.h>

#include "bench_support/workloads.hpp"
#include "core/tarjan.hpp"
#include "graph/scc_stats.hpp"
#include "support/env.hpp"

namespace ecl::test {
namespace {

TEST(Workloads, PowerLawSpecsCoverTable3) {
  const auto specs = bench::power_law_specs();
  ASSERT_EQ(specs.size(), 10u);
  EXPECT_EQ(specs[0].name, "cage14");
  EXPECT_EQ(specs[0].paper_vertices, 1'505'785u);
  EXPECT_DOUBLE_EQ(specs[0].giant_fraction, 1.0);
  EXPECT_EQ(specs[9].name, "wikipedia");
  EXPECT_EQ(specs[2].dag_depth, 704u);  // com-Youtube
}

TEST(Workloads, PowerLawGraphsMatchTheirProfiles) {
  for (const auto& spec : bench::power_law_specs()) {
    const auto g = bench::power_law_graph(spec);
    const auto stats = graph::compute_scc_stats(g, scc::tarjan(g).labels);

    const double giant = double(stats.largest_scc) / double(stats.num_vertices);
    EXPECT_NEAR(giant, spec.giant_fraction, 0.1) << spec.name;
    EXPECT_NEAR(stats.avg_degree, spec.avg_degree, spec.avg_degree * 0.5) << spec.name;
    if (spec.dag_depth > 1) {
      EXPECT_GT(stats.dag_depth, 1u) << spec.name;
    }
  }
}

TEST(Workloads, PowerLawGraphsAreDeterministic) {
  const auto spec = bench::power_law_specs()[3];  // flickr
  const auto a = bench::power_law_graph(spec);
  const auto b = bench::power_law_graph(spec);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(std::vector<graph::vid>(a.targets().begin(), a.targets().end()),
            std::vector<graph::vid>(b.targets().begin(), b.targets().end()));
}

TEST(Workloads, MeshWorkloadBuildsOrdinateGraphs) {
  const auto suite = ecl::mesh::small_mesh_suite();
  const auto wl = bench::mesh_workload(suite.front());  // beam-hex
  EXPECT_EQ(wl.name, "beam-hex");
  EXPECT_EQ(wl.graphs.size(), bench::effective_ordinates(suite.front()));
  for (const auto& g : wl.graphs) EXPECT_GT(g.num_vertices(), 0u);
}

TEST(Workloads, EffectiveOrdinatesRespectsCap) {
  const auto suite = ecl::mesh::small_mesh_suite();
  for (const auto& group : suite) {
    const unsigned n = bench::effective_ordinates(group);
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, group.num_ordinates);
  }
}

TEST(Workloads, SuitesHaveExpectedCounts) {
  EXPECT_EQ(bench::small_mesh_workloads().size(), 6u);
  EXPECT_EQ(bench::power_law_workloads().size(), 10u);
}

}  // namespace
}  // namespace ecl::test
