#include <gtest/gtest.h>

#include "bench_support/harness.hpp"
#include "graph/generators.hpp"

namespace ecl::test {
namespace {

using bench::Column;
using bench::ResultTable;
using bench::Workload;

TEST(Harness, PaperColumnsInTableOrder) {
  const auto columns = bench::paper_columns();
  ASSERT_EQ(columns.size(), 6u);
  EXPECT_EQ(columns[0].name, "ECL-SCC Titan V");
  EXPECT_EQ(columns[1].name, "ECL-SCC A100");
  EXPECT_EQ(columns[2].name, "GPU-SCC Titan V");
  EXPECT_EQ(columns[3].name, "GPU-SCC A100");
  EXPECT_EQ(columns[4].name, "iSpan Ryzen");
  EXPECT_EQ(columns[5].name, "iSpan Xeon");
}

TEST(Harness, ColumnsProduceCorrectResults) {
  const auto g = graph::cycle_chain(10, 5);
  for (const auto& column : bench::paper_columns()) {
    const auto r = column.run(g);
    EXPECT_EQ(r.num_components, 10u) << column.name;
  }
}

TEST(Harness, WorkloadTotals) {
  Workload wl;
  wl.name = "w";
  wl.graphs.push_back(graph::cycle_graph(10));
  wl.graphs.push_back(graph::path_graph(5));
  EXPECT_EQ(wl.total_vertices(), 15u);
  EXPECT_EQ(wl.total_edges(), 14u);
}

TEST(Harness, ResultTableUpsertsAndRenders) {
  ResultTable table;
  table.record("g1", "A", 0.5, 100);
  table.record("g1", "B", 0.25, 100);
  table.record("g2", "A", 1.0, 200);
  table.record("g1", "A", 0.4, 100);  // upsert overwrites
  EXPECT_DOUBLE_EQ(table.seconds("g1", "A"), 0.4);
  EXPECT_DOUBLE_EQ(table.seconds("g1", "B"), 0.25);
  EXPECT_DOUBLE_EQ(table.seconds("missing", "A"), -1.0);

  const auto names = table.workload_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "g1");
  const auto runtime = table.render_runtime_table("T");
  EXPECT_NE(runtime.find("g1"), std::string::npos);
  EXPECT_NE(runtime.find("0.4000"), std::string::npos);
  const auto figure = table.render_throughput_figure("F");
  EXPECT_NE(figure.find("geomean"), std::string::npos);
}

TEST(Harness, GeomeanSpeedup) {
  ResultTable table;
  // A runs 2x faster than B on both workloads (same vertex counts).
  table.record("g1", "A", 0.5, 100);
  table.record("g1", "B", 1.0, 100);
  table.record("g2", "A", 2.0, 400);
  table.record("g2", "B", 4.0, 400);
  EXPECT_NEAR(table.geomean_speedup("A", "B"), 2.0, 1e-9);
  EXPECT_NEAR(table.geomean_speedup("B", "A"), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(table.geomean_speedup("A", "missing"), 0.0);
}

TEST(Harness, MeasureColumnRecordsAndVerifies) {
  Workload wl;
  wl.name = "measure-test";
  wl.graphs.push_back(graph::cycle_chain(8, 4));
  const auto columns = bench::paper_columns();
  const double seconds = bench::measure_column(wl, columns[1]);  // ECL-SCC A100
  EXPECT_GT(seconds, 0.0);
  EXPECT_GT(bench::results().seconds("measure-test", "ECL-SCC A100"), 0.0);
}

TEST(Harness, MeasureColumnThrowsOnWrongAlgorithm) {
  Workload wl;
  wl.name = "broken";
  wl.graphs.push_back(graph::cycle_graph(6));
  Column bogus{"Bogus", "bogus", "none", [](const graph::Digraph& g) {
                 scc::SccResult r;
                 r.labels.assign(g.num_vertices(), 0);  // everything one component
                 r.num_components = 1;
                 return r;
               }};
  // cycle_graph(6) IS one component, so that labeling is right; use a path.
  wl.graphs[0] = graph::path_graph(6);
  EXPECT_THROW((void)bench::measure_column(wl, bogus), std::runtime_error);
}

}  // namespace
}  // namespace ecl::test
