// The optimized parallel ECL-SCC must agree with Tarjan under EVERY
// combination of the four optimization toggles (Fig. 14's ablation space),
// in both signature-store modes, on multiple device profiles.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/test_graphs.hpp"
#include "core/ecl_scc.hpp"
#include "core/fb_trim.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "graph/permute.hpp"

namespace ecl::test {
namespace {

using scc::EclOptions;

struct OptionCase {
  EclOptions opts;
  std::string name;
};

std::vector<OptionCase> all_option_combinations() {
  std::vector<OptionCase> cases;
  for (int bits = 0; bits < 32; ++bits) {
    EclOptions o;
    o.async_phase2 = bits & 1;
    o.remove_scc_edges = bits & 2;
    o.path_compression = bits & 4;
    o.persistent_threads = bits & 8;
    o.use_atomic_max = bits & 16;
    std::string name;
    name += o.async_phase2 ? "async_" : "sync_";
    name += o.remove_scc_edges ? "rm_" : "keep_";
    name += o.path_compression ? "pc_" : "nopc_";
    name += o.persistent_threads ? "pt_" : "nopt_";
    name += o.use_atomic_max ? "atomic" : "racy";
    cases.push_back({o, name});
  }
  return cases;
}

class EclOptionSweep : public ::testing::TestWithParam<OptionCase> {};

TEST_P(EclOptionSweep, MatchesTarjanOnRepresentativeGraphs) {
  const EclOptions& opts = GetParam().opts;
  Rng rng(2024);
  std::vector<NamedGraph> graphs = structured_graphs();
  graphs.push_back({"er_dense", graph::random_digraph(150, 600, rng)});
  graphs.push_back({"er_sparse", graph::random_digraph(150, 150, rng)});

  for (const auto& g : graphs) {
    const auto oracle = scc::tarjan(g.graph);
    const auto r = scc::ecl_scc(g.graph, opts);
    ASSERT_EQ(r.num_components, oracle.num_components) << g.name;
    ASSERT_TRUE(scc::same_partition(r.labels, oracle.labels)) << g.name;
    ASSERT_TRUE(scc::verify_max_id_labels(r.labels).ok) << g.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllToggleCombinations, EclOptionSweep,
                         ::testing::ValuesIn(all_option_combinations()),
                         [](const ::testing::TestParamInfo<OptionCase>& info) {
                           return info.param.name;
                         });

TEST(EclScc, WorksOnTinyDeviceProfile) {
  // 2 SMs, 32-thread blocks: exercises grid-stride remainder handling.
  device::Device dev(device::tiny_profile());
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = graph::random_digraph(200, 500, rng);
    const auto oracle = scc::tarjan(g);
    const auto r = scc::ecl_scc(g, dev);
    EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels));
  }
}

TEST(EclScc, TitanVAndA100ProfilesAgree) {
  device::Device titan(device::titan_v_profile());
  device::Device a100(device::a100_profile());
  const auto g = fig3_graph();
  const auto r1 = scc::ecl_scc(g, titan);
  const auto r2 = scc::ecl_scc(g, a100);
  EXPECT_TRUE(scc::same_partition(r1.labels, r2.labels));
}

TEST(EclScc, AsyncModeReducesKernelLaunches) {
  // §3.3: the asynchronous Phase-2 kernel cuts launch count substantially
  // on inputs where propagation iterates many times (deep chains).
  const auto g = graph::cycle_chain(64, 20);
  EclOptions sync_opts;
  sync_opts.async_phase2 = false;
  EclOptions async_opts;
  async_opts.async_phase2 = true;

  device::Device dev_sync(device::a100_profile());
  device::Device dev_async(device::a100_profile());
  const auto sync_result = scc::ecl_scc(g, dev_sync, sync_opts);
  const auto async_result = scc::ecl_scc(g, dev_async, async_opts);
  EXPECT_LT(async_result.metrics.kernel_launches, sync_result.metrics.kernel_launches);
  EXPECT_TRUE(scc::same_partition(sync_result.labels, async_result.labels));
}

TEST(EclScc, ConvergedGraphSkipsEmptyLaunches) {
  // An edgeless graph converges immediately: Phase 2 and Phase 3 have zero
  // edges, blocks_for(0) is a zero grid, and a zero-grid launch is a no-op
  // (DESIGN.md §11). Only Phase 1 and the detect kernel may launch.
  device::Device dev(device::a100_profile());
  const auto g = graph::Digraph(64, {});
  const auto r = scc::ecl_scc(g, dev);
  EXPECT_EQ(r.num_components, 64u);
  EXPECT_EQ(r.metrics.outer_iterations, 1u);
  EXPECT_EQ(r.metrics.kernel_launches, 2u);  // phase1 + detect, nothing else
}

TEST(EclScc, PathCompressionReducesPropagationRounds) {
  // A long cycle is the worst case for plain propagation (c in O(d c |E|));
  // compression traverses it in ~log(c) rounds (§3.3). Compare in sync mode
  // where propagation_rounds directly counts fixpoint sweeps.
  const auto g = graph::cycle_graph(4096);
  EclOptions base;
  base.async_phase2 = false;
  base.path_compression = false;
  EclOptions compressed = base;
  compressed.path_compression = true;

  const auto plain = scc::ecl_scc(g, base);
  const auto fast = scc::ecl_scc(g, compressed);
  EXPECT_LT(fast.metrics.propagation_rounds, plain.metrics.propagation_rounds / 4)
      << "path compression should cut rounds by far more than 4x on a long cycle";
}

TEST(EclScc, RemoveSccEdgesShrinksWorkload) {
  // On a graph that is one big SCC plus a tail, removing completed-SCC
  // edges empties the worklist after the first iteration.
  graph::EdgeList e;
  for (graph::vid v = 0; v < 50; ++v) e.add(v, (v + 1) % 50);
  e.add(10, 50);  // tail
  e.add(50, 51);
  const graph::Digraph g(52, e);

  EclOptions with_rm;
  with_rm.remove_scc_edges = true;
  EclOptions without_rm;
  without_rm.remove_scc_edges = false;

  const auto a = scc::ecl_scc(g, with_rm);
  const auto b = scc::ecl_scc(g, without_rm);
  EXPECT_TRUE(scc::same_partition(a.labels, b.labels));
  EXPECT_GE(a.metrics.edges_removed, b.metrics.edges_removed);
  EXPECT_LE(a.metrics.edges_processed, b.metrics.edges_processed);
}

TEST(EclScc, MetricsAreConsistent) {
  const auto g = fig3_graph();
  const auto r = scc::ecl_scc(g);
  EXPECT_GE(r.metrics.outer_iterations, 1u);
  EXPECT_GE(r.metrics.propagation_rounds, r.metrics.outer_iterations);
  EXPECT_GT(r.metrics.kernel_launches, 0u);
  EXPECT_GT(r.metrics.edges_processed, 0u);
  // All 15 edges are eventually dropped (cross-SCC) or retired (intra-SCC).
  EXPECT_LE(r.metrics.edges_removed, g.num_edges());
}

TEST(EclScc, GuardTriggersOnImpossibleBudget) {
  scc::EclOptions opts;
  opts.max_outer_iterations = 1;
  // fig3 needs >= 2 outer iterations, so the guard must fire — reported as
  // a structured error, with the serial fallback completing the labeling.
  const auto r = scc::ecl_scc(fig3_graph(), opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error.code, scc::SccStatus::kIterationGuard);
  EXPECT_TRUE(r.metrics.serial_fallback);
  EXPECT_GT(r.metrics.fallback_vertices, 0u);
  const auto oracle = scc::tarjan(fig3_graph());
  EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels));
  EXPECT_EQ(r.num_components, oracle.num_components);
}

TEST(EclScc, GuardWithReturnErrorPolicyLeavesPartialLabels) {
  scc::EclOptions opts;
  opts.max_outer_iterations = 1;
  opts.stall_policy = scc::StallPolicy::kReturnError;
  const auto r = scc::ecl_scc(fig3_graph(), opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error.code, scc::SccStatus::kIterationGuard);
  EXPECT_FALSE(r.metrics.serial_fallback);
  EXPECT_EQ(r.num_components, 0u);
}

TEST(EclScc, EmptyAndTinyGraphs) {
  EXPECT_EQ(scc::ecl_scc(graph::Digraph(0, graph::EdgeList{})).num_components, 0u);
  const auto single = scc::ecl_scc(graph::Digraph(1, graph::EdgeList{}));
  EXPECT_EQ(single.num_components, 1u);
  EXPECT_EQ(single.labels[0], 0u);
}

TEST(EclScc, AllOptimizationsOffStillCorrect) {
  const auto opts = scc::ecl_all_optimizations_off();
  EXPECT_FALSE(opts.async_phase2);
  EXPECT_FALSE(opts.remove_scc_edges);
  EXPECT_FALSE(opts.path_compression);
  EXPECT_FALSE(opts.persistent_threads);
  Rng rng(77);
  const auto g = graph::random_digraph(300, 900, rng);
  const auto oracle = scc::tarjan(g);
  EXPECT_TRUE(scc::same_partition(scc::ecl_scc(g, opts).labels, oracle.labels));
}

TEST(EclScc, DeterministicAcrossRunsOnSameDevice) {
  // The final labels are determined by the graph alone (max member IDs),
  // regardless of racing schedules.
  Rng rng(123);
  const auto g = graph::random_digraph(400, 1200, rng);
  const auto first = scc::ecl_scc(g);
  for (int i = 0; i < 3; ++i) {
    const auto again = scc::ecl_scc(g);
    EXPECT_EQ(first.labels, again.labels);
  }
}

}  // namespace
}  // namespace ecl::test

// ---- 4-signature min/max variant (§3.3, the design the paper considered
// but rejected for its memory cost) -----------------------------------------

namespace ecl::test {
namespace {

TEST(EclMinMax, MatchesTarjanOnAllTestGraphs) {
  scc::EclOptions opts;
  opts.min_max_signatures = true;
  for (const auto& g : all_test_graphs()) {
    const auto oracle = scc::tarjan(g.graph);
    const auto r = scc::ecl_scc(g.graph, opts);
    EXPECT_EQ(r.num_components, oracle.num_components) << g.name;
    EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels)) << g.name;
  }
}

TEST(EclMinMax, MatchesTarjanWithAtomicsAndWithoutCompression) {
  Rng rng(404);
  const auto g = graph::random_digraph(300, 900, rng);
  const auto oracle = scc::tarjan(g);
  for (int bits = 0; bits < 4; ++bits) {
    scc::EclOptions opts;
    opts.min_max_signatures = true;
    opts.path_compression = bits & 1;
    opts.use_atomic_max = bits & 2;
    EXPECT_TRUE(scc::same_partition(scc::ecl_scc(g, opts).labels, oracle.labels)) << bits;
  }
}

TEST(EclMinMax, NeverNeedsMoreOuterIterations) {
  // Detecting >= 2 SCCs per cluster per round can only shrink the outer
  // loop: compare on SCC chains with randomized IDs.
  Rng rng(777);
  const auto chain = graph::cycle_chain(128, 4);
  const auto permuted = graph::randomly_permute(chain, rng);

  scc::EclOptions two_sig;
  scc::EclOptions four_sig;
  four_sig.min_max_signatures = true;
  const auto a = scc::ecl_scc(permuted.graph, two_sig);
  const auto b = scc::ecl_scc(permuted.graph, four_sig);
  EXPECT_TRUE(scc::same_partition(a.labels, b.labels));
  EXPECT_LE(b.metrics.outer_iterations, a.metrics.outer_iterations);
}

TEST(EclMinMax, LabelsAreComponentMembers) {
  // Min-detected components are labeled by their minimum member, so the
  // max-ID invariant does not hold — but every label must still name a
  // member of its own class.
  Rng rng(55);
  const auto g = graph::random_digraph(400, 1000, rng);
  scc::EclOptions opts;
  opts.min_max_signatures = true;
  const auto r = scc::ecl_scc(g, opts);
  for (graph::vid v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(r.labels[v], g.num_vertices());
    ASSERT_EQ(r.labels[r.labels[v]], r.labels[v]);
  }
}

}  // namespace
}  // namespace ecl::test

// ---- failure injection: adversarial block scheduling ----------------------

namespace ecl::test {
namespace {

TEST(EclScc, CorrectUnderReversedBlockScheduling) {
  device::DeviceProfile profile = device::a100_profile();
  profile.launch_overhead_us = 0.0;
  profile.reverse_block_order = true;
  device::Device adversarial(profile);
  Rng rng(909);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = graph::random_digraph(300, 900, rng);
    const auto oracle = scc::tarjan(g);
    EXPECT_TRUE(scc::same_partition(scc::ecl_scc(g, adversarial).labels, oracle.labels));
  }
}

TEST(FbTrimInjection, CorrectUnderReversedBlockScheduling) {
  device::DeviceProfile profile = device::a100_profile();
  profile.launch_overhead_us = 0.0;
  profile.reverse_block_order = true;
  device::Device adversarial(profile);
  Rng rng(910);
  const auto g = graph::random_digraph(300, 900, rng);
  const auto oracle = scc::tarjan(g);
  EXPECT_TRUE(scc::same_partition(scc::fb_trim(g, adversarial, {}).labels, oracle.labels));
}

}  // namespace
}  // namespace ecl::test

namespace ecl::test {
namespace {

TEST(EclScc, PhaseTimingBreakdownIsPopulated) {
  Rng rng(4242);
  const auto g = graph::random_digraph(2000, 8000, rng);
  const auto r = scc::ecl_scc(g);
  EXPECT_GT(r.metrics.phase1_seconds, 0.0);
  EXPECT_GT(r.metrics.phase2_seconds, 0.0);
  EXPECT_GT(r.metrics.phase3_seconds, 0.0);
  // §3.3: Phase 2 "is the most performance critical code".
  EXPECT_GT(r.metrics.phase2_seconds, r.metrics.phase1_seconds);
}

// ---- phase2_hook: the coordination point the sharded fleet engine builds
// on (src/fleet/sharded_scc.cpp). The hook observes every Phase-2 grid
// barrier and REPLACES the local-movement continue condition, so an
// external coordinator can extend the sweep loop past local quiescence.

TEST(EclPhase2Hook, ObservesEveryRoundAndLocalMovement) {
  const Digraph g = fig3_graph();
  device::Device dev(device::tiny_profile(), /*workers=*/2);

  std::vector<std::pair<std::uint32_t, bool>> observed;
  EclOptions opts;
  opts.phase2_hook = [&](bool local_changed, std::uint32_t round) {
    observed.emplace_back(round, local_changed);
    return local_changed;  // identity hook: preserve the stock condition
  };
  const auto r = scc::ecl_scc(g, dev, opts);
  ASSERT_TRUE(r.ok());

  // The hook fired at least once per outer iteration, and every sweep loop
  // ended with a no-movement observation (that's what terminated it).
  ASSERT_FALSE(observed.empty());
  EXPECT_GE(observed.size(), r.metrics.outer_iterations);
  EXPECT_FALSE(observed.back().second);
}

TEST(EclPhase2Hook, IdentityHookLeavesLabelsBitIdentical) {
  Rng rng(0x40710'01);
  const Digraph g = graph::random_digraph(150, 450, rng);
  device::Device dev(device::tiny_profile(), /*workers=*/2);

  const auto reference = scc::ecl_scc(g, dev);
  EclOptions opts;
  opts.phase2_hook = [](bool local_changed, std::uint32_t) { return local_changed; };
  const auto hooked = scc::ecl_scc(g, dev, opts);
  ASSERT_TRUE(hooked.ok());
  EXPECT_EQ(hooked.labels, reference.labels);
}

TEST(EclPhase2Hook, ExtraSweepsPastQuiescenceAreHarmless) {
  // Forcing N additional sweeps after local quiescence must not change the
  // labels: Phase 2 is a monotone fixpoint, so once quiescent it stays
  // quiescent. This is exactly the situation a sharded coordinator creates
  // when ANOTHER shard is still moving.
  Rng rng(0x40710'02);
  graph::SccProfile profile;
  profile.num_vertices = 200;
  profile.giant_fraction = 0.4;
  profile.size2_sccs = 10;
  profile.mid_sccs = 3;
  profile.dag_depth = 6;
  const Digraph g = graph::scc_profile_graph(profile, rng);
  device::Device dev(device::tiny_profile(), /*workers=*/2);

  const auto reference = scc::ecl_scc(g, dev);

  unsigned extra = 0;
  EclOptions opts;
  opts.phase2_hook = [&](bool local_changed, std::uint32_t) {
    if (local_changed) return true;
    if (extra < 3) {  // three forced post-quiescence sweeps per loop
      ++extra;
      return true;
    }
    extra = 0;
    return false;
  };
  const auto hooked = scc::ecl_scc(g, dev, opts);
  ASSERT_TRUE(hooked.ok());
  EXPECT_EQ(hooked.labels, reference.labels);
  // The forced sweeps really ran: more propagation rounds than stock.
  EXPECT_GT(hooked.metrics.propagation_rounds, reference.metrics.propagation_rounds);
}

TEST(EclPhase2Hook, HookCanForceMinimumRoundsPerLoop) {
  // A coordinator may demand a floor on sweep rounds (e.g. while a peer
  // shard is known to still be moving). The floor must be harmless.
  Rng rng(0x40710'01);
  const Digraph g = graph::random_digraph(150, 450, rng);
  device::Device dev(device::tiny_profile(), /*workers=*/2);
  const auto reference = scc::ecl_scc(g, dev);

  EclOptions opts;
  opts.phase2_hook = [&](bool local_changed, std::uint32_t round) {
    return local_changed || round < 2;  // keep sweeping a couple of rounds
  };
  const auto hooked = scc::ecl_scc(g, dev, opts);
  ASSERT_TRUE(hooked.ok());
  EXPECT_EQ(hooked.labels, reference.labels);
}

}  // namespace
}  // namespace ecl::test
