// Chaos sweep: every registry algorithm must produce Tarjan's partition and
// pass intrinsic verification under every seeded fault plan of the chaos
// suite. Device-backed configurations run on a dedicated chaos device
// carrying the plan; CPU configurations are swept for schedule sensitivity
// via thread-count variation (ecl-omp) and plain reruns. The suite also
// exercises the deliberate-stall limit (store_defer_probability = 1.0) that
// the fixpoint watchdog plus serial fallback must absorb.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/test_graphs.hpp"
#include "core/ecl_omp.hpp"
#include "core/ecl_scc.hpp"
#include "core/registry.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "device/device.hpp"
#include "device/fault.hpp"

namespace ecl::test {
namespace {

using device::FaultPlan;
using scc::SccResult;
using scc::SccStatus;

/// Small-but-varied graph set: the paper figures, a chain of cycles, one
/// big single SCC, and a random digraph. Kept modest so the full
/// plans x algorithms x graphs sweep stays fast.
const std::vector<NamedGraph>& chaos_graphs() {
  static const std::vector<NamedGraph> graphs = [] {
    std::vector<NamedGraph> gs;
    gs.push_back({"fig1", fig1_graph()});
    gs.push_back({"fig3", fig3_graph()});
    gs.push_back({"cycle_64", graph::cycle_graph(64)});
    gs.push_back({"cycle_chain_20x5", graph::cycle_chain(20, 5)});
    Rng rng(0xc4a05);
    gs.push_back({"er_n120_m360", graph::random_digraph(120, 360, rng)});
    return gs;
  }();
  return graphs;
}

/// A fault-free device sharing the chaos devices' profile, so comparisons
/// are not confounded by profile differences.
device::DeviceProfile chaos_profile(FaultPlan plan) {
  device::DeviceProfile profile = device::tiny_profile();  // zero launch overhead
  profile.fault_plan = plan;
  return profile;
}

void expect_matches_oracle(const SccResult& result, const graph::Digraph& g,
                           const std::string& context) {
  const SccResult oracle = scc::tarjan(g);
  ASSERT_EQ(result.labels.size(), g.num_vertices()) << context;
  EXPECT_TRUE(scc::same_partition(result.labels, oracle.labels)) << context;
  EXPECT_EQ(result.num_components, oracle.num_components) << context;
  const auto report = scc::verify_scc(g, result.labels);
  EXPECT_TRUE(report.ok) << context << ": " << report.message;
}

struct ChaosCase {
  std::string algorithm;
  std::size_t plan_index;
};

class ChaosSweep : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSweep, MatchesTarjanUnderFaultPlan) {
  const auto& [algorithm, plan_index] = GetParam();
  const auto plans = device::chaos_suite();
  ASSERT_GE(plans.size(), 8u) << "chaos suite shrank below the contract";
  const FaultPlan plan = plans[plan_index];
  for (const auto& [graph_name, g] : chaos_graphs()) {
    device::Device dev(chaos_profile(plan));
    const SccResult result = scc::run_algorithm_on(algorithm, g, dev);
    const std::string context =
        algorithm + " on " + graph_name + " under " + plan.describe();
    EXPECT_TRUE(result.ok()) << context << ": " << result.error.message;
    expect_matches_oracle(result, g, context);
  }
}

std::vector<ChaosCase> make_chaos_cases() {
  std::vector<ChaosCase> cases;
  const std::size_t num_plans = device::chaos_suite().size();
  for (const auto& algorithm : scc::algorithm_names()) {
    if (!scc::algorithm_uses_device(algorithm)) continue;
    for (std::size_t i = 0; i < num_plans; ++i) cases.push_back({algorithm, i});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(DeviceAlgorithmsAllPlans, ChaosSweep,
                         ::testing::ValuesIn(make_chaos_cases()),
                         [](const ::testing::TestParamInfo<ChaosCase>& info) {
                           std::string name = info.param.algorithm + "_plan" +
                                              std::to_string(info.param.plan_index);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// CPU configurations have no device to perturb; their adversarial-schedule
// axis is the OpenMP thread count (ecl-omp) and repetition for the rest.
// Every registry name is covered so a future device-backed addition cannot
// silently skip the sweep.
TEST(ChaosSweep, EveryRegistryAlgorithmCoveredAdversarially) {
  FaultPlan adversarial;
  adversarial.seed = 0xadba'd5eed;
  adversarial.permute_blocks = true;
  adversarial.spurious_reexecution = true;
  adversarial.max_replays = 2;
  for (const auto& algorithm : scc::algorithm_names()) {
    for (const auto& [graph_name, g] : chaos_graphs()) {
      device::Device dev(chaos_profile(adversarial));
      const SccResult result = scc::run_algorithm_on(algorithm, g, dev);
      expect_matches_oracle(result, g, algorithm + " on " + graph_name);
    }
  }
}

TEST(ChaosSweep, EclOmpUnderThreadCountVariation) {
  for (unsigned threads : {1u, 2u, 5u}) {
    scc::EclOmpOptions opts;
    opts.num_threads = threads;
    for (const auto& [graph_name, g] : chaos_graphs()) {
      const SccResult result = scc::ecl_omp(g, opts);
      expect_matches_oracle(result, g,
                            "ecl-omp(" + std::to_string(threads) + ") on " + graph_name);
    }
  }
}

// ---- Deliberate stall: the watchdog + fallback acceptance path. ----------

device::DeviceProfile stall_profile() {
  FaultPlan plan;
  plan.seed = 1;
  plan.delayed_visibility = true;
  plan.store_defer_probability = 1.0;  // no signature store ever lands
  return chaos_profile(plan);
}

TEST(ChaosStall, WatchdogTripsAndSerialFallbackRecovers) {
  const graph::Digraph g = graph::cycle_graph(64);
  device::Device dev(stall_profile());
  const SccResult result = scc::ecl_scc(g, dev);

  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error.code, SccStatus::kStalled) << result.error.message;
  EXPECT_GE(result.metrics.watchdog_trips, 1u);
  EXPECT_TRUE(result.metrics.serial_fallback);
  EXPECT_EQ(result.metrics.fallback_vertices, 64u) << "nothing was labeled before the stall";
  expect_matches_oracle(result, g, "stalled ecl_scc with serial fallback");
  // The fallback preserves the max-ID labeling contract.
  EXPECT_TRUE(scc::verify_max_id_labels(result.labels).ok);
}

TEST(ChaosStall, FallbackLabelsResidualOfPartialRun) {
  // Mixed graph: singletons + cycles. Even if early iterations labeled
  // nothing (full store suppression), the fallback must label everything.
  const graph::Digraph g = graph::cycle_chain(10, 8);
  device::Device dev(stall_profile());
  const SccResult result = scc::ecl_scc(g, dev);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.metrics.serial_fallback);
  expect_matches_oracle(result, g, "stalled ecl_scc on cycle_chain");
  EXPECT_TRUE(scc::verify_max_id_labels(result.labels).ok);
}

TEST(ChaosStall, ReturnErrorPolicySkipsFallback) {
  const graph::Digraph g = graph::cycle_graph(32);
  device::Device dev(stall_profile());
  scc::EclOptions opts;
  opts.stall_policy = scc::StallPolicy::kReturnError;
  const SccResult result = scc::ecl_scc(g, dev, opts);

  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error.code, SccStatus::kStalled);
  EXPECT_FALSE(result.metrics.serial_fallback);
  EXPECT_EQ(result.num_components, 0u);
  // Partial labels: the stalled run never labeled the cycle.
  EXPECT_NE(std::count(result.labels.begin(), result.labels.end(), graph::kInvalidVid), 0);
}

TEST(ChaosStall, RunResilientAbsorbsTheStall) {
  // Through the resilient registry entry the same stall is invisible to the
  // caller except for the recorded error + fallback metrics.
  const graph::Digraph g = graph::cycle_graph(48);
  // The registry's shared device is fault-free, so drive ecl_scc through
  // run_algorithm_on semantics by checking the direct ecl path here and the
  // registry path in test_registry.cpp; this test pins the contract that a
  // stalled result still carries complete verified labels.
  device::Device dev(stall_profile());
  const SccResult result = scc::ecl_scc(g, dev);
  ASSERT_TRUE(result.metrics.serial_fallback);
  const auto report = scc::verify_scc(g, result.labels);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(ChaosStall, WallClockWatchdogAlsoTrips) {
  // Same stall, detected by the wall-clock monitor with a huge sweep budget:
  // proves the time-based path works independently of the round budget.
  const graph::Digraph g = graph::cycle_graph(64);
  device::Device dev(stall_profile());
  scc::EclOptions opts;
  opts.watchdog.max_phase2_rounds = ~std::uint64_t{0};
  opts.watchdog.stall_seconds = 0.05;
  const SccResult result = scc::ecl_scc(g, dev, opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error.code, SccStatus::kStalled);
  EXPECT_TRUE(result.metrics.serial_fallback);
  expect_matches_oracle(result, g, "wall-clock stalled ecl_scc");
}

}  // namespace
}  // namespace ecl::test
