#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "core/ispan.hpp"
#include "core/tarjan.hpp"

namespace ecl::test {
namespace {

using scc::IspanOptions;

TEST(ISpan, MatchesTarjanOnAllTestGraphs) {
  for (const auto& g : all_test_graphs()) {
    const auto oracle = scc::tarjan(g.graph);
    const auto r = scc::ispan(g.graph);
    EXPECT_EQ(r.num_components, oracle.num_components) << g.name;
    EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels)) << g.name;
  }
}

TEST(ISpan, ThreadCountSweep) {
  Rng rng(8);
  const auto g = graph::random_digraph(400, 1600, rng);
  const auto oracle = scc::tarjan(g);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    IspanOptions opts;
    opts.num_threads = threads;
    const auto r = scc::ispan(g, opts);
    EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels)) << threads << " threads";
  }
}

TEST(ISpan, TrimTogglesStayCorrect) {
  Rng rng(9);
  const auto g = graph::random_digraph(250, 500, rng);
  const auto oracle = scc::tarjan(g);
  for (int bits = 0; bits < 4; ++bits) {
    IspanOptions opts;
    opts.trim2 = bits & 1;
    opts.trim3 = bits & 2;
    EXPECT_TRUE(scc::same_partition(scc::ispan(g, opts).labels, oracle.labels));
  }
}

TEST(ISpan, GiantSccGraphUsesSinglePhase1Round) {
  // The design case: one giant SCC detected by the spanning-tree phase.
  Rng rng(10);
  graph::SccProfile p;
  p.num_vertices = 800;
  p.giant_fraction = 0.9;
  p.dag_depth = 3;
  const auto g = graph::scc_profile_graph(p, rng);
  const auto r = scc::ispan(g);
  const auto oracle = scc::tarjan(g);
  EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels));
  // Phase 1 plus few residue rounds, not hundreds.
  EXPECT_LE(r.metrics.outer_iterations, 10u);
}

TEST(ISpan, DeepMeshLikeGraphIsItsWorstCase) {
  // The paper's headline observation: trivial-SCC chains with deep DAGs
  // force iSpan's trim loop through many sweeps.
  const auto g = graph::cycle_chain(200, 1);  // a 200-deep path
  const auto r = scc::ispan(g);
  EXPECT_EQ(r.num_components, 200u);
  EXPECT_GE(r.metrics.propagation_rounds, 50u)
      << "expected many trim sweeps on a deep trivial-SCC chain";
}

}  // namespace
}  // namespace ecl::test
