#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "core/kosaraju.hpp"
#include "core/tarjan.hpp"

namespace ecl::test {
namespace {

TEST(Kosaraju, AgreesWithTarjanOnStructuredGraphs) {
  for (const auto& g : structured_graphs()) {
    const auto a = scc::kosaraju(g.graph);
    const auto b = scc::tarjan(g.graph);
    EXPECT_EQ(a.num_components, b.num_components) << g.name;
    EXPECT_TRUE(scc::same_partition(a.labels, b.labels)) << g.name;
  }
}

TEST(Kosaraju, AgreesWithTarjanOnRandomGraphs) {
  for (const auto& g : random_graphs()) {
    const auto a = scc::kosaraju(g.graph);
    const auto b = scc::tarjan(g.graph);
    EXPECT_TRUE(scc::same_partition(a.labels, b.labels)) << g.name;
  }
}

TEST(Kosaraju, LabelsAreTopologicallyOrdered) {
  // Kosaraju numbers components in topological order of the condensation:
  // for every edge u -> v across components, label[u] <= label[v] must hold
  // with the reverse convention... our implementation processes reverse
  // post-order, so sources get the smallest labels.
  const graph::Digraph g = graph::cycle_chain(8, 3);
  const auto r = scc::kosaraju(g);
  for (graph::vid u = 0; u < g.num_vertices(); ++u) {
    for (graph::vid v : g.out_neighbors(u)) {
      EXPECT_LE(r.labels[u], r.labels[v]) << "edge " << u << "->" << v;
    }
  }
}

TEST(Kosaraju, DeepGraphDoesNotOverflowStack) {
  const auto r = scc::kosaraju(graph::path_graph(2'000'000));
  EXPECT_EQ(r.num_components, 2'000'000u);
}

}  // namespace
}  // namespace ecl::test
