#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/watchdog.hpp"

namespace ecl::test {
namespace {

using scc::FixpointWatchdog;
using scc::WatchdogConfig;

TEST(Watchdog, ProgressResetsStallCounter) {
  FixpointWatchdog wd(WatchdogConfig{.stall_rounds = 2}, 100);
  // Labels grow: progress every round, never stalls.
  EXPECT_FALSE(wd.observe_iteration(1, 50));
  EXPECT_FALSE(wd.observe_iteration(2, 50));
  EXPECT_FALSE(wd.observe_iteration(3, 50));
  EXPECT_FALSE(wd.stalled());
}

TEST(Watchdog, WorklistShrinkageCountsAsProgress) {
  FixpointWatchdog wd(WatchdogConfig{.stall_rounds = 2}, 100);
  EXPECT_FALSE(wd.observe_iteration(5, 90));
  EXPECT_FALSE(wd.observe_iteration(5, 80));  // labels flat, worklist shrank
  EXPECT_FALSE(wd.observe_iteration(5, 70));
  EXPECT_FALSE(wd.stalled());
}

TEST(Watchdog, TripsAfterStallRoundsWithoutProgress) {
  FixpointWatchdog wd(WatchdogConfig{.stall_rounds = 2}, 100);
  EXPECT_FALSE(wd.observe_iteration(5, 90));  // first observation: baseline
  EXPECT_FALSE(wd.observe_iteration(5, 90));  // 1 flat round
  EXPECT_TRUE(wd.observe_iteration(5, 90));   // 2 flat rounds: stalled
  EXPECT_TRUE(wd.stalled());
}

TEST(Watchdog, OneAnomalousRoundIsTolerated) {
  FixpointWatchdog wd(WatchdogConfig{.stall_rounds = 2}, 100);
  EXPECT_FALSE(wd.observe_iteration(5, 90));
  EXPECT_FALSE(wd.observe_iteration(5, 90));  // flat...
  EXPECT_FALSE(wd.observe_iteration(6, 90));  // ...then progress: counter resets
  EXPECT_FALSE(wd.observe_iteration(6, 90));
  EXPECT_TRUE(wd.observe_iteration(6, 90));
  EXPECT_TRUE(wd.stalled());
}

TEST(Watchdog, Phase2BudgetAutoScalesWithVertices) {
  FixpointWatchdog small(WatchdogConfig{}, 10);
  FixpointWatchdog large(WatchdogConfig{}, 1000);
  EXPECT_EQ(small.phase2_round_budget(), 4u * 10 + 64);
  EXPECT_EQ(large.phase2_round_budget(), 4u * 1000 + 64);
  FixpointWatchdog fixed(WatchdogConfig{.max_phase2_rounds = 7}, 1000);
  EXPECT_EQ(fixed.phase2_round_budget(), 7u);
}

TEST(Watchdog, WallClockDisabledByDefault) {
  FixpointWatchdog wd(WatchdogConfig{}, 10);
  EXPECT_FALSE(wd.expired());
}

TEST(Watchdog, WallClockExpiresWithoutProgress) {
  FixpointWatchdog wd(WatchdogConfig{.stall_seconds = 0.02}, 10);
  EXPECT_FALSE(wd.expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(wd.expired());
  wd.note_progress();  // progress re-anchors the clock
  EXPECT_FALSE(wd.expired());
}

TEST(Watchdog, DeadlineDisabledByDefault) {
  FixpointWatchdog wd(WatchdogConfig{}, 10);
  EXPECT_FALSE(WatchdogConfig{}.has_deadline());
  EXPECT_FALSE(wd.deadline_expired());
}

TEST(Watchdog, AlreadyExpiredDeadlineTripsOnFirstPoll) {
  WatchdogConfig cfg;
  cfg.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  FixpointWatchdog wd(cfg, 10);
  EXPECT_TRUE(wd.deadline_expired());
  EXPECT_TRUE(wd.expired()) << "deadline expiry must surface through expired()";
}

TEST(Watchdog, GenerousDeadlineNeverTrips) {
  WatchdogConfig cfg;
  cfg.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  FixpointWatchdog wd(cfg, 10);
  for (int round = 0; round < 50; ++round) {
    EXPECT_FALSE(wd.observe_iteration(static_cast<std::uint64_t>(round), 10));
    EXPECT_FALSE(wd.deadline_expired());
  }
  EXPECT_FALSE(wd.expired());
}

TEST(Watchdog, ProgressDoesNotReArmDeadline) {
  // Unlike stall_seconds (re-anchored by note_progress), the deadline is an
  // absolute point: once it passes, progress cannot un-expire it.
  WatchdogConfig cfg;
  cfg.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(15);
  FixpointWatchdog wd(cfg, 10);
  EXPECT_FALSE(wd.deadline_expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  wd.note_progress();
  EXPECT_TRUE(wd.deadline_expired());
  EXPECT_TRUE(wd.expired());
}

TEST(Watchdog, ShrinkingFrontierReArmsWallClock) {
  FixpointWatchdog wd(WatchdogConfig{.stall_seconds = 0.02}, 10);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(wd.expired());
  wd.observe_phase2_round(100);  // first observation: baseline, no re-arm
  EXPECT_TRUE(wd.expired());
  wd.observe_phase2_round(50);  // strictly shrinking frontier: progress
  EXPECT_FALSE(wd.expired());
}

TEST(Watchdog, FlatOrGrowingFrontierDoesNotReArmWallClock) {
  FixpointWatchdog wd(WatchdogConfig{.stall_seconds = 0.02}, 10);
  wd.observe_phase2_round(100);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  wd.observe_phase2_round(100);  // flat (e.g. deferred stores re-stamping)
  EXPECT_TRUE(wd.expired());
  wd.observe_phase2_round(120);  // growing
  EXPECT_TRUE(wd.expired());
}

TEST(Watchdog, FrontierShrinkDoesNotResetOuterStallCounter) {
  // A quiescing Phase-2 frontier must not mask an outer loop that labels
  // nothing: only observe_iteration-level progress resets the round counter.
  FixpointWatchdog wd(WatchdogConfig{.stall_rounds = 2}, 100);
  EXPECT_FALSE(wd.observe_iteration(5, 90));
  wd.observe_phase2_round(100);
  wd.observe_phase2_round(10);  // shrinking frontier between iterations
  EXPECT_FALSE(wd.observe_iteration(5, 90));
  wd.observe_phase2_round(5);
  EXPECT_TRUE(wd.observe_iteration(5, 90)) << "flat outer rounds still stall";
  EXPECT_TRUE(wd.stalled());
}

TEST(Watchdog, MarkStalledIsSticky) {
  FixpointWatchdog wd(WatchdogConfig{}, 10);
  EXPECT_FALSE(wd.stalled());
  wd.mark_stalled();
  EXPECT_TRUE(wd.stalled());
  wd.note_progress();
  EXPECT_TRUE(wd.stalled()) << "progress must not clear a declared stall";
}

}  // namespace
}  // namespace ecl::test
