#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"

namespace ecl::test {
namespace {

using graph::vid;

TEST(Verify, AcceptsCorrectLabeling) {
  const auto g = fig3_graph();
  const auto oracle = scc::tarjan(g);
  EXPECT_TRUE(scc::verify_scc(g, oracle.labels).ok);
}

TEST(Verify, RejectsSplitComponent) {
  // Splitting the SCC {1,4,9} of fig3 into {1} and {4,9} violates
  // maximality: the condensation gains a cycle.
  const auto g = fig3_graph();
  auto labels = scc::tarjan(g).labels;
  const vid fresh = 11;  // unused label value (tarjan labels are dense 0..6)
  labels[1] = fresh;
  ASSERT_NE(labels[4], fresh);
  const auto report = scc::verify_scc(g, labels);
  EXPECT_FALSE(report.ok);
}

TEST(Verify, RejectsMergedComponents) {
  // Merging {5} into {2,7} produces a class that is not strongly connected.
  const auto g = fig3_graph();
  auto labels = scc::tarjan(g).labels;
  labels[5] = labels[2];
  const auto report = scc::verify_scc(g, labels);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("not strongly connected"), std::string::npos);
}

TEST(Verify, RejectsWrongSizeLabelVector) {
  const auto g = fig3_graph();
  std::vector<vid> labels(5, 0);
  EXPECT_FALSE(scc::verify_scc(g, labels).ok);
}

TEST(Verify, AgainstOracleDetectsMismatch) {
  std::vector<vid> a{0, 0, 1};
  std::vector<vid> b{0, 1, 1};
  EXPECT_FALSE(scc::verify_against(a, b).ok);
  EXPECT_TRUE(scc::verify_against(a, a).ok);
}

TEST(Verify, AgainstOracleAcceptsRenamedLabels) {
  std::vector<vid> a{0, 0, 1, 2};
  std::vector<vid> b{2, 2, 0, 1};  // same partition, different names
  EXPECT_TRUE(scc::verify_against(a, b).ok);
}

TEST(Verify, MaxIdLabelsAccepted) {
  // fig3 components labeled by their max member.
  const auto g = fig3_graph();
  std::vector<vid> labels(g.num_vertices());
  for (const auto& component : fig3_components()) {
    vid max_id = 0;
    for (vid v : component) max_id = std::max(max_id, v);
    for (vid v : component) labels[v] = max_id;
  }
  EXPECT_TRUE(scc::verify_max_id_labels(labels).ok);
  EXPECT_TRUE(scc::verify_scc(g, labels).ok);
}

TEST(Verify, MaxIdLabelsRejectNonMaxRepresentative) {
  std::vector<vid> labels{0, 0};  // component {0,1} labeled 0, not 1
  const auto report = scc::verify_max_id_labels(labels);
  EXPECT_FALSE(report.ok);
}

TEST(Verify, MaxIdLabelsRejectForeignRepresentative) {
  std::vector<vid> labels{2, 2, 0};  // vertex 2's label (0) not in class {2}
  EXPECT_FALSE(scc::verify_max_id_labels(labels).ok);
}

// ---- Adversarial labelings: what a faulty parallel run could produce. ----

TEST(Verify, RejectsMergeAllOnDisconnectedGraph) {
  // Collapsing two mutually unreachable clusters of fig3 into one label is
  // the canonical "lost update produced a giant component" failure.
  const auto g = fig3_graph();
  std::vector<vid> labels(g.num_vertices(), 0);
  const auto report = scc::verify_scc(g, labels);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("not strongly connected"), std::string::npos);
}

TEST(Verify, RejectsSingletonSplitOfCycle) {
  // A cycle split into all-singletons passes the strong-connectivity check
  // per class but makes the condensation cyclic — maximality must catch it.
  const auto g = graph::cycle_graph(8);
  std::vector<vid> labels(8);
  for (vid v = 0; v < 8; ++v) labels[v] = v;
  const auto report = scc::verify_scc(g, labels);
  EXPECT_FALSE(report.ok);
}

TEST(Verify, RejectsNonMemberLabelValues) {
  // A labeling that names each component after a vertex OUTSIDE it: valid
  // as a partition, but violates the max-ID representative contract that
  // ECL-SCC's fallback must preserve.
  const auto g = fig3_graph();
  auto labels = scc::tarjan(g).labels;  // dense ids: a valid partition
  EXPECT_TRUE(scc::verify_scc(g, labels).ok) << "partition itself is fine";
  EXPECT_FALSE(scc::verify_max_id_labels(labels).ok)
      << "dense component indices are not max-member labels";
}

TEST(Verify, RandomizedCorruptionSweepIsAlwaysCaught) {
  // Flip one vertex's label to another class's label across several graphs
  // and seeds: verify_scc must reject every corrupted labeling (the flip
  // either splits, merges, or breaks maximality).
  Rng rng(0xbad1abe1);
  for (const auto& [name, g] : structured_graphs()) {
    if (g.num_vertices() < 2) continue;
    const auto oracle = scc::tarjan(g);
    if (oracle.num_components < 2) continue;  // single class: flips are no-ops
    for (int trial = 0; trial < 8; ++trial) {
      auto labels = oracle.labels;
      const vid victim = static_cast<vid>(rng.bounded(g.num_vertices()));
      vid donor = victim;
      while (labels[donor] == labels[victim])
        donor = static_cast<vid>(rng.bounded(g.num_vertices()));
      labels[victim] = labels[donor];
      EXPECT_FALSE(scc::verify_scc(g, labels).ok)
          << name << ": moved vertex " << victim << " into class of " << donor;
    }
  }
}

}  // namespace
}  // namespace ecl::test
