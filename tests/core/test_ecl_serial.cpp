#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "core/ecl_serial.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "graph/permute.hpp"

namespace ecl::test {
namespace {

using graph::vid;

TEST(EclSerial, LabelsAreMaxMemberIds) {
  for (const auto& g : all_test_graphs()) {
    const auto r = scc::ecl_serial(g.graph);
    EXPECT_TRUE(scc::verify_max_id_labels(r.labels).ok) << g.name;
  }
}

TEST(EclSerial, Fig3LabelsMatchPaperConvention) {
  const auto r = scc::ecl_serial(fig3_graph());
  // Each SCC's signature is the max vertex ID among its members (§3.2.1).
  for (const auto& component : fig3_components()) {
    vid max_id = 0;
    for (vid v : component) max_id = std::max(max_id, v);
    for (vid v : component) EXPECT_EQ(r.labels[v], max_id) << "vertex " << v;
  }
}

TEST(EclSerial, Fig3TakesMultipleOuterIterations) {
  // The clusters contain chains of SCCs, so one iteration detects only the
  // max SCCs (those containing 9 and 11); the rest need further iterations.
  const auto r = scc::ecl_serial(fig3_graph());
  EXPECT_GE(r.metrics.outer_iterations, 2u);
  EXPECT_GT(r.metrics.edges_removed, 0u);
}

TEST(EclSerial, SingleCycleConvergesInOneIteration) {
  const auto r = scc::ecl_serial(graph::cycle_graph(32));
  EXPECT_EQ(r.metrics.outer_iterations, 1u);
  EXPECT_EQ(r.num_components, 1u);
  for (vid v = 0; v < 32; ++v) EXPECT_EQ(r.labels[v], 31u);
}

TEST(EclSerial, EdgeRemovalNeverRemovesIntraComponentEdges) {
  // After convergence all intra-SCC edges remain: edges_removed must equal
  // the number of inter-SCC edges exactly.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = graph::random_digraph(80, 200, rng);
    const auto oracle = scc::tarjan(g);
    graph::eid inter = 0;
    for (vid u = 0; u < g.num_vertices(); ++u)
      for (vid v : g.out_neighbors(u))
        if (oracle.labels[u] != oracle.labels[v]) ++inter;
    const auto r = scc::ecl_serial(g);
    EXPECT_EQ(r.metrics.edges_removed, inter);
  }
}

TEST(EclSerial, OuterIterationsScaleLogarithmicallyOnChains) {
  // §3.2: random IDs roughly halve the DAG depth each outer iteration. Our
  // chain has sequential IDs which is the favorable case; permuted IDs
  // still take ~log(d) iterations, far below d.
  Rng rng(11);
  const auto chain = graph::cycle_chain(256, 1);  // depth-256 DAG of trivial SCCs
  const auto permuted = graph::randomly_permute(chain, rng);
  const auto r = scc::ecl_serial(permuted.graph);
  EXPECT_EQ(r.num_components, 256u);
  EXPECT_LE(r.metrics.outer_iterations, 24u)  // log2(256) = 8, allow slack
      << "outer iterations did not shrink the DAG geometrically";
}

TEST(EclSerial, MatchesTarjanOnEverything) {
  for (const auto& g : all_test_graphs()) {
    const auto r = scc::ecl_serial(g.graph);
    const auto oracle = scc::tarjan(g.graph);
    EXPECT_EQ(r.num_components, oracle.num_components) << g.name;
    EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels)) << g.name;
  }
}

}  // namespace
}  // namespace ecl::test
