// Oracle cross-checks: every SCC algorithm in the registry must produce the
// same partition as Tarjan on every test graph, and Tarjan itself must pass
// the intrinsic (oracle-free) verifier. This mirrors the paper's
// methodology: "We verified the solutions of all ECL-SCC runs by comparing
// them to the results obtained by Tarjan's algorithm" (§4).

#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "core/registry.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"

namespace ecl::test {
namespace {

using scc::SccResult;

struct CrossCheckCase {
  std::string algorithm;
  std::string graph_name;
};

void PrintTo(const CrossCheckCase& c, std::ostream* os) {
  *os << c.algorithm << " on " << c.graph_name;
}

const NamedGraph& graph_by_name(const std::string& name) {
  static const std::vector<NamedGraph> graphs = all_test_graphs();
  for (const auto& g : graphs) {
    if (g.name == name) return g;
  }
  throw std::logic_error("unknown test graph " + name);
}

class CrossCheck : public ::testing::TestWithParam<CrossCheckCase> {};

TEST_P(CrossCheck, MatchesTarjanPartition) {
  const auto& [algorithm, graph_name] = GetParam();
  const graph::Digraph& g = graph_by_name(graph_name).graph;
  const SccResult oracle = scc::tarjan(g);
  const SccResult result = scc::run_algorithm(algorithm, g);

  EXPECT_EQ(result.num_components, oracle.num_components);
  EXPECT_TRUE(scc::same_partition(result.labels, oracle.labels))
      << algorithm << " disagrees with Tarjan on " << graph_name;
}

std::vector<CrossCheckCase> make_cases() {
  std::vector<CrossCheckCase> cases;
  for (const auto& algorithm : scc::algorithm_names()) {
    if (algorithm == "tarjan") continue;  // the oracle itself
    for (const auto& g : all_test_graphs()) cases.push_back({algorithm, g.name});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsAllGraphs, CrossCheck, ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<CrossCheckCase>& info) {
                           std::string name = info.param.algorithm + "_" + info.param.graph_name;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// The oracle itself must satisfy the intrinsic definition of an SCC
// decomposition on every test graph.
class TarjanIntrinsic : public ::testing::TestWithParam<std::string> {};

TEST_P(TarjanIntrinsic, SatisfiesSccDefinition) {
  const graph::Digraph& g = graph_by_name(GetParam()).graph;
  const SccResult oracle = scc::tarjan(g);
  const auto report = scc::verify_scc(g, oracle.labels);
  EXPECT_TRUE(report.ok) << report.message;
}

std::vector<std::string> graph_names() {
  std::vector<std::string> names;
  for (const auto& g : all_test_graphs()) names.push_back(g.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, TarjanIntrinsic, ::testing::ValuesIn(graph_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace ecl::test
