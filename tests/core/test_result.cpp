#include <gtest/gtest.h>

#include "core/result.hpp"

namespace ecl::test {
namespace {

using graph::vid;

TEST(SamePartition, IdenticalLabels) {
  const std::vector<vid> a{0, 1, 1, 2};
  EXPECT_TRUE(scc::same_partition(a, a));
}

TEST(SamePartition, RenamedLabels) {
  const std::vector<vid> a{0, 1, 1, 2};
  const std::vector<vid> b{3, 0, 0, 1};
  EXPECT_TRUE(scc::same_partition(a, b));
}

TEST(SamePartition, DifferentGrouping) {
  const std::vector<vid> a{0, 0, 1, 1};
  const std::vector<vid> b{0, 1, 1, 0};
  EXPECT_FALSE(scc::same_partition(a, b));
}

TEST(SamePartition, RefinementIsNotEquality) {
  const std::vector<vid> coarse{0, 0, 0};
  const std::vector<vid> fine{0, 0, 1};
  EXPECT_FALSE(scc::same_partition(coarse, fine));
  EXPECT_FALSE(scc::same_partition(fine, coarse));
}

TEST(SamePartition, SizeMismatch) {
  const std::vector<vid> a{0, 1};
  const std::vector<vid> b{0, 1, 2};
  EXPECT_FALSE(scc::same_partition(a, b));
}

TEST(SamePartition, Empty) {
  EXPECT_TRUE(scc::same_partition(std::vector<vid>{}, std::vector<vid>{}));
}

TEST(CanonicalizeLabels, RewritesToSmallestMember) {
  // Components {0,2} labeled 2 and {1,3} labeled 3 become labeled 0 and 1.
  std::vector<vid> labels{2, 3, 2, 3};
  scc::canonicalize_labels(labels);
  EXPECT_EQ(labels, (std::vector<vid>{0, 1, 0, 1}));
}

TEST(CanonicalizeLabels, IdempotentAndPartitionPreserving) {
  std::vector<vid> labels{5, 5, 2, 2, 5, 0};
  const std::vector<vid> original = labels;
  scc::canonicalize_labels(labels);
  EXPECT_TRUE(scc::same_partition(original, labels));
  std::vector<vid> again = labels;
  scc::canonicalize_labels(again);
  EXPECT_EQ(again, labels);
}

TEST(CanonicalizeLabels, MaxIdLabelsBecomeMinIdLabels) {
  // ECL-SCC convention (max member) -> canonical (min member).
  std::vector<vid> labels{4, 4, 4, 4, 4, 5};
  scc::canonicalize_labels(labels);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(labels[i], 0u);
  EXPECT_EQ(labels[5], 5u);
}

}  // namespace
}  // namespace ecl::test
