#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/test_graphs.hpp"
#include "core/ecl_scc.hpp"
#include "core/result.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "core/watchdog.hpp"
#include "device/device.hpp"
#include "device/fault.hpp"

// Checkpointed-resume tests (DESIGN.md §12): fault-free transparency (the
// checkpoint lever must not change a single label), recovery through a
// transient fault burst, ladder exhaustion under a permanent stall, and the
// watchdog interaction contract — the deadline budget is shared across
// resume attempts, and a re-armed watchdog treats replayed Phase-2 rounds
// exactly like a fresh run's.

namespace ecl::test {
namespace {

using device::FaultPlan;
using graph::Digraph;
using graph::vid;
using scc::EclOptions;
using scc::FixpointWatchdog;
using scc::SccResult;
using scc::SccStatus;
using scc::StallPolicy;
using scc::WatchdogConfig;

device::DeviceProfile profile_with(FaultPlan plan) {
  device::DeviceProfile profile = device::tiny_profile();
  profile.fault_plan = plan;
  return profile;
}

/// The bench_chaos_recovery burst: p = 1.0 delayed visibility confined to a
/// launch window.
FaultPlan burst_plan(std::uint64_t start_launch, std::uint64_t window) {
  FaultPlan p;
  p.seed = 0xb0757;
  p.delayed_visibility = true;
  p.store_defer_probability = 1.0;
  p.window_start_launch = start_launch;
  p.window_launches = window;
  return p;
}

std::vector<std::pair<std::string, Digraph>> recovery_graphs() {
  std::vector<std::pair<std::string, Digraph>> fams;
  fams.emplace_back("cycle_chain_16x16", graph::cycle_chain(16, 16));
  Rng rng(0x5ec0fe);
  fams.emplace_back("er_n2000_m8000", graph::random_digraph(2000, 8000, rng));
  fams.emplace_back("fig3", fig3_graph());
  return fams;
}

TEST(Recovery, CheckpointingIsLabelTransparentFaultFree) {
  // The checkpoint lever is pure bookkeeping on a clean run: labels must be
  // bit-identical with it on (dense cadence) and off.
  for (const auto& [name, g] : recovery_graphs()) {
    EclOptions off;
    off.checkpoint.enabled = false;
    device::Device dev_off(device::tiny_profile());
    const SccResult base = scc::ecl_scc(g, dev_off, off);
    ASSERT_TRUE(base.ok()) << name;

    EclOptions on;
    on.checkpoint.enabled = true;
    on.checkpoint.sweep_interval = 1;  // max snapshot pressure
    device::Device dev_on(device::tiny_profile());
    const SccResult ckpt = scc::ecl_scc(g, dev_on, on);
    ASSERT_TRUE(ckpt.ok()) << name;

    EXPECT_EQ(base.labels, ckpt.labels) << name << ": checkpointing changed labels";
    EXPECT_GT(ckpt.metrics.checkpoints_taken, 0u) << name;
    EXPECT_EQ(ckpt.metrics.resumes, 0u) << name << ": no faults, no replays";
    EXPECT_EQ(ckpt.metrics.rounds_replayed, 0u) << name;
    EXPECT_EQ(ckpt.metrics.recovery_seconds, 0.0) << name << ": no trip, no recovery span";
  }
}

/// Probes burst placements the way bench_chaos_recovery does: smallest
/// Phase-2 budget that never trips fault-free, then a late window that
/// actually overlaps a live fixpoint. Returns the first resume run that
/// landed as designed (trip + >=1 resume + converged).
std::optional<SccResult> probe_resumed_run(const Digraph& g) {
  EclOptions base;
  base.async_phase2 = false;  // one launch per sweep: deterministic windows
  std::uint64_t launches = 0;
  std::uint64_t budget = 0;
  {
    device::Device dev(device::tiny_profile());
    const SccResult dry = scc::ecl_scc(g, dev, base);
    if (!dry.ok()) return std::nullopt;
    launches = dry.metrics.kernel_launches;
  }
  for (const std::uint64_t b : {4ull, 5ull, 6ull, 9ull, 12ull, 18ull, 24ull, 36ull, 48ull}) {
    device::Device dev(device::tiny_profile());
    EclOptions o = base;
    o.watchdog.max_phase2_rounds = b;
    const SccResult r = scc::ecl_scc(g, dev, o);
    if (r.ok() && r.metrics.watchdog_trips == 0) {
      budget = b;
      break;
    }
  }
  if (budget == 0) return std::nullopt;

  EclOptions resume = base;
  resume.watchdog.max_phase2_rounds = budget;
  resume.checkpoint.enabled = true;
  resume.checkpoint.sweep_interval = 1;
  resume.checkpoint.max_resumes = 6;
  for (const double frac : {0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.55, 0.4, 0.25}) {
    const auto start = static_cast<std::uint64_t>(frac * static_cast<double>(launches));
    device::Device dev(profile_with(burst_plan(start, budget + 2)));
    SccResult r = scc::ecl_scc(g, dev, resume);
    if (r.ok() && !r.metrics.serial_fallback && r.metrics.watchdog_trips >= 1 &&
        r.metrics.resumes >= 1)
      return r;
  }
  return std::nullopt;
}

TEST(Recovery, ResumesThroughTransientBurstAndConverges) {
  Rng rng(0x5ec0fe);
  const Digraph g = graph::random_digraph(2000, 8000, rng);
  const SccResult oracle = scc::tarjan(g);
  const auto resumed = probe_resumed_run(g);
  ASSERT_TRUE(resumed.has_value()) << "no burst placement produced a checkpointed resume";
  EXPECT_TRUE(scc::same_partition(resumed->labels, oracle.labels));
  EXPECT_EQ(resumed->num_components, oracle.num_components);
  EXPECT_TRUE(scc::certify_scc(g, resumed->labels).ok);
  EXPECT_GT(resumed->metrics.checkpoints_taken, 0u);
  EXPECT_GT(resumed->metrics.recovery_seconds, 0.0)
      << "a tripped-then-recovered run must report its recovery span";
  EXPECT_FALSE(resumed->metrics.serial_fallback)
      << "rung 1 handled the burst; the serial rung must not have run";
}

TEST(Recovery, PermanentStallExhaustsResumesThenFallsBack) {
  // An unwindowed p=1.0 stall defeats every replay: the ladder's rung 1
  // must burn exactly max_resumes attempts, then hand a complete labeling
  // to the serial fallback with the stall error preserved.
  const Digraph g = graph::cycle_chain(12, 6);
  const SccResult oracle = scc::tarjan(g);
  FaultPlan plan;
  plan.seed = 0xdead;
  plan.delayed_visibility = true;
  plan.store_defer_probability = 1.0;

  EclOptions o;
  o.async_phase2 = false;
  o.watchdog.max_phase2_rounds = 6;  // trip fast
  o.checkpoint.enabled = true;
  o.checkpoint.sweep_interval = 1;
  o.checkpoint.max_resumes = 2;
  device::Device dev(profile_with(plan));
  const SccResult r = scc::ecl_scc(g, dev, o);
  EXPECT_EQ(r.metrics.resumes, 2u) << "rung 1 must be bounded by max_resumes";
  EXPECT_FALSE(r.ok()) << "the stall error must be preserved through the fallback";
  EXPECT_TRUE(r.metrics.serial_fallback);
  ASSERT_EQ(r.labels.size(), g.num_vertices());
  EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels));

  // Same scenario with kReturnError: partial labels, no fallback.
  o.stall_policy = StallPolicy::kReturnError;
  device::Device dev2(profile_with(plan));
  const SccResult r2 = scc::ecl_scc(g, dev2, o);
  EXPECT_FALSE(r2.ok());
  EXPECT_FALSE(r2.metrics.serial_fallback);
  EXPECT_EQ(r2.num_components, 0u);
}

TEST(Recovery, DeadlineBudgetIsSharedAcrossResumes) {
  // The watchdog deadline is ABSOLUTE: re-arming on resume re-emplaces the
  // watchdog with the same config, so replays never extend the budget. A
  // permanently stalled run with a near deadline and a generous resume
  // allowance must stop resuming once the deadline passes and report
  // kDeadlineExceeded — never a deadline-violating kOk.
  const Digraph g = graph::cycle_chain(12, 6);
  FaultPlan plan;
  plan.seed = 0xdead;
  plan.delayed_visibility = true;
  plan.store_defer_probability = 1.0;

  EclOptions o;
  o.async_phase2 = false;
  o.watchdog.max_phase2_rounds = 6;
  o.watchdog.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  o.checkpoint.enabled = true;
  o.checkpoint.sweep_interval = 1;
  o.checkpoint.max_resumes = 1000000;     // deadline, not the count, must stop the ladder
  o.max_outer_iterations = 1000000000ull;  // and not the iteration guard either
  o.stall_policy = StallPolicy::kReturnError;
  device::Device dev(profile_with(plan));
  const SccResult r = scc::ecl_scc(g, dev, o);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error.code, SccStatus::kDeadlineExceeded) << r.error.message;
  EXPECT_GE(r.metrics.resumes, 1u)
      << "the ladder should have replayed before the deadline cut it off";
}

TEST(Recovery, ExpiredDeadlineBlocksResumeEntirely) {
  const Digraph g = graph::cycle_chain(12, 6);
  EclOptions o;
  o.watchdog.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  o.checkpoint.enabled = true;
  o.stall_policy = StallPolicy::kReturnError;
  device::Device dev(device::tiny_profile());
  const SccResult r = scc::ecl_scc(g, dev, o);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error.code, SccStatus::kDeadlineExceeded);
  EXPECT_EQ(r.metrics.resumes, 0u) << "replaying past an expired deadline burns budget for nothing";
}

// ---- Watchdog re-arm semantics on resume -----------------------------------
//
// ecl_scc re-arms by re-emplacing the FixpointWatchdog with the same config
// (core/ecl_scc.cpp). These tests pin the properties the resume path relies
// on, using the same re-emplacement idiom.

TEST(RecoveryWatchdog, ReArmRestoresPhase2BudgetAndBaseline) {
  std::optional<FixpointWatchdog> wd;
  WatchdogConfig cfg{.max_phase2_rounds = 3};
  wd.emplace(cfg, 100);
  EXPECT_EQ(wd->phase2_round_budget(), 3u);
  wd->observe_phase2_round(80);
  wd->observe_phase2_round(40);  // shrinking: progress observed
  wd->mark_stalled();            // budget exhausted, solver declares the trip
  EXPECT_TRUE(wd->stalled());

  wd.emplace(cfg, 100);  // resume: fresh counters, full budget
  EXPECT_FALSE(wd->stalled());
  EXPECT_EQ(wd->phase2_round_budget(), 3u);
}

TEST(RecoveryWatchdog, ReplayedRoundsReArmWallClockOnlyOnShrink) {
  // After a resume the first replayed frontier is a BASELINE observation —
  // it must not re-arm the stall clock (deferred stores re-stamping the
  // same frontier forever would otherwise look alive). Only a strictly
  // shrinking replayed frontier counts as progress, exactly like a fresh
  // run's Phase 2.
  std::optional<FixpointWatchdog> wd;
  WatchdogConfig cfg{.stall_seconds = 0.02};
  wd.emplace(cfg, 10);
  wd->observe_phase2_round(100);
  wd->observe_phase2_round(60);

  wd.emplace(cfg, 10);  // resume
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(wd->expired());
  wd->observe_phase2_round(60);  // replayed frontier: baseline, no re-arm
  EXPECT_TRUE(wd->expired());
  wd->observe_phase2_round(30);  // replay makes real progress
  EXPECT_FALSE(wd->expired());
}

TEST(RecoveryWatchdog, ReArmPreservesAbsoluteDeadline) {
  WatchdogConfig cfg;
  cfg.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(15);
  std::optional<FixpointWatchdog> wd;
  wd.emplace(cfg, 10);
  EXPECT_FALSE(wd->deadline_expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  wd.emplace(cfg, 10);  // resume re-arm: same config, same absolute deadline
  EXPECT_TRUE(wd->deadline_expired()) << "re-arming must not extend the deadline budget";
}

}  // namespace
}  // namespace ecl::test
