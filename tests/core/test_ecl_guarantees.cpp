// Direct tests of the paper's §3.2 guarantees: which SCCs an outer
// iteration detects — and which edges Phase 3 removes — is fully
// determined by the vertex-ID layout, so adversarial relabelings give
// exact, closed-form iteration counts. Deriving them:
//
//  * v_in converges to the max ID over ancestors-and-self, v_out to the
//    max over descendants-and-self;
//  * an edge survives Phase 3 iff BOTH endpoint signatures match, so a
//    cluster splits wherever a prefix/suffix maximum changes — clusters
//    fragment much faster than "one max SCC per iteration" suggests.

#include <gtest/gtest.h>

#include <numeric>

#include "common/test_graphs.hpp"
#include "core/ecl_scc.hpp"
#include "core/ecl_serial.hpp"
#include "graph/permute.hpp"

namespace ecl::test {
namespace {

using graph::vid;

graph::Digraph relabeled_chain(vid k, vid len, const std::vector<vid>& perm) {
  return graph::apply_permutation(graph::cycle_chain(k, len), perm);
}

TEST(EclGuarantees, DisjointCyclesConvergeInOneIteration) {
  // Every SCC is the max SCC of its own (singleton) cluster: one iteration.
  graph::EdgeList e;
  for (vid c = 0; c < 20; ++c) {
    const vid base = c * 6;
    for (vid i = 0; i < 6; ++i) e.add(base + i, base + (i + 1) % 6);
  }
  const graph::Digraph g(120, e);
  const auto r = scc::ecl_serial(g);
  EXPECT_EQ(r.metrics.outer_iterations, 1u);
  EXPECT_EQ(r.num_components, 20u);
}

TEST(EclGuarantees, IncreasingIdChainTakesExactlyTwoIterations) {
  // IDs increase along the SCC chain: v_out is the global max everywhere
  // (equal), but v_in is each SCC's own max (distinct), so Phase 3 removes
  // EVERY bridge in iteration 1; iteration 2 detects all isolated SCCs.
  constexpr vid k = 12;
  constexpr vid len = 3;
  std::vector<vid> identity(k * len);
  std::iota(identity.begin(), identity.end(), 0);
  const auto r = scc::ecl_serial(relabeled_chain(k, len, identity));
  EXPECT_EQ(r.metrics.outer_iterations, 2u);
  EXPECT_EQ(r.num_components, k);
}

TEST(EclGuarantees, DecreasingIdChainTakesExactlyTwoIterations) {
  // Mirror image: v_in is the global max everywhere, v_out is each SCC's
  // own max — again every bridge dies in iteration 1.
  constexpr vid k = 12;
  constexpr vid len = 3;
  std::vector<vid> reversed(k * len);
  for (vid v = 0; v < k * len; ++v) reversed[v] = k * len - 1 - v;
  const auto r = scc::ecl_serial(relabeled_chain(k, len, reversed));
  EXPECT_EQ(r.metrics.outer_iterations, 2u);
  EXPECT_EQ(r.num_components, k);
}

/// Path v0 -> v1 -> ... -> v_{k-1} with IDs (k-1, 0, 1, ..., k-2): the
/// global max sits at the head and the rest increase.
graph::Digraph max_at_head_path(vid k) {
  std::vector<vid> perm(k);
  perm[0] = k - 1;
  for (vid v = 1; v < k; ++v) perm[v] = v - 1;
  return graph::apply_permutation(graph::path_graph(k), perm);
}

TEST(EclGuarantees, MaxAtHeadPathTakesExactlyThreeIterations) {
  // Iteration 1: v_in == global max everywhere, v_out == global max only
  // at the head -> only the head is detected and only its out-edge is
  // removed. Iteration 2: the remainder is an increasing chain -> all its
  // edges are removed, only its last vertex detected... plus the rest in
  // iteration 3. Exact count: 3.
  const auto r = scc::ecl_serial(max_at_head_path(40));
  EXPECT_EQ(r.metrics.outer_iterations, 3u);
  EXPECT_EQ(r.num_components, 40u);
}

TEST(EclGuarantees, RandomIdsStayNearLogarithmic) {
  // §3: random vertex IDs fragment the cluster at every prefix/suffix
  // maximum, giving ~log(d) iterations on a depth-64 chain.
  constexpr vid k = 64;
  Rng rng(2718);
  std::uint64_t total = 0;
  std::uint64_t worst = 0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto perm = graph::random_permutation(k * 2, rng);
    const auto g = relabeled_chain(k, 2, perm);
    const auto iters = scc::ecl_serial(g).metrics.outer_iterations;
    total += iters;
    worst = std::max(worst, iters);
  }
  EXPECT_LT(total / double(kTrials), 10.0);
  EXPECT_LE(worst, 16u);
  EXPECT_GE(total, 2u * kTrials) << "chains always need at least 2 iterations";
}

TEST(EclGuarantees, ParallelVersionMatchesIterationModel) {
  // The optimized device implementation obeys the same outer-iteration
  // semantics as Algorithm 1 on the closed-form layouts.
  constexpr vid k = 10;
  constexpr vid len = 2;
  std::vector<vid> identity(k * len);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(scc::ecl_scc(relabeled_chain(k, len, identity)).metrics.outer_iterations, 2u);
  EXPECT_EQ(scc::ecl_scc(max_at_head_path(30)).metrics.outer_iterations, 3u);
}

TEST(EclGuarantees, MinMaxVariantSavesAnIterationOnMaxAtHeadPath) {
  // With min signatures too, iteration 1 additionally detects the min SCC
  // (the vertex with ID 0, right behind the head) and splits the
  // increasing remainder by its min signatures: 2 iterations instead of 3.
  scc::EclOptions opts;
  opts.min_max_signatures = true;
  const auto r = scc::ecl_scc(max_at_head_path(40), opts);
  EXPECT_EQ(r.num_components, 40u);
  EXPECT_EQ(r.metrics.outer_iterations, 2u);
}

}  // namespace
}  // namespace ecl::test
