// Hot-path differential suite (ctest label: perf).
//
// The DESIGN.md §10 levers — chunked worklist reservation, frontier-gated
// propagation, padded signature slots — are pure performance transforms:
// every one of the 8 lever combinations must produce BIT-IDENTICAL labels
// to the seed (all-levers-off) configuration, on every graph family, both
// fault-free and under seeded chaos plans. Identity of raw labels (not just
// partitions) holds because ECL-SCC's max-ID labeling is a function of the
// graph alone: whichever schedule the levers induce, the converged
// signatures are the unique fixpoint and every component is named by its
// maximum member.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/test_graphs.hpp"
#include "core/ecl_scc.hpp"
#include "core/tarjan.hpp"
#include "device/fault.hpp"

namespace ecl::test {
namespace {

using device::FaultPlan;
using scc::EclOptions;
using scc::SccResult;

struct Family {
  std::string name;
  Digraph graph;
};

std::vector<Family> families() {
  std::vector<Family> fs;
  fs.push_back({"cycle_chain_12x6", graph::cycle_chain(12, 6)});
  fs.push_back({"grid_dag_10x10", graph::grid_dag(10, 10)});
  {
    Rng rng(0x40710'01);
    fs.push_back({"er_n150_m450", graph::random_digraph(150, 450, rng)});
  }
  {
    Rng rng(0x40710'02);
    graph::SccProfile profile;
    profile.num_vertices = 200;
    profile.giant_fraction = 0.4;
    profile.size2_sccs = 10;
    profile.mid_sccs = 3;
    profile.dag_depth = 6;
    fs.push_back({"powerlaw_giant", graph::scc_profile_graph(profile, rng)});
  }
  return fs;
}

EclOptions lever_combo(unsigned mask) {
  EclOptions opts = scc::ecl_hotpath_levers_off();
  opts.chunked_worklist = mask & 1;
  opts.frontier_gating = mask & 2;
  opts.padded_signatures = mask & 4;
  return opts;
}

std::string combo_name(unsigned mask) {
  return std::string(mask & 1 ? "chunk" : "-") + "/" + (mask & 2 ? "frontier" : "-") + "/" +
         (mask & 4 ? "pad" : "-");
}

device::DeviceProfile hotpath_profile(FaultPlan plan = {}) {
  device::DeviceProfile profile = device::tiny_profile();  // zero launch overhead
  profile.fault_plan = plan;
  return profile;
}

TEST(HotpathDifferential, AllLeverCombosMatchSeedLabelsBitForBit) {
  for (const auto& family : families()) {
    device::Device dev(hotpath_profile());
    const SccResult seed = scc::ecl_scc(family.graph, dev, lever_combo(0));
    ASSERT_TRUE(seed.ok()) << family.name;
    const SccResult oracle = scc::tarjan(family.graph);
    ASSERT_TRUE(scc::same_partition(seed.labels, oracle.labels)) << family.name;

    for (unsigned mask = 1; mask < 8; ++mask) {
      const SccResult r = scc::ecl_scc(family.graph, dev, lever_combo(mask));
      ASSERT_TRUE(r.ok()) << family.name << " " << combo_name(mask);
      EXPECT_EQ(r.labels, seed.labels)
          << family.name << ": combo " << combo_name(mask)
          << " changed the labeling (levers must be pure perf transforms)";
      EXPECT_EQ(r.num_components, seed.num_components) << family.name;
    }
  }
}

TEST(HotpathDifferential, FrontierGatingSkipsEdgesAndCountsThem) {
  // On a deep DAG the gate must actually fire (quiescent regions appear as
  // the fixpoint spreads) and the savings must be visible in the metrics.
  const auto g = graph::grid_dag(12, 12);
  device::Device dev(hotpath_profile());
  const SccResult gated = scc::ecl_scc(g, dev, lever_combo(2));
  ASSERT_TRUE(gated.ok());
  EXPECT_GT(gated.metrics.edges_skipped, 0u);
  EXPECT_GT(gated.metrics.frontier_rounds, 0u);
  const SccResult ungated = scc::ecl_scc(g, dev, lever_combo(0));
  EXPECT_EQ(ungated.metrics.edges_skipped, 0u);
  EXPECT_EQ(ungated.metrics.frontier_rounds, 0u);
}

TEST(HotpathDifferential, ChaosPlansPreserveLabelsAcrossLevers) {
  // Same seeded fault plan, levers on vs off: the fault draw sequences
  // diverge (a gated run makes fewer stores), but the converged labeling
  // may not. Recovered runs (serial fallback) keep the max-ID convention,
  // so raw labels stay comparable even when a plan trips the watchdog.
  for (const auto& family : families()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const FaultPlan plan = FaultPlan::from_seed(seed);
      device::Device dev_on(hotpath_profile(plan));
      device::Device dev_off(hotpath_profile(plan));
      const SccResult on = scc::ecl_scc(family.graph, dev_on, EclOptions{});
      const SccResult off = scc::ecl_scc(family.graph, dev_off, lever_combo(0));
      const std::string ctx = family.name + " " + plan.describe();
      ASSERT_EQ(on.labels.size(), family.graph.num_vertices()) << ctx;
      ASSERT_EQ(off.labels.size(), family.graph.num_vertices()) << ctx;
      // Default stall policy completes every labeling (serial fallback).
      EXPECT_EQ(on.labels, off.labels) << ctx;
      const SccResult oracle = scc::tarjan(family.graph);
      EXPECT_TRUE(scc::same_partition(on.labels, oracle.labels)) << ctx;
    }
  }
}

TEST(HotpathDifferential, ChunkedPhase3RemovesExactlyTheSameEdges) {
  // The chunked appender must commit the same surviving edge multiset as
  // the per-edge path: compare worklist shrinkage metrics across a run.
  for (const auto& family : families()) {
    device::Device dev(hotpath_profile());
    EclOptions chunked = lever_combo(1);
    EclOptions plain = lever_combo(0);
    const SccResult a = scc::ecl_scc(family.graph, dev, chunked);
    const SccResult b = scc::ecl_scc(family.graph, dev, plain);
    ASSERT_TRUE(a.ok() && b.ok()) << family.name;
    EXPECT_EQ(a.metrics.edges_removed, b.metrics.edges_removed) << family.name;
    EXPECT_EQ(a.metrics.outer_iterations, b.metrics.outer_iterations) << family.name;
    EXPECT_EQ(a.metrics.edges_dropped, 0u) << family.name;
  }
}

}  // namespace
}  // namespace ecl::test
