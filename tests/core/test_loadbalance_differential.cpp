// Load-balance differential suite (ctest label: perf).
//
// The DESIGN.md §11 levers — work-stealing persistent workers, merge-path
// edge partitioning, hub-clustering reorder — are pure performance
// transforms: every one of the 8 lever combinations must produce
// BIT-IDENTICAL labels to the seed (all-levers-off) configuration, on every
// graph family, both fault-free and under seeded chaos plans. Identity of
// raw labels (not just partitions) holds because ECL-SCC's max-ID labeling
// is a function of the graph alone: partitioning only changes WHICH block
// visits an edge, stealing only changes WHEN, and the reordered run renames
// every component back to its maximum ORIGINAL member.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/test_graphs.hpp"
#include "core/ecl_scc.hpp"
#include "core/tarjan.hpp"
#include "device/fault.hpp"

namespace ecl::test {
namespace {

using device::FaultPlan;
using scc::EclOptions;
using scc::SccResult;

struct Family {
  std::string name;
  Digraph graph;
};

std::vector<Family> families() {
  std::vector<Family> fs;
  fs.push_back({"cycle_chain_12x6", graph::cycle_chain(12, 6)});
  fs.push_back({"grid_dag_10x10", graph::grid_dag(10, 10)});
  {
    Rng rng(0x40710'01);
    fs.push_back({"er_n150_m450", graph::random_digraph(150, 450, rng)});
  }
  {
    Rng rng(0x40710'02);
    graph::SccProfile profile;
    profile.num_vertices = 200;
    profile.giant_fraction = 0.4;
    profile.size2_sccs = 10;
    profile.mid_sccs = 3;
    profile.dag_depth = 6;
    fs.push_back({"powerlaw_giant", graph::scc_profile_graph(profile, rng)});
  }
  return fs;
}

/// The §11 lever cube on top of the full PR-4 hot path: bit 0 = work
/// stealing, bit 1 = merge-path edge balance, bit 2 = hub reorder. Mask 0
/// is the `ecl-hotpath` baseline configuration; mask 7 is the default.
EclOptions lever_combo(unsigned mask) {
  EclOptions opts = scc::ecl_loadbalance_levers_off();
  opts.work_stealing = mask & 1;
  opts.edge_balanced = mask & 2;
  opts.hub_reorder = mask & 4;
  return opts;
}

std::string combo_name(unsigned mask) {
  return std::string(mask & 1 ? "steal" : "-") + "/" + (mask & 2 ? "edgebal" : "-") + "/" +
         (mask & 4 ? "reorder" : "-");
}

device::DeviceProfile loadbalance_profile(FaultPlan plan = {}) {
  device::DeviceProfile profile = device::tiny_profile();  // zero launch overhead
  profile.fault_plan = plan;
  return profile;
}

TEST(LoadbalanceDifferential, AllLeverCombosMatchSeedLabelsBitForBit) {
  for (const auto& family : families()) {
    device::Device dev(loadbalance_profile(), /*workers=*/4);
    const SccResult seed = scc::ecl_scc(family.graph, dev, lever_combo(0));
    ASSERT_TRUE(seed.ok()) << family.name;
    const SccResult oracle = scc::tarjan(family.graph);
    ASSERT_TRUE(scc::same_partition(seed.labels, oracle.labels)) << family.name;

    for (unsigned mask = 1; mask < 8; ++mask) {
      const SccResult r = scc::ecl_scc(family.graph, dev, lever_combo(mask));
      ASSERT_TRUE(r.ok()) << family.name << " " << combo_name(mask);
      EXPECT_EQ(r.labels, seed.labels)
          << family.name << ": combo " << combo_name(mask)
          << " changed the labeling (levers must be pure perf transforms)";
      EXPECT_EQ(r.num_components, seed.num_components) << family.name;
    }
  }
}

TEST(LoadbalanceDifferential, CombosAlsoMatchTheFullSeedConfiguration) {
  // Transitively: every §11 combo must also agree with the all-six-levers-
  // off seed (ecl-classic), pinning the whole lever stack to one labeling.
  for (const auto& family : families()) {
    device::Device dev(loadbalance_profile(), /*workers=*/4);
    const SccResult classic = scc::ecl_scc(family.graph, dev, scc::ecl_hotpath_levers_off());
    ASSERT_TRUE(classic.ok()) << family.name;
    const SccResult all_on = scc::ecl_scc(family.graph, dev, EclOptions{});
    ASSERT_TRUE(all_on.ok()) << family.name;
    EXPECT_EQ(all_on.labels, classic.labels) << family.name;
  }
}

TEST(LoadbalanceDifferential, ChaosPlansPreserveLabelsAcrossLevers) {
  // Same seeded fault plan, each §11 combo vs the hotpath baseline: the
  // fault draw sequences diverge (different blocks make different store
  // sequences), but the converged labeling may not. Recovered runs (serial
  // fallback) keep the max-ID convention, so raw labels stay comparable
  // even when a plan trips the watchdog.
  for (const auto& family : families()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const FaultPlan plan = FaultPlan::from_seed(seed);
      device::Device dev_off(loadbalance_profile(plan), /*workers=*/4);
      const SccResult off = scc::ecl_scc(family.graph, dev_off, lever_combo(0));
      ASSERT_EQ(off.labels.size(), family.graph.num_vertices());
      for (unsigned mask = 1; mask < 8; ++mask) {
        device::Device dev_on(loadbalance_profile(plan), /*workers=*/4);
        const SccResult on = scc::ecl_scc(family.graph, dev_on, lever_combo(mask));
        const std::string ctx = family.name + " " + combo_name(mask) + " " + plan.describe();
        ASSERT_EQ(on.labels.size(), family.graph.num_vertices()) << ctx;
        // Default stall policy completes every labeling (serial fallback).
        EXPECT_EQ(on.labels, off.labels) << ctx;
      }
      const SccResult oracle = scc::tarjan(family.graph);
      EXPECT_TRUE(scc::same_partition(off.labels, oracle.labels)) << family.name;
    }
  }
}

TEST(LoadbalanceDifferential, Phase3RemovalsIdenticalAcrossSchedulingLevers) {
  // Holding the graph fixed (hub_reorder off — a reordered run legitimately
  // converges in different rounds), the scheduling levers may change which
  // block removes an edge but never WHICH edges get removed or how many
  // outer iterations the fixpoint takes.
  for (const auto& family : families()) {
    device::Device dev(loadbalance_profile(), /*workers=*/4);
    const SccResult base = scc::ecl_scc(family.graph, dev, lever_combo(0));
    ASSERT_TRUE(base.ok()) << family.name;
    for (unsigned mask = 1; mask < 4; ++mask) {  // steal, edgebal, both
      const SccResult r = scc::ecl_scc(family.graph, dev, lever_combo(mask));
      ASSERT_TRUE(r.ok()) << family.name << " " << combo_name(mask);
      EXPECT_EQ(r.metrics.edges_removed, base.metrics.edges_removed)
          << family.name << " " << combo_name(mask);
      EXPECT_EQ(r.metrics.outer_iterations, base.metrics.outer_iterations)
          << family.name << " " << combo_name(mask);
      EXPECT_EQ(r.metrics.edges_dropped, 0u) << family.name;
    }
  }
}

TEST(LoadbalanceDifferential, WorkStealingCountersAccountForEveryBlock) {
  // With stealing on, every launched block is claimed exactly once — owned
  // or stolen — and the pool-level counters prove the path was exercised.
  device::Device dev(loadbalance_profile(), /*workers=*/4);
  const auto g = graph::cycle_chain(12, 6);
  const std::uint64_t claimed_before = dev.pool().claimed_tasks();
  const std::uint64_t stolen_before = dev.pool().stolen_tasks();
  const std::uint64_t blocks_before = dev.stats().blocks_executed;
  const SccResult r = scc::ecl_scc(g, dev, lever_combo(1));  // stealing only
  ASSERT_TRUE(r.ok());
  const std::uint64_t claimed = dev.pool().claimed_tasks() - claimed_before;
  const std::uint64_t stolen = dev.pool().stolen_tasks() - stolen_before;
  const std::uint64_t blocks = dev.stats().blocks_executed - blocks_before;
  EXPECT_GT(blocks, 0u);
  EXPECT_EQ(claimed + stolen, blocks);
}

TEST(LoadbalanceDifferential, EdgeBalanceReducesRecordedImbalance) {
  // A hub-heavy graph under the classic block-cyclic distribution leaves
  // the imbalance metric above the balanced run's: equal contiguous spans
  // bound every block's share at ceil(m / blocks).
  Rng rng(0x40710'03);
  graph::SccProfile profile;
  profile.num_vertices = 400;
  profile.giant_fraction = 0.5;
  profile.power_law = true;
  const auto g = graph::scc_profile_graph(profile, rng);

  device::Device balanced(loadbalance_profile());
  EclOptions on = lever_combo(2);
  ASSERT_TRUE(scc::ecl_scc(g, balanced, on).ok());

  device::Device classic(loadbalance_profile());
  ASSERT_TRUE(scc::ecl_scc(g, classic, lever_combo(0)).ok());

  EXPECT_LE(balanced.stats().block_imbalance(), classic.stats().block_imbalance() + 1e-9);
  EXPECT_FALSE(balanced.stats().block_edge_work.empty());
}

}  // namespace
}  // namespace ecl::test
