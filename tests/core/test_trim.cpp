#include <gtest/gtest.h>

#include <numeric>

#include "common/test_graphs.hpp"
#include "core/tarjan.hpp"
#include "core/trim.hpp"
#include "graph/scc_stats.hpp"

namespace ecl::test {
namespace {

using graph::Digraph;
using graph::vid;
using scc::TrimView;

struct TrimFixture {
  explicit TrimFixture(Digraph graph)
      : g(std::move(graph)),
        rev(g.reverse()),
        active(g.num_vertices(), 1),
        labels(g.num_vertices(), graph::kInvalidVid) {}

  TrimView view() { return TrimView{g, rev, {}, active, labels}; }

  Digraph g;
  Digraph rev;
  std::vector<std::uint8_t> active;
  std::vector<vid> labels;
};

TEST(Trim1, RemovesEntirePath) {
  TrimFixture f(graph::path_graph(32));
  const vid removed = scc::trim1(f.view());
  EXPECT_EQ(removed, 32u);
  for (vid v = 0; v < 32; ++v) {
    EXPECT_EQ(f.active[v], 0);
    EXPECT_EQ(f.labels[v], v);  // trivial SCC labeled by itself
  }
}

TEST(Trim1, RemovesEntireGridDag) {
  TrimFixture f(graph::grid_dag(8, 8));
  EXPECT_EQ(scc::trim1(f.view()), 64u);
}

TEST(Trim1, LeavesCycleUntouched) {
  TrimFixture f(graph::cycle_graph(10));
  EXPECT_EQ(scc::trim1(f.view()), 0u);
  for (vid v = 0; v < 10; ++v) EXPECT_EQ(f.active[v], 1);
}

TEST(Trim1, PeelsAroundCycle) {
  // path -> cycle -> path: only the cycle survives.
  graph::EdgeList e;
  for (vid v = 0; v + 1 < 5; ++v) e.add(v, v + 1);   // 0..4 chain
  e.add(4, 5);
  e.add(5, 6);
  e.add(6, 4);                                        // cycle {4,5,6}
  e.add(6, 7);
  e.add(7, 8);                                        // tail
  TrimFixture f(Digraph(9, e));
  EXPECT_EQ(scc::trim1(f.view()), 6u);
  EXPECT_EQ(f.active[4] + f.active[5] + f.active[6], 3);
}

TEST(Trim1, SinglePassIsOnlyOneSweep) {
  // In a path, one pass removes at least the endpoints; iteration finishes.
  TrimFixture f(graph::path_graph(8));
  const vid first = scc::trim1_pass(f.view());
  EXPECT_GT(first, 0u);
}

TEST(Trim1, SelfLoopVertexIsStillTrivial) {
  graph::EdgeList e;
  e.add(0, 0);
  e.add(0, 1);
  TrimFixture f(Digraph(2, e));
  // Self loops do not make a vertex non-trivial; both are size-1 SCCs.
  EXPECT_EQ(scc::trim1(f.view()), 2u);
}

TEST(Trim2, DetectsIsolatedPair) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 0);
  TrimFixture f(Digraph(2, e));
  EXPECT_EQ(scc::trim2_pass(f.view()), 2u);
  EXPECT_EQ(f.labels[0], 1u);
  EXPECT_EQ(f.labels[1], 1u);  // labeled by the max member
}

TEST(Trim2, DetectsPairWithOutgoingEdges) {
  // 0 <-> 1 with extra outgoing edges (pattern (a): no external in-edges).
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 0);
  e.add(0, 2);
  e.add(1, 3);
  TrimFixture f(Digraph(4, e));
  EXPECT_EQ(scc::trim2_pass(f.view()), 2u);
  EXPECT_EQ(f.labels[0], 1u);
}

TEST(Trim2, DetectsPairWithIncomingEdges) {
  // pattern (b): external in-edges but no external out-edges.
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 0);
  e.add(2, 0);
  e.add(3, 1);
  TrimFixture f(Digraph(4, e));
  EXPECT_EQ(scc::trim2_pass(f.view()), 2u);
}

TEST(Trim2, IgnoresPairInsideLargerComponent) {
  // 0 <-> 1 but both on a 4-cycle: SCC is {0,1,2,3}, trim must not fire.
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 0);
  e.add(1, 2);
  e.add(2, 3);
  e.add(3, 0);
  TrimFixture f(Digraph(4, e));
  EXPECT_EQ(scc::trim2_pass(f.view()), 0u);
}

TEST(Trim3, DetectsTriangle) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  TrimFixture f(Digraph(3, e));
  EXPECT_EQ(scc::trim3_pass(f.view()), 3u);
  EXPECT_EQ(f.labels[0], 2u);
  EXPECT_EQ(f.labels[1], 2u);
  EXPECT_EQ(f.labels[2], 2u);
}

TEST(Trim3, DetectsTriangleWithOnlyOutgoingExtras) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  e.add(1, 3);  // external out-edge is allowed
  TrimFixture f(Digraph(4, e));
  EXPECT_EQ(scc::trim3_pass(f.view()), 3u);
}

TEST(Trim3, SkipsTriangleWithBothExternalDirections) {
  // One external in-edge AND one external out-edge: not safely detectable
  // by a local pattern (the triple could be part of a larger SCC).
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  e.add(3, 0);  // external in
  e.add(1, 4);  // external out
  TrimFixture f(Digraph(5, e));
  EXPECT_EQ(scc::trim3_pass(f.view()), 0u);
}

TEST(Trim3, SkipsNonStronglyConnectedTriple) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(0, 2);
  e.add(1, 2);  // DAG triple
  TrimFixture f(Digraph(3, e));
  EXPECT_EQ(scc::trim3_pass(f.view()), 0u);
}

TEST(TrimCombined, Fig2GraphFullyTrimmed) {
  TrimFixture f(fig2_graph());
  vid removed = scc::trim1(f.view());     // vertex 0
  removed += scc::trim2_pass(f.view());   // pair {1,2}
  removed += scc::trim3_pass(f.view());   // ring {3,4,5}
  EXPECT_EQ(removed, 6u);
  EXPECT_EQ(f.labels[0], 0u);
  EXPECT_EQ(f.labels[1], 2u);
  EXPECT_EQ(f.labels[2], 2u);
  EXPECT_EQ(f.labels[3], 5u);
  EXPECT_EQ(f.labels[5], 5u);
}

TEST(TrimCombined, NeverSplitsRealComponents) {
  // Property: on random graphs, any vertex the trims label must form a
  // complete SCC according to Tarjan.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const Digraph g = graph::random_digraph(120, 240, rng);
    const auto oracle = scc::tarjan(g);
    std::vector<vid> sizes(oracle.num_components, 0);
    for (vid v = 0; v < g.num_vertices(); ++v) ++sizes[oracle.labels[v]];

    TrimFixture f(g);
    scc::trim1(f.view());
    scc::trim2_pass(f.view());
    scc::trim3_pass(f.view());

    for (vid v = 0; v < g.num_vertices(); ++v) {
      if (f.active[v]) continue;
      // Every member of v's oracle component must be trimmed with the same
      // label, and the component size must match the trim size class.
      const vid oracle_comp = oracle.labels[v];
      ASSERT_LE(sizes[oracle_comp], 3u) << "trimmed a large SCC member";
      for (vid u = 0; u < g.num_vertices(); ++u) {
        if (oracle.labels[u] == oracle_comp) {
          ASSERT_EQ(f.active[u], 0) << "partially trimmed component";
          ASSERT_EQ(f.labels[u], f.labels[v]);
        }
      }
    }
  }
}

TEST(TrimColors, RespectsColorPartition) {
  // A 2-cycle whose endpoints are in different color classes cannot be an
  // SCC under the FB invariant, so trim-2 must not fire, and trim-1 sees
  // both vertices as having no same-color neighbors.
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 0);
  const Digraph g(2, e);
  const Digraph rev = g.reverse();
  std::vector<std::uint64_t> color{1, 2};
  std::vector<std::uint8_t> active(2, 1);
  std::vector<vid> labels(2, graph::kInvalidVid);
  TrimView view{g, rev, color, active, labels};
  EXPECT_EQ(scc::trim2_pass(view), 0u);
  EXPECT_EQ(scc::trim1_pass(view), 2u);  // both become trivial SCCs
}

}  // namespace
}  // namespace ecl::test
