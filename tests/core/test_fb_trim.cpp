#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "core/fb_trim.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"

namespace ecl::test {
namespace {

using scc::FbOptions;

TEST(FbTrim, MatchesTarjanWithAllTrimCombinations) {
  Rng rng(31);
  std::vector<NamedGraph> graphs = structured_graphs();
  graphs.push_back({"er", graph::random_digraph(200, 600, rng)});

  for (int bits = 0; bits < 8; ++bits) {
    FbOptions opts;
    opts.trim1 = bits & 1;
    opts.trim2 = bits & 2;
    opts.trim3 = bits & 4;
    for (const auto& g : graphs) {
      const auto oracle = scc::tarjan(g.graph);
      const auto r = scc::fb_trim(g.graph, opts);
      ASSERT_TRUE(scc::same_partition(r.labels, oracle.labels))
          << g.name << " trims=" << bits;
    }
  }
}

TEST(FbTrim, Fig1PivotDecomposition) {
  // Fig. 1's example: the SCC {0,1,2} plus forward-only, backward-only,
  // and unreachable remainders must all be separated correctly.
  const auto g = fig1_graph();
  const auto r = scc::fb_trim(g);
  const auto oracle = scc::tarjan(g);
  EXPECT_EQ(r.num_components, oracle.num_components);
  EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels));
}

TEST(FbTrim, PureTrimGraphNeedsNoBfs) {
  // A DAG is fully consumed by iterated Trim-1: zero BFS levels.
  const auto r = scc::fb_trim(graph::grid_dag(16, 16));
  EXPECT_EQ(r.num_components, 256u);
  EXPECT_EQ(r.metrics.edges_processed, 0u) << "BFS ran on a fully trimmable graph";
}

TEST(FbTrim, TrimDisabledStillCorrectOnDag) {
  FbOptions opts;
  opts.trim1 = opts.trim2 = opts.trim3 = false;
  const auto r = scc::fb_trim(graph::grid_dag(8, 8), opts);
  EXPECT_EQ(r.num_components, 64u);
}

TEST(FbTrim, DeepDagNeedsManyRoundsWithoutTrim) {
  // The motivating weakness (§1): FB without trimming peels one pivot SCC
  // per color per round; a path decomposes slowly compared to ECL-SCC.
  FbOptions no_trim;
  no_trim.trim1 = no_trim.trim2 = no_trim.trim3 = false;
  const auto slow = scc::fb_trim(graph::path_graph(64), no_trim);
  const auto fast = scc::fb_trim(graph::path_graph(64));
  EXPECT_GT(slow.metrics.outer_iterations, fast.metrics.outer_iterations);
  EXPECT_EQ(slow.num_components, 64u);
}

TEST(FbTrim, GiantSccDetectedInOneRound) {
  // FB's favorable case: one SCC containing everything.
  const auto r = scc::fb_trim(graph::cycle_graph(512));
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.metrics.outer_iterations, 1u);
}

TEST(FbTrim, LabelsArePivotsOrTrimMaxima) {
  // Every label must be a member of its own class (pivot or max member).
  Rng rng(64);
  const auto g = graph::random_digraph(300, 900, rng);
  const auto r = scc::fb_trim(g);
  for (graph::vid v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(r.labels[v], g.num_vertices());
    ASSERT_EQ(r.labels[r.labels[v]], r.labels[v]) << "label not in its own class";
  }
}

TEST(FbTrim, WorksOnTinyDevice) {
  device::Device dev(device::tiny_profile());
  const auto g = fig3_graph();
  const auto oracle = scc::tarjan(g);
  EXPECT_TRUE(scc::same_partition(scc::fb_trim(g, dev, {}).labels, oracle.labels));
}

TEST(FbTrim, MatchesTarjanWithAllHighdiameterCombinations) {
  // The §15 FbOptions levers (multi-pivot sets, trim chasing) may rename
  // components but never repartition them — on every structured family,
  // for every lever pair, across trim settings.
  Rng rng(32);
  std::vector<NamedGraph> graphs = structured_graphs();
  graphs.push_back({"er", graph::random_digraph(200, 600, rng)});

  for (int bits = 0; bits < 4; ++bits) {
    FbOptions opts;
    opts.multi_pivot = bits & 1;
    opts.trim_chase = bits & 2;
    for (const auto& g : graphs) {
      const auto oracle = scc::tarjan(g.graph);
      const auto r = scc::fb_trim(g.graph, opts);
      ASSERT_TRUE(scc::same_partition(r.labels, oracle.labels))
          << g.name << " hd=" << bits;
    }
  }
}

TEST(FbTrim, MaxPivotsClampAndSeedDeterminism) {
  Rng rng(33);
  const auto g = graph::random_digraph(300, 900, rng);
  const auto oracle = scc::tarjan(g);
  // Degenerate and extreme pivot-set sizes all stay correct; max_pivots is
  // clamped to the 64-value tag budget internally.
  for (unsigned k : {1u, 2u, 64u, 200u}) {
    FbOptions opts;
    opts.max_pivots = k;
    const auto r = scc::fb_trim(g, opts);
    ASSERT_TRUE(scc::same_partition(r.labels, oracle.labels)) << "k=" << k;
  }
  // Same seed -> same pivot draws -> identical labels (not just partition).
  FbOptions a, b;
  EXPECT_EQ(scc::fb_trim(g, a).labels, scc::fb_trim(g, b).labels);
  // A different seed stays a correct partition.
  FbOptions other;
  other.pivot_seed = 0xdeadbeefULL;
  EXPECT_TRUE(scc::same_partition(scc::fb_trim(g, other).labels, oracle.labels));
}

TEST(FbTrim, TrimChaseCollapsesDagWithFewerLaunches) {
  // On a deep DAG the chaser should consume trim generations inside one
  // apply kernel instead of one mark/apply pair per generation.
  FbOptions chase;  // defaults: trim_chase on
  FbOptions no_chase;
  no_chase.trim_chase = false;
  const auto path = graph::path_graph(128);
  const auto with = scc::fb_trim(path, chase);
  const auto without = scc::fb_trim(path, no_chase);
  EXPECT_EQ(with.num_components, 128u);
  EXPECT_EQ(without.num_components, 128u);
  EXPECT_GT(with.metrics.chains_collapsed, 0u);
  EXPECT_EQ(without.metrics.chains_collapsed, 0u);
  // Fewer trim generations -> fewer mark/apply kernel pairs.
  EXPECT_LT(with.metrics.kernel_launches, without.metrics.kernel_launches);
}

}  // namespace
}  // namespace ecl::test
