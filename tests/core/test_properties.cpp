// Property-based tests: randomized structural invariants of SCC
// decompositions and of the ECL-SCC labeling, checked across seeds via
// TEST_P sweeps.

#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "core/ecl_scc.hpp"
#include "core/ecl_serial.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "graph/condensation.hpp"
#include "graph/permute.hpp"
#include "graph/scc_stats.hpp"

namespace ecl::test {
namespace {

using graph::Digraph;
using graph::vid;

class SccProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Digraph random_graph(Rng& rng) {
    const vid n = static_cast<vid>(50 + rng.bounded(250));
    const auto m = static_cast<graph::eid>(n * (0.5 + rng.uniform() * 3.0));
    return graph::random_digraph(n, m, rng);
  }
};

TEST_P(SccProperties, IntraComponentEdgeAdditionPreservesPartition) {
  Rng rng(GetParam());
  const Digraph g = random_graph(rng);
  const auto before = scc::tarjan(g);

  // Add an edge between two vertices already in the same component.
  vid a = graph::kInvalidVid, b = graph::kInvalidVid;
  for (vid u = 0; u < g.num_vertices() && a == graph::kInvalidVid; ++u) {
    for (vid v = 0; v < g.num_vertices(); ++v) {
      if (u != v && before.labels[u] == before.labels[v] && !g.has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
    }
  }
  if (a == graph::kInvalidVid) GTEST_SKIP() << "no non-trivial component in this draw";

  auto edges = g.edges();
  edges.add(a, b);
  const Digraph g2(g.num_vertices(), edges);
  const auto after = scc::tarjan(g2);
  EXPECT_TRUE(scc::same_partition(before.labels, after.labels));
}

TEST_P(SccProperties, CrossEdgeAdditionOnlyCoarsensPartition) {
  Rng rng(GetParam() ^ 0x9e37);
  const Digraph g = random_graph(rng);
  const auto before = scc::tarjan(g);

  auto edges = g.edges();
  const vid a = static_cast<vid>(rng.bounded(g.num_vertices()));
  const vid b = static_cast<vid>(rng.bounded(g.num_vertices()));
  edges.add(a, b);
  const Digraph g2(g.num_vertices(), edges);
  const auto after = scc::tarjan(g2);

  // Adding any edge can merge components but never split one: vertices
  // together before must stay together.
  EXPECT_LE(after.num_components, before.num_components);
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (vid v = u + 1; v < g.num_vertices(); ++v) {
      if (before.labels[u] == before.labels[v]) {
        ASSERT_EQ(after.labels[u], after.labels[v]);
      }
    }
  }
}

TEST_P(SccProperties, EclLabelsMapThroughPermutations) {
  Rng rng(GetParam() ^ 0xabcd);
  const Digraph g = random_graph(rng);
  const auto base = scc::ecl_scc(g);
  const auto permuted = graph::randomly_permute(g, rng);
  const auto relabeled = scc::ecl_scc(permuted.graph);

  // The partition must map through the permutation, and the max-ID label
  // invariant must hold in the permuted ID space too.
  EXPECT_TRUE(scc::verify_max_id_labels(relabeled.labels).ok);
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (vid v = u + 1; v < g.num_vertices(); ++v) {
      const bool together = base.labels[u] == base.labels[v];
      const bool together_permuted =
          relabeled.labels[permuted.perm[u]] == relabeled.labels[permuted.perm[v]];
      ASSERT_EQ(together, together_permuted);
    }
  }
}

TEST_P(SccProperties, SerialAndParallelEclAgreeExactly) {
  Rng rng(GetParam() ^ 0x1111);
  const Digraph g = random_graph(rng);
  const auto serial = scc::ecl_serial(g);
  const auto parallel = scc::ecl_scc(g);
  EXPECT_EQ(serial.labels, parallel.labels)
      << "both use max-member labels, so they must match exactly";
}

TEST_P(SccProperties, CondensationIsIdempotent) {
  Rng rng(GetParam() ^ 0x2222);
  const Digraph g = random_graph(rng);
  auto labels = scc::tarjan(g).labels;
  const vid k = graph::normalize_labels(labels);
  const Digraph cond = graph::condensation(g, labels, k);
  // The condensation is a DAG: condensing it again is the identity.
  auto labels2 = scc::tarjan(cond).labels;
  const vid k2 = graph::normalize_labels(labels2);
  EXPECT_EQ(k2, k);
  const Digraph cond2 = graph::condensation(cond, labels2, k2);
  EXPECT_EQ(cond2.num_edges(), cond.num_edges());
}

TEST_P(SccProperties, ComponentCountBounds) {
  Rng rng(GetParam() ^ 0x3333);
  const Digraph g = random_graph(rng);
  const auto r = scc::ecl_scc(g);
  EXPECT_GE(r.num_components, 1u);
  EXPECT_LE(r.num_components, g.num_vertices());
  const auto sizes = graph::component_sizes(r.labels);
  vid total = 0;
  for (vid s : sizes) total += s;
  EXPECT_EQ(total, g.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ecl::test
