// End-to-end cross-checks on the paper's actual workload class: every
// registered algorithm must agree with Tarjan on sweep graphs of every
// mesh family, across ordinates. This is the reproduction's equivalent of
// the paper's per-run verification on the RTE inputs.

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/tarjan.hpp"
#include "mesh/generators.hpp"
#include "mesh/ordinates.hpp"
#include "mesh/sweep_graph.hpp"

namespace ecl::test {
namespace {

struct MeshCase {
  std::string family;
  std::string algorithm;
};

void PrintTo(const MeshCase& c, std::ostream* os) { *os << c.algorithm << " on " << c.family; }

mesh::Mesh make_mesh(const std::string& family) {
  constexpr std::size_t kElems = 1200;
  if (family == "beam-hex") return mesh::beam_hex(kElems);
  if (family == "star") return mesh::star(kElems);
  if (family == "torch-hex") return mesh::torch_hex(kElems);
  if (family == "torch-tet") return mesh::torch_tet(kElems);
  if (family == "toroid-hex") return mesh::toroid_hex(kElems);
  if (family == "toroid-wedge") return mesh::toroid_wedge(kElems);
  if (family == "klein-bottle") return mesh::klein_bottle(kElems);
  if (family == "mobius-strip") return mesh::mobius_strip(kElems);
  if (family == "twist-hex") return mesh::twist_hex(kElems);
  throw std::logic_error("unknown family " + family);
}

class MeshCrossCheck : public ::testing::TestWithParam<MeshCase> {};

TEST_P(MeshCrossCheck, AgreesWithTarjanOnAllOrdinates) {
  const auto& [family, algorithm] = GetParam();
  const auto m = make_mesh(family);
  const auto run = scc::find_algorithm(algorithm);
  for (const auto& omega : mesh::fibonacci_ordinates(4)) {
    const auto g = mesh::build_sweep_graph(m, omega);
    const auto oracle = scc::tarjan(g);
    const auto r = run(g);
    ASSERT_EQ(r.num_components, oracle.num_components);
    ASSERT_TRUE(scc::same_partition(r.labels, oracle.labels));
  }
}

std::vector<MeshCase> make_cases() {
  const std::vector<std::string> families = {
      "beam-hex",   "star",         "torch-hex",    "torch-tet", "toroid-hex",
      "toroid-wedge", "klein-bottle", "mobius-strip", "twist-hex"};
  // The full registry is exercised on generic graphs by test_cross_check;
  // here we run the performance-relevant parallel codes on the mesh class.
  const std::vector<std::string> algorithms = {"ecl-a100", "gpu-scc-a100", "ispan", "hong",
                                               "ecl-omp"};
  std::vector<MeshCase> cases;
  for (const auto& f : families)
    for (const auto& a : algorithms) cases.push_back({f, a});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(FamiliesTimesAlgorithms, MeshCrossCheck,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<MeshCase>& info) {
                           std::string name = info.param.algorithm + "_" + info.param.family;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace ecl::test
