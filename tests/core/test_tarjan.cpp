#include <gtest/gtest.h>

#include <algorithm>

#include "common/test_graphs.hpp"
#include "core/tarjan.hpp"
#include "graph/permute.hpp"

namespace ecl::test {
namespace {

using scc::SccResult;

TEST(Tarjan, EmptyGraph) {
  const SccResult r = scc::tarjan(graph::Digraph(0, graph::EdgeList{}));
  EXPECT_EQ(r.num_components, 0u);
  EXPECT_TRUE(r.labels.empty());
}

TEST(Tarjan, SingleVertex) {
  const SccResult r = scc::tarjan(graph::Digraph(1, graph::EdgeList{}));
  EXPECT_EQ(r.num_components, 1u);
}

TEST(Tarjan, SelfLoopIsTrivialComponent) {
  graph::EdgeList e;
  e.add(0, 0);
  const SccResult r = scc::tarjan(graph::Digraph(1, e));
  EXPECT_EQ(r.num_components, 1u);
}

TEST(Tarjan, PathHasOneComponentPerVertex) {
  const SccResult r = scc::tarjan(graph::path_graph(64));
  EXPECT_EQ(r.num_components, 64u);
}

TEST(Tarjan, CycleIsOneComponent) {
  const SccResult r = scc::tarjan(graph::cycle_graph(64));
  EXPECT_EQ(r.num_components, 1u);
  for (graph::vid v = 0; v < 64; ++v) EXPECT_EQ(r.labels[v], r.labels[0]);
}

TEST(Tarjan, CycleChainHasOneComponentPerCycle) {
  const SccResult r = scc::tarjan(graph::cycle_chain(10, 7));
  EXPECT_EQ(r.num_components, 10u);
}

TEST(Tarjan, Fig3Components) {
  const SccResult r = scc::tarjan(fig3_graph());
  EXPECT_EQ(r.num_components, 7u);
  for (const auto& component : fig3_components()) {
    for (graph::vid member : component) {
      EXPECT_EQ(r.labels[member], r.labels[component[0]])
          << "vertex " << member << " not grouped with " << component[0];
    }
  }
  // Distinct components must carry distinct labels.
  EXPECT_NE(r.labels[0], r.labels[2]);
  EXPECT_NE(r.labels[9], r.labels[11]);
  EXPECT_NE(r.labels[5], r.labels[10]);
}

TEST(Tarjan, DeepGraphDoesNotOverflowStack) {
  // 2M-vertex path: a recursive DFS would crash here.
  const SccResult r = scc::tarjan(graph::path_graph(2'000'000));
  EXPECT_EQ(r.num_components, 2'000'000u);
}

TEST(Tarjan, ComponentCountInvariantUnderRelabeling) {
  Rng rng(7);
  const graph::Digraph g = graph::random_digraph(200, 400, rng);
  const SccResult before = scc::tarjan(g);
  const auto permuted = graph::randomly_permute(g, rng);
  const SccResult after = scc::tarjan(permuted.graph);
  EXPECT_EQ(before.num_components, after.num_components);

  // The partition must map through the permutation.
  for (graph::vid u = 0; u < g.num_vertices(); ++u) {
    for (graph::vid v = u + 1; v < g.num_vertices(); ++v) {
      const bool together_before = before.labels[u] == before.labels[v];
      const bool together_after =
          after.labels[permuted.perm[u]] == after.labels[permuted.perm[v]];
      ASSERT_EQ(together_before, together_after);
    }
  }
}

}  // namespace
}  // namespace ecl::test
