#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "core/ecl_omp.hpp"
#include "core/ecl_scc.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"

namespace ecl::test {
namespace {

TEST(EclOmp, MatchesTarjanOnAllTestGraphs) {
  for (const auto& g : all_test_graphs()) {
    const auto oracle = scc::tarjan(g.graph);
    const auto r = scc::ecl_omp(g.graph);
    EXPECT_EQ(r.num_components, oracle.num_components) << g.name;
    EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels)) << g.name;
  }
}

TEST(EclOmp, LabelsAreMaxMemberIds) {
  Rng rng(31);
  const auto g = graph::random_digraph(400, 1200, rng);
  const auto r = scc::ecl_omp(g);
  EXPECT_TRUE(scc::verify_max_id_labels(r.labels).ok);
}

TEST(EclOmp, AgreesWithDeviceImplementationExactly) {
  // Same algorithm, independent implementations: labels must be identical,
  // not just the same partition (both use max-member labeling).
  Rng rng(32);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = graph::random_digraph(300, 900, rng);
    const auto cpu = scc::ecl_omp(g);
    const auto gpu = scc::ecl_scc(g);
    EXPECT_EQ(cpu.labels, gpu.labels);
  }
}

TEST(EclOmp, OptionTogglesStayCorrect) {
  Rng rng(33);
  const auto g = graph::random_digraph(250, 700, rng);
  const auto oracle = scc::tarjan(g);
  for (int bits = 0; bits < 4; ++bits) {
    scc::EclOmpOptions opts;
    opts.path_compression = bits & 1;
    opts.remove_scc_edges = bits & 2;
    EXPECT_TRUE(scc::same_partition(scc::ecl_omp(g, opts).labels, oracle.labels)) << bits;
  }
}

TEST(EclOmp, ThreadCountSweep) {
  Rng rng(34);
  const auto g = graph::random_digraph(500, 1500, rng);
  const auto oracle = scc::tarjan(g);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    scc::EclOmpOptions opts;
    opts.num_threads = threads;
    EXPECT_TRUE(scc::same_partition(scc::ecl_omp(g, opts).labels, oracle.labels));
  }
}

TEST(EclOmp, PathCompressionReducesRounds) {
  const auto g = graph::cycle_graph(4096);
  scc::EclOmpOptions plain;
  plain.path_compression = false;
  scc::EclOmpOptions compressed;
  compressed.path_compression = true;
  const auto a = scc::ecl_omp(g, plain);
  const auto b = scc::ecl_omp(g, compressed);
  EXPECT_LT(b.metrics.propagation_rounds, a.metrics.propagation_rounds / 4);
}

TEST(EclOmp, EmptyGraph) {
  EXPECT_EQ(scc::ecl_omp(graph::Digraph(0, graph::EdgeList{})).num_components, 0u);
}

}  // namespace
}  // namespace ecl::test
