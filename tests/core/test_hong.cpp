#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "core/hong.hpp"
#include "core/tarjan.hpp"

namespace ecl::test {
namespace {

TEST(Hong, MatchesTarjanOnAllTestGraphs) {
  for (const auto& g : all_test_graphs()) {
    const auto oracle = scc::tarjan(g.graph);
    const auto r = scc::hong(g.graph);
    EXPECT_EQ(r.num_components, oracle.num_components) << g.name;
    EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels)) << g.name;
  }
}

TEST(Hong, ThreadCountSweep) {
  Rng rng(21);
  const auto g = graph::random_digraph(500, 2000, rng);
  const auto oracle = scc::tarjan(g);
  for (unsigned threads : {1u, 2u, 4u}) {
    scc::HongOptions opts;
    opts.num_threads = threads;
    EXPECT_TRUE(scc::same_partition(scc::hong(g, opts).labels, oracle.labels));
  }
}

TEST(Hong, GiantSccDetectedInPhase1) {
  Rng rng(22);
  graph::SccProfile p;
  p.num_vertices = 1000;
  p.giant_fraction = 0.8;
  p.dag_depth = 4;
  const auto g = graph::scc_profile_graph(p, rng);
  const auto r = scc::hong(g);
  EXPECT_TRUE(scc::same_partition(r.labels, scc::tarjan(g).labels));
  // Phase 1 handles the giant; few FB steps remain for the residue.
  EXPECT_LE(r.metrics.outer_iterations, 200u);
}

TEST(Hong, Trim2ToggleStaysCorrect) {
  Rng rng(23);
  const auto g = graph::random_digraph(300, 600, rng);
  const auto oracle = scc::tarjan(g);
  for (bool trim2 : {false, true}) {
    scc::HongOptions opts;
    opts.trim2 = trim2;
    EXPECT_TRUE(scc::same_partition(scc::hong(g, opts).labels, oracle.labels));
  }
}

TEST(Hong, ManyWccPiecesProcessedIndependently) {
  // Disconnected cycles: phase 2 must handle every WCC as its own task.
  graph::EdgeList e;
  for (graph::vid c = 0; c < 40; ++c) {
    const graph::vid base = c * 5;
    for (graph::vid i = 0; i < 5; ++i) e.add(base + i, base + (i + 1) % 5);
  }
  const graph::Digraph g(200, e);
  const auto r = scc::hong(g);
  EXPECT_EQ(r.num_components, 40u);
}

TEST(Hong, EmptyGraph) {
  EXPECT_EQ(scc::hong(graph::Digraph(0, graph::EdgeList{})).num_components, 0u);
}

}  // namespace
}  // namespace ecl::test
