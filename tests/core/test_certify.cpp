#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/test_graphs.hpp"
#include "core/result.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

// Adversarial suite for the online certifier (DESIGN.md §12). The
// certificate guards the serving path, so these tests attack it the way a
// corrupted parallel run would: split an SCC, merge two, remap labels
// off-by-one, violate the canonical member-naming form — across several
// graph families — and assert every mutant is rejected while every honest
// labeling (including ones reached through the reverse_hint fast path)
// passes.

namespace ecl::test {
namespace {

using graph::Digraph;
using graph::vid;

/// Member-named (canonical) oracle labeling, as the certifier requires.
std::vector<vid> canonical_oracle(const Digraph& g) {
  scc::SccResult r = scc::tarjan(g);
  scc::canonicalize_labels(r.labels);
  return r.labels;
}

/// The four families the adversarial sweeps run over: a pure cycle (one
/// big SCC), an SCC chain (many equal classes), a sparse random digraph
/// (mixed sizes), and the paper's Fig. 3 example (two disconnected
/// clusters).
std::vector<std::pair<std::string, Digraph>> certify_families() {
  std::vector<std::pair<std::string, Digraph>> fams;
  fams.emplace_back("cycle_96", graph::cycle_graph(96));
  fams.emplace_back("cycle_chain_8x12", graph::cycle_chain(8, 12));
  Rng rng(0xce47f);
  fams.emplace_back("er_n200_m700", graph::random_digraph(200, 700, rng));
  fams.emplace_back("fig3", fig3_graph());
  return fams;
}

TEST(Certify, AcceptsHonestLabelingOnAllFamilies) {
  for (const auto& [name, g] : certify_families()) {
    const auto labels = canonical_oracle(g);
    const auto report = scc::certify_scc(g, labels);
    EXPECT_TRUE(report.ok) << name << ": " << report.message;
    EXPECT_EQ(report.classes, scc::tarjan(g).num_components) << name;
  }
}

TEST(Certify, ReverseHintPathMatchesInlineBuild) {
  // Passing a precomputed reverse (the recovery ladder / service epoch
  // cache configuration) must change nothing about the verdict, on honest
  // and corrupted labelings alike.
  for (const auto& [name, g] : certify_families()) {
    const Digraph rev = g.reverse();
    scc::CertifyOptions opts;
    opts.reverse_hint = &rev;
    auto labels = canonical_oracle(g);
    EXPECT_TRUE(scc::certify_scc(g, labels, opts).ok) << name;
    if (g.num_vertices() < 2) continue;
    // Corrupt: move vertex 0 into some other class (or split it off).
    const vid other = labels[0] == labels[1] ? labels[1] : labels[0];
    labels[0] = labels[0] == other ? labels[1] : other;
    const auto inline_report = scc::certify_scc(g, labels);
    const auto hinted_report = scc::certify_scc(g, labels, opts);
    EXPECT_EQ(inline_report.ok, hinted_report.ok) << name;
  }
}

TEST(Certify, RejectsSplitScc) {
  // Carve one member out of a multi-member SCC into its own class. The
  // split class pair stays mutually reachable, so Kahn must find the
  // condensation cyclic (or a coverage sweep must fail).
  for (const auto& [name, g] : certify_families()) {
    auto labels = canonical_oracle(g);
    // Find a multi-member class and a member that is not its name.
    vid victim = graph::kInvalidVid;
    for (vid v = 0; v < g.num_vertices(); ++v) {
      if (labels[v] != v) {
        victim = v;
        break;
      }
    }
    if (victim == graph::kInvalidVid) continue;  // all singletons: nothing to split
    labels[victim] = victim;  // canonical-form-preserving split
    const auto report = scc::certify_scc(g, labels);
    EXPECT_FALSE(report.ok) << name << ": split of vertex " << victim << " not caught";
  }
}

TEST(Certify, RejectsMergedSccs) {
  // Rename one entire class to another class's label: the merged class is
  // not strongly connected (or, for mutually reachable classes, would have
  // been one SCC to begin with — impossible in an oracle labeling).
  for (const auto& [name, g] : certify_families()) {
    auto labels = canonical_oracle(g);
    std::vector<vid> classes;
    for (vid v = 0; v < g.num_vertices(); ++v)
      if (labels[v] == v) classes.push_back(v);
    if (classes.size() < 2) continue;  // single SCC: nothing to merge
    const vid from = classes[0], into = classes[1];
    for (vid v = 0; v < g.num_vertices(); ++v)
      if (labels[v] == from) labels[v] = into;
    const auto report = scc::certify_scc(g, labels);
    EXPECT_FALSE(report.ok) << name << ": merge " << from << " -> " << into << " not caught";
  }
}

TEST(Certify, RejectsOffByOneRemap) {
  // Shift every label by one (mod n): the classic stale-read remap. The
  // shift never changes which vertices SHARE a label, so it is a pure
  // renaming — acceptable exactly when every shifted name still lands
  // inside its own class (e.g. a single cycle renamed 0 -> 1), and
  // rejectable by the canonical-form stage (labels[label] == label) the
  // moment any name crosses a class boundary.
  int rejections = 0;
  for (const auto& [name, g] : certify_families()) {
    auto labels = canonical_oracle(g);
    const vid n = g.num_vertices();
    for (vid v = 0; v < n; ++v) labels[v] = (labels[v] + 1) % n;
    bool member_named = true;
    for (vid v = 0; v < n; ++v) member_named &= labels[labels[v]] == labels[v];
    const auto report = scc::certify_scc(g, labels);
    EXPECT_EQ(report.ok, member_named) << name << ": " << report.message;
    if (!report.ok) ++rejections;
  }
  EXPECT_GE(rejections, 2) << "the sweep must exercise the rejection path";
}

TEST(Certify, RejectsIndexNamedLabelsUntilCanonicalized) {
  // Raw Tarjan labels are dense component indices, not member names. The
  // certifier's canonical-form contract rejects them; canonicalize_labels
  // (the registry-boundary rewrite) makes the same partition acceptable.
  const Digraph g = fig3_graph();
  scc::SccResult r = scc::tarjan(g);
  const auto raw = scc::certify_scc(g, r.labels);
  // fig3's class count (7) differs from its vertex count (12), so dense
  // indices cannot all be self-named.
  EXPECT_FALSE(raw.ok);
  EXPECT_NE(raw.message.find("not in its own class"), std::string::npos) << raw.message;
  scc::canonicalize_labels(r.labels);
  EXPECT_TRUE(scc::certify_scc(g, r.labels).ok);
}

TEST(Certify, RejectsIncompleteAndOutOfRangeLabels) {
  const Digraph g = graph::cycle_graph(8);
  std::vector<vid> short_labels(7, 0);
  EXPECT_FALSE(scc::certify_scc(g, short_labels).ok);
  auto labels = canonical_oracle(g);
  labels[3] = graph::kInvalidVid;  // unlabeled vertex (a discarded partial run)
  EXPECT_FALSE(scc::certify_scc(g, labels).ok);
  labels[3] = 8;  // non-vertex label value
  EXPECT_FALSE(scc::certify_scc(g, labels).ok);
}

TEST(Certify, SingletonChainAndSelfLoops) {
  // A pure DAG path = all singleton classes: exercises the singleton Kahn
  // seeding (no BFS runs at all). Self-loops must not confuse the
  // cross-edge count.
  graph::EdgeList e;
  for (vid v = 0; v + 1 < 6; ++v) e.add(v, v + 1);
  e.add(2, 2);  // self-loop inside a singleton class
  const Digraph g(6, e);
  std::vector<vid> labels{0, 1, 2, 3, 4, 5};
  const auto report = scc::certify_scc(g, labels);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.classes, 6u);
  // Collapsing the whole path into one class must fail coverage.
  EXPECT_FALSE(scc::certify_scc(g, std::vector<vid>(6, 5)).ok);
}

TEST(Certify, CatchesCycleSplitIntoArcs) {
  // Split a single cycle into two arcs, each named by a member: every
  // class covers its members in the subgraph-union sense only through the
  // other class, so the confined coverage sweeps must fail.
  const Digraph g = graph::cycle_graph(10);
  std::vector<vid> labels(10);
  for (vid v = 0; v < 10; ++v) labels[v] = v < 5 ? 4 : 9;
  const auto report = scc::certify_scc(g, labels);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("not strongly connected"), std::string::npos) << report.message;
}

TEST(Certify, WitnessStageRunsOnMultiMemberClasses) {
  const Digraph g = graph::cycle_chain(4, 8);  // four 8-cycles in a chain
  const auto labels = canonical_oracle(g);
  scc::CertifyOptions opts;
  opts.witness_samples = 3;
  const auto report = scc::certify_scc(g, labels, opts);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_GT(report.witnesses, 0u);
  opts.witness_samples = 0;  // stage disabled
  EXPECT_EQ(scc::certify_scc(g, labels, opts).witnesses, 0u);
}

TEST(Certify, MaxIdModeRejectsNonMaxNames) {
  // ECL-mode certification additionally pins the §3.2.1 naming invariant.
  const Digraph g = graph::cycle_graph(4);
  std::vector<vid> min_named(4, 0);  // {0..3} named by its minimum member
  scc::CertifyOptions opts;
  EXPECT_TRUE(scc::certify_scc(g, min_named, opts).ok) << "partition itself is valid";
  opts.require_max_id_labels = true;
  EXPECT_FALSE(scc::certify_scc(g, min_named, opts).ok);
  EXPECT_TRUE(scc::certify_scc(g, std::vector<vid>(4, 3), opts).ok);
}

TEST(Certify, RandomizedFlipSweepIsAlwaysCaught) {
  // Single-vertex label flips across families and seeds: each flip either
  // splits a class, merges into a neighbor, or breaks canonical naming —
  // the certifier must reject all of them.
  Rng rng(0xf1a6c0de);
  for (const auto& [name, g] : certify_families()) {
    const auto oracle = canonical_oracle(g);
    const vid n = g.num_vertices();
    std::vector<vid> classes;
    for (vid v = 0; v < n; ++v)
      if (oracle[v] == v) classes.push_back(v);
    if (classes.size() < 2) continue;
    for (int trial = 0; trial < 6; ++trial) {
      auto labels = oracle;
      const vid victim = static_cast<vid>(rng.bounded(n));
      vid donor = victim;
      while (labels[donor] == labels[victim]) donor = static_cast<vid>(rng.bounded(n));
      labels[victim] = labels[donor];
      EXPECT_FALSE(scc::certify_scc(g, labels).ok)
          << name << ": moved vertex " << victim << " into class " << labels[donor];
    }
  }
}

}  // namespace
}  // namespace ecl::test
