// High-diameter differential suite (ctest label: perf).
//
// The DESIGN.md §15 levers — chain chasing, the hash-bag sparse frontier —
// are pure performance transforms: every lever combination must produce
// BIT-IDENTICAL labels to the PR-5 baseline (§10 + §11 on, §15 off), on
// every graph family, fault-free and under seeded chaos plans. Identity of
// raw labels holds because ECL-SCC's max-ID labeling is a function of the
// graph alone: a chase only re-applies the same monotone per-edge rule
// early, and a sparse round visits a superset of the edges the dense gate
// would have moved.
//
// FB-Trim's §15 analogues (multi-pivot sets, trim chasing) change WHICH
// pivot names a component, so they are checked for partition identity
// against Tarjan rather than raw-label identity.
//
// The suite also pins the chain chaser's termination guarantees: self-loop
// vertices, 2-cycles, pure cycles (one-lap saturation), and chains longer
// than chain_cap (budget exhaustion) must all converge, with the recorded
// max_chain_len never exceeding the cap.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/test_graphs.hpp"
#include "core/ecl_omp.hpp"
#include "core/ecl_scc.hpp"
#include "core/fb_trim.hpp"
#include "core/tarjan.hpp"
#include "device/fault.hpp"
#include "graph/edge_list.hpp"

namespace ecl::test {
namespace {

using device::FaultPlan;
using scc::EclOptions;
using scc::FbOptions;
using scc::SccResult;

struct Family {
  std::string name;
  Digraph graph;
};

std::vector<Family> families() {
  std::vector<Family> fs;
  fs.push_back({"cycle_chain_12x6", graph::cycle_chain(12, 6)});
  fs.push_back({"grid_dag_10x10", graph::grid_dag(10, 10)});
  {
    Rng rng(0x40710'01);
    fs.push_back({"er_n150_m450", graph::random_digraph(150, 450, rng)});
  }
  {
    Rng rng(0x40710'02);
    graph::SccProfile profile;
    profile.num_vertices = 200;
    profile.giant_fraction = 0.4;
    profile.size2_sccs = 10;
    profile.mid_sccs = 3;
    profile.dag_depth = 6;
    fs.push_back({"powerlaw_giant", graph::scc_profile_graph(profile, rng)});
  }
  return fs;
}

/// Chain-heavy boundary families aimed specifically at the chaser's
/// termination cases.
std::vector<Family> chain_families() {
  std::vector<Family> fs;
  {
    // Pure directed cycle longer than the default chain_cap (64): a chase
    // entering the cycle must stop at the budget or the one-lap guard.
    EdgeList e;
    for (vid v = 0; v < 200; ++v) e.add(v, (v + 1) % 200);
    fs.push_back({"cycle_200", Digraph(200, e)});
  }
  {
    // Path of 200 edges (every interior vertex degree-1 both ways) feeding
    // a small cycle: the deepest possible chain for the budget to cut.
    EdgeList e;
    for (vid v = 0; v < 200; ++v) e.add(v, v + 1);
    for (vid v = 200; v < 205; ++v) e.add(v, v + 1);
    e.add(205, 200);
    fs.push_back({"path_200_into_cycle", Digraph(206, e)});
  }
  {
    // Self-loops on a path: succ/pred maps see the loop edge and the path
    // edge, so every vertex is kMany — the chaser must simply decline.
    EdgeList e;
    for (vid v = 0; v < 50; ++v) e.add(v, v);
    for (vid v = 0; v + 1 < 50; ++v) e.add(v, v + 1);
    fs.push_back({"self_loop_path_50", Digraph(50, e)});
  }
  {
    // Chain of 2-cycles: u <-> u+1 pairs linked in a path. Forward and
    // backward chases meet their own starts after one hop.
    EdgeList e;
    for (vid v = 0; v + 1 < 60; v += 2) {
      e.add(v, v + 1);
      e.add(v + 1, v);
      if (v + 2 < 60) e.add(v + 1, v + 2);
    }
    fs.push_back({"two_cycle_chain_30", Digraph(60, e)});
  }
  return fs;
}

/// The §15 lever square on top of the full PR-5 configuration: bit 0 =
/// chain chasing, bit 1 = hash-bag frontier. Mask 0 is the
/// `ecl-loadbalance` baseline configuration; mask 3 is the default.
EclOptions lever_combo(unsigned mask) {
  EclOptions opts = scc::ecl_highdiameter_levers_off();
  opts.chain_chasing = mask & 1;
  opts.hashbag_frontier = mask & 2;
  return opts;
}

std::string combo_name(unsigned mask) {
  return std::string(mask & 1 ? "chain" : "-") + "/" + (mask & 2 ? "hashbag" : "-");
}

device::DeviceProfile highdiameter_profile(FaultPlan plan = {}) {
  device::DeviceProfile profile = device::tiny_profile();  // zero launch overhead
  profile.fault_plan = plan;
  return profile;
}

TEST(HighdiameterDifferential, AllLeverCombosMatchBaselineLabelsBitForBit) {
  for (const auto& family : families()) {
    device::Device dev(highdiameter_profile(), /*workers=*/4);
    const SccResult baseline = scc::ecl_scc(family.graph, dev, lever_combo(0));
    ASSERT_TRUE(baseline.ok()) << family.name;
    const SccResult oracle = scc::tarjan(family.graph);
    ASSERT_TRUE(scc::same_partition(baseline.labels, oracle.labels)) << family.name;

    for (unsigned mask = 1; mask < 4; ++mask) {
      const SccResult r = scc::ecl_scc(family.graph, dev, lever_combo(mask));
      ASSERT_TRUE(r.ok()) << family.name << " " << combo_name(mask);
      EXPECT_EQ(r.labels, baseline.labels)
          << family.name << ": combo " << combo_name(mask)
          << " changed the labeling (levers must be pure perf transforms)";
      EXPECT_EQ(r.num_components, baseline.num_components) << family.name;
    }
  }
}

TEST(HighdiameterDifferential, CombosAlsoMatchTheClassicSeedConfiguration) {
  // Transitively: the all-on default must also agree with the everything-
  // off seed (ecl-classic), pinning the whole §10 + §11 + §15 lever stack
  // to one labeling.
  for (const auto& family : families()) {
    device::Device dev(highdiameter_profile(), /*workers=*/4);
    const SccResult classic = scc::ecl_scc(family.graph, dev, scc::ecl_hotpath_levers_off());
    ASSERT_TRUE(classic.ok()) << family.name;
    const SccResult all_on = scc::ecl_scc(family.graph, dev, EclOptions{});
    ASSERT_TRUE(all_on.ok()) << family.name;
    EXPECT_EQ(all_on.labels, classic.labels) << family.name;
  }
}

TEST(HighdiameterDifferential, ChaosPlansPreserveLabelsAcrossLevers) {
  // Same seeded fault plan, each §15 combo vs the loadbalance baseline: the
  // fault draw sequences diverge, but the converged labeling may not.
  for (const auto& family : families()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const FaultPlan plan = FaultPlan::from_seed(seed);
      device::Device dev_off(highdiameter_profile(plan), /*workers=*/4);
      const SccResult off = scc::ecl_scc(family.graph, dev_off, lever_combo(0));
      ASSERT_EQ(off.labels.size(), family.graph.num_vertices());
      for (unsigned mask = 1; mask < 4; ++mask) {
        device::Device dev_on(highdiameter_profile(plan), /*workers=*/4);
        const SccResult on = scc::ecl_scc(family.graph, dev_on, lever_combo(mask));
        const std::string ctx = family.name + " " + combo_name(mask) + " " + plan.describe();
        ASSERT_EQ(on.labels.size(), family.graph.num_vertices()) << ctx;
        EXPECT_EQ(on.labels, off.labels) << ctx;
      }
      const SccResult oracle = scc::tarjan(family.graph);
      EXPECT_TRUE(scc::same_partition(off.labels, oracle.labels)) << family.name;
    }
  }
}

TEST(HighdiameterDifferential, ChainChaserTerminatesOnBoundaryFamilies) {
  for (const auto& family : chain_families()) {
    device::Device dev(highdiameter_profile(), /*workers=*/4);
    const SccResult baseline = scc::ecl_scc(family.graph, dev, lever_combo(0));
    ASSERT_TRUE(baseline.ok()) << family.name;
    const SccResult oracle = scc::tarjan(family.graph);
    ASSERT_TRUE(scc::same_partition(baseline.labels, oracle.labels)) << family.name;
    for (unsigned mask = 1; mask < 4; ++mask) {
      EclOptions opts = lever_combo(mask);
      opts.chain_density = 2.0;  // force chases so the boundary cases run
      const SccResult r = scc::ecl_scc(family.graph, dev, opts);
      ASSERT_TRUE(r.ok()) << family.name << " " << combo_name(mask);
      EXPECT_EQ(r.labels, baseline.labels) << family.name << " " << combo_name(mask);
      // One chase never exceeds its budget.
      EXPECT_LE(r.metrics.max_chain_len, opts.chain_cap)
          << family.name << " " << combo_name(mask);
    }
  }
}

TEST(HighdiameterDifferential, ChainCapBoundsEveryChase) {
  // Tight caps on the deepest chain family: the chaser must respect 1 and
  // the exact chain length, and labels stay pinned either way.
  const auto family = chain_families()[1];  // path_200_into_cycle
  device::Device dev(highdiameter_profile(), /*workers=*/4);
  const SccResult baseline = scc::ecl_scc(family.graph, dev, lever_combo(0));
  ASSERT_TRUE(baseline.ok());
  for (std::uint32_t cap : {1u, 2u, 63u, 64u, 65u, 1024u}) {
    EclOptions opts = lever_combo(1);
    opts.chain_cap = cap;
    opts.chain_density = 2.0;  // force the chaser on this small family
    const SccResult r = scc::ecl_scc(family.graph, dev, opts);
    ASSERT_TRUE(r.ok()) << "cap=" << cap;
    EXPECT_EQ(r.labels, baseline.labels) << "cap=" << cap;
    EXPECT_LE(r.metrics.max_chain_len, cap) << "cap=" << cap;
  }
}

TEST(HighdiameterDifferential, ChainMetricsRecordCollapsedChains) {
  // The deep path family must actually exercise the chaser when it is on,
  // and record nothing when it is off. chain_density >= 1 forces a chase in
  // every round whose active count is below m (round-level adaptivity would
  // otherwise let a graph this small converge before the chaser arms).
  const auto family = chain_families()[1];
  device::Device dev(highdiameter_profile(), /*workers=*/4);
  const SccResult off = scc::ecl_scc(family.graph, dev, lever_combo(0));
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.metrics.chains_collapsed, 0u);
  EXPECT_EQ(off.metrics.max_chain_len, 0u);
  EclOptions forced = lever_combo(1);
  forced.chain_density = 2.0;  // > 1: chase from round 1
  const SccResult on = scc::ecl_scc(family.graph, dev, forced);
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on.labels, off.labels);
  EXPECT_GT(on.metrics.chains_collapsed, 0u);
  EXPECT_GT(on.metrics.max_chain_len, 0u);
  EXPECT_GE(on.metrics.chain_steps, on.metrics.max_chain_len);
}

TEST(HighdiameterDifferential, ForcedSparseRoundsStayBitIdentical) {
  // hashbag_density = 1.0 forces every eligible round through the sparse
  // path (any frontier is below 100% of the worklist), so the gather /
  // incidence machinery itself is exercised, not just the fallback.
  for (const auto& family : families()) {
    device::Device dev(highdiameter_profile(), /*workers=*/4);
    const SccResult baseline = scc::ecl_scc(family.graph, dev, lever_combo(0));
    ASSERT_TRUE(baseline.ok()) << family.name;
    EclOptions forced = lever_combo(2);
    forced.hashbag_density = 1.0;
    const SccResult sparse = scc::ecl_scc(family.graph, dev, forced);
    ASSERT_TRUE(sparse.ok()) << family.name;
    EXPECT_EQ(sparse.labels, baseline.labels) << family.name;
    EXPECT_GT(sparse.metrics.hashbag_rounds, 0u)
        << family.name << ": forced density never took the sparse path";
  }
}

TEST(HighdiameterDifferential, OmpMirrorMatchesAcrossChainLever) {
  // The OpenMP translation carries the same lever; both settings must land
  // on the same (max-ID) labels as the device run.
  for (const auto& family : families()) {
    device::Device dev(highdiameter_profile(), /*workers=*/4);
    const SccResult reference = scc::ecl_scc(family.graph, dev, lever_combo(0));
    ASSERT_TRUE(reference.ok()) << family.name;
    for (bool chasing : {false, true}) {
      scc::EclOmpOptions opts;
      opts.chain_chasing = chasing;
      const SccResult r = scc::ecl_omp(family.graph, opts);
      ASSERT_TRUE(r.ok()) << family.name;
      EXPECT_EQ(r.labels, reference.labels) << family.name << " chasing=" << chasing;
    }
  }
}

TEST(HighdiameterDifferential, FbLeverCombosMatchTarjanPartitions) {
  // FB-Trim's §15 analogues: multi-pivot sets and trim chasing may rename
  // components (pivot-named labels) but never repartition them.
  for (const auto& family : families()) {
    device::Device dev(highdiameter_profile(), /*workers=*/4);
    const SccResult oracle = scc::tarjan(family.graph);
    for (unsigned mask = 0; mask < 4; ++mask) {
      FbOptions opts;
      opts.multi_pivot = mask & 1;
      opts.trim_chase = mask & 2;
      const SccResult r = scc::fb_trim(family.graph, dev, opts);
      ASSERT_TRUE(r.ok()) << family.name << " fb mask=" << mask;
      EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels))
          << family.name << " fb mask=" << mask;
    }
  }
}

TEST(HighdiameterDifferential, FbMultiPivotRecordsPivotMetrics) {
  // On the powerlaw family (many colors after round 1) the sampler should
  // draw more than one pivot for at least one color at least once.
  const auto fs = families();
  const auto& family = fs.back();  // powerlaw_giant
  device::Device dev(highdiameter_profile(), /*workers=*/4);
  FbOptions opts;  // defaults: multi_pivot on
  const SccResult r = scc::fb_trim(family.graph, dev, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.metrics.pivots_selected, 0u);
  EXPECT_GT(r.metrics.pivots_per_round, 0.0);
  FbOptions classic;
  classic.multi_pivot = false;
  const SccResult c = scc::fb_trim(family.graph, dev, classic);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.metrics.multi_pivot_rounds, 0u);
}

TEST(HighdiameterDifferential, FbTrimChaseTerminatesOnBoundaryFamilies) {
  for (const auto& family : chain_families()) {
    device::Device dev(highdiameter_profile(), /*workers=*/4);
    const SccResult oracle = scc::tarjan(family.graph);
    for (unsigned cap : {1u, 64u}) {
      FbOptions opts;
      opts.trim_chain_cap = cap;
      const SccResult r = scc::fb_trim(family.graph, dev, opts);
      ASSERT_TRUE(r.ok()) << family.name << " cap=" << cap;
      EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels))
          << family.name << " cap=" << cap;
    }
  }
}

}  // namespace
}  // namespace ecl::test
