#include <gtest/gtest.h>

#include <algorithm>

#include "common/test_graphs.hpp"
#include "core/registry.hpp"

namespace ecl::test {
namespace {

TEST(Registry, ListsAllExpectedConfigurations) {
  const auto names = scc::algorithm_names();
  for (const char* expected : {"tarjan", "kosaraju", "ecl-serial", "ecl-a100", "ecl-titanv",
                               "gpu-scc-a100", "gpu-scc-titanv", "ispan", "hong", "ecl-omp"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing " << expected;
  }
}

TEST(Registry, UnknownNameThrowsWithValidList) {
  try {
    (void)scc::find_algorithm("quantum-scc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("tarjan"), std::string::npos)
        << "error message should list valid algorithms";
  }
}

TEST(Registry, RunAlgorithmExecutes) {
  const auto r = scc::run_algorithm("tarjan", fig3_graph());
  EXPECT_EQ(r.num_components, 7u);
}

TEST(Registry, AllEntriesAreRunnable) {
  const auto g = fig2_graph();
  for (const auto& name : scc::algorithm_names()) {
    const auto r = scc::run_algorithm(name, g);
    EXPECT_EQ(r.num_components, 3u) << name;
  }
}

}  // namespace
}  // namespace ecl::test
