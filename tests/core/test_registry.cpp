#include <gtest/gtest.h>

#include <algorithm>

#include "common/test_graphs.hpp"
#include "core/registry.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "device/device.hpp"

namespace ecl::test {
namespace {

TEST(Registry, ListsAllExpectedConfigurations) {
  const auto names = scc::algorithm_names();
  for (const char* expected : {"tarjan", "kosaraju", "ecl-serial", "ecl-a100", "ecl-titanv",
                               "ecl-classic", "gpu-scc-a100", "gpu-scc-titanv", "ispan", "hong",
                               "ecl-omp"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing " << expected;
  }
}

TEST(Registry, UnknownNameThrowsWithValidList) {
  try {
    (void)scc::find_algorithm("quantum-scc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("tarjan"), std::string::npos)
        << "error message should list valid algorithms";
  }
}

TEST(Registry, RunAlgorithmExecutes) {
  const auto r = scc::run_algorithm("tarjan", fig3_graph());
  EXPECT_EQ(r.num_components, 7u);
}

TEST(Registry, AllEntriesAreRunnable) {
  const auto g = fig2_graph();
  for (const auto& name : scc::algorithm_names()) {
    const auto r = scc::run_algorithm(name, g);
    EXPECT_EQ(r.num_components, 3u) << name;
  }
}

TEST(Registry, DeviceFlagMatchesConfigurations) {
  for (const char* name :
       {"ecl-a100", "ecl-titanv", "ecl-classic", "gpu-scc-a100", "gpu-scc-titanv"})
    EXPECT_TRUE(scc::algorithm_uses_device(name)) << name;
  for (const char* name : {"tarjan", "kosaraju", "ecl-serial", "ispan", "hong", "ecl-omp"})
    EXPECT_FALSE(scc::algorithm_uses_device(name)) << name;
}

TEST(Registry, RunAlgorithmOnUsesCallerDevice) {
  const auto g = fig3_graph();
  device::Device dev(device::tiny_profile());
  const auto before = dev.stats().kernel_launches;
  const auto r = scc::run_algorithm_on("ecl-a100", g, dev);
  EXPECT_EQ(r.num_components, 7u);
  EXPECT_GT(dev.stats().kernel_launches, before) << "must run on the supplied device";
  // CPU entries ignore the device but still run.
  const auto serial = scc::run_algorithm_on("tarjan", g, dev);
  EXPECT_EQ(serial.num_components, 7u);
}

TEST(Registry, RunResilientPassesThroughCleanRuns) {
  const auto g = fig3_graph();
  for (const auto& name : scc::algorithm_names()) {
    const auto r = scc::run_resilient(name, g);
    EXPECT_TRUE(r.ok()) << name << ": " << r.error.message;
    EXPECT_FALSE(r.metrics.serial_fallback) << name;
    EXPECT_EQ(r.num_components, 7u) << name;
    EXPECT_TRUE(scc::verify_scc(g, r.labels).ok) << name;
  }
}

TEST(Registry, RunResilientStillThrowsOnUnknownName) {
  EXPECT_THROW((void)scc::run_resilient("quantum-scc", fig3_graph()),
               std::invalid_argument);
}

TEST(Registry, RunResilientOnUsesCallerDevice) {
  const auto g = fig3_graph();
  device::Device dev(device::tiny_profile());
  const auto before = dev.stats().kernel_launches;
  const auto r = scc::run_resilient_on("ecl-a100", g, dev);
  EXPECT_TRUE(r.ok()) << r.error.message;
  EXPECT_EQ(r.num_components, 7u);
  EXPECT_GT(dev.stats().kernel_launches, before) << "must run on the supplied device";
  EXPECT_THROW((void)scc::run_resilient_on("quantum-scc", g, dev), std::invalid_argument);
}

TEST(Registry, RunResilientOnAbsorbsAStalledDevice) {
  // Full store suppression: ECL-SCC on this device must stall; the
  // resilient wrapper still returns complete, Tarjan-equivalent labels.
  device::DeviceProfile profile = device::tiny_profile();
  profile.fault_plan.seed = 11;
  profile.fault_plan.delayed_visibility = true;
  profile.fault_plan.store_defer_probability = 1.0;
  device::Device dev(profile);
  const auto g = graph::cycle_graph(48);
  const auto r = scc::run_resilient_on("ecl-a100", g, dev);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.metrics.serial_fallback);
  EXPECT_TRUE(scc::same_partition(r.labels, scc::tarjan(g).labels));
  EXPECT_TRUE(scc::verify_scc(g, r.labels).ok);
}

TEST(Registry, RunResilientMatchesTarjanOnAllGraphs) {
  for (const auto& [name, g] : structured_graphs()) {
    const auto oracle = scc::tarjan(g);
    const auto r = scc::run_resilient("ecl-a100", g);
    EXPECT_TRUE(scc::same_partition(r.labels, oracle.labels)) << name;
    EXPECT_EQ(r.num_components, oracle.num_components) << name;
  }
}

}  // namespace
}  // namespace ecl::test
