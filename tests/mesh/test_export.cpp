#include <gtest/gtest.h>

#include <sstream>

#include "core/tarjan.hpp"
#include "mesh/export.hpp"
#include "mesh/generators.hpp"
#include "mesh/ordinates.hpp"
#include "mesh/sweep_graph.hpp"

namespace ecl::test {
namespace {

TEST(MeshExport, VtkStructureIsWellFormed) {
  const auto m = mesh::beam_hex(200);
  const auto g = mesh::build_sweep_graph(m, mesh::fibonacci_ordinates(4)[0]);
  const auto labels = scc::tarjan(g).labels;

  std::ostringstream out;
  mesh::write_vtk_sweep_graph(out, m, g, labels);
  const std::string vtk = out.str();

  EXPECT_NE(vtk.find("# vtk DataFile"), std::string::npos);
  EXPECT_NE(vtk.find("DATASET POLYDATA"), std::string::npos);
  EXPECT_NE(vtk.find("POINTS " + std::to_string(m.num_elements)), std::string::npos);
  EXPECT_NE(vtk.find("LINES " + std::to_string(g.num_edges())), std::string::npos);
  EXPECT_NE(vtk.find("SCALARS scc int 1"), std::string::npos);
}

TEST(MeshExport, LabelsAreOptional) {
  const auto m = mesh::beam_hex(200);
  const auto g = mesh::build_sweep_graph(m, mesh::fibonacci_ordinates(4)[0]);
  std::ostringstream out;
  mesh::write_vtk_sweep_graph(out, m, g);
  EXPECT_EQ(out.str().find("POINT_DATA"), std::string::npos);
}

TEST(MeshExport, MismatchedSizesThrow) {
  const auto m = mesh::beam_hex(200);
  const auto g = graph::Digraph(3, graph::EdgeList{});
  std::ostringstream out;
  EXPECT_THROW(mesh::write_vtk_sweep_graph(out, m, g), std::invalid_argument);

  const auto good = mesh::build_sweep_graph(m, mesh::fibonacci_ordinates(1)[0]);
  const std::vector<graph::vid> short_labels(2, 0);
  EXPECT_THROW(mesh::write_vtk_sweep_graph(out, m, good, short_labels),
               std::invalid_argument);
}

TEST(MeshExport, FileWriteFailsOnBadPath) {
  const auto m = mesh::beam_hex(200);
  const auto g = mesh::build_sweep_graph(m, mesh::fibonacci_ordinates(1)[0]);
  EXPECT_THROW(mesh::write_vtk_sweep_graph_file("/nonexistent-dir/x.vtk", m, g),
               std::runtime_error);
}

}  // namespace
}  // namespace ecl::test
