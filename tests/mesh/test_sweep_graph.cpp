#include <gtest/gtest.h>

#include "mesh/sweep_graph.hpp"

namespace ecl::test {
namespace {

using mesh::Face;
using mesh::Mesh;
using mesh::Vec3;

Mesh tiny_mesh() {
  Mesh m;
  m.name = "tiny";
  m.num_elements = 3;
  // Face 0-1 with constant +x normal; face 1-2 with a re-entrant normal set.
  Face f01;
  f01.e1 = 0;
  f01.e2 = 1;
  f01.normals = {Vec3{1, 0, 0}, Vec3{1, 0, 0}};
  Face f12;
  f12.e1 = 1;
  f12.e2 = 2;
  f12.normals = {Vec3{0.9, 0.4, 0}, Vec3{0.9, -0.4, 0}};
  m.faces = {f01, f12};
  return m;
}

TEST(SweepGraph, DirectionFollowsOrdinateSign) {
  const Mesh m = tiny_mesh();
  const auto g = mesh::build_sweep_graph(m, Vec3{1, 0, 0});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));

  const auto r = mesh::build_sweep_graph(m, Vec3{-1, 0, 0});
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_FALSE(r.has_edge(0, 1));
  EXPECT_TRUE(r.has_edge(2, 1));
}

TEST(SweepGraph, ReentrantFaceProducesBothEdges) {
  // With ordinate nearly orthogonal to face 1-2's mean normal, the two
  // quadrature normals straddle the sign boundary: both edges appear.
  const Mesh m = tiny_mesh();
  const Vec3 omega{-0.1, 1.0, 0.0};  // dot with (0.9, +-0.4, 0): 0.31 / -0.49
  const auto g = mesh::build_sweep_graph(m, omega);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_EQ(mesh::count_reentrant_faces(m, omega), 1u);
  EXPECT_EQ(mesh::count_reentrant_faces(m, Vec3{1, 0, 0}), 0u);
}

TEST(SweepGraph, ZeroDotIsBackward) {
  // The paper's rule: dot > 0 -> e1->e2, otherwise e2->e1.
  Mesh m;
  m.num_elements = 2;
  Face f;
  f.e1 = 0;
  f.e2 = 1;
  f.normals = {Vec3{1, 0, 0}};
  m.faces = {f};
  const auto g = mesh::build_sweep_graph(m, Vec3{0, 1, 0});  // dot == 0
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(SweepGraph, VertexCountMatchesElements) {
  Mesh m;
  m.num_elements = 7;  // isolated elements allowed
  const auto g = mesh::build_sweep_graph(m, Vec3{1, 0, 0});
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(SweepGraph, BuildAllOrdinates) {
  const Mesh m = tiny_mesh();
  const std::vector<Vec3> ords{{1, 0, 0}, {0, 1, 0}, {-1, 0, 0}};
  const auto graphs = mesh::build_sweep_graphs(m, ords);
  ASSERT_EQ(graphs.size(), 3u);
  EXPECT_TRUE(graphs[0].has_edge(0, 1));
  EXPECT_TRUE(graphs[2].has_edge(1, 0));
}

}  // namespace
}  // namespace ecl::test
