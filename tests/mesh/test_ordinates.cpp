#include <gtest/gtest.h>

#include "mesh/ordinates.hpp"

namespace ecl::test {
namespace {

TEST(Ordinates, CountAndUnitNorm) {
  for (unsigned n : {1u, 8u, 30u, 61u}) {
    const auto dirs = mesh::fibonacci_ordinates(n);
    ASSERT_EQ(dirs.size(), n);
    for (const auto& d : dirs) EXPECT_NEAR(mesh::norm(d), 1.0, 1e-12);
  }
}

TEST(Ordinates, Deterministic) {
  const auto a = mesh::fibonacci_ordinates(16);
  const auto b = mesh::fibonacci_ordinates(16);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].z, b[i].z);
  }
}

TEST(Ordinates, CoversBothHemispheres) {
  const auto dirs = mesh::fibonacci_ordinates(32);
  int up = 0;
  int down = 0;
  for (const auto& d : dirs) (d.z > 0 ? up : down)++;
  EXPECT_EQ(up, 16);
  EXPECT_EQ(down, 16);
}

TEST(Ordinates, PairwiseDistinct) {
  const auto dirs = mesh::fibonacci_ordinates(61);
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    for (std::size_t j = i + 1; j < dirs.size(); ++j) {
      EXPECT_GT(mesh::norm(dirs[i] - dirs[j]), 1e-3);
    }
  }
}

TEST(Ordinates, AvoidsExactAxes) {
  // Axis-aligned ordinates produce dot(omega, n) == 0 ties on axis-aligned
  // meshes; the lattice must avoid them.
  const auto dirs = mesh::fibonacci_ordinates(30);
  for (const auto& d : dirs) {
    EXPECT_GT(std::abs(d.x) + std::abs(d.y), 1e-6);
    EXPECT_LT(std::abs(d.z), 1.0);
  }
}

}  // namespace
}  // namespace ecl::test
