// Table-shape tests: each mesh family's sweep graphs must reproduce the
// qualitative SCC structure of the paper's Tables 1-2. These are the
// contracts the benchmark workloads rely on.

#include <gtest/gtest.h>

#include "core/tarjan.hpp"
#include "graph/scc_stats.hpp"
#include "mesh/generators.hpp"
#include "mesh/ordinates.hpp"
#include "mesh/sweep_graph.hpp"

namespace ecl::test {
namespace {

using graph::SccStats;
using mesh::Mesh;

std::vector<SccStats> stats_over_ordinates(const Mesh& m, unsigned n_ord) {
  std::vector<SccStats> all;
  for (const auto& omega : mesh::fibonacci_ordinates(n_ord)) {
    const auto g = mesh::build_sweep_graph(m, omega);
    all.push_back(graph::compute_scc_stats(g, scc::tarjan(g).labels));
  }
  return all;
}

constexpr std::size_t kElems = 4000;
constexpr unsigned kOrds = 6;

TEST(MeshFamilies, BeamHexAllTrivialDeepDag) {
  const auto stats = stats_over_ordinates(mesh::beam_hex(kElems), kOrds);
  for (const auto& s : stats) {
    EXPECT_EQ(s.num_sccs, s.num_vertices) << "beam-hex sweep graphs must be acyclic";
    EXPECT_EQ(s.largest_scc, 1u);
    EXPECT_GT(s.dag_depth, 20u) << "beam-hex DAG should be deep";
    EXPECT_LE(s.max_out_degree, 3u);
  }
}

TEST(MeshFamilies, StarAllTrivialDeepestDag) {
  const auto beam = stats_over_ordinates(mesh::beam_hex(kElems), kOrds);
  const auto star = stats_over_ordinates(mesh::star(kElems), kOrds);
  graph::vid beam_depth = 0;
  graph::vid star_depth = 0;
  for (const auto& s : beam) beam_depth = std::max(beam_depth, s.dag_depth);
  for (const auto& s : star) {
    EXPECT_EQ(s.num_sccs, s.num_vertices) << "star sweep graphs must be acyclic";
    star_depth = std::max(star_depth, s.dag_depth);
    EXPECT_NEAR(s.avg_degree, 2.0, 0.3);  // Table 1: star avg degree 2.00
  }
  EXPECT_GT(star_depth, 2 * beam_depth)
      << "star's trivial-SCC DAG is the deepest of the small meshes";
}

TEST(MeshFamilies, TorchHexSprinkleOfSmallSccs) {
  const auto stats = stats_over_ordinates(mesh::torch_hex(kElems), kOrds);
  bool any_size2 = false;
  for (const auto& s : stats) {
    EXPECT_GE(s.size1_sccs, s.num_vertices * 9 / 10) << "torch-hex is mostly trivial";
    EXPECT_LE(s.largest_scc, 16u) << "torch-hex SCCs stay small (Table 1: 5-8)";
    any_size2 |= s.size2_sccs > 0;
  }
  EXPECT_TRUE(any_size2) << "some ordinates must see size-2 SCCs";
}

TEST(MeshFamilies, TorchTetSmallSccsOnly) {
  const auto stats = stats_over_ordinates(mesh::torch_tet(2 * kElems), kOrds);
  bool any_size2 = false;
  for (const auto& s : stats) {
    EXPECT_LE(s.largest_scc, 12u) << "torch-tet SCCs stay small (Table 1: 4-6)";
    EXPECT_LE(s.max_out_degree, 3u);  // tets have at most 4 faces, <=3 interior
    any_size2 |= s.size2_sccs > 0;
  }
  EXPECT_TRUE(any_size2);
}

TEST(MeshFamilies, ToroidHexClusteredSmallSccs) {
  const auto stats = stats_over_ordinates(mesh::toroid_hex(kElems), kOrds);
  graph::vid max_largest = 0;
  for (const auto& s : stats) {
    EXPECT_GE(s.size1_sccs, s.num_vertices * 8 / 10);
    EXPECT_LE(s.largest_scc, s.num_vertices / 8)
        << "toroid-hex clusters are small relative to the mesh";
    max_largest = std::max(max_largest, s.largest_scc);
  }
  EXPECT_GE(max_largest, 8u)
      << "toroid-hex's correlated curvature must produce clusters beyond 2-cycles";
}

TEST(MeshFamilies, ToroidWedgeManySize2) {
  const auto stats = stats_over_ordinates(mesh::toroid_wedge(kElems), kOrds);
  for (const auto& s : stats) {
    EXPECT_GE(s.size2_sccs, s.num_vertices / 200)
        << "toroid-wedge has thousands of size-2 SCCs at paper scale";
    EXPECT_GE(s.size1_sccs, s.num_vertices / 2);
  }
}

TEST(MeshFamilies, KleinBottleGiantScc) {
  const auto stats = stats_over_ordinates(mesh::klein_bottle(kElems), kOrds);
  for (const auto& s : stats) {
    EXPECT_GE(s.largest_scc, s.num_vertices * 9 / 10)
        << "klein-bottle: the giant SCC holds ~99% of all elements (Table 2)";
    EXPECT_LE(s.dag_depth, 40u) << "klein-bottle DAG is shallow";
  }
}

TEST(MeshFamilies, MobiusStripExtremeVariability) {
  const auto stats = stats_over_ordinates(mesh::mobius_strip(2 * kElems), 12);
  graph::vid min_largest = static_cast<graph::vid>(-1);
  graph::vid max_largest = 0;
  graph::vid max_depth = 0;
  for (const auto& s : stats) {
    min_largest = std::min(min_largest, s.largest_scc);
    max_largest = std::max(max_largest, s.largest_scc);
    max_depth = std::max(max_depth, s.dag_depth);
  }
  EXPECT_GE(max_largest, stats[0].num_vertices / 2)
      << "some ordinate must produce a giant SCC (Table 2: up to 3.2M of 4.2M)";
  EXPECT_LE(min_largest, 64u)
      << "some ordinate must be nearly acyclic (Table 2: min largest SCC = 1)";
  EXPECT_GT(max_depth, 50u) << "the nearly-acyclic ordinates have deep DAGs";
}

TEST(MeshFamilies, TwistHexSingleAllVertexScc) {
  const auto stats = stats_over_ordinates(mesh::twist_hex(kElems), kOrds);
  for (const auto& s : stats) {
    EXPECT_EQ(s.num_sccs, 1u) << "twist-hex: one SCC for every ordinate (Table 2)";
    EXPECT_EQ(s.largest_scc, s.num_vertices);
    EXPECT_EQ(s.dag_depth, 1u);
  }
}

TEST(MeshFamilies, ElementCountsNearTarget) {
  for (std::size_t target : {1000ull, 6000ull}) {
    EXPECT_NEAR(double(mesh::beam_hex(target).num_elements), double(target), 0.5 * target);
    EXPECT_NEAR(double(mesh::star(target).num_elements), double(target), 0.5 * target);
    EXPECT_NEAR(double(mesh::torch_hex(target).num_elements), double(target), 0.5 * target);
    EXPECT_NEAR(double(mesh::toroid_hex(target).num_elements), double(target), 0.5 * target);
    EXPECT_NEAR(double(mesh::klein_bottle(target).num_elements), double(target), 0.5 * target);
    EXPECT_NEAR(double(mesh::twist_hex(target).num_elements), double(target), 0.5 * target);
  }
}

TEST(MeshFamilies, DegreesAreMeshLike) {
  // Table 1-2: mesh graphs have near-constant, tiny degrees (max 5).
  for (const Mesh& m : {mesh::beam_hex(kElems), mesh::torch_hex(kElems),
                        mesh::toroid_hex(kElems), mesh::twist_hex(kElems)}) {
    for (const auto& omega : mesh::fibonacci_ordinates(4)) {
      const auto g = mesh::build_sweep_graph(m, omega);
      graph::eid max_deg = 0;
      for (graph::vid v = 0; v < g.num_vertices(); ++v)
        max_deg = std::max(max_deg, g.out_degree(v));
      EXPECT_LE(max_deg, 6u) << m.name;
    }
  }
}

}  // namespace
}  // namespace ecl::test
