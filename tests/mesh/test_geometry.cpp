#include <gtest/gtest.h>

#include "mesh/geometry.hpp"

namespace ecl::test {
namespace {

using mesh::Vec3;

TEST(Geometry, VectorArithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  const Vec3 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 5);
  EXPECT_DOUBLE_EQ(sum.y, 7);
  EXPECT_DOUBLE_EQ(sum.z, 9);
  const Vec3 diff = b - a;
  EXPECT_DOUBLE_EQ(diff.x, 3);
  const Vec3 scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled.z, 6);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4);
}

TEST(Geometry, DotAndCross) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
  EXPECT_DOUBLE_EQ(dot(x, x), 1.0);
  const Vec3 z = cross(x, y);
  EXPECT_DOUBLE_EQ(z.z, 1.0);
  EXPECT_DOUBLE_EQ(z.x, 0.0);
  // Anti-commutativity.
  const Vec3 mz = cross(y, x);
  EXPECT_DOUBLE_EQ(mz.z, -1.0);
}

TEST(Geometry, NormAndNormalize) {
  EXPECT_DOUBLE_EQ(mesh::norm(Vec3{3, 4, 0}), 5.0);
  const Vec3 n = mesh::normalized(Vec3{0, 0, 7});
  EXPECT_DOUBLE_EQ(n.z, 1.0);
  // Zero vector is returned unchanged (no NaNs).
  const Vec3 zero = mesh::normalized(Vec3{});
  EXPECT_DOUBLE_EQ(zero.x, 0.0);
  EXPECT_FALSE(std::isnan(zero.x));
}

TEST(Geometry, PlusEquals) {
  Vec3 acc;
  acc += Vec3{1, 1, 1};
  acc += Vec3{2, 0, -1};
  EXPECT_DOUBLE_EQ(acc.x, 3);
  EXPECT_DOUBLE_EQ(acc.z, 0);
}

}  // namespace
}  // namespace ecl::test
