#include <gtest/gtest.h>

#include "mesh/suite.hpp"
#include "support/env.hpp"

namespace ecl::test {
namespace {

TEST(MeshSuite, SmallSuiteMatchesTable1) {
  const auto suite = mesh::small_mesh_suite();
  ASSERT_EQ(suite.size(), 6u);
  const auto* beam = mesh::find_group(suite, "beam-hex");
  ASSERT_NE(beam, nullptr);
  EXPECT_EQ(beam->num_ordinates, 30u);
  EXPECT_EQ(beam->paper_elements, 262'144u);
  const auto* star = mesh::find_group(suite, "star");
  ASSERT_NE(star, nullptr);
  EXPECT_EQ(star->num_ordinates, 8u);
}

TEST(MeshSuite, LargeSuiteMatchesTable2) {
  const auto suite = mesh::large_mesh_suite();
  ASSERT_EQ(suite.size(), 7u);
  const auto* twist = mesh::find_group(suite, "twist-hex");
  ASSERT_NE(twist, nullptr);
  EXPECT_EQ(twist->num_ordinates, 61u);
  EXPECT_EQ(twist->paper_elements, 6'291'456u);
  const auto* klein = mesh::find_group(suite, "klein-bottle");
  ASSERT_NE(klein, nullptr);
  EXPECT_EQ(klein->paper_elements, 8'388'608u);
}

TEST(MeshSuite, FindGroupReturnsNullForUnknown) {
  EXPECT_EQ(mesh::find_group(mesh::small_mesh_suite(), "nonexistent"), nullptr);
}

TEST(MeshSuite, GenerateScaledRespectsScaleFactor) {
  const auto suite = mesh::small_mesh_suite();
  const auto& group = suite.front();
  const auto m = group.generate_scaled();
  const double expected = double(group.paper_elements) * ecl::scale_factor();
  EXPECT_GT(m.num_elements, 0u);
  EXPECT_LT(double(m.num_elements), std::max(expected * 2.5, 2000.0));
}

TEST(MeshSuite, EveryGeneratorRuns) {
  for (const auto& suite : {mesh::small_mesh_suite(), mesh::large_mesh_suite()}) {
    for (const auto& group : suite) {
      const auto m = group.generate(500);
      EXPECT_GT(m.num_elements, 100u) << group.name;
      EXPECT_GT(m.faces.size(), 100u) << group.name;
      EXPECT_EQ(m.name, group.name);
    }
  }
}

}  // namespace
}  // namespace ecl::test
