// Resolution-independence tests for the face-local curvature model: the
// qualitative SCC structure of each mesh family must survive refinement
// (the paper's meshes keep their SCC profiles from 196k to 8.4M elements).

#include <gtest/gtest.h>

#include "core/tarjan.hpp"
#include "graph/scc_stats.hpp"
#include "mesh/generators.hpp"
#include "mesh/ordinates.hpp"
#include "mesh/sweep_graph.hpp"

namespace ecl::test {
namespace {

double giant_fraction(const mesh::Mesh& m, unsigned ordinates) {
  double worst = 1.0;
  for (const auto& omega : mesh::fibonacci_ordinates(ordinates)) {
    const auto g = mesh::build_sweep_graph(m, omega);
    const auto s = graph::compute_scc_stats(g, scc::tarjan(g).labels);
    worst = std::min(worst, double(s.largest_scc) / double(s.num_vertices));
  }
  return worst;
}

TEST(CurvatureScaling, KleinGiantSccSurvivesRefinement) {
  EXPECT_GT(giant_fraction(mesh::klein_bottle(1500), 5), 0.85);
  EXPECT_GT(giant_fraction(mesh::klein_bottle(12000), 5), 0.85);
}

TEST(CurvatureScaling, TwistSingleSccSurvivesRefinement) {
  EXPECT_DOUBLE_EQ(giant_fraction(mesh::twist_hex(1500), 5), 1.0);
  EXPECT_DOUBLE_EQ(giant_fraction(mesh::twist_hex(12000), 5), 1.0);
}

TEST(CurvatureScaling, ToroidSmallSccsStaySmallUnderRefinement) {
  for (std::size_t elems : {2000ull, 16000ull}) {
    const auto m = mesh::toroid_hex(elems);
    for (const auto& omega : mesh::fibonacci_ordinates(4)) {
      const auto g = mesh::build_sweep_graph(m, omega);
      const auto s = graph::compute_scc_stats(g, scc::tarjan(g).labels);
      EXPECT_LT(s.largest_scc, s.num_vertices / 8) << elems;
      EXPECT_GE(s.size1_sccs, s.num_vertices * 8 / 10) << elems;
    }
  }
}

TEST(CurvatureScaling, TorchSize2FractionIsStable) {
  // The fraction of vertices in size-2 SCCs should be of the same order at
  // both resolutions (not vanish, not explode).
  auto size2_fraction = [](std::size_t elems) {
    const auto m = mesh::torch_hex(elems);
    double total = 0.0;
    const auto ords = mesh::fibonacci_ordinates(4);
    for (const auto& omega : ords) {
      const auto g = mesh::build_sweep_graph(m, omega);
      const auto s = graph::compute_scc_stats(g, scc::tarjan(g).labels);
      total += double(2 * s.size2_sccs) / double(s.num_vertices);
    }
    return total / double(ords.size());
  };
  const double coarse = size2_fraction(2000);
  const double fine = size2_fraction(16000);
  EXPECT_GT(fine, 0.0);
  EXPECT_LT(fine, 0.2);
  EXPECT_LT(std::abs(coarse - fine), 0.1);
}

}  // namespace
}  // namespace ecl::test
