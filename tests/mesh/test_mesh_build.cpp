#include <gtest/gtest.h>

#include "mesh/generators/structured.hpp"
#include "mesh/mesh.hpp"

namespace ecl::test {
namespace {

using mesh::Cell;
using mesh::Mesh;
using mesh::Vec3;

/// Two unit cubes side by side along x: one shared interior face.
std::pair<std::vector<Vec3>, std::vector<Cell>> two_cubes() {
  std::vector<Vec3> verts;
  for (int k = 0; k <= 1; ++k)
    for (int j = 0; j <= 1; ++j)
      for (int i = 0; i <= 2; ++i) verts.push_back({double(i), double(j), double(k)});
  auto node = [](int i, int j, int k) { return std::uint32_t(k * 6 + j * 3 + i); };
  std::vector<Cell> cells;
  for (int c = 0; c < 2; ++c) {
    cells.push_back(Cell{{node(c, 0, 0), node(c + 1, 0, 0), node(c, 1, 0), node(c + 1, 1, 0),
                          node(c, 0, 1), node(c + 1, 0, 1), node(c, 1, 1), node(c + 1, 1, 1)}});
  }
  return {verts, cells};
}

TEST(MeshBuild, TwoCubesShareOneFace) {
  const auto [verts, cells] = two_cubes();
  const Mesh m = mesh::build_mesh_from_cells("pair", mesh::ElementType::Hexahedron, 1, verts, cells);
  EXPECT_EQ(m.num_elements, 2u);
  ASSERT_EQ(m.faces.size(), 1u);
  EXPECT_EQ(m.faces[0].e1, 0u);
  EXPECT_EQ(m.faces[0].e2, 1u);
  ASSERT_EQ(m.faces[0].normals.size(), 4u);  // 2x2 quadrature
  for (const Vec3& n : m.faces[0].normals) {
    // Planar face at x = 1, oriented from element 0 to element 1: +x.
    EXPECT_NEAR(n.x, 1.0, 1e-12);
    EXPECT_NEAR(n.y, 0.0, 1e-12);
    EXPECT_NEAR(mesh::norm(n), 1.0, 1e-12);
  }
}

TEST(MeshBuild, ElementCentersComputed) {
  const auto [verts, cells] = two_cubes();
  const Mesh m = mesh::build_mesh_from_cells("pair", mesh::ElementType::Hexahedron, 1, verts, cells);
  ASSERT_EQ(m.element_centers.size(), 2u);
  EXPECT_NEAR(m.element_centers[0].x, 0.5, 1e-12);
  EXPECT_NEAR(m.element_centers[1].x, 1.5, 1e-12);
}

TEST(MeshBuild, CurvatureFieldPerturbsNormals) {
  const auto [verts, cells] = two_cubes();
  const mesh::CurvatureField tilt_y = [](const Vec3&, double s, double) -> Vec3 {
    return {0.0, (s - 0.5) * 2.0, 0.0};
  };
  const Mesh m =
      mesh::build_mesh_from_cells("pair", mesh::ElementType::Hexahedron, 3, verts, cells, tilt_y);
  double min_y = 1.0;
  double max_y = -1.0;
  for (const Vec3& n : m.faces[0].normals) {
    min_y = std::min(min_y, n.y);
    max_y = std::max(max_y, n.y);
    EXPECT_NEAR(mesh::norm(n), 1.0, 1e-12);  // still unit length
  }
  EXPECT_LT(min_y, -0.1);
  EXPECT_GT(max_y, 0.1);  // fan straddles the n_y = 0 plane
}

TEST(MeshBuild, StructuredGridFaceCount) {
  // A 3x3x3 box of hexes: interior faces = 3 directions * 2 * 3 * 3 = 54.
  mesh::detail::HexGridSpec spec;
  spec.ni = spec.nj = spec.nk = 3;
  spec.map = [](double x, double y, double z) -> Vec3 { return {x, y, z}; };
  const auto soup = mesh::detail::structured_hex_grid(spec);
  EXPECT_EQ(soup.cells.size(), 27u);
  const Mesh m =
      mesh::build_mesh_from_cells("box", mesh::ElementType::Hexahedron, 1, soup.vertices, soup.cells);
  EXPECT_EQ(m.faces.size(), 54u);
}

TEST(MeshBuild, PeriodicGridWrapsFaces) {
  // Periodic in x: one extra layer of faces connecting last to first.
  mesh::detail::HexGridSpec spec;
  spec.ni = 4;
  spec.nj = 1;
  spec.nk = 1;
  spec.periodic_i = true;
  spec.map = [](double x, double y, double z) -> Vec3 {
    // A ring in the xz-plane, so wrapped cells don't coincide.
    const double a = 6.283185307179586 * x;
    return {std::cos(a) * (2 + y), std::sin(a) * (2 + y), z};
  };
  const auto soup = mesh::detail::structured_hex_grid(spec);
  const Mesh m =
      mesh::build_mesh_from_cells("ring", mesh::ElementType::Hexahedron, 1, soup.vertices, soup.cells);
  EXPECT_EQ(m.num_elements, 4u);
  EXPECT_EQ(m.faces.size(), 4u);  // cycle of 4 faces
}

TEST(MeshBuild, TetSubdivisionIsConforming) {
  // 2x2x2 box split into tets: every interior triangle must match exactly
  // (no orphaned facets beyond the boundary).
  mesh::detail::HexGridSpec spec;
  spec.ni = spec.nj = spec.nk = 2;
  spec.map = [](double x, double y, double z) -> Vec3 { return {x, y, z}; };
  const auto hexes = mesh::detail::structured_hex_grid(spec);
  const auto tets = mesh::detail::subdivide_hexes_to_tets(hexes);
  EXPECT_EQ(tets.cells.size(), 48u);
  const Mesh m =
      mesh::build_mesh_from_cells("tets", mesh::ElementType::Tetrahedron, 1, tets.vertices, tets.cells);
  // 6 tets/hex have 7 internal faces each (6 around the diagonal + pairs):
  // count total = (4 faces * 48 cells - boundary) / 2; just check parity
  // and that each tet has at least one interior neighbor.
  std::vector<int> deg(m.num_elements, 0);
  for (const auto& f : m.faces) {
    ++deg[f.e1];
    ++deg[f.e2];
  }
  for (int d : deg) EXPECT_GE(d, 1);
  for (const auto& f : m.faces) EXPECT_EQ(f.normals.size(), 3u);
}

TEST(MeshBuild, WedgeSubdivisionIsConforming) {
  mesh::detail::HexGridSpec spec;
  spec.ni = spec.nj = spec.nk = 2;
  spec.map = [](double x, double y, double z) -> Vec3 { return {x, y, z}; };
  const auto hexes = mesh::detail::structured_hex_grid(spec);
  const auto wedges = mesh::detail::subdivide_hexes_to_wedges(hexes);
  EXPECT_EQ(wedges.cells.size(), 16u);
  const Mesh m = mesh::build_mesh_from_cells("wedges", mesh::ElementType::Wedge, 1,
                                             wedges.vertices, wedges.cells);
  // Each hex's two wedges share the internal diagonal quad: >= 8 faces.
  EXPECT_GE(m.faces.size(), 8u);
  std::vector<int> deg(m.num_elements, 0);
  for (const auto& f : m.faces) {
    ++deg[f.e1];
    ++deg[f.e2];
  }
  for (int d : deg) EXPECT_GE(d, 1);
}

TEST(MeshBuild, SurfaceMeshEdges) {
  // A 2x2 flat patch of quads: 4 interior edges.
  std::vector<Vec3> verts;
  for (int j = 0; j <= 2; ++j)
    for (int i = 0; i <= 2; ++i) verts.push_back({double(i), double(j), 0.0});
  auto node = [](int i, int j) { return std::uint32_t(j * 3 + i); };
  std::vector<Cell> quads;
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i < 2; ++i)
      quads.push_back(
          Cell{{node(i, j), node(i + 1, j), node(i + 1, j + 1), node(i, j + 1)}});
  const Mesh m = mesh::build_surface_mesh("patch", 1, verts, quads, 2);
  EXPECT_EQ(m.num_elements, 4u);
  EXPECT_EQ(m.faces.size(), 4u);
  for (const auto& f : m.faces) {
    ASSERT_EQ(f.normals.size(), 2u);
    for (const Vec3& n : f.normals) {
      EXPECT_NEAR(n.z, 0.0, 1e-12);  // in-plane normals on a flat patch
      EXPECT_NEAR(mesh::norm(n), 1.0, 1e-12);
    }
  }
}

TEST(MeshBuild, DimsForTargetApproximatesCount) {
  const auto d = mesh::detail::dims_for_target(4096, 4.0, 1.0, 1.0);
  const std::size_t count = std::size_t(d.ni) * d.nj * d.nk;
  EXPECT_GT(count, 4096u / 2);
  EXPECT_LT(count, 4096u * 2);
  EXPECT_NEAR(double(d.ni) / d.nj, 4.0, 1.2);
}

TEST(MeshBuild, ElementTypeNames) {
  EXPECT_STREQ(mesh::to_string(mesh::ElementType::Hexahedron), "Hexahedral");
  EXPECT_STREQ(mesh::to_string(mesh::ElementType::Wedge), "Wedge");
}

}  // namespace
}  // namespace ecl::test
