#include <gtest/gtest.h>

#include "core/tarjan.hpp"
#include "graph/generators.hpp"
#include "mesh/replicate.hpp"

namespace ecl::test {
namespace {

TEST(Replicate, SizeFollowsPaperFormula) {
  // §5.1.4: the expanded meshes have exactly 10 |V| - 9 vertices.
  const auto g = graph::cycle_graph(100);
  const auto big = mesh::replicate_chain(g, 10);
  EXPECT_EQ(big.num_vertices(), 10u * 100 - 9);
  EXPECT_EQ(big.num_edges(), 10u * 100);
}

TEST(Replicate, SccCountScalesWithCopies) {
  // A graph of all-trivial SCCs: copies share one vertex, so the count is
  // copies * (n - 1) + 1.
  const auto g = graph::path_graph(50);
  const auto big = mesh::replicate_chain(g, 4);
  const auto r = scc::tarjan(big);
  EXPECT_EQ(r.num_components, big.num_vertices());
}

TEST(Replicate, GluedCyclesStayDistinct) {
  // Chaining cycles merges one vertex but must NOT merge the SCCs, because
  // the shared vertex belongs to both copies' edge sets... it does merge
  // them into one SCC only if edges allow a round trip; for a directed
  // cycle the shared vertex makes the two rings touch at a point, which
  // creates mutual reachability through that point.
  const auto g = graph::cycle_graph(10);
  const auto big = mesh::replicate_chain(g, 3);
  const auto r = scc::tarjan(big);
  // Rings touch at single vertices: v reaches the next ring and back via
  // the shared vertex, so everything merges into one SCC.
  EXPECT_EQ(r.num_components, 1u);
}

TEST(Replicate, EdgeCases) {
  EXPECT_EQ(mesh::replicate_chain(graph::Digraph(0, graph::EdgeList{}), 5).num_vertices(), 0u);
  EXPECT_EQ(mesh::replicate_chain(graph::Digraph(1, graph::EdgeList{}), 5).num_vertices(), 1u);
  const auto g = graph::path_graph(10);
  EXPECT_EQ(mesh::replicate_chain(g, 1).num_vertices(), 10u);
  EXPECT_EQ(mesh::replicate_chain(g, 0).num_vertices(), 0u);
}

}  // namespace
}  // namespace ecl::test
