#ifndef ECL_TESTS_COMMON_TEST_GRAPHS_HPP
#define ECL_TESTS_COMMON_TEST_GRAPHS_HPP

// Shared graph fixtures for the test suite: the paper's illustrative
// examples and a family of structured/random graphs with known SCC
// decompositions.

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace ecl::test {

using graph::Digraph;
using graph::EdgeList;
using graph::vid;

/// A 12-vertex, 15-edge graph in the spirit of the paper's Fig. 3: two
/// mutually unreachable clusters, a chain of SCCs in each.
///
/// Cluster 1: {0} -> {2,7} -> {5} -> {1,4,9}     (max SCC rooted at 9)
/// Cluster 2: {3,6} -> {10} -> {8,11}            (max SCC rooted at 11)
inline Digraph fig3_graph() {
  EdgeList e;
  // cluster 1
  e.add(2, 7);
  e.add(7, 2);
  e.add(0, 2);
  e.add(7, 5);
  e.add(2, 5);
  e.add(5, 9);
  e.add(9, 4);
  e.add(4, 1);
  e.add(1, 9);
  // cluster 2
  e.add(3, 6);
  e.add(6, 3);
  e.add(3, 10);
  e.add(10, 11);
  e.add(11, 8);
  e.add(8, 11);
  return Digraph(12, e);
}

/// Expected components of fig3_graph(), keyed by max member ID.
inline std::vector<std::vector<vid>> fig3_components() {
  return {{0}, {2, 7}, {5}, {1, 4, 9}, {3, 6}, {10}, {8, 11}};
}

/// The Fig. 1 example graph used to illustrate Forward-Backward: a graph
/// where pivot 0's SCC is {0, 1, 2} with forward-only, backward-only, and
/// unreachable remainders.
inline Digraph fig1_graph() {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);  // pivot SCC {0,1,2}
  e.add(2, 3);
  e.add(3, 4);  // forward-only chain
  e.add(5, 0);
  e.add(6, 5);  // backward-only chain
  e.add(7, 8);  // unreachable pair
  return Digraph(9, e);
}

/// Small SCC patterns from Fig. 2: size-1, size-2, and size-3 components
/// hanging off a host graph.
inline Digraph fig2_graph() {
  EdgeList e;
  // (a) size-1: vertex 0 feeding into the rest
  e.add(0, 1);
  // (b) size-2: 1 <-> 2
  e.add(1, 2);
  e.add(2, 1);
  // (c) size-3 ring: 3 -> 4 -> 5 -> 3, entered from 2
  e.add(2, 3);
  e.add(3, 4);
  e.add(4, 5);
  e.add(5, 3);
  return Digraph(6, e);
}

/// Named deterministic graph family used by parameterized cross-checks.
struct NamedGraph {
  std::string name;
  Digraph graph;
};

inline std::vector<NamedGraph> structured_graphs() {
  std::vector<NamedGraph> graphs;
  graphs.push_back({"empty", Digraph(0, EdgeList{})});
  graphs.push_back({"single_vertex", Digraph(1, EdgeList{})});
  {
    EdgeList e;
    e.add(0, 0);
    graphs.push_back({"self_loop", Digraph(1, e)});
  }
  {
    EdgeList e;
    e.add(0, 1);
    e.add(1, 0);
    graphs.push_back({"two_cycle", Digraph(2, e)});
  }
  graphs.push_back({"path_16", graph::path_graph(16)});
  graphs.push_back({"path_257", graph::path_graph(257)});
  graphs.push_back({"cycle_16", graph::cycle_graph(16)});
  graphs.push_back({"cycle_1000", graph::cycle_graph(1000)});
  graphs.push_back({"clique_8", graph::bidirectional_clique(8)});
  graphs.push_back({"grid_9x9", graph::grid_dag(9, 9)});
  graphs.push_back({"cycle_chain_20x5", graph::cycle_chain(20, 5)});
  graphs.push_back({"cycle_chain_100x1", graph::cycle_chain(100, 1)});
  graphs.push_back({"fig1", fig1_graph()});
  graphs.push_back({"fig2", fig2_graph()});
  graphs.push_back({"fig3", fig3_graph()});
  return graphs;
}

/// Random digraphs across a density sweep (deterministic seeds).
inline std::vector<NamedGraph> random_graphs() {
  std::vector<NamedGraph> graphs;
  Rng rng(0xec1'5cc);
  for (vid n : {20u, 100u, 500u}) {
    for (double density : {0.5, 1.0, 2.0, 4.0}) {
      const auto m = static_cast<graph::eid>(density * n);
      graphs.push_back({"er_n" + std::to_string(n) + "_m" + std::to_string(m),
                        graph::random_digraph(n, m, rng)});
    }
  }
  graphs.push_back({"rmat_10", graph::rmat(10, 4.0, rng)});
  {
    graph::SccProfile p;
    p.num_vertices = 600;
    p.giant_fraction = 0.6;
    p.size2_sccs = 20;
    p.mid_sccs = 5;
    p.dag_depth = 8;
    graphs.push_back({"profile_giant", graph::scc_profile_graph(p, rng)});
  }
  {
    graph::SccProfile p;
    p.num_vertices = 500;
    p.giant_fraction = 0.0;
    p.size2_sccs = 60;
    p.mid_sccs = 0;
    p.dag_depth = 40;
    p.power_law = false;
    p.avg_degree = 3.0;
    graphs.push_back({"profile_mesh_like", graph::scc_profile_graph(p, rng)});
  }
  return graphs;
}

inline std::vector<NamedGraph> all_test_graphs() {
  auto graphs = structured_graphs();
  for (auto& g : random_graphs()) graphs.push_back(std::move(g));
  return graphs;
}

}  // namespace ecl::test

#endif  // ECL_TESTS_COMMON_TEST_GRAPHS_HPP
