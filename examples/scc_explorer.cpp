// SCC explorer: run any registered algorithm on a graph file or a
// generated workload, print a Table 1/3-style structural row, and compare
// algorithms head to head.
//
//   $ ./scc_explorer --algo ecl-a100 --generate rmat:14:8
//   $ ./scc_explorer --algo all --generate cycle-chain:100:50
//   $ ./scc_explorer --algo tarjan --file my_graph.mtx
//
// Generators: rmat:<scale>:<edge-factor>, er:<n>:<m>,
//             cycle-chain:<k>:<len>, grid:<rows>:<cols>, path:<n>,
//             cycle:<n>.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "graph/degree_stats.hpp"
#include "graph/io.hpp"
#include "graph/scc_stats.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

namespace {

using namespace ecl;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) {
      parts.push_back(s.substr(pos));
      break;
    }
    parts.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return parts;
}

std::optional<graph::Digraph> generate(const std::string& spec) {
  const auto parts = split(spec, ':');
  auto arg = [&](std::size_t i, std::uint64_t fallback) -> std::uint64_t {
    return parts.size() > i ? std::strtoull(parts[i].c_str(), nullptr, 10) : fallback;
  };
  Rng rng(0xec15cc);
  const std::string& kind = parts[0];
  if (kind == "rmat") return graph::rmat(unsigned(arg(1, 12)), double(arg(2, 8)), rng);
  if (kind == "er") return graph::random_digraph(graph::vid(arg(1, 1000)), arg(2, 4000), rng);
  if (kind == "cycle-chain")
    return graph::cycle_chain(graph::vid(arg(1, 50)), graph::vid(arg(2, 10)));
  if (kind == "grid") return graph::grid_dag(graph::vid(arg(1, 30)), graph::vid(arg(2, 30)));
  if (kind == "path") return graph::path_graph(graph::vid(arg(1, 1000)));
  if (kind == "cycle") return graph::cycle_graph(graph::vid(arg(1, 1000)));
  return std::nullopt;
}

void print_stats_row(const graph::Digraph& g, std::span<const graph::vid> labels) {
  const auto s = graph::compute_scc_stats(g, labels);
  TextTable table({"Vertices", "Edges", "Avg deg", "Max din", "Max dout", "SCCs", "Size-1",
                   "Size-2", "Largest", "DAG depth"});
  table.add_row({with_commas(s.num_vertices), with_commas(s.num_edges), fixed(s.avg_degree, 2),
                 std::to_string(s.max_in_degree), std::to_string(s.max_out_degree),
                 with_commas(s.num_sccs), with_commas(s.size1_sccs), with_commas(s.size2_sccs),
                 with_commas(s.largest_scc), with_commas(s.dag_depth)});
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "ecl-a100";
  std::string file;
  std::string gen = "rmat:12:8";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--algo") algo = argv[i + 1];
    else if (flag == "--file") file = argv[i + 1];
    else if (flag == "--generate") gen = argv[i + 1];
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
  }

  graph::Digraph g;
  if (!file.empty()) {
    std::printf("loading %s...\n", file.c_str());
    g = graph::read_graph_file(file);
  } else {
    std::printf("generating %s...\n", gen.c_str());
    const auto generated = generate(gen);
    if (!generated) {
      std::fprintf(stderr, "unknown generator spec '%s'\n", gen.c_str());
      return 1;
    }
    g = *generated;
  }

  const auto degrees = graph::compute_degree_stats(g);
  std::printf("degree profile: avg %.2f, max out %llu, max in %llu, hub ratio %.1f -> %s\n",
              degrees.avg, static_cast<unsigned long long>(degrees.max_out),
              static_cast<unsigned long long>(degrees.max_in), degrees.hub_ratio,
              graph::looks_power_law(degrees) ? "power-law-like" : "mesh-like");

  const auto oracle = scc::tarjan(g);
  std::printf("\nstructure (Tarjan):\n");
  print_stats_row(g, oracle.labels);

  std::vector<std::string> algos =
      (algo == "all") ? scc::algorithm_names() : std::vector<std::string>{algo};
  std::printf("\n%-16s %12s %12s %8s %10s %8s\n", "algorithm", "time (ms)", "Mverts/s",
              "outer", "launches", "verify");
  for (const auto& name : algos) {
    const auto run = scc::find_algorithm(name);
    scc::SccResult result;
    const double seconds = median_seconds(3, [&] { result = run(g); });
    const bool ok = scc::same_partition(result.labels, oracle.labels);
    std::printf("%-16s %12.3f %12.2f %8llu %10llu %8s\n", name.c_str(), seconds * 1e3,
                double(g.num_vertices()) / seconds / 1e6,
                static_cast<unsigned long long>(result.metrics.outer_iterations),
                static_cast<unsigned long long>(result.metrics.kernel_launches),
                ok ? "OK" : "FAIL");
    if (!ok) return 1;
  }
  return 0;
}
