// Condensation pipeline: the web-graph / reachability use case from the
// paper's introduction (data compression, link databases [23, 25]).
//
//   $ ./condensation_pipeline [scale] [edge-factor]
//
// Generates a power-law digraph, contracts its SCCs into the condensation
// DAG with ECL-SCC, and answers reachability queries on the (much smaller)
// DAG — demonstrating why SCC detection is the first step of reachability
// indexing.

#include <cstdio>
#include <cstdlib>

#include "core/ecl_scc.hpp"
#include "graph/condensation.hpp"
#include "graph/generators.hpp"
#include "graph/reach.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace ecl;

  const unsigned scale = argc > 1 ? unsigned(std::atoi(argv[1])) : 14;
  const double edge_factor = argc > 2 ? std::atof(argv[2]) : 8.0;

  Rng rng(0xeb);
  std::printf("generating R-MAT graph (scale %u, edge factor %.1f)...\n", scale, edge_factor);
  const graph::Digraph g = graph::rmat(scale, edge_factor, rng);
  std::printf("  %s vertices, %s edges\n", with_commas(g.num_vertices()).c_str(),
              with_commas(g.num_edges()).c_str());

  Timer timer;
  const auto scc_result = scc::ecl_scc(g);
  std::printf("ECL-SCC: %u components in %.2f ms\n", scc_result.num_components,
              timer.milliseconds());

  std::vector<graph::vid> dense(scc_result.labels.begin(), scc_result.labels.end());
  const graph::vid k = graph::normalize_labels(dense);
  const graph::Digraph dag = graph::condensation(g, dense, k);
  std::printf("condensation: %s vertices, %s edges (%.1f%% of the original), depth %u\n",
              with_commas(dag.num_vertices()).c_str(), with_commas(dag.num_edges()).c_str(),
              100.0 * double(dag.num_vertices()) / double(g.num_vertices()),
              graph::dag_depth(dag));

  // Reachability queries: u reaches v iff comp(u) reaches comp(v) in the
  // DAG (trivially true when they share a component).
  std::printf("\nsample reachability queries (via the condensation):\n");
  unsigned reachable = 0;
  constexpr unsigned kQueries = 10;
  for (unsigned q = 0; q < kQueries; ++q) {
    const auto u = graph::vid(rng.bounded(g.num_vertices()));
    const auto v = graph::vid(rng.bounded(g.num_vertices()));
    const bool same = dense[u] == dense[v];
    const bool reach = same || graph::is_reachable(dag, dense[u], dense[v]);
    reachable += reach;
    std::printf("  %7u -> %7u : %s%s\n", u, v, reach ? "reachable" : "not reachable",
                same ? " (same SCC)" : "");
  }
  std::printf("%u/%u reachable\n", reachable, kQueries);
  return 0;
}
