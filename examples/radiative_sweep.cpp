// Radiative-transfer sweep: the end-to-end workflow that motivates the
// paper (§1, §4.1).
//
//   $ ./radiative_sweep [mesh-family] [elements] [ordinates]
//   $ ./radiative_sweep toroid-hex 20000 8
//
// For each discrete ordinate this example (1) builds the directed sweep
// graph induced by the mesh's face normals, (2) detects its SCCs with
// ECL-SCC — the cycles that would livelock a naive sweep, and (3) runs the
// transport sweep over the condensation DAG, iterating inside each cycle.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/ecl_scc.hpp"
#include "graph/scc_stats.hpp"
#include "mesh/generators.hpp"
#include "mesh/ordinates.hpp"
#include "mesh/suite.hpp"
#include "mesh/sweep_graph.hpp"
#include "support/timer.hpp"
#include "sweep/sweep_solver.hpp"

int main(int argc, char** argv) {
  using namespace ecl;

  const std::string family = argc > 1 ? argv[1] : "toroid-hex";
  const std::size_t elements = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000;
  const unsigned num_ordinates = argc > 3 ? unsigned(std::atoi(argv[3])) : 8;

  const auto small = mesh::small_mesh_suite();
  const auto large = mesh::large_mesh_suite();
  const mesh::MeshGroup* group = mesh::find_group(small, family);
  if (group == nullptr) group = mesh::find_group(large, family);
  if (group == nullptr) {
    std::fprintf(stderr, "unknown mesh family '%s'; options:", family.c_str());
    for (const auto& g : small) std::fprintf(stderr, " %s", g.name.c_str());
    std::fprintf(stderr, " klein-bottle mobius-strip twist-hex\n");
    return 1;
  }

  std::printf("generating %s mesh with ~%zu elements...\n", family.c_str(), elements);
  const mesh::Mesh m = group->generate(elements);
  std::printf("  %u elements, %zu interior faces (%s, order %d)\n", m.num_elements,
              m.faces.size(), mesh::to_string(m.element_type), m.order);

  const auto ordinates = mesh::fibonacci_ordinates(num_ordinates);
  const std::vector<double> source(m.num_elements, 1.0);

  double total_scc_seconds = 0.0;
  double total_sweep_seconds = 0.0;
  std::uint64_t total_cycles = 0;

  std::printf("\n%-4s %9s %9s %10s %8s %10s %11s\n", "ord", "edges", "SCCs", "largest",
              "cycles", "SCC time", "sweep time");
  for (unsigned d = 0; d < ordinates.size(); ++d) {
    const auto g = mesh::build_sweep_graph(m, ordinates[d]);

    Timer scc_timer;
    const auto scc_result = scc::ecl_scc(g);
    const double scc_seconds = scc_timer.seconds();
    total_scc_seconds += scc_seconds;

    const auto stats = graph::compute_scc_stats(g, scc_result.labels);
    const bool cyclic = sweep::would_livelock(g, scc_result.labels);

    Timer sweep_timer;
    const auto sweep_result = sweep::sweep(g, scc_result.labels, source);
    const double sweep_seconds = sweep_timer.seconds();
    total_sweep_seconds += sweep_seconds;
    total_cycles += sweep_result.nontrivial_sccs;

    if (!sweep_result.converged) {
      std::fprintf(stderr, "ordinate %u: sweep failed to converge\n", d);
      return 1;
    }
    std::printf("%-4u %9llu %9u %10u %8llu %8.2f ms %9.2f ms%s\n", d,
                static_cast<unsigned long long>(g.num_edges()), stats.num_sccs,
                stats.largest_scc,
                static_cast<unsigned long long>(sweep_result.nontrivial_sccs),
                scc_seconds * 1e3, sweep_seconds * 1e3,
                cyclic ? "  (livelock without SCC detection)" : "");
  }

  std::printf("\nall %u ordinates swept: SCC detection %.1f ms, sweeps %.1f ms, "
              "%llu cycles broken\n",
              num_ordinates, total_scc_seconds * 1e3, total_sweep_seconds * 1e3,
              static_cast<unsigned long long>(total_cycles));
  return 0;
}
