// Quickstart: build a small directed graph, detect its strongly connected
// components with ECL-SCC, and inspect the result.
//
//   $ ./quickstart
//
// The graph is the running example of the paper's Fig. 3: 12 vertices in
// two mutually unreachable clusters, each a chain of small SCCs.

#include <cstdio>

#include "core/ecl_scc.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "graph/digraph.hpp"

int main() {
  using namespace ecl;

  // 1. Build a directed graph from an edge list.
  graph::EdgeList edges;
  // cluster 1: {0} -> {2,7} -> {5} -> {1,4,9}
  edges.add(2, 7);
  edges.add(7, 2);
  edges.add(0, 2);
  edges.add(7, 5);
  edges.add(2, 5);
  edges.add(5, 9);
  edges.add(9, 4);
  edges.add(4, 1);
  edges.add(1, 9);
  // cluster 2: {3,6} -> {10} -> {8,11}
  edges.add(3, 6);
  edges.add(6, 3);
  edges.add(3, 10);
  edges.add(10, 11);
  edges.add(11, 8);
  edges.add(8, 11);
  const graph::Digraph g(12, edges);

  // 2. Run ECL-SCC (on the process-wide simulated A100 device).
  const scc::SccResult result = scc::ecl_scc(g);

  // 3. Each vertex's label is the maximum vertex ID in its component.
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("components found: %u\n", result.num_components);
  for (graph::vid v = 0; v < g.num_vertices(); ++v) {
    std::printf("  vertex %2u -> component %2u\n", v, result.labels[v]);
  }

  // 4. Algorithm metrics: the quantities the paper's Fig. 14 studies.
  std::printf("outer iterations:   %llu\n",
              static_cast<unsigned long long>(result.metrics.outer_iterations));
  std::printf("propagation rounds: %llu\n",
              static_cast<unsigned long long>(result.metrics.propagation_rounds));
  std::printf("kernel launches:    %llu\n",
              static_cast<unsigned long long>(result.metrics.kernel_launches));
  std::printf("edges removed:      %llu\n",
              static_cast<unsigned long long>(result.metrics.edges_removed));
  const double total_phase = result.metrics.phase1_seconds + result.metrics.phase2_seconds +
                             result.metrics.phase3_seconds;
  if (total_phase > 0.0) {
    std::printf("phase split:        init %.0f%% / propagate %.0f%% / detect+remove %.0f%%\n",
                100.0 * result.metrics.phase1_seconds / total_phase,
                100.0 * result.metrics.phase2_seconds / total_phase,
                100.0 * result.metrics.phase3_seconds / total_phase);
  }

  // 5. Verify against Tarjan's algorithm, as the paper's methodology does.
  const auto oracle = scc::tarjan(g);
  const bool ok = scc::same_partition(result.labels, oracle.labels);
  std::printf("verification vs Tarjan: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
