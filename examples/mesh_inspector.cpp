// Mesh inspector: per-ordinate structural report for any mesh family —
// re-entrant face counts, SCC statistics, and an optional VTK export of
// one ordinate's sweep graph colored by component.
//
//   $ ./mesh_inspector klein-bottle 8000 8
//   $ ./mesh_inspector toroid-hex 20000 4 /tmp/toroid.vtk

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/ecl_scc.hpp"
#include "graph/scc_stats.hpp"
#include "mesh/export.hpp"
#include "mesh/generators.hpp"
#include "mesh/ordinates.hpp"
#include "mesh/suite.hpp"
#include "mesh/sweep_graph.hpp"

int main(int argc, char** argv) {
  using namespace ecl;

  const std::string family = argc > 1 ? argv[1] : "toroid-hex";
  const std::size_t elements = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8'000;
  const unsigned num_ordinates = argc > 3 ? unsigned(std::atoi(argv[3])) : 8;
  const std::string vtk_path = argc > 4 ? argv[4] : "";

  const auto small = mesh::small_mesh_suite();
  const auto large = mesh::large_mesh_suite();
  const mesh::MeshGroup* group = mesh::find_group(small, family);
  if (group == nullptr) group = mesh::find_group(large, family);
  if (group == nullptr) {
    std::fprintf(stderr, "unknown mesh family '%s'\n", family.c_str());
    return 1;
  }

  const mesh::Mesh m = group->generate(elements);
  std::printf("%s: %u %s elements (order %d), %zu interior faces\n", m.name.c_str(),
              m.num_elements, mesh::to_string(m.element_type), m.order, m.faces.size());

  const auto ordinates = mesh::fibonacci_ordinates(num_ordinates);
  std::printf("\n%-4s %-24s %10s %9s %7s %7s %9s %7s\n", "ord", "direction", "reentrant",
              "SCCs", "size-2", "largest", "depth", "edges");
  for (unsigned d = 0; d < ordinates.size(); ++d) {
    const auto& omega = ordinates[d];
    const auto g = mesh::build_sweep_graph(m, omega);
    const auto reentrant = mesh::count_reentrant_faces(m, omega);
    const auto r = scc::ecl_scc(g);
    const auto stats = graph::compute_scc_stats(g, r.labels);
    std::printf("%-4u (%+.2f,%+.2f,%+.2f)     %10zu %9u %7u %7u %9u %7llu\n", d, omega.x,
                omega.y, omega.z, reentrant, stats.num_sccs, stats.size2_sccs,
                stats.largest_scc, stats.dag_depth,
                static_cast<unsigned long long>(g.num_edges()));

    if (d == 0 && !vtk_path.empty()) {
      mesh::write_vtk_sweep_graph_file(vtk_path, m, g, r.labels);
      std::printf("     wrote ordinate 0 sweep graph to %s\n", vtk_path.c_str());
    }
  }
  return 0;
}
