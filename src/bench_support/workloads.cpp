#include "bench_support/workloads.hpp"

#include <algorithm>

#include "graph/generators.hpp"
#include "mesh/ordinates.hpp"
#include "mesh/sweep_graph.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace ecl::bench {

unsigned effective_ordinates(const mesh::MeshGroup& group) {
  const auto cap = static_cast<unsigned>(env_int("ECL_MAX_ORDINATES", 6));
  return std::min(group.num_ordinates, std::max(1u, cap));
}

Workload mesh_workload(const mesh::MeshGroup& group) {
  Workload wl;
  wl.name = group.name;
  const mesh::Mesh m = group.generate_scaled();
  const auto ordinates = mesh::fibonacci_ordinates(effective_ordinates(group));
  wl.graphs = mesh::build_sweep_graphs(m, ordinates);
  return wl;
}

std::vector<Workload> small_mesh_workloads() {
  std::vector<Workload> workloads;
  for (const auto& group : mesh::small_mesh_suite()) workloads.push_back(mesh_workload(group));
  return workloads;
}

std::vector<Workload> large_mesh_workloads() {
  std::vector<Workload> workloads;
  for (const auto& group : mesh::large_mesh_suite()) workloads.push_back(mesh_workload(group));
  return workloads;
}

std::vector<PowerLawSpec> power_law_specs() {
  // Fractions derived from Table 3 (giant = largest SCC / |V|, size-2 and
  // mid-size counts / |V|); DAG depths as listed.
  return {
      {"cage14", 1'505'785, 18.02, 1.00, 0.0, 0.0, 1},
      {"circuit5M", 5'558'326, 10.71, 0.9995, 8.2e-5, 3e-5, 1},
      {"com-Youtube", 1'134'890, 2.63, 0.0, 0.0, 0.0, 704},
      {"flickr", 820'878, 11.98, 0.643, 5.3e-3, 3.7e-3, 5},
      {"Freescale1", 3'428'755, 5.52, 0.994, 0.0, 3.1e-4, 1},
      {"Freescale2", 2'999'349, 7.68, 0.963, 1.8e-2, 2.2e-4, 1},
      {"soc-LiveJournal1", 4'847'571, 14.23, 0.790, 3.5e-3, 1.4e-3, 24},
      {"web-Google", 916'428, 5.57, 0.474, 4.5e-3, 9.5e-3, 34},
      {"wiki-Talk", 2'394'385, 2.10, 0.047, 2.2e-4, 1.6e-5, 8},
      {"wikipedia", 3'148'440, 12.51, 0.668, 6.4e-4, 2.1e-4, 85},
  };
}

graph::Digraph power_law_graph(const PowerLawSpec& spec) {
  const auto n = static_cast<graph::vid>(scaled(spec.paper_vertices, 512));
  graph::SccProfile profile;
  profile.num_vertices = n;
  profile.avg_degree = spec.avg_degree;
  profile.giant_fraction = spec.giant_fraction;
  profile.size2_sccs = static_cast<graph::vid>(spec.size2_fraction * n);
  profile.mid_sccs = static_cast<graph::vid>(spec.mid_fraction * n);
  // DAG depths are structural, not size-proportional; cap at n/4 so heavily
  // downscaled runs stay realizable.
  profile.dag_depth =
      static_cast<graph::vid>(std::min<std::size_t>(spec.dag_depth, n / 4 + 1));
  profile.power_law = true;

  // Deterministic per-name seed so every binary sees the same graphs.
  std::uint64_t seed = 0x7ab1e3;
  for (char c : spec.name) seed = seed * 131 + static_cast<unsigned char>(c);
  Rng rng(seed);
  return graph::scc_profile_graph(profile, rng);
}

std::vector<Workload> power_law_workloads() {
  std::vector<Workload> workloads;
  for (const auto& spec : power_law_specs()) {
    Workload wl;
    wl.name = spec.name;
    wl.graphs.push_back(power_law_graph(spec));
    workloads.push_back(std::move(wl));
  }
  return workloads;
}

}  // namespace ecl::bench
