#include "bench_support/harness.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/ecl_scc.hpp"
#include "core/fb_trim.hpp"
#include "core/ispan.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "support/env.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

namespace ecl::bench {
namespace {

device::Device& titanv_device() {
  static device::Device dev(device::titan_v_profile());
  return dev;
}

device::Device& a100_device() {
  static device::Device dev(device::a100_profile());
  return dev;
}

}  // namespace

std::vector<Column> gpu_columns() {
  return {
      {"ECL-SCC Titan V", "ecl", "titanv",
       [](const graph::Digraph& g) { return scc::ecl_scc(g, titanv_device()); }},
      {"ECL-SCC A100", "ecl", "a100",
       [](const graph::Digraph& g) { return scc::ecl_scc(g, a100_device()); }},
      {"GPU-SCC Titan V", "gpu-scc", "titanv",
       [](const graph::Digraph& g) { return scc::fb_trim(g, titanv_device()); }},
      {"GPU-SCC A100", "gpu-scc", "a100",
       [](const graph::Digraph& g) { return scc::fb_trim(g, a100_device()); }},
  };
}

std::vector<Column> cpu_columns() {
  auto run_with_threads = [](unsigned threads) {
    return [threads](const graph::Digraph& g) {
      scc::IspanOptions opts;
      opts.num_threads = threads;
      return scc::ispan(g, opts);
    };
  };
  return {
      {"iSpan Ryzen", "ispan", "ryzen", run_with_threads(32)},
      {"iSpan Xeon", "ispan", "xeon", run_with_threads(64)},
  };
}

std::vector<Column> paper_columns() {
  auto columns = gpu_columns();
  for (auto& c : cpu_columns()) columns.push_back(std::move(c));
  // Table order: ECL-SCC Titan V, ECL-SCC A100, GPU-SCC Titan V, GPU-SCC
  // A100, iSpan Ryzen, iSpan Xeon — already the construction order.
  return columns;
}

std::uint64_t Workload::total_vertices() const {
  std::uint64_t total = 0;
  for (const auto& g : graphs) total += g.num_vertices();
  return total;
}

std::uint64_t Workload::total_edges() const {
  std::uint64_t total = 0;
  for (const auto& g : graphs) total += g.num_edges();
  return total;
}

void ResultTable::record(const std::string& workload, const std::string& column, double seconds,
                         std::uint64_t vertices) {
  // Upsert: google-benchmark may invoke a benchmark body several times
  // (iteration estimation); keep one row per (workload, column).
  for (auto& e : rows_) {
    if (e.workload == workload && e.column == column) {
      e.seconds = seconds;
      e.vertices = vertices;
      return;
    }
  }
  rows_.push_back({workload, column, seconds, vertices});
}

std::vector<std::string> ResultTable::workload_names() const {
  std::vector<std::string> names;
  for (const auto& e : rows_) {
    bool seen = false;
    for (const auto& n : names) seen |= n == e.workload;
    if (!seen) names.push_back(e.workload);
  }
  return names;
}

std::vector<std::string> ResultTable::column_names() const {
  std::vector<std::string> names;
  for (const auto& e : rows_) {
    bool seen = false;
    for (const auto& n : names) seen |= n == e.column;
    if (!seen) names.push_back(e.column);
  }
  return names;
}

double ResultTable::seconds(const std::string& workload, const std::string& column) const {
  for (const auto& e : rows_) {
    if (e.workload == workload && e.column == column) return e.seconds;
  }
  return -1.0;
}

std::string ResultTable::render_runtime_table(const std::string& title) const {
  const auto columns = column_names();
  std::vector<std::string> header{"Graphs"};
  for (const auto& c : columns) header.push_back(c);
  TextTable table(header);
  for (const auto& w : workload_names()) {
    std::vector<std::string> row{w};
    for (const auto& c : columns) {
      const double s = seconds(w, c);
      row.push_back(s < 0 ? "-" : fixed(s, 4));
    }
    table.add_row(std::move(row));
  }
  std::ostringstream out;
  out << "\n== " << title << " (average runtime per graph, seconds) ==\n" << table.render();
  return out.str();
}

std::string ResultTable::render_throughput_figure(const std::string& title) const {
  const auto columns = column_names();
  std::vector<std::string> header{"Input"};
  for (const auto& c : columns) header.push_back(c);
  TextTable table(header);

  std::vector<std::vector<double>> per_column(columns.size());
  for (const auto& w : workload_names()) {
    std::vector<std::string> row{w};
    for (std::size_t c = 0; c < columns.size(); ++c) {
      double tp = -1.0;
      for (const auto& e : rows_) {
        if (e.workload == w && e.column == columns[c] && e.seconds > 0) {
          tp = static_cast<double>(e.vertices) / e.seconds / 1e6;
        }
      }
      if (tp > 0) per_column[c].push_back(tp);
      row.push_back(tp < 0 ? "-" : fixed(tp, 2));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> gm_row{"geomean"};
  for (const auto& tps : per_column) gm_row.push_back(fixed(geomean(tps), 2));
  table.add_row(std::move(gm_row));

  std::ostringstream out;
  out << "\n== " << title << " (throughput, million vertices/s) ==\n" << table.render();
  return out.str();
}

double ResultTable::geomean_speedup(const std::string& column_a,
                                    const std::string& column_b) const {
  std::vector<double> ratios;
  for (const auto& w : workload_names()) {
    double a = -1.0;
    double b = -1.0;
    std::uint64_t va = 0;
    std::uint64_t vb = 0;
    for (const auto& e : rows_) {
      if (e.workload != w) continue;
      if (e.column == column_a) {
        a = e.seconds;
        va = e.vertices;
      }
      if (e.column == column_b) {
        b = e.seconds;
        vb = e.vertices;
      }
    }
    if (a > 0 && b > 0 && va > 0 && vb > 0) {
      const double tp_a = static_cast<double>(va) / a;
      const double tp_b = static_cast<double>(vb) / b;
      ratios.push_back(tp_a / tp_b);
    }
  }
  return ratios.empty() ? 0.0 : geomean(ratios);
}

ResultTable& results() {
  static ResultTable table;
  return table;
}

double measure_column(const Workload& workload, const Column& column) {
  if (workload.graphs.empty()) return 0.0;

  // Verification first (outside timing), as in the paper's methodology.
  for (const auto& g : workload.graphs) {
    const auto oracle = scc::tarjan(g);
    const auto result = column.run(g);
    if (!scc::same_partition(result.labels, oracle.labels)) {
      throw std::runtime_error("benchmark verification failed: " + column.name + " on " +
                               workload.name);
    }
  }

  // Median-of-N timing of a full pass over the group (paper: median of 9
  // runs; ECL_RUNS controls N), reported as average seconds per graph.
  const double total = median_seconds(bench_runs(), [&] {
    for (const auto& g : workload.graphs) {
      auto result = column.run(g);
      (void)result;
    }
  });
  const double per_graph = total / static_cast<double>(workload.graphs.size());
  const std::uint64_t avg_vertices = workload.total_vertices() / workload.graphs.size();
  results().record(workload.name, column.name, per_graph, avg_vertices);
  return per_graph;
}

}  // namespace ecl::bench
