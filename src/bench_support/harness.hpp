#ifndef ECL_BENCH_SUPPORT_HARNESS_HPP
#define ECL_BENCH_SUPPORT_HARNESS_HPP

// Shared benchmark harness: the six algorithm "columns" of the paper's
// Tables 5-7 (ECL-SCC and GPU-SCC on two simulated GPUs, iSpan with two CPU
// thread configurations), result recording, and paper-style table/figure
// rendering (runtime tables + throughput charts with geometric means and
// the headline speedup factors).

#include <cstdint>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "graph/digraph.hpp"

namespace ecl::bench {

/// One column of Tables 5-7.
struct Column {
  std::string name;       ///< e.g. "ECL-SCC A100"
  std::string algorithm;  ///< "ecl", "gpu-scc", or "ispan" (for grouping)
  std::string device;     ///< "titanv", "a100", "ryzen", "xeon"
  scc::SccAlgorithm run;
};

/// ECL-SCC and GPU-SCC (FB-Trim) on both simulated device profiles.
std::vector<Column> gpu_columns();

/// iSpan with the paper's two CPU configurations (16- and 32-core hosts;
/// thread counts are requests — the container may have fewer cores).
std::vector<Column> cpu_columns();

/// All six paper columns, in table order.
std::vector<Column> paper_columns();

/// A named set of graphs timed as one unit (a mesh group across its
/// ordinates, or a single power-law graph).
struct Workload {
  std::string name;
  std::vector<graph::Digraph> graphs;

  std::uint64_t total_vertices() const;
  std::uint64_t total_edges() const;
};

/// Collected measurements of one bench binary.
class ResultTable {
 public:
  /// Records the average per-graph runtime of `column` on `workload`.
  void record(const std::string& workload, const std::string& column, double seconds,
              std::uint64_t vertices);

  /// Runtime table in the shape of Tables 5-7 (seconds, one row per
  /// workload, one column per algorithm).
  std::string render_runtime_table(const std::string& title) const;

  /// Throughput chart in the shape of Figures 5-13 (Mvertices/s, one row
  /// per workload, plus a geometric-mean row).
  std::string render_throughput_figure(const std::string& title) const;

  /// Headline factor: geomean throughput of column a / column b.
  double geomean_speedup(const std::string& column_a, const std::string& column_b) const;

  bool empty() const { return rows_.empty(); }
  std::vector<std::string> workload_names() const;
  std::vector<std::string> column_names() const;

  /// Seconds recorded for (workload, column); -1 when absent.
  double seconds(const std::string& workload, const std::string& column) const;

 private:
  struct Entry {
    std::string workload;
    std::string column;
    double seconds = 0.0;
    std::uint64_t vertices = 0;
  };
  std::vector<Entry> rows_;
};

/// Per-binary global result sink (bench mains print it after the run).
ResultTable& results();

/// Times `column` on every graph of `workload` (bench_runs() repetitions,
/// median), verifies each result against Tarjan, records the average
/// per-graph seconds into results(), and returns those seconds.
/// Throws std::runtime_error on a verification failure.
double measure_column(const Workload& workload, const Column& column);

}  // namespace ecl::bench

#endif  // ECL_BENCH_SUPPORT_HARNESS_HPP
