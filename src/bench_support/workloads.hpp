#ifndef ECL_BENCH_SUPPORT_WORKLOADS_HPP
#define ECL_BENCH_SUPPORT_WORKLOADS_HPP

// Workload factories for the benchmark binaries: the mesh suites of
// Tables 1-2 (sweep graphs across ordinates) and synthetic stand-ins for
// the ten SuiteSparse power-law graphs of Table 3 (see DESIGN.md for the
// substitution rationale). All sizes scale with ECL_SCALE; the ordinate
// count per mesh group is capped by ECL_MAX_ORDINATES (default 6) to keep
// single-core runs tractable.

#include <vector>

#include "bench_support/harness.hpp"
#include "graph/scc_stats.hpp"
#include "mesh/suite.hpp"

namespace ecl::bench {

/// Number of ordinates actually used for a group (min of the paper's
/// N_Omega and ECL_MAX_ORDINATES).
unsigned effective_ordinates(const mesh::MeshGroup& group);

/// Sweep-graph workload of one mesh group at ECL_SCALE.
Workload mesh_workload(const mesh::MeshGroup& group);

/// All of Table 1 (small meshes).
std::vector<Workload> small_mesh_workloads();

/// All of Table 2 (large meshes).
std::vector<Workload> large_mesh_workloads();

/// Descriptor of one Table 3 stand-in.
struct PowerLawSpec {
  std::string name;            ///< SuiteSparse name it imitates
  std::size_t paper_vertices;  ///< Table 3 vertex count
  double avg_degree;
  double giant_fraction;       ///< largest SCC / vertices in Table 3
  double size2_fraction;       ///< size-2 SCCs / vertices
  double mid_fraction;         ///< mid-size SCCs / vertices
  std::size_t dag_depth;       ///< Table 3 DAG depth
};

/// The ten Table 3 rows.
std::vector<PowerLawSpec> power_law_specs();

/// Generates the stand-in graph at ECL_SCALE (deterministic per name).
graph::Digraph power_law_graph(const PowerLawSpec& spec);

/// One workload per Table 3 row.
std::vector<Workload> power_law_workloads();

}  // namespace ecl::bench

#endif  // ECL_BENCH_SUPPORT_WORKLOADS_HPP
