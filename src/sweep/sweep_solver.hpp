#ifndef ECL_SWEEP_SWEEP_SOLVER_HPP
#define ECL_SWEEP_SWEEP_SOLVER_HPP

// Transport sweep over a (possibly cyclic) sweep graph: the downstream
// consumer that motivates the paper (§1).
//
// The radiative transfer equation is solved per ordinate by "sweeping"
// intensities through the elements in dependency order. Cycles in the
// sweep graph (SCCs from re-entrant faces) would livelock a naive sweep;
// the production fix — and the reason SCC detection is the critical first
// step — is to contract SCCs, sweep the resulting DAG in topological
// order, and iterate locally (source iteration) inside each non-trivial
// SCC until its intensities converge.
//
// The physics here is a deliberately simple upwind model (enough to make
// the data flow real): each element's outgoing intensity is
//
//   I(v) = (source(v) + sum of upwind I(u)) / (1 + absorption * in_deg(v))
//
// which contracts inside any cycle for absorption >= 1, so per-SCC
// iteration converges.
//
// The RTE additionally has an energy-group dimension (lambda in §1): all
// groups of one ordinate share the same sweep graph and SCC structure, so
// the expensive part — SCC detection + condensation + topological order —
// is captured once in a SweepPlan and executed per group.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace ecl::sweep {

struct SweepOptions {
  /// Absorption coefficient; must be >= 1 so the in-SCC iteration is a
  /// contraction for any in-degree d (row sum d / (1 + absorption*d) < 1).
  double absorption = 1.5;
  double tolerance = 1e-10;  ///< per-SCC fixed-point tolerance
  unsigned max_scc_iterations = 1000;
};

struct SweepResult {
  std::vector<double> intensity;       ///< per element
  std::uint64_t wavefronts = 0;        ///< DAG levels swept
  std::uint64_t scc_iterations = 0;    ///< total in-SCC source iterations
  std::uint64_t nontrivial_sccs = 0;   ///< cycles that needed iteration
  bool converged = true;
};

/// Precomputed sweep schedule for one ordinate: condensation, topological
/// component order, and member lists, derived from an SCC labeling (from
/// any algorithm in ecl::scc). Reusable across energy groups and time
/// steps — the amortization that makes fast SCC detection worthwhile.
class SweepPlan {
 public:
  /// Builds the schedule. Throws std::invalid_argument on a label/vertex
  /// count mismatch (an invalid SCC labeling surfaces as a cycle in the
  /// condensation and also throws).
  SweepPlan(const graph::Digraph& graph, std::span<const graph::vid> labels);

  /// Executes one sweep with the given per-element source.
  SweepResult run(std::span<const double> source, const SweepOptions& opts = {}) const;

  /// Executes one sweep per energy group; `sources` holds num_groups
  /// contiguous blocks of num_vertices entries.
  std::vector<SweepResult> run_groups(std::span<const double> sources, unsigned num_groups,
                                      const SweepOptions& opts = {}) const;

  graph::vid num_vertices() const noexcept { return n_; }
  graph::vid num_components() const noexcept { return static_cast<graph::vid>(comp_order_.size()); }
  bool has_cycles() const noexcept { return has_cycles_; }

 private:
  graph::vid n_ = 0;
  bool has_cycles_ = false;
  graph::Digraph reverse_;
  std::vector<graph::vid> comp_order_;    ///< components in topological order
  std::vector<graph::eid> comp_start_;    ///< member-range start per component
  std::vector<graph::vid> members_;       ///< vertices grouped by component
};

/// One-shot convenience: build a plan and run it once.
SweepResult sweep(const graph::Digraph& graph, std::span<const graph::vid> labels,
                  std::span<const double> source, const SweepOptions& opts = {});

/// Detects whether a naive (SCC-oblivious) sweep would livelock: true iff
/// the graph has a non-trivial SCC or a self loop.
bool would_livelock(const graph::Digraph& graph, std::span<const graph::vid> labels);

}  // namespace ecl::sweep

#endif  // ECL_SWEEP_SWEEP_SOLVER_HPP
