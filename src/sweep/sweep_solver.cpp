#include "sweep/sweep_solver.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/condensation.hpp"

namespace ecl::sweep {

using graph::Digraph;
using graph::eid;
using graph::vid;

SweepPlan::SweepPlan(const Digraph& graph, std::span<const vid> labels) : n_(graph.num_vertices()) {
  if (labels.size() != n_) throw std::invalid_argument("SweepPlan: labels size mismatch");
  if (n_ == 0) return;

  std::vector<vid> dense(labels.begin(), labels.end());
  const vid k = graph::normalize_labels(dense);
  const Digraph cond = graph::condensation(graph, dense, k);
  comp_order_ = graph::topological_order(cond);  // throws if labeling is not an SCC partition

  std::vector<vid> comp_size(k, 0);
  for (vid c : dense) ++comp_size[c];
  comp_start_.assign(k + 1, 0);
  for (vid c = 0; c < k; ++c) {
    comp_start_[c + 1] = comp_start_[c] + comp_size[c];
    has_cycles_ |= comp_size[c] > 1;
  }
  members_.resize(n_);
  std::vector<eid> cursor(comp_start_.begin(), comp_start_.end() - 1);
  for (vid v = 0; v < n_; ++v) members_[cursor[dense[v]]++] = v;

  if (!has_cycles_) {
    for (vid v = 0; v < n_ && !has_cycles_; ++v) has_cycles_ = graph.has_edge(v, v);
  }
  reverse_ = graph.reverse();
}

SweepResult SweepPlan::run(std::span<const double> source, const SweepOptions& opts) const {
  if (source.size() != n_) throw std::invalid_argument("SweepPlan::run: source size mismatch");
  if (opts.absorption < 1.0)
    throw std::invalid_argument("sweep: absorption must be >= 1 (contraction condition)");

  SweepResult result;
  result.intensity.assign(n_, 0.0);
  if (n_ == 0) return result;

  auto relax = [&](vid v) {
    double incoming = 0.0;
    double in_deg = 0.0;
    for (vid u : reverse_.out_neighbors(v)) {
      incoming += result.intensity[u];
      in_deg += 1.0;
    }
    return (source[v] + incoming) / (1.0 + opts.absorption * in_deg);
  };

  for (vid c : comp_order_) {
    ++result.wavefronts;
    const eid lo = comp_start_[c];
    const eid hi = comp_start_[c + 1];
    if (hi - lo == 1) {
      const vid v = members_[lo];
      result.intensity[v] = relax(v);
      continue;
    }
    // Non-trivial SCC: source iteration to the local fixed point.
    ++result.nontrivial_sccs;
    bool converged = false;
    for (unsigned iter = 0; iter < opts.max_scc_iterations; ++iter) {
      ++result.scc_iterations;
      double delta = 0.0;
      for (eid i = lo; i < hi; ++i) {
        const vid v = members_[i];
        const double next = relax(v);
        delta = std::max(delta, std::abs(next - result.intensity[v]));
        result.intensity[v] = next;
      }
      if (delta < opts.tolerance) {
        converged = true;
        break;
      }
    }
    result.converged &= converged;
  }
  return result;
}

std::vector<SweepResult> SweepPlan::run_groups(std::span<const double> sources,
                                               unsigned num_groups,
                                               const SweepOptions& opts) const {
  if (sources.size() != static_cast<std::size_t>(n_) * num_groups)
    throw std::invalid_argument("SweepPlan::run_groups: sources size mismatch");
  std::vector<SweepResult> results;
  results.reserve(num_groups);
  for (unsigned g = 0; g < num_groups; ++g) {
    results.push_back(run(sources.subspan(static_cast<std::size_t>(g) * n_, n_), opts));
  }
  return results;
}

SweepResult sweep(const Digraph& graph, std::span<const vid> labels,
                  std::span<const double> source, const SweepOptions& opts) {
  return SweepPlan(graph, labels).run(source, opts);
}

bool would_livelock(const Digraph& graph, std::span<const vid> labels) {
  std::vector<vid> dense(labels.begin(), labels.end());
  const vid k = graph::normalize_labels(dense);
  std::vector<vid> size(k, 0);
  for (vid c : dense) ++size[c];
  for (vid c = 0; c < k; ++c) {
    if (size[c] > 1) return true;
  }
  for (vid v = 0; v < graph.num_vertices(); ++v) {
    if (graph.has_edge(v, v)) return true;
  }
  return false;
}

}  // namespace ecl::sweep
