#include "mesh/replicate.hpp"

#include <stdexcept>

namespace ecl::mesh {

graph::Digraph replicate_chain(const graph::Digraph& g, unsigned copies) {
  using graph::vid;
  const vid n = g.num_vertices();
  if (n == 0 || copies == 0) return graph::Digraph(0, graph::EdgeList{});
  if (n == 1) return graph::Digraph(1, graph::EdgeList{});

  // Copy c maps vertex v to c * (n - 1) + v, which automatically identifies
  // copy c's vertex n-1 with copy c+1's vertex 0.
  const vid total = copies * (n - 1) + 1;
  graph::EdgeList edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()) * copies);
  for (unsigned c = 0; c < copies; ++c) {
    const vid base = c * (n - 1);
    for (vid u = 0; u < n; ++u) {
      for (vid v : g.out_neighbors(u)) edges.add(base + u, base + v);
    }
  }
  return graph::Digraph(total, edges);
}

}  // namespace ecl::mesh
