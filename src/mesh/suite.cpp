#include "mesh/suite.hpp"

#include "mesh/generators.hpp"
#include "support/env.hpp"

namespace ecl::mesh {

Mesh MeshGroup::generate_scaled() const { return generate(ecl::scaled(paper_elements, 256)); }

std::vector<MeshGroup> small_mesh_suite() {
  return {
      {"beam-hex", 30, 262'144, [](std::size_t n) { return beam_hex(n); }},
      {"star", 8, 327'680, [](std::size_t n) { return star(n); }},
      {"torch-hex", 32, 264'064, [](std::size_t n) { return torch_hex(n); }},
      {"torch-tet", 32, 515'360, [](std::size_t n) { return torch_tet(n); }},
      {"toroid-hex", 32, 196'608, [](std::size_t n) { return toroid_hex(n); }},
      {"toroid-wedge", 32, 196'608, [](std::size_t n) { return toroid_wedge(n); }},
  };
}

std::vector<MeshGroup> large_mesh_suite() {
  return {
      {"klein-bottle", 8, 8'388'608, [](std::size_t n) { return klein_bottle(n); }},
      {"mobius-strip", 8, 4'194'304, [](std::size_t n) { return mobius_strip(n); }},
      {"torch-hex", 32, 2'112'512, [](std::size_t n) { return torch_hex(n); }},
      {"torch-tet", 32, 4'122'880, [](std::size_t n) { return torch_tet(n); }},
      {"toroid-hex", 32, 1'572'864, [](std::size_t n) { return toroid_hex(n); }},
      {"toroid-wedge", 32, 1'572'864, [](std::size_t n) { return toroid_wedge(n); }},
      {"twist-hex", 61, 6'291'456, [](std::size_t n) { return twist_hex(n); }},
  };
}

const MeshGroup* find_group(const std::vector<MeshGroup>& suite, const std::string& name) {
  for (const auto& group : suite) {
    if (group.name == name) return &group;
  }
  return nullptr;
}

}  // namespace ecl::mesh
