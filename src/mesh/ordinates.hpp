#ifndef ECL_MESH_ORDINATES_HPP
#define ECL_MESH_ORDINATES_HPP

// Angular quadrature: the discrete ordinates Omega_d of the transport sweep
// (§1, §4.1). SCC detection runs once per ordinate; the paper's mesh groups
// use N_Omega in {8, 30, 32, 61}.

#include <vector>

#include "mesh/geometry.hpp"

namespace ecl::mesh {

/// N unit directions distributed quasi-uniformly over the sphere via the
/// Fibonacci (golden-angle) lattice. Deterministic.
std::vector<Vec3> fibonacci_ordinates(unsigned n);

}  // namespace ecl::mesh

#endif  // ECL_MESH_ORDINATES_HPP
