#ifndef ECL_MESH_SUITE_HPP
#define ECL_MESH_SUITE_HPP

// The paper's mesh evaluation suites (Tables 1 and 2): each group is a mesh
// family plus its ordinate count N_Omega and the paper's element count.
// Benchmarks scale the element counts by ECL_SCALE (support/env.hpp).

#include <functional>
#include <string>
#include <vector>

#include "mesh/mesh.hpp"

namespace ecl::mesh {

struct MeshGroup {
  std::string name;
  unsigned num_ordinates = 8;         ///< N_Omega (= number of graphs)
  std::size_t paper_elements = 0;     ///< vertex count in the paper's table
  std::function<Mesh(std::size_t)> generate;

  /// Generates the mesh at paper_elements * scale_factor() (ECL_SCALE).
  Mesh generate_scaled() const;
};

/// Table 1 groups: beam-hex, star, torch-hex, torch-tet, toroid-hex,
/// toroid-wedge.
std::vector<MeshGroup> small_mesh_suite();

/// Table 2 groups: klein-bottle, mobius-strip, torch-hex, torch-tet,
/// toroid-hex, toroid-wedge, twist-hex.
std::vector<MeshGroup> large_mesh_suite();

/// Looks a group up by name in either suite ("small/torch-hex" style keys
/// are not needed: large groups shadow small ones only in size).
const MeshGroup* find_group(const std::vector<MeshGroup>& suite, const std::string& name);

}  // namespace ecl::mesh

#endif  // ECL_MESH_SUITE_HPP
