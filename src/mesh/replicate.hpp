#ifndef ECL_MESH_REPLICATE_HPP
#define ECL_MESH_REPLICATE_HPP

// Expanded-mesh construction (§5.1.4): the paper replicates a sweep graph
// 10x to stress sizes beyond the last-level caches. The copies are chained
// by identifying the last vertex of copy c with the first vertex of copy
// c+1 (the paper's expanded sizes are exactly 10 |V| - 9).

#include "graph/digraph.hpp"

namespace ecl::mesh {

/// Chains `copies` copies of g, merging vertex n-1 of each copy with vertex
/// 0 of the next. The result has copies * (n - 1) + 1 vertices.
graph::Digraph replicate_chain(const graph::Digraph& g, unsigned copies);

}  // namespace ecl::mesh

#endif  // ECL_MESH_REPLICATE_HPP
