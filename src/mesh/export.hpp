#ifndef ECL_MESH_EXPORT_HPP
#define ECL_MESH_EXPORT_HPP

// Visualization export: writes a sweep graph as legacy-VTK polydata —
// element centers as points, directed sweep edges as lines, and optional
// per-element SCC labels as point scalars. Load in ParaView/VisIt to see
// where the cycle clusters sit on the geometry.

#include <iosfwd>
#include <span>
#include <string>

#include "graph/digraph.hpp"
#include "mesh/mesh.hpp"

namespace ecl::mesh {

/// Writes `graph` over `mesh`'s element centers. `labels` may be empty
/// (no scalars) or one entry per element (written as "scc" point data,
/// normalized to dense component IDs).
void write_vtk_sweep_graph(std::ostream& out, const Mesh& mesh, const graph::Digraph& graph,
                           std::span<const graph::vid> labels = {});

/// Convenience: writes to a file path (throws std::runtime_error on IO
/// failure).
void write_vtk_sweep_graph_file(const std::string& path, const Mesh& mesh,
                                const graph::Digraph& graph,
                                std::span<const graph::vid> labels = {});

}  // namespace ecl::mesh

#endif  // ECL_MESH_EXPORT_HPP
