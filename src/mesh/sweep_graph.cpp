#include "mesh/sweep_graph.hpp"

namespace ecl::mesh {
namespace {

/// Per-face edge directions for one ordinate.
struct FaceDirections {
  bool forward = false;   // e1 -> e2
  bool backward = false;  // e2 -> e1
};

FaceDirections classify(const Face& face, const Vec3& ordinate) {
  FaceDirections dirs;
  for (const Vec3& n : face.normals) {
    if (dot(ordinate, n) > 0.0) {
      dirs.forward = true;
    } else {
      dirs.backward = true;
    }
  }
  return dirs;
}

}  // namespace

graph::Digraph build_sweep_graph(const Mesh& mesh, const Vec3& ordinate) {
  graph::EdgeList edges;
  edges.reserve(mesh.faces.size());
  for (const Face& face : mesh.faces) {
    const FaceDirections dirs = classify(face, ordinate);
    if (dirs.forward) edges.add(face.e1, face.e2);
    if (dirs.backward) edges.add(face.e2, face.e1);
  }
  return graph::Digraph(mesh.num_elements, edges);
}

std::vector<graph::Digraph> build_sweep_graphs(const Mesh& mesh,
                                               const std::vector<Vec3>& ordinates) {
  std::vector<graph::Digraph> graphs;
  graphs.reserve(ordinates.size());
  for (const Vec3& omega : ordinates) graphs.push_back(build_sweep_graph(mesh, omega));
  return graphs;
}

std::size_t count_reentrant_faces(const Mesh& mesh, const Vec3& ordinate) {
  std::size_t count = 0;
  for (const Face& face : mesh.faces) {
    const FaceDirections dirs = classify(face, ordinate);
    if (dirs.forward && dirs.backward) ++count;
  }
  return count;
}

}  // namespace ecl::mesh
