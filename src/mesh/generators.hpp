#ifndef ECL_MESH_GENERATORS_HPP
#define ECL_MESH_GENERATORS_HPP

// Generators for every mesh family of the paper's Table 4.
//
// Each generator builds real geometry (mapped structured grids, parametric
// surfaces) and derives faces + quadrature normals from it, so the sweep
// graphs inherit the paper's structural properties (Tables 1-2) from the
// geometry rather than from hand-tuned randomness:
//
//   beam-hex     hex, order 1, straight box        -> all-trivial SCCs, deep DAG
//   star         quad, order 1, planar star domain -> all-trivial SCCs, deepest DAG
//   torch-hex    hex, order 1, flared cylinder     -> bilinear (nonplanar) radial
//                                                     faces give a few hundred
//                                                     size-2 SCCs
//   torch-tet    tet, order 1, flared cylinder     -> near-planar faces with mild
//                                                     curvature residue
//   toroid-hex   hex, order 3, solid torus         -> clustered small SCCs
//   toroid-wedge wedge, order 3, solid torus       -> many size-2 SCCs
//   klein-bottle quad, order 3, closed non-orientable surface -> one giant SCC
//   mobius-strip quad, order 3, twisted open strip -> per-ordinate extremes
//   twist-hex    hex, order 3, twisted solid ring  -> a single all-vertex SCC
//
// `target_elements` is approximate: generators round to structured grid
// dimensions near the request.

#include <cstddef>

#include "mesh/mesh.hpp"

namespace ecl::mesh {

Mesh beam_hex(std::size_t target_elements);
Mesh star(std::size_t target_elements);
Mesh torch_hex(std::size_t target_elements);
Mesh torch_tet(std::size_t target_elements);
Mesh toroid_hex(std::size_t target_elements);
Mesh toroid_wedge(std::size_t target_elements);
Mesh klein_bottle(std::size_t target_elements);
Mesh mobius_strip(std::size_t target_elements);
Mesh twist_hex(std::size_t target_elements, int twists = 3);

}  // namespace ecl::mesh

#endif  // ECL_MESH_GENERATORS_HPP
