#include "mesh/generators.hpp"
#include "mesh/generators/structured.hpp"

namespace ecl::mesh {

Mesh beam_hex(std::size_t target_elements) {
  // A 4:1:1 box beam of straight (order 1) hexahedra: every face is planar,
  // so every sweep graph is acyclic with all-trivial SCCs, and the DAG
  // depth tracks the taxicab extent of the grid (Table 1: beam-hex).
  const auto [ni, nj, nk] = detail::dims_for_target(target_elements, 4.0, 1.0, 1.0);
  detail::HexGridSpec spec;
  spec.ni = ni;
  spec.nj = nj;
  spec.nk = nk;
  spec.map = [](double x, double y, double z) -> Vec3 { return {4.0 * x, y, z}; };
  const auto soup = detail::structured_hex_grid(spec);
  return build_mesh_from_cells("beam-hex", ElementType::Hexahedron, 1, soup.vertices,
                               soup.cells);
}

}  // namespace ecl::mesh
