#ifndef ECL_MESH_GENERATORS_STRUCTURED_HPP
#define ECL_MESH_GENERATORS_STRUCTURED_HPP

// Internal helpers shared by the mesh generators: mapped structured hex
// grids (with optional periodic directions) and the standard cell
// subdivisions (hex -> 6 Kuhn tetrahedra, hex -> 2 wedges), both of which
// are facet-consistent across neighboring cells.

#include <functional>
#include <vector>

#include "mesh/mesh.hpp"

namespace ecl::mesh::detail {

struct CellSoup {
  std::vector<Vec3> vertices;
  std::vector<Cell> cells;
};

struct HexGridSpec {
  unsigned ni = 1, nj = 1, nk = 1;  ///< cells per direction
  bool periodic_i = false, periodic_j = false, periodic_k = false;
  /// Maps node parameters (x, y, z) in [0,1]^3 to physical space. For a
  /// periodic direction the map must satisfy map(0,..) == map(1,..).
  std::function<Vec3(double, double, double)> map;
};

/// Builds the mapped structured hex grid (corner ordering v = x + 2y + 4z).
CellSoup structured_hex_grid(const HexGridSpec& spec);

/// Kuhn/Freudenthal subdivision: each hex becomes 6 tetrahedra. Face
/// diagonals match across neighboring hexes of a structured grid.
CellSoup subdivide_hexes_to_tets(const CellSoup& hexes);

/// Splits each hex into 2 wedges along the (local) 0-3 diagonal plane.
CellSoup subdivide_hexes_to_wedges(const CellSoup& hexes);

/// Grid dimensions (a*f, b*f, c*f) whose product approximates `target`
/// while keeping the a:b:c aspect ratio.
struct GridDims {
  unsigned ni, nj, nk;
};
GridDims dims_for_target(std::size_t target, double a, double b, double c);

}  // namespace ecl::mesh::detail

#endif  // ECL_MESH_GENERATORS_STRUCTURED_HPP
