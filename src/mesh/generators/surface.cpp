// Non-orientable surface meshes: klein-bottle (closed) and mobius-strip
// (open). Both are order-3 quadrilateral surface meshes in the paper; their
// sweep graphs produce the giant SCCs (klein-bottle) and the extreme
// per-ordinate variability (mobius-strip) of Table 2.

#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"
#include "mesh/generators/fields.hpp"

namespace ecl::mesh {
namespace {

using std::numbers::pi;

/// Figure-8 immersion of the Klein bottle. Satisfies the identification
/// K(u + 2*pi, v) = K(u, -v).
Vec3 klein_point(double u, double v) {
  const double c = 2.0;
  const double ring = c + std::cos(u / 2.0) * std::sin(v) - std::sin(u / 2.0) * std::sin(2.0 * v);
  return {ring * std::cos(u), ring * std::sin(u),
          std::sin(u / 2.0) * std::sin(v) + std::cos(u / 2.0) * std::sin(2.0 * v)};
}

/// Standard Mobius strip: M(u + 2*pi, v) = M(u, 1 - v), with v in [0, 1]
/// across the (open) width.
Vec3 mobius_point(double u, double v) {
  const double w = 0.8 * (v - 0.5);
  const double ring = 1.0 + w * std::cos(u / 2.0);
  return {ring * std::cos(u), ring * std::sin(u), w * std::sin(u / 2.0)};
}

struct SurfaceGrid {
  std::vector<Vec3> vertices;
  std::vector<Cell> quads;
};

/// Grid over (u periodic-with-flip, v). `v_periodic` closes the v direction
/// (Klein bottle); otherwise v is an open interval (Mobius strip). The u
/// seam identifies (nu, j) with (0, flip(j)).
template <typename MapFn>
SurfaceGrid flipped_periodic_grid(unsigned nu, unsigned nv, bool v_periodic, double v_lo,
                                  double v_hi, MapFn&& map) {
  SurfaceGrid grid;
  const unsigned pv = v_periodic ? nv : nv + 1;
  grid.vertices.reserve(static_cast<std::size_t>(nu) * pv);
  for (unsigned i = 0; i < nu; ++i) {
    const double u = 2.0 * pi * i / nu;
    for (unsigned j = 0; j < pv; ++j) {
      const double v = v_lo + (v_hi - v_lo) * j / nv;
      grid.vertices.push_back(map(u, v));
    }
  }
  auto node = [&](unsigned i, unsigned j) -> std::uint32_t {
    if (v_periodic) j %= nv;
    if (i >= nu) {
      // u seam with orientation flip: (nu, j) == (0, nv - j).
      i = 0;
      j = v_periodic ? (nv - j) % nv : nv - j;
    }
    return i * pv + j;
  };
  grid.quads.reserve(static_cast<std::size_t>(nu) * nv);
  for (unsigned i = 0; i < nu; ++i) {
    for (unsigned j = 0; j < nv; ++j) {
      grid.quads.push_back(
          Cell{{node(i, j), node(i + 1, j), node(i + 1, j + 1), node(i, j + 1)}});
    }
  }
  return grid;
}

}  // namespace

Mesh klein_bottle(std::size_t target_elements) {
  const unsigned nu = std::max(8u, static_cast<unsigned>(std::sqrt(2.0 * target_elements)));
  const unsigned nv = std::max(4u, static_cast<unsigned>(target_elements / nu));
  // v covers [0, 2*pi) periodically; the figure-8 immersion's v-flip seam
  // matches sin(-v) = -sin(v) symmetry of the map.
  auto grid = flipped_periodic_grid(nu, nv, /*v_periodic=*/true, 0.0, 2.0 * pi, klein_point);
  // The MFEM sample is a strongly curved order-3 mesh: edge normals fan
  // out widely within each face, so most faces are re-entrant for any
  // ordinate and the closed non-orientable surface glues into one giant
  // SCC (Table 2: largest SCC is 99-100% of the vertices).
  return build_surface_mesh("klein-bottle", 3, grid.vertices, grid.quads, /*points=*/4,
                            detail::face_wobble(2.2));
}

Mesh mobius_strip(std::size_t target_elements) {
  // Long and thin, like the MFEM sample: many cells around, few across.
  const unsigned nu = std::max(16u, static_cast<unsigned>(std::sqrt(32.0 * target_elements)));
  const unsigned nv = std::max(2u, static_cast<unsigned>(target_elements / nu));
  auto grid = flipped_periodic_grid(nu, nv, /*v_periodic=*/false, 0.0, 1.0, mobius_point);
  // The mobius curvature fans along a FIXED axis: ordinates nearly
  // orthogonal to it see almost no re-entrant faces (all-trivial SCCs and
  // a very deep DAG), while aligned ordinates see re-entrant bands that
  // merge most of the strip into a giant SCC — the extreme per-ordinate
  // variability of Table 2 (largest SCC 1 .. 3.2M, depth 1 .. 15k).
  return build_surface_mesh("mobius-strip", 3, grid.vertices, grid.quads, /*points=*/4,
                            detail::face_wobble(1.6, {}, Vec3{0.25, 0.1, 1.0}));
}

}  // namespace ecl::mesh
