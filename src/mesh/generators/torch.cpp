#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"
#include "mesh/generators/fields.hpp"
#include "mesh/generators/structured.hpp"

namespace ecl::mesh {
namespace {

using std::numbers::pi;

/// Flared-cylinder map for the plasma-torch body: an annular cross section
/// (periodic in theta) whose radius profile widens toward the outlet.
detail::CellSoup torch_grid(std::size_t target_elements) {
  // Aspect: radial x angular x axial ~ 1 : 4 : 4.
  const auto [ni, nj, nk] = detail::dims_for_target(target_elements, 1.0, 4.0, 4.0);
  detail::HexGridSpec spec;
  spec.ni = ni;
  spec.nj = nj;
  spec.nk = nk;
  spec.periodic_j = true;
  spec.map = [](double r, double theta, double z) -> Vec3 {
    const double profile = 1.0 + 0.35 * std::sin(pi * z);  // flare
    const double rho = (0.15 + 0.85 * r) * profile;
    const double angle = 2.0 * pi * theta;
    return {rho * std::cos(angle), rho * std::sin(angle), 2.0 * z};
  };
  return detail::structured_hex_grid(spec);
}


}  // namespace

Mesh torch_hex(std::size_t target_elements) {
  // Order-1 hexes of a curved geometry: the radial faces are bilinear and
  // nonplanar; together with a small curvature residue (the cylindrical
  // geometry the straight hexes under-resolve) faces nearly tangent to an
  // ordinate become re-entrant — a few size-2 SCCs per ordinate (Table 1).
  const auto soup = torch_grid(target_elements);
  return build_mesh_from_cells("torch-hex", ElementType::Hexahedron, 1, soup.vertices,
                               soup.cells, detail::face_wobble(0.05));
}

Mesh torch_tet(std::size_t target_elements) {
  // Kuhn subdivision keeps the cell count comparable per vertex budget:
  // divide the hex target by 6.
  const auto hexes = torch_grid(std::max<std::size_t>(1, target_elements / 6));
  const auto soup = detail::subdivide_hexes_to_tets(hexes);
  // Planar tet faces carry only the curvature residue of the cylindrical
  // geometry they under-resolve: a small fan, so only faces nearly tangent
  // to an ordinate become re-entrant (a sprinkle of size-2 SCCs, Table 1).
  return build_mesh_from_cells("torch-tet", ElementType::Tetrahedron, 1, soup.vertices,
                               soup.cells, detail::face_wobble(0.06));
}

}  // namespace ecl::mesh
