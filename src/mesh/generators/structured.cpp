#include "mesh/generators/structured.hpp"

#include <cmath>
#include <stdexcept>

namespace ecl::mesh::detail {

CellSoup structured_hex_grid(const HexGridSpec& spec) {
  if (!spec.map) throw std::invalid_argument("structured_hex_grid: map is required");
  const unsigned ni = spec.ni, nj = spec.nj, nk = spec.nk;
  // Node counts: a periodic direction reuses node 0 as node n.
  const unsigned pi = spec.periodic_i ? ni : ni + 1;
  const unsigned pj = spec.periodic_j ? nj : nj + 1;
  const unsigned pk = spec.periodic_k ? nk : nk + 1;

  CellSoup soup;
  soup.vertices.reserve(static_cast<std::size_t>(pi) * pj * pk);
  for (unsigned k = 0; k < pk; ++k) {
    for (unsigned j = 0; j < pj; ++j) {
      for (unsigned i = 0; i < pi; ++i) {
        soup.vertices.push_back(spec.map(static_cast<double>(i) / ni,
                                         static_cast<double>(j) / nj,
                                         static_cast<double>(k) / nk));
      }
    }
  }

  auto node = [&](unsigned i, unsigned j, unsigned k) -> std::uint32_t {
    i %= pi;
    j %= pj;
    k %= pk;
    return (k * pj + j) * pi + i;
  };

  soup.cells.reserve(static_cast<std::size_t>(ni) * nj * nk);
  for (unsigned k = 0; k < nk; ++k) {
    for (unsigned j = 0; j < nj; ++j) {
      for (unsigned i = 0; i < ni; ++i) {
        Cell cell;
        cell.vertices = {node(i, j, k),         node(i + 1, j, k),
                         node(i, j + 1, k),     node(i + 1, j + 1, k),
                         node(i, j, k + 1),     node(i + 1, j, k + 1),
                         node(i, j + 1, k + 1), node(i + 1, j + 1, k + 1)};
        soup.cells.push_back(std::move(cell));
      }
    }
  }
  return soup;
}

CellSoup subdivide_hexes_to_tets(const CellSoup& hexes) {
  // Six tetrahedra per hex: one per monotone corner path 0 -> a -> b -> 7.
  static constexpr int paths[6][2] = {{1, 3}, {1, 5}, {2, 3}, {2, 6}, {4, 5}, {4, 6}};
  CellSoup soup;
  soup.vertices = hexes.vertices;
  soup.cells.reserve(hexes.cells.size() * 6);
  for (const Cell& hex : hexes.cells) {
    const auto& v = hex.vertices;
    for (const auto& [a, b] : paths) {
      soup.cells.push_back(Cell{{v[0], v[a], v[b], v[7]}});
    }
  }
  return soup;
}

CellSoup subdivide_hexes_to_wedges(const CellSoup& hexes) {
  CellSoup soup;
  soup.vertices = hexes.vertices;
  soup.cells.reserve(hexes.cells.size() * 2);
  for (const Cell& hex : hexes.cells) {
    const auto& v = hex.vertices;
    // Split the (x, y) square along the 0-3 diagonal; wedge = bottom
    // triangle + matching top triangle.
    soup.cells.push_back(Cell{{v[0], v[1], v[3], v[4], v[5], v[7]}});
    soup.cells.push_back(Cell{{v[0], v[3], v[2], v[4], v[7], v[6]}});
  }
  return soup;
}

GridDims dims_for_target(std::size_t target, double a, double b, double c) {
  const double volume = a * b * c;
  const double f = std::cbrt(static_cast<double>(target) / volume);
  auto dim = [&](double w) {
    return std::max(1u, static_cast<unsigned>(std::lround(w * f)));
  };
  return {dim(a), dim(b), dim(c)};
}

}  // namespace ecl::mesh::detail
