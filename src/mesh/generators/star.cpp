#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"
#include "mesh/generators/structured.hpp"

namespace ecl::mesh {

Mesh star(std::size_t target_elements) {
  // A planar (order 1, z = 0) quadrilateral mesh of a star-shaped domain:
  // a polar grid whose outer boundary follows a five-pointed star radius
  // profile. All faces are straight in-plane segments, so sweep graphs are
  // acyclic; winding the many angular cells around the hole makes the SCC
  // DAG the deepest of the small-mesh families (Table 1: star, depth 1534
  // at 327k elements).
  using std::numbers::pi;

  // Angular-dominant aspect: nt ~ 16 nr reproduces depth ~ 2.7 sqrt(N).
  const unsigned nr = std::max(2u, static_cast<unsigned>(std::sqrt(target_elements / 16.0)));
  const unsigned nt = std::max(8u, static_cast<unsigned>(target_elements / nr));

  std::vector<Vec3> vertices;
  std::vector<Cell> quads;
  const unsigned pj = nt;  // periodic in theta
  vertices.reserve(static_cast<std::size_t>(nr + 1) * pj);
  for (unsigned j = 0; j < pj; ++j) {
    const double theta = 2.0 * pi * j / nt;
    const double outer = 0.55 + 0.35 * std::cos(5.0 * theta);
    for (unsigned i = 0; i <= nr; ++i) {
      const double r = 0.08 + (outer - 0.08) * i / nr;
      vertices.push_back({r * std::cos(theta), r * std::sin(theta), 0.0});
    }
  }
  auto node = [&](unsigned i, unsigned j) -> std::uint32_t {
    return (j % pj) * (nr + 1) + i;
  };
  quads.reserve(static_cast<std::size_t>(nr) * nt);
  for (unsigned j = 0; j < nt; ++j) {
    for (unsigned i = 0; i < nr; ++i) {
      quads.push_back(Cell{{node(i, j), node(i + 1, j), node(i + 1, j + 1), node(i, j + 1)}});
    }
  }
  return build_surface_mesh("star", 1, vertices, quads, /*points=*/2);
}

}  // namespace ecl::mesh
