#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"
#include "mesh/generators/fields.hpp"
#include "mesh/generators/structured.hpp"

namespace ecl::mesh {

Mesh twist_hex(std::size_t target_elements, int twists) {
  // A solid square-section ring whose cross section rotates `twists` full
  // turns around the loop (the MFEM twist miniapp with severe distortion).
  // The rotation makes every sweep direction circulate around the ring, so
  // each sweep graph is one SCC containing every element (Table 2:
  // twist-hex, 61 ordinates, always a single all-vertex SCC).
  using std::numbers::pi;

  const auto [ni, nj, nk] = detail::dims_for_target(target_elements, 1.0, 1.0, 12.0);
  detail::HexGridSpec spec;
  spec.ni = ni;
  spec.nj = nj;
  spec.nk = nk;
  spec.periodic_k = true;  // closed ring; integer twists keep the seam exact
  const double turns = 2.0 * pi * twists;
  spec.map = [turns](double u, double v, double s) -> Vec3 {
    const double a = 0.45 * (u - 0.5);
    const double b = 0.45 * (v - 0.5);
    const double rot = turns * s;
    const double p = a * std::cos(rot) - b * std::sin(rot);
    const double q = a * std::sin(rot) + b * std::cos(rot);
    const double theta = 2.0 * pi * s;
    const double ring = 1.0 + p;
    return {ring * std::cos(theta), ring * std::sin(theta), q};
  };
  const auto soup = detail::structured_hex_grid(spec);

  // Severe order-3 distortion on top of the twist: the normal fan is so
  // wide that essentially every face is re-entrant, gluing the closed ring
  // into a single SCC containing every element (Table 2: twist-hex).
  return build_mesh_from_cells("twist-hex", ElementType::Hexahedron, 3, soup.vertices,
                               soup.cells, detail::face_wobble(3.5));
}

}  // namespace ecl::mesh
