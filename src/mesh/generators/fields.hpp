#ifndef ECL_MESH_GENERATORS_FIELDS_HPP
#define ECL_MESH_GENERATORS_FIELDS_HPP

// Internal curvature-field builders shared by the mesh generators.
//
// A high-order (order-3) face bends, so its quadrature normals fan out
// around the mean normal; a face becomes re-entrant for ordinate Omega when
// that fan straddles the plane dot(Omega, n) = 0. `face_wobble` models the
// fan directly: the perturbation is linear in the face-local coordinates
// (s, t), so its magnitude is resolution-independent (refining the mesh
// does not wash it out — each refined face is still an order-3 face), while
// the spatial envelope controls where on the mesh the curvature is severe
// (clustered vs scattered small SCCs).

#include <cmath>
#include <functional>

#include "mesh/mesh.hpp"

namespace ecl::mesh::detail {

/// Smooth unit-ish direction field that rotates with position, so no
/// ordinate is globally orthogonal to the wobble.
inline Vec3 rotating_dir(const Vec3& p, double phase) {
  return {std::sin(1.7 * p.y + 2.3 * p.z + phase), std::cos(1.9 * p.z + 1.3 * p.x + 2.0 * phase),
          std::sin(1.5 * p.x + 2.1 * p.y + 3.0 * phase)};
}

/// Curvature fan of half-angle ~atan(tilt/2), optionally gated by a spatial
/// envelope in [0, 1] and optionally along a fixed direction (pass
/// `fixed_dir` with nonzero norm to make re-entrancy ordinate-selective, as
/// on the mobius strip).
inline CurvatureField face_wobble(double tilt, std::function<double(const Vec3&)> envelope = {},
                                  Vec3 fixed_dir = {}) {
  const bool has_fixed = norm(fixed_dir) > 0.0;
  const Vec3 fixed = normalized(fixed_dir);
  return [tilt, envelope = std::move(envelope), has_fixed, fixed](const Vec3& p, double s,
                                                                  double t) -> Vec3 {
    const double gate = envelope ? envelope(p) : 1.0;
    if (gate <= 0.0) return {};
    const Vec3 a = has_fixed ? fixed : rotating_dir(p, 0.0);
    const Vec3 b = has_fixed ? fixed : rotating_dir(p, 1.4);
    return (gate * tilt) * ((s - 0.5) * a + (t - 0.5) * b);
  };
}

}  // namespace ecl::mesh::detail

#endif  // ECL_MESH_GENERATORS_FIELDS_HPP
