#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"
#include "mesh/generators/fields.hpp"
#include "mesh/generators/structured.hpp"

namespace ecl::mesh {
namespace {

using std::numbers::pi;

/// Solid-torus grid: annular cross section (radial r, minor angle psi),
/// swept around the major circle (theta). Periodic in psi and theta.
detail::CellSoup toroid_grid(std::size_t target_elements) {
  const auto [ni, nj, nk] = detail::dims_for_target(target_elements, 1.0, 3.0, 6.0);
  detail::HexGridSpec spec;
  spec.ni = ni;
  spec.nj = nj;
  spec.nk = nk;
  spec.periodic_j = true;
  spec.periodic_k = true;
  spec.map = [](double r, double psi, double theta) -> Vec3 {
    const double rho = 0.12 + 0.28 * r;  // cross-section annulus
    const double a = 2.0 * pi * psi;
    const double t = 2.0 * pi * theta;
    const double ring = 1.0 + rho * std::cos(a);
    return {ring * std::cos(t), ring * std::sin(t), rho * std::sin(a)};
  };
  return detail::structured_hex_grid(spec);
}

/// Order-3 curvature for the toroid meshes: the fan tilt is gated by a
/// low-frequency spatial envelope, so re-entrant faces cluster into
/// contiguous patches — producing the connected small-SCC clusters of
/// Tables 1-2 (toroid-hex largest SCC up to a few hundred) rather than
/// only isolated 2-cycles.
CurvatureField toroid_curvature(double tilt, double frequency, double phase) {
  auto envelope = [frequency, phase](const Vec3& p) {
    const double f = frequency;
    const double e = std::sin(f * p.x + phase) * std::sin(0.8 * f * p.y + 2.0 * phase) +
                     0.6 * std::sin(0.9 * f * p.z + 3.0 * phase);
    return std::max(0.0, e - 0.55);
  };
  return detail::face_wobble(tilt, envelope);
}

}  // namespace

Mesh toroid_hex(std::size_t target_elements) {
  const auto soup = toroid_grid(target_elements);
  return build_mesh_from_cells("toroid-hex", ElementType::Hexahedron, 3, soup.vertices,
                               soup.cells, toroid_curvature(0.9, 2.2, 0.9));
}

Mesh toroid_wedge(std::size_t target_elements) {
  const auto hexes = toroid_grid(std::max<std::size_t>(1, target_elements / 2));
  const auto soup = detail::subdivide_hexes_to_wedges(hexes);
  // Higher-frequency, lower-amplitude field: isolated re-entrant faces,
  // i.e. thousands of size-2 SCCs with small clusters (toroid-wedge rows).
  return build_mesh_from_cells("toroid-wedge", ElementType::Wedge, 3, soup.vertices,
                               soup.cells, toroid_curvature(0.8, 5.0, 0.3));
}

}  // namespace ecl::mesh
