#include "mesh/mesh.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace ecl::mesh {
namespace {

/// One facet of a cell: up to 4 vertex indices in cyclic order (triangles
/// leave the 4th slot unused).
struct Facet {
  std::array<std::uint32_t, 4> verts{};
  int size = 0;
};

/// Facets of each supported cell type, in cyclic vertex order.
std::vector<Facet> cell_facets(const Cell& cell) {
  const auto& v = cell.vertices;
  auto tri = [&](int a, int b, int c) { return Facet{{v[a], v[b], v[c], 0}, 3}; };
  auto quad = [&](int a, int b, int c, int d) { return Facet{{v[a], v[b], v[c], v[d]}, 4}; };
  switch (v.size()) {
    case 4:  // tetrahedron
      return {tri(0, 1, 2), tri(0, 1, 3), tri(0, 2, 3), tri(1, 2, 3)};
    case 6:  // wedge: bottom {0,1,2}, top {3,4,5}
      return {tri(0, 1, 2), tri(3, 4, 5), quad(0, 1, 4, 3), quad(1, 2, 5, 4), quad(2, 0, 3, 5)};
    case 8:  // hexahedron, corner v = x + 2y + 4z
      return {quad(0, 1, 3, 2), quad(4, 5, 7, 6), quad(0, 1, 5, 4),
              quad(2, 3, 7, 6), quad(0, 2, 6, 4), quad(1, 3, 7, 5)};
    default:
      throw std::invalid_argument("cell_facets: unsupported cell size");
  }
}

std::array<std::uint32_t, 4> facet_key(const Facet& f) {
  std::array<std::uint32_t, 4> key = f.verts;
  if (f.size == 3) key[3] = static_cast<std::uint32_t>(-1);
  std::sort(key.begin(), key.end());
  return key;
}

Vec3 cell_center(const std::vector<Vec3>& vertices, const Cell& cell) {
  Vec3 c;
  for (auto v : cell.vertices) c += vertices[v];
  return (1.0 / static_cast<double>(cell.vertices.size())) * c;
}

/// Bilinear patch over cyclic corners (a, b, c, d).
struct BilinearPatch {
  Vec3 a, b, c, d;

  Vec3 at(double s, double t) const {
    return (1 - s) * (1 - t) * a + s * (1 - t) * b + s * t * c + (1 - s) * t * d;
  }
  Vec3 normal(double s, double t) const {
    const Vec3 ds = (1 - t) * (b - a) + t * (c - d);
    const Vec3 dt = (1 - s) * (d - a) + s * (c - b);
    return normalized(cross(ds, dt));
  }
};

/// Quadrature positions along one axis: k interior points of (0, 1).
std::vector<double> axis_points(int k) {
  std::vector<double> pts(k);
  for (int i = 0; i < k; ++i) pts[i] = (i + 0.5) / k;
  return pts;
}

void apply_curvature(const CurvatureField& curvature, const Vec3& point, double s, double t,
                     Vec3& normal) {
  if (curvature) normal = normalized(normal + curvature(point, s, t));
}

/// Quadrature normals of a facet, oriented so the center normal points
/// along `outward_hint` (from e1's center toward e2's center).
std::vector<Vec3> facet_normals(const std::vector<Vec3>& vertices, const Facet& facet,
                                const Vec3& outward_hint, const CurvatureField& curvature) {
  std::vector<Vec3> normals;
  if (facet.size == 3) {
    const Vec3 p0 = vertices[facet.verts[0]];
    const Vec3 p1 = vertices[facet.verts[1]];
    const Vec3 p2 = vertices[facet.verts[2]];
    Vec3 n = normalized(cross(p1 - p0, p2 - p0));
    if (dot(n, outward_hint) < 0) n = -1.0 * n;
    // Three quadrature points: blends of the centroid toward each corner,
    // with face-local coordinates spread over the parameter square.
    const Vec3 centroid = (1.0 / 3.0) * (p0 + p1 + p2);
    static constexpr double tri_params[3][2] = {{0.15, 0.15}, {0.85, 0.3}, {0.4, 0.85}};
    int idx = 0;
    for (const Vec3& corner : {p0, p1, p2}) {
      const Vec3 point = 0.5 * (centroid + corner);
      Vec3 pn = n;
      apply_curvature(curvature, point, tri_params[idx][0], tri_params[idx][1], pn);
      ++idx;
      normals.push_back(pn);
    }
  } else {
    const BilinearPatch patch{vertices[facet.verts[0]], vertices[facet.verts[1]],
                              vertices[facet.verts[2]], vertices[facet.verts[3]]};
    const double flip = dot(patch.normal(0.5, 0.5), outward_hint) < 0 ? -1.0 : 1.0;
    for (double s : axis_points(2)) {
      for (double t : axis_points(2)) {
        Vec3 pn = flip * patch.normal(s, t);
        apply_curvature(curvature, patch.at(s, t), s, t, pn);
        normals.push_back(pn);
      }
    }
  }
  return normals;
}

}  // namespace

const char* to_string(ElementType type) {
  switch (type) {
    case ElementType::Hexahedron: return "Hexahedral";
    case ElementType::Tetrahedron: return "Tetrahedral";
    case ElementType::Wedge: return "Wedge";
    case ElementType::Quadrilateral: return "Quadrilateral";
  }
  return "?";
}

Mesh build_mesh_from_cells(std::string name, ElementType type, int order,
                           const std::vector<Vec3>& vertices, const std::vector<Cell>& cells,
                           const CurvatureField& curvature) {
  Mesh mesh;
  mesh.name = std::move(name);
  mesh.element_type = type;
  mesh.order = order;
  mesh.num_elements = static_cast<vid>(cells.size());
  mesh.element_centers.reserve(cells.size());
  for (const Cell& cell : cells) mesh.element_centers.push_back(cell_center(vertices, cell));

  // Match facets: a key seen twice identifies an interior face.
  std::map<std::array<std::uint32_t, 4>, std::pair<vid, Facet>> open_facets;
  for (vid e = 0; e < cells.size(); ++e) {
    for (const Facet& facet : cell_facets(cells[e])) {
      const auto key = facet_key(facet);
      auto it = open_facets.find(key);
      if (it == open_facets.end()) {
        open_facets.emplace(key, std::make_pair(e, facet));
        continue;
      }
      const auto [e1, f1] = it->second;
      open_facets.erase(it);
      if (e1 == e) throw std::logic_error("build_mesh_from_cells: degenerate cell facet");
      Face face;
      face.e1 = e1;
      face.e2 = e;
      const Vec3 hint = mesh.element_centers[face.e2] - mesh.element_centers[face.e1];
      face.normals = facet_normals(vertices, f1, hint, curvature);
      mesh.faces.push_back(std::move(face));
    }
  }
  return mesh;
}

Mesh build_surface_mesh(std::string name, int order, const std::vector<Vec3>& vertices,
                        const std::vector<Cell>& quads, int points,
                        const CurvatureField& curvature) {
  Mesh mesh;
  mesh.name = std::move(name);
  mesh.element_type = ElementType::Quadrilateral;
  mesh.order = order;
  mesh.num_elements = static_cast<vid>(quads.size());
  mesh.element_centers.reserve(quads.size());
  for (const Cell& q : quads) {
    if (q.vertices.size() != 4)
      throw std::invalid_argument("build_surface_mesh: cells must be quads");
    mesh.element_centers.push_back(cell_center(vertices, q));
  }

  // Per-element surface patch (for evaluating the surface normal near an
  // edge) and edge matching by sorted endpoint pair.
  auto patch_of = [&](vid e) {
    const auto& v = quads[e].vertices;
    return BilinearPatch{vertices[v[0]], vertices[v[1]], vertices[v[2]], vertices[v[3]]};
  };

  std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<vid, int>> open_edges;
  for (vid e = 0; e < quads.size(); ++e) {
    const auto& v = quads[e].vertices;
    for (int side = 0; side < 4; ++side) {
      const std::uint32_t p = v[side];
      const std::uint32_t q = v[(side + 1) % 4];
      const std::pair<std::uint32_t, std::uint32_t> key = std::minmax(p, q);
      auto it = open_edges.find(key);
      if (it == open_edges.end()) {
        open_edges.emplace(key, std::make_pair(e, side));
        continue;
      }
      const auto [e1, side1] = it->second;
      open_edges.erase(it);
      Face face;
      face.e1 = e1;
      face.e2 = e;
      const Vec3 hint = mesh.element_centers[face.e2] - mesh.element_centers[face.e1];

      // Walk the shared edge on e1's patch; the in-surface edge normal is
      // surface_normal x edge_tangent, oriented from e1 toward e2.
      const auto& v1 = quads[e1].vertices;
      const Vec3 ep = vertices[v1[side1]];
      const Vec3 eq = vertices[v1[(side1 + 1) % 4]];
      const Vec3 tangent = normalized(eq - ep);
      const BilinearPatch patch1 = patch_of(e1);
      const BilinearPatch patch2 = patch_of(e);

      // Parametric coordinates of side1 on e1's patch.
      auto side_param = [](int side, double u) -> std::pair<double, double> {
        switch (side) {
          case 0: return {u, 0.0};
          case 1: return {1.0, u};
          case 2: return {1.0 - u, 1.0};
          default: return {0.0, 1.0 - u};
        }
      };

      // Center-point orientation fix shared by all quadrature points.
      const auto [cs, ct] = side_param(side1, 0.5);
      const Vec3 surf_center =
          normalized(patch1.normal(cs, ct) + patch2.normal(0.5, 0.5));
      Vec3 center_normal = normalized(cross(surf_center, tangent));
      const double flip = dot(center_normal, hint) < 0 ? -1.0 : 1.0;

      int point_index = 0;
      for (double u : axis_points(points)) {
        const auto [s, t] = side_param(side1, u);
        const Vec3 point = patch1.at(s, t);
        // Surface normal at the edge point: average of both patches' plane
        // normals, which captures the fold across the edge.
        const Vec3 surf = normalized(patch1.normal(s, t) + patch2.normal(0.5, 0.5));
        Vec3 n = flip * normalized(cross(surf, tangent));
        // The edge is one-dimensional; alternate the second face-local
        // coordinate so curvature fields exercise both fan axes.
        const double t_local = (point_index++ % 2 == 0) ? 0.15 : 0.85;
        apply_curvature(curvature, point, u, t_local, n);
        face.normals.push_back(n);
      }
      mesh.faces.push_back(std::move(face));
    }
  }
  return mesh;
}

}  // namespace ecl::mesh
