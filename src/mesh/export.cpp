#include "mesh/export.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "graph/condensation.hpp"

namespace ecl::mesh {

void write_vtk_sweep_graph(std::ostream& out, const Mesh& mesh, const graph::Digraph& graph,
                           std::span<const graph::vid> labels) {
  if (graph.num_vertices() != mesh.num_elements)
    throw std::invalid_argument("write_vtk_sweep_graph: graph/mesh size mismatch");
  if (!labels.empty() && labels.size() != mesh.num_elements)
    throw std::invalid_argument("write_vtk_sweep_graph: bad label count");

  out << "# vtk DataFile Version 3.0\n";
  out << "ECL-SCC sweep graph: " << mesh.name << "\n";
  out << "ASCII\nDATASET POLYDATA\n";

  out << "POINTS " << mesh.num_elements << " double\n";
  for (const Vec3& c : mesh.element_centers) out << c.x << ' ' << c.y << ' ' << c.z << '\n';

  const auto m = graph.num_edges();
  out << "LINES " << m << ' ' << 3 * m << '\n';
  for (graph::vid u = 0; u < graph.num_vertices(); ++u) {
    for (graph::vid v : graph.out_neighbors(u)) out << "2 " << u << ' ' << v << '\n';
  }

  if (!labels.empty()) {
    std::vector<graph::vid> dense(labels.begin(), labels.end());
    graph::normalize_labels(dense);
    out << "POINT_DATA " << mesh.num_elements << '\n';
    out << "SCALARS scc int 1\nLOOKUP_TABLE default\n";
    for (graph::vid c : dense) out << c << '\n';
  }
}

void write_vtk_sweep_graph_file(const std::string& path, const Mesh& mesh,
                                const graph::Digraph& graph,
                                std::span<const graph::vid> labels) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_vtk_sweep_graph(out, mesh, graph, labels);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace ecl::mesh
