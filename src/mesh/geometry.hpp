#ifndef ECL_MESH_GEOMETRY_HPP
#define ECL_MESH_GEOMETRY_HPP

// Minimal 3-D vector geometry for the mesh substrate.

#include <cmath>

namespace ecl::mesh {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend constexpr Vec3 operator*(double s, Vec3 v) { return {s * v.x, s * v.y, s * v.z}; }
  friend constexpr Vec3 operator*(Vec3 v, double s) { return s * v; }
  Vec3& operator+=(Vec3 o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
};

constexpr double dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

constexpr Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

inline double norm(Vec3 v) { return std::sqrt(dot(v, v)); }

/// Unit vector in the direction of v; the zero vector maps to itself.
inline Vec3 normalized(Vec3 v) {
  const double n = norm(v);
  return n > 0.0 ? (1.0 / n) * v : v;
}

}  // namespace ecl::mesh

#endif  // ECL_MESH_GEOMETRY_HPP
