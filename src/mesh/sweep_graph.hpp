#ifndef ECL_MESH_SWEEP_GRAPH_HPP
#define ECL_MESH_SWEEP_GRAPH_HPP

// Sweep-graph construction (§4.1).
//
// For an ordinate Omega, each interior face (e1, e2) contributes directed
// edges according to the sign of dot(Omega, n(x_i)) at every quadrature
// point x_i: positive -> edge e1 -> e2, otherwise -> edge e2 -> e1. A face
// whose signs differ between points is re-entrant and produces edges in
// both directions, i.e. a 2-cycle.

#include <vector>

#include "graph/digraph.hpp"
#include "mesh/mesh.hpp"

namespace ecl::mesh {

/// Directed sweep graph of `mesh` for one ordinate. Vertices are mesh
/// elements; vertex count equals mesh.num_elements.
graph::Digraph build_sweep_graph(const Mesh& mesh, const Vec3& ordinate);

/// Sweep graphs for all ordinates (one per direction).
std::vector<graph::Digraph> build_sweep_graphs(const Mesh& mesh,
                                               const std::vector<Vec3>& ordinates);

/// Number of re-entrant faces of `mesh` for one ordinate (faces producing
/// both edge directions). Diagnostic used by tests and examples.
std::size_t count_reentrant_faces(const Mesh& mesh, const Vec3& ordinate);

}  // namespace ecl::mesh

#endif  // ECL_MESH_SWEEP_GRAPH_HPP
