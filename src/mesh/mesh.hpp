#ifndef ECL_MESH_MESH_HPP
#define ECL_MESH_MESH_HPP

// Unstructured mesh substrate for the radiative-transfer workloads (§4.1).
//
// The paper consumes MFEM meshes only through their interior faces: each
// face stores the pair of adjacent elements (e1, e2) and the outward unit
// normal of e1 evaluated at several quadrature points x_i along the face.
// High-order (curved) elements make the normal vary across a face; when the
// sign of dot(ordinate, n(x_i)) differs between points, the face is
// "re-entrant" and induces a 2-cycle in the sweep graph — the source of the
// small SCCs that motivate ECL-SCC.
//
// This module represents exactly that view (elements are opaque indices;
// faces carry quadrature normals) plus a generic constructor that derives
// interior faces from a "cell soup" (cells with shared global vertices), so
// every generator — hex, tet, wedge, surface-quad — funnels through one
// audited code path.

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "mesh/geometry.hpp"

namespace ecl::mesh {

using graph::vid;

enum class ElementType { Hexahedron, Tetrahedron, Wedge, Quadrilateral };

const char* to_string(ElementType type);

/// An interior face between elements e1 and e2 (convention: the stored
/// normals are outward normals of e1, i.e. they nominally point from e1
/// into e2 — §4.1).
struct Face {
  vid e1 = 0;
  vid e2 = 0;
  /// Outward unit normal of e1 at each quadrature point along the face.
  std::vector<Vec3> normals;
};

/// A mesh, reduced to the data the sweep-graph construction needs.
struct Mesh {
  std::string name;
  ElementType element_type = ElementType::Hexahedron;
  int order = 1;  ///< geometric order; > 1 implies curved (varying) normals
  vid num_elements = 0;
  std::vector<Face> faces;
  std::vector<Vec3> element_centers;  ///< one per element (used by sweeps/tests)
};

/// A polyhedral cell described by indices into a shared vertex array.
/// Supported sizes: 3 (surface triangle is not used), 4 = tetrahedron,
/// 6 = wedge, 8 = hexahedron (VTK corner ordering: x fastest, then y, z).
struct Cell {
  std::vector<std::uint32_t> vertices;
};

/// Smooth per-point normal perturbation used to model high-order curved
/// faces. Called with the quadrature point's physical position and its
/// face-local parametric coordinates (s, t) in [0,1]^2; returns a vector
/// added to the geometric normal before renormalization. Depending on
/// (s, t) lets the perturbation vary *within* one face — the signature of a
/// genuinely curved (order-3) face — independent of mesh resolution, while
/// the physical position argument lets generators spatially correlate the
/// curvature (clustered re-entrant faces). Null = straight faces.
using CurvatureField = std::function<Vec3(const Vec3& point, double s, double t)>;

/// Builds the interior-face list of a cell soup.
///
///  * Matching: two cells sharing a full facet (same vertex set) are
///    adjacent; the facet becomes one interior Face.
///  * Normals: evaluated from the actual facet geometry (triangle: exact
///    plane normal; quad: bilinear-patch normal) at `points_per_edge`^2
///    quadrature points for quads and 3 points for triangles, oriented so
///    the face-center normal points from e1 to e2.
///  * Curvature: if provided, perturbs each quadrature normal (then
///    renormalizes), modeling order-3 geometry on top of straight cells.
Mesh build_mesh_from_cells(std::string name, ElementType type, int order,
                           const std::vector<Vec3>& vertices, const std::vector<Cell>& cells,
                           const CurvatureField& curvature = nullptr);

/// Builds a mesh from surface quads (2-D manifold in 3-D): interior "faces"
/// are shared element edges; normals are in-surface edge normals (tangent
/// to the surface, perpendicular to the edge, pointing from e1 toward e2),
/// evaluated at `points` positions along the edge.
Mesh build_surface_mesh(std::string name, int order, const std::vector<Vec3>& vertices,
                        const std::vector<Cell>& quads, int points,
                        const CurvatureField& curvature = nullptr);

}  // namespace ecl::mesh

#endif  // ECL_MESH_MESH_HPP
