#include "mesh/ordinates.hpp"

#include <cmath>
#include <numbers>

namespace ecl::mesh {

std::vector<Vec3> fibonacci_ordinates(unsigned n) {
  std::vector<Vec3> dirs;
  dirs.reserve(n);
  const double golden_angle = std::numbers::pi * (3.0 - std::sqrt(5.0));
  for (unsigned i = 0; i < n; ++i) {
    // z sweeps (-1, 1); the small offsets keep directions off the poles and
    // off exact axis alignment (which would make many dot products zero).
    const double z = 1.0 - (2.0 * i + 1.0) / n;
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    const double phi = golden_angle * static_cast<double>(i) + 0.1;
    dirs.push_back({r * std::cos(phi), r * std::sin(phi), z});
  }
  return dirs;
}

}  // namespace ecl::mesh
