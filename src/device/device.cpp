#include "device/device.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "support/env.hpp"

namespace ecl::device {

// The paper's two evaluation GPUs. The launch overheads keep the Titan V
// slightly more latency-bound than the A100, mirroring the generational
// gap the paper measures on launch-dominated inputs.
DeviceProfile titan_v_profile() { return {"titanv", 80, 512, 2048, 30.0, false, {}}; }
DeviceProfile a100_profile() { return {"a100", 108, 512, 2048, 20.0, false, {}}; }
DeviceProfile tiny_profile() { return {"tiny", 2, 32, 64, 0.0, false, {}}; }

Device::Device(DeviceProfile profile, unsigned host_workers)
    : profile_(std::move(profile)), fault_(profile_.fault_plan), pool_(host_workers) {
  effective_overhead_us_ =
      profile_.launch_overhead_us * env_double("ECL_LAUNCH_OVERHEAD", 1.0);
}

void Device::record_block_work(unsigned block, std::uint64_t amount) noexcept {
  if (amount == 0 || block >= launch_work_.size()) return;
  std::atomic_ref<std::uint64_t>(launch_work_[block]).fetch_add(amount,
                                                                std::memory_order_relaxed);
}

void Device::begin_block_work(unsigned num_blocks) {
  if (launch_work_.size() < num_blocks) launch_work_.resize(num_blocks);
  std::fill_n(launch_work_.begin(), num_blocks, 0);
}

void Device::fold_block_work(unsigned num_blocks) {
  std::uint64_t total = 0;
  std::uint64_t top = 0;
  for (unsigned b = 0; b < num_blocks; ++b) {
    total += launch_work_[b];
    top = std::max(top, launch_work_[b]);
  }
  if (total == 0) return;
  if (stats_.block_edge_work.size() < num_blocks) stats_.block_edge_work.resize(num_blocks, 0);
  for (unsigned b = 0; b < num_blocks; ++b) stats_.block_edge_work[b] += launch_work_[b];
  const double mean = static_cast<double>(total) / num_blocks;
  stats_.imbalance_weighted += (static_cast<double>(top) / mean) * static_cast<double>(total);
  stats_.imbalance_weight += static_cast<double>(total);
}

void Device::charge_launch_overhead() {
  if (effective_overhead_us_ <= 0.0) return;
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::nanoseconds(static_cast<long>(effective_overhead_us_ * 1e3));
  // Spin: sleep_for's granularity (>= 50us on most kernels) is far coarser
  // than a launch latency.
  while (Clock::now() < deadline) {
  }
}

}  // namespace ecl::device
