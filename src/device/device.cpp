#include "device/device.hpp"

#include <chrono>

#include "support/env.hpp"

namespace ecl::device {

// The paper's two evaluation GPUs. The launch overheads keep the Titan V
// slightly more latency-bound than the A100, mirroring the generational
// gap the paper measures on launch-dominated inputs.
DeviceProfile titan_v_profile() { return {"titanv", 80, 512, 2048, 30.0, false, {}}; }
DeviceProfile a100_profile() { return {"a100", 108, 512, 2048, 20.0, false, {}}; }
DeviceProfile tiny_profile() { return {"tiny", 2, 32, 64, 0.0, false, {}}; }

Device::Device(DeviceProfile profile, unsigned host_workers)
    : profile_(std::move(profile)), fault_(profile_.fault_plan), pool_(host_workers) {
  effective_overhead_us_ =
      profile_.launch_overhead_us * env_double("ECL_LAUNCH_OVERHEAD", 1.0);
}

void Device::charge_launch_overhead() {
  if (effective_overhead_us_ <= 0.0) return;
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::nanoseconds(static_cast<long>(effective_overhead_us_ * 1e3));
  // Spin: sleep_for's granularity (>= 50us on most kernels) is far coarser
  // than a launch latency.
  while (Clock::now() < deadline) {
  }
}

}  // namespace ecl::device
