#include "device/worklist.hpp"

namespace ecl::device {

EdgeWorklist::EdgeWorklist(const graph::Digraph& g) {
  std::vector<graph::Edge> edges;
  edges.reserve(g.num_edges());
  for (graph::vid u = 0; u < g.num_vertices(); ++u)
    for (graph::vid v : g.out_neighbors(u)) edges.push_back({u, v});
  init(edges);
}

EdgeWorklist::EdgeWorklist(std::span<const graph::Edge> edges) { init(edges); }

void EdgeWorklist::init(std::span<const graph::Edge> edges) {
  buffers_[0].assign(edges.begin(), edges.end());
  buffers_[1].resize(edges.size());
  size_.store(edges.size(), std::memory_order_relaxed);
  next_size_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  overflow_.store(false, std::memory_order_relaxed);
  cur_ = 0;
}

}  // namespace ecl::device
