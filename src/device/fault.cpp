#include "device/fault.hpp"

#include <chrono>
#include <numeric>
#include <sstream>

#include "support/rng.hpp"

namespace ecl::device {
namespace {

/// Stateless mix of (plan seed, salt) into a well-distributed 64-bit value.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) noexcept {
  std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

double unit_double(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan FaultPlan::from_seed(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  std::uint64_t state = seed;
  const std::uint64_t toggles = splitmix64(state);
  plan.permute_blocks = toggles & 1;
  plan.scheduling_jitter = toggles & 2;
  plan.spurious_reexecution = toggles & 4;
  plan.delayed_visibility = toggles & 8;
  if (!plan.any()) plan.permute_blocks = true;  // never a vacuous plan
  plan.max_jitter_us = 1.0 + unit_double(splitmix64(state)) * 30.0;
  plan.max_replays = 1 + static_cast<unsigned>(splitmix64(state) % 3);
  plan.store_defer_probability = 0.1 + unit_double(splitmix64(state)) * 0.4;
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "seed=" << seed << " [";
  bool first = true;
  auto item = [&](const std::string& s) {
    if (!first) out << ' ';
    out << s;
    first = false;
  };
  if (permute_blocks) item("permute");
  if (scheduling_jitter) {
    std::ostringstream j;
    j << "jitter<=" << max_jitter_us << "us";
    item(j.str());
  }
  if (spurious_reexecution) {
    std::ostringstream r;
    r << "replays<=" << max_replays;
    item(r.str());
  }
  if (delayed_visibility) {
    std::ostringstream d;
    d << "defer=" << store_defer_probability;
    item(d.str());
  }
  if (lost_update) {
    std::ostringstream l;
    l << "lose=" << store_lose_probability;
    item(l.str());
  }
  if (window_launches > 0) {
    std::ostringstream w;
    w << "window=[" << window_start_launch << ','
      << (window_start_launch + window_launches) << ')';
    item(w.str());
  }
  if (first) item("disabled");
  out << ']';
  return out.str();
}

std::vector<FaultPlan> chaos_suite() {
  std::vector<FaultPlan> plans;
  auto base = [&](std::uint64_t seed) {
    FaultPlan p;
    p.seed = seed;
    return p;
  };
  {  // each axis alone
    FaultPlan p = base(101);
    p.permute_blocks = true;
    plans.push_back(p);
  }
  {
    FaultPlan p = base(102);
    p.scheduling_jitter = true;
    p.max_jitter_us = 15.0;
    plans.push_back(p);
  }
  {
    FaultPlan p = base(103);
    p.spurious_reexecution = true;
    p.max_replays = 3;
    plans.push_back(p);
  }
  {
    FaultPlan p = base(104);
    p.delayed_visibility = true;
    p.store_defer_probability = 0.3;
    plans.push_back(p);
  }
  {  // pairwise and full combinations
    FaultPlan p = base(105);
    p.permute_blocks = true;
    p.scheduling_jitter = true;
    p.max_jitter_us = 8.0;
    plans.push_back(p);
  }
  {
    FaultPlan p = base(106);
    p.spurious_reexecution = true;
    p.delayed_visibility = true;
    p.store_defer_probability = 0.5;
    plans.push_back(p);
  }
  {
    FaultPlan p = base(107);
    p.permute_blocks = true;
    p.scheduling_jitter = true;
    p.spurious_reexecution = true;
    p.delayed_visibility = true;
    plans.push_back(p);
  }
  // randomized tail: distinct seeds, axes drawn from the seed
  for (std::uint64_t seed : {0xfeedULL, 0xbeefULL, 0xc0ffeeULL}) plans.push_back(FaultPlan::from_seed(seed));
  return plans;
}

std::vector<unsigned> FaultInjector::block_permutation(std::uint64_t launch_id,
                                                       unsigned num_blocks) const {
  if (!plan_.permute_blocks) return {};
  std::vector<unsigned> perm(num_blocks);
  std::iota(perm.begin(), perm.end(), 0u);
  // Fisher-Yates driven by a per-launch stream, so every launch sees a
  // fresh (but seed-reproducible) permutation.
  Rng rng(mix(plan_.seed, launch_id));
  for (unsigned i = num_blocks; i > 1; --i) {
    const auto j = static_cast<unsigned>(rng.bounded(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

void FaultInjector::schedule_delay(std::uint64_t launch_id, unsigned block_id) const {
  if (!plan_.scheduling_jitter || plan_.max_jitter_us <= 0.0) return;
  const double fraction =
      unit_double(mix(plan_.seed, launch_id * 0x10001ULL + block_id));
  const double delay_us = fraction * plan_.max_jitter_us;
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::nanoseconds(static_cast<long>(delay_us * 1e3));
  // Spin, like the launch-overhead model: sleep granularity is far coarser
  // than the sub-launch delays being injected.
  while (Clock::now() < deadline) {
  }
}

unsigned FaultInjector::replay_count(std::uint64_t launch_id, unsigned num_blocks) const {
  if (!plan_.spurious_reexecution || num_blocks == 0) return 0;
  const std::uint64_t draw = mix(plan_.seed, launch_id ^ 0x5e17ULL);
  return static_cast<unsigned>(draw % (plan_.max_replays + 1));
}

unsigned FaultInjector::replay_block(std::uint64_t launch_id, unsigned index,
                                     unsigned num_blocks) const {
  const std::uint64_t draw = mix(plan_.seed, (launch_id << 8) ^ index ^ 0xab1eULL);
  return static_cast<unsigned>(draw % num_blocks);
}

bool FaultInjector::defer_store() noexcept {
  if (!plan_.delayed_visibility || !window_open()) return false;
  if (plan_.store_defer_probability >= 1.0) {
    deferred_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const std::uint64_t draw = draws_.fetch_add(1, std::memory_order_relaxed);
  const bool defer = unit_double(mix(plan_.seed, draw)) < plan_.store_defer_probability;
  if (defer) deferred_.fetch_add(1, std::memory_order_relaxed);
  return defer;
}

bool FaultInjector::lose_store() noexcept {
  if (!plan_.lost_update || !window_open()) return false;
  if (plan_.store_lose_probability >= 1.0) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Salted separately from the defer stream so a plan carrying both axes
  // makes decorrelated decisions.
  const std::uint64_t draw = draws_.fetch_add(1, std::memory_order_relaxed);
  const bool lose =
      unit_double(mix(plan_.seed ^ 0x105e'105eULL, draw)) < plan_.store_lose_probability;
  if (lose) lost_.fetch_add(1, std::memory_order_relaxed);
  return lose;
}

}  // namespace ecl::device
