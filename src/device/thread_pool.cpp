#include "device/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecl::device {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  // The calling thread participates in every batch, so spawn workers - 1.
  threads_.reserve(workers - 1);
  for (unsigned i = 1; i < workers; ++i) threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_batch(Batch& batch, bool notify_done) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) break;
    try {
      (*batch.fn)(i);
    } catch (...) {
      batch.failed.store(true, std::memory_order_relaxed);
    }
    if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 >= batch.count &&
        notify_done) {
      // Take the lock before notifying so the wake can't slip between the
      // caller's predicate check and its sleep.
      { std::lock_guard lock(mutex_); }
      work_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->count = count;
  {
    std::lock_guard lock(mutex_);
    batch_ = batch;
    ++generation_;
  }
  work_ready_.notify_all();

  // The caller works too; this also makes the pool correct with 0 spawned
  // threads (single-core hosts).
  run_batch(*batch, /*notify_done=*/false);

  std::unique_lock lock(mutex_);
  work_done_.wait(lock, [&] {
    return batch->completed.load(std::memory_order_acquire) >= batch->count;
  });
  if (batch_ == batch) batch_.reset();
  if (batch->failed.load(std::memory_order_relaxed))
    throw std::runtime_error("ThreadPool: a worker task threw an exception");
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = batch_;
    }
    if (batch == nullptr) continue;
    run_batch(*batch, /*notify_done=*/true);
  }
}

}  // namespace ecl::device
