#include "device/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecl::device {
namespace {

/// Spin iterations before a worker parks on the condition variable. Each
/// iteration yields, so a spinning worker never starves the submitter on an
/// oversubscribed (or single-core) host.
constexpr int kSpinIterations = 128;

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  // The calling thread participates in every batch as slot 0, so spawn
  // workers - 1 threads occupying slots 1..workers-1.
  threads_.reserve(workers - 1);
  for (unsigned i = 1; i < workers; ++i) threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_.store(true, std::memory_order_relaxed);
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_batch(Batch& batch, unsigned slot, bool notify_done) {
  std::uint64_t claimed = 0;
  std::uint64_t stolen = 0;
  const auto execute = [&](std::size_t i) {
    try {
      batch.invoke(batch.ctx, i);
    } catch (...) {
      batch.failed.store(true, std::memory_order_relaxed);
    }
    if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 >= batch.count &&
        notify_done) {
      // Take the lock before notifying so the wake can't slip between the
      // caller's predicate check and its sleep.
      { std::lock_guard lock(mutex_); }
      work_done_.notify_one();
    }
  };

  if (batch.slots > 0) {
    // Drain this worker's own claim range: contention-free fetch_add on a
    // cache line no other worker touches until it steals.
    if (slot < batch.slots) {
      ClaimRange& own = batch.ranges[slot];
      for (;;) {
        const std::size_t i = own.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= own.end) break;
        ++claimed;
        execute(i);
      }
    }
    // Steal from the most-loaded peer until every range is drained. A steal
    // advances the victim's own cursor, so exactly-once execution needs no
    // extra coordination; a lost race (cursor past end) just rescans.
    for (;;) {
      ClaimRange* victim = nullptr;
      std::size_t best = 0;
      for (unsigned s = 0; s < batch.slots; ++s) {
        ClaimRange& r = batch.ranges[s];
        const std::size_t at = r.next.load(std::memory_order_relaxed);
        const std::size_t left = at < r.end ? r.end - at : 0;
        if (left > best) {
          best = left;
          victim = &r;
        }
      }
      if (victim == nullptr) break;
      const std::size_t i = victim->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= victim->end) continue;
      ++stolen;
      execute(i);
    }
  } else {
    for (;;) {
      const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.count) break;
      ++claimed;
      execute(i);
    }
  }

  if (claimed) claimed_.fetch_add(claimed, std::memory_order_relaxed);
  if (stolen) stolen_.fetch_add(stolen, std::memory_order_relaxed);
}

void ThreadPool::parallel_for_erased(std::size_t count, InvokeFn invoke, const void* ctx,
                                     bool work_stealing) {
  if (count == 0) return;
  auto batch = std::make_shared<Batch>();
  batch->invoke = invoke;
  batch->ctx = ctx;
  batch->count = count;
  if (work_stealing) {
    const unsigned slots = num_workers();
    batch->slots = slots;
    batch->ranges = std::make_unique<ClaimRange[]>(slots);
    const std::size_t q = count / slots;
    const std::size_t r = count % slots;
    std::size_t begin = 0;
    for (unsigned s = 0; s < slots; ++s) {
      const std::size_t len = q + (s < r ? 1 : 0);
      batch->ranges[s].next.store(begin, std::memory_order_relaxed);
      batch->ranges[s].end = begin + len;
      begin += len;
    }
  }

  bool wake;
  {
    std::lock_guard lock(mutex_);
    batch_ = batch;
    generation_.fetch_add(1, std::memory_order_release);
    wake = parked_ > 0;
  }
  // Spinning workers observe the generation bump without a syscall; only
  // parked ones need the (mutex-serialized) notify.
  if (wake) work_ready_.notify_all();

  // The caller works too; this also makes the pool correct with 0 spawned
  // threads (single-core hosts).
  run_batch(*batch, /*slot=*/0, /*notify_done=*/false);

  // Spin-then-park on the completion count, mirroring the workers' side of
  // the barrier: back-to-back launches whose stragglers finish within the
  // spin window never touch the condition variable.
  bool done = false;
  for (int spin = 0; spin < kSpinIterations; ++spin) {
    if (batch->completed.load(std::memory_order_acquire) >= batch->count) {
      done = true;
      break;
    }
    std::this_thread::yield();
  }
  {
    std::unique_lock lock(mutex_);
    if (!done) {
      work_done_.wait(lock, [&] {
        return batch->completed.load(std::memory_order_acquire) >= batch->count;
      });
    }
    if (batch_ == batch) batch_.reset();
  }
  if (batch->failed.load(std::memory_order_relaxed))
    throw std::runtime_error("ThreadPool: a worker task threw an exception");
}

void ThreadPool::worker_loop(unsigned slot) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    // Phase 1: spin briefly — a fixpoint loop's next launch usually arrives
    // within the window, and the generation load is uncontended.
    bool have_work = false;
    for (int spin = 0; spin < kSpinIterations; ++spin) {
      if (shutdown_.load(std::memory_order_relaxed)) return;
      if (generation_.load(std::memory_order_acquire) != seen_generation) {
        have_work = true;
        break;
      }
      std::this_thread::yield();
    }
    // Phase 2: park. The predicate re-checks the generation under the same
    // mutex the submitter bumps it under, so the wake cannot be missed.
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lock(mutex_);
      if (!have_work) {
        ++parked_;
        work_ready_.wait(lock, [&] {
          return shutdown_.load(std::memory_order_relaxed) ||
                 generation_.load(std::memory_order_relaxed) != seen_generation;
        });
        --parked_;
      }
      if (shutdown_.load(std::memory_order_relaxed)) return;
      seen_generation = generation_.load(std::memory_order_relaxed);
      batch = batch_;
    }
    if (batch == nullptr) continue;
    run_batch(*batch, slot, /*notify_done=*/true);
  }
}

}  // namespace ecl::device
