#include "device/thread_pool.hpp"

#include <algorithm>

namespace ecl::device {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  // The calling thread participates in every batch, so spawn workers - 1.
  threads_.reserve(workers - 1);
  for (unsigned i = 1; i < workers; ++i) threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  {
    std::lock_guard lock(mutex_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    batch_failed_.store(false, std::memory_order_relaxed);
    ++generation_;
  }
  work_ready_.notify_all();

  // The caller works too; this also makes the pool correct with 0 spawned
  // threads (single-core hosts).
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    try {
      fn(i);
    } catch (...) {
      batch_failed_.store(true, std::memory_order_relaxed);
    }
    completed_.fetch_add(1, std::memory_order_acq_rel);
  }

  std::unique_lock lock(mutex_);
  work_done_.wait(lock, [&] { return completed_.load(std::memory_order_acquire) >= count_; });
  fn_ = nullptr;
  if (batch_failed_.load(std::memory_order_relaxed))
    throw std::runtime_error("ThreadPool: a worker task threw an exception");
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
      fn = fn_;
      count = count_;
    }
    if (fn == nullptr) continue;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*fn)(i);
      } catch (...) {
        batch_failed_.store(true, std::memory_order_relaxed);
      }
      if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 >= count) {
        work_done_.notify_one();
      }
    }
  }
}

}  // namespace ecl::device
