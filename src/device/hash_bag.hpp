#ifndef ECL_DEVICE_HASH_BAG_HPP
#define ECL_DEVICE_HASH_BAG_HPP

// Concurrent insert-only vertex bag with dedup-on-insert (DESIGN.md §15).
//
// The hash-bag sparse frontier (after the hash bags of Wang et al.'s
// faster-reachability SCC, see PAPERS.md) replaces the dense worklist SWEEP
// in Phase-2 rounds whose mover set is small: during round r every vertex
// whose signature moved is inserted here, and round r+1 visits only the
// edges incident to that set instead of gate-checking the whole worklist.
//
// Layout is GPU-idiomatic: a fixed open-addressing table of 64-bit slots
// (round tag in the high word, vertex in the low word) provides CAS dedup,
// and an append list behind an atomic cursor provides O(frontier) drain —
// no O(capacity) clear or scan per round. A new round invalidates the whole
// table in O(1) by bumping the round tag; stale slots are reclaimed lazily
// by the inserts that probe over them.
//
// Guarantees, in the same grades the EdgeWorklist documents:
//
//  * insert is thread-safe and idempotent per round: concurrent inserts of
//    the same vertex commit it to the list once (CAS arbitration), which is
//    what lets chain chasing stamp every vertex it advances without ever
//    double-queueing a frontier entry;
//  * dedup is exact while probes stay inside the bounded probe window; a
//    probe-exhausted insert appends WITHOUT dedup (a duplicate frontier
//    entry is benign — the edge gather dedups per-edge by round stamp);
//  * an append past list capacity is dropped, counted, and raises a sticky
//    saturation flag: the round's mover set is incomplete and the caller
//    must fall back to a dense sweep (then grow() before the next round).
//
// begin_round / grow / items run on the control thread at a grid barrier
// only; insert runs from kernel threads.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>

#include "graph/digraph.hpp"

namespace ecl::device {

class HashBag {
 public:
  static constexpr std::size_t kProbeWindow = 32;

  explicit HashBag(std::size_t capacity) { allocate(capacity); }

  /// Control thread, at a grid barrier: starts collecting for `round`
  /// (a monotone non-zero clock, e.g. the Phase-2 round counter). O(1) —
  /// entries of earlier rounds become stale in place. Clears saturation.
  void begin_round(std::uint32_t round) noexcept {
    assert(round != 0 && "HashBag: round 0 is the empty-slot tag");
    round_ = round;
    cursor_.store(0, std::memory_order_relaxed);
    saturated_.store(false, std::memory_order_relaxed);
  }

  /// Thread-safe insert of a vertex into the current round's bag. Returns
  /// true when this call committed the vertex to the list; false on a
  /// duplicate or a saturated drop.
  bool insert(graph::vid v) noexcept {
    const std::uint64_t tagged =
        (static_cast<std::uint64_t>(round_) << 32) | static_cast<std::uint64_t>(v);
    std::size_t slot = hash(v) & mask_;
    for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
      std::uint64_t cur = table_[slot].load(std::memory_order_relaxed);
      for (;;) {
        if (cur == tagged) return false;  // already in this round's bag
        if ((cur >> 32) == round_) break;  // live entry for another vertex: next slot
        // Stale (earlier round) or empty: claim it.
        if (table_[slot].compare_exchange_weak(cur, tagged, std::memory_order_relaxed,
                                               std::memory_order_relaxed))
          return append(v);
        // CAS failed: cur now holds the winner; re-examine it.
      }
      slot = (slot + 1) & mask_;
    }
    // Probe window exhausted (clustered table): append without dedup. A
    // duplicate is harmless downstream; losing the insert would not be.
    return append(v);
  }

  /// Vertices committed this round, in append order. Control thread only.
  std::span<const graph::vid> items() const noexcept {
    const std::size_t count =
        std::min(cursor_.load(std::memory_order_acquire), list_capacity_);
    return {list_.get(), count};
  }

  std::size_t size() const noexcept {
    return std::min(cursor_.load(std::memory_order_acquire), list_capacity_);
  }
  std::size_t capacity() const noexcept { return list_capacity_; }

  /// Sticky within the round: an insert ran past list capacity, so the
  /// round's mover set is incomplete and must not be used as a frontier.
  bool saturated() const noexcept { return saturated_.load(std::memory_order_acquire); }

  /// Dropped inserts since construction (saturation losses), for metrics.
  std::uint64_t dropped() const noexcept { return dropped_.load(std::memory_order_relaxed); }

  /// Control thread, between rounds: reallocates to at least `min_capacity`
  /// entries. Current-round contents are discarded (grow is only reached
  /// after saturation or before a dense round, where the bag is dead
  /// anyway), so no rehash is needed.
  void grow(std::size_t min_capacity) {
    if (min_capacity <= list_capacity_) return;
    allocate(min_capacity);
    round_ = 0;  // invalidate: nothing collected in the fresh table yet
    cursor_.store(0, std::memory_order_relaxed);
    saturated_.store(false, std::memory_order_relaxed);
  }

 private:
  static std::uint64_t hash(graph::vid v) noexcept {
    // splitmix64 finalizer: full-avalanche, cheap, and seedless — the table
    // layout must be a pure function of the vertex for dedup to hold.
    std::uint64_t x = static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  bool append(graph::vid v) noexcept {
    const std::size_t at = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (at >= list_capacity_) {
      saturated_.store(true, std::memory_order_relaxed);
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    list_[at] = v;
    return true;
  }

  void allocate(std::size_t capacity) {
    list_capacity_ = std::max<std::size_t>(16, capacity);
    std::size_t table = 1;
    while (table < list_capacity_ * 2) table <<= 1;
    table_ = std::make_unique<std::atomic<std::uint64_t>[]>(table);
    for (std::size_t i = 0; i < table; ++i)
      table_[i].store(0, std::memory_order_relaxed);
    mask_ = table - 1;
    list_ = std::make_unique<graph::vid[]>(list_capacity_);
  }

  std::unique_ptr<std::atomic<std::uint64_t>[]> table_;
  std::unique_ptr<graph::vid[]> list_;
  std::size_t list_capacity_ = 0;
  std::size_t mask_ = 0;
  std::uint32_t round_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<bool> saturated_{false};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace ecl::device

#endif  // ECL_DEVICE_HASH_BAG_HPP
