#ifndef ECL_DEVICE_SIGNATURE_STORE_HPP
#define ECL_DEVICE_SIGNATURE_STORE_HPP

// Signature state layout (§3.4 + DESIGN.md §10).
//
// ECL-SCC's per-vertex state — the vin/vout max signatures, the optional
// min_in/min_out pair of the 4-signature variant, and the frontier-gating
// epoch stamp — can live in two layouts:
//
//  * plain SoA (the seed layout): one densely packed atomic array per
//    field. Sixteen vertices share each 64-byte line, so pool threads
//    updating different vertices ping-pong lines between cores (false
//    sharing) on write-heavy propagation rounds;
//  * padded AoS: one 64-byte-aligned slot per vertex holding all of that
//    vertex's fields. A writer dirties only its own vertex's line, and the
//    fields an edge visit touches together (vin+vout+epoch of one endpoint)
//    arrive on one line.
//
// Both layouts sit behind the same AtomicU32 accessors, so the relaxed-order
// store helpers in device/atomics.hpp — and therefore the benign-race
// semantics the paper's monotonic stores rely on — are identical in either
// mode. The choice is purely a memory-layout lever (EclOptions::
// padded_signatures), toggleable for the bench_hotpath ablation.

#include <cstdint>
#include <memory>

#include "device/atomics.hpp"

namespace ecl::device {

class SignatureStore {
 public:
  SignatureStore() = default;

  /// Allocates state for n vertices. `with_min` adds the 4-signature
  /// min_in/min_out pair; the epoch stamps are always present (4 bytes per
  /// vertex unpadded; free inside the padded slot).
  SignatureStore(std::uint32_t n, bool with_min, bool padded) : padded_(padded) {
    if (padded_) {
      slots_ = std::make_unique<PaddedSlot[]>(n);
    } else {
      vin_ = std::make_unique<AtomicU32[]>(n);
      vout_ = std::make_unique<AtomicU32[]>(n);
      if (with_min) {
        min_in_ = std::make_unique<AtomicU32[]>(n);
        min_out_ = std::make_unique<AtomicU32[]>(n);
      }
      epoch_ = std::make_unique<AtomicU32[]>(n);
    }
  }

  bool padded() const noexcept { return padded_; }

  AtomicU32& vin(std::uint32_t v) noexcept { return padded_ ? slots_[v].vin : vin_[v]; }
  AtomicU32& vout(std::uint32_t v) noexcept { return padded_ ? slots_[v].vout : vout_[v]; }
  AtomicU32& min_in(std::uint32_t v) noexcept {
    return padded_ ? slots_[v].min_in : min_in_[v];
  }
  AtomicU32& min_out(std::uint32_t v) noexcept {
    return padded_ ? slots_[v].min_out : min_out_[v];
  }

  /// Frontier-gating stamp: the last global propagation round in which any
  /// signature of v moved (0 = never).
  AtomicU32& epoch(std::uint32_t v) noexcept { return padded_ ? slots_[v].epoch : epoch_[v]; }

  std::uint32_t epoch_of(std::uint32_t v) const noexcept {
    return padded_ ? slots_[v].epoch.load(std::memory_order_relaxed)
                   : epoch_[v].load(std::memory_order_relaxed);
  }

 private:
  /// One vertex's complete signature state on its own cache line. atomics
  /// zero-initialize, matching the seed arrays' value-initialized state.
  struct alignas(64) PaddedSlot {
    AtomicU32 vin{0};
    AtomicU32 vout{0};
    AtomicU32 min_in{0};
    AtomicU32 min_out{0};
    AtomicU32 epoch{0};
  };
  static_assert(sizeof(PaddedSlot) == 64, "one slot per cache line");
  static_assert(alignof(PaddedSlot) == 64, "slots must start on line boundaries");

  bool padded_ = false;
  std::unique_ptr<PaddedSlot[]> slots_;
  std::unique_ptr<AtomicU32[]> vin_;
  std::unique_ptr<AtomicU32[]> vout_;
  std::unique_ptr<AtomicU32[]> min_in_;
  std::unique_ptr<AtomicU32[]> min_out_;
  std::unique_ptr<AtomicU32[]> epoch_;
};

}  // namespace ecl::device

#endif  // ECL_DEVICE_SIGNATURE_STORE_HPP
