#ifndef ECL_DEVICE_THREAD_POOL_HPP
#define ECL_DEVICE_THREAD_POOL_HPP

// A minimal blocking thread pool used as the host backend of the virtual
// GPU (see device.hpp). Work is handed out as dense task indices, which the
// device layer maps to thread blocks.
//
// Two scheduling modes (DESIGN.md §11):
//
//  * shared-cursor (classic) — every worker claims indices from one shared
//    fetch_add cursor. Simple, but all workers contend on one cache line
//    for every task claimed.
//  * work-stealing — the index range is pre-split into one contiguous claim
//    range per worker (64-byte padded, so claims are contention-free), and
//    a worker that drains its own range steals from the currently
//    most-loaded peer. The steal reuses the victim's claim cursor, so every
//    index is still executed exactly once without any range-splitting
//    handshake.
//
// Submission uses a spin-then-park barrier: workers spin briefly on an
// atomic batch generation before parking on the condition variable, so
// back-to-back launches (the ECL fixpoint pattern) skip the wake/sleep
// round trip. The park path re-checks the generation under the mutex, so
// no wakeup can be missed.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ecl::device {

class ThreadPool {
 public:
  /// `workers == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_workers() const noexcept { return static_cast<unsigned>(threads_.size() + 1); }

  /// Runs fn(i) for every i in [0, count), distributing indices dynamically
  /// across the workers (including the calling thread). Blocks until all
  /// tasks complete. Exceptions thrown by fn propagate to the caller.
  ///
  /// The callable is invoked through a captured function pointer + context
  /// pointer, so no std::function (and no heap allocation) is constructed
  /// on this path — the launch hot path stays allocation-free.
  template <typename Fn>
  void parallel_for(std::size_t count, const Fn& fn, bool work_stealing = false) {
    parallel_for_erased(
        count, [](const void* ctx, std::size_t i) { (*static_cast<const Fn*>(ctx))(i); },
        std::addressof(fn), work_stealing);
  }

  /// Tasks claimed from a worker's own range (or the shared cursor) since
  /// construction, and tasks stolen from a peer's range. claimed + stolen
  /// equals the total number of tasks executed. Test/metrics hooks.
  std::uint64_t claimed_tasks() const noexcept {
    return claimed_.load(std::memory_order_relaxed);
  }
  std::uint64_t stolen_tasks() const noexcept { return stolen_.load(std::memory_order_relaxed); }

 private:
  using InvokeFn = void (*)(const void*, std::size_t);

  /// One worker's contiguous claim range. Padded to its own cache line so
  /// the common case (claiming from your own range) never contends.
  struct alignas(64) ClaimRange {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  // One parallel_for call. The claim/complete counters live with the batch
  // (not the pool) so a straggler worker that snapshotted an old batch can
  // never claim indices from — or run the function of — a newer one: its
  // counters are exhausted, and the shared_ptr keeps them valid to read.
  // The caller outlives fn itself: it cannot leave parallel_for until every
  // claimed index has been completed, and workers finish their last call to
  // fn before publishing that completion.
  struct Batch {
    InvokeFn invoke = nullptr;
    const void* ctx = nullptr;
    std::size_t count = 0;
    unsigned slots = 0;  ///< claim ranges when stealing; 0 = shared cursor
    std::unique_ptr<ClaimRange[]> ranges;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> failed{false};
  };

  void parallel_for_erased(std::size_t count, InvokeFn invoke, const void* ctx,
                           bool work_stealing);
  void worker_loop(unsigned slot);
  void run_batch(Batch& batch, unsigned slot, bool notify_done);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;

  std::shared_ptr<Batch> batch_;             // guarded by mutex_
  std::atomic<std::uint64_t> generation_{0};  // written under mutex_; spin-read lock-free
  std::atomic<bool> shutdown_{false};         // written under mutex_; spin-read lock-free
  unsigned parked_ = 0;                       // guarded by mutex_

  std::atomic<std::uint64_t> claimed_{0};
  std::atomic<std::uint64_t> stolen_{0};
};

}  // namespace ecl::device

#endif  // ECL_DEVICE_THREAD_POOL_HPP
