#ifndef ECL_DEVICE_THREAD_POOL_HPP
#define ECL_DEVICE_THREAD_POOL_HPP

// A minimal blocking thread pool used as the host backend of the virtual
// GPU (see device.hpp). Work is handed out as dense task indices, which the
// device layer maps to thread blocks.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecl::device {

class ThreadPool {
 public:
  /// `workers == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_workers() const noexcept { return static_cast<unsigned>(threads_.size() + 1); }

  /// Runs fn(i) for every i in [0, count), distributing indices dynamically
  /// across the workers (including the calling thread). Blocks until all
  /// tasks complete. Exceptions thrown by fn propagate to the caller.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;

  // Current batch state (guarded by mutex_ for control, atomics for indices).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::atomic<bool> batch_failed_{false};
};

}  // namespace ecl::device

#endif  // ECL_DEVICE_THREAD_POOL_HPP
