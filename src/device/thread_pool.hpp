#ifndef ECL_DEVICE_THREAD_POOL_HPP
#define ECL_DEVICE_THREAD_POOL_HPP

// A minimal blocking thread pool used as the host backend of the virtual
// GPU (see device.hpp). Work is handed out as dense task indices, which the
// device layer maps to thread blocks.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ecl::device {

class ThreadPool {
 public:
  /// `workers == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_workers() const noexcept { return static_cast<unsigned>(threads_.size() + 1); }

  /// Runs fn(i) for every i in [0, count), distributing indices dynamically
  /// across the workers (including the calling thread). Blocks until all
  /// tasks complete. Exceptions thrown by fn propagate to the caller.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  // One parallel_for call. The claim/complete counters live with the batch
  // (not the pool) so a straggler worker that snapshotted an old batch can
  // never claim indices from — or run the function of — a newer one: its
  // counters are exhausted, and the shared_ptr keeps them valid to read.
  // The caller outlives fn itself: it cannot leave parallel_for until every
  // claimed index has been completed, and workers finish their last call to
  // fn before publishing that completion.
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> failed{false};
  };

  void worker_loop();
  void run_batch(Batch& batch, bool notify_done);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;

  std::shared_ptr<Batch> batch_;  // guarded by mutex_
  std::uint64_t generation_ = 0;  // guarded by mutex_
  bool shutdown_ = false;         // guarded by mutex_
};

}  // namespace ecl::device

#endif  // ECL_DEVICE_THREAD_POOL_HPP
