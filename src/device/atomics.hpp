#ifndef ECL_DEVICE_ATOMICS_HPP
#define ECL_DEVICE_ATOMICS_HPP

// Signature-store primitives.
//
// ECL-SCC's Phase 2 can use CUDA atomicMax, but the paper's implementation
// uses atomic-free monotonic stores (Nasre et al. [17]): racing writers may
// lose an update, which only delays convergence because the propagation is
// monotonic and retried (§3.4). In portable C++, a plain racy write is UB,
// so the benign race is modelled with relaxed-order atomic loads/stores:
// same lost-update semantics, no undefined behavior.

#include <atomic>
#include <cstdint>

namespace ecl::device {

using AtomicU32 = std::atomic<std::uint32_t>;

/// CAS-loop atomic max (the "safe" Phase-2 variant). Returns true if the
/// stored value changed.
inline bool atomic_fetch_max(AtomicU32& slot, std::uint32_t value) noexcept {
  std::uint32_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur) {
    if (slot.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// The paper's atomic-free monotonic store: read, compare, plain store.
/// Concurrent writers may overwrite each other (a lower value can win one
/// round), which the caller must tolerate by re-checking on the next
/// iteration. Returns true if this thread wrote.
inline bool racy_store_max(AtomicU32& slot, std::uint32_t value) noexcept {
  if (value > slot.load(std::memory_order_relaxed)) {
    slot.store(value, std::memory_order_relaxed);
    return true;
  }
  return false;
}

/// CAS-loop atomic min (used by the optional 4-signature min/max variant,
/// §3.3). Returns true if the stored value changed.
inline bool atomic_fetch_min(AtomicU32& slot, std::uint32_t value) noexcept {
  std::uint32_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur) {
    if (slot.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Monotonic racy store, min direction.
inline bool racy_store_min(AtomicU32& slot, std::uint32_t value) noexcept {
  if (value < slot.load(std::memory_order_relaxed)) {
    slot.store(value, std::memory_order_relaxed);
    return true;
  }
  return false;
}

using AtomicU64 = std::atomic<std::uint64_t>;

/// CAS-loop atomic max on a 64-bit counter (metrics high-water marks, e.g.
/// SccMetrics::max_chain_len). Returns true if the stored value changed.
inline bool atomic_fetch_max_u64(AtomicU64& slot, std::uint64_t value) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur) {
    if (slot.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace ecl::device

#endif  // ECL_DEVICE_ATOMICS_HPP
