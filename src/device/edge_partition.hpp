#ifndef ECL_DEVICE_EDGE_PARTITION_HPP
#define ECL_DEVICE_EDGE_PARTITION_HPP

// Edge-balanced work partitioning (DESIGN.md §11).
//
// The classic BlockContext::for_each_chunk distribution hands every block
// equal ITEM chunks, so on skewed inputs a block that owns a hub does
// orders of magnitude more edge work than its peers. The helpers here give
// each block an equal EDGE span instead:
//
//  * equal_edge_span — the degenerate merge-path split for a flat work
//    array (one work unit per item): contiguous, equal-size spans, so the
//    grid scans the array exactly once in order instead of in
//    block-strided chunks.
//  * owner_of / for_each_item_span — the CSR form: given an offsets array
//    (offsets[i]..offsets[i+1] = item i's work units, e.g. a frontier's
//    degree prefix sums), a block binary-searches the single item that owns
//    the start of its span (one upper_bound per block — no precomputed
//    per-edge array) and then walks items forward until the span is
//    consumed. This is the merge-path diagonal split of Green et al.
//    specialized to the one-list case.
//
// All helpers are pure functions of (block, grid, offsets); they are safe
// to call concurrently from kernels.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

namespace ecl::device {

/// Half-open span of global work-unit indices owned by one block.
struct EdgeSpan {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const noexcept { return end - begin; }
  bool empty() const noexcept { return begin >= end; }
};

/// Equal contiguous partition of `total` work units over `num_blocks`
/// blocks; spans differ in size by at most one unit (the remainder goes to
/// the lowest-numbered blocks). Requires num_blocks > 0 and
/// block < num_blocks; total == 0 yields empty spans for every block.
constexpr EdgeSpan equal_edge_span(unsigned block, unsigned num_blocks,
                                   std::uint64_t total) noexcept {
  const std::uint64_t q = total / num_blocks;
  const std::uint64_t r = total % num_blocks;
  const std::uint64_t begin =
      static_cast<std::uint64_t>(block) * q + std::min<std::uint64_t>(block, r);
  return {begin, begin + q + (block < r ? 1 : 0)};
}

/// The unique item i with offsets[i] <= k < offsets[i+1], for a CSR-style
/// offsets array (size n + 1, offsets[0] == 0, nondecreasing). Items with
/// zero work are skipped by construction. Requires k < offsets.back().
template <typename OffsetT>
std::size_t owner_of(std::span<const OffsetT> offsets, std::uint64_t k) noexcept {
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), static_cast<OffsetT>(k));
  return static_cast<std::size_t>(it - offsets.begin()) - 1;
}

/// Calls fn(item, lo, hi) for every item whose work range intersects
/// `span`, where [lo, hi) is the intersection in GLOBAL work coordinates
/// (item i's local unit j sits at offsets[i] + j). Zero-work items are
/// never reported. One upper_bound total, then a forward walk.
template <typename OffsetT, typename Fn>
void for_each_item_span(std::span<const OffsetT> offsets, EdgeSpan span, Fn&& fn) {
  if (span.empty() || offsets.size() < 2) return;
  std::size_t item = owner_of(offsets, span.begin);
  std::uint64_t pos = span.begin;
  const std::size_t items = offsets.size() - 1;
  while (pos < span.end && item < items) {
    const auto item_end = static_cast<std::uint64_t>(offsets[item + 1]);
    const std::uint64_t hi = std::min(span.end, item_end);
    if (pos < hi) fn(item, pos, hi);
    pos = std::max(pos, hi);
    ++item;
  }
}

}  // namespace ecl::device

#endif  // ECL_DEVICE_EDGE_PARTITION_HPP
