#ifndef ECL_DEVICE_FAULT_HPP
#define ECL_DEVICE_FAULT_HPP

// Chaos-device fault injection.
//
// The correctness argument of ECL-SCC rests on two properties the paper
// asserts but a single schedule cannot probe (§3.2-3.4): the benign-race
// monotonic signature stores tolerate lost updates, and no kernel depends on
// block scheduling order. A FaultPlan makes those assumptions testable by
// perturbing the virtual device along four independent axes:
//
//  * permute_blocks        — hand out block IDs in a seeded random
//                            permutation per launch (generalizes the older
//                            reverse_block_order profile flag);
//  * scheduling_jitter     — spin-delay each block by a seeded pseudo-random
//                            amount before it runs, so blocks interleave in
//                            schedules a quiet host never produces;
//  * spurious_reexecution  — after a launch completes, replay a bounded
//                            random subset of its blocks (models a replayed
//                            straggler). Only launches the caller marks
//                            idempotent are replayed;
//  * delayed_visibility    — defer a fraction of monotonic signature stores
//                            (the store is dropped this round but reported
//                            as movement, so the propagation loop retries
//                            until it lands) — an aggressive form of the
//                            lost-update race of Nasre et al. [17];
//  * lost_update           — silently drop a fraction of monotonic stores:
//                            the store neither lands NOR reports movement,
//                            so the fixpoint converges to WRONG signatures.
//                            This is the fault class the benign-race
//                            argument does NOT cover; it exists to exercise
//                            the online certifier (core/verify.hpp), which
//                            must reject the corrupted labeling before it
//                            is served.
//
// The delayed-visibility and lost-update axes can additionally be confined
// to a launch window [window_start_launch, window_start_launch +
// window_launches): outside the window the stores behave normally. A
// windowed burst models a transient glitch (thermal throttle, preempted
// SM): the watchdog trips mid-run, and the checkpointed-resume machinery
// (DESIGN.md §12) recovers once the burst passes.
//
// Every plan is derived from a 64-bit seed, so a failing sweep entry is
// reproducible from its seed alone. `store_defer_probability = 1.0` is the
// adversarial limit: no store ever lands, progress is suppressed, and the
// core's fixpoint watchdog must trip (see core/watchdog.hpp).
//
// NOTE: lost_update is deliberately excluded from FaultPlan::from_seed and
// chaos_suite() — those feed sweeps that assert correct RESULTS under
// chaos, while lost_update produces wrong results by design and is only
// meaningful alongside the certifier (tests/core/test_certify.cpp,
// bench/bench_chaos_recovery.cpp).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ecl::device {

/// One seeded fault-injection configuration. All axes default to off; a
/// default-constructed plan makes the device behave exactly like the
/// fault-free substrate.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Randomized block-execution permutation per launch.
  bool permute_blocks = false;

  /// Per-block scheduling delay, uniform in [0, max_jitter_us].
  bool scheduling_jitter = false;
  double max_jitter_us = 20.0;

  /// Replay up to max_replays random blocks after each idempotent launch.
  bool spurious_reexecution = false;
  unsigned max_replays = 2;

  /// Defer monotonic signature stores with the given probability.
  bool delayed_visibility = false;
  double store_defer_probability = 0.25;

  /// Silently LOSE monotonic signature stores with the given probability:
  /// dropped and reported as no movement, corrupting the fixpoint (the
  /// certifier's adversary; see the file comment).
  bool lost_update = false;
  double store_lose_probability = 0.25;

  /// Launch window confining the store faults (delayed_visibility and
  /// lost_update). window_launches == 0 means unbounded: the faults apply
  /// to every launch, the pre-window behavior of older plans.
  std::uint64_t window_start_launch = 0;
  std::uint64_t window_launches = 0;

  /// True if any fault axis is enabled.
  bool any() const noexcept {
    return permute_blocks || scheduling_jitter || spurious_reexecution ||
           delayed_visibility || lost_update;
  }

  /// Derives a randomized plan from a seed: which axes are on and their
  /// magnitudes are all functions of `seed`, and at least one axis is
  /// always enabled. Identical seeds yield identical plans.
  static FaultPlan from_seed(std::uint64_t seed);

  /// Human-readable one-liner ("seed=7 [permute jitter=12.5us]") for test
  /// failure messages and bench tables.
  std::string describe() const;
};

/// The deterministic chaos sweep used by tests/core/test_chaos.cpp and
/// bench/bench_chaos_overhead.cpp: every axis alone, plus combined plans,
/// each with a distinct seed. Always at least 8 plans and covers all four
/// fault classes.
std::vector<FaultPlan> chaos_suite();

/// Per-device fault state: owns the plan plus the draw counters that make
/// injection decisions reproducible-in-distribution from the plan seed.
/// All methods are safe to call concurrently from device blocks.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) : plan_(plan), active_(plan.any()) {}

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Fast-path guard: false for the default plan, in which case the device
  /// must behave exactly as if the injector did not exist.
  bool active() const noexcept { return active_; }

  /// Seeded permutation of [0, num_blocks) for one launch (empty when the
  /// permutation axis is off).
  std::vector<unsigned> block_permutation(std::uint64_t launch_id, unsigned num_blocks) const;

  /// Spin-delays the calling thread by the seeded jitter for this block
  /// (no-op when the jitter axis is off).
  void schedule_delay(std::uint64_t launch_id, unsigned block_id) const;

  /// Number of spurious block replays for one idempotent launch, in
  /// [0, max_replays].
  unsigned replay_count(std::uint64_t launch_id, unsigned num_blocks) const;

  /// Block ID of the index-th replay of one launch.
  unsigned replay_block(std::uint64_t launch_id, unsigned index, unsigned num_blocks) const;

  /// Delayed-visibility draw: true when the caller's monotonic store should
  /// be deferred to a later retry. The caller must report the store as
  /// movement so its fixpoint loop runs again (monotonicity then guarantees
  /// eventual convergence for probabilities < 1). Honors the plan's launch
  /// window: outside it, never defers.
  bool defer_store() noexcept;

  /// Lost-update draw: true when the caller's monotonic store should be
  /// silently dropped — no store, no reported movement. The resulting
  /// fixpoint is corrupt; only the online certifier can catch it. Honors
  /// the plan's launch window.
  bool lose_store() noexcept;

  /// Launch-window bookkeeping: the device reports each launch ID as it
  /// dispatches, so windowed store faults know whether they are live.
  /// Called from the control thread between grid barriers.
  void begin_launch(std::uint64_t launch_id) noexcept {
    current_launch_.store(launch_id, std::memory_order_relaxed);
  }
  std::uint64_t current_launch() const noexcept {
    return current_launch_.load(std::memory_order_relaxed);
  }

  /// True when the plan's launch window (if any) covers the current launch.
  bool window_open() const noexcept {
    if (plan_.window_launches == 0) return true;
    const std::uint64_t launch = current_launch_.load(std::memory_order_relaxed);
    return launch >= plan_.window_start_launch &&
           launch < plan_.window_start_launch + plan_.window_launches;
  }

  /// Total stores deferred so far (test observability).
  std::uint64_t deferred_stores() const noexcept {
    return deferred_.load(std::memory_order_relaxed);
  }

  /// Total stores silently lost so far (test observability).
  std::uint64_t lost_stores() const noexcept {
    return lost_.load(std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  bool active_ = false;
  std::atomic<std::uint64_t> draws_{0};
  std::atomic<std::uint64_t> deferred_{0};
  std::atomic<std::uint64_t> lost_{0};
  std::atomic<std::uint64_t> current_launch_{0};
};

}  // namespace ecl::device

#endif  // ECL_DEVICE_FAULT_HPP
