#ifndef ECL_DEVICE_DEVICE_HPP
#define ECL_DEVICE_DEVICE_HPP

// Virtual-GPU execution substrate.
//
// The paper's system is a CUDA implementation; this container has no GPU, so
// the reproduction runs the same kernels on a "virtual device" that models
// the execution structure the paper's optimizations manipulate:
//
//  * kernels are launched over a grid of thread blocks with an implicit
//    grid-wide barrier at launch end (the paper's three per-phase barriers);
//  * a persistent-thread launch runs exactly as many resident blocks as the
//    device profile can co-schedule, each grid-striding over the work
//    (Gupta et al. [9], §3.4);
//  * per-launch statistics (kernel launches, block iterations) expose the
//    quantities the paper's async optimization reduces (§3.3).
//
// Blocks execute as tasks on a host thread pool. Within a block, the logical
// 512 "threads" run as a sequential loop over the block's items — every
// cross-block interaction (worklist appends, signature races) uses the same
// atomics the CUDA code would, so the concurrency semantics are preserved.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "device/fault.hpp"
#include "device/thread_pool.hpp"

namespace ecl::device {

/// Hardware profile of a simulated GPU. The two profiles used in the paper's
/// evaluation are provided (Titan V, A100).
struct DeviceProfile {
  std::string name;
  unsigned num_sms = 8;
  unsigned threads_per_block = 512;  ///< launch width used by ECL-SCC (§3.4)
  unsigned max_threads_per_sm = 2048;
  /// Simulated per-launch latency in microseconds. Real CUDA launches cost
  /// ~5-15us, which on latency-bound codes (iterated Trim-1 sweeps, level-
  /// synchronous BFS) dominates the runtime — the effect the paper's async
  /// Phase-2 optimization exists to avoid (§3.3, [19]). The default values
  /// are calibrated so the latency-to-throughput ratio of the simulated
  /// device over ECL_SCALE-sized graphs approximates a real GPU over
  /// paper-sized ones. Scaled globally by ECL_LAUNCH_OVERHEAD (a factor;
  /// set to 0 to disable).
  double launch_overhead_us = 0.0;
  /// Failure-injection knob for tests: hand out block IDs in reverse task
  /// order. Correct kernels must not depend on block scheduling order, so
  /// every algorithm must produce identical results under this profile.
  bool reverse_block_order = false;
  /// Seeded chaos-injection plan (see fault.hpp). Disabled by default; a
  /// disabled plan must cost nothing beyond one branch per launch.
  FaultPlan fault_plan;

  /// Number of thread blocks the device can keep resident at once; this is
  /// the grid size of persistent-thread launches.
  unsigned resident_blocks() const noexcept {
    return num_sms * (max_threads_per_sm / threads_per_block);
  }
};

DeviceProfile titan_v_profile();  ///< 80 SMs, 2048 threads/SM
DeviceProfile a100_profile();     ///< 108 SMs, 2048 threads/SM
DeviceProfile tiny_profile();     ///< 2 SMs; exercises grid-stride remainder paths in tests

/// Context handed to a kernel for one thread block.
struct BlockContext {
  unsigned block_id = 0;
  unsigned num_blocks = 1;
  unsigned threads_per_block = 512;

  /// Items this block owns under block-cyclic (grid-stride) distribution of
  /// `total` items in chunks of threads_per_block: chunk c belongs to block
  /// (c % num_blocks).
  struct ChunkRange {
    std::uint64_t begin;
    std::uint64_t end;
  };

  /// Calls fn(chunk_begin, chunk_end) for every chunk this block owns.
  template <typename Fn>
  void for_each_chunk(std::uint64_t total, Fn&& fn) const {
    const std::uint64_t chunk = threads_per_block;
    for (std::uint64_t lo = static_cast<std::uint64_t>(block_id) * chunk; lo < total;
         lo += static_cast<std::uint64_t>(num_blocks) * chunk) {
      fn(lo, std::min(total, lo + chunk));
    }
  }
};

/// Cumulative launch statistics, reset per algorithm run.
struct LaunchStats {
  std::uint64_t kernel_launches = 0;
  std::uint64_t blocks_executed = 0;
  std::uint64_t block_iterations = 0;  ///< async-kernel internal repeats (§3.3)
  std::uint64_t spurious_replays = 0;  ///< fault-injected block re-executions
  std::uint64_t chains_collapsed = 0;  ///< chain chases that moved ≥1 link (§15)
  std::uint64_t hashbag_rounds = 0;    ///< Phase-2 rounds served sparsely (§15)

  /// Per-block edge-work histogram (DESIGN.md §11): cumulative work units
  /// reported via Device::record_block_work, indexed by block id and sized
  /// by the widest reporting grid seen. Kernels that don't report leave it
  /// untouched.
  std::vector<std::uint64_t> block_edge_work;
  /// Work-weighted running sums for the imbalance metric: each reporting
  /// launch contributes (max block work / mean block work) weighted by its
  /// total work.
  double imbalance_weighted = 0.0;
  double imbalance_weight = 0.0;

  /// Work-weighted mean of per-launch max/mean block-work ratios; 1.0 is
  /// perfectly balanced, and 1.0 is returned when nothing was recorded.
  double block_imbalance() const noexcept {
    return imbalance_weight > 0.0 ? imbalance_weighted / imbalance_weight : 1.0;
  }

  void reset() { *this = LaunchStats{}; }
};

/// Per-launch attributes a kernel call site can declare.
struct LaunchOptions {
  /// The kernel tolerates a whole block being re-executed after the grid
  /// completed (monotonic propagation, tag-CAS BFS expansion, init).
  /// Non-idempotent launches (e.g. worklist appends) are never replayed by
  /// the spurious-reexecution fault.
  bool idempotent = false;
  /// Distribute this launch's blocks over per-worker claim ranges with
  /// stealing (thread_pool.hpp) instead of the shared claim cursor.
  bool work_stealing = true;
};

/// A simulated GPU device.
class Device {
 public:
  /// `host_workers == 0` selects the host's hardware concurrency.
  explicit Device(DeviceProfile profile = a100_profile(), unsigned host_workers = 0);

  const DeviceProfile& profile() const noexcept { return profile_; }
  LaunchStats& stats() noexcept { return stats_; }
  const LaunchStats& stats() const noexcept { return stats_; }

  /// The host thread pool executing blocks; exposes the work-stealing
  /// claim/steal counters (DESIGN.md §11).
  const ThreadPool& pool() const noexcept { return pool_; }

  /// The device's fault injector (inactive unless the profile carries an
  /// enabled FaultPlan). Kernels that route signature stores through the
  /// delayed-visibility fault query this.
  FaultInjector& fault() noexcept { return fault_; }
  const FaultInjector& fault() const noexcept { return fault_; }
  bool fault_active() const noexcept { return fault_.active(); }

  /// Launches `num_blocks` blocks of `kernel`; returns after all blocks
  /// complete (grid-wide barrier). Under an active fault plan the block IDs
  /// may be permuted, blocks may be delayed, and — for launches declared
  /// idempotent — a bounded random subset of blocks is replayed after the
  /// grid barrier (a re-executed straggler).
  ///
  /// A zero-block launch is a no-op: no launch is counted and no launch
  /// overhead is charged (a real driver never dispatches an empty grid).
  /// The kernel is dispatched through the pool's templated path, so no
  /// std::function is constructed per launch.
  template <typename Kernel>
  void launch(unsigned num_blocks, Kernel&& kernel, LaunchOptions attrs = {}) {
    if (num_blocks == 0) return;
    const std::uint64_t launch_id = ++stats_.kernel_launches;
    stats_.blocks_executed += num_blocks;
    charge_launch_overhead();
    begin_block_work(num_blocks);
    const bool reverse = profile_.reverse_block_order;
    FaultInjector* fi = fault_.active() ? &fault_ : nullptr;
    // Windowed store faults (fault.hpp) key off the launch counter.
    if (fi) fi->begin_launch(launch_id);
    const std::vector<unsigned> perm =
        fi ? fi->block_permutation(launch_id, num_blocks) : std::vector<unsigned>{};
    const auto task = [&, reverse](std::size_t b) {
      auto block_id = static_cast<unsigned>(reverse ? (num_blocks - 1 - b) : b);
      if (!perm.empty()) block_id = perm[block_id];
      if (fi) fi->schedule_delay(launch_id, block_id);
      BlockContext ctx{block_id, num_blocks, profile_.threads_per_block};
      kernel(ctx);
    };
    pool_.parallel_for(num_blocks, task, attrs.work_stealing);
    if (fi && attrs.idempotent) {
      const unsigned replays = fi->replay_count(launch_id, num_blocks);
      for (unsigned r = 0; r < replays; ++r) {
        BlockContext ctx{fi->replay_block(launch_id, r, num_blocks), num_blocks,
                         profile_.threads_per_block};
        kernel(ctx);
        ++stats_.spurious_replays;
      }
    }
    fold_block_work(num_blocks);
  }

  /// Reports `amount` units of edge work done by `block` in the current
  /// launch. Callable concurrently from inside kernels; folded into
  /// stats().block_edge_work and the imbalance metric at the grid barrier.
  void record_block_work(unsigned block, std::uint64_t amount) noexcept;

  /// Persistent-thread launch: grid size = resident_blocks() (§3.4).
  template <typename Kernel>
  void launch_persistent(Kernel&& kernel, LaunchOptions attrs = {}) {
    launch(profile_.resident_blocks(), std::forward<Kernel>(kernel), attrs);
  }

  /// Grid size for a one-item-per-thread launch over `total` items. Zero
  /// items need zero blocks: launch(0, ...) is a no-op, so empty worklists
  /// cost neither a dispatch nor the launch overhead.
  unsigned blocks_for(std::uint64_t total) const noexcept {
    const std::uint64_t tpb = profile_.threads_per_block;
    return static_cast<unsigned>((total + tpb - 1) / tpb);
  }

 private:
  /// Spin-waits for the profile's launch latency (µs-accurate).
  void charge_launch_overhead();
  /// Zeroes the per-launch work scratch for `num_blocks` blocks.
  void begin_block_work(unsigned num_blocks);
  /// Folds the per-launch scratch into the cumulative histogram and the
  /// work-weighted imbalance sums (no-op when nothing was recorded).
  void fold_block_work(unsigned num_blocks);

  DeviceProfile profile_;
  double effective_overhead_us_ = 0.0;
  FaultInjector fault_;
  ThreadPool pool_;
  LaunchStats stats_;
  /// Per-launch work scratch written by record_block_work via atomic_ref;
  /// resized only between launches (on the control thread).
  std::vector<std::uint64_t> launch_work_;
};

}  // namespace ecl::device

#endif  // ECL_DEVICE_DEVICE_HPP
