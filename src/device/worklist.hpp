#ifndef ECL_DEVICE_WORKLIST_HPP
#define ECL_DEVICE_WORKLIST_HPP

// Double-buffered edge worklist (§3.3).
//
// ECL-SCC's Phase 3 never materializes a smaller graph; it appends the
// surviving edges to a second worklist via an atomic cursor and then swaps
// the two buffer pointers. This class is that data structure.
//
// The append path comes in three grades of cursor contention:
//
//  * push_next       — one fetch_add per edge (the seed behavior; kept for
//                      kernels that emit isolated survivors);
//  * push_next_bulk  — one fetch_add per caller-assembled span;
//  * ChunkAppender   — a per-block staging buffer that batches survivors
//                      and reserves cursor space one chunk (default 1024
//                      edges) at a time, cutting the fetch_add rate by ~3
//                      orders of magnitude on survivor-dense sweeps. Because
//                      a chunk is reserved only when the staged edges are in
//                      hand, the reservation is always exact: no holes, no
//                      unused tail to give back, and the flush at the end of
//                      the block (before the grid barrier) commits the
//                      partial last chunk.
//
// All three preserve the same overflow semantics: an append past capacity
// asserts in debug builds; in release builds the excess edges are dropped,
// counted in dropped_edges(), and a saturating overflow flag is raised for
// the fixpoint watchdog to read. next_size() always records the *attempted*
// append count, so a chaos-device double-append is observable through the
// same counters regardless of which append path the kernel used.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace ecl::device {

class EdgeWorklist {
 public:
  EdgeWorklist() = default;

  /// Fills the current buffer with every edge of g; the spare buffer gets
  /// the same capacity so Phase 3 can never overflow it (it only shrinks).
  explicit EdgeWorklist(const graph::Digraph& g);

  /// Initializes from an explicit edge set.
  explicit EdgeWorklist(std::span<const graph::Edge> edges);

  /// Edges in the current buffer.
  std::span<const graph::Edge> edges() const noexcept {
    return {buffers_[cur_].data(), size_.load(std::memory_order_acquire)};
  }

  std::size_t size() const noexcept { return size_.load(std::memory_order_acquire); }
  bool empty() const noexcept { return size() == 0; }

  /// Capacity of the spare buffer (fixed at construction: Phase 3 only
  /// shrinks the edge set, so a correct kernel can never exceed it).
  std::size_t capacity() const noexcept { return buffers_[1 - cur_].size(); }

  /// Thread-safe append into the *next* buffer (Phase-3 survivors). A push
  /// past capacity — a kernel double-appending, e.g. under a spurious
  /// re-execution fault — asserts in debug builds; in release builds the
  /// edge is dropped, counted, and the sticky overflow flag is raised.
  void push_next(graph::Edge e) noexcept {
    const std::size_t slot = next_size_.fetch_add(1, std::memory_order_relaxed);
    auto& next = buffers_[1 - cur_];
    if (slot >= next.size()) {
      assert(!"EdgeWorklist::push_next: append past capacity (double-append?)");
      record_drop(1);
      return;
    }
    next[slot] = e;
  }

  /// Thread-safe bulk append into the next buffer: one cursor fetch_add for
  /// the whole span. On overflow the prefix that fits is stored and the
  /// rest is dropped (counted, sticky flag raised) — the same edge-wise
  /// semantics as issuing push_next once per element.
  void push_next_bulk(std::span<const graph::Edge> batch) noexcept {
    if (batch.empty()) return;
    const std::size_t start = next_size_.fetch_add(batch.size(), std::memory_order_relaxed);
    auto& next = buffers_[1 - cur_];
    std::size_t stored = batch.size();
    if (start + batch.size() > next.size()) {
      assert(!"EdgeWorklist::push_next_bulk: append past capacity (double-append?)");
      stored = start < next.size() ? next.size() - start : 0;
      record_drop(batch.size() - stored);
    }
    std::copy_n(batch.data(), stored, next.data() + start);
  }

  /// Chunked reservation handle for one virtual block: survivors are staged
  /// in a private buffer and committed with one fetch_add per chunk. Create
  /// one per block inside the kernel; the destructor (which runs before the
  /// launch's grid barrier) flushes the partial last chunk.
  class ChunkAppender {
   public:
    static constexpr std::size_t kDefaultChunkEdges = 1024;

    explicit ChunkAppender(EdgeWorklist& wl,
                           std::size_t chunk_edges = kDefaultChunkEdges) noexcept
        : wl_(wl), chunk_(std::max<std::size_t>(1, chunk_edges)) {
      staged_.reserve(chunk_);
    }
    ChunkAppender(const ChunkAppender&) = delete;
    ChunkAppender& operator=(const ChunkAppender&) = delete;
    ~ChunkAppender() { flush(); }

    void push(graph::Edge e) {
      staged_.push_back(e);
      if (staged_.size() >= chunk_) flush();
    }

    void flush() noexcept {
      if (staged_.empty()) return;
      wl_.push_next_bulk(staged_);
      staged_.clear();
    }

   private:
    EdgeWorklist& wl_;
    std::size_t chunk_;
    std::vector<graph::Edge> staged_;
  };

  /// Number of edges appended to the next buffer so far (may exceed
  /// capacity after an overflow; see overflowed()).
  std::size_t next_size() const noexcept { return next_size_.load(std::memory_order_acquire); }

  /// Saturating overflow flag: set once an append ran past capacity and
  /// sticky until clear_overflow(). The edges dropped by those pushes make
  /// the worklist contents unreliable, so the solver should abandon the
  /// fixpoint and fall back.
  bool overflowed() const noexcept { return overflow_.load(std::memory_order_acquire); }
  void clear_overflow() noexcept {
    overflow_.store(false, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

  /// Edges dropped by appends past capacity since construction or the last
  /// clear_overflow() — the real loss behind the overflow flag, sticky
  /// across swap_buffers() so the watchdog and the chaos bench can report
  /// how much of the edge set was silently discarded.
  std::size_t dropped_edges() const noexcept {
    return dropped_.load(std::memory_order_acquire);
  }

  /// Rewinds the worklist to an explicit edge set (checkpoint restore,
  /// DESIGN.md §12): the current buffer is overwritten with `edges`, the
  /// next-buffer cursor is reset, and the overflow record is cleared (the
  /// restored state predates whatever overflowed). Edges beyond the fixed
  /// capacity are ignored — impossible for a checkpoint, which snapshots a
  /// buffer of the same capacity. Not thread-safe; control thread only.
  void reset(std::span<const graph::Edge> edges) noexcept {
    auto& cur = buffers_[cur_];
    const std::size_t count = std::min(edges.size(), cur.size());
    std::copy_n(edges.data(), count, cur.data());
    size_.store(count, std::memory_order_release);
    next_size_.store(0, std::memory_order_relaxed);
    clear_overflow();
  }

  /// Pointer swap: the next buffer becomes current; the old current buffer
  /// becomes the (logically empty) next buffer. Not thread-safe; call at a
  /// grid barrier only. A cursor past capacity here means appends were
  /// dropped (asserts in debug; the clamped count stays observable through
  /// dropped_edges() in release).
  void swap_buffers() noexcept {
    const std::size_t pushed = next_size_.load(std::memory_order_relaxed);
    assert((pushed <= capacity() || overflowed()) &&
           "EdgeWorklist::swap_buffers: cursor past capacity without overflow record");
    size_.store(std::min(pushed, capacity()), std::memory_order_relaxed);
    next_size_.store(0, std::memory_order_relaxed);
    cur_ = 1 - cur_;
  }

 private:
  void init(std::span<const graph::Edge> edges);

  void record_drop(std::size_t count) noexcept {
    overflow_.store(true, std::memory_order_relaxed);
    dropped_.fetch_add(count, std::memory_order_relaxed);
  }

  std::vector<graph::Edge> buffers_[2];
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> next_size_{0};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<bool> overflow_{false};
  int cur_ = 0;
};

}  // namespace ecl::device

#endif  // ECL_DEVICE_WORKLIST_HPP
