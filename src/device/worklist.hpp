#ifndef ECL_DEVICE_WORKLIST_HPP
#define ECL_DEVICE_WORKLIST_HPP

// Double-buffered edge worklist (§3.3).
//
// ECL-SCC's Phase 3 never materializes a smaller graph; it appends the
// surviving edges to a second worklist via an atomic cursor and then swaps
// the two buffer pointers. This class is that data structure.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace ecl::device {

class EdgeWorklist {
 public:
  EdgeWorklist() = default;

  /// Fills the current buffer with every edge of g; the spare buffer gets
  /// the same capacity so Phase 3 can never overflow it (it only shrinks).
  explicit EdgeWorklist(const graph::Digraph& g);

  /// Initializes from an explicit edge set.
  explicit EdgeWorklist(std::span<const graph::Edge> edges);

  /// Edges in the current buffer.
  std::span<const graph::Edge> edges() const noexcept {
    return {buffers_[cur_].data(), size_.load(std::memory_order_acquire)};
  }

  std::size_t size() const noexcept { return size_.load(std::memory_order_acquire); }
  bool empty() const noexcept { return size() == 0; }

  /// Capacity of the spare buffer (fixed at construction: Phase 3 only
  /// shrinks the edge set, so a correct kernel can never exceed it).
  std::size_t capacity() const noexcept { return buffers_[1 - cur_].size(); }

  /// Thread-safe append into the *next* buffer (Phase-3 survivors). A push
  /// past capacity — a kernel double-appending, e.g. under a spurious
  /// re-execution fault — asserts in debug builds; in release builds the
  /// edge is dropped and a saturating overflow flag is raised for the
  /// fixpoint watchdog to read.
  void push_next(graph::Edge e) noexcept {
    const std::size_t slot = next_size_.fetch_add(1, std::memory_order_relaxed);
    auto& next = buffers_[1 - cur_];
    if (slot >= next.size()) {
      assert(!"EdgeWorklist::push_next: append past capacity (double-append?)");
      overflow_.store(true, std::memory_order_relaxed);
      return;
    }
    next[slot] = e;
  }

  /// Number of edges appended to the next buffer so far (may exceed
  /// capacity after an overflow; see overflowed()).
  std::size_t next_size() const noexcept { return next_size_.load(std::memory_order_acquire); }

  /// Saturating overflow flag: set once a push_next ran past capacity and
  /// sticky until clear_overflow(). The edges dropped by those pushes make
  /// the worklist contents unreliable, so the solver should abandon the
  /// fixpoint and fall back.
  bool overflowed() const noexcept { return overflow_.load(std::memory_order_acquire); }
  void clear_overflow() noexcept { overflow_.store(false, std::memory_order_relaxed); }

  /// Pointer swap: the next buffer becomes current; the old current buffer
  /// becomes the (logically empty) next buffer. Not thread-safe; call at a
  /// grid barrier only.
  void swap_buffers() noexcept {
    const std::size_t pushed = next_size_.load(std::memory_order_relaxed);
    size_.store(std::min(pushed, capacity()), std::memory_order_relaxed);
    next_size_.store(0, std::memory_order_relaxed);
    cur_ = 1 - cur_;
  }

 private:
  void init(std::span<const graph::Edge> edges);

  std::vector<graph::Edge> buffers_[2];
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> next_size_{0};
  std::atomic<bool> overflow_{false};
  int cur_ = 0;
};

}  // namespace ecl::device

#endif  // ECL_DEVICE_WORKLIST_HPP
