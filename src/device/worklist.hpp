#ifndef ECL_DEVICE_WORKLIST_HPP
#define ECL_DEVICE_WORKLIST_HPP

// Double-buffered edge worklist (§3.3).
//
// ECL-SCC's Phase 3 never materializes a smaller graph; it appends the
// surviving edges to a second worklist via an atomic cursor and then swaps
// the two buffer pointers. This class is that data structure.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace ecl::device {

class EdgeWorklist {
 public:
  EdgeWorklist() = default;

  /// Fills the current buffer with every edge of g; the spare buffer gets
  /// the same capacity so Phase 3 can never overflow it (it only shrinks).
  explicit EdgeWorklist(const graph::Digraph& g);

  /// Initializes from an explicit edge set.
  explicit EdgeWorklist(std::span<const graph::Edge> edges);

  /// Edges in the current buffer.
  std::span<const graph::Edge> edges() const noexcept {
    return {buffers_[cur_].data(), size_.load(std::memory_order_acquire)};
  }

  std::size_t size() const noexcept { return size_.load(std::memory_order_acquire); }
  bool empty() const noexcept { return size() == 0; }

  /// Thread-safe append into the *next* buffer (Phase-3 survivors).
  void push_next(graph::Edge e) noexcept {
    const std::size_t slot = next_size_.fetch_add(1, std::memory_order_relaxed);
    buffers_[1 - cur_][slot] = e;
  }

  /// Number of edges appended to the next buffer so far.
  std::size_t next_size() const noexcept { return next_size_.load(std::memory_order_acquire); }

  /// Pointer swap: the next buffer becomes current; the old current buffer
  /// becomes the (logically empty) next buffer. Not thread-safe; call at a
  /// grid barrier only.
  void swap_buffers() noexcept {
    size_.store(next_size_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    next_size_.store(0, std::memory_order_relaxed);
    cur_ = 1 - cur_;
  }

 private:
  void init(std::span<const graph::Edge> edges);

  std::vector<graph::Edge> buffers_[2];
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> next_size_{0};
  int cur_ = 0;
};

}  // namespace ecl::device

#endif  // ECL_DEVICE_WORKLIST_HPP
