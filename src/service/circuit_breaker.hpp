#ifndef ECL_SERVICE_CIRCUIT_BREAKER_HPP
#define ECL_SERVICE_CIRCUIT_BREAKER_HPP

// Per-backend circuit breaker (closed / open / half-open).
//
// A chaos-degraded backend that stalls every run would otherwise keep
// burning request deadlines: each attempt costs its full watchdog budget
// before failing. The breaker watches a sliding window of outcomes; when
// the failure rate crosses the threshold it opens and the backend stops
// receiving traffic. After a cool-down one probe request is let through
// (half-open): success closes the breaker, failure re-opens it. All
// methods take an explicit time point so unit tests are deterministic;
// production callers pass ServiceClock::now().

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ecl::service {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

struct CircuitBreakerConfig {
  std::size_t window = 16;           ///< outcomes kept in the sliding window
  std::size_t min_samples = 4;       ///< outcomes required before tripping
  double failure_threshold = 0.5;    ///< failure rate in the window that opens
  double cooldown_seconds = 0.25;    ///< open duration before a half-open probe
  std::size_t half_open_probes = 1;  ///< probes admitted while half-open
};

/// Thread-safe; one instance per backend.
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  /// True when a request may be routed to this backend right now. An open
  /// breaker whose cool-down has elapsed transitions to half-open and
  /// admits up to half_open_probes callers.
  bool allow(Clock::time_point now = Clock::now());

  /// Outcome feedback from a routed request.
  void record_success(Clock::time_point now = Clock::now());
  void record_failure(Clock::time_point now = Clock::now());

  /// Current state (after applying any due cool-down transition).
  BreakerState state(Clock::time_point now = Clock::now()) const;

  /// Times the breaker transitioned closed/half-open -> open.
  std::uint64_t opens() const;

  const CircuitBreakerConfig& config() const noexcept { return config_; }

 private:
  /// Applies the open -> half-open cool-down transition; callers hold mutex_.
  void refresh_locked(Clock::time_point now) const;

  CircuitBreakerConfig config_;
  mutable std::mutex mutex_;
  mutable BreakerState state_ = BreakerState::kClosed;
  mutable std::size_t probes_issued_ = 0;  ///< half-open probes admitted so far
  Clock::time_point opened_at_{};
  std::vector<bool> window_;  ///< ring of outcomes, true = failure
  std::size_t window_pos_ = 0;
  std::size_t window_count_ = 0;
  std::size_t window_failures_ = 0;
  std::uint64_t opens_ = 0;
};

}  // namespace ecl::service

#endif  // ECL_SERVICE_CIRCUIT_BREAKER_HPP
