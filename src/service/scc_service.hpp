#ifndef ECL_SERVICE_SCC_SERVICE_HPP
#define ECL_SERVICE_SCC_SERVICE_HPP

// SccService: a deadline-aware request pipeline over the SCC stack.
//
// The service owns a DynamicScc-backed graph, a worker pool, and a bounded
// admission queue, and serves concurrent requests (full labelings,
// condensations, same-SCC reachability, update batches) with explicit
// robustness machinery at every stage:
//
//  * admission control — the bounded queue sheds load with a structured
//    rejection (queue-full / shutting-down) instead of queueing without
//    bound (admission_queue.hpp);
//  * deadline propagation — each request's wall-clock deadline is plumbed
//    into the solver watchdog via scc::run_with_deadline, so an ECL-SCC run
//    is cancelled mid-fixpoint the moment its request expires. A kOk
//    response is never delivered after its deadline — the pipeline
//    re-checks at finalization and demotes late answers to
//    kDeadlineExceeded;
//  * retry with exponential backoff + jitter — a failed fresh compute walks
//    the backend chain (default ecl -> ecl-omp -> tarjan), pacing retries
//    with seeded-deterministic jitter (backoff.hpp);
//  * online result certification — every fresh or serial labeling passes
//    the O(V+E) certificate (core/verify.hpp certify_scc) before it is
//    served or cached; a labeling that fails is treated as a
//    kCertificationFailed backend fault and the retry chain continues.
//    Uncertified results are never served (DESIGN.md §12). The graph's
//    reverse adjacency — labeling-independent — is cached per epoch, so
//    every certification after the first shares one build;
//  * health-scored backend quarantine — SccError / timeout / certification
//    outcomes feed a weighted sliding window per backend
//    (health_registry.hpp); a degraded backend is quarantined and stops
//    receiving traffic until a probation probe proves it healthy. The
//    legacy breaker_states() view maps onto the registry;
//  * tiered graceful degradation — when the fresh tier is shed (overload),
//    exhausted, or breaker-blocked, the ladder serves an epoch-stamped
//    stale snapshot if it is within the request's staleness_budget, then a
//    direct serial-Tarjan recompute (exact but slower, bypassing breakers),
//    and only then rejects with a taxonomy'd ServiceStatus.
//
// Every response carries a ServedBy trace (backend, tier, attempts, queue
// wait, compute time, staleness epoch delta), so degradation is observable
// rather than silent.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "device/device.hpp"
#include "dynamic/dynamic_scc.hpp"
#include "fleet/device_pool.hpp"
#include "fleet/graph_router.hpp"
#include "service/admission_queue.hpp"
#include "service/backoff.hpp"
#include "service/circuit_breaker.hpp"
#include "service/health_registry.hpp"
#include "service/service_types.hpp"

namespace ecl::service {

struct ServiceConfig {
  /// Worker threads consuming the admission queue.
  unsigned workers = 4;
  /// Admission-queue capacity; requests beyond it are shed.
  std::size_t queue_capacity = 64;
  /// Queue occupancy (fraction of capacity) beyond which the fresh-compute
  /// tier is skipped for query requests — under overload a cheap degraded
  /// answer keeps the queue draining.
  double overload_fraction = 0.75;
  /// Fresh-compute backend chain, tried in order (registry names).
  std::vector<std::string> backends = {"ecl-a100", "ecl-omp", "tarjan"};
  /// Total fresh attempts per request across the chain.
  std::size_t max_attempts = 4;
  /// Fraction of the remaining deadline granted to one fresh attempt, so a
  /// stalled backend cannot burn the whole budget and starve the ladder's
  /// later tiers.
  double attempt_deadline_fraction = 0.5;
  BackoffPolicy backoff;
  /// Window / threshold / cool-down tuning for the health registry. Kept
  /// under the breaker name (and vocabulary) so existing configurations
  /// carry over; `health` below adds the taxonomy weights on top.
  CircuitBreakerConfig breaker;
  /// Taxonomy weights + quarantine escalation for the health registry. Its
  /// embedded breaker config is overridden by `breaker` above.
  HealthConfig health;
  bool enable_breakers = true;
  /// Online certification of fresh/serial labelings before they are served
  /// (certify_scc). Disable only in benchmarks measuring its overhead.
  bool enable_certification = true;
  bool enable_degradation = true;
  /// Seed for retry jitter (decorrelated per request, reproducible).
  std::uint64_t seed = 0x5e11ce;
  /// Device profile for the per-worker virtual devices; carry a FaultPlan
  /// here to chaos-degrade the device-backed backends.
  device::DeviceProfile device_profile = device::a100_profile();
  /// Host threads per worker device (kept small: the service already runs
  /// `workers` concurrent requests).
  unsigned device_workers = 2;

  // ---- Fleet mode (DESIGN.md §13) ----------------------------------------
  /// Pooled devices shared by all workers (0 = legacy topology: each worker
  /// owns a private device). In pool mode the GraphRouter leases the
  /// least-loaded healthy device per request, and the pool's own health
  /// registry quarantines misbehaving devices INDIVIDUALLY — the backend
  /// registry above keeps scoring algorithms, the pool registry scores
  /// hardware.
  unsigned pool_devices = 0;
  /// Aggregate host-thread budget across ALL pooled devices, divided evenly
  /// per device with a floor of 1 (0 = hardware concurrency). This is the
  /// cap that keeps an N-device pool from oversubscribing the host N-fold.
  unsigned pool_thread_budget = 0;
  /// Shard count for fresh kSccLabels computes in pool mode: > 1 routes the
  /// fixpoint through fleet::sharded_scc across the pool's devices (capacity
  /// mode); 1 keeps whole-graph placement (throughput mode).
  unsigned shards = 1;
  /// Per-device chaos plans for the pool, indexed by device.
  std::vector<device::FaultPlan> pool_fault_plans;

  /// Engine knobs for the owned DynamicScc.
  dynamic::DynamicOptions dynamic;
};

/// Monotonic counters (cheap, racy-read snapshot).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t served_fresh = 0;
  std::uint64_t served_stale = 0;
  std::uint64_t served_serial = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t invalid = 0;
  std::uint64_t fresh_attempts = 0;
  std::uint64_t backend_failures = 0;
  std::uint64_t breaker_skips = 0;
  std::uint64_t overload_sheds = 0;
};

/// Self-healing counters (DESIGN.md §12), aggregated across all requests
/// and workers: solver checkpoint/replay work, certifier activity, and
/// quarantine lifecycle transitions from the health registry.
struct RecoveryStats {
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t resumes = 0;
  std::uint64_t rounds_replayed = 0;
  std::uint64_t certifications = 0;          ///< certificate checks run
  std::uint64_t certification_failures = 0;  ///< results rejected by the certifier
  double certify_seconds = 0.0;              ///< total wall-clock spent certifying
  std::uint64_t quarantines = 0;             ///< backends quarantined
  std::uint64_t probations = 0;              ///< quarantine -> probation transitions
  std::uint64_t readmissions = 0;            ///< probation -> healthy transitions
  // Fleet self-healing (DESIGN.md §14), from sharded runs.
  std::uint64_t failovers = 0;               ///< device ejections survived by failover
  std::uint64_t shards_rehomed = 0;          ///< shards migrated off ejected devices
  std::uint64_t stragglers_flagged = 0;      ///< over-budget shard sweeps observed
  std::uint64_t straggler_migrations = 0;    ///< shards preemptively migrated off slow devices
  // High-diameter levers (DESIGN.md §15), aggregated across fresh computes.
  std::uint64_t chains_collapsed = 0;        ///< chain chases that moved a signature
  std::uint64_t chain_steps = 0;             ///< total signature moves inside chases
  std::uint64_t max_chain_len = 0;           ///< longest single chase observed
  std::uint64_t hashbag_rounds = 0;          ///< Phase-2 rounds run off the sparse bag
};

class SccService {
 public:
  explicit SccService(const Digraph& g, ServiceConfig config = {});
  ~SccService();

  SccService(const SccService&) = delete;
  SccService& operator=(const SccService&) = delete;

  /// Asynchronous entry point. Admission happens inline: a shed request's
  /// future is already resolved with the structured rejection.
  std::future<Response> submit(Request request);

  /// Synchronous convenience: submit + wait.
  Response call(Request request);

  /// Stops admission, drains queued work, joins the workers. Idempotent;
  /// also run by the destructor.
  void shutdown();

  const ServiceConfig& config() const noexcept { return config_; }
  ServiceStats stats() const;
  std::size_t queue_depth() const { return queue_->size(); }

  /// Breaker state per backend (observability; order matches
  /// config().backends). A legacy view of the health registry: healthy ->
  /// closed, quarantined -> open, probation -> half-open.
  std::vector<std::pair<std::string, BreakerState>> breaker_states() const;

  /// Full health-registry view per backend (scores, fault taxonomy counts,
  /// quarantine lifecycle counters).
  std::vector<BackendHealthSnapshot> backend_health() const;

  /// Aggregated self-healing counters (checkpoints, resumes, certifier
  /// activity, quarantine transitions).
  RecoveryStats recovery_stats() const;

  /// Aggregated launch statistics of all per-worker devices, including the
  /// per-block edge-work histogram and the weighted imbalance metric
  /// (DESIGN.md §11). Workers fold their device's stats in as they exit, so
  /// the full picture is available after shutdown(); mid-run it covers only
  /// already-exited workers. In pool mode this is the pool-wide aggregate,
  /// live at any time.
  device::LaunchStats device_stats() const;

  /// Fleet observability: true when the service runs on a shared DevicePool.
  bool pool_mode() const noexcept { return pool_ != nullptr; }
  /// The pool / router (null outside pool mode; test and tool access).
  fleet::DevicePool* device_pool() noexcept { return pool_.get(); }
  fleet::GraphRouter* router() noexcept { return router_.get(); }
  /// Per-device launch statistics (name, stats), index-aligned with the
  /// pool; empty outside pool mode. Snapshot is taken under each device's
  /// guard, so it is safe against in-flight launches.
  std::vector<std::pair<std::string, device::LaunchStats>> pool_device_stats() const;

  /// The owned engine (test/tool access; the service stays in charge of
  /// writes — use update_batch requests to mutate).
  dynamic::DynamicScc& engine() noexcept { return *engine_; }
  const dynamic::DynamicScc& engine() const noexcept { return *engine_; }

 private:
  struct Pending {
    Request request;
    std::promise<Response> promise;
    ServiceClock::time_point enqueued_at{};
    std::uint64_t id = 0;
  };

  struct AtomicStats {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> rejected_queue_full{0};
    std::atomic<std::uint64_t> rejected_shutdown{0};
    std::atomic<std::uint64_t> served_fresh{0};
    std::atomic<std::uint64_t> served_stale{0};
    std::atomic<std::uint64_t> served_serial{0};
    std::atomic<std::uint64_t> deadline_exceeded{0};
    std::atomic<std::uint64_t> unavailable{0};
    std::atomic<std::uint64_t> invalid{0};
    std::atomic<std::uint64_t> fresh_attempts{0};
    std::atomic<std::uint64_t> backend_failures{0};
    std::atomic<std::uint64_t> breaker_skips{0};
    std::atomic<std::uint64_t> overload_sheds{0};
    std::atomic<std::uint64_t> checkpoints_taken{0};
    std::atomic<std::uint64_t> resumes{0};
    std::atomic<std::uint64_t> rounds_replayed{0};
    std::atomic<std::uint64_t> certifications{0};
    std::atomic<std::uint64_t> certification_failures{0};
    std::atomic<std::uint64_t> certify_micros{0};  ///< certifier wall-clock, microseconds
    std::atomic<std::uint64_t> failovers{0};
    std::atomic<std::uint64_t> shards_rehomed{0};
    std::atomic<std::uint64_t> stragglers_flagged{0};
    std::atomic<std::uint64_t> straggler_migrations{0};
    std::atomic<std::uint64_t> chains_collapsed{0};
    std::atomic<std::uint64_t> chain_steps{0};
    std::atomic<std::uint64_t> max_chain_len{0};
    std::atomic<std::uint64_t> hashbag_rounds{0};
  };

  /// Sentinel for "not a pool device" (legacy per-worker topology).
  static constexpr std::size_t kNoPoolDevice = static_cast<std::size_t>(-1);

  void worker_loop();
  /// Accumulates the §15 high-diameter lever counters of one solver attempt
  /// (chases, hash-bag rounds) into the service-wide stats.
  void fold_highdiameter_stats(const scc::SccMetrics& metrics);
  Response process(Pending& pending, device::Device& dev, std::size_t pool_index);
  void serve_labels(Pending& pending, device::Device& dev, std::size_t pool_index,
                    Response& response);
  void serve_condensation(Response& response);
  void serve_reachability(Pending& pending, Response& response);
  void serve_update_batch(Pending& pending, Response& response);
  /// Fresh tier: backend chain with breakers + retry/backoff. True when a
  /// fresh answer was produced into `response`. `pool_index` names the
  /// leased pool device (kNoPoolDevice outside pool mode) so device-backed
  /// attempt outcomes also feed the pool's per-device health registry.
  bool try_fresh(Pending& pending, device::Device& dev, std::size_t pool_index,
                 Response& response);
  /// Capacity-mode fresh tier: the sharded fixpoint across the whole pool
  /// (config.shards > 1). Takes every device guard for the run's duration.
  bool try_sharded(Pending& pending, Response& response);
  /// Stamps completed_at, enforces the deadline invariant, bumps counters.
  void finalize(const Request& request, Response& response);

  std::shared_ptr<const dynamic::LabelSnapshot> cached_snapshot() const;
  void store_cached_snapshot(std::shared_ptr<const dynamic::LabelSnapshot> snap);
  /// Epoch-cached CSR materialization of the engine's current edge set.
  std::pair<std::shared_ptr<const Digraph>, std::uint64_t> current_graph();
  double remaining_seconds(const Request& request) const;

  /// Runs the certificate on a fresh/serial labeling (when enabled),
  /// recording outcome + cost into the trace and counters. True when the
  /// labeling may be served. `epoch` keys the reverse-adjacency cache.
  bool certify_for_serving(const Digraph& g, std::uint64_t epoch, const scc::SccResult& result,
                           ServedBy& sb);
  /// Epoch-cached g.reverse() for the certifier: the reverse adjacency
  /// depends only on the graph, so every certification of the same epoch
  /// shares one build (the certifier's steady-state per-request cost drops
  /// by an O(V+E) pass).
  std::shared_ptr<const Digraph> epoch_reverse(const Digraph& g, std::uint64_t epoch);

  ServiceConfig config_;
  std::unique_ptr<dynamic::DynamicScc> engine_;
  std::unique_ptr<AdmissionQueue<std::unique_ptr<Pending>>> queue_;
  std::unique_ptr<BackendHealthRegistry> health_;  // entries parallel config_.backends
  std::unique_ptr<fleet::DevicePool> pool_;        // pool mode only
  std::unique_ptr<fleet::GraphRouter> router_;     // pool mode only
  std::vector<std::thread> workers_;
  std::size_t overload_threshold_ = 0;

  mutable std::mutex cache_mutex_;
  std::shared_ptr<const dynamic::LabelSnapshot> cached_snapshot_;
  std::shared_ptr<const Digraph> graph_cache_;
  std::uint64_t graph_cache_epoch_ = 0;
  std::shared_ptr<const Digraph> reverse_cache_;  // certifier hint, keyed like graph_cache_
  std::uint64_t reverse_cache_epoch_ = 0;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<bool> stopped_{false};
  std::mutex shutdown_mutex_;
  AtomicStats stats_;

  mutable std::mutex device_stats_mutex_;
  device::LaunchStats device_stats_;  // guarded by device_stats_mutex_
};

}  // namespace ecl::service

#endif  // ECL_SERVICE_SCC_SERVICE_HPP
