#ifndef ECL_SERVICE_HEALTH_REGISTRY_HPP
#define ECL_SERVICE_HEALTH_REGISTRY_HPP

// Health-scored backend quarantine (DESIGN.md §12).
//
// Generalizes the per-backend circuit breaker: instead of a boolean
// failure-rate window, each backend accumulates a sliding window of
// WEIGHTED outcomes drawn from the structured fault taxonomy (stall,
// overflow, certification failure, deadline, exception). When the weighted
// score crosses the threshold the backend is quarantined — it stops
// receiving traffic — and is re-admitted through a bounded probation:
// after a cool-down (escalating for repeat offenders) a limited number of
// probe requests are let through; a certified success restores the backend
// to healthy, a fault re-quarantines it with a longer cool-down.
//
// Weighting is what the taxonomy buys over the plain breaker: a
// certification failure means the backend returned a WRONG answer that
// claimed to be right — silent corruption — and is scored heavier than a
// stall, which is loud, self-reported, and often transient.
//
// State mapping onto the legacy breaker vocabulary (kept for observability
// compatibility): healthy -> kClosed, quarantined -> kOpen,
// probation -> kHalfOpen. With all weights at 1.0 the trip condition
// degenerates to the CircuitBreaker failure-rate rule, so existing breaker
// tuning (CircuitBreakerConfig) carries over unchanged.
//
// All methods take an explicit time point so unit tests are deterministic;
// production callers pass ServiceClock::now().

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "service/circuit_breaker.hpp"

namespace ecl::service {

/// Structured fault taxonomy the health score is computed over.
enum class FaultKind : std::uint8_t {
  kNone = 0,        ///< success (certified, on time)
  kStall,           ///< watchdog: fixpoint made no progress
  kOverflow,        ///< worklist overflow
  kCertification,   ///< result failed the online certificate (silent corruption)
  kDeadline,        ///< attempt deadline expired
  kException,       ///< backend threw
  kOther,           ///< remaining SccStatus codes (guard, verify, ...)
  kStraggler,       ///< fleet coordinator: sweeps persistently slower than
                    ///< the shard median (suspect hardware, not yet faulty)
};
inline constexpr std::size_t kNumFaultKinds = 8;

const char* fault_kind_name(FaultKind kind);

/// Maps a structured solver error onto the taxonomy.
FaultKind fault_kind_from_status(scc::SccStatus status);

struct HealthConfig {
  /// Window size, minimum samples, trip threshold, cool-down, and probe
  /// count reuse the breaker vocabulary 1:1 (see the mapping note above).
  CircuitBreakerConfig breaker;
  /// Per-fault-kind weights (indexed by FaultKind; kNone is ignored). A
  /// weight of 2.0 makes one such fault count as two plain failures.
  double weights[kNumFaultKinds] = {
      0.0,  // kNone
      1.0,  // kStall
      1.0,  // kOverflow
      2.0,  // kCertification: wrong answers outweigh loud failures
      1.0,  // kDeadline
      1.0,  // kException
      1.0,  // kOther
      0.5,  // kStraggler: slow is suspicious, not yet wrong or stuck
  };
  /// Every consecutive re-quarantine multiplies the backend's cool-down by
  /// this factor (a flapping backend earns longer time-outs), capped below.
  double quarantine_backoff = 2.0;
  double max_cooldown_seconds = 4.0;
};

enum class BackendHealth : std::uint8_t { kHealthy = 0, kQuarantined, kProbation };

const char* backend_health_name(BackendHealth health);

/// Point-in-time view of one backend's health (observability).
struct BackendHealthSnapshot {
  std::string name;
  BackendHealth health = BackendHealth::kHealthy;
  double score = 0.0;       ///< weighted fault score over the current window
  std::size_t samples = 0;  ///< outcomes currently in the window
  std::uint64_t quarantines = 0;       ///< healthy/probation -> quarantined transitions
  std::uint64_t probations = 0;        ///< quarantined -> probation transitions
  std::uint64_t readmissions = 0;      ///< probation -> healthy transitions
  std::uint64_t faults[kNumFaultKinds] = {};  ///< lifetime outcome counts by kind
};

/// Thread-safe registry of backend health; one entry per configured backend,
/// indexed in the order the backend list was given.
class BackendHealthRegistry {
 public:
  using Clock = std::chrono::steady_clock;

  BackendHealthRegistry(std::vector<std::string> backends, HealthConfig config = {});

  std::size_t size() const noexcept { return entries_.size(); }

  /// True when a request may be routed to this backend right now. A
  /// quarantined backend whose cool-down has elapsed transitions to
  /// probation and admits up to half_open_probes callers.
  bool allow(std::size_t backend, Clock::time_point now = Clock::now());

  /// Outcome feedback from a routed request. kNone is a success; anything
  /// else contributes its taxonomy weight to the backend's window score.
  void record(std::size_t backend, FaultKind kind, Clock::time_point now = Clock::now());

  BackendHealth health(std::size_t backend, Clock::time_point now = Clock::now()) const;

  /// Legacy breaker-state view (healthy -> closed, quarantined -> open,
  /// probation -> half-open), so existing observability keeps working.
  BreakerState breaker_state(std::size_t backend, Clock::time_point now = Clock::now()) const;

  std::vector<BackendHealthSnapshot> snapshot(Clock::time_point now = Clock::now()) const;

  /// Aggregate transition counters across all backends.
  std::uint64_t quarantines() const;
  std::uint64_t probations() const;
  std::uint64_t readmissions() const;

  const HealthConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    std::string name;
    mutable std::mutex mutex;
    mutable BackendHealth health = BackendHealth::kHealthy;
    mutable std::size_t probes_issued = 0;  ///< probation probes admitted so far
    Clock::time_point quarantined_at{};
    unsigned consecutive_quarantines = 0;  ///< cool-down escalation level
    std::vector<double> window;            ///< ring of outcome weights
    std::size_t window_pos = 0;
    std::size_t window_count = 0;
    double window_score = 0.0;
    std::uint64_t quarantines = 0;
    mutable std::uint64_t probations = 0;
    std::uint64_t readmissions = 0;
    std::uint64_t faults[kNumFaultKinds] = {};
  };

  double cooldown_seconds(const Entry& e) const;
  /// Applies the quarantined -> probation cool-down transition; callers
  /// hold e.mutex.
  void refresh_locked(const Entry& e, Clock::time_point now) const;

  HealthConfig config_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace ecl::service

#endif  // ECL_SERVICE_HEALTH_REGISTRY_HPP
