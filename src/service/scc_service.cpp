#include "service/scc_service.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/registry.hpp"
#include "core/verify.hpp"
#include "fleet/sharded_scc.hpp"
#include "support/timer.hpp"

namespace ecl::service {
namespace {

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

std::shared_ptr<const dynamic::LabelSnapshot> snapshot_from_result(std::uint64_t epoch,
                                                                   const scc::SccResult& result) {
  auto snap = std::make_shared<dynamic::LabelSnapshot>();
  snap->epoch = epoch;
  snap->num_components = result.num_components;
  snap->labels = result.labels;
  return snap;
}

}  // namespace

SccService::SccService(const Digraph& g, ServiceConfig config) : config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.backends.empty()) config_.backends = {"tarjan"};
  engine_ = std::make_unique<dynamic::DynamicScc>(g, config_.dynamic);
  queue_ = std::make_unique<AdmissionQueue<std::unique_ptr<Pending>>>(config_.queue_capacity);
  overload_threshold_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.overload_fraction *
                                  static_cast<double>(config_.queue_capacity)));
  // The health registry's window/threshold/cool-down tuning comes from the
  // legacy breaker field so existing configurations keep their semantics.
  HealthConfig health_config = config_.health;
  health_config.breaker = config_.breaker;
  health_ = std::make_unique<BackendHealthRegistry>(config_.backends, health_config);
  if (config_.pool_devices > 0) {
    // Fleet mode: one shared pool instead of a device per worker. The pool
    // gets the same merged health tuning, so device quarantine behaves like
    // backend quarantine.
    fleet::DevicePoolConfig pool_config;
    pool_config.devices = config_.pool_devices;
    pool_config.profile = config_.device_profile;
    pool_config.thread_budget = config_.pool_thread_budget;
    pool_config.fault_plans = config_.pool_fault_plans;
    pool_config.health = health_config;
    pool_ = std::make_unique<fleet::DevicePool>(std::move(pool_config));
    router_ = std::make_unique<fleet::GraphRouter>(*pool_);
  }
  cached_snapshot_ = engine_->snapshot();  // epoch-0 answer for the stale tier
  workers_.reserve(config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

SccService::~SccService() { shutdown(); }

void SccService::shutdown() {
  std::lock_guard lock(shutdown_mutex_);
  if (stopped_.exchange(true)) return;
  queue_->shutdown();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

std::future<Response> SccService::submit(Request request) {
  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->enqueued_at = ServiceClock::now();
  pending->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::future<Response> future = pending->promise.get_future();
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);

  // try_push only consumes the item when it is accepted; on rejection we
  // still own it and resolve the future inline with the structured outcome.
  const AdmitResult admit = queue_->try_push(std::move(pending));
  if (admit != AdmitResult::kAccepted) {
    Response response;
    if (admit == AdmitResult::kQueueFull) {
      response.status = ServiceStatus::kRejectedQueueFull;
      response.message = "admission queue at capacity";
      stats_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
    } else {
      response.status = ServiceStatus::kRejectedShuttingDown;
      response.message = "service is shutting down";
      stats_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    }
    response.completed_at = ServiceClock::now();
    pending->promise.set_value(std::move(response));
  }
  return future;
}

Response SccService::call(Request request) { return submit(std::move(request)).get(); }

ServiceStats SccService::stats() const {
  ServiceStats s;
  s.submitted = stats_.submitted.load(std::memory_order_relaxed);
  s.rejected_queue_full = stats_.rejected_queue_full.load(std::memory_order_relaxed);
  s.rejected_shutdown = stats_.rejected_shutdown.load(std::memory_order_relaxed);
  s.served_fresh = stats_.served_fresh.load(std::memory_order_relaxed);
  s.served_stale = stats_.served_stale.load(std::memory_order_relaxed);
  s.served_serial = stats_.served_serial.load(std::memory_order_relaxed);
  s.deadline_exceeded = stats_.deadline_exceeded.load(std::memory_order_relaxed);
  s.unavailable = stats_.unavailable.load(std::memory_order_relaxed);
  s.invalid = stats_.invalid.load(std::memory_order_relaxed);
  s.fresh_attempts = stats_.fresh_attempts.load(std::memory_order_relaxed);
  s.backend_failures = stats_.backend_failures.load(std::memory_order_relaxed);
  s.breaker_skips = stats_.breaker_skips.load(std::memory_order_relaxed);
  s.overload_sheds = stats_.overload_sheds.load(std::memory_order_relaxed);
  return s;
}

std::vector<std::pair<std::string, BreakerState>> SccService::breaker_states() const {
  std::vector<std::pair<std::string, BreakerState>> states;
  states.reserve(config_.backends.size());
  for (std::size_t i = 0; i < config_.backends.size(); ++i)
    states.emplace_back(config_.backends[i], health_->breaker_state(i));
  return states;
}

std::vector<BackendHealthSnapshot> SccService::backend_health() const {
  return health_->snapshot();
}

RecoveryStats SccService::recovery_stats() const {
  RecoveryStats r;
  r.checkpoints_taken = stats_.checkpoints_taken.load(std::memory_order_relaxed);
  r.resumes = stats_.resumes.load(std::memory_order_relaxed);
  r.rounds_replayed = stats_.rounds_replayed.load(std::memory_order_relaxed);
  r.certifications = stats_.certifications.load(std::memory_order_relaxed);
  r.certification_failures = stats_.certification_failures.load(std::memory_order_relaxed);
  r.certify_seconds =
      static_cast<double>(stats_.certify_micros.load(std::memory_order_relaxed)) * 1e-6;
  r.quarantines = health_->quarantines();
  r.probations = health_->probations();
  r.readmissions = health_->readmissions();
  r.failovers = stats_.failovers.load(std::memory_order_relaxed);
  r.shards_rehomed = stats_.shards_rehomed.load(std::memory_order_relaxed);
  r.stragglers_flagged = stats_.stragglers_flagged.load(std::memory_order_relaxed);
  r.straggler_migrations = stats_.straggler_migrations.load(std::memory_order_relaxed);
  r.chains_collapsed = stats_.chains_collapsed.load(std::memory_order_relaxed);
  r.chain_steps = stats_.chain_steps.load(std::memory_order_relaxed);
  r.max_chain_len = stats_.max_chain_len.load(std::memory_order_relaxed);
  r.hashbag_rounds = stats_.hashbag_rounds.load(std::memory_order_relaxed);
  return r;
}

void SccService::fold_highdiameter_stats(const scc::SccMetrics& metrics) {
  stats_.chains_collapsed.fetch_add(metrics.chains_collapsed, std::memory_order_relaxed);
  stats_.chain_steps.fetch_add(metrics.chain_steps, std::memory_order_relaxed);
  stats_.hashbag_rounds.fetch_add(metrics.hashbag_rounds, std::memory_order_relaxed);
  // Monotone max via CAS: concurrent workers may fold at once.
  std::uint64_t seen = stats_.max_chain_len.load(std::memory_order_relaxed);
  while (metrics.max_chain_len > seen &&
         !stats_.max_chain_len.compare_exchange_weak(seen, metrics.max_chain_len,
                                                     std::memory_order_relaxed)) {
  }
}

void SccService::worker_loop() {
  // Legacy topology: each worker owns its own virtual device (launch is not
  // re-entrant across threads, and a per-worker device also gives every
  // worker the same chaos plan independently). Pool mode replaces this with
  // router-leased shared devices.
  std::optional<device::Device> own;
  if (!pool_) own.emplace(config_.device_profile, config_.device_workers);
  while (auto item = queue_->pop()) {
    Pending& pending = **item;
    Response response;
    if (pool_) {
      // Whole-request placement: the router picks the least-loaded healthy
      // device, weighting label computes by graph size and point queries as
      // unit work. The lease's RAII release keeps the load ledger honest
      // even when processing throws.
      const std::uint64_t estimate = pending.request.kind == RequestKind::kSccLabels
                                         ? std::max<std::uint64_t>(1, engine_->num_vertices())
                                         : 1;
      fleet::GraphRouter::Lease lease = router_->place(estimate);
      response = process(pending, pool_->at(lease.device_index()), lease.device_index());
    } else {
      response = process(pending, *own, kNoPoolDevice);
    }
    pending.promise.set_value(std::move(response));
  }
  if (!own) return;  // pool devices outlive workers; stats stay live
  // Fold this worker's device launch statistics (including the per-block
  // edge-work histogram, DESIGN.md §11) into the service-wide aggregate so
  // tools can report scheduling imbalance after shutdown.
  std::lock_guard lock(device_stats_mutex_);
  const device::LaunchStats& s = own->stats();
  fleet::merge_launch_stats(device_stats_, s);
}

device::LaunchStats SccService::device_stats() const {
  device::LaunchStats total;
  {
    std::lock_guard lock(device_stats_mutex_);
    total = device_stats_;
  }
  if (pool_) {
    // Each device's stats are read under its guard so an in-flight launch
    // on another worker cannot race the snapshot.
    for (std::size_t i = 0; i < pool_->size(); ++i) {
      const auto guard = pool_->acquire(i);
      fleet::merge_launch_stats(total, pool_->at(i).stats());
    }
  }
  return total;
}

std::vector<std::pair<std::string, device::LaunchStats>> SccService::pool_device_stats() const {
  std::vector<std::pair<std::string, device::LaunchStats>> per_device;
  if (!pool_) return per_device;
  per_device.reserve(pool_->size());
  for (std::size_t i = 0; i < pool_->size(); ++i) {
    const auto guard = pool_->acquire(i);
    per_device.emplace_back(pool_->names()[i], pool_->at(i).stats());
  }
  return per_device;
}

Response SccService::process(Pending& pending, device::Device& dev, std::size_t pool_index) {
  Response response;
  response.served_by.queue_seconds =
      std::chrono::duration<double>(ServiceClock::now() - pending.enqueued_at).count();

  const Request& request = pending.request;
  if (request.has_deadline() && ServiceClock::now() >= request.deadline) {
    response.status = ServiceStatus::kDeadlineExceeded;
    response.message = "deadline expired while queued";
    finalize(request, response);
    return response;
  }

  Timer compute;
  try {
    switch (request.kind) {
      case RequestKind::kSccLabels: serve_labels(pending, dev, pool_index, response); break;
      case RequestKind::kCondensation: serve_condensation(response); break;
      case RequestKind::kReachabilityQuery: serve_reachability(pending, response); break;
      case RequestKind::kUpdateBatch: serve_update_batch(pending, response); break;
    }
  } catch (const std::out_of_range& e) {
    response.status = ServiceStatus::kInvalidRequest;
    response.message = e.what();
  } catch (const std::exception& e) {
    response.status = ServiceStatus::kUnavailable;
    response.message = e.what();
  }
  response.served_by.compute_seconds = compute.seconds();
  finalize(request, response);
  return response;
}

void SccService::serve_labels(Pending& pending, device::Device& dev, std::size_t pool_index,
                              Response& response) {
  const Request& request = pending.request;
  ServedBy& sb = response.served_by;

  const bool overloaded = queue_->size() >= overload_threshold_;
  if (overloaded) stats_.overload_sheds.fetch_add(1, std::memory_order_relaxed);

  // Capacity mode first: shards > 1 spreads the fixpoint across the whole
  // pool. A failed sharded attempt falls through to the per-device backend
  // chain, then the degradation ladder — the tiers compose.
  if (!overloaded && pool_ && config_.shards > 1 && try_sharded(pending, response)) return;
  if (!overloaded && try_fresh(pending, dev, pool_index, response)) return;

  const bool expired = request.has_deadline() && ServiceClock::now() >= request.deadline;
  if (!config_.enable_degradation) {
    response.status =
        expired ? ServiceStatus::kDeadlineExceeded : ServiceStatus::kUnavailable;
    response.message = "fresh compute failed and degradation is disabled";
    return;
  }

  // Tier 2: epoch-stamped stale snapshot, if the client's budget covers it.
  if (!expired) {
    auto snap = cached_snapshot();
    const std::uint64_t current = engine_->epoch();
    const std::uint64_t delta = current - std::min(current, snap->epoch);
    if (delta <= request.staleness_budget) {
      response.labels = snap;
      response.num_components = snap->num_components;
      sb.tier = Tier::kStaleSnapshot;
      sb.backend = "snapshot";
      sb.epoch = snap->epoch;
      sb.staleness_epochs = delta;
      // Snapshots are only cached from certified results (or the engine's
      // own maintained labeling), so this answer inherits certification.
      sb.certified = true;
      response.status = ServiceStatus::kOk;
      return;
    }
  }

  // Tier 3: exact serial recompute, bypassing breakers (Tarjan needs no
  // device and cannot stall; it is only "degraded" in the latency sense).
  // Its labeling still passes the certificate before it is served — the
  // no-uncertified-results invariant has no exceptions.
  if (!(request.has_deadline() && ServiceClock::now() >= request.deadline)) {
    auto [g, epoch] = engine_->graph_with_epoch();
    const scc::SccResult serial = request.has_deadline()
                                      ? scc::run_with_deadline("tarjan", g, request.deadline)
                                      : scc::run_algorithm("tarjan", g);
    if (serial.ok() && certify_for_serving(g, epoch, serial, sb)) {
      auto snap = snapshot_from_result(epoch, serial);
      store_cached_snapshot(snap);
      response.labels = std::move(snap);
      response.num_components = serial.num_components;
      sb.tier = Tier::kSerialFallback;
      sb.backend = "tarjan";
      sb.epoch = epoch;
      const std::uint64_t current = engine_->epoch();
      sb.staleness_epochs = current - std::min(current, epoch);
      response.status = ServiceStatus::kOk;
      return;
    }
  }

  const bool expired_now = request.has_deadline() && ServiceClock::now() >= request.deadline;
  response.status =
      expired_now ? ServiceStatus::kDeadlineExceeded : ServiceStatus::kUnavailable;
  response.message = "every tier of the degradation ladder failed";
}

void SccService::serve_condensation(Response& response) {
  const std::uint64_t epoch = engine_->epoch();
  response.condensation = engine_->condensation_graph();
  response.num_components = response.condensation.num_vertices();
  response.served_by.tier = Tier::kFresh;
  response.served_by.backend = "dynamic";
  response.served_by.epoch = epoch;
  response.status = ServiceStatus::kOk;
}

void SccService::serve_reachability(Pending& pending, Response& response) {
  const Request& request = pending.request;
  ServedBy& sb = response.served_by;
  if (request.u >= engine_->num_vertices() || request.v >= engine_->num_vertices())
    throw std::out_of_range("reachability query: vertex ID out of range");

  // Same-SCC queries are O(1) against a snapshot; under overload serve the
  // held (possibly stale) one when the budget allows, else the live view.
  const bool overloaded = queue_->size() >= overload_threshold_;
  if (overloaded && config_.enable_degradation) {
    auto snap = cached_snapshot();
    const std::uint64_t current = engine_->epoch();
    const std::uint64_t delta = current - std::min(current, snap->epoch);
    if (delta <= request.staleness_budget) {
      response.reachable = snap->same_scc(request.u, request.v);
      sb.tier = Tier::kStaleSnapshot;
      sb.backend = "snapshot";
      sb.epoch = snap->epoch;
      sb.staleness_epochs = delta;
      response.status = ServiceStatus::kOk;
      return;
    }
  }
  auto live = engine_->snapshot();
  response.reachable = live->same_scc(request.u, request.v);
  sb.tier = Tier::kFresh;
  sb.backend = "dynamic";
  sb.epoch = live->epoch;
  response.status = ServiceStatus::kOk;
}

void SccService::serve_update_batch(Pending& pending, Response& response) {
  response.updates_applied = engine_->apply_batch(pending.request.updates);
  response.served_by.tier = Tier::kFresh;
  response.served_by.backend = "dynamic";
  response.served_by.epoch = engine_->epoch();
  response.status = ServiceStatus::kOk;
}

bool SccService::try_fresh(Pending& pending, device::Device& dev, std::size_t pool_index,
                           Response& response) {
  const Request& request = pending.request;
  ServedBy& sb = response.served_by;

  // Decorrelated, reproducible jitter stream per request.
  std::uint64_t seed_state = config_.seed ^ (pending.id * 0x9e3779b97f4a7c15ULL);
  Rng rng(splitmix64(seed_state));

  std::size_t attempts = 0;
  while (attempts < config_.max_attempts) {
    bool routed_any = false;
    for (std::size_t b = 0; b < config_.backends.size() && attempts < config_.max_attempts;
         ++b) {
      const std::string& backend = config_.backends[b];
      const double remaining = remaining_seconds(request);
      if (remaining <= 0.0) return false;

      if (config_.enable_breakers && !health_->allow(b)) {
        ++sb.breaker_skips;
        stats_.breaker_skips.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      routed_any = true;
      ++attempts;
      ++sb.attempts;
      stats_.fresh_attempts.fetch_add(1, std::memory_order_relaxed);

      auto [graph, epoch] = current_graph();
      const bool device_backed = scc::algorithm_uses_device(backend);
      scc::SccResult result;
      {
        // Pool devices are shared across workers and launch is not
        // re-entrant: hold the leased device's guard for the run. Backends
        // that never touch the device (tarjan, ecl-omp) skip it.
        std::unique_lock<std::mutex> device_guard;
        if (pool_index != kNoPoolDevice && device_backed)
          device_guard = pool_->acquire(pool_index);
        if (request.has_deadline()) {
          // Hedged slice of the remaining budget: a stalled backend must not
          // starve the ladder's later tiers.
          const double slice = remaining * config_.attempt_deadline_fraction;
          result = scc::run_with_deadline(backend, *graph,
                                          ServiceClock::now() + to_duration(slice), &dev);
        } else {
          try {
            result = scc::run_algorithm_on(backend, *graph, dev);
          } catch (const std::exception& e) {
            result = scc::SccResult{};
            result.error = {scc::SccStatus::kException, e.what()};
          }
        }
      }

      // Solver-level self-healing accounting travels with every attempt,
      // successful or not.
      stats_.checkpoints_taken.fetch_add(result.metrics.checkpoints_taken,
                                         std::memory_order_relaxed);
      stats_.resumes.fetch_add(result.metrics.resumes, std::memory_order_relaxed);
      stats_.rounds_replayed.fetch_add(result.metrics.rounds_replayed,
                                       std::memory_order_relaxed);
      fold_highdiameter_stats(result.metrics);

      // Certification gate: an ok-looking labeling that fails the
      // certificate is a SILENT corruption — scored as its own fault kind,
      // never served, and the chain continues.
      bool success = result.ok();
      FaultKind fault = fault_kind_from_status(result.error.code);
      if (success && !certify_for_serving(*graph, epoch, result, sb)) {
        success = false;
        fault = FaultKind::kCertification;
      }
      if (config_.enable_breakers)
        health_->record(b, success ? FaultKind::kNone : fault);
      // Pool mode scores the HARDWARE separately from the algorithm: a
      // device-backed outcome feeds the leased device's health entry, so a
      // flaky device is quarantined (and routed around) without tainting
      // the backend's score on its healthy peers.
      if (pool_index != kNoPoolDevice && device_backed)
        pool_->record(pool_index, success ? FaultKind::kNone : fault);
      if (success) {
        sb.resumes += result.metrics.resumes;
        auto snap = snapshot_from_result(epoch, result);
        store_cached_snapshot(snap);
        response.labels = std::move(snap);
        response.num_components = result.num_components;
        sb.tier = Tier::kFresh;
        sb.backend = backend;
        sb.epoch = epoch;
        const std::uint64_t current = engine_->epoch();
        sb.staleness_epochs = current - std::min(current, epoch);
        response.status = ServiceStatus::kOk;
        return true;
      }
      stats_.backend_failures.fetch_add(1, std::memory_order_relaxed);

      double delay = config_.backoff.delay_seconds(attempts - 1, rng);
      if (request.has_deadline())
        delay = std::min(delay, remaining_seconds(request) * 0.25);
      if (delay > 0.0) std::this_thread::sleep_for(to_duration(delay));
    }
    if (!routed_any) return false;  // every breaker open: degrade immediately
  }
  return false;
}

bool SccService::try_sharded(Pending& pending, Response& response) {
  const Request& request = pending.request;
  ServedBy& sb = response.served_by;
  auto [graph, epoch] = current_graph();

  fleet::ShardedOptions sopts;
  sopts.shards = config_.shards;
  sopts.certify = config_.enable_certification;
  if (request.has_deadline()) sopts.ecl.watchdog.deadline = request.deadline;
  // Satellite fix: the stitched certificate (and every ladder rung behind
  // it) shares the service's per-epoch reverse adjacency — the reverse is
  // built once per graph epoch, never per shard or per certification.
  std::shared_ptr<const Digraph> reverse;
  if (config_.enable_certification) {
    reverse = epoch_reverse(*graph, epoch);
    sopts.reverse_hint = reverse.get();
  }

  ++sb.attempts;
  stats_.fresh_attempts.fetch_add(1, std::memory_order_relaxed);

  scc::SccResult result;
  {
    // The sharded coordinator launches on every pool device from its own
    // threads: take the whole pool (fixed index order, so concurrent
    // whole-graph leases cannot deadlock against it).
    const auto guards = pool_->acquire_all();
    result = fleet::sharded_scc(*graph, *pool_, sopts);
  }

  // Fleet self-healing accounting (DESIGN.md §14) — recorded whether or not
  // the run ends up servable: a failover that was survived but still lost
  // the ladder is operationally interesting.
  stats_.checkpoints_taken.fetch_add(result.metrics.checkpoints_taken,
                                     std::memory_order_relaxed);
  stats_.resumes.fetch_add(result.metrics.resumes, std::memory_order_relaxed);
  stats_.rounds_replayed.fetch_add(result.metrics.rounds_replayed, std::memory_order_relaxed);
  stats_.failovers.fetch_add(result.metrics.failovers, std::memory_order_relaxed);
  stats_.shards_rehomed.fetch_add(result.metrics.shards_rehomed, std::memory_order_relaxed);
  stats_.stragglers_flagged.fetch_add(result.metrics.stragglers_flagged,
                                      std::memory_order_relaxed);
  stats_.straggler_migrations.fetch_add(result.metrics.straggler_migrations,
                                        std::memory_order_relaxed);
  fold_highdiameter_stats(result.metrics);
  sb.resumes += result.metrics.resumes;
  sb.failovers += result.metrics.failovers;
  sb.stragglers += result.metrics.stragglers_flagged;

  if (config_.enable_certification) {
    stats_.certifications.fetch_add(1 + result.metrics.fresh_reruns,
                                    std::memory_order_relaxed);
    stats_.certify_micros.fetch_add(
        static_cast<std::uint64_t>(result.metrics.certify_seconds * 1e6),
        std::memory_order_relaxed);
    sb.certify_seconds += result.metrics.certify_seconds;
  }

  // sharded_scc always returns complete labels, but the serving bar is the
  // usual one: certified (or plainly ok when certification is off).
  const bool servable =
      config_.enable_certification ? result.metrics.certified : result.ok();
  if (!servable) {
    stats_.backend_failures.fetch_add(1, std::memory_order_relaxed);
    if (config_.enable_certification) {
      ++sb.certify_failures;
      stats_.certification_failures.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }

  sb.certified = result.metrics.certified;
  auto snap = snapshot_from_result(epoch, result);
  store_cached_snapshot(snap);
  response.labels = std::move(snap);
  response.num_components = result.num_components;
  sb.tier = Tier::kFresh;
  sb.backend = "sharded";
  sb.epoch = epoch;
  const std::uint64_t current = engine_->epoch();
  sb.staleness_epochs = current - std::min(current, epoch);
  response.status = ServiceStatus::kOk;
  return true;
}

bool SccService::certify_for_serving(const Digraph& g, std::uint64_t epoch,
                                     const scc::SccResult& result, ServedBy& sb) {
  if (!config_.enable_certification) return true;
  // The reverse adjacency is labeling-independent, so all certifications of
  // the same graph epoch share one build via the cache.
  const std::shared_ptr<const Digraph> rev = epoch_reverse(g, epoch);
  scc::CertifyOptions opts;
  opts.reverse_hint = rev.get();
  const scc::CertifyReport cert = scc::certify_scc(g, result.labels, opts);
  sb.certify_seconds += cert.seconds;
  stats_.certifications.fetch_add(1, std::memory_order_relaxed);
  stats_.certify_micros.fetch_add(static_cast<std::uint64_t>(cert.seconds * 1e6),
                                  std::memory_order_relaxed);
  if (cert.ok) {
    sb.certified = true;
    return true;
  }
  ++sb.certify_failures;
  stats_.certification_failures.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void SccService::finalize(const Request& request, Response& response) {
  response.completed_at = ServiceClock::now();
  // The pipeline invariant: a successful response is never delivered after
  // its deadline, no matter which tier produced it.
  if (response.ok() && request.has_deadline() && response.completed_at > request.deadline) {
    response.status = ServiceStatus::kDeadlineExceeded;
    response.message = "answer was ready after the deadline";
  }
  switch (response.status) {
    case ServiceStatus::kOk:
      switch (response.served_by.tier) {
        case Tier::kStaleSnapshot:
          stats_.served_stale.fetch_add(1, std::memory_order_relaxed);
          break;
        case Tier::kSerialFallback:
          stats_.served_serial.fetch_add(1, std::memory_order_relaxed);
          break;
        default: stats_.served_fresh.fetch_add(1, std::memory_order_relaxed); break;
      }
      break;
    case ServiceStatus::kDeadlineExceeded:
      stats_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServiceStatus::kUnavailable:
      stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServiceStatus::kInvalidRequest:
      stats_.invalid.fetch_add(1, std::memory_order_relaxed);
      break;
    default: break;  // rejections are counted at admission
  }
}

std::shared_ptr<const dynamic::LabelSnapshot> SccService::cached_snapshot() const {
  std::lock_guard lock(cache_mutex_);
  return cached_snapshot_;
}

void SccService::store_cached_snapshot(std::shared_ptr<const dynamic::LabelSnapshot> snap) {
  std::lock_guard lock(cache_mutex_);
  // Only move the cache forward; a slow worker must not roll it back.
  if (!cached_snapshot_ || snap->epoch >= cached_snapshot_->epoch)
    cached_snapshot_ = std::move(snap);
}

std::pair<std::shared_ptr<const Digraph>, std::uint64_t> SccService::current_graph() {
  const std::uint64_t epoch = engine_->epoch();
  {
    std::lock_guard lock(cache_mutex_);
    if (graph_cache_ && graph_cache_epoch_ == epoch) return {graph_cache_, epoch};
  }
  auto [graph, actual_epoch] = engine_->graph_with_epoch();
  auto shared = std::make_shared<const Digraph>(std::move(graph));
  {
    std::lock_guard lock(cache_mutex_);
    if (!graph_cache_ || actual_epoch >= graph_cache_epoch_) {
      graph_cache_ = shared;
      graph_cache_epoch_ = actual_epoch;
    }
  }
  return {shared, actual_epoch};
}

std::shared_ptr<const Digraph> SccService::epoch_reverse(const Digraph& g, std::uint64_t epoch) {
  {
    std::lock_guard lock(cache_mutex_);
    if (reverse_cache_ && reverse_cache_epoch_ == epoch) return reverse_cache_;
  }
  // Built outside the lock: the reverse of a big graph is an O(V+E) pass
  // and must not serialize the whole worker pool behind cache_mutex_.
  auto shared = std::make_shared<const Digraph>(g.reverse());
  {
    std::lock_guard lock(cache_mutex_);
    if (!reverse_cache_ || epoch >= reverse_cache_epoch_) {
      reverse_cache_ = shared;
      reverse_cache_epoch_ = epoch;
    }
  }
  return shared;
}

double SccService::remaining_seconds(const Request& request) const {
  if (!request.has_deadline()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(request.deadline - ServiceClock::now()).count();
}

}  // namespace ecl::service
