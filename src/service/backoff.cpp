#include "service/backoff.hpp"

#include <algorithm>

namespace ecl::service {

double BackoffPolicy::delay_seconds(std::size_t attempt, Rng& rng) const {
  double base = initial_seconds;
  for (std::size_t i = 0; i < attempt && base < max_seconds; ++i) base *= multiplier;
  base = std::min(base, max_seconds);
  const double factor = 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
  return std::max(0.0, base * factor);
}

}  // namespace ecl::service
