#ifndef ECL_SERVICE_BACKOFF_HPP
#define ECL_SERVICE_BACKOFF_HPP

// Retry pacing: exponential backoff with decorrelating jitter.
//
// The service retries a failed request across the backend chain; waiting a
// growing, jittered interval between attempts keeps a burst of failures
// from re-converging into a synchronized retry storm. Jitter draws from
// support/rng, so a test that fixes the seed sees the exact same delay
// sequence on every run.

#include <cstddef>

#include "support/rng.hpp"

namespace ecl::service {

/// Delay schedule: attempt k waits initial * multiplier^k seconds, capped
/// at max_seconds, then scaled by a uniform factor in [1 - jitter, 1 + jitter].
struct BackoffPolicy {
  double initial_seconds = 0.001;
  double multiplier = 2.0;
  double max_seconds = 0.050;
  double jitter = 0.5;  ///< fraction of the base delay; 0 disables jitter

  /// Delay before retry number `attempt` (0-based: the wait after the first
  /// failure). Deterministic given the rng state; never negative.
  double delay_seconds(std::size_t attempt, Rng& rng) const;
};

}  // namespace ecl::service

#endif  // ECL_SERVICE_BACKOFF_HPP
