#include "service/service_types.hpp"

namespace ecl::service {

const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSccLabels: return "scc-labels";
    case RequestKind::kCondensation: return "condensation";
    case RequestKind::kReachabilityQuery: return "reachability";
    case RequestKind::kUpdateBatch: return "update-batch";
  }
  return "unknown";
}

const char* service_status_name(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kOk: return "ok";
    case ServiceStatus::kRejectedQueueFull: return "rejected-queue-full";
    case ServiceStatus::kRejectedShuttingDown: return "rejected-shutting-down";
    case ServiceStatus::kDeadlineExceeded: return "deadline-exceeded";
    case ServiceStatus::kUnavailable: return "unavailable";
    case ServiceStatus::kInvalidRequest: return "invalid-request";
  }
  return "unknown";
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kNone: return "none";
    case Tier::kFresh: return "fresh";
    case Tier::kStaleSnapshot: return "stale-snapshot";
    case Tier::kSerialFallback: return "serial-fallback";
  }
  return "unknown";
}

}  // namespace ecl::service
