#ifndef ECL_SERVICE_SERVICE_TYPES_HPP
#define ECL_SERVICE_SERVICE_TYPES_HPP

// Request/response vocabulary of the SCC service (see scc_service.hpp).
//
// Every request carries an absolute wall-clock deadline and a staleness
// budget; every response carries a ServedBy trace that records exactly how
// the answer was produced (which backend, how many attempts, how long it
// queued, how stale it is). The trace is the observability contract of the
// degradation ladder: a degraded answer is always labeled as such, never
// silently substituted for a fresh one.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dynamic/dynamic_scc.hpp"
#include "graph/digraph.hpp"
#include "graph/update_stream.hpp"

namespace ecl::service {

using graph::Digraph;
using graph::vid;
using ServiceClock = std::chrono::steady_clock;

/// What the client is asking for.
enum class RequestKind : std::uint8_t {
  kSccLabels,          ///< full, backend-computed SCC labeling of the current graph
  kCondensation,       ///< condensation DAG from the maintained engine
  kReachabilityQuery,  ///< mutual reachability: are u and v in the same SCC?
  kUpdateBatch,        ///< apply an ordered batch of edge updates
};

const char* request_kind_name(RequestKind kind);

/// One client request. A default-constructed deadline (the clock epoch)
/// means "no deadline"; staleness_budget is the number of epochs a degraded
/// answer may lag the current graph (0 = only epoch-exact answers).
struct Request {
  RequestKind kind = RequestKind::kSccLabels;
  ServiceClock::time_point deadline{};
  std::uint64_t staleness_budget = 0;
  vid u = 0;  ///< reachability operand
  vid v = 0;  ///< reachability operand
  std::vector<graph::EdgeUpdate> updates;  ///< update-batch payload

  bool has_deadline() const noexcept { return deadline != ServiceClock::time_point{}; }

  /// Convenience: deadline `budget` from now.
  static ServiceClock::time_point deadline_in(double seconds) {
    return ServiceClock::now() +
           std::chrono::duration_cast<ServiceClock::duration>(
               std::chrono::duration<double>(seconds));
  }
};

/// Structured outcome taxonomy. Everything except kOk is a non-served
/// response; the rejected codes are decided at admission, the others by the
/// worker pipeline.
enum class ServiceStatus : std::uint8_t {
  kOk = 0,
  kRejectedQueueFull,      ///< admission queue at capacity (load shed)
  kRejectedShuttingDown,   ///< service is draining; no new work accepted
  kDeadlineExceeded,       ///< the deadline passed before an answer was ready
  kUnavailable,            ///< every tier of the degradation ladder failed
  kInvalidRequest,         ///< malformed request (bad vertex IDs, ...)
};

const char* service_status_name(ServiceStatus status);

/// Which tier of the degradation ladder produced the answer.
enum class Tier : std::uint8_t {
  kNone = 0,        ///< no answer was produced
  kFresh,           ///< backend chain computed it on the current graph
  kStaleSnapshot,   ///< epoch-stamped cached snapshot within the staleness budget
  kSerialFallback,  ///< direct serial Tarjan, bypassing breakers
};

const char* tier_name(Tier tier);

/// Provenance trace attached to every response.
struct ServedBy {
  std::string backend;          ///< registry name, "snapshot", or "dynamic"
  Tier tier = Tier::kNone;
  std::uint32_t attempts = 0;       ///< fresh backend attempts made (incl. failures)
  std::uint32_t breaker_skips = 0;  ///< backends skipped because their breaker was open
  double queue_seconds = 0.0;       ///< admission-to-dequeue wait
  double compute_seconds = 0.0;     ///< dequeue-to-answer work time
  std::uint64_t epoch = 0;            ///< graph epoch the payload reflects
  std::uint64_t staleness_epochs = 0; ///< engine epoch minus payload epoch at serve time

  // Self-healing provenance (DESIGN.md §12): was this labeling certified
  // before it was served, how long the certificate check took (summed over
  // all attempts of this request), and how much checkpointed replay the
  // producing run needed. Snapshot-tier answers carry certified = true via
  // the snapshot they were cut from (only certified results are cached).
  bool certified = false;
  double certify_seconds = 0.0;
  std::uint64_t resumes = 0;           ///< checkpoint replays inside the producing run
  std::uint64_t certify_failures = 0;  ///< attempts rejected by the certifier for this request

  // Fleet self-healing provenance (DESIGN.md §14): live shard failovers the
  // producing sharded run survived and stragglers it flagged — nonzero only
  // on backend == "sharded" answers.
  std::uint64_t failovers = 0;
  std::uint64_t stragglers = 0;
};

/// One service response. Payload fields are populated according to the
/// request kind; `served_by` is always populated, `completed_at` is stamped
/// immediately before delivery (the deadline invariant is checked against
/// it: a kOk response never completes after its request's deadline).
struct Response {
  ServiceStatus status = ServiceStatus::kUnavailable;
  std::string message;  ///< empty when ok
  ServedBy served_by;
  ServiceClock::time_point completed_at{};

  std::shared_ptr<const dynamic::LabelSnapshot> labels;  ///< kSccLabels
  vid num_components = 0;                                ///< kSccLabels / kCondensation
  Digraph condensation;                                  ///< kCondensation
  bool reachable = false;                                ///< kReachabilityQuery
  std::size_t updates_applied = 0;                       ///< kUpdateBatch

  bool ok() const noexcept { return status == ServiceStatus::kOk; }
  bool rejected() const noexcept {
    return status == ServiceStatus::kRejectedQueueFull ||
           status == ServiceStatus::kRejectedShuttingDown;
  }
  bool degraded() const noexcept {
    return served_by.tier == Tier::kStaleSnapshot || served_by.tier == Tier::kSerialFallback;
  }
};

}  // namespace ecl::service

#endif  // ECL_SERVICE_SERVICE_TYPES_HPP
