#include "service/circuit_breaker.hpp"

#include <algorithm>

namespace ecl::service {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config) : config_(config) {
  config_.window = std::max<std::size_t>(1, config_.window);
  config_.min_samples = std::max<std::size_t>(1, std::min(config_.min_samples, config_.window));
  config_.half_open_probes = std::max<std::size_t>(1, config_.half_open_probes);
  window_.assign(config_.window, false);
}

void CircuitBreaker::refresh_locked(Clock::time_point now) const {
  if (state_ != BreakerState::kOpen) return;
  const auto cooldown = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config_.cooldown_seconds));
  if (now - opened_at_ >= cooldown) {
    state_ = BreakerState::kHalfOpen;
    probes_issued_ = 0;
  }
}

bool CircuitBreaker::allow(Clock::time_point now) {
  std::lock_guard lock(mutex_);
  refresh_locked(now);
  switch (state_) {
    case BreakerState::kClosed: return true;
    case BreakerState::kOpen: return false;
    case BreakerState::kHalfOpen:
      if (probes_issued_ < config_.half_open_probes) {
        ++probes_issued_;
        return true;
      }
      return false;
  }
  return false;
}

void CircuitBreaker::record_success(Clock::time_point now) {
  std::lock_guard lock(mutex_);
  refresh_locked(now);
  if (state_ == BreakerState::kHalfOpen) {
    // The probe proved the backend healthy: close and forget the window.
    state_ = BreakerState::kClosed;
    window_.assign(config_.window, false);
    window_pos_ = window_count_ = window_failures_ = 0;
    return;
  }
  if (state_ != BreakerState::kClosed) return;  // stray feedback while open
  if (window_count_ == config_.window) {
    if (window_[window_pos_]) --window_failures_;
  } else {
    ++window_count_;
  }
  window_[window_pos_] = false;
  window_pos_ = (window_pos_ + 1) % config_.window;
}

void CircuitBreaker::record_failure(Clock::time_point now) {
  std::lock_guard lock(mutex_);
  refresh_locked(now);
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: back to open, restart the cool-down.
    state_ = BreakerState::kOpen;
    opened_at_ = now;
    ++opens_;
    return;
  }
  if (state_ != BreakerState::kClosed) return;
  if (window_count_ == config_.window) {
    if (window_[window_pos_]) --window_failures_;
  } else {
    ++window_count_;
  }
  window_[window_pos_] = true;
  ++window_failures_;
  window_pos_ = (window_pos_ + 1) % config_.window;

  if (window_count_ >= config_.min_samples &&
      static_cast<double>(window_failures_) >=
          config_.failure_threshold * static_cast<double>(window_count_)) {
    state_ = BreakerState::kOpen;
    opened_at_ = now;
    ++opens_;
    window_.assign(config_.window, false);
    window_pos_ = window_count_ = window_failures_ = 0;
  }
}

BreakerState CircuitBreaker::state(Clock::time_point now) const {
  std::lock_guard lock(mutex_);
  refresh_locked(now);
  return state_;
}

std::uint64_t CircuitBreaker::opens() const {
  std::lock_guard lock(mutex_);
  return opens_;
}

}  // namespace ecl::service
