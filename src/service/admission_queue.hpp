#ifndef ECL_SERVICE_ADMISSION_QUEUE_HPP
#define ECL_SERVICE_ADMISSION_QUEUE_HPP

// Admission control: a bounded MPMC queue that sheds load instead of
// growing without bound. Producers get a structured outcome — accepted,
// queue-full, or shutting-down — so the service can answer a rejected
// request immediately with the matching ServiceStatus rather than letting
// latency balloon under overload. Consumers block on pop() and drain the
// remaining items after shutdown() before observing end-of-stream.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ecl::service {

/// Outcome of an admission attempt.
enum class AdmitResult : std::uint8_t {
  kAccepted = 0,
  kQueueFull,      ///< at capacity: the item was shed, not enqueued
  kShuttingDown,   ///< shutdown() was called: no new work is admitted
};

/// Bounded blocking queue. Thread-safe for any number of producers and
/// consumers.
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Non-blocking admission: never waits for space (backpressure is the
  /// caller being told "no", not the caller being stalled).
  AdmitResult try_push(T&& item) {
    {
      std::lock_guard lock(mutex_);
      if (shutdown_) return AdmitResult::kShuttingDown;
      if (items_.size() >= capacity_) {
        ++rejected_full_;
        return AdmitResult::kQueueFull;
      }
      items_.push_back(std::move(item));
      ++accepted_;
    }
    ready_.notify_one();
    return AdmitResult::kAccepted;
  }

  /// Blocks until an item is available or the queue is shut down AND
  /// drained; std::nullopt signals end-of-stream.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [this] { return shutdown_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admission and wakes every blocked consumer. Items already queued
  /// remain poppable (drain-then-stop).
  void shutdown() {
    {
      std::lock_guard lock(mutex_);
      shutdown_ = true;
    }
    ready_.notify_all();
  }

  bool shutting_down() const {
    std::lock_guard lock(mutex_);
    return shutdown_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }
  std::size_t capacity() const noexcept { return capacity_; }

  std::uint64_t accepted() const {
    std::lock_guard lock(mutex_);
    return accepted_;
  }
  std::uint64_t rejected_full() const {
    std::lock_guard lock(mutex_);
    return rejected_full_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool shutdown_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_full_ = 0;
};

}  // namespace ecl::service

#endif  // ECL_SERVICE_ADMISSION_QUEUE_HPP
