#include "service/health_registry.hpp"

#include <algorithm>

namespace ecl::service {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kStall: return "stall";
    case FaultKind::kOverflow: return "overflow";
    case FaultKind::kCertification: return "certification";
    case FaultKind::kDeadline: return "deadline";
    case FaultKind::kException: return "exception";
    case FaultKind::kOther: return "other";
    case FaultKind::kStraggler: return "straggler";
  }
  return "unknown";
}

FaultKind fault_kind_from_status(scc::SccStatus status) {
  switch (status) {
    case scc::SccStatus::kOk: return FaultKind::kNone;
    case scc::SccStatus::kStalled: return FaultKind::kStall;
    case scc::SccStatus::kWorklistOverflow: return FaultKind::kOverflow;
    case scc::SccStatus::kCertificationFailed: return FaultKind::kCertification;
    case scc::SccStatus::kDeadlineExceeded: return FaultKind::kDeadline;
    case scc::SccStatus::kException: return FaultKind::kException;
    case scc::SccStatus::kIterationGuard:
    case scc::SccStatus::kVerifyFailed: return FaultKind::kOther;
  }
  return FaultKind::kOther;
}

const char* backend_health_name(BackendHealth health) {
  switch (health) {
    case BackendHealth::kHealthy: return "healthy";
    case BackendHealth::kQuarantined: return "quarantined";
    case BackendHealth::kProbation: return "probation";
  }
  return "unknown";
}

BackendHealthRegistry::BackendHealthRegistry(std::vector<std::string> backends,
                                             HealthConfig config)
    : config_(config) {
  config_.breaker.window = std::max<std::size_t>(1, config_.breaker.window);
  config_.breaker.min_samples = std::max<std::size_t>(
      1, std::min(config_.breaker.min_samples, config_.breaker.window));
  config_.breaker.half_open_probes = std::max<std::size_t>(1, config_.breaker.half_open_probes);
  config_.quarantine_backoff = std::max(1.0, config_.quarantine_backoff);
  entries_.reserve(backends.size());
  for (auto& name : backends) {
    auto entry = std::make_unique<Entry>();
    entry->name = std::move(name);
    entry->window.assign(config_.breaker.window, 0.0);
    entries_.push_back(std::move(entry));
  }
}

double BackendHealthRegistry::cooldown_seconds(const Entry& e) const {
  double cooldown = config_.breaker.cooldown_seconds;
  for (unsigned i = 1; i < e.consecutive_quarantines && cooldown < config_.max_cooldown_seconds;
       ++i)
    cooldown *= config_.quarantine_backoff;
  return std::min(cooldown, config_.max_cooldown_seconds);
}

void BackendHealthRegistry::refresh_locked(const Entry& e, Clock::time_point now) const {
  if (e.health != BackendHealth::kQuarantined) return;
  const auto cooldown = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(cooldown_seconds(e)));
  if (now - e.quarantined_at >= cooldown) {
    e.health = BackendHealth::kProbation;
    e.probes_issued = 0;
    ++e.probations;
  }
}

bool BackendHealthRegistry::allow(std::size_t backend, Clock::time_point now) {
  Entry& e = *entries_.at(backend);
  std::lock_guard lock(e.mutex);
  refresh_locked(e, now);
  switch (e.health) {
    case BackendHealth::kHealthy: return true;
    case BackendHealth::kQuarantined: return false;
    case BackendHealth::kProbation:
      if (e.probes_issued < config_.breaker.half_open_probes) {
        ++e.probes_issued;
        return true;
      }
      return false;
  }
  return false;
}

void BackendHealthRegistry::record(std::size_t backend, FaultKind kind, Clock::time_point now) {
  Entry& e = *entries_.at(backend);
  std::lock_guard lock(e.mutex);
  refresh_locked(e, now);
  ++e.faults[static_cast<std::size_t>(kind)];

  if (kind == FaultKind::kNone) {
    if (e.health == BackendHealth::kProbation) {
      // The probe proved the backend healthy: re-admit, forget the window
      // and the escalation level.
      e.health = BackendHealth::kHealthy;
      ++e.readmissions;
      e.consecutive_quarantines = 0;
      std::fill(e.window.begin(), e.window.end(), 0.0);
      e.window_pos = e.window_count = 0;
      e.window_score = 0.0;
      return;
    }
    if (e.health != BackendHealth::kHealthy) return;  // stray feedback while quarantined
    if (e.window_count == e.window.size())
      e.window_score -= e.window[e.window_pos];
    else
      ++e.window_count;
    e.window[e.window_pos] = 0.0;
    e.window_pos = (e.window_pos + 1) % e.window.size();
    return;
  }

  const double weight = config_.weights[static_cast<std::size_t>(kind)];
  if (e.health == BackendHealth::kProbation) {
    // The probe faulted: back to quarantine with an escalated cool-down.
    e.health = BackendHealth::kQuarantined;
    e.quarantined_at = now;
    ++e.quarantines;
    e.consecutive_quarantines =
        std::min<unsigned>(e.consecutive_quarantines + 1, 31);
    return;
  }
  if (e.health != BackendHealth::kHealthy) return;
  if (e.window_count == e.window.size())
    e.window_score -= e.window[e.window_pos];
  else
    ++e.window_count;
  e.window[e.window_pos] = weight;
  e.window_score += weight;
  e.window_pos = (e.window_pos + 1) % e.window.size();

  // Trip condition: the weighted score crosses the threshold fraction of
  // the window occupancy. With unit weights this is exactly the legacy
  // breaker's failure-rate rule.
  if (e.window_count >= config_.breaker.min_samples &&
      e.window_score >=
          config_.breaker.failure_threshold * static_cast<double>(e.window_count)) {
    e.health = BackendHealth::kQuarantined;
    e.quarantined_at = now;
    ++e.quarantines;
    e.consecutive_quarantines = std::min<unsigned>(e.consecutive_quarantines + 1, 31);
    std::fill(e.window.begin(), e.window.end(), 0.0);
    e.window_pos = e.window_count = 0;
    e.window_score = 0.0;
  }
}

BackendHealth BackendHealthRegistry::health(std::size_t backend, Clock::time_point now) const {
  const Entry& e = *entries_.at(backend);
  std::lock_guard lock(e.mutex);
  refresh_locked(e, now);
  return e.health;
}

BreakerState BackendHealthRegistry::breaker_state(std::size_t backend,
                                                  Clock::time_point now) const {
  switch (health(backend, now)) {
    case BackendHealth::kHealthy: return BreakerState::kClosed;
    case BackendHealth::kQuarantined: return BreakerState::kOpen;
    case BackendHealth::kProbation: return BreakerState::kHalfOpen;
  }
  return BreakerState::kClosed;
}

std::vector<BackendHealthSnapshot> BackendHealthRegistry::snapshot(Clock::time_point now) const {
  std::vector<BackendHealthSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    const Entry& e = *entry;
    std::lock_guard lock(e.mutex);
    refresh_locked(e, now);
    BackendHealthSnapshot snap;
    snap.name = e.name;
    snap.health = e.health;
    snap.score = e.window_score;
    snap.samples = e.window_count;
    snap.quarantines = e.quarantines;
    snap.probations = e.probations;
    snap.readmissions = e.readmissions;
    std::copy(std::begin(e.faults), std::end(e.faults), std::begin(snap.faults));
    out.push_back(std::move(snap));
  }
  return out;
}

std::uint64_t BackendHealthRegistry::quarantines() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    std::lock_guard lock(e->mutex);
    total += e->quarantines;
  }
  return total;
}

std::uint64_t BackendHealthRegistry::probations() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    std::lock_guard lock(e->mutex);
    total += e->probations;
  }
  return total;
}

std::uint64_t BackendHealthRegistry::readmissions() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    std::lock_guard lock(e->mutex);
    total += e->readmissions;
  }
  return total;
}

}  // namespace ecl::service
