#ifndef ECL_SUPPORT_RNG_HPP
#define ECL_SUPPORT_RNG_HPP

// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (graph generators, mesh
// perturbations, vertex permutations, pivot randomization) draw from this
// generator so that every experiment is reproducible from a single seed.

#include <cstdint>
#include <limits>

namespace ecl {

/// splitmix64: used to expand a user seed into well-mixed stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: small-state, high-quality PRNG suitable for parallel use
/// (give each worker its own instance seeded from a distinct stream).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(bounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Approximately standard-normal variate (sum of uniforms is adequate for
  /// the geometric jitter this library needs).
  double gaussian() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace ecl

#endif  // ECL_SUPPORT_RNG_HPP
