#ifndef ECL_SUPPORT_FORMAT_HPP
#define ECL_SUPPORT_FORMAT_HPP

// Console table formatting used by the benchmark harness to print rows in
// the same shape as the paper's tables.

#include <cstddef>
#include <string>
#include <vector>

namespace ecl {

/// Formats `value` with thousands separators ("1,505,785").
std::string with_commas(std::uint64_t value);

/// Fixed-point formatting helper ("0.0046").
std::string fixed(double value, int decimals);

/// Simple monospace table: set a header once, append rows, then render.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with column alignment; first column left-aligned, rest right.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ecl

#endif  // ECL_SUPPORT_FORMAT_HPP
