#include "support/rng.hpp"

namespace ecl {

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::gaussian() noexcept {
  // Irwin-Hall with 12 uniforms: mean 6, variance 1.
  double acc = 0.0;
  for (int i = 0; i < 12; ++i) acc += uniform();
  return acc - 6.0;
}

}  // namespace ecl
