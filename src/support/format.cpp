#include "support/format.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace ecl {

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      if (c == 0) {
        out << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        out << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace ecl
