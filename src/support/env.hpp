#ifndef ECL_SUPPORT_ENV_HPP
#define ECL_SUPPORT_ENV_HPP

// Environment-driven experiment configuration.
//
// The paper's inputs range up to millions of vertices; this container may be
// far smaller. Every benchmark therefore sizes its workloads as
// `paper_size * scale_factor()`, where the factor is controlled by the
// ECL_SCALE environment variable (default chosen for a single-core host).

#include <cstddef>
#include <cstdint>
#include <string>

namespace ecl {

/// Reads an environment variable, returning `fallback` when unset or invalid.
double env_double(const char* name, double fallback);
std::int64_t env_int(const char* name, std::int64_t fallback);
std::string env_string(const char* name, const std::string& fallback);

/// Global workload scale factor in (0, 1]: fraction of the paper's input
/// sizes used by benchmarks. Controlled by ECL_SCALE (e.g. ECL_SCALE=1 runs
/// the full paper sizes; the default keeps the full suite tractable on one
/// core).
double scale_factor();

/// Number of benchmark repetitions per measurement (paper: median of 9).
/// Controlled by ECL_RUNS.
std::size_t bench_runs();

/// Scales a paper-sized vertex/element count by scale_factor(), with a floor
/// so structural properties (cycles, DAG depth > 1, ...) survive downscaling.
std::size_t scaled(std::size_t paper_size, std::size_t floor = 64);

}  // namespace ecl

#endif  // ECL_SUPPORT_ENV_HPP
