#include "support/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace ecl {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  return (end == raw) ? fallback : value;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  return (end == raw) ? fallback : static_cast<std::int64_t>(value);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

double scale_factor() {
  static const double factor = [] {
    double f = env_double("ECL_SCALE", 0.02);
    return std::clamp(f, 1e-6, 1.0);
  }();
  return factor;
}

std::size_t bench_runs() {
  static const std::size_t runs = [] {
    const std::int64_t r = env_int("ECL_RUNS", 3);
    return static_cast<std::size_t>(std::max<std::int64_t>(1, r));
  }();
  return runs;
}

std::size_t scaled(std::size_t paper_size, std::size_t floor) {
  const double s = static_cast<double>(paper_size) * scale_factor();
  return std::max(floor, static_cast<std::size_t>(s));
}

}  // namespace ecl
