#include "support/timer.hpp"

#include <algorithm>
#include <cmath>

namespace ecl {

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid),
                   samples.end());
  double hi = samples[mid];
  if (samples.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples) acc += s;
  return acc / static_cast<double>(samples.size());
}

double geomean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples) acc += std::log(s);
  return std::exp(acc / static_cast<double>(samples.size()));
}

}  // namespace ecl
