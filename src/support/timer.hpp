#ifndef ECL_SUPPORT_TIMER_HPP
#define ECL_SUPPORT_TIMER_HPP

// Wall-clock timing and small run-statistics helpers used by benchmarks and
// the evaluation harness (median-of-N runs, as in the paper's methodology).

#include <chrono>
#include <cstddef>
#include <vector>

namespace ecl {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Median of a sample (the paper reports the median of 9 runs).
double median(std::vector<double> samples);

/// Arithmetic mean. Returns 0 for empty input.
double mean(const std::vector<double>& samples);

/// Geometric mean. All inputs must be > 0; returns 0 for empty input.
double geomean(const std::vector<double>& samples);

/// Runs `fn` `runs` times and returns the median wall-clock seconds.
template <typename Fn>
double median_seconds(std::size_t runs, Fn&& fn) {
  std::vector<double> t;
  t.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    Timer timer;
    fn();
    t.push_back(timer.seconds());
  }
  return median(std::move(t));
}

}  // namespace ecl

#endif  // ECL_SUPPORT_TIMER_HPP
