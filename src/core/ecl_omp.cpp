#include "core/ecl_omp.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "graph/condensation.hpp"

namespace ecl::scc {
namespace {

/// Relaxed monotonic store on a plain uint32 slot (the paper's atomic-free
/// max write, expressed with atomic_ref to stay defined behavior).
bool store_max(std::uint32_t& slot, std::uint32_t value) noexcept {
  std::atomic_ref<std::uint32_t> ref(slot);
  if (value > ref.load(std::memory_order_relaxed)) {
    ref.store(value, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::uint32_t load_relaxed(const std::uint32_t& slot) noexcept {
  return std::atomic_ref<const std::uint32_t>(slot).load(std::memory_order_relaxed);
}

}  // namespace

SccResult ecl_omp(const Digraph& g, const EclOmpOptions& opts) {
  const vid n = g.num_vertices();
  SccResult result;
  if (n == 0) return result;

  const int saved_threads = omp_get_max_threads();
  if (opts.num_threads > 0) omp_set_num_threads(static_cast<int>(opts.num_threads));

  // Edge-phase schedule (DESIGN.md §11): equal contiguous spans per thread
  // (schedule(static)) when edge_balanced, or the classic device layout of
  // thread-cyclic 512-edge chunks (schedule(static, 512)) for the ablation
  // baseline. Routed through schedule(runtime) so both loops stay one loop.
  omp_sched_t saved_sched;
  int saved_chunk;
  omp_get_schedule(&saved_sched, &saved_chunk);
  omp_set_schedule(omp_sched_static, opts.edge_balanced ? 0 : 512);

  std::vector<graph::Edge> edges;
  edges.reserve(g.num_edges());
  for (vid u = 0; u < n; ++u) {
    for (vid v : g.out_neighbors(u)) edges.push_back({u, v});
  }
  std::vector<graph::Edge> next_edges(edges.size());

  std::vector<std::uint32_t> in(n);
  std::vector<std::uint32_t> out(n);
  // Frontier gating (the CPU translation of the device gate, DESIGN.md §10):
  // epoch[v] is the last round any signature of v moved. An edge whose
  // endpoints are both quiescent since before the previous round is already
  // at its fixpoint and is skipped.
  std::vector<std::uint32_t> epoch(opts.frontier_gating ? n : 0, 0);
  std::uint32_t round = 0;
  std::vector<vid> labels(n, graph::kInvalidVid);
  std::uint64_t labeled = 0;
  const std::uint64_t guard = static_cast<std::uint64_t>(n) + 2;

  auto stamp = [&](vid v, std::uint32_t r) noexcept {
    std::atomic_ref<std::uint32_t>(epoch[v]).store(r, std::memory_order_relaxed);
  };

  // The full per-edge update, shared between the round-scheduled loop and
  // the chain chaser so both apply the identical rule.
  auto apply_edge = [&](vid u, vid v, std::uint32_t r) noexcept {
    bool moved = false;
    std::uint32_t ov = load_relaxed(out[v]);
    if (opts.path_compression) ov = load_relaxed(out[ov]);
    if (ov > load_relaxed(out[u]) && store_max(out[u], ov)) {
      if (opts.frontier_gating) stamp(u, r);
      moved = true;
    }
    std::uint32_t iu = load_relaxed(in[u]);
    if (opts.path_compression) iu = load_relaxed(in[iu]);
    if (iu > load_relaxed(in[v]) && store_max(in[v], iu)) {
      if (opts.frontier_gating) stamp(v, r);
      moved = true;
    }
    return moved;
  };

  // Chain chasing (the CPU translation of the device lever, DESIGN.md §15):
  // degree-one successor/predecessor maps over the CURRENT edge list, so a
  // chase never walks an edge Phase 3 has removed. Rebuilt each outer
  // iteration, after the compaction.
  constexpr vid kNone = graph::kInvalidVid;
  constexpr vid kMany = graph::kInvalidVid - 1;
  std::vector<vid> succ, pred;
  auto build_chains = [&] {
    succ.assign(n, kNone);
    pred.assign(n, kNone);
    for (const auto& [u, v] : edges) {
      succ[u] = (succ[u] == kNone) ? v : kMany;
      pred[v] = (pred[v] == kNone) ? u : kMany;
    }
  };

  while (labeled < n) {
    if (++result.metrics.outer_iterations > guard)
      throw std::logic_error("ecl_omp: outer loop exceeded iteration guard (internal bug)");

    // Phase 1: initialize signatures of unlabeled vertices.
    ++round;
#pragma omp parallel for schedule(static)
    for (vid v = 0; v < n; ++v) {
      if (labels[v] == graph::kInvalidVid) {
        in[v] = out[v] = v;
        if (opts.frontier_gating) epoch[v] = round;
      }
    }

    if (opts.chain_chasing) build_chains();

    // Phase 2: propagate maxima to a fixed point.
    bool updated = true;
    while (updated) {
      updated = false;
      ++result.metrics.propagation_rounds;
      const std::uint32_t r = ++round;
      std::uint64_t skipped = 0;
      std::uint64_t chains = 0, steps = 0, longest = 0;
#pragma omp parallel for schedule(runtime) reduction(|| : updated) \
    reduction(+ : skipped, chains, steps) reduction(max : longest)
      for (std::size_t i = 0; i < edges.size(); ++i) {
        const auto [u, v] = edges[i];
        if (opts.frontier_gating && load_relaxed(epoch[u]) + 1 < r &&
            load_relaxed(epoch[v]) + 1 < r) {
          ++skipped;
          continue;
        }
        const bool moved = apply_edge(u, v, r);
        if (moved && opts.chain_chasing) {
          // Forward down v's successor chain, then backward up u's
          // predecessor chain, one shared budget (mirrors chase_chain in
          // core/propagate.hpp).
          std::uint32_t chase_budget = opts.chain_cap;
          std::uint64_t moved_links = 0;
          vid c = v;
          while (chase_budget != 0) {
            const vid w = succ[c];
            if (w >= kMany) break;
            --chase_budget;
            if (!apply_edge(c, w, r)) break;
            ++moved_links;
            c = w;
            if (c == v) break;  // pure cycle: one lap saturates it
          }
          c = u;
          while (chase_budget != 0) {
            const vid w = pred[c];
            if (w >= kMany) break;
            --chase_budget;
            if (!apply_edge(w, c, r)) break;
            ++moved_links;
            c = w;
            if (c == u) break;
          }
          if (moved_links != 0) {
            ++chains;
            steps += moved_links;
            longest = std::max(longest, moved_links);
          }
        }
        updated = updated || moved;
      }
      result.metrics.edges_processed += edges.size() - skipped + steps;
      result.metrics.edges_skipped += skipped;
      if (skipped > 0) ++result.metrics.frontier_rounds;
      result.metrics.chains_collapsed += chains;
      result.metrics.chain_steps += steps;
      result.metrics.max_chain_len = std::max(result.metrics.max_chain_len, longest);
    }

    // Detect: vin == vout identifies the component (§3.2.1).
    std::uint64_t found = 0;
#pragma omp parallel for schedule(static) reduction(+ : found)
    for (vid v = 0; v < n; ++v) {
      if (labels[v] == graph::kInvalidVid && in[v] == out[v]) {
        labels[v] = in[v];
        ++found;
      }
    }
    labeled += found;
    if (found == 0)
      throw std::logic_error("ecl_omp: iteration made no progress (internal bug)");

    // Phase 3: compact the surviving edges into the spare worklist.
    std::atomic<std::size_t> next_size{0};
#pragma omp parallel for schedule(runtime)
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto [u, v] = edges[i];
      if (in[u] != in[v] || out[u] != out[v]) continue;
      if (opts.remove_scc_edges && labels[u] != graph::kInvalidVid) continue;
      next_edges[next_size.fetch_add(1, std::memory_order_relaxed)] = edges[i];
    }
    const std::size_t new_size = next_size.load(std::memory_order_relaxed);
    result.metrics.edges_removed += edges.size() - new_size;
    edges.swap(next_edges);
    edges.resize(new_size);
    next_edges.resize(std::max(next_edges.size(), new_size));
  }

  omp_set_schedule(saved_sched, saved_chunk);
  if (opts.num_threads > 0) omp_set_num_threads(saved_threads);

  result.labels = std::move(labels);
  std::vector<vid> dense(result.labels.begin(), result.labels.end());
  result.num_components = graph::normalize_labels(dense);
  return result;
}

}  // namespace ecl::scc
