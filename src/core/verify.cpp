#include "core/verify.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "graph/condensation.hpp"

namespace ecl::scc {
namespace {

VerifyReport fail(std::string message) { return {false, std::move(message)}; }

}  // namespace

VerifyReport verify_scc(const Digraph& g, std::span<const vid> labels) {
  const vid n = g.num_vertices();
  if (labels.size() != n) return fail("label count != vertex count");

  std::vector<vid> dense(labels.begin(), labels.end());
  vid k = 0;
  try {
    k = graph::normalize_labels(dense);
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  // Group members by component.
  std::vector<vid> count(k, 0);
  for (vid c : dense) ++count[c];
  std::vector<eid> start(k + 1, 0);
  for (vid c = 0; c < k; ++c) start[c + 1] = start[c] + count[c];
  std::vector<vid> members(n);
  {
    std::vector<eid> cursor(start.begin(), start.end() - 1);
    for (vid v = 0; v < n; ++v) members[cursor[dense[v]]++] = v;
  }

  // (1) Each class must be strongly connected: BFS within the class from
  // its first member, in both directions, must cover the class.
  const Digraph rev = g.reverse();
  std::vector<vid> seen(n, graph::kInvalidVid);  // component id whose BFS reached v
  std::vector<vid> frontier;
  auto class_covered = [&](const Digraph& graph_dir, vid comp, std::uint32_t tag_shift) {
    const eid lo = start[comp];
    const eid hi = start[comp + 1];
    if (hi - lo <= 1) return true;
    const vid source = members[lo];
    // Encode direction in the tag so forward/backward passes don't collide.
    const vid tag = static_cast<vid>((static_cast<std::uint64_t>(comp) << 1 | tag_shift) + 1);
    frontier.clear();
    frontier.push_back(source);
    seen[source] = tag;
    vid covered = 1;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (vid w : graph_dir.out_neighbors(frontier[i])) {
        if (dense[w] == comp && seen[w] != tag) {
          seen[w] = tag;
          frontier.push_back(w);
          ++covered;
        }
      }
    }
    return covered == static_cast<vid>(hi - lo);
  };

  for (vid comp = 0; comp < k; ++comp) {
    if (!class_covered(g, comp, 0)) {
      std::ostringstream msg;
      msg << "component " << comp << " is not strongly connected (forward)";
      return fail(msg.str());
    }
  }
  std::fill(seen.begin(), seen.end(), graph::kInvalidVid);
  for (vid comp = 0; comp < k; ++comp) {
    if (!class_covered(rev, comp, 1)) {
      std::ostringstream msg;
      msg << "component " << comp << " is not strongly connected (backward)";
      return fail(msg.str());
    }
  }

  // (2) Maximality: the condensation must be acyclic.
  const Digraph cond = graph::condensation(g, dense, k);
  if (!graph::is_dag(cond))
    return fail("condensation has a cycle: two components are mutually reachable");

  return {};
}

VerifyReport verify_against(std::span<const vid> labels, std::span<const vid> oracle) {
  if (!same_partition(labels, oracle)) return fail("labeling disagrees with oracle partition");
  return {};
}

VerifyReport verify_max_id_labels(std::span<const vid> labels) {
  // label value must be (a) a member of the class and (b) the max member.
  std::vector<vid> max_member(labels.size(), 0);
  for (std::size_t v = 0; v < labels.size(); ++v) {
    const vid label = labels[v];
    if (label >= labels.size()) return fail("label is not a vertex ID");
    max_member[label] = std::max<vid>(max_member[label], static_cast<vid>(v));
  }
  for (std::size_t v = 0; v < labels.size(); ++v) {
    const vid label = labels[v];
    if (labels[label] != label) return fail("label value is not in its own class");
    if (max_member[label] != label) return fail("label is not the max vertex ID of its class");
  }
  return {};
}

}  // namespace ecl::scc
