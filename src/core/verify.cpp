#include "core/verify.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>
#include <vector>

#include "graph/condensation.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ecl::scc {
namespace {

VerifyReport fail(std::string message) { return {false, std::move(message)}; }

}  // namespace

VerifyReport verify_scc(const Digraph& g, std::span<const vid> labels) {
  const vid n = g.num_vertices();
  if (labels.size() != n) return fail("label count != vertex count");

  std::vector<vid> dense(labels.begin(), labels.end());
  vid k = 0;
  try {
    k = graph::normalize_labels(dense);
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  // Group members by component.
  std::vector<vid> count(k, 0);
  for (vid c : dense) ++count[c];
  std::vector<eid> start(k + 1, 0);
  for (vid c = 0; c < k; ++c) start[c + 1] = start[c] + count[c];
  std::vector<vid> members(n);
  {
    std::vector<eid> cursor(start.begin(), start.end() - 1);
    for (vid v = 0; v < n; ++v) members[cursor[dense[v]]++] = v;
  }

  // (1) Each class must be strongly connected: BFS within the class from
  // its first member, in both directions, must cover the class.
  const Digraph rev = g.reverse();
  std::vector<vid> seen(n, graph::kInvalidVid);  // component id whose BFS reached v
  std::vector<vid> frontier;
  auto class_covered = [&](const Digraph& graph_dir, vid comp, std::uint32_t tag_shift) {
    const eid lo = start[comp];
    const eid hi = start[comp + 1];
    if (hi - lo <= 1) return true;
    const vid source = members[lo];
    // Encode direction in the tag so forward/backward passes don't collide.
    const vid tag = static_cast<vid>((static_cast<std::uint64_t>(comp) << 1 | tag_shift) + 1);
    frontier.clear();
    frontier.push_back(source);
    seen[source] = tag;
    vid covered = 1;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (vid w : graph_dir.out_neighbors(frontier[i])) {
        if (dense[w] == comp && seen[w] != tag) {
          seen[w] = tag;
          frontier.push_back(w);
          ++covered;
        }
      }
    }
    return covered == static_cast<vid>(hi - lo);
  };

  for (vid comp = 0; comp < k; ++comp) {
    if (!class_covered(g, comp, 0)) {
      std::ostringstream msg;
      msg << "component " << comp << " is not strongly connected (forward)";
      return fail(msg.str());
    }
  }
  std::fill(seen.begin(), seen.end(), graph::kInvalidVid);
  for (vid comp = 0; comp < k; ++comp) {
    if (!class_covered(rev, comp, 1)) {
      std::ostringstream msg;
      msg << "component " << comp << " is not strongly connected (backward)";
      return fail(msg.str());
    }
  }

  // (2) Maximality: the condensation must be acyclic.
  const Digraph cond = graph::condensation(g, dense, k);
  if (!graph::is_dag(cond))
    return fail("condensation has a cycle: two components are mutually reachable");

  return {};
}

VerifyReport verify_against(std::span<const vid> labels, std::span<const vid> oracle) {
  if (!same_partition(labels, oracle)) return fail("labeling disagrees with oracle partition");
  return {};
}

CertifyReport certify_scc(const Digraph& g, std::span<const vid> labels,
                          const CertifyOptions& opts) {
  Timer timer;
  CertifyReport report;
  auto reject = [&](std::string message) {
    report.ok = false;
    report.message = std::move(message);
    report.seconds = timer.seconds();
    return report;
  };

  const vid n = g.num_vertices();
  if (labels.size() != n) return reject("certify: label count != vertex count");

  // Completeness + canonical form: every vertex labeled with a vertex ID
  // whose own label is itself (label values are class representatives).
  for (vid v = 0; v < n; ++v) {
    const vid label = labels[v];
    if (label >= n) return reject("certify: unlabeled vertex or non-vertex label value");
    if (labels[label] != label) return reject("certify: label value is not in its own class");
  }
  if (opts.require_max_id_labels) {
    const VerifyReport max_id = verify_max_id_labels(labels);
    if (!max_id.ok) return reject("certify: " + max_id.message);
  }

  // Dense renumber + member grouping (same CSR-of-classes layout as
  // verify_scc, kept O(V)).
  std::vector<vid> dense(labels.begin(), labels.end());
  vid k = 0;
  try {
    k = graph::normalize_labels(dense);
  } catch (const std::exception& e) {
    return reject(std::string("certify: ") + e.what());
  }
  report.classes = k;

  std::vector<vid> count(k, 0);
  for (vid c : dense) ++count[c];
  std::vector<eid> start(k + 1, 0);
  for (vid c = 0; c < k; ++c) start[c + 1] = start[c] + count[c];
  std::vector<vid> members(n);
  {
    std::vector<eid> cursor(start.begin(), start.end() - 1);
    for (vid v = 0; v < n; ++v) members[cursor[dense[v]]++] = v;
  }

  // Class coverage, parallel over classes. The visited mark is fused INTO
  // the dense label array instead of a separate `seen` vector: class c's
  // members hold c while unvisited and c + k once reached (comp ids live in
  // [0, k), marks in [k, 2k) — disjoint). The BFS inner loop then costs ONE
  // random load per edge instead of two, which matters because the certifier
  // runs on every served result (the ≤5% fault-free overhead contract in
  // bench_chaos_recovery). The backward sweep walks marked -> unmarked, so
  // a class that passes both directions leaves `dense` exactly as it found
  // it — the Kahn stage below reads it afterwards. Classes partition the
  // vertex set and each class's BFS writes only its own members' slots, so
  // concurrent class traversals never touch the same slot.
  std::optional<Digraph> rev_local;
  if (!opts.reverse_hint) rev_local.emplace(g.reverse());
  const Digraph& rev = opts.reverse_hint ? *opts.reverse_hint : *rev_local;
  std::atomic<vid> failed_class{graph::kInvalidVid};

  // Cross-class in-edge counts for the Kahn stage below, piggybacked on the
  // backward sweep: it already scans every in-edge of every multi-member
  // class, and the class of the far endpoint is the value the BFS loads
  // anyway, so counting costs one extra compare per edge instead of a
  // separate O(E) pass. Accumulated in a class-local counter (one slot
  // store per class, race-free under the class-parallel sweep).
  std::vector<eid> indegree(k, 0);

  auto class_covered = [&](const Digraph& graph_dir, vid comp, vid unvisited, vid visited,
                           std::vector<vid>& frontier, bool count_cross) {
    const eid lo = start[comp];
    const eid hi = start[comp + 1];
    if (hi - lo <= 1) return true;
    const vid source = members[lo];
    frontier.clear();
    frontier.push_back(source);
    dense[source] = visited;
    vid covered = 1;
    eid cross = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (vid w : graph_dir.out_neighbors(frontier[i])) {
        const vid dw = dense[w];
        if (dw == unvisited) {
          dense[w] = visited;
          frontier.push_back(w);
          ++covered;
        } else if (count_cross && dw != visited) {
          ++cross;  // endpoint in another class (marked or not): cross edge
        }
      }
    }
    if (count_cross) indegree[comp] += cross;
    return covered == static_cast<vid>(hi - lo);
  };

  // forward = true marks (c -> c + k) along g; forward = false unmarks
  // (c + k -> c) along the reverse graph, counting cross in-edges as it
  // goes. A class that passes both directions leaves `dense` as it found it.
  auto sweep_classes = [&](bool forward) {
    const Digraph& graph_dir = forward ? g : rev;
#ifdef _OPENMP
#pragma omp parallel if (k > 64)
    {
      std::vector<vid> frontier;
#pragma omp for schedule(dynamic, 16)
      for (std::int64_t comp = 0; comp < static_cast<std::int64_t>(k); ++comp) {
        if (failed_class.load(std::memory_order_relaxed) != graph::kInvalidVid) continue;
        const vid c = static_cast<vid>(comp);
        if (!class_covered(graph_dir, c, forward ? c : c + k, forward ? c + k : c, frontier,
                           !forward)) {
          vid expected = graph::kInvalidVid;
          failed_class.compare_exchange_strong(expected, c, std::memory_order_relaxed);
        }
      }
    }
#else
    std::vector<vid> frontier;
    for (vid comp = 0; comp < k; ++comp) {
      if (failed_class.load(std::memory_order_relaxed) != graph::kInvalidVid) break;
      if (!class_covered(graph_dir, comp, forward ? comp : comp + k, forward ? comp + k : comp,
                         frontier, !forward))
        failed_class.store(comp, std::memory_order_relaxed);
    }
#endif
  };

  sweep_classes(true);
  if (failed_class.load(std::memory_order_relaxed) != graph::kInvalidVid) {
    std::ostringstream msg;
    msg << "certify: class " << failed_class.load() << " is not strongly connected (forward)";
    return reject(msg.str());
  }
  sweep_classes(false);
  if (failed_class.load(std::memory_order_relaxed) != graph::kInvalidVid) {
    std::ostringstream msg;
    msg << "certify: class " << failed_class.load() << " is not strongly connected (backward)";
    return reject(msg.str());
  }

  // Maximality: the condensation must be acyclic (a cycle means two
  // classes are mutually reachable and should have been one SCC — the
  // "merged labels stayed apart" corruption). Kahn's algorithm directly
  // over the cross-class edges of g: materializing the condensation graph
  // (allocate + dedup) costs about as much as both coverage sweeps
  // combined. Multi-member classes had their cross in-edges counted by the
  // backward sweep; singletons (skipped there) get a one-vertex scan here.
  // Parallel cross-edges just make the indegree an edge count; the zero
  // test fires exactly once per class either way.
  {
    for (vid c = 0; c < k; ++c) {
      if (start[c + 1] - start[c] != 1) continue;
      for (vid u : rev.out_neighbors(members[start[c]]))
        if (dense[u] != c) ++indegree[c];
    }
    std::vector<vid> order;
    order.reserve(k);
    for (vid c = 0; c < k; ++c)
      if (indegree[c] == 0) order.push_back(c);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const vid c = order[i];
      for (eid e = start[c]; e < start[c + 1]; ++e) {
        for (vid w : g.out_neighbors(members[e])) {
          const vid cw = dense[w];
          if (cw != c && --indegree[cw] == 0) order.push_back(cw);
        }
      }
    }
    if (order.size() != k)
      return reject("certify: condensation has a cycle (two classes mutually reachable)");
  }

  // Sampled witness pairs, certified by a class-confined traversal from a
  // RANDOM member (the coverage sweeps above always start from the first
  // member, so this exercises different source vertices and frontier
  // orders). Restricting the walk to the class is sound: for endpoints that
  // truly share an SCC, every vertex on a u->v path also lies on a cycle
  // through u and v and therefore belongs to the same SCC, so a witness path
  // never needs to leave the class — and staying inside it keeps each sample
  // O(class) instead of O(V + E), which is what holds the certifier under
  // the fault-free overhead budget (bench_chaos_recovery's third contract).
  if (opts.witness_samples > 0 && k > 0) {
    Rng rng(opts.seed);
    std::vector<vid> frontier;
    // Marks c -> c + k like the coverage sweeps, then restores from the
    // frontier (which holds exactly the marked vertices) so `dense` is
    // clean for the next sample. O(visited) per sample, not O(V).
    auto reaches_in_class = [&](const Digraph& graph_dir, vid comp, vid from, vid to) {
      frontier.clear();
      frontier.push_back(from);
      dense[from] = comp + k;
      bool found = false;
      for (std::size_t i = 0; i < frontier.size() && !found; ++i) {
        if (frontier[i] == to) {
          found = true;
          break;
        }
        for (vid w : graph_dir.out_neighbors(frontier[i])) {
          if (dense[w] == comp) {
            dense[w] = comp + k;
            frontier.push_back(w);
          }
        }
      }
      for (vid v : frontier) dense[v] = comp;
      return found;
    };
    for (std::size_t s = 0; s < opts.witness_samples; ++s) {
      const vid comp = static_cast<vid>(rng.bounded(k));
      const eid lo = start[comp];
      const eid hi = start[comp + 1];
      if (hi - lo <= 1) continue;  // singleton: nothing to witness
      const vid u = members[lo + rng.bounded(hi - lo)];
      vid w = members[lo + rng.bounded(hi - lo)];
      if (w == u) w = members[lo + (u == members[lo] ? 1 : 0)];
      ++report.witnesses;
      if (!reaches_in_class(g, comp, u, w) || !reaches_in_class(rev, comp, w, u)) {
        std::ostringstream msg;
        msg << "certify: witness pair (" << u << ", " << w << ") of class " << comp
            << " is not mutually reachable";
        return reject(msg.str());
      }
    }
  }

  report.seconds = timer.seconds();
  return report;
}

VerifyReport verify_max_id_labels(std::span<const vid> labels) {
  // label value must be (a) a member of the class and (b) the max member.
  std::vector<vid> max_member(labels.size(), 0);
  for (std::size_t v = 0; v < labels.size(); ++v) {
    const vid label = labels[v];
    if (label >= labels.size()) return fail("label is not a vertex ID");
    max_member[label] = std::max<vid>(max_member[label], static_cast<vid>(v));
  }
  for (std::size_t v = 0; v < labels.size(); ++v) {
    const vid label = labels[v];
    if (labels[label] != label) return fail("label value is not in its own class");
    if (max_member[label] != label) return fail("label is not the max vertex ID of its class");
  }
  return {};
}

}  // namespace ecl::scc
