#ifndef ECL_CORE_KOSARAJU_HPP
#define ECL_CORE_KOSARAJU_HPP

// Kosaraju-Sharir two-pass SCC algorithm: a second, independently coded
// oracle so the test suite never trusts a single reference implementation.

#include "core/result.hpp"

namespace ecl::scc {

/// Runs Kosaraju's algorithm (iterative DFS; labels are dense component
/// indices in topological order of the condensation).
SccResult kosaraju(const Digraph& g);

}  // namespace ecl::scc

#endif  // ECL_CORE_KOSARAJU_HPP
