#include "core/ecl_scc.hpp"

#include <memory>
#include <optional>

#include "core/propagate.hpp"
#include "core/tarjan.hpp"
#include "device/atomics.hpp"
#include "device/edge_partition.hpp"
#include "device/signature_store.hpp"
#include "device/worklist.hpp"
#include "graph/condensation.hpp"
#include "graph/degree_stats.hpp"
#include "graph/permute.hpp"
#include "graph/subgraph.hpp"
#include "support/timer.hpp"

namespace ecl::scc {
namespace {

using device::BlockContext;
using device::EdgeWorklist;
using device::SignatureStore;

/// Per-run state shared by the kernels.
struct EclState {
  EclState(const Digraph& g, const EclOptions& opts)
      : n(g.num_vertices()),
        sigs(n, opts.min_max_signatures, opts.padded_signatures),
        labels(n, graph::kInvalidVid),
        worklist(g) {}

  vid n;
  SignatureStore sigs;
  std::vector<vid> labels;
  EdgeWorklist worklist;
  /// Delayed-visibility fault hook; null unless the device injects it.
  device::FaultInjector* fault = nullptr;
  /// Global round clock for frontier gating (DESIGN.md §10): bumped by the
  /// control thread before each Phase-1 launch and each Phase-2 sweep, read
  /// by kernels via the captured per-launch value only.
  std::uint32_t round = 0;

  std::atomic<std::uint32_t> changed{0};
  std::atomic<std::uint64_t> labeled{0};
  std::atomic<std::uint64_t> edges_processed{0};
  std::atomic<std::uint64_t> edges_skipped{0};
  std::atomic<std::uint64_t> block_iterations{0};

  /// High-diameter lever state (DESIGN.md §15). The chain index is rebuilt
  /// lazily on the control thread (the worklist is frozen for the duration
  /// of a Phase 2) the first time a round is sparse enough to chase; the
  /// bag pointer is non-null only while a Phase-2 sweep with the hash-bag
  /// lever ARMED is on the device.
  detail::ChainIndex chain;
  bool chain_stale = true;  ///< worklist changed since the last chain build
  /// Worklist size at the last chain build: a build that found no links is
  /// kept authoritative until the worklist shrinks materially, so chainless
  /// graphs do not pay an O(m) rebuild every outer iteration.
  std::uint64_t chain_built_m = 0;
  /// Mover-bag storage, allocated once per solve and reused across outer
  /// iterations (a fresh round tag invalidates prior contents in O(1)).
  std::optional<device::HashBag> bag_store;
  device::HashBag* active_bag = nullptr;
  /// First-sweep active (non-gated) edge count of the current round — the
  /// density signal the §15 round-level adaptivity keys on.
  std::atomic<std::uint64_t> active_seen{0};
  std::atomic<std::uint64_t> chains_collapsed{0};
  std::atomic<std::uint64_t> chain_steps{0};
  std::atomic<std::uint64_t> max_chain_len{0};
  std::uint64_t hashbag_rounds = 0;  ///< control thread only
};

// The per-edge propagation bodies (monotone store dispatch, path
// compression, fault semantics) live in core/propagate.hpp, shared with the
// fleet's sharded engine (DESIGN.md §13) so both run the exact same update
// rule. These wrappers adapt them to the solver's EclState.

// --- Checkpointed resume (DESIGN.md §12) -----------------------------------
//
// Snapshots are taken only on the control thread at grid-barrier quiescent
// points (after a launch returns, before the next one), so signatures,
// labels, and the worklist are mutually consistent. The fixpoint is
// monotone, so replaying Phase 2 from any such snapshot reaches the same
// labeling an uninterrupted run would.

/// A checkpoint slot plus the sweep count accumulated since it was taken
/// (the work a resume replays — reported as SccMetrics::rounds_replayed).
struct CheckpointState {
  FixpointCheckpoint snap;
  std::uint64_t sweeps_since = 0;
};

void take_checkpoint(EclState& st, const EclOptions& opts, CheckpointState& ckpt,
                     std::uint64_t outer_iteration, SccMetrics& metrics) {
  FixpointCheckpoint& c = ckpt.snap;
  c.valid = true;
  c.outer_iteration = outer_iteration;
  c.labels = st.labels;
  const auto edges = st.worklist.edges();
  c.worklist.assign(edges.begin(), edges.end());
  const vid n = st.n;
  c.vin.resize(n);
  c.vout.resize(n);
  if (opts.min_max_signatures) {
    c.min_in.resize(n);
    c.min_out.resize(n);
  }
  for (vid v = 0; v < n; ++v) {
    c.vin[v] = st.sigs.vin(v).load(std::memory_order_relaxed);
    c.vout[v] = st.sigs.vout(v).load(std::memory_order_relaxed);
    if (opts.min_max_signatures) {
      c.min_in[v] = st.sigs.min_in(v).load(std::memory_order_relaxed);
      c.min_out[v] = st.sigs.min_out(v).load(std::memory_order_relaxed);
    }
  }
  ckpt.sweeps_since = 0;
  ++metrics.checkpoints_taken;
}

/// Restores the snapshot into the live state. Every vertex epoch is stamped
/// with the CURRENT round so the next sweep treats the whole worklist as
/// active under frontier gating (the snapshot predates the current clock).
void restore_checkpoint(EclState& st, const EclOptions& opts, const CheckpointState& ckpt) {
  const FixpointCheckpoint& c = ckpt.snap;
  st.labels = c.labels;
  st.worklist.reset(c.worklist);
  const vid n = st.n;
  std::uint64_t labeled = 0;
  for (vid v = 0; v < n; ++v) {
    st.sigs.vin(v).store(c.vin[v], std::memory_order_relaxed);
    st.sigs.vout(v).store(c.vout[v], std::memory_order_relaxed);
    if (opts.min_max_signatures) {
      st.sigs.min_in(v).store(c.min_in[v], std::memory_order_relaxed);
      st.sigs.min_out(v).store(c.min_out[v], std::memory_order_relaxed);
    }
    if (opts.frontier_gating) st.sigs.epoch(v).store(st.round, std::memory_order_relaxed);
    if (st.labels[v] != graph::kInvalidVid) ++labeled;
  }
  st.labeled.store(labeled, std::memory_order_relaxed);
  st.changed.store(0, std::memory_order_relaxed);
}

/// The solver's propagation view: signatures, fault hook, and (during a
/// bag-lever Phase-2 sweep) the mover bag. Built once per kernel block.
detail::SigView sig_view(EclState& st) noexcept {
  return {st.sigs, st.fault, st.active_bag};
}

// grid_size and for_each_owned live in core/propagate.hpp (shared with the
// fleet's per-shard kernels).
using detail::for_each_owned;
using detail::grid_size;

void phase1_init(EclState& st, device::Device& dev, const EclOptions& opts) {
  const std::uint64_t n = st.n;
  // Every re-initialized vertex is stamped with this round, so the first
  // Phase-2 sweep (round + 1) sees all of its edges as active.
  const std::uint32_t round = ++st.round;
  dev.launch(
      grid_size(dev, n, opts.persistent_threads),
      [&, round](const BlockContext& ctx) {
        ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
          for (std::uint64_t v = lo; v < hi; ++v) {
            if (st.labels[v] == graph::kInvalidVid) {
              st.sigs.vin(v).store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
              st.sigs.vout(v).store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
              if (opts.min_max_signatures) {
                st.sigs.min_in(v).store(static_cast<std::uint32_t>(v),
                                        std::memory_order_relaxed);
                st.sigs.min_out(v).store(static_cast<std::uint32_t>(v),
                                         std::memory_order_relaxed);
              }
              if (opts.frontier_gating)
                st.sigs.epoch(v).store(round, std::memory_order_relaxed);
            }
          }
        });
      },
      {.idempotent = true, .work_stealing = opts.work_stealing});
}

/// Runs the Phase-2 fixpoint. Returns false if the watchdog aborted it
/// (sweep budget exhausted or wall-clock expiry): signatures are then
/// unreliable and the caller must not label from them — but the last
/// checkpoint (if `ckpt` is non-null, snapshotted every
/// checkpoint.sweep_interval sweeps at the grid barrier) remains a sound
/// restart state.
bool phase2_propagate(EclState& st, device::Device& dev, const EclOptions& opts,
                      SccMetrics& metrics, FixpointWatchdog& watchdog, CheckpointState* ckpt,
                      std::uint64_t outer_iteration) {
  const auto edges = st.worklist.edges();
  const std::uint64_t m = edges.size();
  if (m == 0) return true;
  const unsigned blocks = grid_size(dev, m, opts.persistent_threads);
  const std::uint64_t budget = watchdog.phase2_round_budget();
  std::uint64_t rounds = 0;

  // Hash-bag sparse frontier (DESIGN.md §15). Every round the bag collects
  // the vertices whose signatures moved; when that set drops below
  // hashbag_density of the worklist, the next round gathers only the edges
  // incident to it instead of sweeping (and gate-checking) all m edges.
  // This visits exactly the edges the §10 gate would have processed — the
  // gate keeps an edge live iff an endpoint moved in the previous round,
  // and the bag records precisely those movers — so the fixpoint and labels
  // are unchanged; late deep-mesh rounds just stop paying O(m) per level.
  // Forced off under a phase2_hook: the hook's merges raise signatures the
  // bag never observed, so the mover set would be incomplete.
  const bool bag_enabled = opts.hashbag_frontier && !opts.phase2_hook;
  if (bag_enabled && !st.bag_store)
    st.bag_store.emplace(std::max<std::uint64_t>(256, m / 8));
  device::HashBag* const bag = bag_enabled ? &*st.bag_store : nullptr;
  st.active_bag = nullptr;
  std::vector<vid> frontier;
  // False forces a dense round: at entry (Phase 1 moved everything), after
  // bag saturation, and implicitly after a checkpoint resume (phase 2 is
  // re-entered fresh).
  bool frontier_known = false;
  // Round-level adaptivity (§15): both levers pay per-store / per-edge
  // overhead that only amortizes once the active frontier is sparse, so
  // every round keys off the PREVIOUS round's first-sweep active-edge
  // count. The bag is armed (mover inserts live) only below kArmFactor x
  // the sparse threshold; chases fire only below kChaseDensity. Round 1 is
  // always dense, unarmed, and unchased (last_active starts at m), and a
  // gating-off run never sees a sub-m count, so the levers idle there —
  // the §10 epoch gate is the densitometer. The incidence index is only
  // built once the sparse dip persists for a second round: a one-off dip
  // (circuit5M's single sparse round) must not pay the O(m) build.
  constexpr double kArmFactor = 4.0;
  std::uint64_t last_active = m;
  std::uint32_t sparse_streak = 0;
  // Arming that never converts into a sparse round is pure insert overhead
  // (circuit5M: the active count plateaus inside the armed band without
  // ever dipping below the sparse threshold). After kFutileArmLimit armed
  // rounds in a row whose harvest stayed dense, arming falls back to the
  // strict threshold: it re-engages only once the previous round was
  // already sparse enough that the very next harvest must pay off.
  constexpr std::uint32_t kFutileArmLimit = 4;
  std::uint32_t futile_arms = 0;
  // Sparse rounds under a tiny frontier skip the launch entirely and run on
  // the control thread — at that size the grid barrier costs more than the
  // work (the virtual-GPU analogue of a single-warp cleanup kernel).
  constexpr std::uint64_t kSerialSparseEdges = 8192;
  // Lazy incidence index over the frozen worklist (vertex -> indices of the
  // worklist edges touching it) plus per-edge round stamps so the gather
  // emits each active edge once even when both endpoints moved.
  std::vector<std::uint64_t> inc_off, inc_edges;
  std::vector<std::uint32_t> edge_round;
  std::vector<std::uint64_t> active;
  const auto build_incidence = [&] {
    inc_off.assign(static_cast<std::size_t>(st.n) + 1, 0);
    for (const graph::Edge& e : edges) {
      ++inc_off[static_cast<std::size_t>(e.src) + 1];
      ++inc_off[static_cast<std::size_t>(e.dst) + 1];
    }
    for (vid v = 0; v < st.n; ++v) inc_off[v + 1] += inc_off[v];
    inc_edges.resize(2 * m);
    std::vector<std::uint64_t> cursor(inc_off.begin(), inc_off.end() - 1);
    for (std::uint64_t i = 0; i < m; ++i) {
      inc_edges[cursor[edges[i].src]++] = i;
      inc_edges[cursor[edges[i].dst]++] = i;
    }
    edge_round.assign(m, 0);
  };
  for (;;) {
    if (++rounds > budget || watchdog.expired()) {
      watchdog.mark_stalled();
      st.active_bag = nullptr;
      return false;
    }
    st.changed.store(0, std::memory_order_relaxed);
    st.active_seen.store(0, std::memory_order_relaxed);
    ++metrics.propagation_rounds;
    // One round of the global clock per sweep. An edge is active when either
    // endpoint's signature moved in the previous round (epoch >= r - 1) or
    // this one; everything else is provably at the fixpoint already and is
    // skipped. Async in-block re-iterations share the sweep's round: stamps
    // of r keep their edges active across the inner iterations.
    const std::uint32_t r = ++st.round;
    const std::uint64_t processed_before = st.edges_processed.load(std::memory_order_relaxed);
    const std::uint64_t skipped_before = st.edges_skipped.load(std::memory_order_relaxed);
    const double arm_band = futile_arms >= kFutileArmLimit ? 1.0 : kArmFactor;
    const bool armed = bag_enabled &&
                       static_cast<double>(last_active) <
                           arm_band * opts.hashbag_density * static_cast<double>(m);
    st.active_bag = armed ? bag : nullptr;
    if (armed) bag->begin_round(r);

    bool chase_now = false;
    if (opts.chain_chasing &&
        static_cast<double>(last_active) < opts.chain_density * static_cast<double>(m)) {
      if (st.chain_stale) {
        // A build that found no links stays authoritative until the
        // worklist shrinks materially (>= 25%): rebuilding a chainless
        // worklist every outer iteration is O(m) of pure overhead
        // (circuit5M pays it in every lever config otherwise).
        const bool chainless_still = !st.chain.empty() && !st.chain.useful() &&
                                     m * 4 > st.chain_built_m * 3;
        if (!chainless_still) {
          st.chain.build(st.n, edges);
          st.chain_built_m = m;
          st.chain_stale = false;
        }
      }
      chase_now = !st.chain_stale && st.chain.useful();
    }

    const bool sparse_ok =
        bag_enabled && frontier_known &&
        static_cast<double>(frontier.size()) < opts.hashbag_density * static_cast<double>(m);
    sparse_streak = sparse_ok ? sparse_streak + 1 : 0;
    const bool sparse = sparse_ok && (sparse_streak >= 2 || !inc_off.empty());

    if (sparse) {
      if (inc_off.empty()) build_incidence();
      active.clear();
      for (const vid v : frontier) {
        for (std::uint64_t k = inc_off[v]; k < inc_off[static_cast<std::size_t>(v) + 1]; ++k) {
          const std::uint64_t i = inc_edges[k];
          if (edge_round[i] != r) {
            edge_round[i] = r;
            active.push_back(i);
          }
        }
      }
      // Edges the round never had to look at: the same quantity the dense
      // gate counts as skips.
      st.edges_skipped.fetch_add(m - active.size(), std::memory_order_relaxed);
      ++metrics.frontier_rounds;
      ++metrics.hashbag_rounds;
      ++st.hashbag_rounds;
      last_active = active.size();
      if (active.empty()) break;  // no mover touches a worklist edge: fixpoint

      if (active.size() <= kSerialSparseEdges) {
        const detail::SigView view = sig_view(st);
        std::uint64_t processed = 0, iters = 0;
        std::uint64_t chains = 0, steps = 0, longest = 0;
        bool overall = false, any;
        do {
          any = false;
          ++iters;
          for (const std::uint64_t i : active) {
            const graph::Edge e = edges[i];
            ++processed;
            bool moved = detail::propagate_edge(view, e, opts, r);
            if (opts.min_max_signatures)
              moved |= detail::propagate_edge_min(view, e, opts, r);
            if (moved && chase_now) {
              const detail::ChaseResult cr = detail::chase_chain(view, st.chain, e, opts, r);
              processed += cr.steps;
              if (cr.moved) {
                ++chains;
                steps += cr.moved;
                longest = std::max<std::uint64_t>(longest, cr.moved);
              }
            }
            any |= moved;
          }
          overall |= any;
        } while (opts.async_phase2 && any && iters < budget && !watchdog.expired());
        if (overall) st.changed.store(1, std::memory_order_relaxed);
        st.block_iterations.fetch_add(iters, std::memory_order_relaxed);
        st.edges_processed.fetch_add(processed, std::memory_order_relaxed);
        if (chains) {
          st.chains_collapsed.fetch_add(chains, std::memory_order_relaxed);
          st.chain_steps.fetch_add(steps, std::memory_order_relaxed);
          device::atomic_fetch_max_u64(st.max_chain_len, longest);
        }
      } else {
        const std::uint64_t a = active.size();
        const std::uint64_t* act = active.data();
        dev.launch(
            grid_size(dev, a, opts.persistent_threads),
            [&, r](const BlockContext& ctx) {
              const detail::SigView view = sig_view(st);
              std::uint64_t local_processed = 0;
              std::uint64_t local_assigned = 0;
              std::uint64_t local_chains = 0, local_steps = 0, local_longest = 0;
              bool local_changed;
              std::uint64_t local_iters = 0;
              do {
                local_changed = false;
                ++local_iters;
                for_each_owned(ctx, a, opts.edge_balanced,
                               [&](std::uint64_t lo, std::uint64_t hi) {
                  if (local_iters == 1) local_assigned += hi - lo;
                  for (std::uint64_t k = lo; k < hi; ++k) {
                    const graph::Edge e = edges[act[k]];
                    ++local_processed;
                    bool moved = detail::propagate_edge(view, e, opts, r);
                    if (opts.min_max_signatures)
                      moved |= detail::propagate_edge_min(view, e, opts, r);
                    if (moved && chase_now) {
                      const detail::ChaseResult cr =
                          detail::chase_chain(view, st.chain, e, opts, r);
                      local_processed += cr.steps;
                      if (cr.moved) {
                        ++local_chains;
                        local_steps += cr.moved;
                        local_longest = std::max<std::uint64_t>(local_longest, cr.moved);
                      }
                    }
                    local_changed |= moved;
                  }
                });
              } while (opts.async_phase2 && local_changed && local_iters < budget &&
                       !watchdog.expired());
              if (local_changed || (opts.async_phase2 && local_iters > 1))
                st.changed.store(1, std::memory_order_relaxed);
              st.block_iterations.fetch_add(local_iters, std::memory_order_relaxed);
              st.edges_processed.fetch_add(local_processed, std::memory_order_relaxed);
              if (local_chains) {
                st.chains_collapsed.fetch_add(local_chains, std::memory_order_relaxed);
                st.chain_steps.fetch_add(local_steps, std::memory_order_relaxed);
                device::atomic_fetch_max_u64(st.max_chain_len, local_longest);
              }
              dev.record_block_work(ctx.block_id, local_assigned);
            },
            {.idempotent = true, .work_stealing = opts.work_stealing});
      }
    } else {
      dev.launch(
          blocks,
          [&, r](const BlockContext& ctx) {
            const detail::SigView view = sig_view(st);
            std::uint64_t local_processed = 0;
            std::uint64_t local_skipped = 0;
            std::uint64_t local_assigned = 0;
            std::uint64_t local_active = 0;
            std::uint64_t local_chains = 0, local_steps = 0, local_longest = 0;
            bool local_changed;
            std::uint64_t local_iters = 0;
            do {
              local_changed = false;
              ++local_iters;
              for_each_owned(ctx, m, opts.edge_balanced,
                             [&](std::uint64_t lo, std::uint64_t hi) {
                if (local_iters == 1) local_assigned += hi - lo;
                for (std::uint64_t i = lo; i < hi; ++i) {
                  const graph::Edge e = edges[i];
                  if (opts.frontier_gating && st.sigs.epoch_of(e.src) + 1 < r &&
                      st.sigs.epoch_of(e.dst) + 1 < r) {
                    ++local_skipped;
                    continue;
                  }
                  // First-sweep (not re-iteration) active count: the round's
                  // frontier-density signal for the §15 adaptivity.
                  if (local_iters == 1) ++local_active;
                  ++local_processed;
                  bool moved = detail::propagate_edge(view, e, opts, r);
                  if (opts.min_max_signatures)
                    moved |= detail::propagate_edge_min(view, e, opts, r);
                  // Vertical granularity control (§15): the edge moved a
                  // signature; if its endpoints sit on a degree-one chain of
                  // the worklist, walk the chain locally instead of paying a
                  // grid barrier per link.
                  if (moved && chase_now) {
                    const detail::ChaseResult cr =
                        detail::chase_chain(view, st.chain, e, opts, r);
                    local_processed += cr.steps;
                    if (cr.moved) {
                      ++local_chains;
                      local_steps += cr.moved;
                      local_longest = std::max<std::uint64_t>(local_longest, cr.moved);
                    }
                  }
                  local_changed |= moved;
                }
              });
              // async_phase2: the block re-iterates its edges to a local fixed
              // point inside one launch (§3.3); sync mode does a single sweep.
              // The per-block sweep budget and the wall-clock check keep a
              // fault-suppressed fixpoint from spinning forever in-kernel.
            } while (opts.async_phase2 && local_changed && local_iters < budget &&
                     !watchdog.expired());
            if (local_changed || (opts.async_phase2 && local_iters > 1))
              st.changed.store(1, std::memory_order_relaxed);
            st.block_iterations.fetch_add(local_iters, std::memory_order_relaxed);
            st.edges_processed.fetch_add(local_processed, std::memory_order_relaxed);
            st.edges_skipped.fetch_add(local_skipped, std::memory_order_relaxed);
            st.active_seen.fetch_add(local_active, std::memory_order_relaxed);
            if (local_chains) {
              st.chains_collapsed.fetch_add(local_chains, std::memory_order_relaxed);
              st.chain_steps.fetch_add(local_steps, std::memory_order_relaxed);
              device::atomic_fetch_max_u64(st.max_chain_len, local_longest);
            }
            // The imbalance histogram measures ASSIGNMENT skew — the edges
            // this block owns per sweep, the quantity the edge-balance lever
            // controls. Async in-block re-iteration counts are a convergence
            // property with their own metric (block_iterations).
            dev.record_block_work(ctx.block_id, local_assigned);
          },
          {.idempotent = true, .work_stealing = opts.work_stealing});
      last_active = st.active_seen.load(std::memory_order_relaxed);
    }

    if (opts.frontier_gating || sparse) {
      const std::uint64_t processed =
          st.edges_processed.load(std::memory_order_relaxed) - processed_before;
      if (!sparse && st.edges_skipped.load(std::memory_order_relaxed) > skipped_before)
        ++metrics.frontier_rounds;
      // A shrinking active frontier is fixpoint progress even while labels
      // and worklist size are frozen mid-Phase-2; let the wall-clock
      // watchdog see it (it ignores flat or growing frontiers).
      watchdog.observe_phase2_round(processed);
    }

    // Fleet fixpoint hook (DESIGN.md §13): at this grid barrier an external
    // coordinator may merge boundary signatures into the store and replace
    // the local movement flag with a GLOBAL quiescence verdict, keeping the
    // sweep loop alive while any peer shard still moves.
    bool sweep_again = st.changed.load(std::memory_order_relaxed) != 0;
    if (opts.phase2_hook) sweep_again = opts.phase2_hook(sweep_again, st.round);

    // Harvest the mover bag at the grid barrier: it becomes the candidate
    // frontier for the next round. An unarmed round tracked nothing (the
    // frontier was too dense to be worth it); a saturated bag means the
    // mover set is incomplete — either way the next round falls back dense.
    if (bag_enabled) {
      if (!armed) {
        frontier_known = false;
      } else if (bag->saturated()) {
        frontier_known = false;
        bag->grow(bag->capacity() * 2);
      } else {
        const std::span<const vid> items = bag->items();
        frontier.assign(items.begin(), items.end());
        frontier_known = true;
        if (frontier.size() * 2 > bag->capacity()) bag->grow(frontier.size() * 4);
      }
      if (armed) {
        const bool paid_off =
            frontier_known && static_cast<double>(frontier.size()) <
                                  opts.hashbag_density * static_cast<double>(m);
        futile_arms = paid_off ? 0 : futile_arms + 1;
      }
    }
    if (!sweep_again) break;

    // Another sweep is coming: this grid barrier is a quiescent point, so
    // snapshot here if the cadence is due. Signatures mid-Phase-2 are a
    // legal restart state (monotone fixpoint); labels and the worklist are
    // frozen until Phase 3, so they are consistent with the signatures.
    if (ckpt) {
      ++ckpt->sweeps_since;
      if (opts.checkpoint.sweep_interval > 0 &&
          ckpt->sweeps_since >= opts.checkpoint.sweep_interval)
        take_checkpoint(st, opts, *ckpt, outer_iteration, metrics);
    }
  }
  st.active_bag = nullptr;  // storage persists in EclState; inserts stop here
  return true;
}

void detect_components(EclState& st, device::Device& dev, const EclOptions& opts) {
  const std::uint64_t n = st.n;
  // Idempotent: already-labeled vertices are skipped, so a spurious replay
  // finds nothing new to label and adds 0 to the labeled counter.
  dev.launch(
      grid_size(dev, n, opts.persistent_threads),
      [&](const BlockContext& ctx) {
        std::uint64_t local = 0;
        ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
          for (std::uint64_t v = lo; v < hi; ++v) {
            if (st.labels[v] != graph::kInvalidVid) continue;
            const std::uint32_t i = st.sigs.vin(v).load(std::memory_order_relaxed);
            const std::uint32_t o = st.sigs.vout(v).load(std::memory_order_relaxed);
            if (i == o) {
              st.labels[v] = i;
              ++local;
              continue;
            }
            if (opts.min_max_signatures) {
              // A vertex whose min signatures agree is in the MIN SCC of its
              // cluster; label it by that (minimum) member.
              const std::uint32_t mi = st.sigs.min_in(v).load(std::memory_order_relaxed);
              const std::uint32_t mo = st.sigs.min_out(v).load(std::memory_order_relaxed);
              if (mi == mo) {
                st.labels[v] = mi;
                ++local;
              }
            }
          }
        });
        st.labeled.fetch_add(local, std::memory_order_relaxed);
      },
      {.idempotent = true, .work_stealing = opts.work_stealing});
}

void phase3_remove_edges(EclState& st, device::Device& dev, const EclOptions& opts,
                         SccMetrics& metrics) {
  const auto edges = st.worklist.edges();
  const std::uint64_t m = edges.size();
  if (m == 0) return;
  dev.launch(
      grid_size(dev, m, opts.persistent_threads),
      [&](const BlockContext& ctx) {
        // Chunked reservation (DESIGN.md §10): survivors are staged per block
        // and committed with one cursor fetch_add per chunk. The appender's
        // destructor flushes the partial last chunk before the grid barrier.
        EdgeWorklist::ChunkAppender chunk(st.worklist);
        std::uint64_t local_examined = 0;
        for_each_owned(ctx, m, opts.edge_balanced, [&](std::uint64_t lo, std::uint64_t hi) {
          local_examined += hi - lo;
          for (std::uint64_t i = lo; i < hi; ++i) {
            const graph::Edge e = edges[i];
            const std::uint32_t iu = st.sigs.vin(e.src).load(std::memory_order_relaxed);
            const std::uint32_t iv = st.sigs.vin(e.dst).load(std::memory_order_relaxed);
            const std::uint32_t ou = st.sigs.vout(e.src).load(std::memory_order_relaxed);
            const std::uint32_t ov = st.sigs.vout(e.dst).load(std::memory_order_relaxed);
            if (iu != iv || ou != ov) continue;  // spans SCCs: drop
            if (opts.min_max_signatures) {
              const std::uint32_t miu = st.sigs.min_in(e.src).load(std::memory_order_relaxed);
              const std::uint32_t miv = st.sigs.min_in(e.dst).load(std::memory_order_relaxed);
              const std::uint32_t mou = st.sigs.min_out(e.src).load(std::memory_order_relaxed);
              const std::uint32_t mov = st.sigs.min_out(e.dst).load(std::memory_order_relaxed);
              if (miu != miv || mou != mov) continue;  // min signatures disagree
            }
            if (opts.remove_scc_edges && st.labels[e.src] != graph::kInvalidVid)
              continue;  // inside a completed SCC: no longer needed (§3.3)
            if (opts.chunked_worklist)
              chunk.push(e);
            else
              st.worklist.push_next(e);
          }
        });
        dev.record_block_work(ctx.block_id, local_examined);
      },
      {.idempotent = false, .work_stealing = opts.work_stealing});
  const std::size_t before = st.worklist.size();
  st.worklist.swap_buffers();
  metrics.edges_removed += before - st.worklist.size();
}

/// Completes a partial labeling by running Tarjan on the residual subgraph
/// of still-unlabeled vertices. The labeled set at any break point is a
/// union of complete SCCs (detect_components only labels from converged
/// signatures, and a stalled Phase 2 breaks before detection), so the
/// residual is closed under strong connectivity and can be solved
/// independently. Each residual component is labeled by its maximum
/// parent-graph member, preserving the max-ID labeling invariant (§3.2.1).
void serial_fallback(const Digraph& g, SccResult& result) {
  const vid n = g.num_vertices();
  std::vector<std::uint8_t> active(n, 0);
  std::uint64_t residual = 0;
  for (vid v = 0; v < n; ++v) {
    if (result.labels[v] == graph::kInvalidVid) {
      active[v] = 1;
      ++residual;
    }
  }
  result.metrics.serial_fallback = true;
  result.metrics.fallback_vertices = residual;
  if (residual == 0) return;
  const graph::Subgraph sub = graph::induced_subgraph(g, active);
  const SccResult serial = tarjan(sub.graph);
  std::vector<vid> comp_max(serial.num_components, 0);
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
    vid& top = comp_max[serial.labels[i]];
    top = std::max(top, sub.to_parent[i]);
  }
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i)
    result.labels[sub.to_parent[i]] = comp_max[serial.labels[i]];
}

/// Translates labels computed on the hub-reordered graph back to original
/// vertex IDs, renaming every component by its maximum ORIGINAL member so
/// the result is bit-identical to an unreordered run (§3.2.1's max-ID
/// naming is a function of the graph, not the schedule). Unlabeled
/// vertices (kInvalidVid, possible under kReturnError) pass through.
void remap_labels_to_original(SccResult& result, const std::vector<vid>& perm) {
  const vid n = static_cast<vid>(perm.size());
  std::vector<vid> name(n, graph::kInvalidVid);  // component (new-ID name) -> max original member
  for (vid v = 0; v < n; ++v) {
    const vid c = result.labels[perm[v]];
    if (c == graph::kInvalidVid) continue;
    if (name[c] == graph::kInvalidVid || v > name[c]) name[c] = v;
  }
  std::vector<vid> original(n, graph::kInvalidVid);
  for (vid v = 0; v < n; ++v) {
    const vid c = result.labels[perm[v]];
    if (c != graph::kInvalidVid) original[v] = name[c];
  }
  result.labels = std::move(original);
}

/// Cheap pre-scan predictor for the hub-reorder lever (the first step of the
/// per-graph adaptive policy engine, ROADMAP item 1). Relabeling pays off
/// when propagation is hub-coupled: the degree distribution must be skewed
/// THROUGHOUT, so that clustering hubs co-locates the signature slots the
/// sweep keeps re-reading. It loses when a heavy tail sits on an otherwise
/// near-regular graph (cage14, circuit5M: matrix/circuit topologies with a
/// few high-degree outliers) — the permutation + remap overhead buys
/// nothing because most edges never touch a hub. The separating feature,
/// measured across the BENCH_loadbalance suite, is the coefficient of
/// variation of the out-degree: reorder winners (wikipedia 1.95, wiki-Talk
/// 1.90, web-Google 1.87, com-Youtube 2.51 — 1.3x to 2.2x on the reorder
/// axis) all sit >= 1.87, losers (cage14 1.46, circuit5M 1.56 — 0.91x and
/// 0.92x) below 1.6; 1.75 splits the gap. Hub-mass fractions (top log2
/// buckets / total edge mass) were tried first and do NOT separate: both
/// classes carry only 1-5% of their edge mass in the hubs.
bool hub_reorder_profitable(const graph::DegreeStats& stats) {
  if (!graph::looks_power_law(stats)) return false;  // meshes: permutation = identity
  if (stats.avg <= 0.0) return false;
  return stats.stddev_out / stats.avg >= 1.75;
}

}  // namespace

EclOptions ecl_all_optimizations_off() {
  EclOptions opts;
  opts.async_phase2 = false;
  opts.remove_scc_edges = false;
  opts.path_compression = false;
  opts.persistent_threads = false;
  return opts;
}

EclOptions ecl_hotpath_levers_off() {
  EclOptions opts = ecl_loadbalance_levers_off();
  opts.chunked_worklist = false;
  opts.frontier_gating = false;
  opts.padded_signatures = false;
  return opts;
}

EclOptions ecl_loadbalance_levers_off() {
  EclOptions opts = ecl_highdiameter_levers_off();
  opts.work_stealing = false;
  opts.edge_balanced = false;
  opts.hub_reorder = false;
  return opts;
}

EclOptions ecl_highdiameter_levers_off() {
  EclOptions opts;
  opts.chain_chasing = false;
  opts.hashbag_frontier = false;
  return opts;
}

SccResult ecl_scc(const Digraph& g, device::Device& dev, const EclOptions& opts) {
  // Hub-clustering reorder (DESIGN.md §11): run on the relabeled graph,
  // then remap labels back. Skipped whenever the permutation would be the
  // identity (uniform-degree inputs) and under min_max_signatures (see
  // EclOptions::hub_reorder).
  // The degree-skew pre-scan gates the lever per graph: an O(n) stats pass
  // predicts whether hub relabeling will pay for the permutation + remap.
  // Out-degree-only stats keep the rejected path cheap — the full variant's
  // O(m) in-degree pass showed up as ~10% on small fast-solving graphs.
  // Labels are unaffected either way — the remap already guarantees
  // bit-identity with the unreordered run.
  if (opts.hub_reorder && !opts.min_max_signatures &&
      hub_reorder_profitable(graph::compute_out_degree_stats(g))) {
    const std::vector<vid> perm = graph::hub_clustering_permutation(g);
    if (!perm.empty()) {
      const Digraph reordered = graph::apply_permutation(g, perm);
      EclOptions inner = opts;
      inner.hub_reorder = false;
      SccResult result = ecl_scc(reordered, dev, inner);
      remap_labels_to_original(result, perm);
      result.metrics.hub_reorder_applied = true;
      return result;
    }
  }

  const vid n = g.num_vertices();
  SccResult result;
  if (n == 0) return result;

  EclState st(g, opts);
  if (dev.fault_active() &&
      (dev.fault().plan().delayed_visibility || dev.fault().plan().lost_update))
    st.fault = &dev.fault();
  const std::uint64_t launches_before = dev.stats().kernel_launches;

  const std::uint64_t guard =
      opts.max_outer_iterations ? opts.max_outer_iterations : static_cast<std::uint64_t>(n) + 2;
  // FixpointWatchdog holds atomics, so a resume re-arms it by re-emplacing:
  // same config (and thus the same ABSOLUTE deadline — the budget is shared
  // across all resume attempts), fresh stall counters.
  std::optional<FixpointWatchdog> watchdog;
  watchdog.emplace(opts.watchdog, n);

  // Recovery ladder rung 1 (DESIGN.md §12): on a stall or overflow, restore
  // the last quiescent snapshot and replay, at most max_resumes times.
  CheckpointState ckpt;
  const bool checkpointing = opts.checkpoint.enabled;
  unsigned resumes_left = checkpointing ? opts.checkpoint.max_resumes : 0;
  bool skip_phase1 = false;  // set on resume: Phase 1 would reset the restored signatures
  Timer run_timer;
  double first_trip_seconds = -1.0;
  std::uint64_t dropped_edges_total = 0;

  auto note_trip = [&] {
    if (first_trip_seconds < 0) first_trip_seconds = run_timer.seconds();
  };
  // Restores the last checkpoint and re-arms the watchdog. Returns false
  // when the ladder rung is exhausted (no snapshot, no resumes left, or the
  // absolute deadline has expired — replaying would only burn the budget).
  auto try_resume = [&]() -> bool {
    if (!ckpt.snap.valid || resumes_left == 0) return false;
    if (watchdog->deadline_expired()) return false;
    --resumes_left;
    ++result.metrics.resumes;
    result.metrics.rounds_replayed += ckpt.sweeps_since;
    ckpt.sweeps_since = 0;
    dropped_edges_total += st.worklist.dropped_edges();
    restore_checkpoint(st, opts, ckpt);
    skip_phase1 = true;
    watchdog.emplace(opts.watchdog, n);
    return true;
  };

  while (st.labeled.load(std::memory_order_relaxed) < n) {
    if (++result.metrics.outer_iterations > guard) {
      result.error = {SccStatus::kIterationGuard,
                      "ecl_scc: outer loop exceeded iteration guard"};
      break;
    }
    if (watchdog->deadline_expired()) {
      watchdog->mark_stalled();
      ++result.metrics.watchdog_trips;
      note_trip();
      result.error = {SccStatus::kDeadlineExceeded,
                      "ecl_scc: request deadline expired between iterations"};
      break;
    }

    Timer phase_timer;
    if (skip_phase1) {
      // Resumed: the restored signatures ARE the phase-1-initialized state
      // of the snapshot's iteration (possibly advanced by later sweeps);
      // re-running Phase 1 would reset every unlabeled signature to self
      // and discard the checkpointed propagation progress.
      skip_phase1 = false;
    } else {
      phase1_init(st, dev, opts);
    }
    // Outer-boundary snapshot, AFTER Phase 1: labels and worklist are at
    // their iteration-start values and signatures are freshly initialized,
    // so restoring here and skipping Phase 1 replays this iteration
    // exactly. (Snapshotting before Phase 1 would capture the PREVIOUS
    // iteration's converged signatures, from which Phase 2 would trivially
    // re-converge with no new labels — an instant stall.)
    if (checkpointing)
      take_checkpoint(st, opts, ckpt, result.metrics.outer_iterations, result.metrics);
    result.metrics.phase1_seconds += phase_timer.seconds();
    phase_timer.reset();
    // Chain chasing (§15) walks only CURRENT-worklist edges; mark the
    // degree-one index stale here so fresh iterations AND resumed ones (a
    // restored checkpoint replaces the worklist) rebuild it — lazily, on
    // the first round sparse enough to chase.
    st.chain_stale = true;
    const bool converged =
        phase2_propagate(st, dev, opts, result.metrics, *watchdog,
                         checkpointing ? &ckpt : nullptr, result.metrics.outer_iterations);
    result.metrics.phase2_seconds += phase_timer.seconds();
    if (!converged) {
      ++result.metrics.watchdog_trips;
      note_trip();
      const bool deadline = watchdog->deadline_expired();
      if (!deadline && try_resume()) continue;
      // A deadline trip aborts the same way a stall does but is reported
      // distinctly: the run was cancelled, not necessarily stuck.
      result.error =
          deadline ? SccError{SccStatus::kDeadlineExceeded,
                              "ecl_scc: request deadline expired mid-fixpoint"}
                   : SccError{SccStatus::kStalled,
                              "ecl_scc: phase-2 propagation exceeded its sweep budget"};
      break;
    }
    phase_timer.reset();
    detect_components(st, dev, opts);
    phase3_remove_edges(st, dev, opts, result.metrics);
    result.metrics.phase3_seconds += phase_timer.seconds();

    if (st.worklist.overflowed()) {
      // The next-iteration worklist dropped edges; labels assigned so far
      // came from the intact pre-overflow worklist and remain sound, but
      // further propagation over the truncated edge set would not be.
      note_trip();
      const std::uint64_t dropped = st.worklist.dropped_edges();
      if (try_resume()) continue;
      result.error = {SccStatus::kWorklistOverflow,
                      "ecl_scc: edge worklist overflowed during phase 3 (" +
                          std::to_string(dropped) + " edges dropped)"};
      break;
    }
    if (watchdog->observe_iteration(st.labeled.load(std::memory_order_relaxed),
                                    st.worklist.size())) {
      ++result.metrics.watchdog_trips;
      note_trip();
      if (try_resume()) continue;
      result.error = {SccStatus::kStalled,
                      "ecl_scc: no new labels and no worklist shrinkage for " +
                          std::to_string(opts.watchdog.stall_rounds) + " iterations"};
      break;
    }
  }

  result.metrics.edges_processed = st.edges_processed.load(std::memory_order_relaxed);
  result.metrics.edges_skipped = st.edges_skipped.load(std::memory_order_relaxed);
  result.metrics.edges_dropped = dropped_edges_total + st.worklist.dropped_edges();
  result.metrics.kernel_launches = dev.stats().kernel_launches - launches_before;
  result.metrics.block_iterations = st.block_iterations.load(std::memory_order_relaxed);
  dev.stats().block_iterations += result.metrics.block_iterations;
  result.metrics.chains_collapsed = st.chains_collapsed.load(std::memory_order_relaxed);
  result.metrics.chain_steps = st.chain_steps.load(std::memory_order_relaxed);
  result.metrics.max_chain_len = st.max_chain_len.load(std::memory_order_relaxed);
  result.metrics.hashbag_rounds = st.hashbag_rounds;
  dev.stats().chains_collapsed += result.metrics.chains_collapsed;
  dev.stats().hashbag_rounds += result.metrics.hashbag_rounds;

  result.labels = std::move(st.labels);
  if (result.error && opts.stall_policy == StallPolicy::kSerialFallback)
    serial_fallback(g, result);
  if (!result.error || result.metrics.serial_fallback) {
    std::vector<vid> dense(result.labels.begin(), result.labels.end());
    result.num_components = graph::normalize_labels(dense);
  }
  // Time-to-good-result after the FIRST fault manifestation, including any
  // serial fallback: the quantity bench_chaos_recovery compares between the
  // resume path and the discard-and-recompute path.
  if (first_trip_seconds >= 0)
    result.metrics.recovery_seconds = run_timer.seconds() - first_trip_seconds;
  return result;
}

device::Device& shared_device() {
  static device::Device dev(device::a100_profile());
  return dev;
}

SccResult ecl_scc(const Digraph& g, const EclOptions& opts) {
  return ecl_scc(g, shared_device(), opts);
}

}  // namespace ecl::scc
