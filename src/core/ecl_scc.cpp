#include "core/ecl_scc.hpp"

#include <memory>

#include "core/tarjan.hpp"
#include "device/atomics.hpp"
#include "device/worklist.hpp"
#include "graph/condensation.hpp"
#include "graph/subgraph.hpp"
#include "support/timer.hpp"

namespace ecl::scc {
namespace {

using device::AtomicU32;
using device::BlockContext;
using device::EdgeWorklist;

/// Per-run state shared by the kernels.
struct EclState {
  EclState(const Digraph& g, bool with_min)
      : n(g.num_vertices()),
        vin(std::make_unique<AtomicU32[]>(n)),
        vout(std::make_unique<AtomicU32[]>(n)),
        min_in(with_min ? std::make_unique<AtomicU32[]>(n) : nullptr),
        min_out(with_min ? std::make_unique<AtomicU32[]>(n) : nullptr),
        labels(n, graph::kInvalidVid),
        worklist(g) {}

  vid n;
  std::unique_ptr<AtomicU32[]> vin;
  std::unique_ptr<AtomicU32[]> vout;
  std::unique_ptr<AtomicU32[]> min_in;   ///< 4-signature variant only
  std::unique_ptr<AtomicU32[]> min_out;  ///< 4-signature variant only
  std::vector<vid> labels;
  EdgeWorklist worklist;
  /// Delayed-visibility fault hook; null unless the device injects it.
  device::FaultInjector* fault = nullptr;

  std::atomic<std::uint32_t> changed{0};
  std::atomic<std::uint64_t> labeled{0};
  std::atomic<std::uint64_t> edges_processed{0};
  std::atomic<std::uint64_t> block_iterations{0};
};

/// Signature store dispatch: the paper's atomic-free monotonic store or a
/// CAS atomic max (§3.4). Under the delayed-visibility fault a store may be
/// deferred: dropped this round but reported as movement when it would have
/// changed the slot, so the propagation loop retries until it lands —
/// exactly the lost-update tolerance the monotonic store relies on.
bool store_max(EclState& st, AtomicU32& slot, std::uint32_t value,
               bool use_atomic_max) noexcept {
  if (st.fault && st.fault->defer_store())
    return value > slot.load(std::memory_order_relaxed);
  return use_atomic_max ? device::atomic_fetch_max(slot, value)
                        : device::racy_store_max(slot, value);
}

bool store_min(EclState& st, AtomicU32& slot, std::uint32_t value,
               bool use_atomic_max) noexcept {
  if (st.fault && st.fault->defer_store())
    return value < slot.load(std::memory_order_relaxed);
  return use_atomic_max ? device::atomic_fetch_min(slot, value)
                        : device::racy_store_min(slot, value);
}

/// Minimum-ID propagation for one edge (the 4-signature variant): the
/// exact mirror of the maximum propagation, including path compression
/// (min_in[min_in[u]] <= min_in[u] stays an ancestor-or-self of v).
bool propagate_edge_min(EclState& st, graph::Edge e, const EclOptions& opts) noexcept {
  const vid u = e.src;
  const vid v = e.dst;
  bool any = false;

  std::uint32_t ov = st.min_out[v].load(std::memory_order_relaxed);
  if (opts.path_compression) ov = st.min_out[ov].load(std::memory_order_relaxed);
  const std::uint32_t ou = st.min_out[u].load(std::memory_order_relaxed);
  if (ov < ou) {
    if (opts.path_compression && ou != u) {
      const std::uint32_t iu = st.min_in[u].load(std::memory_order_relaxed);
      any |= store_min(st, st.min_in[ou], iu, opts.use_atomic_max);
    }
    any |= store_min(st, st.min_out[u], ov, opts.use_atomic_max);
  }

  std::uint32_t iu = st.min_in[u].load(std::memory_order_relaxed);
  if (opts.path_compression) iu = st.min_in[iu].load(std::memory_order_relaxed);
  const std::uint32_t iv = st.min_in[v].load(std::memory_order_relaxed);
  if (iu < iv) {
    if (opts.path_compression && iv != v) {
      const std::uint32_t ovv = st.min_out[v].load(std::memory_order_relaxed);
      any |= store_min(st, st.min_out[iv], ovv, opts.use_atomic_max);
    }
    any |= store_min(st, st.min_in[v], iu, opts.use_atomic_max);
  }
  return any;
}

/// Phase-2 body for one edge (u -> v). Returns true if any signature moved.
bool propagate_edge(EclState& st, graph::Edge e, const EclOptions& opts) noexcept {
  const vid u = e.src;
  const vid v = e.dst;
  bool any = false;

  // out[u] <- max(out[u], out[v])   (compressed: out[out[v]], §3.3)
  std::uint32_t ov = st.vout[v].load(std::memory_order_relaxed);
  if (opts.path_compression) ov = st.vout[ov].load(std::memory_order_relaxed);
  const std::uint32_t ou = st.vout[u].load(std::memory_order_relaxed);
  if (ov > ou) {
    if (opts.path_compression && ou != u) {
      // Lift: ou is a descendant of u, so u's ancestors are ou's ancestors.
      const std::uint32_t iu = st.vin[u].load(std::memory_order_relaxed);
      any |= store_max(st, st.vin[ou], iu, opts.use_atomic_max);
    }
    any |= store_max(st, st.vout[u], ov, opts.use_atomic_max);
  }

  // in[v] <- max(in[v], in[u])   (compressed: in[in[u]])
  std::uint32_t iu = st.vin[u].load(std::memory_order_relaxed);
  if (opts.path_compression) iu = st.vin[iu].load(std::memory_order_relaxed);
  const std::uint32_t iv = st.vin[v].load(std::memory_order_relaxed);
  if (iu > iv) {
    if (opts.path_compression && iv != v) {
      // Lift: iv is an ancestor of v, so v's descendants are iv's descendants.
      const std::uint32_t ovv = st.vout[v].load(std::memory_order_relaxed);
      any |= store_max(st, st.vout[iv], ovv, opts.use_atomic_max);
    }
    any |= store_max(st, st.vin[v], iu, opts.use_atomic_max);
  }
  return any;
}

/// Grid size for an edge/vertex kernel under the selected threading mode.
unsigned grid_size(device::Device& dev, std::uint64_t items, bool persistent) {
  if (persistent) return std::min<std::uint64_t>(dev.profile().resident_blocks(),
                                                 std::max<std::uint64_t>(1, dev.blocks_for(items)));
  return dev.blocks_for(items);
}

void phase1_init(EclState& st, device::Device& dev, const EclOptions& opts) {
  const std::uint64_t n = st.n;
  dev.launch(
      grid_size(dev, n, opts.persistent_threads),
      [&](const BlockContext& ctx) {
        ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
          for (std::uint64_t v = lo; v < hi; ++v) {
            if (st.labels[v] == graph::kInvalidVid) {
              st.vin[v].store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
              st.vout[v].store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
              if (opts.min_max_signatures) {
                st.min_in[v].store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
                st.min_out[v].store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
              }
            }
          }
        });
      },
      {.idempotent = true});
}

/// Runs the Phase-2 fixpoint. Returns false if the watchdog aborted it
/// (sweep budget exhausted or wall-clock expiry): signatures are then
/// unreliable and the caller must not label from them.
bool phase2_propagate(EclState& st, device::Device& dev, const EclOptions& opts,
                      SccMetrics& metrics, FixpointWatchdog& watchdog) {
  const auto edges = st.worklist.edges();
  const std::uint64_t m = edges.size();
  if (m == 0) return true;
  const unsigned blocks = grid_size(dev, m, opts.persistent_threads);
  const std::uint64_t budget = watchdog.phase2_round_budget();
  std::uint64_t rounds = 0;

  for (;;) {
    if (++rounds > budget || watchdog.expired()) {
      watchdog.mark_stalled();
      return false;
    }
    st.changed.store(0, std::memory_order_relaxed);
    ++metrics.propagation_rounds;

    dev.launch(
        blocks,
        [&](const BlockContext& ctx) {
          std::uint64_t local_processed = 0;
          bool local_changed;
          std::uint64_t local_iters = 0;
          do {
            local_changed = false;
            ++local_iters;
            ctx.for_each_chunk(m, [&](std::uint64_t lo, std::uint64_t hi) {
              for (std::uint64_t i = lo; i < hi; ++i) {
                local_changed |= propagate_edge(st, edges[i], opts);
                if (opts.min_max_signatures)
                  local_changed |= propagate_edge_min(st, edges[i], opts);
              }
              local_processed += hi - lo;
            });
            // async_phase2: the block re-iterates its edges to a local fixed
            // point inside one launch (§3.3); sync mode does a single sweep.
            // The per-block sweep budget and the wall-clock check keep a
            // fault-suppressed fixpoint from spinning forever in-kernel.
          } while (opts.async_phase2 && local_changed && local_iters < budget &&
                   !watchdog.expired());
          if (local_changed || (opts.async_phase2 && local_iters > 1))
            st.changed.store(1, std::memory_order_relaxed);
          st.block_iterations.fetch_add(local_iters, std::memory_order_relaxed);
          st.edges_processed.fetch_add(local_processed, std::memory_order_relaxed);
        },
        {.idempotent = true});

    if (st.changed.load(std::memory_order_relaxed) == 0) break;
  }
  return true;
}

void detect_components(EclState& st, device::Device& dev, const EclOptions& opts) {
  const std::uint64_t n = st.n;
  // Idempotent: already-labeled vertices are skipped, so a spurious replay
  // finds nothing new to label and adds 0 to the labeled counter.
  dev.launch(
      grid_size(dev, n, opts.persistent_threads),
      [&](const BlockContext& ctx) {
        std::uint64_t local = 0;
        ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
          for (std::uint64_t v = lo; v < hi; ++v) {
            if (st.labels[v] != graph::kInvalidVid) continue;
            const std::uint32_t i = st.vin[v].load(std::memory_order_relaxed);
            const std::uint32_t o = st.vout[v].load(std::memory_order_relaxed);
            if (i == o) {
              st.labels[v] = i;
              ++local;
              continue;
            }
            if (opts.min_max_signatures) {
              // A vertex whose min signatures agree is in the MIN SCC of its
              // cluster; label it by that (minimum) member.
              const std::uint32_t mi = st.min_in[v].load(std::memory_order_relaxed);
              const std::uint32_t mo = st.min_out[v].load(std::memory_order_relaxed);
              if (mi == mo) {
                st.labels[v] = mi;
                ++local;
              }
            }
          }
        });
        st.labeled.fetch_add(local, std::memory_order_relaxed);
      },
      {.idempotent = true});
}

void phase3_remove_edges(EclState& st, device::Device& dev, const EclOptions& opts,
                         SccMetrics& metrics) {
  const auto edges = st.worklist.edges();
  const std::uint64_t m = edges.size();
  if (m == 0) return;
  dev.launch(grid_size(dev, m, opts.persistent_threads), [&](const BlockContext& ctx) {
    ctx.for_each_chunk(m, [&](std::uint64_t lo, std::uint64_t hi) {
      for (std::uint64_t i = lo; i < hi; ++i) {
        const graph::Edge e = edges[i];
        const std::uint32_t iu = st.vin[e.src].load(std::memory_order_relaxed);
        const std::uint32_t iv = st.vin[e.dst].load(std::memory_order_relaxed);
        const std::uint32_t ou = st.vout[e.src].load(std::memory_order_relaxed);
        const std::uint32_t ov = st.vout[e.dst].load(std::memory_order_relaxed);
        if (iu != iv || ou != ov) continue;  // spans SCCs: drop
        if (opts.min_max_signatures) {
          const std::uint32_t miu = st.min_in[e.src].load(std::memory_order_relaxed);
          const std::uint32_t miv = st.min_in[e.dst].load(std::memory_order_relaxed);
          const std::uint32_t mou = st.min_out[e.src].load(std::memory_order_relaxed);
          const std::uint32_t mov = st.min_out[e.dst].load(std::memory_order_relaxed);
          if (miu != miv || mou != mov) continue;  // min signatures disagree
        }
        if (opts.remove_scc_edges && st.labels[e.src] != graph::kInvalidVid)
          continue;  // inside a completed SCC: no longer needed (§3.3)
        st.worklist.push_next(e);
      }
    });
  });
  const std::size_t before = st.worklist.size();
  st.worklist.swap_buffers();
  metrics.edges_removed += before - st.worklist.size();
}

/// Completes a partial labeling by running Tarjan on the residual subgraph
/// of still-unlabeled vertices. The labeled set at any break point is a
/// union of complete SCCs (detect_components only labels from converged
/// signatures, and a stalled Phase 2 breaks before detection), so the
/// residual is closed under strong connectivity and can be solved
/// independently. Each residual component is labeled by its maximum
/// parent-graph member, preserving the max-ID labeling invariant (§3.2.1).
void serial_fallback(const Digraph& g, SccResult& result) {
  const vid n = g.num_vertices();
  std::vector<std::uint8_t> active(n, 0);
  std::uint64_t residual = 0;
  for (vid v = 0; v < n; ++v) {
    if (result.labels[v] == graph::kInvalidVid) {
      active[v] = 1;
      ++residual;
    }
  }
  result.metrics.serial_fallback = true;
  result.metrics.fallback_vertices = residual;
  if (residual == 0) return;
  const graph::Subgraph sub = graph::induced_subgraph(g, active);
  const SccResult serial = tarjan(sub.graph);
  std::vector<vid> comp_max(serial.num_components, 0);
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
    vid& top = comp_max[serial.labels[i]];
    top = std::max(top, sub.to_parent[i]);
  }
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i)
    result.labels[sub.to_parent[i]] = comp_max[serial.labels[i]];
}

}  // namespace

EclOptions ecl_all_optimizations_off() {
  EclOptions opts;
  opts.async_phase2 = false;
  opts.remove_scc_edges = false;
  opts.path_compression = false;
  opts.persistent_threads = false;
  return opts;
}

SccResult ecl_scc(const Digraph& g, device::Device& dev, const EclOptions& opts) {
  const vid n = g.num_vertices();
  SccResult result;
  if (n == 0) return result;

  EclState st(g, opts.min_max_signatures);
  if (dev.fault_active() && dev.fault().plan().delayed_visibility) st.fault = &dev.fault();
  const std::uint64_t launches_before = dev.stats().kernel_launches;

  const std::uint64_t guard =
      opts.max_outer_iterations ? opts.max_outer_iterations : static_cast<std::uint64_t>(n) + 2;
  FixpointWatchdog watchdog(opts.watchdog, n);

  while (st.labeled.load(std::memory_order_relaxed) < n) {
    if (++result.metrics.outer_iterations > guard) {
      result.error = {SccStatus::kIterationGuard,
                      "ecl_scc: outer loop exceeded iteration guard"};
      break;
    }
    if (watchdog.deadline_expired()) {
      watchdog.mark_stalled();
      ++result.metrics.watchdog_trips;
      result.error = {SccStatus::kDeadlineExceeded,
                      "ecl_scc: request deadline expired between iterations"};
      break;
    }

    Timer phase_timer;
    phase1_init(st, dev, opts);
    result.metrics.phase1_seconds += phase_timer.seconds();
    phase_timer.reset();
    const bool converged = phase2_propagate(st, dev, opts, result.metrics, watchdog);
    result.metrics.phase2_seconds += phase_timer.seconds();
    if (!converged) {
      ++result.metrics.watchdog_trips;
      // A deadline trip aborts the same way a stall does but is reported
      // distinctly: the run was cancelled, not necessarily stuck.
      result.error =
          watchdog.deadline_expired()
              ? SccError{SccStatus::kDeadlineExceeded,
                         "ecl_scc: request deadline expired mid-fixpoint"}
              : SccError{SccStatus::kStalled,
                         "ecl_scc: phase-2 propagation exceeded its sweep budget"};
      break;
    }
    phase_timer.reset();
    detect_components(st, dev, opts);
    phase3_remove_edges(st, dev, opts, result.metrics);
    result.metrics.phase3_seconds += phase_timer.seconds();

    if (st.worklist.overflowed()) {
      // The next-iteration worklist dropped edges; labels assigned so far
      // came from the intact pre-overflow worklist and remain sound, but
      // further propagation over the truncated edge set would not be.
      result.error = {SccStatus::kWorklistOverflow,
                      "ecl_scc: edge worklist overflowed during phase 3"};
      break;
    }
    if (watchdog.observe_iteration(st.labeled.load(std::memory_order_relaxed),
                                   st.worklist.size())) {
      ++result.metrics.watchdog_trips;
      result.error = {SccStatus::kStalled,
                      "ecl_scc: no new labels and no worklist shrinkage for " +
                          std::to_string(opts.watchdog.stall_rounds) + " iterations"};
      break;
    }
  }

  result.metrics.edges_processed = st.edges_processed.load(std::memory_order_relaxed);
  result.metrics.kernel_launches = dev.stats().kernel_launches - launches_before;
  result.metrics.block_iterations = st.block_iterations.load(std::memory_order_relaxed);
  dev.stats().block_iterations += result.metrics.block_iterations;

  result.labels = std::move(st.labels);
  if (result.error && opts.stall_policy == StallPolicy::kSerialFallback)
    serial_fallback(g, result);
  if (!result.error || result.metrics.serial_fallback) {
    std::vector<vid> dense(result.labels.begin(), result.labels.end());
    result.num_components = graph::normalize_labels(dense);
  }
  return result;
}

device::Device& shared_device() {
  static device::Device dev(device::a100_profile());
  return dev;
}

SccResult ecl_scc(const Digraph& g, const EclOptions& opts) {
  return ecl_scc(g, shared_device(), opts);
}

}  // namespace ecl::scc
