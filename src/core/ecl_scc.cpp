#include "core/ecl_scc.hpp"

#include <memory>
#include <optional>

#include "core/propagate.hpp"
#include "core/tarjan.hpp"
#include "device/atomics.hpp"
#include "device/edge_partition.hpp"
#include "device/signature_store.hpp"
#include "device/worklist.hpp"
#include "graph/condensation.hpp"
#include "graph/permute.hpp"
#include "graph/subgraph.hpp"
#include "support/timer.hpp"

namespace ecl::scc {
namespace {

using device::BlockContext;
using device::EdgeWorklist;
using device::SignatureStore;

/// Per-run state shared by the kernels.
struct EclState {
  EclState(const Digraph& g, const EclOptions& opts)
      : n(g.num_vertices()),
        sigs(n, opts.min_max_signatures, opts.padded_signatures),
        labels(n, graph::kInvalidVid),
        worklist(g) {}

  vid n;
  SignatureStore sigs;
  std::vector<vid> labels;
  EdgeWorklist worklist;
  /// Delayed-visibility fault hook; null unless the device injects it.
  device::FaultInjector* fault = nullptr;
  /// Global round clock for frontier gating (DESIGN.md §10): bumped by the
  /// control thread before each Phase-1 launch and each Phase-2 sweep, read
  /// by kernels via the captured per-launch value only.
  std::uint32_t round = 0;

  std::atomic<std::uint32_t> changed{0};
  std::atomic<std::uint64_t> labeled{0};
  std::atomic<std::uint64_t> edges_processed{0};
  std::atomic<std::uint64_t> edges_skipped{0};
  std::atomic<std::uint64_t> block_iterations{0};
};

// The per-edge propagation bodies (monotone store dispatch, path
// compression, fault semantics) live in core/propagate.hpp, shared with the
// fleet's sharded engine (DESIGN.md §13) so both run the exact same update
// rule. These wrappers adapt them to the solver's EclState.

// --- Checkpointed resume (DESIGN.md §12) -----------------------------------
//
// Snapshots are taken only on the control thread at grid-barrier quiescent
// points (after a launch returns, before the next one), so signatures,
// labels, and the worklist are mutually consistent. The fixpoint is
// monotone, so replaying Phase 2 from any such snapshot reaches the same
// labeling an uninterrupted run would.

/// A checkpoint slot plus the sweep count accumulated since it was taken
/// (the work a resume replays — reported as SccMetrics::rounds_replayed).
struct CheckpointState {
  FixpointCheckpoint snap;
  std::uint64_t sweeps_since = 0;
};

void take_checkpoint(EclState& st, const EclOptions& opts, CheckpointState& ckpt,
                     std::uint64_t outer_iteration, SccMetrics& metrics) {
  FixpointCheckpoint& c = ckpt.snap;
  c.valid = true;
  c.outer_iteration = outer_iteration;
  c.labels = st.labels;
  const auto edges = st.worklist.edges();
  c.worklist.assign(edges.begin(), edges.end());
  const vid n = st.n;
  c.vin.resize(n);
  c.vout.resize(n);
  if (opts.min_max_signatures) {
    c.min_in.resize(n);
    c.min_out.resize(n);
  }
  for (vid v = 0; v < n; ++v) {
    c.vin[v] = st.sigs.vin(v).load(std::memory_order_relaxed);
    c.vout[v] = st.sigs.vout(v).load(std::memory_order_relaxed);
    if (opts.min_max_signatures) {
      c.min_in[v] = st.sigs.min_in(v).load(std::memory_order_relaxed);
      c.min_out[v] = st.sigs.min_out(v).load(std::memory_order_relaxed);
    }
  }
  ckpt.sweeps_since = 0;
  ++metrics.checkpoints_taken;
}

/// Restores the snapshot into the live state. Every vertex epoch is stamped
/// with the CURRENT round so the next sweep treats the whole worklist as
/// active under frontier gating (the snapshot predates the current clock).
void restore_checkpoint(EclState& st, const EclOptions& opts, const CheckpointState& ckpt) {
  const FixpointCheckpoint& c = ckpt.snap;
  st.labels = c.labels;
  st.worklist.reset(c.worklist);
  const vid n = st.n;
  std::uint64_t labeled = 0;
  for (vid v = 0; v < n; ++v) {
    st.sigs.vin(v).store(c.vin[v], std::memory_order_relaxed);
    st.sigs.vout(v).store(c.vout[v], std::memory_order_relaxed);
    if (opts.min_max_signatures) {
      st.sigs.min_in(v).store(c.min_in[v], std::memory_order_relaxed);
      st.sigs.min_out(v).store(c.min_out[v], std::memory_order_relaxed);
    }
    if (opts.frontier_gating) st.sigs.epoch(v).store(st.round, std::memory_order_relaxed);
    if (st.labels[v] != graph::kInvalidVid) ++labeled;
  }
  st.labeled.store(labeled, std::memory_order_relaxed);
  st.changed.store(0, std::memory_order_relaxed);
}

bool propagate_edge_min(EclState& st, graph::Edge e, const EclOptions& opts,
                        std::uint32_t round) noexcept {
  return detail::propagate_edge_min({st.sigs, st.fault}, e, opts, round);
}

bool propagate_edge(EclState& st, graph::Edge e, const EclOptions& opts,
                    std::uint32_t round) noexcept {
  return detail::propagate_edge({st.sigs, st.fault}, e, opts, round);
}

// grid_size and for_each_owned live in core/propagate.hpp (shared with the
// fleet's per-shard kernels).
using detail::for_each_owned;
using detail::grid_size;

void phase1_init(EclState& st, device::Device& dev, const EclOptions& opts) {
  const std::uint64_t n = st.n;
  // Every re-initialized vertex is stamped with this round, so the first
  // Phase-2 sweep (round + 1) sees all of its edges as active.
  const std::uint32_t round = ++st.round;
  dev.launch(
      grid_size(dev, n, opts.persistent_threads),
      [&, round](const BlockContext& ctx) {
        ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
          for (std::uint64_t v = lo; v < hi; ++v) {
            if (st.labels[v] == graph::kInvalidVid) {
              st.sigs.vin(v).store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
              st.sigs.vout(v).store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
              if (opts.min_max_signatures) {
                st.sigs.min_in(v).store(static_cast<std::uint32_t>(v),
                                        std::memory_order_relaxed);
                st.sigs.min_out(v).store(static_cast<std::uint32_t>(v),
                                         std::memory_order_relaxed);
              }
              if (opts.frontier_gating)
                st.sigs.epoch(v).store(round, std::memory_order_relaxed);
            }
          }
        });
      },
      {.idempotent = true, .work_stealing = opts.work_stealing});
}

/// Runs the Phase-2 fixpoint. Returns false if the watchdog aborted it
/// (sweep budget exhausted or wall-clock expiry): signatures are then
/// unreliable and the caller must not label from them — but the last
/// checkpoint (if `ckpt` is non-null, snapshotted every
/// checkpoint.sweep_interval sweeps at the grid barrier) remains a sound
/// restart state.
bool phase2_propagate(EclState& st, device::Device& dev, const EclOptions& opts,
                      SccMetrics& metrics, FixpointWatchdog& watchdog, CheckpointState* ckpt,
                      std::uint64_t outer_iteration) {
  const auto edges = st.worklist.edges();
  const std::uint64_t m = edges.size();
  if (m == 0) return true;
  const unsigned blocks = grid_size(dev, m, opts.persistent_threads);
  const std::uint64_t budget = watchdog.phase2_round_budget();
  std::uint64_t rounds = 0;

  for (;;) {
    if (++rounds > budget || watchdog.expired()) {
      watchdog.mark_stalled();
      return false;
    }
    st.changed.store(0, std::memory_order_relaxed);
    ++metrics.propagation_rounds;
    // One round of the global clock per sweep. An edge is active when either
    // endpoint's signature moved in the previous round (epoch >= r - 1) or
    // this one; everything else is provably at the fixpoint already and is
    // skipped. Async in-block re-iterations share the sweep's round: stamps
    // of r keep their edges active across the inner iterations.
    const std::uint32_t r = ++st.round;
    const std::uint64_t processed_before = st.edges_processed.load(std::memory_order_relaxed);
    const std::uint64_t skipped_before = st.edges_skipped.load(std::memory_order_relaxed);

    dev.launch(
        blocks,
        [&, r](const BlockContext& ctx) {
          std::uint64_t local_processed = 0;
          std::uint64_t local_skipped = 0;
          std::uint64_t local_assigned = 0;
          bool local_changed;
          std::uint64_t local_iters = 0;
          do {
            local_changed = false;
            ++local_iters;
            for_each_owned(ctx, m, opts.edge_balanced, [&](std::uint64_t lo, std::uint64_t hi) {
              if (local_iters == 1) local_assigned += hi - lo;
              for (std::uint64_t i = lo; i < hi; ++i) {
                const graph::Edge e = edges[i];
                if (opts.frontier_gating && st.sigs.epoch_of(e.src) + 1 < r &&
                    st.sigs.epoch_of(e.dst) + 1 < r) {
                  ++local_skipped;
                  continue;
                }
                ++local_processed;
                local_changed |= propagate_edge(st, e, opts, r);
                if (opts.min_max_signatures)
                  local_changed |= propagate_edge_min(st, e, opts, r);
              }
            });
            // async_phase2: the block re-iterates its edges to a local fixed
            // point inside one launch (§3.3); sync mode does a single sweep.
            // The per-block sweep budget and the wall-clock check keep a
            // fault-suppressed fixpoint from spinning forever in-kernel.
          } while (opts.async_phase2 && local_changed && local_iters < budget &&
                   !watchdog.expired());
          if (local_changed || (opts.async_phase2 && local_iters > 1))
            st.changed.store(1, std::memory_order_relaxed);
          st.block_iterations.fetch_add(local_iters, std::memory_order_relaxed);
          st.edges_processed.fetch_add(local_processed, std::memory_order_relaxed);
          st.edges_skipped.fetch_add(local_skipped, std::memory_order_relaxed);
          // The imbalance histogram measures ASSIGNMENT skew — the edges
          // this block owns per sweep, the quantity the edge-balance lever
          // controls. Async in-block re-iteration counts are a convergence
          // property with their own metric (block_iterations).
          dev.record_block_work(ctx.block_id, local_assigned);
        },
        {.idempotent = true, .work_stealing = opts.work_stealing});

    if (opts.frontier_gating) {
      const std::uint64_t processed =
          st.edges_processed.load(std::memory_order_relaxed) - processed_before;
      if (st.edges_skipped.load(std::memory_order_relaxed) > skipped_before)
        ++metrics.frontier_rounds;
      // A shrinking active frontier is fixpoint progress even while labels
      // and worklist size are frozen mid-Phase-2; let the wall-clock
      // watchdog see it (it ignores flat or growing frontiers).
      watchdog.observe_phase2_round(processed);
    }

    // Fleet fixpoint hook (DESIGN.md §13): at this grid barrier an external
    // coordinator may merge boundary signatures into the store and replace
    // the local movement flag with a GLOBAL quiescence verdict, keeping the
    // sweep loop alive while any peer shard still moves.
    bool sweep_again = st.changed.load(std::memory_order_relaxed) != 0;
    if (opts.phase2_hook) sweep_again = opts.phase2_hook(sweep_again, st.round);
    if (!sweep_again) break;

    // Another sweep is coming: this grid barrier is a quiescent point, so
    // snapshot here if the cadence is due. Signatures mid-Phase-2 are a
    // legal restart state (monotone fixpoint); labels and the worklist are
    // frozen until Phase 3, so they are consistent with the signatures.
    if (ckpt) {
      ++ckpt->sweeps_since;
      if (opts.checkpoint.sweep_interval > 0 &&
          ckpt->sweeps_since >= opts.checkpoint.sweep_interval)
        take_checkpoint(st, opts, *ckpt, outer_iteration, metrics);
    }
  }
  return true;
}

void detect_components(EclState& st, device::Device& dev, const EclOptions& opts) {
  const std::uint64_t n = st.n;
  // Idempotent: already-labeled vertices are skipped, so a spurious replay
  // finds nothing new to label and adds 0 to the labeled counter.
  dev.launch(
      grid_size(dev, n, opts.persistent_threads),
      [&](const BlockContext& ctx) {
        std::uint64_t local = 0;
        ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
          for (std::uint64_t v = lo; v < hi; ++v) {
            if (st.labels[v] != graph::kInvalidVid) continue;
            const std::uint32_t i = st.sigs.vin(v).load(std::memory_order_relaxed);
            const std::uint32_t o = st.sigs.vout(v).load(std::memory_order_relaxed);
            if (i == o) {
              st.labels[v] = i;
              ++local;
              continue;
            }
            if (opts.min_max_signatures) {
              // A vertex whose min signatures agree is in the MIN SCC of its
              // cluster; label it by that (minimum) member.
              const std::uint32_t mi = st.sigs.min_in(v).load(std::memory_order_relaxed);
              const std::uint32_t mo = st.sigs.min_out(v).load(std::memory_order_relaxed);
              if (mi == mo) {
                st.labels[v] = mi;
                ++local;
              }
            }
          }
        });
        st.labeled.fetch_add(local, std::memory_order_relaxed);
      },
      {.idempotent = true, .work_stealing = opts.work_stealing});
}

void phase3_remove_edges(EclState& st, device::Device& dev, const EclOptions& opts,
                         SccMetrics& metrics) {
  const auto edges = st.worklist.edges();
  const std::uint64_t m = edges.size();
  if (m == 0) return;
  dev.launch(
      grid_size(dev, m, opts.persistent_threads),
      [&](const BlockContext& ctx) {
        // Chunked reservation (DESIGN.md §10): survivors are staged per block
        // and committed with one cursor fetch_add per chunk. The appender's
        // destructor flushes the partial last chunk before the grid barrier.
        EdgeWorklist::ChunkAppender chunk(st.worklist);
        std::uint64_t local_examined = 0;
        for_each_owned(ctx, m, opts.edge_balanced, [&](std::uint64_t lo, std::uint64_t hi) {
          local_examined += hi - lo;
          for (std::uint64_t i = lo; i < hi; ++i) {
            const graph::Edge e = edges[i];
            const std::uint32_t iu = st.sigs.vin(e.src).load(std::memory_order_relaxed);
            const std::uint32_t iv = st.sigs.vin(e.dst).load(std::memory_order_relaxed);
            const std::uint32_t ou = st.sigs.vout(e.src).load(std::memory_order_relaxed);
            const std::uint32_t ov = st.sigs.vout(e.dst).load(std::memory_order_relaxed);
            if (iu != iv || ou != ov) continue;  // spans SCCs: drop
            if (opts.min_max_signatures) {
              const std::uint32_t miu = st.sigs.min_in(e.src).load(std::memory_order_relaxed);
              const std::uint32_t miv = st.sigs.min_in(e.dst).load(std::memory_order_relaxed);
              const std::uint32_t mou = st.sigs.min_out(e.src).load(std::memory_order_relaxed);
              const std::uint32_t mov = st.sigs.min_out(e.dst).load(std::memory_order_relaxed);
              if (miu != miv || mou != mov) continue;  // min signatures disagree
            }
            if (opts.remove_scc_edges && st.labels[e.src] != graph::kInvalidVid)
              continue;  // inside a completed SCC: no longer needed (§3.3)
            if (opts.chunked_worklist)
              chunk.push(e);
            else
              st.worklist.push_next(e);
          }
        });
        dev.record_block_work(ctx.block_id, local_examined);
      },
      {.idempotent = false, .work_stealing = opts.work_stealing});
  const std::size_t before = st.worklist.size();
  st.worklist.swap_buffers();
  metrics.edges_removed += before - st.worklist.size();
}

/// Completes a partial labeling by running Tarjan on the residual subgraph
/// of still-unlabeled vertices. The labeled set at any break point is a
/// union of complete SCCs (detect_components only labels from converged
/// signatures, and a stalled Phase 2 breaks before detection), so the
/// residual is closed under strong connectivity and can be solved
/// independently. Each residual component is labeled by its maximum
/// parent-graph member, preserving the max-ID labeling invariant (§3.2.1).
void serial_fallback(const Digraph& g, SccResult& result) {
  const vid n = g.num_vertices();
  std::vector<std::uint8_t> active(n, 0);
  std::uint64_t residual = 0;
  for (vid v = 0; v < n; ++v) {
    if (result.labels[v] == graph::kInvalidVid) {
      active[v] = 1;
      ++residual;
    }
  }
  result.metrics.serial_fallback = true;
  result.metrics.fallback_vertices = residual;
  if (residual == 0) return;
  const graph::Subgraph sub = graph::induced_subgraph(g, active);
  const SccResult serial = tarjan(sub.graph);
  std::vector<vid> comp_max(serial.num_components, 0);
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
    vid& top = comp_max[serial.labels[i]];
    top = std::max(top, sub.to_parent[i]);
  }
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i)
    result.labels[sub.to_parent[i]] = comp_max[serial.labels[i]];
}

/// Translates labels computed on the hub-reordered graph back to original
/// vertex IDs, renaming every component by its maximum ORIGINAL member so
/// the result is bit-identical to an unreordered run (§3.2.1's max-ID
/// naming is a function of the graph, not the schedule). Unlabeled
/// vertices (kInvalidVid, possible under kReturnError) pass through.
void remap_labels_to_original(SccResult& result, const std::vector<vid>& perm) {
  const vid n = static_cast<vid>(perm.size());
  std::vector<vid> name(n, graph::kInvalidVid);  // component (new-ID name) -> max original member
  for (vid v = 0; v < n; ++v) {
    const vid c = result.labels[perm[v]];
    if (c == graph::kInvalidVid) continue;
    if (name[c] == graph::kInvalidVid || v > name[c]) name[c] = v;
  }
  std::vector<vid> original(n, graph::kInvalidVid);
  for (vid v = 0; v < n; ++v) {
    const vid c = result.labels[perm[v]];
    if (c != graph::kInvalidVid) original[v] = name[c];
  }
  result.labels = std::move(original);
}

}  // namespace

EclOptions ecl_all_optimizations_off() {
  EclOptions opts;
  opts.async_phase2 = false;
  opts.remove_scc_edges = false;
  opts.path_compression = false;
  opts.persistent_threads = false;
  return opts;
}

EclOptions ecl_hotpath_levers_off() {
  EclOptions opts = ecl_loadbalance_levers_off();
  opts.chunked_worklist = false;
  opts.frontier_gating = false;
  opts.padded_signatures = false;
  return opts;
}

EclOptions ecl_loadbalance_levers_off() {
  EclOptions opts;
  opts.work_stealing = false;
  opts.edge_balanced = false;
  opts.hub_reorder = false;
  return opts;
}

SccResult ecl_scc(const Digraph& g, device::Device& dev, const EclOptions& opts) {
  // Hub-clustering reorder (DESIGN.md §11): run on the relabeled graph,
  // then remap labels back. Skipped whenever the permutation would be the
  // identity (uniform-degree inputs) and under min_max_signatures (see
  // EclOptions::hub_reorder).
  if (opts.hub_reorder && !opts.min_max_signatures) {
    const std::vector<vid> perm = graph::hub_clustering_permutation(g);
    if (!perm.empty()) {
      const Digraph reordered = graph::apply_permutation(g, perm);
      EclOptions inner = opts;
      inner.hub_reorder = false;
      SccResult result = ecl_scc(reordered, dev, inner);
      remap_labels_to_original(result, perm);
      return result;
    }
  }

  const vid n = g.num_vertices();
  SccResult result;
  if (n == 0) return result;

  EclState st(g, opts);
  if (dev.fault_active() &&
      (dev.fault().plan().delayed_visibility || dev.fault().plan().lost_update))
    st.fault = &dev.fault();
  const std::uint64_t launches_before = dev.stats().kernel_launches;

  const std::uint64_t guard =
      opts.max_outer_iterations ? opts.max_outer_iterations : static_cast<std::uint64_t>(n) + 2;
  // FixpointWatchdog holds atomics, so a resume re-arms it by re-emplacing:
  // same config (and thus the same ABSOLUTE deadline — the budget is shared
  // across all resume attempts), fresh stall counters.
  std::optional<FixpointWatchdog> watchdog;
  watchdog.emplace(opts.watchdog, n);

  // Recovery ladder rung 1 (DESIGN.md §12): on a stall or overflow, restore
  // the last quiescent snapshot and replay, at most max_resumes times.
  CheckpointState ckpt;
  const bool checkpointing = opts.checkpoint.enabled;
  unsigned resumes_left = checkpointing ? opts.checkpoint.max_resumes : 0;
  bool skip_phase1 = false;  // set on resume: Phase 1 would reset the restored signatures
  Timer run_timer;
  double first_trip_seconds = -1.0;
  std::uint64_t dropped_edges_total = 0;

  auto note_trip = [&] {
    if (first_trip_seconds < 0) first_trip_seconds = run_timer.seconds();
  };
  // Restores the last checkpoint and re-arms the watchdog. Returns false
  // when the ladder rung is exhausted (no snapshot, no resumes left, or the
  // absolute deadline has expired — replaying would only burn the budget).
  auto try_resume = [&]() -> bool {
    if (!ckpt.snap.valid || resumes_left == 0) return false;
    if (watchdog->deadline_expired()) return false;
    --resumes_left;
    ++result.metrics.resumes;
    result.metrics.rounds_replayed += ckpt.sweeps_since;
    ckpt.sweeps_since = 0;
    dropped_edges_total += st.worklist.dropped_edges();
    restore_checkpoint(st, opts, ckpt);
    skip_phase1 = true;
    watchdog.emplace(opts.watchdog, n);
    return true;
  };

  while (st.labeled.load(std::memory_order_relaxed) < n) {
    if (++result.metrics.outer_iterations > guard) {
      result.error = {SccStatus::kIterationGuard,
                      "ecl_scc: outer loop exceeded iteration guard"};
      break;
    }
    if (watchdog->deadline_expired()) {
      watchdog->mark_stalled();
      ++result.metrics.watchdog_trips;
      note_trip();
      result.error = {SccStatus::kDeadlineExceeded,
                      "ecl_scc: request deadline expired between iterations"};
      break;
    }

    Timer phase_timer;
    if (skip_phase1) {
      // Resumed: the restored signatures ARE the phase-1-initialized state
      // of the snapshot's iteration (possibly advanced by later sweeps);
      // re-running Phase 1 would reset every unlabeled signature to self
      // and discard the checkpointed propagation progress.
      skip_phase1 = false;
    } else {
      phase1_init(st, dev, opts);
    }
    // Outer-boundary snapshot, AFTER Phase 1: labels and worklist are at
    // their iteration-start values and signatures are freshly initialized,
    // so restoring here and skipping Phase 1 replays this iteration
    // exactly. (Snapshotting before Phase 1 would capture the PREVIOUS
    // iteration's converged signatures, from which Phase 2 would trivially
    // re-converge with no new labels — an instant stall.)
    if (checkpointing)
      take_checkpoint(st, opts, ckpt, result.metrics.outer_iterations, result.metrics);
    result.metrics.phase1_seconds += phase_timer.seconds();
    phase_timer.reset();
    const bool converged =
        phase2_propagate(st, dev, opts, result.metrics, *watchdog,
                         checkpointing ? &ckpt : nullptr, result.metrics.outer_iterations);
    result.metrics.phase2_seconds += phase_timer.seconds();
    if (!converged) {
      ++result.metrics.watchdog_trips;
      note_trip();
      const bool deadline = watchdog->deadline_expired();
      if (!deadline && try_resume()) continue;
      // A deadline trip aborts the same way a stall does but is reported
      // distinctly: the run was cancelled, not necessarily stuck.
      result.error =
          deadline ? SccError{SccStatus::kDeadlineExceeded,
                              "ecl_scc: request deadline expired mid-fixpoint"}
                   : SccError{SccStatus::kStalled,
                              "ecl_scc: phase-2 propagation exceeded its sweep budget"};
      break;
    }
    phase_timer.reset();
    detect_components(st, dev, opts);
    phase3_remove_edges(st, dev, opts, result.metrics);
    result.metrics.phase3_seconds += phase_timer.seconds();

    if (st.worklist.overflowed()) {
      // The next-iteration worklist dropped edges; labels assigned so far
      // came from the intact pre-overflow worklist and remain sound, but
      // further propagation over the truncated edge set would not be.
      note_trip();
      const std::uint64_t dropped = st.worklist.dropped_edges();
      if (try_resume()) continue;
      result.error = {SccStatus::kWorklistOverflow,
                      "ecl_scc: edge worklist overflowed during phase 3 (" +
                          std::to_string(dropped) + " edges dropped)"};
      break;
    }
    if (watchdog->observe_iteration(st.labeled.load(std::memory_order_relaxed),
                                    st.worklist.size())) {
      ++result.metrics.watchdog_trips;
      note_trip();
      if (try_resume()) continue;
      result.error = {SccStatus::kStalled,
                      "ecl_scc: no new labels and no worklist shrinkage for " +
                          std::to_string(opts.watchdog.stall_rounds) + " iterations"};
      break;
    }
  }

  result.metrics.edges_processed = st.edges_processed.load(std::memory_order_relaxed);
  result.metrics.edges_skipped = st.edges_skipped.load(std::memory_order_relaxed);
  result.metrics.edges_dropped = dropped_edges_total + st.worklist.dropped_edges();
  result.metrics.kernel_launches = dev.stats().kernel_launches - launches_before;
  result.metrics.block_iterations = st.block_iterations.load(std::memory_order_relaxed);
  dev.stats().block_iterations += result.metrics.block_iterations;

  result.labels = std::move(st.labels);
  if (result.error && opts.stall_policy == StallPolicy::kSerialFallback)
    serial_fallback(g, result);
  if (!result.error || result.metrics.serial_fallback) {
    std::vector<vid> dense(result.labels.begin(), result.labels.end());
    result.num_components = graph::normalize_labels(dense);
  }
  // Time-to-good-result after the FIRST fault manifestation, including any
  // serial fallback: the quantity bench_chaos_recovery compares between the
  // resume path and the discard-and-recompute path.
  if (first_trip_seconds >= 0)
    result.metrics.recovery_seconds = run_timer.seconds() - first_trip_seconds;
  return result;
}

device::Device& shared_device() {
  static device::Device dev(device::a100_profile());
  return dev;
}

SccResult ecl_scc(const Digraph& g, const EclOptions& opts) {
  return ecl_scc(g, shared_device(), opts);
}

}  // namespace ecl::scc
