#ifndef ECL_CORE_FB_TRIM_HPP
#define ECL_CORE_FB_TRIM_HPP

// Forward-Backward with Trim and coloring: the algorithm family of the
// paper's GPU baseline (GPU-SCC, Li et al. [14], building on Barnat [4] and
// Hong [11]). Serves as the comparison point in Tables 5-7 / Figures 5-13.
//
// Each round: iterated Trim-1 (+ optional Trim-2/3), per-color pivot
// selection by maximum vertex ID (the deterministic analog of the
// winning-write race of [4]), simultaneous color-confined forward and
// backward BFS from all pivots, SCC = intersection, and 3-way recoloring of
// the remainder. BFS levels run as kernels on the virtual device.

#include "core/result.hpp"
#include "device/device.hpp"

namespace ecl::scc {

struct FbOptions {
  bool trim1 = true;
  bool trim2 = true;
  /// GPU-SCC does not use Trim-3 (that is iSpan's addition); off by default.
  bool trim3 = false;
  /// Merge-path BFS expansion (DESIGN.md §11): each level prefix-sums the
  /// frontier's out-degrees into a frontier sub-CSR and blocks own equal
  /// EDGE spans of it (one upper_bound per block), so a frontier hub no
  /// longer serializes its whole adjacency into one block. Off = classic
  /// block-cyclic distribution over frontier VERTICES.
  bool edge_balanced = true;

  // --- High-diameter levers (DESIGN.md §15). These are FB-Trim's analogues
  // of the EclOptions §15 levers (fb_trim takes FbOptions, not EclOptions);
  // ecl_highdiameter_levers_off()'s counterpart here is turning both off. --
  /// Per-color pivot SETS instead of a single pivot: up to max_pivots
  /// pivots per color, drawn by seeded degree-weighted sampling without
  /// replacement, so one forward/backward sweep amortizes its BFS levels
  /// across k pivots. Vertices are claimed min-pivot-index-wins by a
  /// label-correcting tag CAS; a round then detects up to k SCCs per color
  /// (the index-0 pivot's SCC is always among them, preserving the
  /// progress guarantee). Off = the classic max-vertex-ID single pivot.
  bool multi_pivot = true;
  unsigned max_pivots = 4;  ///< clamped to 64 (tag encoding budget)
  /// Seed for the degree-weighted pivot sampling; fixed so every run of the
  /// same graph draws the same pivot sets.
  std::uint64_t pivot_seed = 0x5cc5eedULL;
  /// Trim-1 fused with the chain chaser (§15): a worker that trims v
  /// immediately probes v's neighbors and keeps trimming the trivial SCCs
  /// its removal exposed — bounded by trim_chain_cap per seed — instead of
  /// paying one mark/apply kernel pair per trim generation. Exactly-once is
  /// enforced by claiming each vertex with an atomic active-flag CAS.
  bool trim_chase = true;
  unsigned trim_chain_cap = 64;

  std::uint64_t max_rounds = 0;  ///< 0 = |V| + 2 safety guard
};

/// Runs FB-Trim on the given virtual device. Labels are the pivot vertex of
/// each component (trim-detected components: max member ID).
SccResult fb_trim(const Digraph& g, device::Device& dev, const FbOptions& opts = {});

/// Convenience overload on the shared device.
SccResult fb_trim(const Digraph& g, const FbOptions& opts = {});

}  // namespace ecl::scc

#endif  // ECL_CORE_FB_TRIM_HPP
