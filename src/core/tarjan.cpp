#include "core/tarjan.hpp"

#include <algorithm>

namespace ecl::scc {

SccResult tarjan(const Digraph& g) {
  const vid n = g.num_vertices();
  constexpr vid kUnvisited = graph::kInvalidVid;

  SccResult result;
  result.labels.assign(n, kUnvisited);

  std::vector<vid> index(n, kUnvisited);
  std::vector<vid> lowlink(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<vid> scc_stack;

  // Explicit DFS frame: vertex + position within its adjacency row.
  struct Frame {
    vid v;
    eid next_edge;
  };
  std::vector<Frame> dfs;

  vid next_index = 0;
  vid next_component = 0;

  for (vid root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = 1;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const vid v = frame.v;
      const auto row = g.out_neighbors(v);

      if (frame.next_edge < row.size()) {
        const vid w = row[frame.next_edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = 1;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        dfs.pop_back();
        if (!dfs.empty()) {
          const vid parent = dfs.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v is the root of an SCC: pop the component.
          for (;;) {
            const vid w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = 0;
            result.labels[w] = next_component;
            if (w == v) break;
          }
          ++next_component;
        }
      }
    }
  }

  result.num_components = next_component;
  return result;
}

}  // namespace ecl::scc
