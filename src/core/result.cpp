#include "core/result.hpp"

#include <algorithm>

#include "graph/condensation.hpp"

namespace ecl::scc {

const char* status_name(SccStatus status) {
  switch (status) {
    case SccStatus::kOk: return "ok";
    case SccStatus::kStalled: return "stalled";
    case SccStatus::kWorklistOverflow: return "worklist-overflow";
    case SccStatus::kIterationGuard: return "iteration-guard";
    case SccStatus::kException: return "exception";
    case SccStatus::kVerifyFailed: return "verify-failed";
    case SccStatus::kDeadlineExceeded: return "deadline-exceeded";
    case SccStatus::kCertificationFailed: return "certification-failed";
  }
  return "unknown";
}

bool same_partition(std::span<const vid> a, std::span<const vid> b) {
  if (a.size() != b.size()) return false;
  // Two labelings agree iff the dense renumberings (in first-appearance
  // order) are identical.
  std::vector<vid> da(a.begin(), a.end());
  std::vector<vid> db(b.begin(), b.end());
  graph::normalize_labels(da);
  graph::normalize_labels(db);
  return da == db;
}

void canonicalize_labels(std::span<vid> labels) {
  std::vector<vid> rep(labels.size(), graph::kInvalidVid);
  // First pass: smallest member per (raw) label value. Raw labels are
  // vertex-valued for every algorithm here, so indexing by label is safe.
  for (std::size_t v = 0; v < labels.size(); ++v) {
    vid& r = rep[labels[v]];
    r = std::min<vid>(r, static_cast<vid>(v));
  }
  for (std::size_t v = 0; v < labels.size(); ++v) labels[v] = rep[labels[v]];
}

}  // namespace ecl::scc
