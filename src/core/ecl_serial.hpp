#ifndef ECL_CORE_ECL_SERIAL_HPP
#define ECL_CORE_ECL_SERIAL_HPP

// Literal, sequential transcription of the paper's Algorithm 1 (ECL-SCC
// base algorithm). It exists as the semantics anchor: the optimized
// parallel implementation (ecl_scc.hpp) must always agree with it, and the
// test suite checks both against Tarjan.

#include "core/result.hpp"

namespace ecl::scc {

/// Runs Algorithm 1: iterate { init signatures; propagate max along edges
/// to a fixed point; remove signature-mismatched edges } until every vertex
/// has v_in == v_out. Labels are the final signatures, i.e. the maximum
/// vertex ID in each component.
SccResult ecl_serial(const Digraph& g);

}  // namespace ecl::scc

#endif  // ECL_CORE_ECL_SERIAL_HPP
