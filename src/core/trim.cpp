#include "core/trim.hpp"

#include <algorithm>
#include <array>

namespace ecl::scc {
namespace {

/// True when w counts as a neighbor for trimming purposes: still active and
/// in the same color class as v.
bool counts(const TrimView& view, vid v, vid w) {
  if (!view.active[w]) return false;
  return view.color.empty() || view.color[v] == view.color[w];
}

/// Collects up to `cap` active same-color neighbors of v from `row`,
/// ignoring self loops. Returns the count, or cap + 1 if there are more.
template <std::size_t N>
unsigned collect(const TrimView& view, vid v, std::span<const vid> row,
                 std::array<vid, N>& out, unsigned cap) {
  unsigned count = 0;
  for (vid w : row) {
    if (w == v || !counts(view, v, w)) continue;
    if (count < cap && count < N) out[count] = w;
    if (++count > cap) break;
  }
  return count;
}

}  // namespace

bool trim1_removable(const TrimView& view, vid v) {
  if (!view.active[v]) return false;
  bool has_in = false;
  for (vid w : view.rev.out_neighbors(v)) {
    if (w != v && counts(view, v, w)) {
      has_in = true;
      break;
    }
  }
  if (!has_in) return true;
  for (vid w : view.g.out_neighbors(v)) {
    if (w != v && counts(view, v, w)) return false;
  }
  return true;
}

vid trim1_mark_range(const TrimView& view, vid lo, vid hi, std::uint8_t* mark) {
  vid count = 0;
  for (vid v = lo; v < hi; ++v) {
    if (trim1_removable(view, v)) {
      mark[v] = 1;
      ++count;
    }
  }
  return count;
}

vid trim1_pass(TrimView view) {
  // Level-synchronous semantics: removal decisions are based on the state
  // at the start of the pass, exactly like one parallel GPU sweep. This is
  // what makes deep trivial-SCC DAGs (star, beam-hex) require one sweep per
  // DAG level — the behavior the paper's §5.1.1 analysis hinges on.
  const vid n = view.g.num_vertices();
  std::vector<vid> to_remove;
  for (vid v = 0; v < n; ++v) {
    if (trim1_removable(view, v)) to_remove.push_back(v);
  }
  for (vid v : to_remove) {
    view.labels[v] = v;
    view.active[v] = 0;
  }
  return static_cast<vid>(to_remove.size());
}

vid trim1(TrimView view, SccMetrics* metrics) {
  vid total = 0;
  for (;;) {
    const vid removed = trim1_pass(view);
    if (metrics != nullptr) ++metrics->propagation_rounds;
    if (removed == 0) return total;
    total += removed;
  }
}

vid trim2_pass(TrimView view) {
  const vid n = view.g.num_vertices();
  vid removed = 0;
  std::array<vid, 2> nbr{};
  for (vid v = 0; v < n; ++v) {
    if (!view.active[v]) continue;

    // Pattern (a): v's only active in-neighbor is u, u's only active
    // in-neighbor is v, and the pair edges exist in both directions.
    const unsigned in_count = collect(view, v, view.rev.out_neighbors(v), nbr, 1);
    if (in_count == 1) {
      const vid u = nbr[0];
      std::array<vid, 2> unbr{};
      if (collect(view, u, view.rev.out_neighbors(u), unbr, 1) == 1 && unbr[0] == v &&
          view.g.has_edge(v, u)) {
        const vid label = std::max(u, v);
        view.labels[v] = view.labels[u] = label;
        view.active[v] = view.active[u] = 0;
        removed += 2;
        continue;
      }
    }

    // Pattern (b): same with outgoing edges.
    const unsigned out_count = collect(view, v, view.g.out_neighbors(v), nbr, 1);
    if (out_count == 1) {
      const vid u = nbr[0];
      std::array<vid, 2> unbr{};
      if (collect(view, u, view.g.out_neighbors(u), unbr, 1) == 1 && unbr[0] == v &&
          view.g.has_edge(u, v)) {
        const vid label = std::max(u, v);
        view.labels[v] = view.labels[u] = label;
        view.active[v] = view.active[u] = 0;
        removed += 2;
      }
    }
  }
  return removed;
}

vid trim3_pass(TrimView view, unsigned max_neighbors) {
  const vid n = view.g.num_vertices();
  vid removed = 0;
  std::array<vid, 16> nbr{};
  for (vid v = 0; v < n; ++v) {
    if (!view.active[v]) continue;

    // Candidate partners: active same-color vertices adjacent to v.
    unsigned count = collect(view, v, view.g.out_neighbors(v), nbr, max_neighbors);
    if (count > max_neighbors) continue;
    std::array<vid, 16> more{};
    const unsigned in_count = collect(view, v, view.rev.out_neighbors(v), more, max_neighbors);
    if (in_count > max_neighbors) continue;
    for (unsigned i = 0; i < in_count && count < nbr.size(); ++i) {
      if (std::find(nbr.begin(), nbr.begin() + count, more[i]) == nbr.begin() + count)
        nbr[count++] = more[i];
    }

    bool matched = false;
    for (unsigned i = 0; i < count && !matched; ++i) {
      for (unsigned j = i + 1; j < count && !matched; ++j) {
        const std::array<vid, 3> s{v, nbr[i], nbr[j]};

        // Internal strong connectivity of the induced 3-vertex subgraph.
        auto internal_edge = [&](vid a, vid b) { return view.g.has_edge(a, b); };
        auto reaches = [&](vid a, vid b) {
          if (internal_edge(a, b)) return true;
          const vid mid = (s[0] != a && s[0] != b) ? s[0] : (s[1] != a && s[1] != b) ? s[1] : s[2];
          return internal_edge(a, mid) && internal_edge(mid, b);
        };
        bool strong = true;
        for (vid a : s)
          for (vid b : s)
            if (a != b && !reaches(a, b)) strong = false;
        if (!strong) continue;

        // No external active in-edges (or no external out-edges) into S.
        auto external_free = [&](const Digraph& dir) {
          for (vid a : s) {
            for (vid w : dir.out_neighbors(a)) {
              if (w == s[0] || w == s[1] || w == s[2]) continue;
              if (counts(view, a, w)) return false;
            }
          }
          return true;
        };
        if (!external_free(view.rev) && !external_free(view.g)) continue;

        const vid label = std::max({s[0], s[1], s[2]});
        for (vid a : s) {
          view.labels[a] = label;
          view.active[a] = 0;
        }
        removed += 3;
        matched = true;
      }
    }
  }
  return removed;
}

}  // namespace ecl::scc
