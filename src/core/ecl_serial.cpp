#include "core/ecl_serial.hpp"

#include <algorithm>

#include "graph/condensation.hpp"

namespace ecl::scc {

SccResult ecl_serial(const Digraph& g) {
  const vid n = g.num_vertices();

  // The edge set shrinks across outer iterations (Phase 3); keep it as a
  // compacted vector of (src, dst) pairs.
  std::vector<graph::Edge> edges;
  edges.reserve(g.num_edges());
  for (vid u = 0; u < n; ++u)
    for (vid v : g.out_neighbors(u)) edges.push_back({u, v});

  std::vector<vid> in(n);
  std::vector<vid> out(n);
  SccResult result;

  bool converged = (n == 0);
  while (!converged) {
    ++result.metrics.outer_iterations;

    // Phase 1: initialize vertex signatures.
    for (vid v = 0; v < n; ++v) in[v] = out[v] = v;

    // Phase 2: propagate max values until a fixed point.
    bool updated = true;
    while (updated) {
      updated = false;
      ++result.metrics.propagation_rounds;
      result.metrics.edges_processed += edges.size();
      for (const auto& [u, v] : edges) {
        if (out[v] > out[u]) {
          out[u] = out[v];
          updated = true;
        }
        if (in[u] > in[v]) {
          in[v] = in[u];
          updated = true;
        }
      }
    }

    // Phase 3: remove edges that span SCCs (signature mismatch).
    const std::size_t before = edges.size();
    std::erase_if(edges, [&](const graph::Edge& e) {
      return in[e.src] != in[e.dst] || out[e.src] != out[e.dst];
    });
    result.metrics.edges_removed += before - edges.size();

    converged = true;
    for (vid v = 0; v < n; ++v) {
      if (in[v] != out[v]) {
        converged = false;
        break;
      }
    }
  }

  result.labels = std::move(in);  // v_in == v_out identifies the SCC
  std::vector<vid> dense(result.labels.begin(), result.labels.end());
  result.num_components = graph::normalize_labels(dense);
  return result;
}

}  // namespace ecl::scc
