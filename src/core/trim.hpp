#ifndef ECL_CORE_TRIM_HPP
#define ECL_CORE_TRIM_HPP

// Trim steps: direct detection of SCCs with 1, 2, or 3 vertices (Fig. 2).
//
// Trim-1 (McLendon [15]): an active vertex with no active in-neighbor or no
// active out-neighbor is a trivial SCC. Trim-2: a mutually connected pair
// whose only incoming (or only outgoing) active edges are the pair edges.
// Trim-3 (Ji et al. [13]): three-vertex SCCs; implemented via the sound
// generalization of the five patterns — a strongly connected triple with no
// external active in-edges (or no external active out-edges) is a complete
// SCC.
//
// All trim functions operate on an `active` mask and an optional `color`
// partition (Forward-Backward confines SCCs to one color class): only
// active, same-color neighbors count. Detected vertices are labeled with
// the maximum vertex ID of their component (matching ECL-SCC's labeling
// convention) and deactivated.

#include <cstdint>
#include <span>

#include "core/result.hpp"

namespace ecl::scc {

/// Shared view of the trimming state. `color` may be empty (no partition
/// constraint). `active[v] == 1` means v is not yet assigned to an SCC.
struct TrimView {
  const Digraph& g;
  const Digraph& rev;
  std::span<const std::uint64_t> color;  ///< empty or size n
  std::span<std::uint8_t> active;        ///< size n, mutated
  std::span<vid> labels;                 ///< size n, mutated
};

/// True when v is removable by Trim-1 under the current active/color state
/// (no active same-color in-neighbor, or no such out-neighbor).
bool trim1_removable(const TrimView& view, vid v);

/// Chunk of one parallel Trim-1 mark sweep: sets mark[v] = 1 for removable
/// vertices in [lo, hi); returns the count. Read-only on the view, so
/// chunks can run concurrently (snapshot semantics = one GPU sweep).
vid trim1_mark_range(const TrimView& view, vid lo, vid hi, std::uint8_t* mark);

/// One Trim-1 sweep; returns the number of vertices removed.
vid trim1_pass(TrimView view);

/// Iterated Trim-1 (new trivial SCCs appear as others are removed, §2).
/// Returns the total removed; adds one `propagation_round` per sweep if
/// `metrics` is provided.
vid trim1(TrimView view, SccMetrics* metrics = nullptr);

/// One Trim-2 sweep; returns the number of vertices removed (2 per SCC).
vid trim2_pass(TrimView view);

/// One Trim-3 sweep; returns the number of vertices removed (3 per SCC).
/// Vertices whose active neighborhood exceeds `max_neighbors` are skipped
/// (the patterns only occur at small degree).
vid trim3_pass(TrimView view, unsigned max_neighbors = 8);

}  // namespace ecl::scc

#endif  // ECL_CORE_TRIM_HPP
