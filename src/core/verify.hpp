#ifndef ECL_CORE_VERIFY_HPP
#define ECL_CORE_VERIFY_HPP

// SCC labeling verification.
//
// Two flavors, as in the paper's methodology (§4): comparison against
// Tarjan's algorithm, and an intrinsic check that does not trust any
// reference implementation.

#include <span>
#include <string>

#include "core/result.hpp"

namespace ecl::scc {

struct VerifyReport {
  bool ok = true;
  std::string message;  ///< empty when ok
};

/// Intrinsic verification: `labels` is a valid SCC decomposition of g iff
///  (1) every label class induces a strongly connected subgraph, and
///  (2) the condensation under `labels` is a DAG (maximality: no two
///      classes are mutually reachable).
VerifyReport verify_scc(const Digraph& g, std::span<const vid> labels);

/// Cross-check against an oracle labeling (partition equality).
VerifyReport verify_against(std::span<const vid> labels, std::span<const vid> oracle);

/// ECL-SCC-specific invariant: every component's label equals the maximum
/// vertex ID among its members (§3.2.1).
VerifyReport verify_max_id_labels(std::span<const vid> labels);

// --- Online certification (DESIGN.md §12) ---------------------------------
//
// certify_scc is the hot-path cousin of verify_scc: the same intrinsic
// certificate (every label class strongly connected, condensation acyclic),
// engineered to run on EVERY served result rather than only in tests:
//
//  * completeness + canonical form — labels present for every vertex, each
//    class's label value a member of the class (O(V));
//  * class coverage — per-class forward/backward BFS confined to the class,
//    parallelized over classes with OpenMP (classes are disjoint, so the
//    shared class-state array is written race-free) (O(V+E) total);
//  * condensation acyclicity — maximality, checked by Kahn's algorithm run
//    directly over the cross-class edges of g (no condensation graph is
//    materialized; the certifier is on the serving path and the explicit
//    build cost ~doubles this stage) (O(V+E));
//  * sampled reachability witnesses — for a seeded sample of multi-member
//    classes, two distinct representatives u, v are checked mutually
//    reachable by a class-confined BFS from a random member. This is an
//    independent spot-check through different source vertices and frontier
//    orders (Wang et al.'s witness idea, PAPERS.md), so a single bad
//    coverage traversal cannot self-certify.
//
// A result that fails certification must never be served; callers map a
// failure to SccStatus::kCertificationFailed and re-enter the recovery
// ladder (core/registry.hpp, service/scc_service.hpp).

struct CertifyOptions {
  /// Multi-member classes spot-checked with class-confined reachability
  /// witnesses (0 disables the witness stage).
  std::size_t witness_samples = 4;
  /// Also require the ECL max-ID naming invariant (§3.2.1). Off by
  /// default: the certificate is about partition validity, and serial
  /// Tarjan rungs of the ladder use different label names.
  bool require_max_id_labels = false;
  /// Seed for the witness sample (deterministic certification).
  std::uint64_t seed = 0x5eedcafe;
  /// Precomputed g.reverse(), or nullptr to build it in-line. The reverse
  /// adjacency depends only on the graph, not on the labeling, so callers
  /// that certify the same graph more than once (the recovery ladder's
  /// rungs, a service re-certifying an epoch) pass it to amortize the
  /// build. The caller is responsible for it actually being g's reverse.
  const Digraph* reverse_hint = nullptr;
};

struct CertifyReport {
  bool ok = true;
  std::string message;            ///< empty when ok
  double seconds = 0.0;           ///< wall-clock cost of the check
  std::uint64_t classes = 0;      ///< label classes examined
  std::uint64_t witnesses = 0;    ///< reachability witnesses checked
};

/// O(V+E) parallel certificate check; see the block comment above.
CertifyReport certify_scc(const Digraph& g, std::span<const vid> labels,
                          const CertifyOptions& opts = {});

}  // namespace ecl::scc

#endif  // ECL_CORE_VERIFY_HPP
