#ifndef ECL_CORE_VERIFY_HPP
#define ECL_CORE_VERIFY_HPP

// SCC labeling verification.
//
// Two flavors, as in the paper's methodology (§4): comparison against
// Tarjan's algorithm, and an intrinsic check that does not trust any
// reference implementation.

#include <span>
#include <string>

#include "core/result.hpp"

namespace ecl::scc {

struct VerifyReport {
  bool ok = true;
  std::string message;  ///< empty when ok
};

/// Intrinsic verification: `labels` is a valid SCC decomposition of g iff
///  (1) every label class induces a strongly connected subgraph, and
///  (2) the condensation under `labels` is a DAG (maximality: no two
///      classes are mutually reachable).
VerifyReport verify_scc(const Digraph& g, std::span<const vid> labels);

/// Cross-check against an oracle labeling (partition equality).
VerifyReport verify_against(std::span<const vid> labels, std::span<const vid> oracle);

/// ECL-SCC-specific invariant: every component's label equals the maximum
/// vertex ID among its members (§3.2.1).
VerifyReport verify_max_id_labels(std::span<const vid> labels);

}  // namespace ecl::scc

#endif  // ECL_CORE_VERIFY_HPP
