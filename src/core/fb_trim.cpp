#include "core/fb_trim.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "core/ecl_scc.hpp"
#include "core/trim.hpp"
#include "device/atomics.hpp"
#include "device/edge_partition.hpp"
#include "graph/condensation.hpp"
#include "support/rng.hpp"

namespace ecl::scc {
namespace {

using device::BlockContext;

/// Level-synchronous, color-confined parallel BFS from all pivots at once.
/// Visiting is recorded by stamping `tag[v] = (round << 8) | enc` (tags
/// survive across rounds, so no per-round clearing of the whole array is
/// needed; the round in the high bits makes every new round's tag beat any
/// stale one). `enc` ranks the pivot WITHIN its color's pivot set —
/// kEncBase(k) - index, so index 0 carries the largest enc — and the
/// expansion claims vertices with a tag CAS-max: the deterministic
/// min-pivot-index-wins rule of the §15 multi-pivot rounds. A claim that
/// IMPROVES an already-visited vertex re-enqueues it (label-correcting),
/// so the fixpoint tag is a pure function of reachability — constant on
/// every SCC — no matter how the level schedule interleaves. With one
/// pivot per color this degenerates to the classic visited-bit BFS.
struct Bfs {
  explicit Bfs(vid n)
      : tag(std::make_unique<std::atomic<std::uint64_t>[]>(n)),
        frontier(n),
        next(n) {}

  std::unique_ptr<std::atomic<std::uint64_t>[]> tag;
  std::vector<vid> frontier;
  std::vector<vid> next;
  std::vector<graph::eid> prefix;  ///< frontier degree prefix sums (merge-path mode)

  static std::uint64_t visited_round(std::uint64_t tag_value) noexcept { return tag_value >> 8; }
  static unsigned tag_enc(std::uint64_t tag_value) noexcept {
    return static_cast<unsigned>(tag_value & 0xff);
  }

  /// Returns the number of BFS levels executed. `enc[i]` is the rank code
  /// of `sources[i]` (same length; all non-zero).
  std::uint64_t run(const Digraph& dir, device::Device& dev, std::uint64_t round,
                    std::span<const vid> sources, std::span<const std::uint8_t> enc,
                    std::span<const std::uint8_t> active, std::span<const std::uint64_t> color,
                    bool edge_balanced, std::atomic<std::uint64_t>& edges_processed) {
    std::size_t frontier_size = 0;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      // A pivot may be claimed by a better pivot's BFS later; its own seed
      // tag still starts it off. Plain store: round's tags beat all others.
      tag[sources[i]].store((round << 8) | enc[i], std::memory_order_relaxed);
      frontier[frontier_size++] = sources[i];
    }
    std::uint64_t levels = 0;
    while (frontier_size > 0) {
      ++levels;
      std::uint64_t frontier_edges = 0;
      if (edge_balanced) {
        // Merge-path split (DESIGN.md §11): the frontier's degree prefix
        // sums form a frontier sub-CSR; blocks then own equal EDGE spans of
        // it, found with one upper_bound each — a hub's adjacency is split
        // across blocks instead of serializing one block.
        prefix.resize(frontier_size + 1);
        prefix[0] = 0;
        for (std::size_t i = 0; i < frontier_size; ++i)
          prefix[i + 1] = prefix[i] + dir.out_degree(frontier[i]);
        frontier_edges = prefix[frontier_size];
        if (frontier_edges == 0) break;  // frontier has no out-edges: done
      }
      std::atomic<std::size_t> next_size{0};
      // Idempotent: the tag CAS-max admits each (vertex, enc) improvement to
      // `next` exactly once, so a spurious replay of a block finds every
      // neighbor already at its value and its staged flush commits nothing.
      dev.launch(
          edge_balanced ? dev.blocks_for(frontier_edges) : dev.blocks_for(frontier_size),
          [&](const BlockContext& ctx) {
            std::uint64_t local_edges = 0;
            // Chunked reservation (DESIGN.md §10): newly tagged vertices are
            // staged per block and committed to `next` with one cursor
            // fetch_add per chunk instead of one per vertex.
            constexpr std::size_t kChunk = 1024;
            std::vector<vid> staged;
            staged.reserve(kChunk);
            auto flush = [&] {
              if (staged.empty()) return;
              const std::size_t at =
                  next_size.fetch_add(staged.size(), std::memory_order_relaxed);
              std::copy(staged.begin(), staged.end(), next.begin() + at);
              staged.clear();
            };
            auto expand = [&](vid u, std::span<const vid> targets) {
              // Re-read u's enc at expansion: if a better pivot claimed u
              // after it was enqueued, propagate the better claim (the
              // earlier enqueue's expansion becomes a harmless subset).
              const std::uint64_t val =
                  (round << 8) | tag_enc(tag[u].load(std::memory_order_relaxed));
              for (vid w : targets) {
                ++local_edges;
                if (!active[w] || color[w] != color[u]) continue;
                std::uint64_t expected = tag[w].load(std::memory_order_relaxed);
                while (val > expected) {
                  if (tag[w].compare_exchange_weak(expected, val,
                                                   std::memory_order_relaxed)) {
                    staged.push_back(w);
                    if (staged.size() >= kChunk) flush();
                    break;
                  }
                }
              }
            };
            if (edge_balanced) {
              const device::EdgeSpan span =
                  device::equal_edge_span(ctx.block_id, ctx.num_blocks, frontier_edges);
              device::for_each_item_span(
                  std::span<const graph::eid>(prefix.data(), frontier_size + 1), span,
                  [&](std::size_t item, std::uint64_t lo, std::uint64_t hi) {
                    const vid u = frontier[item];
                    const auto nbrs = dir.out_neighbors(u);
                    expand(u, nbrs.subspan(lo - prefix[item], hi - lo));
                  });
            } else {
              ctx.for_each_chunk(frontier_size, [&](std::uint64_t lo, std::uint64_t hi) {
                for (std::uint64_t i = lo; i < hi; ++i)
                  expand(frontier[i], dir.out_neighbors(frontier[i]));
              });
            }
            flush();
            edges_processed.fetch_add(local_edges, std::memory_order_relaxed);
            dev.record_block_work(ctx.block_id, local_edges);
          },
          {.idempotent = true});
      frontier.swap(next);
      frontier_size = next_size.load(std::memory_order_relaxed);
    }
    return levels;
  }
};

/// Device-resident trimming, as GPU-SCC runs it: every Trim-1 sweep is a
/// mark kernel plus an apply kernel (snapshot semantics), iterated until no
/// trivial SCC remains — the launch-latency-bound loop that makes deep
/// trivial-SCC DAGs (beam-hex, star) expensive for FB-style codes (§5.1.1).
/// Trim-2/3 run as single-block kernels (one sweep per round).
vid device_trim(TrimView view, device::Device& dev, const FbOptions& opts,
                std::vector<std::uint8_t>& mark, SccMetrics& metrics) {
  using device::BlockContext;
  const vid n = view.g.num_vertices();
  vid total = 0;

  // Trim-chase (§15): every byte the apply kernel and the chasers share is
  // accessed through atomic_ref — the chase deliberately crosses chunk
  // boundaries, so the chunk-disjointness that made plain writes safe in
  // the unfused kernel no longer holds.
  auto load_u8 = [](std::uint8_t& b) {
    return std::atomic_ref<std::uint8_t>(b).load(std::memory_order_relaxed);
  };
  auto store_u8 = [](std::uint8_t& b, std::uint8_t v) {
    std::atomic_ref<std::uint8_t>(b).store(v, std::memory_order_relaxed);
  };
  // Removability probe mirroring trim1_removable, but with atomic reads so
  // it can run while other workers deactivate vertices. A stale read is
  // conservative in both directions: seeing a dying neighbor as active just
  // misses a trim (the next mark sweep catches it), and a vertex can only
  // LOSE active neighbors, so a "removable" verdict never becomes wrong.
  auto chase_removable = [&](vid w) {
    const bool colored = !view.color.empty();
    bool has_in = false;
    for (vid x : view.rev.out_neighbors(w)) {
      if (x != w && load_u8(view.active[x]) && (!colored || view.color[x] == view.color[w])) {
        has_in = true;
        break;
      }
    }
    if (!has_in) return true;
    for (vid x : view.g.out_neighbors(w)) {
      if (x != w && load_u8(view.active[x]) && (!colored || view.color[x] == view.color[w]))
        return false;
    }
    return true;
  };

  auto trim1_to_fixpoint = [&] {
    vid removed_total = 0;
    for (;;) {
      std::atomic<std::uint64_t> marked{0};
      dev.launch(dev.blocks_for(n), [&](const BlockContext& ctx) {
        std::uint64_t local = 0;
        ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
          local += trim1_mark_range(view, static_cast<vid>(lo), static_cast<vid>(hi),
                                    mark.data());
        });
        marked.fetch_add(local, std::memory_order_relaxed);
      });
      ++metrics.propagation_rounds;
      const auto count = marked.load(std::memory_order_relaxed);
      if (count == 0) break;
      std::atomic<std::uint64_t> chased{0};
      std::atomic<std::uint64_t> chase_seeds{0};
      std::atomic<std::uint64_t> chase_longest{0};
      dev.launch(dev.blocks_for(n), [&](const BlockContext& ctx) {
        std::uint64_t local_chased = 0, local_seeds = 0, local_longest = 0;
        std::vector<vid> stack;
        ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
          for (std::uint64_t v = lo; v < hi; ++v) {
            if (!load_u8(mark[v])) continue;
            std::atomic_ref<vid>(view.labels[v]).store(static_cast<vid>(v),
                                                       std::memory_order_relaxed);
            store_u8(view.active[v], 0);
            store_u8(mark[v], 0);
            if (!opts.trim_chase) continue;
            // Chase the trims this removal exposed, up to trim_chain_cap,
            // instead of waiting one mark/apply kernel pair per generation.
            // A candidate is claimed exactly once by the active-flag CAS;
            // marked vertices are left to their own apply iteration (they
            // are already counted in `marked`).
            std::uint64_t budget = opts.trim_chain_cap;
            std::uint64_t len = 0;
            stack.clear();
            stack.push_back(static_cast<vid>(v));
            while (!stack.empty() && budget != 0) {
              const vid dead = stack.back();
              stack.pop_back();
              auto probe = [&](std::span<const vid> candidates) {
                for (vid w : candidates) {
                  if (budget == 0) break;
                  if (w == dead || !load_u8(view.active[w]) || load_u8(mark[w])) continue;
                  if (!view.color.empty() && view.color[w] != view.color[dead]) continue;
                  if (!chase_removable(w)) continue;
                  std::uint8_t expected = 1;
                  if (!std::atomic_ref<std::uint8_t>(view.active[w])
                           .compare_exchange_strong(expected, 0, std::memory_order_relaxed))
                    continue;  // another chaser claimed w first
                  std::atomic_ref<vid>(view.labels[w]).store(w, std::memory_order_relaxed);
                  --budget;
                  ++len;
                  stack.push_back(w);
                }
              };
              probe(view.g.out_neighbors(dead));
              probe(view.rev.out_neighbors(dead));
            }
            if (len != 0) {
              ++local_seeds;
              local_chased += len;
              local_longest = std::max(local_longest, len);
            }
          }
        });
        chased.fetch_add(local_chased, std::memory_order_relaxed);
        chase_seeds.fetch_add(local_seeds, std::memory_order_relaxed);
        device::atomic_fetch_max_u64(chase_longest, local_longest);
      });
      metrics.chains_collapsed += chase_seeds.load(std::memory_order_relaxed);
      metrics.chain_steps += chased.load(std::memory_order_relaxed);
      metrics.max_chain_len =
          std::max(metrics.max_chain_len, chase_longest.load(std::memory_order_relaxed));
      removed_total +=
          static_cast<vid>(count + chased.load(std::memory_order_relaxed));
    }
    return removed_total;
  };

  if (opts.trim1) total += trim1_to_fixpoint();
  vid pair_triple = 0;
  if (opts.trim2) {
    dev.launch(1, [&](const BlockContext&) { pair_triple += trim2_pass(view); });
  }
  if (opts.trim3) {
    dev.launch(1, [&](const BlockContext&) { pair_triple += trim3_pass(view); });
  }
  total += pair_triple;
  if (pair_triple > 0 && opts.trim1) total += trim1_to_fixpoint();
  return total;
}

}  // namespace

SccResult fb_trim(const Digraph& g, device::Device& dev, const FbOptions& opts) {
  const vid n = g.num_vertices();
  SccResult result;
  result.labels.assign(n, graph::kInvalidVid);
  if (n == 0) return result;

  const Digraph rev = g.reverse();
  const std::uint64_t launches_before = dev.stats().kernel_launches;

  std::vector<std::uint8_t> active(n, 1);
  std::vector<std::uint8_t> trim_mark(n, 0);
  std::vector<std::uint64_t> color(n, 0);
  Bfs fwd(n);
  Bfs bwd(n);
  std::atomic<std::uint64_t> edges_processed{0};
  std::vector<vid> pivots;

  const std::uint64_t guard =
      opts.max_rounds ? opts.max_rounds : static_cast<std::uint64_t>(n) + 2;
  vid remaining = n;
  std::uint64_t round = 0;

  // Pivots-per-color this round (§15): clamped by the 8-bit tag rank field.
  const unsigned k = opts.multi_pivot ? std::min(opts.max_pivots, 64u) : 1u;
  std::vector<std::uint8_t> enc;
  std::uint64_t pivot_rounds = 0;

  while (remaining > 0) {
    if (++round > guard)
      throw std::logic_error("fb_trim: round guard exceeded (internal bug)");
    ++result.metrics.outer_iterations;

    // --- Trim phase (iterated Trim-1, optional Trim-2/3, §2). -------------
    TrimView view{g, rev, color, active, result.labels};
    remaining -= device_trim(view, dev, opts, trim_mark, result.metrics);
    if (remaining == 0) break;

    // --- Pivot selection. Classic: max active vertex ID per color [4].
    // Multi-pivot (§15): up to k pivots per color by Efraimidis–Spirakis
    // degree-weighted sampling without replacement — key = ln(u) / w with
    // u drawn per-vertex from the fixed seed and w = (out+1)*(in+1), the
    // k largest keys win. High-degree pivots make each BFS sweep cover
    // more of the class, and the fixed seed keeps runs reproducible. ------
    // slot_pivots is slot-major: pivot i of a color sits at slot * k + i,
    // index order = descending sampling key = detection priority.
    std::unordered_map<std::uint64_t, std::uint32_t> color_slot;
    color_slot.reserve(64);
    std::vector<std::pair<double, vid>> keys;  // slot-major, same layout
    std::vector<vid> slot_pivots;
    std::vector<std::uint8_t> slot_count;
    for (vid v = 0; v < n; ++v) {
      if (!active[v]) continue;
      const auto [it, inserted] =
          color_slot.try_emplace(color[v], static_cast<std::uint32_t>(slot_count.size()));
      const std::uint32_t slot = it->second;
      if (inserted) {
        slot_count.push_back(0);
        keys.resize(keys.size() + k, {0.0, 0});
        slot_pivots.resize(slot_pivots.size() + k, graph::kInvalidVid);
      }
      double key;
      if (opts.multi_pivot) {
        std::uint64_t state =
            opts.pivot_seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(v) + 1));
        const std::uint64_t h = splitmix64(state);
        // u in (0, 1]: the +1 keeps ln defined; w >= 1 always.
        const double u =
            (static_cast<double>(h >> 11) + 1.0) / 9007199254740993.0;  // 2^53 + 1
        const double w = (static_cast<double>(g.out_degree(v)) + 1.0) *
                         (static_cast<double>(rev.out_degree(v)) + 1.0);
        key = std::log(u) / w;
      } else {
        key = static_cast<double>(v);  // classic: highest vertex ID wins
      }
      // Insertion into the slot's top-k, kept sorted descending by
      // (key, vid) — ties broken by vid for full determinism.
      const std::size_t base = static_cast<std::size_t>(slot) * k;
      std::uint8_t count = slot_count[slot];
      const std::pair<double, vid> cand{key, v};
      if (count < k) {
        std::size_t i = base + count;
        while (i > base && keys[i - 1] < cand) {
          keys[i] = keys[i - 1];
          slot_pivots[i] = slot_pivots[i - 1];
          --i;
        }
        keys[i] = cand;
        slot_pivots[i] = v;
        slot_count[slot] = static_cast<std::uint8_t>(count + 1);
      } else if (cand > keys[base + k - 1]) {
        std::size_t i = base + k - 1;
        while (i > base && keys[i - 1] < cand) {
          keys[i] = keys[i - 1];
          slot_pivots[i] = slot_pivots[i - 1];
          --i;
        }
        keys[i] = cand;
        slot_pivots[i] = v;
      }
    }
    pivots.clear();
    enc.clear();
    for (std::size_t slot = 0; slot < slot_count.size(); ++slot) {
      for (std::uint8_t i = 0; i < slot_count[slot]; ++i) {
        pivots.push_back(slot_pivots[slot * k + i]);
        enc.push_back(static_cast<std::uint8_t>(k - i));  // index 0 = largest rank
      }
    }
    ++pivot_rounds;
    result.metrics.pivots_selected += pivots.size();
    if (pivots.size() > color_slot.size()) ++result.metrics.multi_pivot_rounds;

    // --- Forward and backward color-confined BFS (the FB core, [8]). ------
    result.metrics.propagation_rounds += fwd.run(g, dev, round, pivots, enc, active, color,
                                                 opts.edge_balanced, edges_processed);
    result.metrics.propagation_rounds += bwd.run(rev, dev, round, pivots, enc, active, color,
                                                 opts.edge_balanced, edges_processed);

    // --- Intersection = SCC; recolor the remainder subgraphs. -------------
    // A vertex claimed forward and backward by the SAME pivot index is in
    // that pivot's SCC (the claim tags are reachability fixpoints, constant
    // on every SCC). Distinct indices, or a missing side, put the vertex in
    // the (fi, bi) remainder class — the k=1 specialization is exactly the
    // classic 3-way split.
    std::atomic<std::uint64_t> found{0};
    dev.launch(dev.blocks_for(n), [&](const BlockContext& ctx) {
      std::uint64_t local_found = 0;
      ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t v = lo; v < hi; ++v) {
          if (!active[v]) continue;
          const std::uint64_t ft = fwd.tag[v].load(std::memory_order_relaxed);
          const std::uint64_t bt = bwd.tag[v].load(std::memory_order_relaxed);
          // Pivot index from the rank code; k = "not reached this round".
          const unsigned fi = Bfs::visited_round(ft) == round ? k - Bfs::tag_enc(ft) : k;
          const unsigned bi = Bfs::visited_round(bt) == round ? k - Bfs::tag_enc(bt) : k;
          if (fi < k && fi == bi) {
            result.labels[v] =
                slot_pivots[static_cast<std::size_t>(color_slot.at(color[v])) * k + fi];
            active[v] = 0;
            ++local_found;
          } else {
            // New subgraph ID: hash(old color, branch). A hash collision
            // merely merges two classes, which FB tolerates (every SCC is
            // still contained in one class).
            const std::uint64_t branch =
                static_cast<std::uint64_t>(fi) * (k + 1) + bi + 1;
            const std::uint64_t mix = static_cast<std::uint64_t>(k + 1) * (k + 1) + 1;
            std::uint64_t seed = color[v] * mix + branch;
            color[v] = splitmix64(seed);
          }
        }
      });
      found.fetch_add(local_found, std::memory_order_relaxed);
    });
    const std::uint64_t found_total = found.load(std::memory_order_relaxed);
    if (found_total == 0)
      throw std::logic_error("fb_trim: round found no SCC (internal bug)");
    remaining -= static_cast<vid>(found_total);
  }

  result.metrics.edges_processed = edges_processed.load(std::memory_order_relaxed);
  result.metrics.kernel_launches = dev.stats().kernel_launches - launches_before;
  if (pivot_rounds > 0)
    result.metrics.pivots_per_round =
        static_cast<double>(result.metrics.pivots_selected) / static_cast<double>(pivot_rounds);

  std::vector<vid> dense(result.labels.begin(), result.labels.end());
  result.num_components = graph::normalize_labels(dense);
  return result;
}

SccResult fb_trim(const Digraph& g, const FbOptions& opts) {
  return fb_trim(g, shared_device(), opts);
}

}  // namespace ecl::scc
