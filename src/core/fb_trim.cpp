#include "core/fb_trim.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "core/ecl_scc.hpp"
#include "core/trim.hpp"
#include "device/edge_partition.hpp"
#include "graph/condensation.hpp"
#include "support/rng.hpp"

namespace ecl::scc {
namespace {

using device::BlockContext;

/// Level-synchronous, color-confined parallel BFS from all pivots at once.
/// Visiting is recorded by stamping `tag[v] = round` (tags survive across
/// rounds, so no per-round clearing of the whole array is needed).
struct Bfs {
  explicit Bfs(vid n)
      : tag(std::make_unique<std::atomic<std::uint64_t>[]>(n)),
        frontier(n),
        next(n) {}

  std::unique_ptr<std::atomic<std::uint64_t>[]> tag;
  std::vector<vid> frontier;
  std::vector<vid> next;
  std::vector<graph::eid> prefix;  ///< frontier degree prefix sums (merge-path mode)

  /// Returns the number of BFS levels executed.
  std::uint64_t run(const Digraph& dir, device::Device& dev, std::uint64_t round,
                    std::span<const vid> sources, std::span<const std::uint8_t> active,
                    std::span<const std::uint64_t> color, bool edge_balanced,
                    std::atomic<std::uint64_t>& edges_processed) {
    std::size_t frontier_size = 0;
    for (vid s : sources) {
      tag[s].store(round, std::memory_order_relaxed);
      frontier[frontier_size++] = s;
    }
    std::uint64_t levels = 0;
    while (frontier_size > 0) {
      ++levels;
      std::uint64_t frontier_edges = 0;
      if (edge_balanced) {
        // Merge-path split (DESIGN.md §11): the frontier's degree prefix
        // sums form a frontier sub-CSR; blocks then own equal EDGE spans of
        // it, found with one upper_bound each — a hub's adjacency is split
        // across blocks instead of serializing one block.
        prefix.resize(frontier_size + 1);
        prefix[0] = 0;
        for (std::size_t i = 0; i < frontier_size; ++i)
          prefix[i + 1] = prefix[i] + dir.out_degree(frontier[i]);
        frontier_edges = prefix[frontier_size];
        if (frontier_edges == 0) break;  // frontier has no out-edges: done
      }
      std::atomic<std::size_t> next_size{0};
      // Idempotent: the tag CAS admits each vertex to `next` exactly once,
      // so a spurious replay of a block finds every neighbor already tagged
      // and its staged flush commits nothing.
      dev.launch(
          edge_balanced ? dev.blocks_for(frontier_edges) : dev.blocks_for(frontier_size),
          [&](const BlockContext& ctx) {
            std::uint64_t local_edges = 0;
            // Chunked reservation (DESIGN.md §10): newly tagged vertices are
            // staged per block and committed to `next` with one cursor
            // fetch_add per chunk instead of one per vertex.
            constexpr std::size_t kChunk = 1024;
            std::vector<vid> staged;
            staged.reserve(kChunk);
            auto flush = [&] {
              if (staged.empty()) return;
              const std::size_t at =
                  next_size.fetch_add(staged.size(), std::memory_order_relaxed);
              std::copy(staged.begin(), staged.end(), next.begin() + at);
              staged.clear();
            };
            auto expand = [&](vid u, std::span<const vid> targets) {
              for (vid w : targets) {
                ++local_edges;
                if (!active[w] || color[w] != color[u]) continue;
                std::uint64_t expected = tag[w].load(std::memory_order_relaxed);
                if (expected == round) continue;
                if (tag[w].compare_exchange_strong(expected, round,
                                                   std::memory_order_relaxed)) {
                  staged.push_back(w);
                  if (staged.size() >= kChunk) flush();
                }
              }
            };
            if (edge_balanced) {
              const device::EdgeSpan span =
                  device::equal_edge_span(ctx.block_id, ctx.num_blocks, frontier_edges);
              device::for_each_item_span(
                  std::span<const graph::eid>(prefix.data(), frontier_size + 1), span,
                  [&](std::size_t item, std::uint64_t lo, std::uint64_t hi) {
                    const vid u = frontier[item];
                    const auto nbrs = dir.out_neighbors(u);
                    expand(u, nbrs.subspan(lo - prefix[item], hi - lo));
                  });
            } else {
              ctx.for_each_chunk(frontier_size, [&](std::uint64_t lo, std::uint64_t hi) {
                for (std::uint64_t i = lo; i < hi; ++i)
                  expand(frontier[i], dir.out_neighbors(frontier[i]));
              });
            }
            flush();
            edges_processed.fetch_add(local_edges, std::memory_order_relaxed);
            dev.record_block_work(ctx.block_id, local_edges);
          },
          {.idempotent = true});
      frontier.swap(next);
      frontier_size = next_size.load(std::memory_order_relaxed);
    }
    return levels;
  }
};

/// Device-resident trimming, as GPU-SCC runs it: every Trim-1 sweep is a
/// mark kernel plus an apply kernel (snapshot semantics), iterated until no
/// trivial SCC remains — the launch-latency-bound loop that makes deep
/// trivial-SCC DAGs (beam-hex, star) expensive for FB-style codes (§5.1.1).
/// Trim-2/3 run as single-block kernels (one sweep per round).
vid device_trim(TrimView view, device::Device& dev, const FbOptions& opts,
                std::vector<std::uint8_t>& mark, SccMetrics& metrics) {
  using device::BlockContext;
  const vid n = view.g.num_vertices();
  vid total = 0;

  auto trim1_to_fixpoint = [&] {
    vid removed_total = 0;
    for (;;) {
      std::atomic<std::uint64_t> marked{0};
      dev.launch(dev.blocks_for(n), [&](const BlockContext& ctx) {
        std::uint64_t local = 0;
        ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
          local += trim1_mark_range(view, static_cast<vid>(lo), static_cast<vid>(hi),
                                    mark.data());
        });
        marked.fetch_add(local, std::memory_order_relaxed);
      });
      ++metrics.propagation_rounds;
      const auto count = marked.load(std::memory_order_relaxed);
      if (count == 0) break;
      dev.launch(dev.blocks_for(n), [&](const BlockContext& ctx) {
        ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
          for (std::uint64_t v = lo; v < hi; ++v) {
            if (mark[v]) {
              view.labels[v] = static_cast<vid>(v);
              view.active[v] = 0;
              mark[v] = 0;
            }
          }
        });
      });
      removed_total += static_cast<vid>(count);
    }
    return removed_total;
  };

  if (opts.trim1) total += trim1_to_fixpoint();
  vid pair_triple = 0;
  if (opts.trim2) {
    dev.launch(1, [&](const BlockContext&) { pair_triple += trim2_pass(view); });
  }
  if (opts.trim3) {
    dev.launch(1, [&](const BlockContext&) { pair_triple += trim3_pass(view); });
  }
  total += pair_triple;
  if (pair_triple > 0 && opts.trim1) total += trim1_to_fixpoint();
  return total;
}

}  // namespace

SccResult fb_trim(const Digraph& g, device::Device& dev, const FbOptions& opts) {
  const vid n = g.num_vertices();
  SccResult result;
  result.labels.assign(n, graph::kInvalidVid);
  if (n == 0) return result;

  const Digraph rev = g.reverse();
  const std::uint64_t launches_before = dev.stats().kernel_launches;

  std::vector<std::uint8_t> active(n, 1);
  std::vector<std::uint8_t> trim_mark(n, 0);
  std::vector<std::uint64_t> color(n, 0);
  Bfs fwd(n);
  Bfs bwd(n);
  std::atomic<std::uint64_t> edges_processed{0};
  std::vector<vid> pivots;

  const std::uint64_t guard =
      opts.max_rounds ? opts.max_rounds : static_cast<std::uint64_t>(n) + 2;
  vid remaining = n;
  std::uint64_t round = 0;

  while (remaining > 0) {
    if (++round > guard)
      throw std::logic_error("fb_trim: round guard exceeded (internal bug)");
    ++result.metrics.outer_iterations;

    // --- Trim phase (iterated Trim-1, optional Trim-2/3, §2). -------------
    TrimView view{g, rev, color, active, result.labels};
    remaining -= device_trim(view, dev, opts, trim_mark, result.metrics);
    if (remaining == 0) break;

    // --- Pivot selection: max active vertex ID per color class [4]. -------
    std::unordered_map<std::uint64_t, vid> pivot_of;
    pivot_of.reserve(64);
    for (vid v = 0; v < n; ++v) {
      if (!active[v]) continue;
      auto [it, inserted] = pivot_of.try_emplace(color[v], v);
      if (!inserted) it->second = std::max(it->second, v);
    }
    pivots.clear();
    for (const auto& [c, p] : pivot_of) pivots.push_back(p);

    // --- Forward and backward color-confined BFS (the FB core, [8]). ------
    result.metrics.propagation_rounds +=
        fwd.run(g, dev, round, pivots, active, color, opts.edge_balanced, edges_processed);
    result.metrics.propagation_rounds +=
        bwd.run(rev, dev, round, pivots, active, color, opts.edge_balanced, edges_processed);

    // --- Intersection = SCC; recolor the three remainder subgraphs. -------
    std::atomic<std::uint64_t> found{0};
    dev.launch(dev.blocks_for(n), [&](const BlockContext& ctx) {
      std::uint64_t local_found = 0;
      ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t v = lo; v < hi; ++v) {
          if (!active[v]) continue;
          const bool in_fwd = fwd.tag[v].load(std::memory_order_relaxed) == round;
          const bool in_bwd = bwd.tag[v].load(std::memory_order_relaxed) == round;
          if (in_fwd && in_bwd) {
            result.labels[v] = pivot_of.at(color[v]);
            active[v] = 0;
            ++local_found;
          } else {
            // New subgraph ID: hash(old color, branch). A hash collision
            // merely merges two classes, which FB tolerates (every SCC is
            // still contained in one class).
            const std::uint64_t branch = in_fwd ? 1 : (in_bwd ? 2 : 3);
            std::uint64_t seed = color[v] * 4 + branch;
            color[v] = splitmix64(seed);
          }
        }
      });
      found.fetch_add(local_found, std::memory_order_relaxed);
    });
    const std::uint64_t found_total = found.load(std::memory_order_relaxed);
    if (found_total == 0)
      throw std::logic_error("fb_trim: round found no SCC (internal bug)");
    remaining -= static_cast<vid>(found_total);
  }

  result.metrics.edges_processed = edges_processed.load(std::memory_order_relaxed);
  result.metrics.kernel_launches = dev.stats().kernel_launches - launches_before;

  std::vector<vid> dense(result.labels.begin(), result.labels.end());
  result.num_components = graph::normalize_labels(dense);
  return result;
}

SccResult fb_trim(const Digraph& g, const FbOptions& opts) {
  return fb_trim(g, shared_device(), opts);
}

}  // namespace ecl::scc
