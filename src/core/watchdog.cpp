#include "core/watchdog.hpp"

#include "support/env.hpp"

namespace ecl::scc {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
      .count();
}

}  // namespace

WatchdogConfig WatchdogConfig::defaults() {
  WatchdogConfig config;
  config.stall_seconds = env_double("ECL_WATCHDOG_SECONDS", 0.0);
  return config;
}

FixpointWatchdog::FixpointWatchdog(WatchdogConfig config, std::uint64_t n) : config_(config) {
  phase2_budget_ = config_.max_phase2_rounds ? config_.max_phase2_rounds : 4 * n + 64;
  anchor_ns_.store(now_ns(), std::memory_order_relaxed);
}

void FixpointWatchdog::note_progress() noexcept {
  no_progress_rounds_ = 0;
  anchor_ns_.store(now_ns(), std::memory_order_relaxed);
}

bool FixpointWatchdog::observe_iteration(std::uint64_t labeled,
                                         std::uint64_t worklist_size) noexcept {
  const bool progress = labeled > last_labeled_ || worklist_size < last_worklist_;
  last_labeled_ = labeled;
  last_worklist_ = worklist_size;
  if (progress) {
    note_progress();
    return false;
  }
  if (++no_progress_rounds_ >= config_.stall_rounds) {
    mark_stalled();
    return true;
  }
  return false;
}

void FixpointWatchdog::observe_phase2_round(std::uint64_t active_edges) noexcept {
  // Only a strict shrink re-arms the stall clock: under a progress-
  // suppressing fault the frontier stays saturated (deferred stores keep
  // re-stamping epochs), so the clock still runs out.
  if (active_edges < last_phase2_active_)
    anchor_ns_.store(now_ns(), std::memory_order_relaxed);
  last_phase2_active_ = active_edges;
}

bool FixpointWatchdog::expired() const noexcept {
  if (deadline_expired()) return true;
  if (config_.stall_seconds <= 0.0) return false;
  const auto elapsed_ns = now_ns() - anchor_ns_.load(std::memory_order_relaxed);
  return static_cast<double>(elapsed_ns) > config_.stall_seconds * 1e9;
}

bool FixpointWatchdog::deadline_expired() const noexcept {
  return config_.has_deadline() && Clock::now() >= config_.deadline;
}

}  // namespace ecl::scc
