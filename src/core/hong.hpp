#ifndef ECL_CORE_HONG_HPP
#define ECL_CORE_HONG_HPP

// Hong, Rodia, and Olukotun's Method (SC '13, [11]): the first parallel
// CPU algorithm that handled real-world power-law graphs well, and the
// template iSpan and GPU-SCC both build on (§2).
//
// Phase 1 (data parallel): Trim-1, then one Forward-Backward step from a
// high-product-degree pivot detects the giant SCC. Phase 2 (task
// parallel): Trim-1/Trim-2 on the residual, then a weakly-connected-
// component decomposition splits it into independent pieces, each
// processed by recursive Forward-Backward as an OpenMP task.

#include "core/result.hpp"

namespace ecl::scc {

struct HongOptions {
  unsigned num_threads = 0;  ///< OpenMP threads; 0 keeps the runtime default
  bool trim2 = true;
};

SccResult hong(const Digraph& g, const HongOptions& opts = {});

}  // namespace ecl::scc

#endif  // ECL_CORE_HONG_HPP
