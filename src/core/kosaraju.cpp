#include "core/kosaraju.hpp"

namespace ecl::scc {

SccResult kosaraju(const Digraph& g) {
  const vid n = g.num_vertices();

  // Pass 1: iterative DFS post-order on g.
  std::vector<vid> order;
  order.reserve(n);
  {
    std::vector<std::uint8_t> visited(n, 0);
    struct Frame {
      vid v;
      eid next_edge;
    };
    std::vector<Frame> dfs;
    for (vid root = 0; root < n; ++root) {
      if (visited[root]) continue;
      visited[root] = 1;
      dfs.push_back({root, 0});
      while (!dfs.empty()) {
        Frame& frame = dfs.back();
        const auto row = g.out_neighbors(frame.v);
        if (frame.next_edge < row.size()) {
          const vid w = row[frame.next_edge++];
          if (!visited[w]) {
            visited[w] = 1;
            dfs.push_back({w, 0});
          }
        } else {
          order.push_back(frame.v);
          dfs.pop_back();
        }
      }
    }
  }

  // Pass 2: DFS on the transpose in reverse post-order; each tree is an SCC.
  const Digraph rev = g.reverse();
  SccResult result;
  result.labels.assign(n, graph::kInvalidVid);
  vid next_component = 0;
  std::vector<vid> stack;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (result.labels[*it] != graph::kInvalidVid) continue;
    stack.push_back(*it);
    result.labels[*it] = next_component;
    while (!stack.empty()) {
      const vid v = stack.back();
      stack.pop_back();
      for (vid w : rev.out_neighbors(v)) {
        if (result.labels[w] == graph::kInvalidVid) {
          result.labels[w] = next_component;
          stack.push_back(w);
        }
      }
    }
    ++next_component;
  }

  result.num_components = next_component;
  return result;
}

}  // namespace ecl::scc
