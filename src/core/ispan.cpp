#include "core/ispan.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <unordered_map>

#include "core/trim.hpp"
#include "graph/condensation.hpp"
#include "support/rng.hpp"

namespace ecl::scc {
namespace {

/// OpenMP level-synchronous BFS confined to active same-color vertices.
/// Visited vertices are stamped with `round` in `tag`.
struct OmpBfs {
  explicit OmpBfs(vid n) : tag(n, 0), frontier(n), next(n) {}

  std::vector<std::uint64_t> tag;
  std::vector<vid> frontier;
  std::vector<vid> next;

  std::uint64_t run(const Digraph& dir, std::uint64_t round, std::span<const vid> sources,
                    std::span<const std::uint8_t> active,
                    std::span<const std::uint64_t> color,
                    std::uint64_t& edges_processed) {
    std::size_t frontier_size = 0;
    for (vid s : sources) {
      tag[s] = round;
      frontier[frontier_size++] = s;
    }
    std::uint64_t levels = 0;
    while (frontier_size > 0) {
      ++levels;
      std::atomic<std::size_t> next_size{0};
      std::uint64_t level_edges = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : level_edges)
      for (std::size_t i = 0; i < frontier_size; ++i) {
        const vid u = frontier[i];
        for (vid w : dir.out_neighbors(u)) {
          ++level_edges;
          if (!active[w] || color[w] != color[u]) continue;
          std::atomic_ref<std::uint64_t> slot(tag[w]);
          std::uint64_t expected = slot.load(std::memory_order_relaxed);
          if (expected == round) continue;
          if (slot.compare_exchange_strong(expected, round, std::memory_order_relaxed)) {
            next[next_size.fetch_add(1, std::memory_order_relaxed)] = w;
          }
        }
      }
      edges_processed += level_edges;
      frontier.swap(next);
      frontier_size = next_size.load(std::memory_order_relaxed);
    }
    return levels;
  }
};

}  // namespace

SccResult ispan(const Digraph& g, const IspanOptions& opts) {
  const vid n = g.num_vertices();
  SccResult result;
  result.labels.assign(n, graph::kInvalidVid);
  if (n == 0) return result;

  const int saved_threads = omp_get_max_threads();
  if (opts.num_threads > 0) omp_set_num_threads(static_cast<int>(opts.num_threads));

  const Digraph rev = g.reverse();
  std::vector<std::uint8_t> active(n, 1);
  std::vector<std::uint64_t> color(n, 0);
  std::vector<eid> in_deg = g.in_degrees();

  OmpBfs fwd(n);
  OmpBfs bwd(n);
  std::uint64_t edges_processed = 0;
  vid remaining = n;

  // ---- Phase 1: large-SCC detection. --------------------------------------
  {
    TrimView view{g, rev, color, active, result.labels};
    remaining -= trim1(view, &result.metrics);
  }
  if (remaining > 0) {
    // Root heuristic: the active vertex with the largest in*out degree
    // product is almost surely inside the giant SCC of a power-law graph.
    vid root = graph::kInvalidVid;
    std::uint64_t best = 0;
    for (vid v = 0; v < n; ++v) {
      if (!active[v]) continue;
      const std::uint64_t score =
          (static_cast<std::uint64_t>(g.out_degree(v)) + 1) * (in_deg[v] + 1);
      if (root == graph::kInvalidVid || score > best) {
        best = score;
        root = v;
      }
    }

    ++result.metrics.outer_iterations;
    const vid sources[1] = {root};
    result.metrics.propagation_rounds +=
        fwd.run(g, 1, sources, active, color, edges_processed);
    result.metrics.propagation_rounds +=
        bwd.run(rev, 1, sources, active, color, edges_processed);

    std::uint64_t found = 0;
#pragma omp parallel for schedule(static) reduction(+ : found)
    for (vid v = 0; v < n; ++v) {
      if (!active[v]) continue;
      const bool in_fwd = fwd.tag[v] == 1;
      const bool in_bwd = bwd.tag[v] == 1;
      if (in_fwd && in_bwd) {
        result.labels[v] = root;
        active[v] = 0;
        ++found;
      } else {
        std::uint64_t seed = color[v] * 4 + (in_fwd ? 1 : (in_bwd ? 2 : 3));
        color[v] = splitmix64(seed);
      }
    }
    remaining -= static_cast<vid>(found);
  }

  // ---- Phase 2: small-SCC detection (trims + FB rounds on the residue). ---
  const std::uint64_t guard =
      opts.max_rounds ? opts.max_rounds : static_cast<std::uint64_t>(n) + 2;
  std::uint64_t round = 1;
  std::vector<vid> pivots;
  while (remaining > 0) {
    if (round++ > guard) throw std::logic_error("ispan: round guard exceeded (internal bug)");
    ++result.metrics.outer_iterations;

    TrimView view{g, rev, color, active, result.labels};
    vid trimmed = trim1(view, &result.metrics);
    if (opts.trim2) trimmed += trim2_pass(view);
    if (opts.trim3) trimmed += trim3_pass(view);
    if (opts.trim2 || opts.trim3) trimmed += trim1(view, &result.metrics);
    remaining -= trimmed;
    if (remaining == 0) break;

    std::unordered_map<std::uint64_t, vid> pivot_of;
    for (vid v = 0; v < n; ++v) {
      if (!active[v]) continue;
      auto [it, inserted] = pivot_of.try_emplace(color[v], v);
      if (!inserted) it->second = std::max(it->second, v);
    }
    pivots.clear();
    for (const auto& [c, p] : pivot_of) pivots.push_back(p);

    result.metrics.propagation_rounds +=
        fwd.run(g, round, pivots, active, color, edges_processed);
    result.metrics.propagation_rounds +=
        bwd.run(rev, round, pivots, active, color, edges_processed);

    std::uint64_t found = 0;
#pragma omp parallel for schedule(static) reduction(+ : found)
    for (vid v = 0; v < n; ++v) {
      if (!active[v]) continue;
      const bool in_fwd = fwd.tag[v] == round;
      const bool in_bwd = bwd.tag[v] == round;
      if (in_fwd && in_bwd) {
        result.labels[v] = pivot_of.at(color[v]);
        active[v] = 0;
        ++found;
      } else {
        std::uint64_t seed = color[v] * 4 + (in_fwd ? 1 : (in_bwd ? 2 : 3));
        color[v] = splitmix64(seed);
      }
    }
    if (found == 0) throw std::logic_error("ispan: round found no SCC (internal bug)");
    remaining -= static_cast<vid>(found);
  }

  if (opts.num_threads > 0) omp_set_num_threads(saved_threads);

  result.metrics.edges_processed = edges_processed;
  std::vector<vid> dense(result.labels.begin(), result.labels.end());
  result.num_components = graph::normalize_labels(dense);
  return result;
}

}  // namespace ecl::scc
