#ifndef ECL_CORE_ECL_OMP_HPP
#define ECL_CORE_ECL_OMP_HPP

// Multicore CPU implementation of ECL-SCC (extension, not in the paper).
//
// The max-ID-propagation algorithm is not GPU-specific: this is an
// independent OpenMP translation of Algorithm 1 with the worklist and
// path-compression optimizations, using relaxed atomic_ref stores for the
// benign signature races. Besides demonstrating portability, it serves the
// test suite as a second, independently coded implementation of the
// paper's contribution.

#include "core/result.hpp"

namespace ecl::scc {

struct EclOmpOptions {
  unsigned num_threads = 0;  ///< OpenMP threads; 0 keeps the runtime default
  bool path_compression = true;
  bool remove_scc_edges = true;
  /// Per-vertex epoch stamps skip edges whose endpoints are both quiescent
  /// (the CPU translation of the device hot path's gate, DESIGN.md §10).
  bool frontier_gating = true;
  /// Equal contiguous edge spans per thread in the edge phases (the CPU
  /// translation of the device edge-balance lever, DESIGN.md §11): plain
  /// schedule(static). Off mirrors the classic device distribution with
  /// block-cyclic 512-edge chunks (schedule(static, 512)).
  bool edge_balanced = true;
  /// Vertical granularity control (the CPU translation of the device
  /// chain-chasing lever, DESIGN.md §15): a thread that moves a vertex on a
  /// degree-one chain of the current edge list walks the chain locally,
  /// collapsing one-round-per-link propagation on path-like regions.
  bool chain_chasing = true;
  std::uint32_t chain_cap = 64;  ///< bound on one local chase
};

/// Runs ECL-SCC on the CPU. Labels are the max vertex ID per component.
SccResult ecl_omp(const Digraph& g, const EclOmpOptions& opts = {});

}  // namespace ecl::scc

#endif  // ECL_CORE_ECL_OMP_HPP
