#ifndef ECL_CORE_RESULT_HPP
#define ECL_CORE_RESULT_HPP

// Common result type returned by every SCC algorithm in the library.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace ecl::scc {

using graph::Digraph;
using graph::eid;
using graph::vid;

/// Instrumentation counters filled in by the algorithms; the quantities the
/// paper's optimization study (Fig. 14) reasons about.
struct SccMetrics {
  std::uint64_t outer_iterations = 0;    ///< Alg. 1 while-loop trips / FB rounds
  std::uint64_t propagation_rounds = 0;  ///< Phase-2 global rounds / BFS levels
  std::uint64_t edges_processed = 0;     ///< total edge visits across all rounds
  std::uint64_t edges_removed = 0;       ///< worklist shrinkage (Phase 3)
  std::uint64_t kernel_launches = 0;     ///< virtual-device launches
  std::uint64_t block_iterations = 0;    ///< async-kernel internal repeats

  /// Wall-clock split across Algorithm 1's phases (filled by ecl_scc; the
  /// paper's §3.3 identifies Phase 2 as the dominant, optimization-worthy
  /// cost). phase3_seconds includes component detection + edge removal.
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
  double phase3_seconds = 0.0;
};

/// An SCC decomposition: labels[v] identifies v's component. Label values
/// are algorithm-specific (ECL-SCC: the max vertex ID in the component;
/// Tarjan: discovery index); use `same_partition` to compare decompositions.
struct SccResult {
  std::vector<vid> labels;
  vid num_components = 0;
  SccMetrics metrics;
};

/// True iff two labelings induce the same partition of [0, n).
bool same_partition(std::span<const vid> a, std::span<const vid> b);

/// Rewrites labels so every component is named by its smallest member
/// (a canonical form that is algorithm-independent).
void canonicalize_labels(std::span<vid> labels);

}  // namespace ecl::scc

#endif  // ECL_CORE_RESULT_HPP
