#ifndef ECL_CORE_RESULT_HPP
#define ECL_CORE_RESULT_HPP

// Common result type returned by every SCC algorithm in the library.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace ecl::scc {

using graph::Digraph;
using graph::eid;
using graph::vid;

/// Structured failure status carried in SccResult instead of a thrown
/// exception, so callers (bench harness, examples, services) can degrade
/// gracefully rather than terminate.
enum class SccStatus : std::uint8_t {
  kOk = 0,
  kStalled,           ///< fixpoint watchdog: no progress within its budget
  kWorklistOverflow,  ///< EdgeWorklist append ran past capacity
  kIterationGuard,    ///< outer loop exceeded its iteration budget
  kException,         ///< the algorithm threw (caught by run_resilient)
  kVerifyFailed,      ///< labeling rejected by verify_scc (run_resilient)
  kDeadlineExceeded,  ///< the run's wall-clock deadline passed (watchdog /
                      ///< run_with_deadline); labels may be partial
  kCertificationFailed,  ///< labeling rejected by the online certifier
                         ///< (certify_scc): structurally complete but NOT a
                         ///< valid SCC decomposition — a silently corrupted
                         ///< run. Feeds the recovery ladder; never served.
};

/// Stable short name ("ok", "stalled", ...) for logs and tables.
const char* status_name(SccStatus status);

struct SccError {
  SccStatus code = SccStatus::kOk;
  std::string message;  ///< empty when ok

  explicit operator bool() const noexcept { return code != SccStatus::kOk; }
};

/// Instrumentation counters filled in by the algorithms; the quantities the
/// paper's optimization study (Fig. 14) reasons about.
struct SccMetrics {
  std::uint64_t outer_iterations = 0;    ///< Alg. 1 while-loop trips / FB rounds
  std::uint64_t propagation_rounds = 0;  ///< Phase-2 global rounds / BFS levels
  std::uint64_t edges_processed = 0;     ///< total edge visits across all rounds
  std::uint64_t edges_removed = 0;       ///< worklist shrinkage (Phase 3)
  std::uint64_t kernel_launches = 0;     ///< virtual-device launches
  std::uint64_t block_iterations = 0;    ///< async-kernel internal repeats

  /// Frontier gating (DESIGN.md §10): edge visits skipped because both
  /// endpoints were quiescent, and the number of propagation rounds in
  /// which at least one edge was skipped. Hash-bag sparse rounds (§15)
  /// also count here — every edge they never had to gate-check is a skip.
  /// Zero when both the gate and the hash bag are off.
  std::uint64_t edges_skipped = 0;
  std::uint64_t frontier_rounds = 0;

  /// High-diameter levers (DESIGN.md §15). Chain chasing: single-successor
  /// chains collapsed into one worker's local walk (each collapse saves a
  /// whole propagation round for that chain), steps taken across all of
  /// them, and the longest single chase. Hash bag: Phase-2 rounds served
  /// from the sparse mover bag instead of a dense worklist sweep.
  /// Multi-pivot FB: forward/backward rounds that ran with >1 pivot, total
  /// pivots selected across all rounds, and the mean pivots per round
  /// (over ALL fb rounds, single-pivot ones included). All zero when the
  /// corresponding lever is off.
  std::uint64_t chains_collapsed = 0;
  std::uint64_t chain_steps = 0;
  std::uint64_t max_chain_len = 0;
  std::uint64_t hashbag_rounds = 0;
  std::uint64_t multi_pivot_rounds = 0;
  std::uint64_t pivots_selected = 0;
  double pivots_per_round = 0.0;
  /// Edges dropped by worklist appends past capacity (EdgeWorklist::
  /// dropped_edges()): the real loss behind SccStatus::kWorklistOverflow.
  std::uint64_t edges_dropped = 0;

  /// True when the degree-skew pre-scan admitted the hub-clustering
  /// permutation and the solve actually ran on the reordered graph
  /// (DESIGN.md §11/§15). Lets callers — bench_loadbalance's predictor
  /// contract in particular — distinguish "gate declined, configs
  /// identical" from "gate fired, compare the timings".
  bool hub_reorder_applied = false;

  /// Wall-clock split across Algorithm 1's phases (filled by ecl_scc; the
  /// paper's §3.3 identifies Phase 2 as the dominant, optimization-worthy
  /// cost). phase3_seconds includes component detection + edge removal.
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
  double phase3_seconds = 0.0;

  /// Resilience accounting: set when a watchdog trip / overflow / guard was
  /// recovered by completing the labeling with the serial fallback.
  bool serial_fallback = false;
  std::uint64_t fallback_vertices = 0;  ///< residual size handed to the fallback
  std::uint64_t watchdog_trips = 0;     ///< stalls detected by the watchdog

  /// Self-healing accounting (DESIGN.md §12): quiescent-round checkpoints
  /// taken, watchdog/overflow trips recovered by replaying from the last
  /// checkpoint, and the Phase-2 sweeps that were discarded at those
  /// replay points (work re-done because it postdated the snapshot).
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t resumes = 0;
  std::uint64_t rounds_replayed = 0;
  /// Wall-clock from the FIRST fault detection (watchdog trip / overflow)
  /// to the end of the run — the recovery latency bench_chaos_recovery
  /// compares across the ladder's rungs. 0 when the run never tripped.
  double recovery_seconds = 0.0;
  /// Ladder accounting (core/registry.hpp run_resilient): full fresh
  /// reruns performed after the primary attempt's result was rejected.
  std::uint64_t fresh_reruns = 0;
  /// Online certification (core/verify.hpp certify_scc): set when the
  /// labels in this result passed the certificate check, plus the time the
  /// check took (the fault-free overhead bench_chaos_recovery bounds).
  bool certified = false;
  double certify_seconds = 0.0;

  /// Fleet accounting (DESIGN.md §13, src/fleet/): shard count the run was
  /// partitioned into (0 = not a sharded run), distinct boundary vertices
  /// whose signatures were exchanged between shards, and the number of
  /// cross-shard max-reduce exchange rounds performed before global
  /// quiescence (summed over outer iterations).
  std::uint64_t shards = 0;
  std::uint64_t boundary_vertices = 0;
  std::uint64_t exchange_rounds = 0;

  /// Fleet self-healing (DESIGN.md §14): device-ejection failover events
  /// survived by the sharded coordinator (each restores the last
  /// exchange-boundary checkpoint), shards re-homed onto surviving devices
  /// across those events, straggler flags raised by the per-shard sweep
  /// timer, and preemptive shard migrations those flags triggered.
  std::uint64_t failovers = 0;
  std::uint64_t shards_rehomed = 0;
  std::uint64_t stragglers_flagged = 0;
  std::uint64_t straggler_migrations = 0;
  /// Set when the pool had NO admitted device and the run was served on a
  /// quarantined one anyway — the same serving-somewhere-beats-nowhere
  /// last resort the router applies, made visible instead of implicit.
  bool pool_last_resort = false;
};

/// An SCC decomposition: labels[v] identifies v's component. Label values
/// are algorithm-specific (ECL-SCC: the max vertex ID in the component;
/// Tarjan: discovery index); use `same_partition` to compare decompositions.
struct SccResult {
  std::vector<vid> labels;
  vid num_components = 0;
  SccMetrics metrics;
  /// Non-ok when the run hit a detected failure. When the algorithm
  /// recovered via the serial fallback (metrics.serial_fallback), the
  /// labels are still a complete, verified-shape decomposition and the
  /// error records what was survived; without recovery the labels may be
  /// partial (unlabeled vertices hold graph::kInvalidVid).
  SccError error;

  bool ok() const noexcept { return error.code == SccStatus::kOk; }
};

/// True iff two labelings induce the same partition of [0, n).
bool same_partition(std::span<const vid> a, std::span<const vid> b);

/// Rewrites labels so every component is named by its smallest member
/// (a canonical form that is algorithm-independent).
void canonicalize_labels(std::span<vid> labels);

}  // namespace ecl::scc

#endif  // ECL_CORE_RESULT_HPP
