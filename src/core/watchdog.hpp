#ifndef ECL_CORE_WATCHDOG_HPP
#define ECL_CORE_WATCHDOG_HPP

// Fixpoint watchdog.
//
// ECL-SCC's outer loop and its Phase-2 propagation loop are fixpoint
// iterations whose termination argument assumes every reported signature
// movement is real. Under fault injection (delayed-visibility stores that
// defer writes but report movement) — or under a genuine implementation bug
// — that assumption breaks and the loops spin forever. The watchdog bounds
// both loops and converts a detected stall into a structured SccError
// (core/result.hpp) instead of a hang or a thrown std::logic_error:
//
//  * outer loop: no new labels AND no worklist shrinkage for `stall_rounds`
//    consecutive iterations => stalled;
//  * Phase 2: more than `phase2_round_budget()` propagation sweeps in one
//    fixpoint (counting async in-block re-iterations) => stalled. The
//    default budget, 4n + 64, is a safety multiple of the n-round
//    worst-case of synchronous max-propagation, with headroom for rounds
//    lost to benign races;
//  * wall clock: optionally, more than `stall_seconds` without progress
//    (label growth or worklist shrinkage) => stalled. Disabled by default
//    so legitimately long fault-free runs never trip it; enable it (or set
//    ECL_WATCHDOG_SECONDS) for latency-sensitive deployments;
//  * deadline: optionally, an absolute wall-clock deadline after which the
//    run is cancelled regardless of progress. This is how the request
//    pipeline (src/service) propagates a per-request deadline into a
//    running fixpoint: progress does not re-arm it, so a healthy but
//    too-slow run still stops when its request expires.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ecl::scc {

struct WatchdogConfig {
  /// K: consecutive outer iterations without progress before a stall is
  /// declared. The theoretical minimum progress is one SCC per iteration,
  /// so 2 already tolerates one anomalous round.
  std::uint64_t stall_rounds = 2;
  /// Budget on Phase-2 propagation sweeps per fixpoint; 0 = auto (4n + 64).
  std::uint64_t max_phase2_rounds = 0;
  /// T: wall-clock seconds without progress before a stall is declared;
  /// 0 disables the wall-clock monitor.
  double stall_seconds = 0.0;
  /// Absolute wall-clock deadline for the whole run; once it passes,
  /// expired() reports true no matter how much progress is being made.
  /// The default-constructed time_point (the clock epoch) disables it.
  std::chrono::steady_clock::time_point deadline{};

  bool has_deadline() const noexcept {
    return deadline != std::chrono::steady_clock::time_point{};
  }

  /// Default config with stall_seconds taken from ECL_WATCHDOG_SECONDS.
  static WatchdogConfig defaults();
};

/// Stall detector around one solver run. The expired() check is safe to
/// call concurrently from device blocks (async Phase-2 inner loops).
class FixpointWatchdog {
 public:
  /// `n` is the vertex count, used to resolve the automatic Phase-2 budget.
  explicit FixpointWatchdog(WatchdogConfig config, std::uint64_t n);

  const WatchdogConfig& config() const noexcept { return config_; }

  /// Resolved Phase-2 sweep budget for this run.
  std::uint64_t phase2_round_budget() const noexcept { return phase2_budget_; }

  /// Records forward progress: resets the no-progress round counter and
  /// the wall-clock anchor.
  void note_progress() noexcept;

  /// Observes the end of one outer iteration. Progress means the labeled
  /// count grew or the worklist shrank. Returns true when the configured
  /// number of consecutive no-progress iterations has been reached.
  bool observe_iteration(std::uint64_t labeled, std::uint64_t worklist_size) noexcept;

  /// Frontier-gated Phase 2's early-quiesce signal: called once per global
  /// propagation round with the number of edges the gated sweep actually
  /// processed. A strictly shrinking active frontier means the fixpoint is
  /// quiescing — forward progress for the wall-clock monitor even while
  /// labels and worklist size are frozen mid-fixpoint — so it re-arms the
  /// stall clock. It deliberately does NOT touch the outer no-progress
  /// round counter (a quiescing sweep that then labels nothing is still a
  /// stalled outer loop) and a flat or growing frontier (e.g. chaos-deferred
  /// stores re-stamping epochs forever) re-arms nothing.
  void observe_phase2_round(std::uint64_t active_edges) noexcept;

  /// Wall-clock monitor: true when stall_seconds > 0 and that much time has
  /// passed since the last recorded progress, or when the configured
  /// deadline has passed. Thread-safe and cheap (one steady_clock read).
  bool expired() const noexcept;

  /// Deadline monitor alone: true when a deadline is configured and has
  /// passed. Unlike the stall clock, note_progress() does not re-arm it, so
  /// callers can distinguish "no progress" from "out of time".
  bool deadline_expired() const noexcept;

  /// True once observe_iteration or a phase-2 budget caller declared a
  /// stall via mark_stalled().
  bool stalled() const noexcept { return stalled_.load(std::memory_order_relaxed); }
  void mark_stalled() noexcept { stalled_.store(true, std::memory_order_relaxed); }

 private:
  WatchdogConfig config_;
  std::uint64_t phase2_budget_ = 0;
  std::uint64_t last_labeled_ = 0;
  std::uint64_t last_worklist_ = ~std::uint64_t{0};
  /// Starts at 0 so the first observed frontier (a growth) never re-arms.
  std::uint64_t last_phase2_active_ = 0;
  std::uint64_t no_progress_rounds_ = 0;
  std::atomic<std::int64_t> anchor_ns_{0};
  std::atomic<bool> stalled_{false};
};

}  // namespace ecl::scc

#endif  // ECL_CORE_WATCHDOG_HPP
