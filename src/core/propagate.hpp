#ifndef ECL_CORE_PROPAGATE_HPP
#define ECL_CORE_PROPAGATE_HPP

// Per-edge Phase-2 propagation primitives, shared between the single-device
// solver (ecl_scc.cpp) and the fleet's sharded engine (src/fleet/).
//
// The sharded fixpoint (DESIGN.md §13) is only bit-identical to a
// single-device run because every shard executes the SAME monotone store and
// the SAME per-edge update rule — including path compression's lift writes
// and the chaos device's store-fault semantics. Extracting the primitives
// here keeps that "same rule" property a fact of the build rather than a
// convention between two copies of the code.
//
// Everything operates on a SigView: the slice of solver state the per-edge
// update needs (the signature arrays plus the device's fault hook). The
// single-device EclState and a fleet shard replica both provide exactly
// this slice.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/ecl_scc.hpp"
#include "device/atomics.hpp"
#include "device/edge_partition.hpp"
#include "device/fault.hpp"
#include "device/hash_bag.hpp"
#include "device/signature_store.hpp"
#include "graph/digraph.hpp"

namespace ecl::scc::detail {

/// Grid size for an edge/vertex kernel under the selected threading mode.
inline unsigned grid_size(device::Device& dev, std::uint64_t items, bool persistent) {
  if (persistent)
    return std::min<std::uint64_t>(dev.profile().resident_blocks(),
                                   std::max<std::uint64_t>(1, dev.blocks_for(items)));
  return dev.blocks_for(items);
}

/// Work distribution for the edge phases: equal contiguous edge spans
/// (degenerate merge-path on the flat worklist, DESIGN.md §11) or the
/// classic block-cyclic chunks. Either way the body sees half-open
/// [lo, hi) index ranges covering exactly the block's edges.
template <typename Body>
void for_each_owned(const device::BlockContext& ctx, std::uint64_t total, bool edge_balanced,
                    Body&& body) {
  if (edge_balanced) {
    const device::EdgeSpan span = device::equal_edge_span(ctx.block_id, ctx.num_blocks, total);
    if (!span.empty()) body(span.begin, span.end);
  } else {
    ctx.for_each_chunk(total, body);
  }
}

/// The propagation-visible slice of a solver's state.
struct SigView {
  device::SignatureStore& sigs;
  /// Delayed-visibility / lost-update fault hook; null unless the device
  /// injects it for the current launch.
  device::FaultInjector* fault = nullptr;
  /// Sparse-frontier mover bag (DESIGN.md §15); when set, every store that
  /// moves a signature registers the owning vertex, so the NEXT round can
  /// visit only edges incident to this round's movers. Dedup-on-insert
  /// makes repeated movements of one vertex (e.g. along a chased chain)
  /// cost one frontier entry.
  device::HashBag* bag = nullptr;
};

/// Signature store dispatch: the paper's atomic-free monotonic store or a
/// CAS atomic max (§3.4). Under the delayed-visibility fault a store may be
/// deferred: dropped this round but reported as movement when it would have
/// changed the slot, so the propagation loop retries until it lands —
/// exactly the lost-update tolerance the monotonic store relies on.
/// Under the lost-update fault the store is dropped AND reported as no
/// movement: the fixpoint silently converges short of the true one, which
/// only the online certifier (core/verify.hpp) can detect downstream.
///
/// `owner` is the vertex whose signature the slot belongs to. Any reported
/// movement — including a deferred store's, so the retry round still sees
/// the edge as active — stamps the owner's frontier epoch with the current
/// round, keeping its incident edges in the active frontier.
inline bool store_max(const SigView& st, device::AtomicU32& slot, vid owner,
                      std::uint32_t value, const EclOptions& opts,
                      std::uint32_t round) noexcept {
  bool moved;
  if (st.fault && st.fault->lose_store()) return false;
  if (st.fault && st.fault->defer_store())
    moved = value > slot.load(std::memory_order_relaxed);
  else
    moved = opts.use_atomic_max ? device::atomic_fetch_max(slot, value)
                                : device::racy_store_max(slot, value);
  if (moved) {
    if (opts.frontier_gating)
      st.sigs.epoch(owner).store(round, std::memory_order_relaxed);
    if (st.bag) st.bag->insert(owner);
  }
  return moved;
}

inline bool store_min(const SigView& st, device::AtomicU32& slot, vid owner,
                      std::uint32_t value, const EclOptions& opts,
                      std::uint32_t round) noexcept {
  bool moved;
  if (st.fault && st.fault->lose_store()) return false;
  if (st.fault && st.fault->defer_store())
    moved = value < slot.load(std::memory_order_relaxed);
  else
    moved = opts.use_atomic_max ? device::atomic_fetch_min(slot, value)
                                : device::racy_store_min(slot, value);
  if (moved) {
    if (opts.frontier_gating)
      st.sigs.epoch(owner).store(round, std::memory_order_relaxed);
    if (st.bag) st.bag->insert(owner);
  }
  return moved;
}

/// Phase-2 body for one edge (u -> v). Returns true if any signature moved.
inline bool propagate_edge(const SigView& st, graph::Edge e, const EclOptions& opts,
                           std::uint32_t round) noexcept {
  const vid u = e.src;
  const vid v = e.dst;
  bool any = false;

  // out[u] <- max(out[u], out[v])   (compressed: out[out[v]], §3.3)
  std::uint32_t ov = st.sigs.vout(v).load(std::memory_order_relaxed);
  if (opts.path_compression) ov = st.sigs.vout(ov).load(std::memory_order_relaxed);
  const std::uint32_t ou = st.sigs.vout(u).load(std::memory_order_relaxed);
  if (ov > ou) {
    if (opts.path_compression && ou != u) {
      // Lift: ou is a descendant of u, so u's ancestors are ou's ancestors.
      const std::uint32_t iu = st.sigs.vin(u).load(std::memory_order_relaxed);
      any |= store_max(st, st.sigs.vin(ou), ou, iu, opts, round);
    }
    any |= store_max(st, st.sigs.vout(u), u, ov, opts, round);
  }

  // in[v] <- max(in[v], in[u])   (compressed: in[in[u]])
  std::uint32_t iu = st.sigs.vin(u).load(std::memory_order_relaxed);
  if (opts.path_compression) iu = st.sigs.vin(iu).load(std::memory_order_relaxed);
  const std::uint32_t iv = st.sigs.vin(v).load(std::memory_order_relaxed);
  if (iu > iv) {
    if (opts.path_compression && iv != v) {
      // Lift: iv is an ancestor of v, so v's descendants are iv's descendants.
      const std::uint32_t ovv = st.sigs.vout(v).load(std::memory_order_relaxed);
      any |= store_max(st, st.sigs.vout(iv), iv, ovv, opts, round);
    }
    any |= store_max(st, st.sigs.vin(v), v, iu, opts, round);
  }
  return any;
}

/// Minimum-ID propagation for one edge (the 4-signature variant): the
/// exact mirror of the maximum propagation, including path compression
/// (min_in[min_in[u]] <= min_in[u] stays an ancestor-or-self of v).
inline bool propagate_edge_min(const SigView& st, graph::Edge e, const EclOptions& opts,
                               std::uint32_t round) noexcept {
  const vid u = e.src;
  const vid v = e.dst;
  bool any = false;

  std::uint32_t ov = st.sigs.min_out(v).load(std::memory_order_relaxed);
  if (opts.path_compression) ov = st.sigs.min_out(ov).load(std::memory_order_relaxed);
  const std::uint32_t ou = st.sigs.min_out(u).load(std::memory_order_relaxed);
  if (ov < ou) {
    if (opts.path_compression && ou != u) {
      const std::uint32_t iu = st.sigs.min_in(u).load(std::memory_order_relaxed);
      any |= store_min(st, st.sigs.min_in(ou), ou, iu, opts, round);
    }
    any |= store_min(st, st.sigs.min_out(u), u, ov, opts, round);
  }

  std::uint32_t iu = st.sigs.min_in(u).load(std::memory_order_relaxed);
  if (opts.path_compression) iu = st.sigs.min_in(iu).load(std::memory_order_relaxed);
  const std::uint32_t iv = st.sigs.min_in(v).load(std::memory_order_relaxed);
  if (iu < iv) {
    if (opts.path_compression && iv != v) {
      const std::uint32_t ovv = st.sigs.min_out(v).load(std::memory_order_relaxed);
      any |= store_min(st, st.sigs.min_out(iv), iv, ovv, opts, round);
    }
    any |= store_min(st, st.sigs.min_in(v), v, iu, opts, round);
  }
  return any;
}

// ---------------------------------------------------------------------------
// Vertical granularity control: chain chasing (DESIGN.md §15).
//
// On a path-like region of the SCC-DAG (meshes: degree ≈ 2–3), max-ID
// propagation advances ONE link per round — a signature must land at a grid
// barrier before the next edge's sweep can read it. A worker that just moved
// a vertex with exactly one worklist successor can instead walk that
// single-successor chain locally, applying the same per-edge update rule
// link by link, collapsing up to chain_cap rounds into one.
//
// Soundness: every step applies propagate_edge on an edge of the CURRENT
// worklist — the same monotone stores, lift writes, fault semantics, and
// epoch/bag stamping a round-scheduled visit would perform. The fixpoint is
// a function of the edge set alone, so executing some updates early (within
// a round) cannot change it; and because chains never leave the worklist,
// no Phase-3-removed edge is ever traversed.
// ---------------------------------------------------------------------------

/// Degree-one successor/predecessor index over an edge worklist. succ[u] is
/// the worklist successor of u if u has exactly one, else a sentinel;
/// likewise pred[v]. Rebuilt whenever the worklist changes (each outer
/// iteration; O(m) with no atomics — build on the control thread or shard
/// runner between launches).
struct ChainIndex {
  /// No worklist edge touches the vertex in this direction.
  static constexpr vid kNone = graph::kInvalidVid;
  /// More than one edge does — chase must stop.
  static constexpr vid kMany = graph::kInvalidVid - 1;

  std::vector<vid> succ, pred;
  /// Vertices with exactly one worklist successor or predecessor — the only
  /// places a chase can take a step. Zero on dense graphs: callers then skip
  /// the per-edge chase lookups entirely.
  std::uint64_t links = 0;
  /// Per-vertex round stamps deduplicating chases within one round: once a
  /// chase has pushed through a link this round, later movers on the same
  /// chain stop at the first already-walked vertex instead of re-walking the
  /// whole tail (which is O(chain²) per round on path-heavy meshes). Skipped
  /// links just propagate next round — the fixpoint, and hence the labels,
  /// are unchanged. Rounds are monotone for the lifetime of a solve, so a
  /// zero-fill at allocation is the only reset ever needed. Separate
  /// forward/backward stamps: the two walks carry different signature mass
  /// through a vertex, so one must not suppress the other.
  std::unique_ptr<std::atomic<std::uint32_t>[]> fwd_stamp, bwd_stamp;
  std::size_t stamp_size = 0;

  bool empty() const noexcept { return succ.empty(); }
  bool useful() const noexcept { return links != 0; }

  void build(std::size_t n, std::span<const graph::Edge> edges) {
    succ.assign(n, kNone);
    pred.assign(n, kNone);
    if (stamp_size != n) {
      fwd_stamp.reset(new std::atomic<std::uint32_t>[n]());
      bwd_stamp.reset(new std::atomic<std::uint32_t>[n]());
      stamp_size = n;
    }
    links = 0;
    for (const graph::Edge& e : edges) {
      succ[e.src] = (succ[e.src] == kNone) ? e.dst : kMany;
      pred[e.dst] = (pred[e.dst] == kNone) ? e.src : kMany;
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (succ[v] < kMany) ++links;
      if (pred[v] < kMany) ++links;
    }
  }
};

/// Result of one chase: links that moved a signature, and the chase length.
struct ChaseResult {
  std::uint32_t steps = 0;    ///< links traversed (moved or not)
  std::uint32_t moved = 0;    ///< links whose update moved a signature
};

/// Chases the single-successor chain forward from e.dst and the
/// single-predecessor chain backward from e.src, applying the full per-edge
/// update at each link, until a link stops moving signatures, the chain
/// branches (kMany), dead-ends (kNone), revisits its start (cycle), another
/// chase already walked the link this round (round stamps; pass round == 0
/// to disable, e.g. in the sharded engine's per-shard sweeps), or the
/// combined budget `opts.chain_cap` is spent. Call after propagate_edge(e)
/// reported movement. Thread-safe: only monotone stores touch shared state,
/// and a stamp race at worst duplicates a walk it meant to skip.
inline ChaseResult chase_chain(const SigView& st, const ChainIndex& chain, graph::Edge e,
                               const EclOptions& opts, std::uint32_t round) noexcept {
  ChaseResult r;
  std::uint32_t budget = opts.chain_cap;

  // Forward: e.dst just absorbed new signature mass; push it down the chain.
  vid u = e.dst;
  const vid fwd_start = u;
  while (budget != 0) {
    const vid w = chain.succ[u];
    if (w >= ChainIndex::kMany) break;  // kMany or kNone
    if (round != 0) {
      if (chain.fwd_stamp[w].load(std::memory_order_relaxed) == round) break;
      chain.fwd_stamp[w].store(round, std::memory_order_relaxed);
    }
    --budget;
    ++r.steps;
    bool any = propagate_edge(st, {u, w}, opts, round);
    if (opts.min_max_signatures) any |= propagate_edge_min(st, {u, w}, opts, round);
    if (!any) break;
    ++r.moved;
    u = w;
    if (u == fwd_start) break;  // pure cycle: one lap saturates it
  }

  // Backward: e.src's in-signature may now pull its lone predecessor's
  // ancestors forward; walk the predecessor chain re-applying the rule.
  vid v = e.src;
  const vid bwd_start = v;
  while (budget != 0) {
    const vid w = chain.pred[v];
    if (w >= ChainIndex::kMany) break;
    if (round != 0) {
      if (chain.bwd_stamp[w].load(std::memory_order_relaxed) == round) break;
      chain.bwd_stamp[w].store(round, std::memory_order_relaxed);
    }
    --budget;
    ++r.steps;
    bool any = propagate_edge(st, {w, v}, opts, round);
    if (opts.min_max_signatures) any |= propagate_edge_min(st, {w, v}, opts, round);
    if (!any) break;
    ++r.moved;
    v = w;
    if (v == bwd_start) break;
  }
  return r;
}

}  // namespace ecl::scc::detail

#endif  // ECL_CORE_PROPAGATE_HPP
